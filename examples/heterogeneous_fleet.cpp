// The paper's headline scenario: a heterogeneous 30-DIP fleet (Table 3 —
// 16x 1-core, 8x 2-core, 4x 4-core, 2x 8-core-F) where the operator
// plugged in whatever VMs were available (§2.2: clouds run out of the VM
// type you want). KnapsackLB discovers each DIP's capacity from latency
// alone and packs load to minimize total latency.
//
//   ./example_heterogeneous_fleet [--seed N] [--baseline rr|lc|wrr]
#include <iostream>

#include "testbed/report.hpp"
#include "testbed/testbed.hpp"
#include "util/flags.hpp"
#include "util/weight.hpp"

using namespace klb;
using namespace klb::util::literals;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 8));
  const std::string baseline = flags.get("baseline", "rr");

  auto make_cfg = [&](bool klb) {
    testbed::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.policy = klb ? "wrr" : baseline;
    cfg.use_knapsacklb = klb;
    cfg.requests_per_session = 1.0;
    cfg.closed_loop_factor = 20.0;
    cfg.dip.backlog_per_core = 24;
    return cfg;
  };

  std::cout << "Heterogeneous 30-DIP fleet (Table 3), baseline: " << baseline
            << "\n";

  double base_mean = 0.0;
  double base_p99 = 0.0;
  {
    testbed::Testbed bed(testbed::table3_specs(), make_cfg(false));
    bed.run_for(20_s);
    bed.reset_stats();
    bed.run_for(30_s);
    base_mean = bed.overall_latency_ms();
    base_p99 = bed.overall_p99_ms();
    std::cout << baseline << ": mean " << testbed::fmt(base_mean)
              << " ms, P99 " << testbed::fmt(base_p99) << " ms\n";
  }

  testbed::Testbed bed(testbed::table3_specs(), make_cfg(true));
  std::cout << "KnapsackLB exploring 30 DIPs..." << std::flush;
  const bool ready = bed.run_until_ready(util::SimTime::minutes(30));
  std::cout << (ready ? " done" : " TIMED OUT") << " at "
            << bed.sim().now().str() << "\n";
  bed.run_for(30_s);
  bed.reset_stats();
  bed.run_for(30_s);

  // Per-type weight summary.
  testbed::Table table({"VM type", "#DIPs", "total weight", "avg CPU",
                        "avg latency (ms)"});
  const auto metrics = bed.metrics();
  struct Agg {
    double w = 0, cpu = 0, lat = 0;
    std::uint64_t req = 0;
    int n = 0;
  };
  std::vector<std::pair<std::string, Agg>> aggs;
  for (const auto& m : metrics) {
    auto it = std::find_if(aggs.begin(), aggs.end(),
                           [&](const auto& p) { return p.first == m.vm_type; });
    if (it == aggs.end()) {
      aggs.push_back({m.vm_type, {}});
      it = aggs.end() - 1;
    }
    it->second.w += m.weight;
    it->second.cpu += m.cpu_utilization;
    it->second.lat += m.client_latency_ms * static_cast<double>(m.client_requests);
    it->second.req += m.client_requests;
    it->second.n += 1;
  }
  for (const auto& [type, a] : aggs)
    table.row({type, std::to_string(a.n), testbed::fmt(a.w, 3),
               testbed::fmt_pct(a.cpu / a.n),
               testbed::fmt(a.req ? a.lat / static_cast<double>(a.req) : 0.0)});
  table.print();

  const double mean = bed.overall_latency_ms();
  std::cout << "KnapsackLB: mean " << testbed::fmt(mean) << " ms, P99 "
            << testbed::fmt(bed.overall_p99_ms()) << " ms\n"
            << "improvement vs " << baseline << ": "
            << testbed::fmt_pct(base_mean > 0 ? 1.0 - mean / base_mean : 0.0)
            << " mean, "
            << testbed::fmt_pct(base_p99 > 0 ? 1.0 - bed.overall_p99_ms() / base_p99
                                             : 0.0)
            << " P99\n";
  return 0;
}
