// §4.7: measuring the drain time of a DIP — how long after a weight
// change old connections keep clouding its latency.
//
// Uses long sessions (8 requests per connection) so connection affinity
// matters, then runs the DrainEstimator's extreme-weight procedure: load
// the DIP, cut its weight to 0, and time latency recovery to ~l0.
//
//   ./example_drain_time [--seed N] [--requests_per_session K]
#include <iostream>

#include "core/drain.hpp"
#include "testbed/report.hpp"
#include "testbed/testbed.hpp"
#include "util/flags.hpp"

using namespace klb;
using namespace klb::util::literals;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);

  testbed::TestbedConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));
  cfg.policy = "wrr";
  cfg.requests_per_session = flags.get_double("requests_per_session", 8.0);
  cfg.load_fraction = 0.55;
  testbed::Testbed bed(testbed::three_dip_specs(1.0, 1.0, 1.0), cfg);

  std::cout << "Drain-time estimation (§4.7) with "
            << cfg.requests_per_session << " requests/connection\n";

  // Settle, then measure l0 for DIP-1 by observation at low weight.
  bed.run_for(10_s);
  bed.set_static_weights({0.0, 0.5, 0.5});
  bed.run_for(10_s);
  const auto l0_sample =
      bed.latency_store().latest(bed.vip(), bed.dip(0).address());
  const double l0 = l0_sample ? l0_sample->avg_latency_ms : 3.5;
  std::cout << "l0 (weight 0) = " << testbed::fmt(l0) << " ms\n";
  bed.set_static_weights({1.0, 1.0, 1.0});
  bed.run_for(5_s);

  core::DrainEstimatorConfig dcfg;
  dcfg.high_weight = 0.75;
  core::DrainEstimator estimator(bed.sim(), bed.vip(), bed.latency_store(),
                                 bed.lb_controller(), dcfg);

  std::optional<util::SimTime> drain;
  bool finished = false;
  estimator.run(bed.dip(0).address(), 0, l0,
                [&](std::optional<util::SimTime> result) {
                  drain = result;
                  finished = true;
                });
  while (!finished) bed.run_for(1_s);

  if (drain) {
    std::cout << "measured drain time: " << drain->str() << "\n"
              << "The controller's drain allowance must exceed this before "
                 "trusting samples\nafter a weight change (default 4 s).\n";
  } else {
    std::cout << "drain estimation did not complete (latency never "
                 "elevated or never recovered)\n";
  }
  return 0;
}
