// Dynamic noisy-neighbor scenario (§2.1 + §6.3 combined).
//
// Starts a healthy 4-DIP pool under KnapsackLB, then injects a sequence of
// live events while printing a timeline of weights and latency:
//
//   t0   healthy steady state
//   t1   a cache-thrashing neighbor cuts DIP-2's capacity to 55%
//   t2   the neighbor leaves (capacity restored)
//   t3   DIP-3 crashes outright
//   t4   DIP-3 comes back
//
// Demonstrates §4.5 end to end: per-DIP capacity rescaling, failure
// ejection, and recovery re-exploration — with no agents anywhere.
//
//   ./example_noisy_neighbor [--seed N]
#include <iostream>

#include "testbed/report.hpp"
#include "testbed/testbed.hpp"
#include "util/flags.hpp"

using namespace klb;
using namespace klb::util::literals;

namespace {

void snapshot(testbed::Testbed& bed, const std::string& label) {
  const auto metrics = bed.metrics();
  std::cout << "\n[" << bed.sim().now().str() << "] " << label << "\n";
  testbed::Table table({"DIP", "weight", "CPU", "latency (ms)", "phase"});
  const auto* ctrl = bed.controller();
  auto phase_name = [&](std::size_t i) {
    switch (ctrl->phase(i)) {
      case core::Controller::DipPhase::kNeedL0:
        return "l0";
      case core::Controller::DipPhase::kExploring:
        return "exploring";
      case core::Controller::DipPhase::kReady:
        return "ready";
      case core::Controller::DipPhase::kFailed:
        return "FAILED";
    }
    return "?";
  };
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const auto& m = metrics[i];
    table.row({m.addr.str(), testbed::fmt(m.weight, 3),
               testbed::fmt_pct(m.cpu_utilization),
               testbed::fmt(m.client_latency_ms), phase_name(i)});
  }
  table.print();
  std::cout << "rescales: " << ctrl->capacity_rescales() << " capacity, "
            << ctrl->traffic_rescales() << " traffic; failures: "
            << ctrl->failures_detected() << "\n";
  bed.reset_stats();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);

  testbed::TestbedConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  cfg.policy = "wrr";
  cfg.use_knapsacklb = true;
  cfg.requests_per_session = 1.0;
  cfg.closed_loop_factor = 20.0;
  cfg.dip.backlog_per_core = 24;

  std::vector<testbed::DipSpec> specs(4, testbed::DipSpec{server::kDs1v2, 1.0, 0.0});
  testbed::Testbed bed(specs, cfg);

  std::cout << "Noisy-neighbor timeline on a 4-DIP pool under KnapsackLB\n"
            << "offered load: " << testbed::fmt(bed.offered_rps(), 0)
            << " rps (70% of healthy capacity)\n";

  std::cout << "\nlearning weight-latency curves..." << std::flush;
  const bool ready = bed.run_until_ready(util::SimTime::minutes(15));
  std::cout << (ready ? " done" : " TIMED OUT") << "\n";
  bed.run_for(30_s);
  bed.reset_stats();
  bed.run_for(30_s);
  snapshot(bed, "healthy steady state");

  bed.dip(1).set_capacity_factor(0.55);
  std::cout << "\n>>> noisy neighbor lands on DIP-2 (capacity -> 55%)";
  bed.run_for(util::SimTime::minutes(3));
  snapshot(bed, "after capacity-change adaptation");

  bed.dip(1).set_capacity_factor(1.0);
  std::cout << "\n>>> neighbor leaves DIP-2 (capacity restored)";
  bed.run_for(util::SimTime::minutes(3));
  snapshot(bed, "after recovery adaptation");

  bed.dip(2).set_alive(false);
  std::cout << "\n>>> DIP-3 crashes";
  bed.run_for(util::SimTime::minutes(1));
  snapshot(bed, "after failure ejection");

  bed.dip(2).set_alive(true);
  std::cout << "\n>>> DIP-3 returns (will re-explore from scratch)";
  bed.run_for(util::SimTime::minutes(6));
  snapshot(bed, "after rejoin");

  std::cout << "\nThe controller adapted to every event using only "
               "latency probes —\nno CPU counters, no DIP agents.\n";
  return 0;
}
