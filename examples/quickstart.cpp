// Quickstart: KnapsackLB on a 3-DIP pool with one degraded backend.
//
// Builds the §2.1 scenario — two healthy 1-core DIPs and one noisy-
// neighbor victim at 60% capacity — runs round-robin first, then lets
// KnapsackLB learn weight-latency curves and program latency-optimal
// weights, printing the before/after per-DIP CPU and latency.
//
//   ./example_quickstart [--seed N] [--capacity 0.6] [--verbose]
#include <iostream>

#include "testbed/report.hpp"
#include "testbed/testbed.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"

using namespace klb;

namespace {

void print_pool(testbed::Testbed& bed, const std::string& title) {
  testbed::banner(title);
  testbed::Table table({"DIP", "capacity", "weight", "CPU util", "latency (ms)",
                        "requests"});
  const auto metrics = bed.metrics();
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const auto& m = metrics[i];
    table.row({m.addr.str(), testbed::fmt(bed.dip(i).capacity_factor(), 2),
               testbed::fmt(m.weight, 3), testbed::fmt_pct(m.cpu_utilization),
               testbed::fmt(m.client_latency_ms),
               std::to_string(m.client_requests)});
  }
  table.print();
  std::cout << "overall mean latency: " << testbed::fmt(bed.overall_latency_ms())
            << " ms, P99: " << testbed::fmt(bed.overall_p99_ms()) << " ms\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const double lc_capacity = flags.get_double("capacity", 0.6);
  if (flags.get_bool("verbose"))
    util::set_log_threshold(util::LogLevel::kInfo);

  std::cout << "KnapsackLB quickstart (seed " << seed << ")\n"
            << "Pool: 2x healthy 1-core DIPs + 1 DIP at "
            << testbed::fmt_pct(lc_capacity, 0) << " capacity\n";

  // --- Baseline: plain round robin -------------------------------------------
  {
    testbed::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.policy = "rr";
    cfg.load_fraction = 0.70;
    testbed::Testbed bed(testbed::three_dip_specs(1.0, 1.0, lc_capacity), cfg);
    bed.run_for(util::SimTime::seconds(20));  // warmup
    bed.reset_stats();
    bed.run_for(util::SimTime::seconds(30));
    print_pool(bed, "Round robin (HAProxy default)");
  }

  // --- KnapsackLB -------------------------------------------------------------
  {
    testbed::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.policy = "wrr";  // weight interface for KnapsackLB
    cfg.load_fraction = 0.70;
    cfg.use_knapsacklb = true;
    testbed::Testbed bed(testbed::three_dip_specs(1.0, 1.0, lc_capacity), cfg);

    std::cout << "\nKnapsackLB exploring weight-latency curves..." << std::flush;
    const bool ready = bed.run_until_ready(util::SimTime::minutes(10));
    std::cout << (ready ? " done" : " TIMED OUT") << " at t="
              << bed.sim().now().str() << "\n";
    for (std::size_t i = 0; i < bed.dip_count(); ++i) {
      const auto& ex = bed.controller()->explorer(i);
      std::cout << "  DIP " << bed.dip(i).address().str() << ": l0="
                << testbed::fmt(ex.l0_ms()) << " ms, wmax="
                << testbed::fmt(ex.wmax(), 3) << ", iterations="
                << ex.iterations() << "\n";
      if (flags.get_bool("verbose")) {
        for (const auto& pt : ex.history())
          std::cout << "      w=" << testbed::fmt(pt.weight, 3) << " -> "
                    << testbed::fmt(pt.latency_ms) << " ms"
                    << (pt.dropped ? " [drop]" : "") << "\n";
      }
    }

    bed.run_for(util::SimTime::seconds(30));  // settle on ILP weights
    bed.reset_stats();
    bed.run_for(util::SimTime::seconds(30));
    print_pool(bed, "KnapsackLB");
  }

  std::cout << "\nKnapsackLB shifts load off the degraded DIP until CPU and\n"
               "latency even out — the knapsack objective of Fig. 7.\n";
  return 0;
}
