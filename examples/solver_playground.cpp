// Standalone use of the solver substrate: build the Fig. 7 ILP by hand
// with the ilp:: API, solve it with both the branch & bound and the MCKP
// dynamic program, and cross-check against the lp:: simplex relaxation —
// the library's solver layer is usable without any of the LB machinery.
//
//   ./example_solver_playground [--dips N] [--points K]
#include <iostream>

#include "core/ilp_weights.hpp"
#include "lp/simplex.hpp"
#include "testbed/report.hpp"
#include "testbed/synthetic.hpp"
#include "util/flags.hpp"

using namespace klb;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int dips = static_cast<int>(flags.get_int("dips", 6));
  const int points = static_cast<int>(flags.get_int("points", 10));

  std::cout << "Solver playground: " << dips << " DIPs, " << points
            << " candidate weights each\n";

  // Synthetic weight-latency curves with assorted capacities.
  std::vector<fit::WeightLatencyCurve> curves;
  for (int d = 0; d < dips; ++d)
    curves.push_back(testbed::synthetic_curve(
        (1.4 / dips) * (1.0 + 0.25 * (d % 3)), 1.0 + 0.2 * (d % 4)));
  std::vector<const fit::WeightLatencyCurve*> ptrs;
  for (const auto& c : curves) ptrs.push_back(&c);

  // 1. High-level interface, both backends.
  core::IlpWeightsConfig cfg;
  cfg.points_per_dip = points;
  cfg.force_multi_step = false;
  cfg.backend = core::IlpBackend::kBranchAndBound;
  const auto bnb = core::IlpWeights(cfg).compute(ptrs);
  cfg.backend = core::IlpBackend::kMckpDp;
  const auto dp = core::IlpWeights(cfg).compute(ptrs);

  testbed::Table table({"DIP", "wmax", "B&B weight", "DP weight",
                        "est. latency (ms)"});
  for (int d = 0; d < dips; ++d) {
    const auto du = static_cast<std::size_t>(d);
    table.row({std::to_string(d + 1), testbed::fmt(curves[du].wmax(), 3),
               testbed::fmt(bnb.feasible ? bnb.weights[du] : 0.0, 3),
               testbed::fmt(dp.feasible ? dp.weights[du] : 0.0, 3),
               testbed::fmt(curves[du].latency_at(
                   bnb.feasible ? bnb.weights[du] : 0.0))});
  }
  table.print();
  std::cout << "objectives: B&B "
            << testbed::fmt(bnb.estimated_total_latency_ms, 4) << " ms, DP "
            << testbed::fmt(dp.estimated_total_latency_ms, 4)
            << " ms (must agree)\n";

  // 2. The raw LP relaxation through the simplex layer directly.
  lp::Problem relax;
  relax.num_vars = dips;
  relax.objective.assign(static_cast<std::size_t>(dips), 0.0);
  // Linearized objective: marginal latency slope at each DIP's midpoint.
  // (Build the sum row's terms first: references returned by add_row are
  // invalidated by subsequent add_row calls.)
  std::vector<std::pair<int, double>> sum_terms;
  for (int d = 0; d < dips; ++d) {
    const auto du = static_cast<std::size_t>(d);
    const double mid = curves[du].wmax() / 2.0;
    relax.objective[du] =
        (curves[du].latency_at(mid * 1.1) - curves[du].latency_at(mid * 0.9)) /
        (0.2 * mid);
    sum_terms.emplace_back(d, 1.0);
    auto& cap = relax.add_row(lp::Relation::kLe, curves[du].wmax());
    cap.terms.emplace_back(d, 1.0);
  }
  relax.add_row(lp::Relation::kEq, 1.0).terms = sum_terms;
  const auto lp_sol = lp::solve(relax);
  std::cout << "\nLP sanity (linearized slopes, simplex): status "
            << (lp_sol.status == lp::Status::kOptimal ? "optimal" : "other")
            << ", " << lp_sol.iterations << " pivots\n";

  std::cout << "\nThe ilp::/lp:: layers are standalone: bring your own "
               "costs and constraints.\n";
  return 0;
}
