// End-to-end integration tests on the full simulated testbed: the complete
// KnapsackLB loop (probe -> store -> explore -> fit -> ILP -> program)
// against live DIPs, plus failure, capacity-change, and traffic-change
// reactions (§6.2, §6.3 in miniature), and workload conservation laws.
#include <gtest/gtest.h>

#include <numeric>

#include "testbed/testbed.hpp"

namespace klb::testbed {
namespace {

using namespace util::literals;
using core::Controller;

TestbedConfig klb_config(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.policy = "wrr";
  cfg.use_knapsacklb = true;
  return cfg;
}

TEST(Integration, ControllerConvergesOnDegradedPool) {
  auto cfg = klb_config(7);
  Testbed bed(three_dip_specs(1.0, 1.0, 0.6), cfg);
  ASSERT_TRUE(bed.run_until_ready(util::SimTime::minutes(10)));

  // Every explorer terminated within the paper's ~10 iterations (+ slack).
  for (std::size_t i = 0; i < bed.dip_count(); ++i) {
    EXPECT_LE(bed.controller()->explorer(i).iterations(), 14u) << i;
    EXPECT_GT(bed.controller()->explorer(i).wmax(), 0.0) << i;
  }

  // The degraded DIP discovered a smaller wmax than the healthy ones.
  const double w_hc = bed.controller()->explorer(0).wmax();
  const double w_lc = bed.controller()->explorer(2).wmax();
  EXPECT_LT(w_lc, w_hc * 0.75);

  bed.run_for(30_s);
  bed.reset_stats();
  bed.run_for(30_s);

  // Weights: the degraded DIP gets meaningfully less than the healthy ones
  // but is not abandoned.
  const auto metrics = bed.metrics();
  EXPECT_GT(metrics[2].weight, 0.05);
  EXPECT_LT(metrics[2].weight, metrics[0].weight);

  // CPU utilization is roughly uniform (paper Fig. 14): spread under 25 pts.
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& m : metrics) {
    lo = std::min(lo, m.cpu_utilization);
    hi = std::max(hi, m.cpu_utilization);
  }
  EXPECT_LT(hi - lo, 0.25) << "CPU spread too wide: " << lo << ".." << hi;
}

TEST(Integration, KnapsackLbBeatsRoundRobinOnDegradedPool) {
  double rr_mean = 0.0;
  double rr_p99 = 0.0;
  {
    TestbedConfig cfg;
    cfg.seed = 11;
    cfg.policy = "rr";
    Testbed bed(three_dip_specs(1.0, 1.0, 0.6), cfg);
    bed.run_for(20_s);
    bed.reset_stats();
    bed.run_for(30_s);
    rr_mean = bed.overall_latency_ms();
    rr_p99 = bed.overall_p99_ms();
  }
  {
    auto cfg = klb_config(11);
    Testbed bed(three_dip_specs(1.0, 1.0, 0.6), cfg);
    ASSERT_TRUE(bed.run_until_ready(util::SimTime::minutes(10)));
    bed.run_for(30_s);
    bed.reset_stats();
    bed.run_for(30_s);
    EXPECT_LT(bed.overall_latency_ms(), rr_mean * 0.92)
        << "KLB mean " << bed.overall_latency_ms() << " vs RR " << rr_mean;
    EXPECT_LT(bed.overall_p99_ms(), rr_p99);
  }
}

TEST(Integration, FailureDetectedAndTrafficRerouted) {
  auto cfg = klb_config(13);
  Testbed bed(three_dip_specs(1.0, 1.0, 1.0), cfg);
  ASSERT_TRUE(bed.run_until_ready(util::SimTime::minutes(10)));
  bed.run_for(30_s);

  bed.dip(1).set_alive(false);
  // Detection: next KLM round times out (probe timeout 2 s) then the
  // controller reruns the ILP without the DIP.
  bed.run_for(40_s);
  EXPECT_GE(bed.controller()->failures_detected(), 1u);
  EXPECT_EQ(bed.controller()->phase(1), Controller::DipPhase::kFailed);
  EXPECT_LT(bed.controller()->current_weights()[1], 1e-9);

  // New traffic lands only on the survivors.
  bed.reset_stats();
  bed.run_for(20_s);
  const auto metrics = bed.metrics();
  EXPECT_EQ(metrics[1].client_requests, 0u);
  EXPECT_GT(metrics[0].client_requests, 100u);
  EXPECT_GT(metrics[2].client_requests, 100u);

  // Recovery: probes answer again, the DIP re-explores and rejoins.
  bed.dip(1).set_alive(true);
  bed.run_for(util::SimTime::minutes(6));
  EXPECT_NE(bed.controller()->phase(1), Controller::DipPhase::kFailed);
}

TEST(Integration, CapacityChangeRescalesAndRebalances) {
  auto cfg = klb_config(17);
  Testbed bed(three_dip_specs(1.0, 1.0, 1.0), cfg);
  ASSERT_TRUE(bed.run_until_ready(util::SimTime::minutes(10)));
  bed.run_for(30_s);
  const double w_before = bed.controller()->current_weights()[0];

  // DIP 0 loses 40% capacity to a noisy neighbor.
  bed.dip(0).set_capacity_factor(0.6);
  bed.run_for(util::SimTime::minutes(2));

  EXPECT_GE(bed.controller()->capacity_rescales(), 1u);
  const double w_after = bed.controller()->current_weights()[0];
  EXPECT_LT(w_after, w_before * 0.95)
      << "weight did not move off the degraded DIP";
}

TEST(Integration, TrafficIncreaseTriggersCurveShift) {
  auto cfg = klb_config(19);
  cfg.load_fraction = 0.60;
  Testbed bed(three_dip_specs(1.0, 1.0, 1.0), cfg);
  ASSERT_TRUE(bed.run_until_ready(util::SimTime::minutes(10)));
  bed.run_for(30_s);

  // +40% traffic: latency rises everywhere at unchanged weights. The
  // controller reacts by a cluster-wide curve shift (traffic) or, when
  // the per-DIP threshold trips first, by per-DIP rescales — either way
  // the curves must move.
  bed.clients().set_pattern(
      workload::TrafficPattern(bed.offered_rps() * 1.40));
  bed.run_for(util::SimTime::minutes(2));
  const auto adaptations = bed.controller()->traffic_rescales() * 2 +
                           bed.controller()->capacity_rescales();
  EXPECT_GE(adaptations, 2u);
}

TEST(Integration, WeightsTrackVmSizes) {
  // 4 types from Table 3 (one of each): ILP weight order must follow
  // capacity order 1 : 2 : 4 : ~9.4.
  std::vector<DipSpec> specs{{server::kDs1v2, 1.0, 0.0},
                             {server::kDs2v2, 1.0, 0.0},
                             {server::kDs3v2, 1.0, 0.0},
                             {server::kF8sv2, 1.0, 0.0}};
  auto cfg = klb_config(23);
  Testbed bed(specs, cfg);
  ASSERT_TRUE(bed.run_until_ready(util::SimTime::minutes(12)));
  bed.run_for(30_s);
  const auto w = bed.controller()->current_weights();
  // The Fig. 7 objective sums per-DIP latency, so with spare capacity it
  // may legitimately park a small DIP at 0 (the paper's Fig. 11 likewise
  // gives small DIPs less than their proportional share). Invariants:
  // order follows capacity among carrying DIPs, at most one DIP parked,
  // and the big F-series VM holds the plurality of traffic.
  int parked = 0;
  double prev_carrying = -1.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (w[i] <= 1e-9) {
      ++parked;
      continue;
    }
    EXPECT_GT(w[i], prev_carrying - 1e-9)
        << "capacity order violated at " << i;
    prev_carrying = w[i];
  }
  EXPECT_LE(parked, 1);
  EXPECT_GT(w[3], 0.35);
}

TEST(Integration, ConservationOfRequests) {
  TestbedConfig cfg;
  cfg.seed = 29;
  cfg.policy = "rr";
  Testbed bed(three_dip_specs(1.0, 1.0, 1.0), cfg);
  bed.run_for(30_s);
  bed.clients().stop();
  bed.run_for(10_s);  // drain

  // Client-side accounting: every request was answered, errored, or
  // timed out.
  const auto& rec = bed.clients().recorder();
  const auto answered =
      rec.overall().count() + rec.errors() + rec.timeouts();
  EXPECT_EQ(answered, bed.clients().requests_sent());

  // Server-side: MUX forwarded everything the clients sent (plus nothing).
  std::uint64_t forwarded = 0;
  for (std::size_t i = 0; i < bed.dip_count(); ++i)
    forwarded += bed.mux().forwarded_requests(i);
  EXPECT_EQ(forwarded, bed.clients().requests_sent());
}

TEST(Integration, DnsModeDeliversWeightedTraffic) {
  // §6.5: clients resolving through the DNS traffic manager with weights
  // 0.2/0.3/0.5 land requests in roughly those proportions.
  sim::Simulation sim(31);
  net::Network net(sim);
  std::vector<std::unique_ptr<server::DipServer>> dips;
  std::vector<net::IpAddr> addrs;
  for (int i = 0; i < 3; ++i) {
    auto d = std::make_unique<server::DipServer>(
        net, net::IpAddr{10, 1, 0, static_cast<std::uint8_t>(i + 1)},
        server::DipConfig{});
    addrs.push_back(d->address());
    dips.push_back(std::move(d));
  }
  lb::DnsTrafficManager dns(sim, addrs, util::SimTime::seconds(5));
  lb::PoolProgram program(dns.issue_version());
  program.add(addrs[0], 2000).add(addrs[1], 3000).add(addrs[2], 5000);
  dns.apply_program(program);

  workload::ClientConfig ccfg;
  ccfg.requests_per_session = 1.0;
  workload::ClientPool clients(net, net::IpAddr{10, 2, 0, 1}, dns,
                               workload::TrafficPattern(300.0), ccfg);
  clients.start();
  sim.run_until(40_s);
  clients.stop();

  const auto& per_dip = clients.recorder().per_dip();
  const double total =
      static_cast<double>(clients.recorder().overall().count());
  ASSERT_GT(total, 5000.0);
  EXPECT_NEAR(per_dip.at(addrs[0]).count() / total, 0.2, 0.06);
  EXPECT_NEAR(per_dip.at(addrs[1]).count() / total, 0.3, 0.06);
  EXPECT_NEAR(per_dip.at(addrs[2]).count() / total, 0.5, 0.06);
}

}  // namespace
}  // namespace klb::testbed
