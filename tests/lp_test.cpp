// Simplex solver tests: textbook LPs with known optima, infeasibility and
// unboundedness detection, degenerate cases, and a property sweep checking
// optimality against brute-force vertex enumeration on random 2-variable
// problems.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace klb::lp {
namespace {

Problem make(int nvars, std::vector<double> obj) {
  Problem p;
  p.num_vars = nvars;
  p.objective = std::move(obj);
  return p;
}

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj=36.
  auto p = make(2, {-3.0, -5.0});  // minimize the negation
  p.add_row(Relation::kLe, 4.0).terms = {{0, 1.0}};
  p.add_row(Relation::kLe, 12.0).terms = {{1, 2.0}};
  p.add_row(Relation::kLe, 18.0).terms = {{0, 3.0}, {1, 2.0}};
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-8);
  EXPECT_NEAR(s.x[1], 6.0, 1e-8);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y st x + y = 10, x - y = 4 => x=7, y=3.
  auto p = make(2, {1.0, 2.0});
  p.add_row(Relation::kEq, 10.0).terms = {{0, 1.0}, {1, 1.0}};
  p.add_row(Relation::kEq, 4.0).terms = {{0, 1.0}, {1, -1.0}};
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[0], 7.0, 1e-8);
  EXPECT_NEAR(s.x[1], 3.0, 1e-8);
  EXPECT_NEAR(s.objective, 13.0, 1e-8);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y st x + y >= 4, x >= 1 => x=4,y=0 obj 8? No: coefficient of
  // x smaller, so push x: x=4, y=0 satisfies both, obj=8.
  auto p = make(2, {2.0, 3.0});
  p.add_row(Relation::kGe, 4.0).terms = {{0, 1.0}, {1, 1.0}};
  p.add_row(Relation::kGe, 1.0).terms = {{0, 1.0}};
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-8);
  EXPECT_NEAR(s.x[0], 4.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  auto p = make(1, {1.0});
  p.add_row(Relation::kGe, 5.0).terms = {{0, 1.0}};
  p.add_row(Relation::kLe, 3.0).terms = {{0, 1.0}};
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x with only x >= 0: unbounded below.
  auto p = make(1, {-1.0});
  p.add_row(Relation::kGe, 0.0).terms = {{0, 1.0}};
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -2 (i.e. y >= x + 2), min y => x=0, y=2.
  auto p = make(2, {0.0, 1.0});
  p.add_row(Relation::kLe, -2.0).terms = {{0, 1.0}, {1, -1.0}};
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[1], 2.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  auto p = make(2, {-1.0, -1.0});
  p.add_row(Relation::kLe, 1.0).terms = {{0, 1.0}};
  p.add_row(Relation::kLe, 1.0).terms = {{1, 1.0}};
  p.add_row(Relation::kLe, 2.0).terms = {{0, 1.0}, {1, 1.0}};
  p.add_row(Relation::kLe, 4.0).terms = {{0, 2.0}, {1, 2.0}};  // redundant
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-8);
}

TEST(Simplex, RedundantEqualityRows) {
  auto p = make(2, {1.0, 1.0});
  p.add_row(Relation::kEq, 4.0).terms = {{0, 1.0}, {1, 1.0}};
  p.add_row(Relation::kEq, 8.0).terms = {{0, 2.0}, {1, 2.0}};  // same plane
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-8);
}

TEST(Simplex, MemLimitRefusesHugeTableau) {
  auto p = make(10'000, std::vector<double>(10'000, 1.0));
  for (int r = 0; r < 5'000; ++r) {
    auto& row = p.add_row(Relation::kLe, 1.0);
    row.terms = {{r, 1.0}, {r + 5'000 - 1, 1.0}};
  }
  SolveOptions opt;
  opt.max_tableau_bytes = 1024 * 1024;  // 1 MB: far too small
  EXPECT_EQ(solve(p, opt).status, Status::kMemLimit);
}

TEST(Simplex, MckpShapedRelaxationIsNearIntegral) {
  // Two groups x 3 choices, sum-of-picked-weights == 1. The LP relaxation
  // of an MCKP has at most one fractional group (classic result) — sanity
  // check the solver finds the optimal basis.
  auto p = make(6, {5.0, 3.0, 1.0, 5.0, 3.0, 1.0});
  // group constraints
  p.add_row(Relation::kEq, 1.0).terms = {{0, 1.0}, {1, 1.0}, {2, 1.0}};
  p.add_row(Relation::kEq, 1.0).terms = {{3, 1.0}, {4, 1.0}, {5, 1.0}};
  // weights: 0.2/0.5/0.8 per item; total = 1.0
  p.add_row(Relation::kEq, 1.0).terms = {{0, 0.2}, {1, 0.5}, {2, 0.8},
                                         {3, 0.2}, {4, 0.5}, {5, 0.8}};
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  // Optimum: both groups at weight 0.5 (cost 3+3=6).
  EXPECT_NEAR(s.objective, 6.0, 1e-6);
}

// Property test: random 2-var LPs vs brute-force vertex enumeration.
class SimplexRandom2D : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandom2D, MatchesVertexEnumeration) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 3);
  auto p = make(2, {rng.uniform(0.1, 3.0), rng.uniform(0.1, 3.0)});
  const int rows = 3 + static_cast<int>(rng.uniform_int(std::uint64_t{3}));
  struct Row {
    double a;
    double b;
    double c;
  };
  std::vector<Row> gx;
  for (int i = 0; i < rows; ++i) {
    // a x + b y >= c with positive coefficients: feasible, bounded optimum.
    Row r{rng.uniform(0.1, 2.0), rng.uniform(0.1, 2.0), rng.uniform(0.5, 4.0)};
    gx.push_back(r);
    p.add_row(Relation::kGe, r.c).terms = {{0, r.a}, {1, r.b}};
  }
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);

  // Brute force: candidate vertices are pairwise intersections + axis cuts.
  double best = 1e300;
  auto consider = [&](double x, double y) {
    if (x < -1e-9 || y < -1e-9) return;
    for (const auto& r : gx)
      if (r.a * x + r.b * y < r.c - 1e-7) return;
    best = std::min(best, p.objective[0] * x + p.objective[1] * y);
  };
  for (std::size_t i = 0; i < gx.size(); ++i) {
    consider(gx[i].c / gx[i].a, 0.0);
    consider(0.0, gx[i].c / gx[i].b);
    for (std::size_t j = i + 1; j < gx.size(); ++j) {
      const double det = gx[i].a * gx[j].b - gx[j].a * gx[i].b;
      if (std::fabs(det) < 1e-9) continue;
      const double x = (gx[i].c * gx[j].b - gx[j].c * gx[i].b) / det;
      const double y = (gx[i].a * gx[j].c - gx[j].a * gx[i].c) / det;
      consider(x, y);
    }
  }
  EXPECT_NEAR(s.objective, best, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom2D, ::testing::Range(0, 30));

}  // namespace
}  // namespace klb::lp
