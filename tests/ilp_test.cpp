// ILP branch & bound + MCKP DP tests: known-answer knapsacks, timeout
// behaviour, infeasibility, and the key cross-validation property — on
// random MCKP instances the generic B&B and the specialized DP must agree.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ilp/mckp.hpp"
#include "ilp/model.hpp"
#include "util/rng.hpp"
#include "util/weight.hpp"

namespace klb::ilp {
namespace {

TEST(Ilp, SolvesTinyBinaryKnapsack) {
  // max 6a + 10b + 12c st a + 2b + 3c <= 5  (classic: b + c = 22)
  Model m;
  const int a = m.add_var(VarType::kBinary, -6.0);
  const int b = m.add_var(VarType::kBinary, -10.0);
  const int c = m.add_var(VarType::kBinary, -12.0);
  m.add_constraint({{a, 1.0}, {b, 2.0}, {c, 3.0}}, lp::Relation::kLe, 5.0);
  const auto r = solve(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -22.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(a)], 0.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(b)], 1.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(c)], 1.0, 1e-6);
}

TEST(Ilp, IntegralityMatters) {
  // LP relaxation would take half an item; ILP must not.
  Model m;
  const int a = m.add_var(VarType::kBinary, -10.0);
  const int b = m.add_var(VarType::kBinary, -6.0);
  m.add_constraint({{a, 2.0}, {b, 1.0}}, lp::Relation::kLe, 2.0);
  const auto r = solve(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -10.0, 1e-6);  // take a alone (LP would mix)
}

TEST(Ilp, InfeasibleDetected) {
  Model m;
  const int a = m.add_var(VarType::kBinary, 1.0);
  m.add_constraint({{a, 1.0}}, lp::Relation::kGe, 2.0);  // binary can't be 2
  EXPECT_EQ(solve(m).status, IlpStatus::kInfeasible);
}

TEST(Ilp, ContinuousVariablesMix) {
  // One binary gate y, one continuous x <= 10: min -x - 5y st x <= 10y.
  Model m;
  const int x = m.add_var(VarType::kContinuous, -1.0, 10.0);
  const int y = m.add_var(VarType::kBinary, -5.0);
  m.add_constraint({{x, 1.0}, {y, -10.0}}, lp::Relation::kLe, 0.0);
  const auto r = solve(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -15.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 10.0, 1e-6);
}

TEST(Ilp, TimeLimitReturnsTimeoutStatus) {
  // A deliberately painful subset-sum-like instance with a 1 ms budget.
  util::Rng rng(4242);
  Model m;
  std::vector<std::pair<int, double>> terms;
  for (int i = 0; i < 40; ++i) {
    const int v = m.add_var(VarType::kBinary, rng.uniform(-2.0, -1.0));
    terms.emplace_back(v, rng.uniform(0.9, 1.1));
  }
  m.add_constraint(terms, lp::Relation::kLe, 17.137);
  IlpOptions opt;
  opt.time_limit = std::chrono::milliseconds(1);
  const auto r = solve(m, opt);
  EXPECT_TRUE(r.status == IlpStatus::kFeasibleTimeout ||
              r.status == IlpStatus::kTimeout ||
              r.status == IlpStatus::kOptimal);  // fast machines may finish
}

TEST(Mckp, PicksObviousBest) {
  // Two groups; only one combination sums to 10.
  std::vector<MckpGroup> groups(2);
  groups[0].items = {{4, 9.0}, {6, 1.0}};
  groups[1].items = {{4, 2.0}, {6, 8.0}};
  const auto r = solve_mckp(groups, 10, 0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.choice[0], 1);  // 6 units, cost 1
  EXPECT_EQ(r.choice[1], 0);  // 4 units, cost 2
  EXPECT_NEAR(r.cost, 3.0, 1e-12);
  EXPECT_EQ(r.total_units, 10);
}

TEST(Mckp, SlackWindowAllowsUndershoot) {
  std::vector<MckpGroup> groups(1);
  groups[0].items = {{7, 1.0}, {12, 0.5}};
  // Exact 10 impossible; slack 3 admits the 7-unit item.
  const auto exact = solve_mckp(groups, 10, 0);
  EXPECT_FALSE(exact.feasible);
  const auto slack = solve_mckp(groups, 10, 3);
  ASSERT_TRUE(slack.feasible);
  EXPECT_EQ(slack.choice[0], 0);
}

TEST(Mckp, PrefersLargerSumOnCostTies) {
  std::vector<MckpGroup> groups(1);
  groups[0].items = {{8, 1.0}, {10, 1.0}};
  const auto r = solve_mckp(groups, 10, 5);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.total_units, 10);
}

TEST(Mckp, EmptyGroupInfeasible) {
  std::vector<MckpGroup> groups(2);
  groups[0].items = {{5, 1.0}};
  const auto r = solve_mckp(groups, 10, 10);
  EXPECT_FALSE(r.feasible);
}

TEST(Mckp, ZeroWeightItemsAllowed) {
  std::vector<MckpGroup> groups(2);
  groups[0].items = {{0, 0.5}, {10, 3.0}};
  groups[1].items = {{10, 1.0}};
  const auto r = solve_mckp(groups, 10, 0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.choice[0], 0);
  EXPECT_NEAR(r.cost, 1.5, 1e-12);
}

/// Builds the Fig. 7 ILP for an MCKP instance (theta = infinity) — shared
/// by the agreement property test below.
IlpResult solve_via_bnb(const std::vector<MckpGroup>& groups,
                        std::int64_t total, std::int64_t slack) {
  Model m;
  m.set_binary_bounds_implied(true);
  std::vector<std::vector<int>> vars(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::vector<std::pair<int, double>> group_row;
    for (const auto& item : groups[g].items) {
      const int v = m.add_var(VarType::kBinary, item.cost);
      vars[g].push_back(v);
      group_row.emplace_back(v, 1.0);
    }
    m.add_constraint(group_row, lp::Relation::kEq, 1.0);
  }
  std::vector<std::pair<int, double>> weight_row;
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (std::size_t i = 0; i < groups[g].items.size(); ++i)
      weight_row.emplace_back(vars[g][i],
                              static_cast<double>(groups[g].items[i].weight_units));
  m.add_constraint(weight_row, lp::Relation::kLe, static_cast<double>(total));
  m.add_constraint(weight_row, lp::Relation::kGe,
                   static_cast<double>(total - slack));
  return solve(m);
}

class MckpAgreement : public ::testing::TestWithParam<int> {};

TEST_P(MckpAgreement, BnbAndDpAgreeOnRandomInstances) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7321 + 11);
  const int num_groups = 2 + static_cast<int>(rng.uniform_int(std::uint64_t{5}));
  const std::int64_t total = 100;
  std::vector<MckpGroup> groups(static_cast<std::size_t>(num_groups));
  for (auto& g : groups) {
    const int items = 2 + static_cast<int>(rng.uniform_int(std::uint64_t{4}));
    for (int i = 0; i < items; ++i) {
      g.items.push_back(MckpItem{
          static_cast<std::int64_t>(rng.uniform_int(std::int64_t{0},
                                                    total / num_groups + 20)),
          rng.uniform(0.1, 20.0)});
    }
  }
  const std::int64_t slack = 5;
  const auto dp = solve_mckp(groups, total, slack);
  const auto bnb = solve_via_bnb(groups, total, slack);

  ASSERT_EQ(dp.feasible, bnb.status == IlpStatus::kOptimal)
      << "feasibility disagreement";
  if (dp.feasible) {
    EXPECT_NEAR(dp.cost, bnb.objective, 1e-6)
        << "optimal objectives disagree";
    // The DP's reported choice must actually satisfy the window + cost.
    std::int64_t sum = 0;
    double cost = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const auto& it = groups[g].items[static_cast<std::size_t>(dp.choice[g])];
      sum += it.weight_units;
      cost += it.cost;
    }
    EXPECT_EQ(sum, dp.total_units);
    EXPECT_GE(sum, total - slack);
    EXPECT_LE(sum, total);
    EXPECT_NEAR(cost, dp.cost, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MckpAgreement, ::testing::Range(0, 40));

}  // namespace
}  // namespace klb::ilp
