// Tests for polynomial regression and the weight-latency curve: exact
// recovery of known polynomials, noisy-fit quality, monotone envelope
// semantics, inverse lookup, and the §4.5 rescaling identity.
#include <gtest/gtest.h>

#include <cmath>

#include "fit/polyfit.hpp"
#include "fit/wl_curve.hpp"
#include "util/rng.hpp"

namespace klb::fit {
namespace {

TEST(SolveLinear, Solves2x2) {
  const auto x = solve_linear({{2.0, 1.0}, {1.0, 3.0}}, {5.0, 10.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveLinear, SingularReturnsNullopt) {
  EXPECT_FALSE(solve_linear({{1.0, 2.0}, {2.0, 4.0}}, {1.0, 2.0}).has_value());
}

TEST(SolveLinear, NeedsPivoting) {
  // Zero on the diagonal forces a row swap.
  const auto x = solve_linear({{0.0, 1.0}, {1.0, 0.0}}, {2.0, 3.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(Polyfit, RecoversExactQuadratic) {
  // y = 1 + 2x + 3x^2
  std::vector<double> xs{0.0, 0.1, 0.2, 0.35, 0.5};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(1.0 + 2.0 * x + 3.0 * x * x);
  const auto p = polyfit(xs, ys, 2);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->coeffs.size(), 3u);
  EXPECT_NEAR(p->coeffs[0], 1.0, 1e-9);
  EXPECT_NEAR(p->coeffs[1], 2.0, 1e-8);
  EXPECT_NEAR(p->coeffs[2], 3.0, 1e-7);
}

TEST(Polyfit, ClampsDegreeToDistinctPoints) {
  // Two distinct x-values can only support a line.
  const auto p = polyfit({0.0, 1.0, 1.0}, {1.0, 3.0, 3.0}, 5);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->degree(), 1);
  EXPECT_NEAR(p->eval(0.5), 2.0, 1e-9);
}

TEST(Polyfit, AllSameXIsDegreeZero) {
  const auto p = polyfit({2.0, 2.0}, {5.0, 7.0}, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->degree(), 0);
  EXPECT_NEAR(p->eval(123.0), 6.0, 1e-9);
}

TEST(Polyfit, EmptyInputFails) {
  EXPECT_FALSE(polyfit({}, {}, 2).has_value());
  EXPECT_FALSE(polyfit({1.0}, {}, 2).has_value());
}

TEST(Polyfit, NoisyFitHasHighR2) {
  util::Rng rng(101);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 20; ++i) {
    const double x = 0.01 * i;
    xs.push_back(x);
    ys.push_back(2.0 + 50.0 * x * x + rng.normal(0.0, 0.05));
  }
  const auto p = polyfit(xs, ys, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_GT(r_squared(*p, xs, ys), 0.98);
}

// Property: for random polynomials, fitting exact samples recovers eval
// behaviour within tolerance across the sampled domain.
class PolyfitRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PolyfitRoundTrip, ExactSamplesRoundTrip) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const int degree = 1 + static_cast<int>(rng.uniform_int(std::uint64_t{3}));
  std::vector<double> coeffs;
  for (int i = 0; i <= degree; ++i) coeffs.push_back(rng.uniform(-5.0, 5.0));
  const Polynomial truth{coeffs};

  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= degree + 4; ++i) {
    const double x = 0.05 + 0.09 * i;
    xs.push_back(x);
    ys.push_back(truth.eval(x));
  }
  const auto p = polyfit(xs, ys, degree);
  ASSERT_TRUE(p.has_value());
  for (const double x : xs)
    EXPECT_NEAR(p->eval(x), truth.eval(x), 1e-5 * (1.0 + std::fabs(truth.eval(x))));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyfitRoundTrip, ::testing::Range(0, 20));

TEST(WeightLatencyCurve, FitsAndEvaluates) {
  WeightLatencyCurve curve;
  // Latency rises quadratically with weight (like Fig. 5).
  for (const double w : {0.02, 0.05, 0.08, 0.12, 0.16})
    curve.add_point(w, 1.0 + 100.0 * w * w, false);
  ASSERT_TRUE(curve.fit(2));
  EXPECT_NEAR(curve.latency_at(0.10), 2.0, 0.1);
  EXPECT_GT(curve.fit_r_squared(), 0.99);
  EXPECT_NEAR(curve.wmax(), 0.16, 1e-12);
}

TEST(WeightLatencyCurve, DroppedPointsExcludedFromFit) {
  WeightLatencyCurve curve;
  curve.add_point(0.05, 1.0, false);
  curve.add_point(0.10, 2.0, false);
  curve.add_point(0.15, 3.0, false);
  curve.add_point(0.30, 500.0, true);  // drop point must not skew the line
  ASSERT_TRUE(curve.fit(1));
  EXPECT_NEAR(curve.latency_at(0.20), 4.0, 0.2);
  EXPECT_NEAR(curve.wmax(), 0.15, 1e-12);  // wmax excludes dropped weights
}

TEST(WeightLatencyCurve, EnvelopeIsMonotone) {
  WeightLatencyCurve curve;
  // A downward-opening quadratic would dip; the envelope must not.
  curve.add_point(0.0, 5.0, false);
  curve.add_point(0.1, 4.0, false);
  curve.add_point(0.2, 6.0, false);
  ASSERT_TRUE(curve.fit(2));
  double prev = curve.latency_at(0.0);
  for (double w = 0.0; w <= 0.25; w += 0.005) {
    const double l = curve.latency_at(w);
    EXPECT_GE(l, prev - 1e-9) << "dip at w=" << w;
    prev = l;
  }
}

TEST(WeightLatencyCurve, InverseLookupIsConsistent) {
  WeightLatencyCurve curve;
  for (const double w : {0.02, 0.06, 0.10, 0.14})
    curve.add_point(w, 1.0 + 50.0 * w * w, false);
  ASSERT_TRUE(curve.fit(2));
  const double l = curve.latency_at(0.08);
  const double w = curve.weight_for(l);
  EXPECT_NEAR(w, 0.08, 0.01);
  // weight_for returns the largest weight not exceeding the latency.
  EXPECT_LE(curve.latency_at(w), l + 1e-6);
}

TEST(WeightLatencyCurve, InverseBelowCurveReturnsZero) {
  WeightLatencyCurve curve;
  curve.add_point(0.0, 5.0, false);
  curve.add_point(0.1, 6.0, false);
  ASSERT_TRUE(curve.fit(1));
  EXPECT_EQ(curve.weight_for(1.0), 0.0);
}

TEST(WeightLatencyCurve, RescaleShiftsLeft) {
  WeightLatencyCurve curve;
  for (const double w : {0.1, 0.2, 0.3, 0.4})
    curve.add_point(w, 10.0 * w, false);
  ASSERT_TRUE(curve.fit(1));

  const double before = curve.latency_at(0.2);
  // Traffic grew: the latency seen at weight 0.2 now happens at 0.16.
  curve.rescale(0.8);
  EXPECT_NEAR(curve.latency_at(0.16), before, 1e-6);
  EXPECT_NEAR(curve.wmax(), 0.4 * 0.8, 1e-9);

  // Rescaling accumulates.
  curve.rescale(0.5);
  EXPECT_NEAR(curve.latency_at(0.08), before, 1e-6);
}

TEST(WeightLatencyCurve, TooFewPointsFails) {
  WeightLatencyCurve curve;
  curve.add_point(0.1, 1.0, false);
  EXPECT_FALSE(curve.fit(2));
  EXPECT_FALSE(curve.fitted());
}

}  // namespace
}  // namespace klb::fit
