// MUST COMPILE under clang -Wthread-safety -Werror: the idiomatic pattern
// the codebase uses — guarded fields touched only under a scoped lock,
// REQUIRES helpers called with the capability held. Guards the suite
// against a harness that "passes" because everything fails.
#include "util/sync.hpp"

namespace {

struct Counter {
  mutable klb::util::Mutex mu{"klb.ok.scoped"};
  int value KLB_GUARDED_BY(mu) = 0;

  void bump_locked() KLB_REQUIRES(mu) { ++value; }

  void bump() KLB_EXCLUDES(mu) {
    klb::util::MutexLock lk(mu);
    bump_locked();
  }

  int get() const KLB_EXCLUDES(mu) {
    klb::util::MutexLock lk(mu);
    return value;
  }
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.get();
}
