// MUST FAIL under clang -Wthread-safety -Werror: touching a cross-shard
// mailbox's parcel list without holding its "klb.sim.mailbox" mutex — the
// shape of ISSUE 9's fabric mailboxes (net::Network::Mailbox) and the
// driver's window bookkeeping under "klb.sim.shard". Both are leaf ranks:
// the lock protects a container swapped between a producing shard and the
// main thread's boundary drain, so an unlocked touch is a real race, not
// a style nit.
#include <vector>

#include "util/sync.hpp"

namespace {

struct Parcel {
  int payload = 0;
};

struct Mailbox {
  klb::util::Mutex mu{"klb.sim.mailbox"};
  std::vector<Parcel> parcels KLB_GUARDED_BY(mu);

  // violation: drain without the mailbox lock
  std::size_t drain_unlocked() {
    std::vector<Parcel> out;
    out.swap(parcels);
    return out.size();
  }
};

}  // namespace

int main() {
  Mailbox box;
  return static_cast<int>(box.drain_unlocked());
}
