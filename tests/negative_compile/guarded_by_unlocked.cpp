// MUST FAIL under clang -Wthread-safety -Werror: reading a guarded field
// without its mutex held.
#include "util/sync.hpp"

namespace {

struct Counter {
  klb::util::Mutex mu{"klb.neg.guarded"};
  int value KLB_GUARDED_BY(mu) = 0;

  int read_unlocked() { return value; }  // violation: no lock held
};

}  // namespace

int main() {
  Counter c;
  return c.read_unlocked();
}
