// MUST FAIL under clang >= 20 -Wfunction-effects -Werror: a *blocking*
// MutexLock construction inside a KLB_NONBLOCKING function. The blocking
// constructor calls Mutex::lock(), which is deliberately unannotated (it
// is the one blocking primitive), so the analysis must reject the call
// chain. The try-lock construction path (MutexLock(mu, kTryToLock)) is
// the sanctioned alternative — see effect_escape_ok.cpp.
#include "util/sync.hpp"

namespace {

klb::util::Mutex g_mu{"klb.neg.effect_block"};
int g_value KLB_GUARDED_BY(g_mu) = 0;

int read_blocking() KLB_NONBLOCKING KLB_EXCLUDES(g_mu) {
  klb::util::MutexLock lk(g_mu);  // blocking acquire: must be diagnosed
  return g_value;
}

}  // namespace

int main() { return read_blocking(); }
