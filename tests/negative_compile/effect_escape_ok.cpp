// MUST COMPILE under clang >= 20 -Wfunction-effects -Wthread-safety
// -Werror: the sanctioned slow-lane pattern — a KLB_NONBLOCKING function
// that tries the lock (never blocks) and crosses into effectful code only
// through KLB_EFFECT_ESCAPE. This is note_drain_empty()'s shape, and it
// guards the harness against a world where the escape hatch itself trips
// the analysis (which would force every annotation to be torn out).
#include "util/effects.hpp"
#include "util/sync.hpp"

namespace {

klb::util::Mutex g_mu{"klb.ok.effect_escape"};
int g_swept KLB_GUARDED_BY(g_mu) = 0;

void sweep_locked() KLB_REQUIRES(g_mu) {
  g_swept += *new int(1);  // allocates: legal only inside the escape
}

void opportunistic_sweep() KLB_NONBLOCKING KLB_EXCLUDES(g_mu) {
  klb::util::MutexLock lk(g_mu, klb::util::kTryToLock);
  if (lk) KLB_EFFECT_ESCAPE("mux.drain_sweep", sweep_locked());
}

}  // namespace

int main() {
  opportunistic_sweep();
  return 0;
}
