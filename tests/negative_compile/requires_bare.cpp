// MUST FAIL under clang -Wthread-safety -Werror: calling a
// REQUIRES-annotated helper without holding the capability.
#include "util/sync.hpp"

namespace {

struct Counter {
  klb::util::Mutex mu{"klb.neg.requires"};
  int value KLB_GUARDED_BY(mu) = 0;

  void bump_locked() KLB_REQUIRES(mu) { ++value; }
  void bump_bare() { bump_locked(); }  // violation: mu not held
};

}  // namespace

int main() {
  Counter c;
  c.bump_bare();
  return 0;
}
