# Negative-compilation harness for the thread-safety and function-effect
# annotations, run as a ctest case on clang builds (see the top-level
# CMakeLists.txt):
#
#   cmake -DCOMPILER=<clang++> -DINCLUDE_DIR=<repo>/src \
#         -DCASES_DIR=<this dir> [-DEFFECTS=ON] -P run_cases.cmake
#
# Every *.cpp here is compiled syntax-only with the matching analysis
# under -Werror: cases named effect_*.cpp get -Wfunction-effects (and are
# skipped entirely unless EFFECTS is ON — the attributes need clang >= 20;
# below that the macros no-op and the "must fail" cases would compile);
# everything else gets -Wthread-safety. Cases named *_ok.cpp must compile
# (guarding the harness against a world where everything fails); all
# others must be REJECTED, and specifically with a diagnostic from their
# own analysis — a case dying of a plain syntax error, or of the *other*
# analysis, would silently stop exercising the one it was written for.
if(NOT COMPILER OR NOT INCLUDE_DIR OR NOT CASES_DIR)
  message(FATAL_ERROR
          "run_cases.cmake requires -DCOMPILER, -DINCLUDE_DIR, -DCASES_DIR")
endif()

file(GLOB cases ${CASES_DIR}/*.cpp)
if(NOT cases)
  message(FATAL_ERROR "no cases found under ${CASES_DIR}")
endif()

foreach(case ${cases})
  get_filename_component(name ${case} NAME_WE)
  set(analysis -Wthread-safety)
  set(expect "thread-safety")
  if(name MATCHES "^effect_")
    if(NOT EFFECTS)
      message(STATUS "${name}: skipped (compiler lacks function effects)")
      continue()
    endif()
    set(analysis -Wthread-safety -Wfunction-effects)
    set(expect "function-effects")
  endif()
  execute_process(
    COMMAND ${COMPILER} -std=c++17 -fsyntax-only ${analysis} -Werror
            -I${INCLUDE_DIR} ${case}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(name MATCHES "_ok$")
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "${name}: expected to compile cleanly, but failed:\n${err}")
    endif()
    message(STATUS "${name}: compiled (as expected)")
  else()
    if(rc EQUAL 0)
      message(FATAL_ERROR
              "${name}: expected -W${expect} -Werror to reject it, "
              "but it compiled")
    endif()
    if(NOT err MATCHES "${expect}")
      message(FATAL_ERROR
              "${name}: rejected, but not by the ${expect} analysis "
              "(wrong failure mode):\n${err}")
    endif()
    message(STATUS "${name}: rejected by -W${expect} (as expected)")
  endif()
endforeach()
