# Negative-compilation harness for the thread-safety annotations, run as a
# ctest case on clang builds (see the top-level CMakeLists.txt):
#
#   cmake -DCOMPILER=<clang++> -DINCLUDE_DIR=<repo>/src \
#         -DCASES_DIR=<this dir> -P run_cases.cmake
#
# Every *.cpp here is compiled syntax-only with -Wthread-safety -Werror.
# Cases named *_ok.cpp must compile (guarding the harness against a world
# where everything fails); all others must be REJECTED, and specifically
# with a thread-safety diagnostic — a case dying of a plain syntax error
# would silently stop exercising the analysis.
if(NOT COMPILER OR NOT INCLUDE_DIR OR NOT CASES_DIR)
  message(FATAL_ERROR
          "run_cases.cmake requires -DCOMPILER, -DINCLUDE_DIR, -DCASES_DIR")
endif()

file(GLOB cases ${CASES_DIR}/*.cpp)
if(NOT cases)
  message(FATAL_ERROR "no cases found under ${CASES_DIR}")
endif()

foreach(case ${cases})
  get_filename_component(name ${case} NAME_WE)
  execute_process(
    COMMAND ${COMPILER} -std=c++17 -fsyntax-only -Wthread-safety -Werror
            -I${INCLUDE_DIR} ${case}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(name MATCHES "_ok$")
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "${name}: expected to compile cleanly, but failed:\n${err}")
    endif()
    message(STATUS "${name}: compiled (as expected)")
  else()
    if(rc EQUAL 0)
      message(FATAL_ERROR
              "${name}: expected -Wthread-safety -Werror to reject it, "
              "but it compiled")
    endif()
    if(NOT err MATCHES "thread-safety")
      message(FATAL_ERROR
              "${name}: rejected, but not by the thread-safety analysis "
              "(wrong failure mode):\n${err}")
    endif()
    message(STATUS "${name}: rejected by -Wthread-safety (as expected)")
  endif()
endforeach()
