// MUST FAIL under clang -Wthread-safety -Werror: scoped-acquiring a
// capability the thread already holds.
#include "util/sync.hpp"

int main() {
  klb::util::Mutex mu{"klb.neg.double"};
  klb::util::MutexLock outer(mu);
  klb::util::MutexLock inner(mu);  // violation: mu already held
  return 0;
}
