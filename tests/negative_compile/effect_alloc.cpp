// MUST FAIL under clang >= 20 -Wfunction-effects -Werror: a heap
// allocation inside a KLB_NONALLOCATING function. This is the core
// contract of the packet path — if this case ever compiles, the effect
// analysis has silently stopped seeing through operator new and every
// KLB_NONALLOCATING annotation in src/ is decorative.
#include "util/effects.hpp"

namespace {

int* alloc_in_fast_lane() KLB_NONALLOCATING {
  return new int(42);  // operator new: must be diagnosed
}

}  // namespace

int main() {
  delete alloc_in_fast_lane();
  return 0;
}
