// KLM tests: periodic probing writes samples to the store over RESP, error
// and timeout accounting, failure visibility, ping prober behaviour.
#include <gtest/gtest.h>

#include "klm/klm.hpp"
#include "server/dip_server.hpp"
#include "store/kv_server.hpp"

namespace klb::klm {
namespace {

using namespace util::literals;

struct Fixture {
  sim::Simulation sim{41};
  net::Network net{sim};
  net::IpAddr vip{10, 0, 0, 1};
  net::IpAddr store_addr{10, 3, 0, 2};
  std::shared_ptr<store::KvEngine> engine =
      std::make_shared<store::KvEngine>([this] { return sim.now(); });
  store::KvServer kv_server{net, store_addr, engine};
  store::LatencyStore lat_store{engine};
};

KlmConfig fast_cfg() {
  KlmConfig cfg;
  cfg.probes_per_round = 20;
  cfg.period = 1_s;
  cfg.spread_fraction = 0.5;
  return cfg;
}

TEST(Klm, WritesSamplesToStore) {
  Fixture f;
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, {});
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip.address()},
          f.store_addr, fast_cfg());
  klm.start();
  f.sim.run_until(3500_ms);
  klm.stop();

  const auto samples = f.lat_store.recent(f.vip, dip.address(), 10);
  ASSERT_GE(samples.size(), 3u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.probes, 20u);
    EXPECT_EQ(s.errors, 0u);
    EXPECT_EQ(s.timeouts, 0u);
    // Unloaded DIP: ~RTT + service time.
    EXPECT_NEAR(s.avg_latency_ms, 3.4, 1.0);
  }
  // Samples are newest-first.
  EXPECT_GT(samples[0].at, samples[1].at);
}

TEST(Klm, ProbesAllDipsEachRound) {
  Fixture f;
  server::DipServer dip1(f.net, net::IpAddr{10, 1, 0, 1}, {});
  server::DipServer dip2(f.net, net::IpAddr{10, 1, 0, 2}, {});
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip,
          {dip1.address(), dip2.address()}, f.store_addr, fast_cfg());
  klm.start();
  f.sim.run_until(2500_ms);
  EXPECT_GE(f.lat_store.recent(f.vip, dip1.address(), 10).size(), 2u);
  EXPECT_GE(f.lat_store.recent(f.vip, dip2.address(), 10).size(), 2u);
}

TEST(Klm, DeadDipYieldsAllTimeouts) {
  Fixture f;
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, {});
  dip.set_alive(false);
  auto cfg = fast_cfg();
  cfg.probe_timeout = 500_ms;
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip.address()},
          f.store_addr, cfg);
  klm.start();
  f.sim.run_until(2_s);
  const auto sample = f.lat_store.latest(f.vip, dip.address());
  ASSERT_TRUE(sample.has_value());
  EXPECT_TRUE(sample->all_failed());
  EXPECT_EQ(sample->timeouts, 20u);
}

TEST(Klm, OverloadedDipShowsErrors) {
  Fixture f;
  server::DipConfig dcfg;
  dcfg.backlog_per_core = 2;  // tiny backlog: probes themselves overflow it
  dcfg.demand_core_ms = 400.0;  // very slow: 2.5 rps capacity
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, dcfg);
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip.address()},
          f.store_addr, fast_cfg());
  klm.start();
  f.sim.run_until(3_s);
  const auto sample = f.lat_store.latest(f.vip, dip.address());
  ASSERT_TRUE(sample.has_value());
  EXPECT_TRUE(sample->saw_drops());
  EXPECT_GT(sample->errors, 0u);
}

TEST(Klm, ProbeOnceReportsSingleRound) {
  Fixture f;
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, {});
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip.address()},
          f.store_addr, fast_cfg());
  klm.probe_once(dip.address(), 5);
  f.sim.run_all();
  const auto sample = f.lat_store.latest(f.vip, dip.address());
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->probes, 5u);
}

TEST(Klm, AddRemoveDip) {
  Fixture f;
  server::DipServer dip1(f.net, net::IpAddr{10, 1, 0, 1}, {});
  server::DipServer dip2(f.net, net::IpAddr{10, 1, 0, 2}, {});
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip1.address()},
          f.store_addr, fast_cfg());
  klm.add_dip(dip2.address());
  klm.remove_dip(dip1.address());
  klm.start();
  f.sim.run_until(1500_ms);
  EXPECT_TRUE(f.lat_store.recent(f.vip, dip1.address(), 10).empty());
  EXPECT_FALSE(f.lat_store.recent(f.vip, dip2.address(), 10).empty());
}

TEST(PingProber, MeasuresKernelRtt) {
  Fixture f;
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, {});
  PingProber prober(f.net, net::IpAddr{10, 3, 0, 3});
  prober.ping(dip.address(), 20);
  f.sim.run_all();
  EXPECT_EQ(prober.rtt_ms().count(), 20u);
  EXPECT_EQ(prober.lost(), 0u);
  // Two fabric hops + kernel handling: well under 1 ms.
  EXPECT_LT(prober.rtt_ms().mean(), 1.0);
}

TEST(PingProber, LostPingsCounted) {
  Fixture f;
  PingProber prober(f.net, net::IpAddr{10, 3, 0, 3});
  prober.ping(net::IpAddr{10, 9, 9, 9}, 5);  // nobody home
  f.sim.run_all();
  EXPECT_EQ(prober.lost(), 5u);
  EXPECT_EQ(prober.rtt_ms().count(), 0u);
}

}  // namespace
}  // namespace klb::klm
