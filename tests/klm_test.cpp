// KLM tests: periodic probing writes samples to the store over RESP, error
// and timeout accounting, failure visibility, ping prober behaviour.
#include <gtest/gtest.h>

#include "klm/klm.hpp"
#include "server/dip_server.hpp"
#include "store/kv_server.hpp"

namespace klb::klm {
namespace {

using namespace util::literals;

struct Fixture {
  sim::Simulation sim{41};
  net::Network net{sim};
  net::IpAddr vip{10, 0, 0, 1};
  net::IpAddr store_addr{10, 3, 0, 2};
  std::shared_ptr<store::KvEngine> engine =
      std::make_shared<store::KvEngine>([this] { return sim.now(); });
  store::KvServer kv_server{net, store_addr, engine};
  store::LatencyStore lat_store{engine};
};

KlmConfig fast_cfg() {
  KlmConfig cfg;
  cfg.probes_per_round = 20;
  cfg.period = 1_s;
  cfg.spread_fraction = 0.5;
  return cfg;
}

TEST(Klm, WritesSamplesToStore) {
  Fixture f;
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, {});
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip.address()},
          f.store_addr, fast_cfg());
  klm.start();
  f.sim.run_until(3500_ms);
  klm.stop();

  const auto samples = f.lat_store.recent(f.vip, dip.address(), 10);
  ASSERT_GE(samples.size(), 3u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.probes, 20u);
    EXPECT_EQ(s.errors, 0u);
    EXPECT_EQ(s.timeouts, 0u);
    // Unloaded DIP: ~RTT + service time.
    EXPECT_NEAR(s.avg_latency_ms, 3.4, 1.0);
  }
  // Samples are newest-first.
  EXPECT_GT(samples[0].at, samples[1].at);
}

TEST(Klm, ProbesAllDipsEachRound) {
  Fixture f;
  server::DipServer dip1(f.net, net::IpAddr{10, 1, 0, 1}, {});
  server::DipServer dip2(f.net, net::IpAddr{10, 1, 0, 2}, {});
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip,
          {dip1.address(), dip2.address()}, f.store_addr, fast_cfg());
  klm.start();
  f.sim.run_until(2500_ms);
  EXPECT_GE(f.lat_store.recent(f.vip, dip1.address(), 10).size(), 2u);
  EXPECT_GE(f.lat_store.recent(f.vip, dip2.address(), 10).size(), 2u);
}

TEST(Klm, DeadDipYieldsAllTimeouts) {
  Fixture f;
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, {});
  dip.set_alive(false);
  auto cfg = fast_cfg();
  cfg.probe_timeout = 500_ms;
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip.address()},
          f.store_addr, cfg);
  klm.start();
  f.sim.run_until(2_s);
  const auto sample = f.lat_store.latest(f.vip, dip.address());
  ASSERT_TRUE(sample.has_value());
  EXPECT_TRUE(sample->all_failed());
  EXPECT_EQ(sample->timeouts, 20u);
}

TEST(Klm, OverloadedDipShowsErrors) {
  Fixture f;
  server::DipConfig dcfg;
  dcfg.backlog_per_core = 2;  // tiny backlog: probes themselves overflow it
  dcfg.demand_core_ms = 400.0;  // very slow: 2.5 rps capacity
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, dcfg);
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip.address()},
          f.store_addr, fast_cfg());
  klm.start();
  f.sim.run_until(3_s);
  const auto sample = f.lat_store.latest(f.vip, dip.address());
  ASSERT_TRUE(sample.has_value());
  EXPECT_TRUE(sample->saw_drops());
  EXPECT_GT(sample->errors, 0u);
}

TEST(Klm, ProbeOnceReportsSingleRound) {
  Fixture f;
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, {});
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip.address()},
          f.store_addr, fast_cfg());
  klm.probe_once(dip.address(), 5);
  f.sim.run_all();
  const auto sample = f.lat_store.latest(f.vip, dip.address());
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->probes, 5u);
}

// Removing a DIP mid-round must drop the round outright: its scheduled
// probes become no-ops and its pending timeouts are cancelled, so no stale
// (all-timeout) sample is ever written for a DIP nobody owns anymore.
TEST(Klm, RemoveDipMidRoundWritesNoStaleSample) {
  Fixture f;
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, {});
  dip.set_alive(false);  // every probe of the round would time out
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip.address()},
          f.store_addr, fast_cfg());
  klm.start();
  f.sim.run_until(300_ms);  // mid-round: some probes sent, none resolved
  EXPECT_EQ(klm.rounds_in_flight(), 1u);
  EXPECT_GT(klm.probes_outstanding(), 0u);

  klm.remove_dip(dip.address());
  EXPECT_EQ(klm.rounds_in_flight(), 0u);
  EXPECT_EQ(klm.probes_outstanding(), 0u);
  EXPECT_EQ(klm.rounds_dropped(), 1u);

  f.sim.run_until(5_s);  // all former timeouts would have fired by now
  klm.stop();
  EXPECT_TRUE(f.lat_store.recent(f.vip, dip.address(), 10).empty());
  EXPECT_EQ(klm.rounds_completed(), 0u);
}

// A removed DIP's in-flight probes must not resurrect the round via a late
// reply either: the live-DIP variant of the test above.
TEST(Klm, RemoveDipMidRoundIgnoresLateReplies) {
  Fixture f;
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, {});
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip.address()},
          f.store_addr, fast_cfg());
  klm.start();
  f.sim.run_until(200_ms);
  klm.remove_dip(dip.address());
  f.sim.run_until(3_s);
  klm.stop();
  EXPECT_TRUE(f.lat_store.recent(f.vip, dip.address(), 10).empty());
  EXPECT_EQ(klm.rounds_in_flight(), 0u);
}

// probe_once with a non-positive count would insert a round no resolution
// event can ever finish — it must be rejected, not leaked in flight.
TEST(Klm, ProbeOnceRejectsNonPositiveCount) {
  Fixture f;
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, {});
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip.address()},
          f.store_addr, fast_cfg());
  klm.probe_once(dip.address(), 0);
  klm.probe_once(dip.address(), -5);
  EXPECT_EQ(klm.rounds_in_flight(), 0u);
  EXPECT_EQ(klm.rejected_probe_requests(), 2u);
  f.sim.run_all();
  EXPECT_TRUE(f.lat_store.recent(f.vip, dip.address(), 10).empty());

  klm.probe_once(dip.address(), 3);  // sane requests still work
  f.sim.run_all();
  const auto sample = f.lat_store.latest(f.vip, dip.address());
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->probes, 3u);
}

// A DIP added mid-run joins the next periodic round.
TEST(Klm, AddDipMidRunStartsProbingNextRound) {
  Fixture f;
  server::DipServer dip1(f.net, net::IpAddr{10, 1, 0, 1}, {});
  server::DipServer dip2(f.net, net::IpAddr{10, 1, 0, 2}, {});
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip1.address()},
          f.store_addr, fast_cfg());
  klm.start();
  f.sim.run_until(1200_ms);  // round 1 (dip1 only) is over
  EXPECT_TRUE(f.lat_store.recent(f.vip, dip2.address(), 10).empty());

  klm.add_dip(dip2.address());
  f.sim.run_until(2900_ms);  // round 2 fires at 2 s and completes
  klm.stop();
  const auto samples = f.lat_store.recent(f.vip, dip2.address(), 10);
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples.front().probes, 20u);
  EXPECT_EQ(samples.front().timeouts, 0u);
}

TEST(Klm, AddRemoveDip) {
  Fixture f;
  server::DipServer dip1(f.net, net::IpAddr{10, 1, 0, 1}, {});
  server::DipServer dip2(f.net, net::IpAddr{10, 1, 0, 2}, {});
  Klm klm(f.net, net::IpAddr{10, 3, 0, 1}, f.vip, {dip1.address()},
          f.store_addr, fast_cfg());
  klm.add_dip(dip2.address());
  klm.remove_dip(dip1.address());
  klm.start();
  f.sim.run_until(1500_ms);
  EXPECT_TRUE(f.lat_store.recent(f.vip, dip1.address(), 10).empty());
  EXPECT_FALSE(f.lat_store.recent(f.vip, dip2.address(), 10).empty());
}

TEST(PingProber, MeasuresKernelRtt) {
  Fixture f;
  server::DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, {});
  PingProber prober(f.net, net::IpAddr{10, 3, 0, 3});
  prober.ping(dip.address(), 20);
  f.sim.run_all();
  EXPECT_EQ(prober.rtt_ms().count(), 20u);
  EXPECT_EQ(prober.lost(), 0u);
  // Two fabric hops + kernel handling: well under 1 ms.
  EXPECT_LT(prober.rtt_ms().mean(), 1.0);
}

TEST(PingProber, LostPingsCounted) {
  Fixture f;
  PingProber prober(f.net, net::IpAddr{10, 3, 0, 3});
  prober.ping(net::IpAddr{10, 9, 9, 9}, 5);  // nobody home
  f.sim.run_all();
  EXPECT_EQ(prober.lost(), 5u);
  EXPECT_EQ(prober.rtt_ms().count(), 0u);
}

}  // namespace
}  // namespace klb::klm
