// End-to-end pool churn under live traffic (ROADMAP item b): scale-out,
// rolling graceful scale-in, and abrupt failure on a KnapsackLB-managed
// pool served by an ECMP MuxPool, with clients, KLM, the latency store,
// and the controller all running. Asserts the paper's §4.7/§6 churn
// contract through the whole stack:
//   - a scaled-out DIP is explored and folded into the ILP while traffic
//     keeps flowing,
//   - graceful drains reset zero flows (pinned connections serve out),
//   - abrupt failure resets exactly the dead DIP's flows and nothing else,
//   - metrics stay attributed to the right DIP throughout, and post-churn
//     weights sum to ~1 and match the controller's per-address view.
#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace klb::testbed {
namespace {

using namespace util::literals;

TEST(ChurnE2E, ScaleOutDrainAndFailUnderLiveTraffic) {
  TestbedConfig cfg;
  cfg.seed = 73;
  cfg.use_knapsacklb = true;
  cfg.mux_count = 3;  // ECMP pool: churn must stay consistent pool-wide
  // Steady phases only: periodic curve refreshes would interleave their
  // own weight churn with the scenario's.
  cfg.controller.refresh_interval = util::SimTime::zero();
  std::vector<DipSpec> specs(6, DipSpec{});
  Testbed bed(specs, cfg);
  auto* pool = bed.mux_pool();
  ASSERT_NE(pool, nullptr);

  ASSERT_TRUE(bed.run_until_ready(util::SimTime::minutes(10)));
  bed.run_for(20_s);

  // --- Phase A: scale-out under traffic --------------------------------
  bed.reset_stats();
  DipSpec grown;
  grown.vm = server::kDs2v2;
  const auto ni = bed.scale_out(grown);
  const auto new_addr = bed.dip(ni).address();
  // The newcomer runs NeedL0 -> Exploring -> Ready while the incumbents
  // keep serving; all_ready() again means its curve is fitted and the ILP
  // has a weight for it.
  ASSERT_TRUE(bed.run_until_ready(util::SimTime::minutes(10)));
  bed.run_for(20_s);
  {
    const auto metrics = bed.metrics();
    ASSERT_EQ(metrics.size(), 7u);
    EXPECT_EQ(metrics[ni].addr, new_addr);
    EXPECT_GT(metrics[ni].weight, 0.0);
    const auto cw = bed.controller()->weight_of(new_addr);
    ASSERT_TRUE(cw.has_value());
    EXPECT_NEAR(*cw, metrics[ni].weight, 2e-3);
    EXPECT_GT(pool->new_connections_to(new_addr), 0u);
  }
  EXPECT_EQ(pool->flows_reset_by_failure(), 0u);
  // Steady no-drop invariant (ISSUE 5 — the counter existed but was
  // unreadable): scale-out must never leave a new connection without a
  // usable backend, pool-wide.
  EXPECT_EQ(pool->no_backend_drops(), 0u);

  // --- Phase B: rolling graceful scale-in ------------------------------
  const auto resets_before_drain = pool->flows_reset_by_failure();
  const auto timeouts_before_drain = bed.clients().recorder().timeouts();
  const auto goodput_before_drain = bed.clients().recorder().overall().count();
  ASSERT_TRUE(bed.scale_in(0));
  bed.run_for(30_s);
  ASSERT_TRUE(bed.scale_in(0));
  bed.run_for(30_s);
  EXPECT_EQ(bed.dip_count(), 5u);
  // Graceful: each leaver drained on every pool member without resetting
  // a single pinned flow, and no client request timed out because of it.
  EXPECT_EQ(pool->drains_completed(), 2 * pool->mux_count());
  EXPECT_EQ(pool->draining_count(), 0u);
  EXPECT_EQ(pool->flows_reset_by_failure(), resets_before_drain);
  EXPECT_EQ(bed.clients().recorder().timeouts(), timeouts_before_drain);
  // Traffic kept flowing through the drains.
  EXPECT_GT(bed.clients().recorder().overall().count(), goodput_before_drain);
  // Rolling drains are graceful end to end: no connection was ever refused
  // and no pinned flow was abruptly dropped by a removal.
  EXPECT_EQ(pool->no_backend_drops(), 0u);
  EXPECT_EQ(pool->flows_dropped_by_removal(), 0u);

  // --- Phase C: abrupt failure ----------------------------------------
  const auto dead_addr = bed.dip(1).address();
  std::uint64_t dead_active = 0;
  for (std::size_t k = 0; k < pool->mux_count(); ++k) {
    auto& m = pool->mux(k);
    for (std::size_t b = 0; b < m.backend_count(); ++b)
      if (m.backend_addr(b) == dead_addr) dead_active += m.active_connections(b);
  }
  const auto affinity_before = pool->affinity_size();
  const auto resets_before_fail = pool->flows_reset_by_failure();
  ASSERT_TRUE(bed.fail_dip(1));
  // Exactly the dead DIP's pinned flows are reset; survivors keep theirs.
  EXPECT_EQ(pool->flows_reset_by_failure() - resets_before_fail, dead_active);
  EXPECT_EQ(pool->affinity_size(), affinity_before - dead_active);
  bed.run_for(60_s);
  EXPECT_EQ(bed.dip_count(), 4u);
  // The controller's post-failure programs omit the corpse: it must not
  // have been re-admitted to the dataplane (even parked at weight 0, an
  // enabled dead backend would still be picked by unweighted policies).
  EXPECT_EQ(pool->backend_count(), 4u);
  for (const auto addr : pool->backend_addrs()) EXPECT_NE(addr, dead_addr);

  // --- Post-churn invariants -------------------------------------------
  // Freeze the control loop and let any transaction still riding the
  // programming delay commit: the comparison below is between settled
  // states, not a program mid-delay.
  bed.controller()->stop();
  bed.run_for(1_s);
  // Weights: address-attributed, summing to ~1 over the live pool, and
  // bit-for-bit the controller's own per-address view (modulo the weight
  // grid). No goodput collapse: the pool still serves, with failure costs
  // bounded to the reset flows' retries.
  const auto metrics = bed.metrics();
  ASSERT_EQ(metrics.size(), 4u);
  double sum = 0.0;
  for (const auto& m : metrics) {
    sum += m.weight;
    const auto cw = bed.controller()->weight_of(m.addr);
    ASSERT_TRUE(cw.has_value()) << m.addr.str();
    EXPECT_NEAR(*cw, m.weight, 2e-3) << m.addr.str();
    EXPECT_GT(m.client_requests, 0u) << m.addr.str();
  }
  EXPECT_NEAR(sum, 1.0, 1e-3);

  // Pool-level lifecycle accounting, through the testbed's aggregate view:
  // the whole scenario reset exactly the dead DIP's flows, dropped none by
  // abrupt removal, and never refused a connection (the failure's maglev
  // rebuild redistributes the corpse's hash space in the same step).
  const auto dm = bed.dataplane_metrics();
  EXPECT_EQ(dm.flows_dropped_by_removal, 0u);
  EXPECT_EQ(dm.no_backend_drops, 0u);
  // Exactly the dead DIP's pinned flows (captured before fail_dip), on top
  // of whatever the pre-failure phases had already reset (zero, asserted
  // above) — the independent expectation, not the pool's own sum.
  EXPECT_EQ(dm.flows_reset_by_failure, resets_before_fail + dead_active);
  EXPECT_EQ(dm.drains_completed, 2 * pool->mux_count());

  const auto successes = bed.clients().recorder().overall().count();
  const auto timeouts = bed.clients().recorder().timeouts();
  EXPECT_GT(successes, 10'000u);
  // Bounded damage: request timeouts (abrupt-failure fallout) stay under
  // 1% of the goodput; graceful phases contributed none (asserted above).
  EXPECT_LT(static_cast<double>(timeouts),
            0.01 * static_cast<double>(successes));
}

// The same churn ops must hold the dataplane together without the
// controller: the testbed emits the whole-pool transactions itself. A
// static-weighted pool scales out, rolls a drain, and takes a failure
// under open traffic; weights stay normalized over the live pool.
TEST(ChurnE2E, NoControllerChurnKeepsPoolConsistent) {
  TestbedConfig cfg;
  cfg.seed = 74;
  cfg.mux_count = 2;
  std::vector<DipSpec> specs(4, DipSpec{});
  Testbed bed(specs, cfg);
  auto* pool = bed.mux_pool();
  ASSERT_NE(pool, nullptr);
  bed.run_for(10_s);

  const auto ni = bed.scale_out(DipSpec{});
  bed.run_for(10_s);
  EXPECT_EQ(bed.dip_count(), 5u);
  EXPECT_GT(pool->new_connections_to(bed.dip(ni).address()), 0u);

  ASSERT_TRUE(bed.scale_in(0));
  bed.run_for(10_s);
  EXPECT_EQ(pool->draining_count(), 0u);
  EXPECT_EQ(pool->flows_reset_by_failure(), 0u);
  EXPECT_EQ(pool->no_backend_drops(), 0u);
  EXPECT_EQ(pool->flows_dropped_by_removal(), 0u);

  ASSERT_TRUE(bed.fail_dip(0));
  bed.run_for(10_s);
  EXPECT_EQ(bed.dip_count(), 3u);

  const auto metrics = bed.metrics();
  double sum = 0.0;
  for (const auto& m : metrics) {
    sum += m.weight;
    EXPECT_GT(m.client_requests, 0u);
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // KLM only probes the live pool: exactly one store key per live DIP has
  // fresh samples (the leavers' histories were forgotten).
  for (std::size_t i = 0; i < bed.dip_count(); ++i)
    EXPECT_FALSE(
        bed.latency_store().recent(bed.vip(), bed.dip(i).address(), 1).empty());
}

// ISSUE 8's churn invariant for the hybrid dataplane: with the stateless
// fast path on, graceful drains must not break a single flow's affinity —
// flows caught mid-drain adopt exception pins onto the drainer (counted as
// breaks avoided), everyone else keeps routing by hash, and the genuine
// break counter stays at zero through the whole scale-in.
TEST(ChurnE2E, StatelessGracefulDrainsBreakNoAffinity) {
  TestbedConfig cfg;
  cfg.seed = 75;
  cfg.mux_count = 2;  // ECMP pool: members share one maglev snapshot
  cfg.stateless_dataplane = true;
  cfg.expected_flows = 4096;
  std::vector<DipSpec> specs(5, DipSpec{});
  Testbed bed(specs, cfg);
  auto* pool = bed.mux_pool();
  ASSERT_NE(pool, nullptr);
  ASSERT_TRUE(pool->stateless_engaged());
  bed.run_for(10_s);

  // Steady state routes by hash: the flow tables stay (near) empty.
  {
    const auto dm = bed.dataplane_metrics();
    EXPECT_GT(dm.stateless_picks, 0u);
    EXPECT_EQ(dm.affinity_breaks, 0u);
  }

  // Rolling graceful scale-in under open traffic.
  ASSERT_TRUE(bed.scale_in(0));
  bed.run_for(15_s);
  ASSERT_TRUE(bed.scale_in(0));
  bed.run_for(15_s);
  EXPECT_EQ(bed.dip_count(), 3u);
  EXPECT_EQ(pool->draining_count(), 0u);
  EXPECT_EQ(pool->drains_completed(), 2 * pool->mux_count());

  const auto dm = bed.dataplane_metrics();
  // The invariant this subsystem exists for: graceful drains with the
  // stateless path on re-home zero flows. Anything caught mid-drain shows
  // up as an avoided break (an adoption), never a real one.
  EXPECT_EQ(dm.affinity_breaks, 0u);
  EXPECT_EQ(dm.flows_reset_by_failure, 0u);
  EXPECT_EQ(dm.flows_dropped_by_removal, 0u);
  EXPECT_EQ(dm.no_backend_drops, 0u);
  EXPECT_EQ(bed.clients().recorder().timeouts(), 0u);
  // The dataplane actually ran stateless through the churn.
  EXPECT_GT(dm.stateless_picks, 0u);

  // Quiesced, every exception pin has drained back out.
  bed.clients().stop();
  bed.run_for(30_s);
  pool->poll();
  EXPECT_EQ(pool->affinity_size(), 0u);
}

}  // namespace
}  // namespace klb::testbed
