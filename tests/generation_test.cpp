// Pool-generation publication tests (ISSUE 6, ROADMAP item 1): the
// EpochDomain reclamation primitive in isolation, the Mux's generation
// lifecycle counters through control-plane mutations, the draining
// enable-refusal warn path, and the two concurrency contracts the
// RCU-style scheme must keep under a racing packet path — enable/weight
// flips from one thread while another drives picks (no torn generation
// ever observable), and MuxPool::fail_backend condemnation under a
// concurrent reader (conservation + stale re-admission refusal).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "lb/epoch.hpp"
#include "lb/maglev.hpp"
#include "lb/mux.hpp"
#include "lb/mux_pool.hpp"
#include "lb/policy.hpp"
#include "lb/pool_generation.hpp"
#include "lb/pool_program.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "util/weight.hpp"

namespace klb::lb {
namespace {

net::FiveTuple flow(std::uint32_t client, std::uint16_t port) {
  net::FiveTuple t;
  t.src_ip = net::IpAddr(0x0a020000 + client);
  t.dst_ip = net::IpAddr{10, 0, 0, 1};
  t.src_port = port;
  t.dst_port = 80;
  return t;
}

net::Message request(std::uint32_t client, std::uint16_t port) {
  net::Message m;
  m.type = net::MsgType::kHttpRequest;
  m.tuple = flow(client, port);
  return m;
}

net::Message fin(std::uint32_t client, std::uint16_t port) {
  net::Message m;
  m.type = net::MsgType::kFin;
  m.tuple = flow(client, port);
  return m;
}

net::IpAddr dip_addr(std::size_t d) {
  return net::IpAddr(static_cast<std::uint32_t>(0x0a010000 + d + 1));
}

PoolProgram equal_program(std::uint64_t version, std::size_t dips) {
  PoolProgram p(version);
  for (std::size_t d = 0; d < dips; ++d)
    p.add(dip_addr(d),
          static_cast<std::int64_t>(util::kWeightScale / dips));
  return p;
}

// --- EpochDomain in isolation ------------------------------------------------

TEST(EpochDomainTest, RetireWithoutReadersReclaims) {
  EpochDomain dom;
  auto obj = std::make_shared<int>(42);
  std::weak_ptr<int> watch = obj;
  const auto e0 = dom.epoch();
  dom.retire(std::shared_ptr<const void>(std::move(obj)));
  EXPECT_EQ(dom.epoch(), e0 + 1);  // one bump per retire
  dom.reclaim();
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(dom.pending_retired(), 0u);
  EXPECT_EQ(dom.retired_total(), 1u);
  EXPECT_EQ(dom.reclaimed_total(), 1u);
  EXPECT_EQ(dom.oldest_live_epoch(), dom.epoch());
}

TEST(EpochDomainTest, PinnedReaderDefersReclaim) {
  EpochDomain dom;
  auto guard = dom.pin();  // reader pinned at the pre-retire epoch
  ASSERT_TRUE(guard.active());
  EXPECT_EQ(dom.oldest_live_epoch(), dom.epoch());

  auto obj = std::make_shared<int>(7);
  std::weak_ptr<int> watch = obj;
  dom.retire(std::shared_ptr<const void>(std::move(obj)));

  // The pin predates the retire tag: the object must survive reclaim.
  EXPECT_EQ(dom.reclaim(), 0u);
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(dom.pending_retired(), 1u);
  EXPECT_LT(dom.oldest_live_epoch(), dom.epoch());

  guard.release();
  EXPECT_FALSE(guard.active());
  EXPECT_EQ(dom.reclaim(), 1u);
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(dom.pending_retired(), 0u);
  EXPECT_EQ(dom.oldest_live_epoch(), dom.epoch());
}

TEST(EpochDomainTest, LaterPinDoesNotBlockEarlierRetire) {
  EpochDomain dom;
  auto early = dom.pin();
  auto obj = std::make_shared<int>(1);
  std::weak_ptr<int> watch = obj;
  dom.retire(std::shared_ptr<const void>(std::move(obj)));
  EXPECT_FALSE(watch.expired());  // the early pin holds it
  // Pinned *after* the retire bump: this reader can only see post-retire
  // state, so once the early pin goes it must not hold the object back.
  auto late = dom.pin();
  early.release();
  EXPECT_EQ(dom.reclaim(), 1u);
  EXPECT_TRUE(watch.expired());
}

TEST(EpochDomainTest, GuardMoveTransfersTheSlot) {
  EpochDomain dom;
  auto a = dom.pin();
  EXPECT_TRUE(a.active());
  EpochDomain::Guard b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): asserting it
  EXPECT_TRUE(b.active());
  auto obj = std::make_shared<int>(3);
  dom.retire(std::shared_ptr<const void>(std::move(obj)));
  EXPECT_EQ(dom.reclaim(), 0u);  // still pinned through b
  b.release();
  EXPECT_EQ(dom.reclaim(), 1u);
}

// --- Mux generation lifecycle ------------------------------------------------

TEST(GenerationTest, EveryControlMutationPublishesAndPollReclaims) {
  const auto live0 = PoolGeneration::live_count();
  {
    sim::Simulation sim(5);
    net::Network net(sim);
    net.set_blackhole(true);
    Mux mux(net, {10, 0, 0, 1}, make_policy("maglev"));

    // The constructor publishes generation 1 (empty pool).
    EXPECT_EQ(mux.generations_published(), 1u);
    EXPECT_EQ(mux.generation_seq(), 1u);

    mux.apply_program(equal_program(1, 4));
    EXPECT_EQ(mux.generations_published(), 2u);

    auto bump = [&mux](auto&& op) {
      const auto before = mux.generations_published();
      op();
      EXPECT_GT(mux.generations_published(), before);
    };
    bump([&] { mux.add_backend(dip_addr(9)); });
    bump([&] {
      std::vector<std::int64_t> units(mux.backend_count(), 100);
      EXPECT_TRUE(mux.set_weight_units(units));
    });
    bump([&] { EXPECT_TRUE(mux.set_backend_enabled(0, false)); });
    bump([&] { EXPECT_TRUE(mux.set_backend_enabled(0, true)); });

    // Quiesced: one poll reclaims everything but the current generation.
    mux.poll();
    EXPECT_EQ(mux.pending_retired_generations(), 0u);
    EXPECT_EQ(mux.generations_retired(), mux.generations_published() - 1);
    EXPECT_EQ(mux.oldest_live_epoch(), mux.current_epoch());
    EXPECT_TRUE(mux.debug_check_generation());
    EXPECT_EQ(PoolGeneration::live_count(), live0 + 1);
  }
  // The Mux's destructor must take its last generation with it.
  EXPECT_EQ(PoolGeneration::live_count(), live0);
}

TEST(GenerationTest, EnablingADrainingBackendIsRefused) {
  sim::Simulation sim(5);
  net::Network net(sim);
  net.set_blackhole(true);
  Mux mux(net, {10, 0, 0, 1}, make_policy("maglev"));
  mux.apply_program(equal_program(1, 2));

  // Pin one flow so the drain cannot auto-complete in the transaction.
  mux.on_message(request(1, 1000));
  std::size_t pinned = 0;
  for (std::size_t i = 0; i < mux.backend_count(); ++i)
    if (mux.active_connections(i) > 0) pinned = i;
  const auto pinned_addr = mux.backend_addr(pinned);
  const auto other_addr = mux.backend_addr(1 - pinned);

  PoolProgram drain(2);
  drain.add(other_addr, static_cast<std::int64_t>(util::kWeightScale));
  drain.add(pinned_addr, 0, BackendState::kDraining);
  mux.apply_program(drain);
  ASSERT_EQ(mux.backend_count(), 2u);
  ASSERT_EQ(mux.draining_count(), 1u);

  std::size_t drain_idx = mux.backend_draining(0) ? 0 : 1;
  const auto published_before = mux.generations_published();
  // Un-parking a drainer would let it accept new connections while still
  // promising auto-removal on empty — refused, nothing published.
  EXPECT_FALSE(mux.set_backend_enabled(drain_idx, true));
  EXPECT_TRUE(mux.backend_draining(drain_idx));
  EXPECT_EQ(mux.generations_published(), published_before);
  // Out-of-range is loud-but-safe, same as remove_backend.
  EXPECT_FALSE(mux.set_backend_enabled(99, true));
  EXPECT_FALSE(mux.set_backend_enabled(99, false));

  // The FIN empties the drainer; single-threaded callers complete the
  // removal inline (the opportunistic try_lock always succeeds here).
  mux.on_message(fin(1, 1000));
  EXPECT_EQ(mux.backend_count(), 1u);
  EXPECT_EQ(mux.drains_completed(), 1u);
  EXPECT_EQ(mux.backend_addr(0).value(), other_addr.value());
}

// One thread drives picks while another flips enable bits and shuffles
// weights; a third keeps pinning the current generation and verifying its
// structural checksum. Any torn publication (a reader observing a
// half-built generation, or dereferencing a reclaimed one) fails the
// checksum or trips the conservation counters. Runs on a single core too —
// preemption still interleaves the threads.
TEST(GenerationTest, ConcurrentFlagFlipsNeverTearAGeneration) {
  constexpr std::size_t kDips = 8;
  constexpr std::uint64_t kFlows = 200;
  constexpr std::uint64_t kReqPerFlow = 3;

  sim::Simulation sim(5);
  net::Network net(sim);
  net.set_blackhole(true);
  // Small maglev table: control mutations stay cheap, so the flipper
  // actually races the packet path instead of lagging it.
  Mux mux(net, {10, 0, 0, 1}, std::make_unique<MaglevPolicy>(251));
  mux.apply_program(equal_program(1, kDips));

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> opened{0};

  std::thread traffic([&] {
    std::uint64_t round = 0;
    do {
      for (std::uint64_t f = 0; f < kFlows; ++f) {
        mux.on_message(request(f, 2000));
        for (std::uint64_t q = 1; q < kReqPerFlow; ++q)
          mux.on_message(request(f, 2000));
        mux.on_message(fin(f, 2000));
      }
      sent.fetch_add(kFlows * kReqPerFlow, std::memory_order_relaxed);
      opened.fetch_add(kFlows, std::memory_order_relaxed);
      ++round;
    } while (!stop.load(std::memory_order_acquire) || round < 2);
  });

  std::thread checker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (!mux.debug_check_generation())
        torn.store(true, std::memory_order_relaxed);
    }
  });

  // Control plane: park/unpark one backend at a time (never more than one
  // disabled, so picks always succeed) and shuffle weights in between.
  for (int k = 0; k < 400; ++k) {
    const auto i = static_cast<std::size_t>(k) % kDips;
    EXPECT_TRUE(mux.set_backend_enabled(i, false));
    if (k % 5 == 0) {
      std::vector<std::int64_t> units(kDips);
      for (std::size_t d = 0; d < kDips; ++d)
        units[d] = 64 + static_cast<std::int64_t>((d + k) % 7) * 8;
      EXPECT_TRUE(mux.set_weight_units(units));
    }
    EXPECT_TRUE(mux.set_backend_enabled(i, true));
  }
  stop.store(true, std::memory_order_release);
  traffic.join();
  checker.join();
  mux.poll();

  EXPECT_FALSE(torn.load()) << "a reader observed a torn generation";
  EXPECT_EQ(mux.total_forwarded(), sent.load());
  std::uint64_t conns = 0, active = 0;
  for (std::size_t d = 0; d < kDips; ++d) {
    conns += mux.new_connections(d);
    active += mux.active_connections(d);
  }
  EXPECT_EQ(conns, opened.load());
  EXPECT_EQ(active, 0u);
  EXPECT_EQ(mux.no_backend_drops(), 0u);
  EXPECT_EQ(mux.affinity_size(), 0u);
  EXPECT_EQ(mux.dangling_affinity_count(), 0u);
  EXPECT_EQ(mux.pending_retired_generations(), 0u);
  EXPECT_EQ(mux.generations_retired(), mux.generations_published() - 1);
  EXPECT_EQ(mux.oldest_live_epoch(), mux.current_epoch());
}

// MuxPool::fail_backend while a reader thread sprays the VIP: the
// condemnation (tombstone at the pool's issued-version watermark) commits
// on every member under traffic, conservation holds through the removal,
// and a stale pre-failure program cannot re-admit the corpse.
TEST(GenerationTest, PoolFailBackendUnderConcurrentReader) {
  constexpr std::size_t kDips = 8;
  sim::Simulation sim(5);
  net::Network net(sim);
  net.set_blackhole(true);
  MuxPool pool(net, {10, 0, 0, 1}, 2, 251);
  {
    PoolProgram p = equal_program(pool.issue_version(), kDips);
    pool.apply_program(p);
  }
  ASSERT_EQ(pool.backend_count(), kDips);

  // Issued before the failure is observed: entries in a transaction at
  // this version predate the failure and must be refused later.
  const auto stale_version = pool.issue_version();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sent{0};
  std::thread reader([&] {
    std::uint64_t round = 0;
    do {
      for (std::uint32_t f = 0; f < 300; ++f) {
        pool.on_message(request(f, 3000));
        pool.on_message(fin(f, 3000));
      }
      sent.fetch_add(300, std::memory_order_relaxed);
      ++round;
    } while (!stop.load(std::memory_order_acquire) || round < 2);
  });

  const auto victim = dip_addr(3);
  EXPECT_TRUE(pool.fail_backend(victim));
  EXPECT_EQ(pool.backend_count(), kDips - 1);

  // The stale program lists the corpse at full weight: version-admissible
  // pool-wide (newer than the last commit) but condemned per member.
  PoolProgram stale = equal_program(stale_version, kDips);
  pool.apply_program(stale);
  EXPECT_EQ(pool.backend_count(), kDips - 1);
  EXPECT_GE(pool.stale_failed_admissions(), 1u);

  stop.store(true, std::memory_order_release);
  reader.join();
  pool.poll();

  // Every request either forwarded or (never, here) counted as dropped —
  // nothing vanishes across the failure commit.
  EXPECT_EQ(pool.total_forwarded() + pool.no_backend_drops(), sent.load());
  EXPECT_EQ(pool.no_backend_drops(), 0u);
  EXPECT_EQ(pool.affinity_size(), 0u);
  EXPECT_EQ(pool.pending_retired_generations(), 0u);
  // Shared-build invariant survives the churn: members still serve the
  // same maglev snapshot.
  EXPECT_EQ(pool.table_snapshot(0).get(), pool.table_snapshot(1).get());

  // A genuinely new program may resurrect the address (deliberate
  // re-admission clears the tombstone).
  PoolProgram fresh = equal_program(pool.issue_version(), kDips);
  pool.apply_program(fresh);
  EXPECT_EQ(pool.backend_count(), kDips);
}

}  // namespace
}  // namespace klb::lb
