// ShardedDriver + cross-shard fabric tests (ISSUE 9): window protocol,
// owner routing (registered / anycast / default-to-0), N=1 delegation,
// cross-shard mailbox delivery with zero late events, the late-event
// clamp counter itself, bit-exact replay of a 4-shard testbed run with a
// tuple-deterministic dataplane, and N=1 vs N=4 statistical agreement on
// end-of-run aggregates.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "net/fabric.hpp"
#include "sim/sharded_driver.hpp"
#include "sim/simulation.hpp"
#include "testbed/testbed.hpp"
#include "util/time.hpp"

namespace klb {
namespace {

using util::SimTime;

TEST(SimulationLateEvents, PastDueScheduleIsClampedAndCounted) {
  sim::Simulation sim(1);
  sim.schedule_at(SimTime::millis(10), [] {});
  sim.run_for(SimTime::millis(20));
  EXPECT_EQ(sim.late_events(), 0u);
  // now() is 20ms; scheduling at 5ms is past due: clamped to now, counted.
  bool ran = false;
  sim.schedule_at(SimTime::millis(5), [&] { ran = true; });
  EXPECT_EQ(sim.late_events(), 1u);
  sim.run_for(SimTime::millis(1));
  EXPECT_TRUE(ran);
}

TEST(ShardedDriver, OwnerRoutingAndDefaults) {
  sim::Simulation shard0(7);
  sim::ShardedDriver driver(shard0, 4, SimTime::micros(150));
  EXPECT_EQ(driver.shard_count(), 4u);
  EXPECT_EQ(driver.owner_of(123), 0u);  // unregistered -> control shard
  driver.set_owner(123, 2);
  EXPECT_EQ(driver.owner_of(123), 2u);
  driver.set_owner(456, sim::ShardedDriver::kAnycast);
  // Off-executor (this thread is between windows): anycast maps to the
  // main thread's shard, 0.
  EXPECT_EQ(driver.owner_of(456), 0u);
  EXPECT_EQ(driver.current_shard(), -1);
  EXPECT_EQ(driver.executing_shard(), 0u);
}

TEST(ShardedDriver, WindowsRunEveryShardAndRealignClocks) {
  sim::Simulation shard0(7);
  sim::ShardedDriver driver(shard0, 3, SimTime::micros(100));
  std::vector<int> fired(3, 0);
  for (std::size_t k = 0; k < 3; ++k) {
    driver.shard_sim(k).schedule_at(SimTime::micros(250 + 10 * k),
                                    [&fired, k] { ++fired[k]; });
  }
  const auto executed = driver.run_for(SimTime::millis(1));
  EXPECT_EQ(executed, 3u);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(fired[k], 1) << "shard " << k;
  EXPECT_EQ(driver.windows_run(), 10u);
  // All shard clocks agree at the boundary (run_until advances through
  // idle time).
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_EQ(driver.shard_sim(k).now(), SimTime::millis(1));
  EXPECT_EQ(driver.late_events(), 0u);
}

TEST(ShardedDriver, SingleShardDelegatesExactly) {
  sim::Simulation a(3), b(3);
  sim::ShardedDriver driver(a, 1, SimTime::micros(100));
  int na = 0, nb = 0;
  a.schedule_at(SimTime::micros(50), [&] { ++na; });
  b.schedule_at(SimTime::micros(50), [&] { ++nb; });
  driver.run_for(SimTime::millis(1));
  b.run_for(SimTime::millis(1));
  EXPECT_EQ(na, nb);
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(driver.windows_run(), 0u);  // no window machinery at N=1
}

/// Counts deliveries and stamps the receiving virtual time.
struct SinkNode : net::Node {
  sim::Simulation* sim = nullptr;
  std::uint64_t received = 0;
  SimTime last_at = SimTime::zero();
  void on_message(const net::Message&) override {
    ++received;
    last_at = sim->now();
  }
};

TEST(ShardedFabric, CrossShardDeliveryLandsInTheFutureWithNoLateEvents) {
  sim::Simulation shard0(11);
  sim::ShardedDriver driver(shard0, 2, SimTime::micros(150));
  net::Network net(shard0);
  net.set_driver(&driver);

  SinkNode sink;
  sink.sim = &driver.shard_sim(1);
  const net::IpAddr dst{10, 9, 0, 1};
  net.attach(dst, &sink);
  driver.set_owner(dst.value(), 1);

  // Send from shard 0 (main thread, executing_shard() == 0) at t=0: the
  // parcel crosses through the mailbox and must arrive on shard 1 at
  // >= base latency, never in the past.
  net::Message m;
  net.send(dst, m);
  EXPECT_EQ(net.messages_cross_shard(), 1u);
  driver.run_for(SimTime::millis(2));
  EXPECT_EQ(sink.received, 1u);
  EXPECT_GE(sink.last_at, SimTime::micros(150));
  EXPECT_EQ(driver.late_events(), 0u);

  // Burst path: one hop, one batch delivery, counted per message.
  const net::Message* burst[3] = {&m, &m, &m};
  net.send_burst(dst, burst, 3);
  driver.run_for(SimTime::millis(2));
  EXPECT_EQ(sink.received, 4u);
  EXPECT_EQ(net.messages_sent(), 4u);
  EXPECT_EQ(driver.late_events(), 0u);
  net.attach(dst, nullptr);
}

// --- full-stack determinism ---------------------------------------------------

struct RunAggregates {
  std::uint64_t successes, requests, sessions, forwarded, net_sent;
  std::uint64_t cross_shard, drops, timeouts, affinity;

  bool operator==(const RunAggregates& o) const {
    return successes == o.successes && requests == o.requests &&
           sessions == o.sessions && forwarded == o.forwarded &&
           net_sent == o.net_sent && cross_shard == o.cross_shard &&
           drops == o.drops && timeouts == o.timeouts &&
           affinity == o.affinity;
  }
};

RunAggregates run_once(std::size_t shards, std::uint64_t seed) {
  testbed::TestbedConfig cfg;
  cfg.seed = seed;
  cfg.mux_count = 2;  // pool -> shared maglev -> tuple-deterministic VIP
  cfg.driver_shards = shards;
  cfg.load_fraction = 0.4;
  cfg.use_knapsacklb = false;
  // A 1ms fabric keeps the window count (and test wall-clock) small.
  cfg.fabric.base_latency = SimTime::millis(1);
  std::vector<testbed::DipSpec> specs(4);
  testbed::Testbed bed(specs, cfg);
  bed.run_for(SimTime::seconds(1));
  const auto dm = bed.dataplane_metrics();
  return RunAggregates{bed.client_successes(),
                       bed.client_requests_sent(),
                       bed.client_sessions_started(),
                       bed.mux_pool()->total_forwarded(),
                       bed.network().messages_sent(),
                       bed.network().messages_cross_shard(),
                       dm.no_backend_drops,
                       bed.client_timeouts(),
                       dm.affinity_entries};
}

TEST(ShardedDriver, FourShardReplayIsBitExact) {
  // Steady drain-free traffic on a tuple-deterministic dataplane: every
  // tuple is processed on its client's shard, counters commute, and the
  // mailbox drain order is fixed — so a rerun with the same seed must
  // reproduce every aggregate exactly, threads and all.
  const auto a = run_once(4, 2026);
  const auto b = run_once(4, 2026);
  EXPECT_TRUE(a == b)
      << "successes " << a.successes << "/" << b.successes << ", requests "
      << a.requests << "/" << b.requests << ", forwarded " << a.forwarded
      << "/" << b.forwarded << ", sent " << a.net_sent << "/" << b.net_sent;
  EXPECT_GT(a.successes, 100u);
  EXPECT_GT(a.cross_shard, 0u);
  EXPECT_EQ(a.drops, 0u);
  EXPECT_EQ(a.timeouts, 0u);
}

TEST(ShardedDriver, OneVsFourShardsAgreeStatistically) {
  // N=1 and N=4 split the arrival process differently (per-shard client
  // pools with forked RNGs), so equality is statistical, not exact: same
  // offered rate, so completed-request totals within a documented 25%
  // tolerance, and the hard invariants exact.
  const auto one = run_once(1, 9);
  const auto four = run_once(4, 9);
  EXPECT_EQ(one.drops, 0u);
  EXPECT_EQ(four.drops, 0u);
  EXPECT_EQ(one.timeouts, 0u);
  EXPECT_EQ(four.timeouts, 0u);
  EXPECT_EQ(one.cross_shard, 0u);  // single shard: no mailbox traffic
  ASSERT_GT(one.successes, 0u);
  ASSERT_GT(four.successes, 0u);
  const double ratio = static_cast<double>(four.successes) /
                       static_cast<double>(one.successes);
  EXPECT_GT(ratio, 0.75) << one.successes << " vs " << four.successes;
  EXPECT_LT(ratio, 1.25) << one.successes << " vs " << four.successes;
}

}  // namespace
}  // namespace klb
