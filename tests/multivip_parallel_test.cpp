// Solver-pool and multi-VIP control-plane tests: the SolverPool work
// queue, parallel-vs-serial weight determinism (a pooled coordinator run
// must be bit-identical to a serial one), and the coordinator's
// slot-granting policy (dirty VIPs first, least-recently-granted order,
// no starvation under persistent contention).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/solver_pool.hpp"
#include "testbed/fleet.hpp"

namespace klb::core {
namespace {

// --- SolverPool ---------------------------------------------------------------

TEST(SolverPool, RunsEverySubmittedJob) {
  SolverPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(pool.jobs_run(), 200u);
}

TEST(SolverPool, WaitIdleWithNothingSubmittedReturnsImmediately) {
  SolverPool pool(2);
  pool.wait_idle();
  EXPECT_EQ(pool.jobs_run(), 0u);
}

TEST(SolverPool, WaitIdleBlocksUntilInFlightJobsFinish) {
  SolverPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  pool.wait_idle();
  // Not merely dequeued: fully executed.
  EXPECT_EQ(done.load(), 8);
}

TEST(SolverPool, DestructorDrainsTheQueue) {
  std::atomic<int> count{0};
  {
    SolverPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 50);
}

TEST(SolverPool, ZeroThreadsPicksHardwareConcurrency) {
  SolverPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(SolverPool, ReusableAcrossWaves) {
  SolverPool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 16; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (wave + 1) * 16);
  }
}

// --- Parallel == serial determinism -------------------------------------------

MultiVipConfig fleet_cfg(int solver_threads, int max_ilp_per_round = 0) {
  MultiVipConfig cfg;
  cfg.solver_threads = solver_threads;
  cfg.max_ilp_per_round = max_ilp_per_round;  // 0 = unlimited
  return cfg;
}

TEST(MultiVipParallel, PooledWeightsBitIdenticalToSerial) {
  constexpr std::size_t kVips = 24, kDips = 8, kSeed = 7;
  testbed::SyntheticFleet serial(kVips, kDips, fleet_cfg(1), kSeed);
  testbed::SyntheticFleet pooled(kVips, kDips, fleet_cfg(4), kSeed);
  ASSERT_EQ(pooled.coordinator().solver_threads(), 4u);

  for (int round = 0; round < 5; ++round) {
    serial.mark_all_dirty();
    pooled.mark_all_dirty();
    serial.tick_round();
    pooled.tick_round();
    for (std::size_t v = 0; v < kVips; ++v) {
      const auto& ws = serial.coordinator().controller(v).current_weights();
      const auto& wp = pooled.coordinator().controller(v).current_weights();
      ASSERT_EQ(ws.size(), wp.size());
      for (std::size_t d = 0; d < ws.size(); ++d)
        EXPECT_EQ(ws[d], wp[d]) << "round " << round << " vip " << v
                                << " dip " << d;  // exact, not NEAR
      EXPECT_EQ(serial.lb(v).last_units(), pooled.lb(v).last_units());
    }
    // Identical drift applied to both fleets keeps later rounds meaningful.
    for (std::size_t v = 0; v < kVips; ++v) {
      const double delta = 0.8 + 0.05 * static_cast<double>(round);
      auto rescale = [&](testbed::SyntheticFleet& f) {
        auto& ctl = f.coordinator().controller(v);
        auto curve = ctl.curve(round % kDips);
        curve.rescale(delta);
        ctl.inject_ready_curve(round % kDips, std::move(curve));
      };
      rescale(serial);
      rescale(pooled);
    }
  }
}

TEST(MultiVipParallel, SlotBudgetScalesWithSolverThreads) {
  testbed::SyntheticFleet fleet(12, 4, fleet_cfg(3, 2), 3);
  EXPECT_EQ(fleet.coordinator().slot_budget(), 6);  // 2 per thread x 3
  fleet.mark_all_dirty();
  fleet.tick_round();
  std::uint64_t solved = 0;
  for (std::size_t v = 0; v < 12; ++v)
    solved += fleet.coordinator().controller(v).ilp_runs();
  EXPECT_EQ(solved, 6u);
}

// --- Slot-granting fairness ---------------------------------------------------

TEST(MultiVipFairness, PersistentlyDirtyVipsShareSlotsEvenly) {
  constexpr std::size_t kVips = 8;
  testbed::SyntheticFleet fleet(kVips, 4, fleet_cfg(1, 2), 5);  // 2 slots/round
  for (int round = 0; round < 12; ++round) {
    fleet.mark_all_dirty();  // every VIP contends every round
    fleet.tick_round();
  }
  // 12 rounds x 2 slots = 24 grants over 8 VIPs: exactly 3 each.
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (std::size_t v = 0; v < kVips; ++v) {
    const auto runs = fleet.coordinator().controller(v).ilp_runs();
    lo = std::min(lo, runs);
    hi = std::max(hi, runs);
  }
  EXPECT_EQ(lo, 3u) << "a VIP was starved";
  EXPECT_EQ(hi, 3u) << "a VIP was favoured";
  EXPECT_EQ(fleet.coordinator().ilp_grants(), 24u);
}

TEST(MultiVipFairness, DirtyFirstNoGrantsWastedOnCleanVips) {
  testbed::SyntheticFleet fleet(6, 4, fleet_cfg(1, 2), 9);
  fleet.mark_all_dirty();
  // Rounds 1-3 drain the initial dirty backlog (2 per round).
  for (int round = 0; round < 3; ++round) fleet.tick_round();
  EXPECT_EQ(fleet.coordinator().ilp_grants(), 6u);

  // All clean now: a round must grant nothing (slots are not burned on
  // clean VIPs the way the fixed-slot design did).
  fleet.tick_round();
  EXPECT_EQ(fleet.coordinator().ilp_grants(), 6u);

  // One VIP dirties: it gets a slot on the very next round even though
  // every other VIP holds an older grant stamp.
  fleet.coordinator().controller(4).mark_dirty();
  const auto runs_before = fleet.coordinator().controller(4).ilp_runs();
  fleet.tick_round();
  EXPECT_EQ(fleet.coordinator().controller(4).ilp_runs(), runs_before + 1);
  EXPECT_EQ(fleet.coordinator().ilp_grants(), 7u);
}

TEST(MultiVipFairness, LeastRecentlyGrantedVipWinsTheTie) {
  testbed::SyntheticFleet fleet(4, 4, fleet_cfg(1, 1), 11);  // 1 slot/round
  fleet.mark_all_dirty();
  // Rounds grant VIP 0, 1, 2, 3 in order (equal dirt, FIFO by last grant).
  std::vector<std::uint64_t> expect_runs(4, 0);
  for (std::size_t round = 0; round < 4; ++round) {
    fleet.mark_all_dirty();
    fleet.tick_round();
    expect_runs[round] += 1;
    for (std::size_t v = 0; v < 4; ++v)
      EXPECT_EQ(fleet.coordinator().controller(v).ilp_runs(), expect_runs[v])
          << "round " << round << " vip " << v;
  }
}

}  // namespace
}  // namespace klb::core
