// Stateless-fast-path subsystem tests (ISSUE 8, ROADMAP item 2): the
// GenerationDiff/ExceptionFilter engine in isolation (baseline, flagging,
// window aging, geometry guards), the SlotPinCounts floor, and the Mux
// routing contract end to end — a flow on an unchanged slot never grows a
// FlowTable entry across N publishes, a mid-flow packet whose slot's pick
// moved is adopted onto its previous owner (the break the subsystem
// exists to avoid), the resulting pin survives a later publish that
// un-changes its slot, and stateless drains wait out the adoption grace
// before auto-completing.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "lb/consistency.hpp"
#include "lb/maglev.hpp"
#include "lb/mux.hpp"
#include "lb/pool_program.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "util/weight.hpp"

namespace klb::lb {
namespace {

net::FiveTuple flow(std::uint32_t client, std::uint16_t port) {
  net::FiveTuple t;
  t.src_ip = net::IpAddr(0x0a020000 + client);
  t.dst_ip = net::IpAddr{10, 0, 0, 1};
  t.src_port = port;
  t.dst_port = 80;
  return t;
}

net::Message request(std::uint32_t client, std::uint16_t port,
                     std::uint64_t req_id = 0) {
  net::Message m;
  m.type = net::MsgType::kHttpRequest;
  m.tuple = flow(client, port);
  m.req_id = req_id;  // <= 1 opens the connection; > 1 is mid-flow
  return m;
}

net::Message fin(std::uint32_t client, std::uint16_t port) {
  net::Message m;
  m.type = net::MsgType::kFin;
  m.tuple = flow(client, port);
  return m;
}

net::IpAddr dip_addr(std::size_t d) {
  return net::IpAddr(static_cast<std::uint32_t>(0x0a010000 + d + 1));
}

PoolProgram equal_program(std::uint64_t version, std::size_t dips) {
  PoolProgram p(version);
  for (std::size_t d = 0; d < dips; ++d)
    p.add(dip_addr(d), static_cast<std::int64_t>(util::kWeightScale / dips));
  return p;
}

/// The backend index that owns the single live flow (by connection count).
std::size_t owner_of_only_flow(const Mux& mux) {
  std::size_t owner = kNoBackend;
  for (std::size_t i = 0; i < mux.backend_count(); ++i)
    if (mux.new_connections(i) > 0) owner = i;
  return owner;
}

// --- GenerationDiff / ExceptionFilter in isolation ---------------------------

TEST(GenerationDiffTest, BaselineAndIdenticalRebuildsFlagNothing) {
  GenerationDiff diff(ConsistencyConfig{});
  MaglevTable table(251);
  table.build({{1, 100}, {2, 100}, {3, 100}});

  // First publish seeds the history: nothing to diff against, no flags.
  const auto f1 = diff.on_publish(table, 1);
  ASSERT_NE(f1, nullptr);
  EXPECT_EQ(f1->seq(), 1u);
  EXPECT_EQ(f1->table_size(), table.table_size());
  EXPECT_EQ(f1->exception_slots(), 0u);

  // An identical rebuild moves no slots, so nothing is flagged and every
  // slot reads kNoOwner.
  const auto f2 = diff.on_publish(table, 2);
  ASSERT_NE(f2, nullptr);
  EXPECT_EQ(f2->exception_slots(), 0u);
  for (std::size_t s = 0; s < table.table_size(); ++s) {
    EXPECT_FALSE(f2->is_exception(s));
    EXPECT_EQ(f2->prev_owner(s), ExceptionFilter::kNoOwner);
  }
}

TEST(GenerationDiffTest, OwnerChangesAreFlaggedWithTheDisplacedOwner) {
  GenerationDiff diff(ConsistencyConfig{});
  MaglevTable before(251);
  before.build({{1, 100}, {2, 100}, {3, 100}});
  MaglevTable after(251);
  after.build({{1, 100}, {3, 100}});  // id 2 leaves; its slots re-home

  std::vector<std::uint32_t> owners_before, owners_after;
  before.resolve_slots(owners_before);
  after.resolve_slots(owners_after);
  ASSERT_EQ(owners_before.size(), owners_after.size());

  diff.on_publish(before, 1);
  const auto f = diff.on_publish(after, 2);
  ASSERT_NE(f, nullptr);

  std::size_t changed = 0;
  for (std::size_t s = 0; s < owners_before.size(); ++s) {
    if (owners_before[s] != owners_after[s]) {
      ++changed;
      // Every moved slot is flagged and remembers who it displaced —
      // where that slot's pre-change stateless flows actually live.
      EXPECT_TRUE(f->is_exception(s)) << "slot " << s;
      EXPECT_EQ(f->prev_owner(s), owners_before[s]) << "slot " << s;
    } else {
      EXPECT_FALSE(f->is_exception(s)) << "slot " << s;
      EXPECT_EQ(f->prev_owner(s), ExceptionFilter::kNoOwner) << "slot " << s;
    }
  }
  // Removing one of three equal backends must move some slots (its whole
  // share) but not all of them (maglev's minimal disruption).
  EXPECT_GT(changed, 0u);
  EXPECT_LT(changed, owners_before.size());
  EXPECT_EQ(f->exception_slots(), changed);
}

TEST(GenerationDiffTest, ChangesAgeOutOfTheHistoryWindow) {
  ConsistencyConfig cfg;
  cfg.history = 2;
  GenerationDiff diff(cfg);
  MaglevTable before(251);
  before.build({{1, 100}, {2, 100}});
  MaglevTable after(251);
  after.build({{1, 100}});

  diff.on_publish(before, 1);
  const auto changed = diff.on_publish(after, 2)->exception_slots();
  ASSERT_GT(changed, 0u);
  // The change stays visible for `history` publishes, then ages out.
  EXPECT_EQ(diff.on_publish(after, 3)->exception_slots(), changed);
  EXPECT_EQ(diff.on_publish(after, 4)->exception_slots(), 0u);
}

TEST(GenerationDiffTest, GeometryChangeDisengagesThatPublishOnly) {
  GenerationDiff diff(ConsistencyConfig{});
  MaglevTable small(251);
  small.build({{1, 100}});
  MaglevTable large(509);
  large.build({{1, 100}});

  ASSERT_NE(diff.on_publish(small, 1), nullptr);
  // Incomparable slot geometry: no filter for this publish (the Mux then
  // pins every flow of that generation — the classic dataplane).
  EXPECT_EQ(diff.on_publish(large, 2), nullptr);
  // A same-geometry publish re-engages.
  EXPECT_NE(diff.on_publish(small, 3), nullptr);
}

TEST(SlotPinCountsTest, CountsPerSlotAndDecrementFloorsAtZero) {
  SlotPinCounts pins(8);
  EXPECT_EQ(pins.size(), 8u);
  pins.inc(3);
  pins.inc(3);
  pins.inc(5);
  EXPECT_EQ(pins.count(3), 2u);
  EXPECT_EQ(pins.count(5), 1u);
  EXPECT_EQ(pins.total(), 3u);
  pins.dec(3);
  pins.dec(3);
  pins.dec(3);  // stray decrement: floored, never wraps
  EXPECT_EQ(pins.count(3), 0u);
  EXPECT_EQ(pins.total(), 1u);
}

// --- Mux routing contract ----------------------------------------------------

TEST(StatelessFastPath, UnchangedSlotFlowNeverPinsAcrossPublishes) {
  sim::Simulation sim(5);
  net::Network net(sim);
  net.set_blackhole(true);
  ConsistencyConfig consistency;
  consistency.stateless = true;
  Mux mux(net, {10, 0, 0, 1}, std::make_unique<MaglevPolicy>(251),
          /*attach_to_vip=*/true, FlowTableConfig{}, consistency);
  ASSERT_TRUE(mux.stateless_engaged());
  mux.apply_program(equal_program(1, 8));
  EXPECT_EQ(mux.exception_slots(), 0u);  // empty -> owned is exempt

  // Opener: routed by hash, counted as a connection, never pinned.
  mux.on_message(request(7, 4242, /*req_id=*/1));
  EXPECT_EQ(mux.affinity_size(), 0u);
  EXPECT_EQ(mux.stateless_picks(), 1u);
  const auto owner = owner_of_only_flow(mux);
  ASSERT_NE(owner, kNoBackend);
  EXPECT_EQ(mux.new_connections(owner), 1u);
  // Stateless flows hold no pin: `active` counts pins, which drains wait on.
  EXPECT_EQ(mux.active_connections(owner), 0u);

  // Identical re-publishes move no slots: every later packet keeps routing
  // by hash to the same backend, with the flow table untouched.
  for (std::uint64_t g = 2; g <= 6; ++g) {
    mux.apply_program(equal_program(g, 8));
    EXPECT_EQ(mux.exception_slots(), 0u);
    mux.on_message(request(7, 4242, /*req_id=*/g));
    EXPECT_EQ(mux.affinity_size(), 0u);
    EXPECT_EQ(mux.forwarded_requests(owner), g);
    EXPECT_EQ(mux.new_connections(owner), 1u);  // opener counted once
  }
  EXPECT_EQ(mux.stateless_picks(), 6u);
  EXPECT_EQ(mux.exception_pins(), 0u);
  EXPECT_EQ(mux.live_exception_pins(), 0u);

  // The close is stateless too: nothing to erase, the FIN is forwarded to
  // the flow's table pick so the server closes out.
  const auto sent_before = net.messages_blackholed();
  mux.on_message(fin(7, 4242));
  EXPECT_EQ(net.messages_blackholed(), sent_before + 1);
  EXPECT_EQ(mux.affinity_size(), 0u);
  EXPECT_EQ(mux.affinity_breaks(), 0u);
}

TEST(StatelessFastPath, MidFlowAdoptionPinsToThePreviousOwner) {
  sim::Simulation sim(5);
  net::Network net(sim);
  net.set_blackhole(true);
  ConsistencyConfig consistency;
  consistency.stateless = true;
  Mux mux(net, {10, 0, 0, 1}, std::make_unique<MaglevPolicy>(251),
          /*attach_to_vip=*/true, FlowTableConfig{}, consistency);
  mux.apply_program(equal_program(1, 8));

  // One stateless flow; remember who serves it.
  mux.on_message(request(1, 5555, /*req_id=*/1));
  const auto owner = owner_of_only_flow(mux);
  ASSERT_NE(owner, kNoBackend);
  const auto owner_addr = mux.backend_addr(owner);
  ASSERT_EQ(mux.affinity_size(), 0u);

  // Drain the owner: the table rebuilds without it, so the flow's slot is
  // flagged with the drainer as the displaced owner.
  {
    PoolProgram drain(2);
    for (std::size_t d = 0; d < 8; ++d) {
      const auto addr = dip_addr(d);
      if (addr == owner_addr)
        drain.add(addr, 0, BackendState::kDraining);
      else
        drain.add(addr, static_cast<std::int64_t>(util::kWeightScale / 7));
    }
    mux.apply_program(drain);
  }
  ASSERT_EQ(mux.draining_count(), 1u);
  EXPECT_GT(mux.exception_slots(), 0u);

  // Mid-flow packet: the pick moved away, so the flow is adopted — pinned
  // to the drainer it was opened on instead of breaking onto the new pick.
  mux.on_message(request(1, 5555, /*req_id=*/2));
  EXPECT_EQ(mux.affinity_breaks_avoided(), 1u);
  EXPECT_EQ(mux.affinity_breaks(), 0u);
  EXPECT_EQ(mux.affinity_size(), 1u);
  EXPECT_EQ(mux.exception_pins(), 1u);
  EXPECT_EQ(mux.live_exception_pins(), 1u);
  EXPECT_EQ(mux.forwarded_requests(owner), 2u);
  EXPECT_EQ(mux.active_connections(owner), 1u);
  // Adoption is not a new connection: the opener already counted it.
  EXPECT_EQ(mux.new_connections(owner), 1u);

  // The pinned drainer cannot auto-complete while the flow lives.
  mux.poll();
  EXPECT_EQ(mux.draining_count(), 1u);
  EXPECT_EQ(mux.drains_completed(), 0u);

  // G+1 un-changes the slot: cancelling the drain hands the slot back to
  // the original owner. The pin must survive the publish — the next packet
  // is an affinity hit (not a stateless pick), still on the same backend.
  mux.apply_program(equal_program(3, 8));
  ASSERT_EQ(mux.draining_count(), 0u);
  const auto picks_before = mux.stateless_picks();
  mux.on_message(request(1, 5555, /*req_id=*/3));
  EXPECT_EQ(mux.stateless_picks(), picks_before);
  EXPECT_EQ(mux.affinity_size(), 1u);
  EXPECT_EQ(mux.live_exception_pins(), 1u);
  EXPECT_EQ(mux.forwarded_requests(owner), 3u);

  // FIN unpins cleanly: slot counts drain back to zero, nothing dangles.
  mux.on_message(fin(1, 5555));
  EXPECT_EQ(mux.affinity_size(), 0u);
  EXPECT_EQ(mux.live_exception_pins(), 0u);
  EXPECT_EQ(mux.active_connections(owner), 0u);
  EXPECT_EQ(mux.dangling_affinity_count(), 0u);
}

TEST(StatelessFastPath, DrainWaitsOutTheAdoptionGrace) {
  sim::Simulation sim(5);
  net::Network net(sim);
  net.set_blackhole(true);
  ConsistencyConfig consistency;
  consistency.stateless = true;
  consistency.drain_grace_us = 10'000;
  Mux mux(net, {10, 0, 0, 1}, std::make_unique<MaglevPolicy>(251),
          /*attach_to_vip=*/true, FlowTableConfig{}, consistency);
  mux.apply_program(equal_program(1, 4));

  // A stateless flow holds no pin, so its backend's active count is zero —
  // which must NOT be read as "safe to remove" the instant a drain starts.
  mux.on_message(request(2, 6000, /*req_id=*/1));
  const auto owner = owner_of_only_flow(mux);
  ASSERT_NE(owner, kNoBackend);
  const auto owner_addr = mux.backend_addr(owner);
  {
    PoolProgram drain(2);
    for (std::size_t d = 0; d < 4; ++d) {
      const auto addr = dip_addr(d);
      if (addr == owner_addr)
        drain.add(addr, 0, BackendState::kDraining);
      else
        drain.add(addr, static_cast<std::int64_t>(util::kWeightScale / 3));
    }
    mux.apply_program(drain);
  }
  ASSERT_EQ(mux.active_connections(owner), 0u);
  // Inside the grace window: the drain holds, however often it is polled.
  mux.poll();
  EXPECT_EQ(mux.draining_count(), 1u);
  EXPECT_EQ(mux.backend_count(), 4u);

  // The window is exactly what the flow needs to adopt a pin mid-flow.
  mux.on_message(request(2, 6000, /*req_id=*/2));
  EXPECT_EQ(mux.affinity_breaks_avoided(), 1u);
  EXPECT_EQ(mux.active_connections(owner), 1u);

  // Once the pin drops AND the grace has elapsed, the drain completes.
  mux.on_message(fin(2, 6000));
  sim.run_for(util::SimTime::micros(consistency.drain_grace_us));
  mux.poll();
  EXPECT_EQ(mux.draining_count(), 0u);
  EXPECT_EQ(mux.backend_count(), 3u);
  EXPECT_EQ(mux.drains_completed(), 1u);
  EXPECT_EQ(mux.affinity_breaks(), 0u);
}

}  // namespace
}  // namespace klb::lb
