// Unit + property tests for util: RNG determinism and distribution moments,
// streaming stats, histograms, time-weighted averages, fixed-point weights.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"
#include "util/weight.hpp"

namespace klb::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntUnbiasedBounds) {
  Rng rng(3);
  std::array<int, 5> counts{};
  for (int i = 0; i < 50'000; ++i) counts[rng.uniform_int(std::uint64_t{5})]++;
  for (const int c : counts) EXPECT_NEAR(c, 10'000, 500);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  Welford w;
  for (int i = 0; i < 200'000; ++i) w.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(w.mean(), 10.0, 0.05);
  EXPECT_NEAR(w.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMeanCov) {
  Rng rng(17);
  Welford w;
  for (int i = 0; i < 300'000; ++i) w.add(rng.lognormal_mean_cov(3.0, 0.15));
  EXPECT_NEAR(w.mean(), 3.0, 0.02);
  EXPECT_NEAR(w.stddev() / w.mean(), 0.15, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(19);
  const std::vector<double> weights{1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) counts[rng.weighted_index(weights)]++;
  EXPECT_NEAR(counts[0], n * 0.1, n * 0.01);
  EXPECT_NEAR(counts[1], n * 0.2, n * 0.015);
  EXPECT_NEAR(counts[2], n * 0.7, n * 0.015);
}

TEST(Rng, WeightedIndexAllZeroReturnsSize) {
  Rng rng(23);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(weights), weights.size());
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.fork();
  // The child stream should not replicate the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next() == child.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Welford, BasicMoments) {
  Welford w;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(w.min(), 2.0);
  EXPECT_EQ(w.max(), 9.0);
  EXPECT_EQ(w.count(), 8u);
}

TEST(Welford, MergeMatchesSequential) {
  Rng rng(29);
  Welford all;
  Welford a;
  Welford b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.variance(), 0.0);
}

TEST(LogHistogram, PercentileAccuracy) {
  LogHistogram h(1e-5, 1e2, 100);
  Rng rng(31);
  std::vector<double> values;
  for (int i = 0; i < 100'000; ++i) {
    const double v = rng.exponential(0.010);  // 10 ms mean, in seconds
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {0.5, 0.9, 0.99}) {
    const double exact = values[static_cast<std::size_t>(p * values.size())];
    EXPECT_NEAR(h.percentile(p) / exact, 1.0, 0.05) << "p=" << p;
  }
}

TEST(LogHistogram, MeanMatches) {
  LogHistogram h;
  h.add(0.001);
  h.add(0.003);
  EXPECT_NEAR(h.mean(), 0.002, 1e-12);
}

TEST(LogHistogram, ClampsOutOfRange) {
  LogHistogram h(1e-3, 1.0, 10);
  h.add(1e-9);
  h.add(50.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.percentile(0.99), 0.0);
}

// Regression (ISSUE 2): when the cumulative count crossed the rank without
// a matching non-empty bucket (e.g. counts undercount total_ after merging
// a histogram with a wider range), percentile() fell through to the *last*
// bucket of the whole range, inflating reported tails. It must resolve to
// the last non-empty bucket at or before the crossing instead.
TEST(LogHistogram, PercentileNotInflatedWhenCountsUndercountTotal) {
  LogHistogram narrow(1e-3, 1.0, 10);
  narrow.add(0.01);
  LogHistogram wide(1e-3, 1e6, 10);
  wide.add(1e5);  // lands in a bucket beyond narrow's range
  narrow.merge(wide);  // total_ = 2 but only one sample is in counts

  // P99 must report the only observable sample (~0.01), not the top of
  // narrow's range (~1.0).
  EXPECT_NEAR(narrow.percentile(0.99), 0.01, 0.005);
}

TEST(LogHistogram, AllPercentilesOfSingleValueAgree) {
  LogHistogram h;
  h.add(0.05);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.percentile(1.0));
  EXPECT_NEAR(h.percentile(0.5), 0.05, 0.005);
}

TEST(TimeWeighted, StepFunctionAverage) {
  TimeWeighted tw;
  tw.set(0.0, 0.0);
  tw.set(1.0, 2.0);   // value 0 during [0,1)
  tw.set(3.0, 4.0);   // value 2 during [1,3)
  // value 4 during [3,5): average = (0*1 + 2*2 + 4*2) / 5 = 2.4
  EXPECT_NEAR(tw.average(5.0), 2.4, 1e-12);
  EXPECT_EQ(tw.current(), 4.0);
}

TEST(TimeWeighted, WindowReset) {
  TimeWeighted tw;
  tw.set(0.0, 10.0);
  tw.set(5.0, 2.0);
  tw.reset_window(5.0);
  EXPECT_NEAR(tw.average(10.0), 2.0, 1e-12);
}

// Regression (ISSUE 2): a transition with a timestamp before the previous
// one accumulated negative area. The value update is kept; the backwards
// time step contributes nothing and the clock never rewinds.
TEST(TimeWeighted, NonMonotonicTimeAddsNoNegativeArea) {
  TimeWeighted tw;
  tw.set(0.0, 5.0);
  tw.set(10.0, 1.0);
  tw.set(8.0, 3.0);  // skewed feeder: time went backwards
  // [0,10) at 5 = 50, backwards step ignored (value becomes 3), [10,12)
  // at 3 = 6 -> average 56 / 12.
  EXPECT_NEAR(tw.average(12.0), 56.0 / 12.0, 1e-12);
  EXPECT_EQ(tw.current(), 3.0);
}

TEST(SimTime, ArithmeticAndComparison) {
  using namespace literals;
  EXPECT_EQ((5_ms).us(), 5000);
  EXPECT_EQ((2_s).ms(), 2000.0);
  EXPECT_LT(1_ms, 1_s);
  EXPECT_EQ(1_s + 500_ms, SimTime::millis(1500));
  EXPECT_EQ((1_s) * 0.25, SimTime::millis(250));
}

TEST(Weights, RoundTripUnits) {
  EXPECT_EQ(weight_to_units(0.5), kWeightScale / 2);
  EXPECT_DOUBLE_EQ(units_to_weight(kWeightScale), 1.0);
  EXPECT_EQ(weight_to_units(-0.1), 0);
  EXPECT_EQ(weight_to_units(1.5), kWeightScale);
}

TEST(Weights, NormalizeSumsExactly) {
  const std::vector<double> raw{0.1, 0.2, 0.3, 0.15, 0.25};
  const auto units = normalize_to_units(raw);
  EXPECT_EQ(std::accumulate(units.begin(), units.end(), std::int64_t{0}),
            kWeightScale);
}

TEST(Weights, NormalizeProportions) {
  const std::vector<double> raw{1.0, 3.0};
  const auto units = normalize_to_units(raw);
  EXPECT_EQ(units[0], kWeightScale / 4);
  EXPECT_EQ(units[1], 3 * kWeightScale / 4);
}

TEST(Weights, AllZeroFallsBackToEqualSplit) {
  const auto units = normalize_to_units({0.0, 0.0, 0.0});
  EXPECT_EQ(std::accumulate(units.begin(), units.end(), std::int64_t{0}),
            kWeightScale);
  for (const auto u : units) EXPECT_NEAR(u, kWeightScale / 3, 1);
}

TEST(Weights, EmptyInput) {
  EXPECT_TRUE(normalize_to_units({}).empty());
}

class NormalizePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NormalizePropertyTest, RandomVectorsAlwaysSumToScale) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 1 + static_cast<int>(rng.uniform_int(std::uint64_t{200}));
  std::vector<double> raw;
  raw.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) raw.push_back(rng.uniform(0.0, 10.0));
  const auto units = normalize_to_units(raw);
  EXPECT_EQ(std::accumulate(units.begin(), units.end(), std::int64_t{0}),
            kWeightScale);
  for (const auto u : units) EXPECT_GE(u, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizePropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace klb::util
