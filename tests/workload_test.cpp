// Workload module tests: traffic patterns, the latency recorder, and
// client behaviour — open-loop rate accuracy, closed-loop concurrency
// caps, session/FIN lifecycle, and timeout handling.
#include <gtest/gtest.h>

#include "server/dip_server.hpp"
#include "workload/client.hpp"
#include "workload/recorder.hpp"
#include "workload/traffic.hpp"

namespace klb::workload {
namespace {

using namespace util::literals;

TEST(TrafficPattern, ConstantRate) {
  const TrafficPattern p(100.0);
  EXPECT_EQ(p.rate_at(util::SimTime::zero()), 100.0);
  EXPECT_EQ(p.rate_at(util::SimTime::minutes(60)), 100.0);
}

TEST(TrafficPattern, PiecewiseSteps) {
  TrafficPattern p(50.0);
  p.add_piece(10_s, 100.0);
  p.add_piece(20_s, 25.0);
  EXPECT_EQ(p.rate_at(5_s), 50.0);
  EXPECT_EQ(p.rate_at(10_s), 100.0);
  EXPECT_EQ(p.rate_at(15_s), 100.0);
  EXPECT_EQ(p.rate_at(25_s), 25.0);
}

TEST(TrafficPattern, ScaleMultipliesAllPieces) {
  TrafficPattern p(50.0);
  p.add_piece(10_s, 100.0);
  p.scale(2.0);
  EXPECT_EQ(p.rate_at(0_s), 100.0);
  EXPECT_EQ(p.rate_at(11_s), 200.0);
}

TEST(TrafficPattern, UnsortedPiecesAreSorted) {
  TrafficPattern p(std::vector<std::pair<util::SimTime, double>>{});
  p.add_piece(20_s, 30.0);
  p.add_piece(5_s, 10.0);
  EXPECT_EQ(p.rate_at(6_s), 10.0);
  EXPECT_EQ(p.rate_at(21_s), 30.0);
}

TEST(LatencyRecorder, TracksPerDipAndOverall) {
  LatencyRecorder rec;
  const net::IpAddr a{10, 1, 0, 1};
  const net::IpAddr b{10, 1, 0, 2};
  rec.record_success(a, 2.0);
  rec.record_success(a, 4.0);
  rec.record_success(b, 10.0);
  rec.record_error(b);
  rec.record_timeout();

  EXPECT_EQ(rec.overall().count(), 3u);
  EXPECT_NEAR(rec.overall().mean(), 16.0 / 3.0, 1e-9);
  EXPECT_NEAR(rec.per_dip().at(a).mean(), 3.0, 1e-9);
  EXPECT_EQ(rec.errors(), 1u);
  EXPECT_EQ(rec.errors_for(b), 1u);
  EXPECT_EQ(rec.errors_for(a), 0u);
  EXPECT_EQ(rec.timeouts(), 1u);
  EXPECT_EQ(rec.raw_latencies_ms().size(), 3u);

  rec.reset();
  EXPECT_EQ(rec.overall().count(), 0u);
  EXPECT_TRUE(rec.per_dip().empty());
}

struct Fixture {
  sim::Simulation sim{51};
  net::Network net{sim};
  server::DipServer dip{net, net::IpAddr{10, 1, 0, 1}, server::DipConfig{}};
};

TEST(ClientPool, OpenLoopRateIsAccurate) {
  Fixture f;
  ClientConfig cfg;
  cfg.requests_per_session = 1.0;
  ClientPool clients(f.net, net::IpAddr{10, 2, 0, 1}, f.dip.address(),
                     TrafficPattern(200.0), cfg);
  clients.start();
  f.sim.run_until(20_s);
  clients.stop();
  // 200 rps for 20 s = ~4000 requests (Poisson: ±5%).
  EXPECT_NEAR(static_cast<double>(clients.requests_sent()), 4000.0, 200.0);
  EXPECT_GT(clients.recorder().overall().count(), 3500u);
}

TEST(ClientPool, SessionsIssueMultipleRequests) {
  Fixture f;
  ClientConfig cfg;
  cfg.requests_per_session = 4.0;
  ClientPool clients(f.net, net::IpAddr{10, 2, 0, 1}, f.dip.address(),
                     TrafficPattern(100.0), cfg);
  clients.start();
  f.sim.run_until(10_s);
  clients.stop();
  f.sim.run_for(2_s);
  const double per_session = static_cast<double>(clients.requests_sent()) /
                             static_cast<double>(clients.sessions_started());
  EXPECT_NEAR(per_session, 4.0, 0.5);
}

TEST(ClientPool, ClosedLoopCapsConcurrency) {
  // A deliberately overloaded slow DIP with a concurrency cap: in-flight
  // requests at the server can never exceed the cap.
  sim::Simulation sim(52);
  net::Network net(sim);
  server::DipConfig dcfg;
  dcfg.demand_core_ms = 50.0;  // 20 rps capacity
  server::DipServer dip(net, net::IpAddr{10, 1, 0, 1}, dcfg);

  ClientConfig cfg;
  cfg.requests_per_session = 1.0;
  cfg.max_outstanding_sessions = 8;
  ClientPool clients(net, net::IpAddr{10, 2, 0, 1}, dip.address(),
                     TrafficPattern(500.0), cfg);
  clients.start();

  std::uint64_t max_in_flight = 0;
  for (int i = 0; i < 200; ++i) {
    sim.run_for(50_ms);
    max_in_flight = std::max(max_in_flight, dip.in_flight());
  }
  clients.stop();
  EXPECT_LE(max_in_flight, 8u);
  EXPECT_GT(max_in_flight, 4u);  // the cap is actually exercised
}

TEST(ClientPool, TimeoutAbortsSession) {
  // No server attached: every request times out.
  sim::Simulation sim(53);
  net::Network net(sim);
  ClientConfig cfg;
  cfg.requests_per_session = 3.0;
  cfg.request_timeout = 500_ms;
  ClientPool clients(net, net::IpAddr{10, 2, 0, 1}, net::IpAddr{10, 9, 9, 9},
                     TrafficPattern(50.0), cfg);
  clients.start();
  sim.run_until(5_s);
  clients.stop();
  sim.run_for(1_s);
  EXPECT_GT(clients.recorder().timeouts(), 60u);  // ~83 sessions at 50/3 per s
  EXPECT_EQ(clients.recorder().overall().count(), 0u);
  // Aborted sessions send exactly one request (no retries after timeout).
  EXPECT_EQ(clients.requests_sent(), clients.recorder().timeouts());
}

TEST(ClientPool, ErrorResponsesRecorded) {
  sim::Simulation sim(54);
  net::Network net(sim);
  server::DipConfig dcfg;
  dcfg.demand_core_ms = 100.0;
  dcfg.backlog_per_core = 1;  // almost everything overflows
  server::DipServer dip(net, net::IpAddr{10, 1, 0, 1}, dcfg);

  ClientConfig cfg;
  cfg.requests_per_session = 1.0;
  ClientPool clients(net, net::IpAddr{10, 2, 0, 1}, dip.address(),
                     TrafficPattern(200.0), cfg);
  clients.start();
  sim.run_until(5_s);
  clients.stop();
  sim.run_for(1_s);
  EXPECT_GT(clients.recorder().errors(), 100u);
}

TEST(ClientPool, PatternChangeTakesEffect) {
  Fixture f;
  ClientConfig cfg;
  cfg.requests_per_session = 1.0;
  ClientPool clients(f.net, net::IpAddr{10, 2, 0, 1}, f.dip.address(),
                     TrafficPattern(100.0), cfg);
  clients.start();
  f.sim.run_until(10_s);
  const auto before = clients.requests_sent();
  clients.set_pattern(TrafficPattern(300.0));
  f.sim.run_until(20_s);
  clients.stop();
  const auto after = clients.requests_sent() - before;
  EXPECT_NEAR(static_cast<double>(after), 3000.0, 300.0);
}

}  // namespace
}  // namespace klb::workload
