// Tests for the paper's extension points: the minimize-max-latency ILP
// objective (Fig. 7 footnote 2) and multi-VIP coordination with
// prioritized ILP slots (§5).
#include <gtest/gtest.h>

#include "core/ilp_weights.hpp"
#include "core/multi_vip.hpp"
#include "lb/lb_controller.hpp"
#include "server/dip_server.hpp"
#include "store/kv_server.hpp"
#include "testbed/synthetic.hpp"
#include "testbed/testbed.hpp"
#include "workload/client.hpp"

namespace klb::core {
namespace {

using namespace util::literals;

TEST(MinMaxObjective, BoundsWorstDipLatency) {
  // One fast DIP, two slow ones. Sum-objective loads the fast one harder;
  // min-max should not leave any DIP far above the others.
  std::vector<fit::WeightLatencyCurve> curves{
      testbed::synthetic_curve(0.9, 1.0),   // big, cheap
      testbed::synthetic_curve(0.35, 3.0),  // small, expensive
      testbed::synthetic_curve(0.35, 3.0),
  };
  std::vector<const fit::WeightLatencyCurve*> ptrs;
  for (const auto& c : curves) ptrs.push_back(&c);

  IlpWeightsConfig sum_cfg;
  IlpWeightsConfig max_cfg;
  max_cfg.objective = IlpObjective::kMaxLatency;

  const auto sum_r = IlpWeights(sum_cfg).compute(ptrs);
  const auto max_r = IlpWeights(max_cfg).compute(ptrs);
  ASSERT_TRUE(sum_r.feasible);
  ASSERT_TRUE(max_r.feasible);

  auto worst = [&](const IlpWeightsResult& r) {
    double w = 0.0;
    for (std::size_t d = 0; d < curves.size(); ++d)
      w = std::max(w, curves[d].latency_at(r.weights[d]));
    return w;
  };
  // The min-max solution's worst DIP is no worse than the sum solution's.
  EXPECT_LE(worst(max_r), worst(sum_r) + 1e-6);
  // And the reported objective equals the worst per-DIP latency (within
  // grid-normalization slack).
  EXPECT_NEAR(max_r.estimated_total_latency_ms, worst(max_r),
              0.35 * worst(max_r));
}

TEST(MinMaxObjective, AgreesWithSumWhenSymmetric) {
  // Identical DIPs: both objectives pick an equal split.
  std::vector<fit::WeightLatencyCurve> curves{
      testbed::synthetic_curve(0.6, 2.0), testbed::synthetic_curve(0.6, 2.0)};
  std::vector<const fit::WeightLatencyCurve*> ptrs{&curves[0], &curves[1]};

  IlpWeightsConfig max_cfg;
  max_cfg.objective = IlpObjective::kMaxLatency;
  const auto r = IlpWeights(max_cfg).compute(ptrs);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.weights[0], 0.5, 0.08);
  EXPECT_NEAR(r.weights[1], 0.5, 0.08);
}

TEST(MinMaxObjective, RespectsTheta) {
  std::vector<fit::WeightLatencyCurve> curves{
      testbed::synthetic_curve(0.9, 1.0), testbed::synthetic_curve(0.5, 1.0)};
  std::vector<const fit::WeightLatencyCurve*> ptrs{&curves[0], &curves[1]};
  IlpWeightsConfig cfg;
  cfg.objective = IlpObjective::kMaxLatency;
  cfg.theta = 0.2;
  const auto r = IlpWeights(cfg).compute(ptrs);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(std::fabs(r.weights[0] - r.weights[1]), 0.2 + 0.05);
}

// --- Multi-VIP coordination ---------------------------------------------------

struct TwoVipFixture {
  sim::Simulation sim{71};
  net::Network net{sim};
  std::shared_ptr<store::KvEngine> engine =
      std::make_shared<store::KvEngine>([this] { return sim.now(); });
  store::KvServer kv_server{net, net::IpAddr{10, 3, 0, 2}, engine};
  store::LatencyStore store{engine};

  struct Vip {
    net::IpAddr vip;
    std::vector<std::unique_ptr<server::DipServer>> dips;
    std::vector<net::IpAddr> dip_addrs;
    std::unique_ptr<lb::Mux> mux;
    std::unique_ptr<lb::LbController> lb;
    std::unique_ptr<klm::Klm> klm;
    std::unique_ptr<workload::ClientPool> clients;
  };
  std::vector<Vip> vips;

  void add_vip(std::uint8_t id, int n_dips, double rps) {
    Vip v;
    v.vip = net::IpAddr{10, 0, 0, id};
    for (int i = 0; i < n_dips; ++i) {
      auto dip = std::make_unique<server::DipServer>(
          net, net::IpAddr{10, 1, id, static_cast<std::uint8_t>(i + 1)},
          server::DipConfig{});
      v.dip_addrs.push_back(dip->address());
      v.dips.push_back(std::move(dip));
    }
    v.mux = std::make_unique<lb::Mux>(net, v.vip, lb::make_policy("wrr"));
    for (std::size_t i = 0; i < v.dip_addrs.size(); ++i)
      v.mux->add_backend(v.dip_addrs[i], v.dips[i].get());
    v.lb = std::make_unique<lb::LbController>(sim, *v.mux);
    v.klm = std::make_unique<klm::Klm>(
        net, net::IpAddr{10, 3, id, 1}, v.vip, v.dip_addrs,
        net::IpAddr{10, 3, 0, 2}, klm::KlmConfig{});
    v.klm->start();
    workload::ClientConfig ccfg;
    ccfg.requests_per_session = 1.0;
    v.clients = std::make_unique<workload::ClientPool>(
        net, net::IpAddr{10, 2, id, 1}, v.vip,
        workload::TrafficPattern(rps), ccfg);
    v.clients->start();
    vips.push_back(std::move(v));
  }
};

TEST(MultiVip, BothVipsConvergeUnderSharedCoordinator) {
  TwoVipFixture f;
  f.add_vip(1, 3, 600.0);
  f.add_vip(2, 2, 400.0);

  MultiVipConfig cfg;
  cfg.max_ilp_per_round = 1;           // force slot contention
  cfg.controller.refresh_interval = util::SimTime::zero();  // stable check
  MultiVipCoordinator coord(f.sim, cfg);
  coord.add_vip(f.vips[0].vip, f.vips[0].dip_addrs, f.store, *f.vips[0].lb);
  coord.add_vip(f.vips[1].vip, f.vips[1].dip_addrs, f.store, *f.vips[1].lb);
  coord.start();

  bool ready = false;
  for (int i = 0; i < 90 && !ready; ++i) {
    f.sim.run_for(util::SimTime::seconds(10));
    ready = coord.all_ready();
  }
  EXPECT_TRUE(ready) << "vip0 ready=" << coord.controller(0).all_ready()
                     << " vip1 ready=" << coord.controller(1).all_ready();

  // Both VIPs got ILP assignments despite the single shared slot.
  EXPECT_GE(coord.controller(0).ilp_runs(), 1u);
  EXPECT_GE(coord.controller(1).ilp_runs(), 1u);

  // Weight vectors are normalized per VIP.
  for (std::size_t v = 0; v < coord.vip_count(); ++v) {
    double sum = 0.0;
    for (const auto w : coord.controller(v).current_weights()) sum += w;
    EXPECT_NEAR(sum, 1.0, 0.02) << "vip " << v;
  }

  for (auto& v : f.vips) {
    v.clients->stop();
    v.klm->stop();
  }
  coord.stop();
}

TEST(MultiVip, DirtyVipGetsTheSlotFirst) {
  TwoVipFixture f;
  f.add_vip(1, 2, 400.0);
  f.add_vip(2, 2, 400.0);

  MultiVipConfig cfg;
  cfg.max_ilp_per_round = 1;
  cfg.controller.refresh_interval = util::SimTime::zero();
  MultiVipCoordinator coord(f.sim, cfg);
  coord.add_vip(f.vips[0].vip, f.vips[0].dip_addrs, f.store, *f.vips[0].lb);
  coord.add_vip(f.vips[1].vip, f.vips[1].dip_addrs, f.store, *f.vips[1].lb);
  coord.start();
  bool ready = false;
  for (int i = 0; i < 90 && !ready; ++i) {
    f.sim.run_for(util::SimTime::seconds(10));
    ready = coord.all_ready();
  }
  ASSERT_TRUE(ready);

  // Settle both, then dirty only VIP 1: its ILP must rerun on the next
  // coordinated round even though VIP 0 also holds a standing claim.
  f.sim.run_for(util::SimTime::minutes(1));
  const auto runs_before = coord.controller(1).ilp_runs();
  coord.controller(1).mark_dirty();
  f.sim.run_for(cfg.round_interval + util::SimTime::seconds(1));
  EXPECT_GT(coord.controller(1).ilp_runs(), runs_before);

  for (auto& v : f.vips) {
    v.clients->stop();
    v.klm->stop();
  }
  coord.stop();
}

}  // namespace
}  // namespace klb::core
