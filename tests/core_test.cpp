// Core algorithm tests: Algorithm 1 exploration against synthetic DIP
// physics, the Fig. 7 ILP builder (single and multi-step, theta, MCKP/B&B
// agreement), the §4.6 scheduler, §4.5 dynamics classification, the agent
// baseline, and the §6.7 overhead model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/agent_baseline.hpp"
#include "core/dynamics.hpp"
#include "core/explorer.hpp"
#include "core/ilp_weights.hpp"
#include "core/overhead.hpp"
#include "core/scheduler.hpp"
#include "testbed/synthetic.hpp"

namespace klb::core {
namespace {

/// Synthetic DIP physics for explorer tests: latency rises with weight and
/// saturates above capacity (the Fig. 5 shape).
struct FakeDip {
  double wcap;       // weight at which CPU hits 100%
  double l0 = 1.5;

  double latency(double w) const {
    const double rho = w / wcap;
    if (rho < 1.0) return l0 * (1.0 + 4.0 * rho * rho);
    return l0 * 5.0 + (rho - 1.0) * 100.0;  // overload: latency explodes
  }
  bool drops(double w) const { return w > wcap * 1.05; }
};

TEST(Explorer, ConvergesNearCapacityInFewIterations) {
  for (const double wcap : {0.02, 0.05, 0.1, 0.3}) {
    WeightExplorer ex;
    FakeDip dip{wcap};
    ex.set_l0(dip.l0);
    ex.begin(0.033);
    int iters = 0;
    while (!ex.done() && iters < 50) {
      const double w = ex.next_weight();
      ex.observe(dip.latency(w), dip.drops(w));
      ++iters;
    }
    EXPECT_TRUE(ex.done()) << "wcap=" << wcap;
    EXPECT_LE(ex.iterations(), 14) << "wcap=" << wcap;
    // wmax must be positive, near-but-below the drop point.
    EXPECT_GT(ex.wmax(), 0.0);
    EXPECT_LE(ex.wmax(), wcap * 1.06) << "wcap=" << wcap;
  }
}

TEST(Explorer, PseudoDropTriggersBacktrack) {
  WeightExplorer ex;
  ex.set_l0(1.0);
  ex.begin(0.1);
  // Latency 6x l0 without packet drop: must backtrack (5x threshold).
  EXPECT_FALSE(ex.observe(6.0, false));
  EXPECT_LT(ex.next_weight(), 0.1);
  EXPECT_TRUE(ex.history().back().dropped);
}

TEST(Explorer, RunPhaseGrowthThrottledByLatency) {
  WeightExplorer fast;
  fast.set_l0(1.0);
  fast.begin(0.1);
  fast.observe(1.0, false);  // lw == l0: near-doubling
  EXPECT_NEAR(fast.next_weight(), 0.2, 1e-9);

  WeightExplorer slow;
  slow.set_l0(1.0);
  slow.begin(0.1);
  slow.observe(3.0, false);  // lw = 3*l0 (below pseudo-drop): slow growth
  EXPECT_NEAR(slow.next_weight(), 0.1 + 0.1 / 3.0, 1e-9);
}

TEST(Explorer, TerminatesWhenStepSmall) {
  WeightExplorer ex;
  ex.set_l0(1.0);
  ex.begin(0.5);
  // Latency 25x l0: ratio capped but it's a pseudo-drop; backtrack to
  // (0.5+0)/2 = 0.25... keep feeding drops until the interval collapses.
  int iters = 0;
  while (!ex.done() && iters < 60) {
    ex.observe(30.0, true);
    ++iters;
  }
  EXPECT_TRUE(ex.done());
}

TEST(Explorer, WeightCapsAtOne) {
  WeightExplorer ex;
  ex.set_l0(1.0);
  ex.begin(0.9);
  ex.observe(1.0, false);
  EXPECT_LE(ex.next_weight(), 1.0);
}

TEST(Explorer, HistoryFeedsCurveFit) {
  WeightExplorer ex;
  FakeDip dip{0.1};
  ex.set_l0(dip.l0);
  ex.begin(0.033);
  while (!ex.done()) ex.observe(dip.latency(ex.next_weight()),
                                dip.drops(ex.next_weight()));
  fit::WeightLatencyCurve curve;
  for (const auto& p : ex.history())
    curve.add_point(p.weight, p.latency_ms, p.dropped);
  curve.add_point(0.0, dip.l0, false);
  ASSERT_TRUE(curve.fit(2));
  // The fitted curve tracks the true physics inside the explored range.
  for (double w = 0.01; w <= ex.wmax(); w += 0.01)
    EXPECT_NEAR(curve.latency_at(w), dip.latency(w), dip.l0 * 1.0) << w;
}

TEST(Explorer, RestartKeepsL0) {
  WeightExplorer ex;
  ex.set_l0(2.5);
  ex.begin(0.1);
  ex.observe(3.0, false);
  ex.restart();
  EXPECT_TRUE(ex.has_l0());
  EXPECT_NEAR(ex.l0_ms(), 2.5, 1e-12);
  EXPECT_FALSE(ex.started());
}

// --- IlpWeights ---------------------------------------------------------------

TEST(IlpWeights, AssignsMoreWeightToBiggerDips) {
  // Capacities 1:2:4:8 (like Table 3 types), summing past 1.
  std::vector<fit::WeightLatencyCurve> curves;
  for (const double cap : {0.10, 0.20, 0.40, 0.80})
    curves.push_back(testbed::synthetic_curve(cap));
  std::vector<const fit::WeightLatencyCurve*> ptrs;
  for (const auto& c : curves) ptrs.push_back(&c);

  IlpWeightsConfig cfg;
  const auto result = IlpWeights(cfg).compute(ptrs);
  ASSERT_TRUE(result.feasible);
  double sum = 0.0;
  for (const auto w : result.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_LT(result.weights[0], result.weights[1]);
  EXPECT_LT(result.weights[1], result.weights[2]);
  EXPECT_LT(result.weights[2], result.weights[3]);
}

TEST(IlpWeights, BackendsAgree) {
  std::vector<fit::WeightLatencyCurve> curves;
  for (const double cap : {0.3, 0.5, 0.4})
    curves.push_back(testbed::synthetic_curve(cap, 1.0 + cap));
  std::vector<const fit::WeightLatencyCurve*> ptrs;
  for (const auto& c : curves) ptrs.push_back(&c);

  IlpWeightsConfig bnb_cfg;
  bnb_cfg.backend = IlpBackend::kBranchAndBound;
  IlpWeightsConfig dp_cfg;
  dp_cfg.backend = IlpBackend::kMckpDp;

  const auto bnb = IlpWeights(bnb_cfg).compute(ptrs);
  const auto dp = IlpWeights(dp_cfg).compute(ptrs);
  ASSERT_TRUE(bnb.feasible);
  ASSERT_TRUE(dp.feasible);
  EXPECT_NEAR(bnb.estimated_total_latency_ms, dp.estimated_total_latency_ms,
              1e-6);
}

TEST(IlpWeights, InfeasibleWhenCapacityShort) {
  // Two DIPs whose wmax sums to 0.5: no assignment reaches ~1.
  std::vector<fit::WeightLatencyCurve> curves{
      testbed::synthetic_curve(0.25), testbed::synthetic_curve(0.25)};
  std::vector<const fit::WeightLatencyCurve*> ptrs{&curves[0], &curves[1]};
  const auto result = IlpWeights().compute(ptrs);
  EXPECT_FALSE(result.feasible);
}

TEST(IlpWeights, ResidualBudgetMode) {
  std::vector<fit::WeightLatencyCurve> curves{
      testbed::synthetic_curve(0.4), testbed::synthetic_curve(0.4)};
  std::vector<const fit::WeightLatencyCurve*> ptrs{&curves[0], &curves[1]};
  const auto result = IlpWeights().compute(ptrs, 0.5);
  ASSERT_TRUE(result.feasible);
  double sum = 0.0;
  for (const auto w : result.weights) sum += w;
  EXPECT_NEAR(sum, 0.5, 1e-6);
}

TEST(IlpWeights, MultiStepRefinesWithoutRegressing) {
  std::vector<fit::WeightLatencyCurve> curves;
  for (int i = 0; i < 12; ++i)
    curves.push_back(testbed::synthetic_curve(0.12 + 0.01 * (i % 4)));
  std::vector<const fit::WeightLatencyCurve*> ptrs;
  for (const auto& c : curves) ptrs.push_back(&c);

  IlpWeightsConfig one;
  one.force_multi_step = false;
  IlpWeightsConfig two;
  two.force_multi_step = true;

  const auto r1 = IlpWeights(one).compute(ptrs);
  const auto r2 = IlpWeights(two).compute(ptrs);
  ASSERT_TRUE(r1.feasible);
  ASSERT_TRUE(r2.feasible);
  EXPECT_EQ(r2.steps_run >= 1, true);
  // Zooming may only improve (or match) the estimated objective.
  EXPECT_LE(r2.estimated_total_latency_ms,
            r1.estimated_total_latency_ms + 1e-9);
}

TEST(IlpWeights, ThetaBoundsImbalance) {
  // Very unequal capacities; theta forces the spread to stay small.
  std::vector<fit::WeightLatencyCurve> curves{
      testbed::synthetic_curve(0.9), testbed::synthetic_curve(0.45),
      testbed::synthetic_curve(0.45)};
  std::vector<const fit::WeightLatencyCurve*> ptrs;
  for (const auto& c : curves) ptrs.push_back(&c);

  IlpWeightsConfig cfg;
  cfg.theta = 0.10;
  const auto result = IlpWeights(cfg).compute(ptrs);
  ASSERT_TRUE(result.feasible);
  const auto [lo, hi] =
      std::minmax_element(result.weights.begin(), result.weights.end());
  EXPECT_LE(*hi - *lo, 0.10 + 0.02);  // grid tolerance
}

// --- Scheduler ------------------------------------------------------------------

ScheduleResult run_scheduler(
    std::vector<MeasurementRequest> reqs,
    const std::vector<const fit::WeightLatencyCurve*>& curves) {
  MeasurementScheduler sched((IlpWeights()));
  std::vector<bool> alive(curves.size(), true);
  return sched.schedule(reqs, curves, alive);
}

TEST(Scheduler, AdmitsByPriorityThenFifo) {
  std::vector<const fit::WeightLatencyCurve*> curves(3, nullptr);
  // Requests: two want 0.7 (don't both fit), one small refresh.
  std::vector<MeasurementRequest> reqs{
      {0, 0.7, MeasurePriority::kNormal, 5},
      {1, 0.7, MeasurePriority::kOverloaded, 9},
      {2, 0.2, MeasurePriority::kRefresh, 1},
  };
  const auto out = run_scheduler(reqs, curves);
  EXPECT_TRUE(out.measured[1]);   // overloaded class first despite seq
  EXPECT_FALSE(out.measured[0]);  // 0.7 + 0.7 > 1
  EXPECT_TRUE(out.measured[2]);   // hops over the blocked request
  double sum = 0.0;
  for (const auto w : out.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Scheduler, ResidualGoesToEqualSplitWithoutCurves) {
  std::vector<const fit::WeightLatencyCurve*> curves(4, nullptr);
  std::vector<MeasurementRequest> reqs{
      {0, 0.4, MeasurePriority::kNormal, 1},
  };
  const auto out = run_scheduler(reqs, curves);
  EXPECT_TRUE(out.measured[0]);
  EXPECT_TRUE(out.residual_equal_split);
  EXPECT_NEAR(out.weights[1], 0.2, 1e-9);
  EXPECT_NEAR(out.weights[2], 0.2, 1e-9);
  EXPECT_NEAR(out.weights[3], 0.2, 1e-9);
}

TEST(Scheduler, ResidualUsesIlpOverReadyDips) {
  auto big = testbed::synthetic_curve(0.8, 1.0);
  auto small = testbed::synthetic_curve(0.4, 1.0);
  std::vector<const fit::WeightLatencyCurve*> curves{nullptr, &big, &small};
  std::vector<MeasurementRequest> reqs{
      {0, 0.3, MeasurePriority::kNormal, 1},
  };
  const auto out = run_scheduler(reqs, curves);
  EXPECT_TRUE(out.residual_ilp_used);
  EXPECT_NEAR(out.weights[0], 0.3, 1e-9);
  // ILP gives the larger DIP more of the residual 0.7.
  EXPECT_GT(out.weights[1], out.weights[2]);
}

TEST(Scheduler, DeadDipsExcluded) {
  std::vector<const fit::WeightLatencyCurve*> curves(3, nullptr);
  std::vector<MeasurementRequest> reqs{
      {0, 0.5, MeasurePriority::kNormal, 1},
      {1, 0.5, MeasurePriority::kNormal, 2},
  };
  MeasurementScheduler sched((IlpWeights()));
  std::vector<bool> alive{true, false, true};
  const auto out = sched.schedule(reqs, curves, alive);
  EXPECT_TRUE(out.measured[0]);
  EXPECT_FALSE(out.measured[1]);
  EXPECT_EQ(out.weights[1], 0.0);
  double sum = 0.0;
  for (const auto w : out.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Scheduler, AllMeasuredUndershootBumps) {
  std::vector<const fit::WeightLatencyCurve*> curves(2, nullptr);
  std::vector<MeasurementRequest> reqs{
      {0, 0.3, MeasurePriority::kOverloaded, 1},
      {1, 0.3, MeasurePriority::kNormal, 2},
  };
  const auto out = run_scheduler(reqs, curves);
  EXPECT_TRUE(out.residual_bumped);
  // Higher-priority request stays exact; the other absorbed the residual.
  EXPECT_TRUE(out.measured[0]);
  EXPECT_FALSE(out.measured[1]);
  EXPECT_NEAR(out.weights[0] + out.weights[1], 1.0, 1e-9);
  EXPECT_NEAR(out.weights[0], 0.3, 1e-9);
}

// --- Dynamics -------------------------------------------------------------------

TEST(Dynamics, ClassifiesSingleCapacityChange)
{
  auto c0 = testbed::synthetic_curve(0.5, 1.0);
  auto c1 = testbed::synthetic_curve(0.5, 1.0);
  auto c2 = testbed::synthetic_curve(0.5, 1.0);
  std::vector<const fit::WeightLatencyCurve*> curves{&c0, &c1, &c2};

  // DIP 1 observes much higher latency than its curve predicts; others on.
  std::vector<DipObservation> obs{
      {0, 0.3, c0.latency_at(0.3)},
      {1, 0.3, c1.latency_at(0.3) * 1.8},
      {2, 0.3, c2.latency_at(0.3) * 1.02},
  };
  const auto a = DynamicsDetector().assess(curves, obs);
  EXPECT_FALSE(a.traffic_change);
  ASSERT_EQ(a.capacity_changed.size(), 1u);
  EXPECT_EQ(a.capacity_changed[0], 1u);
  EXPECT_LT(a.capacity_delta[0], 1.0);  // latency up => shift left
}

TEST(Dynamics, ClassifiesTrafficChange) {
  auto c0 = testbed::synthetic_curve(0.5, 1.0);
  auto c1 = testbed::synthetic_curve(0.5, 1.0);
  auto c2 = testbed::synthetic_curve(0.5, 1.0);
  std::vector<const fit::WeightLatencyCurve*> curves{&c0, &c1, &c2};
  std::vector<DipObservation> obs{
      {0, 0.3, c0.latency_at(0.3) * 1.5},
      {1, 0.3, c1.latency_at(0.3) * 1.6},
      {2, 0.3, c2.latency_at(0.3) * 1.4},
  };
  const auto a = DynamicsDetector().assess(curves, obs);
  EXPECT_TRUE(a.traffic_change);
  EXPECT_LT(a.traffic_delta, 1.0);
}

TEST(Dynamics, CapacityIncreaseShiftsRight) {
  auto c0 = testbed::synthetic_curve(0.5, 1.0);
  std::vector<const fit::WeightLatencyCurve*> curves{&c0};
  std::vector<DipObservation> obs{{0, 0.4, c0.latency_at(0.4) * 0.6}};
  const auto a = DynamicsDetector().assess(curves, obs);
  ASSERT_EQ(a.capacity_changed.size(), 1u);
  EXPECT_GT(a.capacity_delta[0], 1.0);
}

TEST(Dynamics, WithinBandIsQuiet) {
  auto c0 = testbed::synthetic_curve(0.5, 1.0);
  std::vector<const fit::WeightLatencyCurve*> curves{&c0, &c0};
  std::vector<DipObservation> obs{
      {0, 0.3, c0.latency_at(0.3) * 1.1},
      {1, 0.3, c0.latency_at(0.3) * 0.9},
  };
  const auto a = DynamicsDetector().assess(curves, obs);
  EXPECT_FALSE(a.traffic_change);
  EXPECT_TRUE(a.capacity_changed.empty());
}

TEST(Dynamics, RescaleRoundTripRestoresEstimates) {
  // After a +40% latency shift and the matching rescale, the curve should
  // predict the new observation at the current weight.
  auto curve = testbed::synthetic_curve(0.5, 1.0);
  const double w = 0.3;
  const double observed = curve.latency_at(w) * 1.4;
  DynamicsDetector det;
  const double delta = det.delta_for(curve, w, observed);
  curve.rescale(delta);
  EXPECT_NEAR(curve.latency_at(w), observed, observed * 0.08);
}

// --- Agent baseline ---------------------------------------------------------------

TEST(AgentBaseline, ConvergesOnCapacityMismatch) {
  // 4 DIPs, one at 75% capacity (the §6.4 setup). Model: util ~ w/cap.
  const std::vector<double> caps{1.0, 1.0, 1.0, 0.75};
  std::vector<double> weights(4, 0.25);
  AgentCpuBalancer agent;
  const double load = 2.8;  // total offered utilization mass

  int iters = 0;
  std::vector<double> utils(4);
  for (; iters < 32; ++iters) {
    for (std::size_t i = 0; i < 4; ++i)
      utils[i] = std::min(1.0, weights[i] * load / caps[i]);
    if (agent.converged(utils)) break;
    weights = agent.step(weights, utils);
  }
  EXPECT_LE(iters, 8);  // paper: ~4 iterations
  EXPECT_GT(iters, 0);
  const auto [lo, hi] = std::minmax_element(utils.begin(), utils.end());
  EXPECT_LE(*hi - *lo, agent.config().tolerance);
  // Weight ended roughly proportional to capacity.
  EXPECT_NEAR(weights[3] / weights[0], 0.75, 0.08);
}

TEST(AgentBaseline, StepPreservesSum) {
  AgentCpuBalancer agent;
  const auto next = agent.step({0.5, 0.3, 0.2}, {0.9, 0.5, 0.2});
  double sum = 0.0;
  for (const auto w : next) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// --- Overhead model -------------------------------------------------------------

TEST(Overhead, Table8WorkloadTotals) {
  const auto workload = table8_workload();
  const auto r = compute_overheads(workload);
  EXPECT_EQ(r.total_dips, 60'000);
  EXPECT_EQ(r.total_vips, 3'330);
}

TEST(Overhead, MatchesPaperFigures) {
  const auto r = compute_overheads(table8_workload());
  // Paper §6.7: 3410 KLM cores; 0.71% cores and 0.83% cost overheads;
  // controller ILP needs 193 VMs => 0.32% cores; regression 0.01%+.
  EXPECT_NEAR(static_cast<double>(r.klm_cores), 3410, 60);
  EXPECT_NEAR(r.klm_core_overhead, 0.0071, 0.0002);
  EXPECT_NEAR(r.klm_cost_overhead, 0.0083, 0.0003);
  EXPECT_NEAR(static_cast<double>(r.controller_vms), 193, 25);
  EXPECT_NEAR(r.controller_core_overhead, 0.0032, 0.0005);
  EXPECT_NEAR(r.regression_core_overhead, 0.0001, 0.0002);
  EXPECT_LT(r.redis_cost_overhead, 0.0001);
}

}  // namespace
}  // namespace klb::core
