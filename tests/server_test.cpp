// DIP server model tests: queueing behaviour, capacity/utilization
// relationships, backlog drops, ping load-independence, noisy-neighbor
// knobs, and crash semantics. These validate the physics the whole control
// loop depends on (the Fig. 5 shape).
#include <gtest/gtest.h>

#include "net/http.hpp"
#include "server/dip_server.hpp"
#include "sim/simulation.hpp"
#include "util/stats.hpp"

namespace klb::server {
namespace {

using namespace util::literals;

/// Drives a DIP with open-loop Poisson requests and gathers replies.
class Harness : public net::Node {
 public:
  Harness(net::Network& net, net::IpAddr addr) : net_(net), addr_(addr) {
    net_.attach(addr_, this);
  }
  ~Harness() override { net_.attach(addr_, nullptr); }

  void drive(net::IpAddr dip, double rps, util::SimTime duration) {
    auto& sim = net_.sim();
    const double gap = 1.0 / rps;
    double t = 0.0;
    std::uint64_t id = 1;
    while (t < duration.sec()) {
      t += sim.rng().exponential(gap);
      const auto req_id = id++;
      sim.schedule_at(sim.now() + util::SimTime::seconds(t),
                      [this, dip, req_id] { send_one(dip, req_id); });
    }
  }

  void send_one(net::IpAddr dip, std::uint64_t req_id) {
    net::Message m;
    m.type = net::MsgType::kHttpRequest;
    m.tuple.src_ip = addr_;
    m.tuple.dst_ip = dip;
    m.req_id = req_id + 100;  // avoid the <=1 connection accounting path
    m.conn_id = req_id;
    sent_at_[m.req_id] = net_.sim().now();
    net_.send(dip, m);
    ++sent_;
  }

  void on_message(const net::Message& msg) override {
    if (msg.type == net::MsgType::kPingReply) {
      ++pings_;
      return;
    }
    if (msg.type != net::MsgType::kHttpResponse) return;
    const auto http = net::HttpResponse::parse(msg.payload);
    ASSERT_TRUE(http.has_value());
    if (http->ok()) {
      ++ok_;
      latency_ms_.add((net_.sim().now() - sent_at_[msg.req_id]).ms());
    } else {
      ++errors_;
    }
  }

  net::Network& net_;
  net::IpAddr addr_;
  std::unordered_map<std::uint64_t, util::SimTime> sent_at_;
  util::Welford latency_ms_;
  std::uint64_t sent_ = 0;
  std::uint64_t ok_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t pings_ = 0;
};

struct Fixture {
  sim::Simulation sim{17};
  net::Network net{sim};
  Harness client{net, net::IpAddr{10, 2, 0, 1}};
};

DipConfig one_core() {
  DipConfig cfg;
  cfg.vm = kDs1v2;
  cfg.demand_core_ms = 3.0;
  return cfg;
}

TEST(DipServer, CapacityMatchesConfig) {
  Fixture f;
  DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, one_core());
  EXPECT_NEAR(dip.capacity_rps(), 1000.0 / 3.0, 1e-9);
  dip.set_capacity_factor(0.5);
  EXPECT_NEAR(dip.capacity_rps(), 1000.0 / 6.0, 1e-9);
}

TEST(DipServer, LowLoadLatencyNearServiceTime) {
  Fixture f;
  DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, one_core());
  f.client.drive(dip.address(), 30.0, 10_s);  // ~9% utilization
  f.sim.run_all();
  EXPECT_GT(f.client.ok_, 200u);
  EXPECT_EQ(f.client.errors_, 0u);
  // RTT (~0.4ms) + ~3ms service, little queueing.
  EXPECT_NEAR(f.client.latency_ms_.mean(), 3.4, 0.8);
  EXPECT_NEAR(dip.cpu_utilization(), 0.09, 0.03);
}

TEST(DipServer, UtilizationScalesWithLoad) {
  Fixture f;
  DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, one_core());
  f.client.drive(dip.address(), 200.0, 10_s);  // 60% of 333 rps
  f.sim.run_all();
  EXPECT_NEAR(dip.cpu_utilization(), 0.60, 0.05);
}

TEST(DipServer, HighLoadInflatesLatency) {
  Fixture low;
  DipServer dip_low(low.net, net::IpAddr{10, 1, 0, 1}, one_core());
  low.client.drive(dip_low.address(), 30.0, 10_s);
  low.sim.run_all();

  Fixture high;
  DipServer dip_high(high.net, net::IpAddr{10, 1, 0, 1}, one_core());
  high.client.drive(dip_high.address(), 300.0, 10_s);  // ~90%
  high.sim.run_all();

  EXPECT_GT(high.client.latency_ms_.mean(),
            3.0 * low.client.latency_ms_.mean());
}

TEST(DipServer, OverloadDropsAtBacklog) {
  Fixture f;
  auto cfg = one_core();
  cfg.backlog_per_core = 16;
  DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, cfg);
  f.client.drive(dip.address(), 700.0, 5_s);  // 2.1x capacity
  f.sim.run_all();
  EXPECT_GT(dip.dropped(), 100u);
  EXPECT_GT(f.client.errors_, 100u);
  // Conservation: every request either completed, dropped, or in flight.
  EXPECT_EQ(f.client.sent_, dip.completed() + dip.dropped());
}

TEST(DipServer, PingLatencyIndependentOfLoad) {
  // The Fig. 5 property: app latency tracks load; ping latency does not.
  auto ping_rtt = [](double rps) {
    sim::Simulation sim(23);
    net::Network net(sim);
    Harness client(net, net::IpAddr{10, 2, 0, 1});
    DipServer dip(net, net::IpAddr{10, 1, 0, 1}, one_core());
    client.drive(dip.address(), rps, 5_s);
    // Interleave pings.
    util::Welford rtt;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(util::SimTime::millis(100.0 * i), [&, i] {
        net::Message ping;
        ping.type = net::MsgType::kPing;
        ping.tuple.src_ip = client.addr_;
        ping.tuple.dst_ip = dip.address();
        ping.req_id = 1'000'000 + static_cast<std::uint64_t>(i);
        client.sent_at_[ping.req_id] = sim.now();
        net.send(dip.address(), ping);
      });
    }
    sim.run_all();
    (void)rtt;
    return client.pings_;
  };
  // All pings answered even at overload.
  EXPECT_EQ(ping_rtt(30.0), 50u);
  EXPECT_EQ(ping_rtt(400.0), 50u);
}

TEST(DipServer, CapacityFactorRaisesUtilization) {
  Fixture healthy;
  DipServer d1(healthy.net, net::IpAddr{10, 1, 0, 1}, one_core());
  healthy.client.drive(d1.address(), 150.0, 10_s);
  healthy.sim.run_all();

  Fixture thrashed;
  DipServer d2(thrashed.net, net::IpAddr{10, 1, 0, 1}, one_core());
  d2.set_capacity_factor(0.6);
  thrashed.client.drive(d2.address(), 150.0, 10_s);
  thrashed.sim.run_all();

  EXPECT_NEAR(d2.cpu_utilization(), d1.cpu_utilization() / 0.6, 0.08);
  EXPECT_GT(thrashed.client.latency_ms_.mean(),
            healthy.client.latency_ms_.mean());
}

TEST(DipServer, StolenCoresCountInUtilization) {
  Fixture f;
  DipConfig cfg;
  cfg.vm = kDs2v2;  // 2 cores
  DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, cfg);
  dip.set_stolen_cores(1.0);
  f.sim.run_for(1_s);
  EXPECT_NEAR(dip.cpu_utilization(), 0.5, 0.01);  // idle app, 1 of 2 stolen
  EXPECT_NEAR(dip.capacity_rps(), 1000.0 / 3.0, 1.0);  // half of 2-core
}

TEST(DipServer, MultiCoreServesInParallel) {
  Fixture f;
  DipConfig cfg;
  cfg.vm = kDs3v2;  // 4 cores
  DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, cfg);
  // 4x the single-core capacity at 60%: latency should stay near service time.
  f.client.drive(dip.address(), 800.0, 5_s);
  f.sim.run_all();
  EXPECT_EQ(f.client.errors_, 0u);
  EXPECT_LT(f.client.latency_ms_.mean(), 6.0);
}

TEST(DipServer, FasterVmTypeLowersServiceTime) {
  Fixture f;
  DipConfig cfg;
  cfg.vm = kF8sv2;
  DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, cfg);
  f.client.drive(dip.address(), 100.0, 5_s);
  f.sim.run_all();
  // Service time 3/1.18 ~ 2.54ms + RTT.
  EXPECT_NEAR(f.client.latency_ms_.mean(), 2.54 + 0.4, 0.5);
}

TEST(DipServer, CrashStopsServiceAndRecovers) {
  Fixture f;
  DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, one_core());
  f.client.drive(dip.address(), 50.0, 2_s);
  f.sim.run_for(3_s);
  const auto before = f.client.ok_;
  EXPECT_GT(before, 0u);

  dip.set_alive(false);
  f.client.drive(dip.address(), 50.0, 2_s);
  f.sim.run_for(3_s);
  EXPECT_EQ(f.client.ok_, before);  // nothing served while down

  dip.set_alive(true);
  f.client.drive(dip.address(), 50.0, 2_s);
  f.sim.run_for(3_s);
  EXPECT_GT(f.client.ok_, before);
}

TEST(DipServer, ActiveConnectionTracking) {
  Fixture f;
  DipServer dip(f.net, net::IpAddr{10, 1, 0, 1}, one_core());
  // Open 3 connections (req_id 1 = first request of each).
  for (std::uint64_t c = 1; c <= 3; ++c) {
    net::Message m;
    m.type = net::MsgType::kHttpRequest;
    m.tuple.src_ip = f.client.addr_;
    m.tuple.src_port = static_cast<std::uint16_t>(c);
    m.conn_id = c;
    m.req_id = 1;
    f.net.send(dip.address(), m);
  }
  f.sim.run_all();
  EXPECT_EQ(dip.active_connections(), 3u);
  // FIN one of them.
  net::Message fin;
  fin.type = net::MsgType::kFin;
  fin.tuple.src_ip = f.client.addr_;
  fin.tuple.src_port = 1;
  fin.conn_id = 1;
  f.net.send(dip.address(), fin);
  f.sim.run_all();
  EXPECT_EQ(dip.active_connections(), 2u);
}

}  // namespace
}  // namespace klb::server
