// Batch-vs-scalar equivalence (ISSUE 9): Mux::handle_batch over a shuffled
// burst must leave byte-identical dataplane state to driving the same
// messages one at a time through handle_request — per-backend forwarded /
// connections / active counters, affinity size, stateless picks, and zero
// drops. Covered for the tuple-deterministic policies (maglev, hash), the
// hybrid stateless dataplane, the per-packet fallback that stateful
// policies (wrr/lc) take under the shared epoch pin, mixed request+FIN
// bursts, and the MuxPool's ECMP batch partition.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "lb/maglev.hpp"
#include "lb/mux.hpp"
#include "lb/mux_pool.hpp"
#include "lb/policy.hpp"
#include "lb/pool_program.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "util/weight.hpp"

namespace klb::lb {
namespace {

net::FiveTuple flow(std::uint32_t client, std::uint16_t port) {
  net::FiveTuple t;
  t.src_ip = net::IpAddr(0x0a020000 + client);
  t.dst_ip = net::IpAddr{10, 0, 0, 1};
  t.src_port = port;
  t.dst_port = 80;
  return t;
}

net::IpAddr dip_addr(std::size_t d) {
  return net::IpAddr(static_cast<std::uint32_t>(0x0a010000 + d + 1));
}

/// `flows` distinct tuples x `reqs` requests each, interleaved
/// round-robin and then shuffled with a fixed seed — a worst-case burst
/// stream where a chunk mixes openers, mid-flow packets, and many shards.
std::vector<net::Message> shuffled_stream(std::size_t flows,
                                          std::uint64_t reqs,
                                          std::uint64_t shuffle_seed) {
  std::vector<net::Message> msgs;
  msgs.reserve(flows * reqs);
  for (std::uint64_t r = 1; r <= reqs; ++r) {
    for (std::size_t f = 0; f < flows; ++f) {
      net::Message m;
      m.type = net::MsgType::kHttpRequest;
      m.tuple = flow(static_cast<std::uint32_t>(f % 16),
                     static_cast<std::uint16_t>(10'000 + f));
      m.conn_id = f + 1;
      m.req_id = r;
      msgs.push_back(m);
    }
  }
  // Shuffle only the relative order of distinct flows per round: req_ids
  // within a flow must stay ascending (a real client's stream), so shuffle
  // each round's slice independently.
  std::mt19937_64 rng(shuffle_seed);
  for (std::uint64_t r = 0; r < reqs; ++r) {
    const auto begin = msgs.begin() + static_cast<std::ptrdiff_t>(r * flows);
    std::shuffle(begin, begin + static_cast<std::ptrdiff_t>(flows), rng);
  }
  return msgs;
}

struct MuxUnderTest {
  sim::Simulation sim;
  net::Network net;
  Mux mux;

  MuxUnderTest(const std::string& policy, std::size_t dips,
               ConsistencyConfig consistency = {})
      : sim(99),
        net(sim),
        mux(net, {10, 0, 0, 1},
            policy == "maglev" ? std::make_unique<MaglevPolicy>(251)
                               : make_policy(policy),
            /*attach_to_vip=*/true, FlowTableConfig{}, consistency) {
    net.set_blackhole(true);
    PoolProgram p(1);
    for (std::size_t d = 0; d < dips; ++d)
      p.add(dip_addr(d),
            static_cast<std::int64_t>(util::kWeightScale / dips));
    mux.apply_program(p);
  }
};

/// Everything the batch path must reproduce exactly.
struct Snapshot {
  std::vector<std::uint64_t> forwarded, connections, active;
  std::size_t affinity = 0;
  std::uint64_t total_forwarded = 0, drops = 0, stateless = 0, pins = 0;

  static Snapshot of(const Mux& m) {
    Snapshot s;
    for (std::size_t i = 0; i < m.backend_count(); ++i) {
      s.forwarded.push_back(m.forwarded_requests(i));
      s.connections.push_back(m.new_connections(i));
      s.active.push_back(m.active_connections(i));
    }
    s.affinity = m.affinity_size();
    s.total_forwarded = m.total_forwarded();
    s.drops = m.no_backend_drops();
    s.stateless = m.stateless_picks();
    s.pins = m.exception_pins();
    return s;
  }

  bool operator==(const Snapshot& o) const {
    return forwarded == o.forwarded && connections == o.connections &&
           active == o.active && affinity == o.affinity &&
           total_forwarded == o.total_forwarded && drops == o.drops &&
           stateless == o.stateless && pins == o.pins;
  }
};

void expect_equal(const Snapshot& scalar, const Snapshot& batch,
                  const char* what) {
  EXPECT_EQ(scalar.forwarded, batch.forwarded) << what;
  EXPECT_EQ(scalar.connections, batch.connections) << what;
  EXPECT_EQ(scalar.active, batch.active) << what;
  EXPECT_EQ(scalar.affinity, batch.affinity) << what;
  EXPECT_EQ(scalar.total_forwarded, batch.total_forwarded) << what;
  EXPECT_EQ(scalar.drops, batch.drops) << what;
  EXPECT_EQ(scalar.stateless, batch.stateless) << what;
  EXPECT_EQ(scalar.pins, batch.pins) << what;
}

void drive_scalar(Mux& mux, const std::vector<net::Message>& msgs) {
  for (const auto& m : msgs) mux.on_message(m);
}

void drive_batched(Mux& mux, const std::vector<net::Message>& msgs,
                   std::size_t burst) {
  std::vector<const net::Message*> ptrs;
  for (std::size_t i = 0; i < msgs.size(); i += burst) {
    ptrs.clear();
    for (std::size_t j = i; j < std::min(msgs.size(), i + burst); ++j)
      ptrs.push_back(&msgs[j]);
    mux.handle_batch(ptrs.data(), ptrs.size());
  }
}

class BatchEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchEquivalence, MaglevCountersAreByteIdentical) {
  const auto msgs = shuffled_stream(64, 4, 17);
  MuxUnderTest scalar("maglev", 8), batched("maglev", 8);
  drive_scalar(scalar.mux, msgs);
  drive_batched(batched.mux, msgs, GetParam());
  const auto a = Snapshot::of(scalar.mux), b = Snapshot::of(batched.mux);
  EXPECT_EQ(a.drops, 0u);
  EXPECT_GT(a.total_forwarded, 0u);
  expect_equal(a, b, "maglev");
}

TEST_P(BatchEquivalence, HashPolicy) {
  const auto msgs = shuffled_stream(48, 3, 5);
  MuxUnderTest scalar("hash", 6), batched("hash", 6);
  drive_scalar(scalar.mux, msgs);
  drive_batched(batched.mux, msgs, GetParam());
  expect_equal(Snapshot::of(scalar.mux), Snapshot::of(batched.mux), "hash");
}

TEST_P(BatchEquivalence, StatefulPoliciesFallBackPerPacketInOrder) {
  // wrr and lc mutate pick state per packet; the batch path must produce
  // the exact scalar pick sequence by processing them one-by-one under the
  // shared generation pin.
  for (const char* policy : {"wrr", "lc", "rr"}) {
    const auto msgs = shuffled_stream(40, 3, 11);
    MuxUnderTest scalar(policy, 5), batched(policy, 5);
    drive_scalar(scalar.mux, msgs);
    drive_batched(batched.mux, msgs, GetParam());
    expect_equal(Snapshot::of(scalar.mux), Snapshot::of(batched.mux), policy);
  }
}

TEST_P(BatchEquivalence, HybridStatelessDataplane) {
  ConsistencyConfig consistency;
  consistency.stateless = true;
  const auto msgs = shuffled_stream(64, 4, 23);
  MuxUnderTest scalar("maglev", 8, consistency),
      batched("maglev", 8, consistency);
  ASSERT_TRUE(scalar.mux.stateless_engaged());
  // Publish twice so the diff engine flags moved slots: some of the stream
  // then takes the exception path (adoption, pinning), the rest routes
  // statelessly — both arms exercised.
  PoolProgram p2(2);
  for (std::size_t d = 0; d < 7; ++d)  // DIP 7 leaves: its slots re-home
    p2.add(dip_addr(d), static_cast<std::int64_t>(util::kWeightScale / 7));
  scalar.mux.apply_program(p2);
  batched.mux.apply_program(p2);
  drive_scalar(scalar.mux, msgs);
  drive_batched(batched.mux, msgs, GetParam());
  const auto a = Snapshot::of(scalar.mux), b = Snapshot::of(batched.mux);
  EXPECT_GT(a.stateless, 0u);
  expect_equal(a, b, "hybrid");
}

TEST_P(BatchEquivalence, MixedRequestAndFinBursts) {
  // Interleave FINs for half the flows into the stream: handle_batch must
  // split the runs and land the same per-backend active counts.
  auto msgs = shuffled_stream(32, 2, 7);
  for (std::size_t f = 0; f < 32; f += 2) {
    net::Message fin;
    fin.type = net::MsgType::kFin;
    fin.tuple = flow(static_cast<std::uint32_t>(f % 16),
                     static_cast<std::uint16_t>(10'000 + f));
    msgs.push_back(fin);
  }
  MuxUnderTest scalar("maglev", 8), batched("maglev", 8);
  drive_scalar(scalar.mux, msgs);
  drive_batched(batched.mux, msgs, GetParam());
  const auto a = Snapshot::of(scalar.mux), b = Snapshot::of(batched.mux);
  EXPECT_EQ(a.affinity, 16u);  // half the flows closed
  expect_equal(a, b, "mixed");
}

INSTANTIATE_TEST_SUITE_P(BurstSizes, BatchEquivalence,
                         ::testing::Values(1, 8, 32, 48, 96),
                         [](const auto& info) {
                           return "burst" + std::to_string(info.param);
                         });

TEST(MuxPoolBatch, EcmpPartitionMatchesScalarDispatch) {
  const auto msgs = shuffled_stream(96, 3, 31);
  auto make = [] {
    struct Rig {
      sim::Simulation sim{42};
      net::Network net{sim};
      MuxPool pool;
      Rig() : pool(net, {10, 0, 0, 1}, 4) {
        net.set_blackhole(true);
        PoolProgram p(pool.issue_version());
        for (std::size_t d = 0; d < 8; ++d)
          p.add(dip_addr(d),
                static_cast<std::int64_t>(util::kWeightScale / 8));
        pool.apply_program(p);
      }
    };
    return std::make_unique<Rig>();
  };
  auto scalar = make(), batched = make();
  for (const auto& m : msgs) scalar->pool.on_message(m);
  std::vector<const net::Message*> ptrs;
  for (std::size_t i = 0; i < msgs.size(); i += 80) {
    ptrs.clear();
    for (std::size_t j = i; j < std::min(msgs.size(), i + 80); ++j)
      ptrs.push_back(&msgs[j]);
    batched->pool.on_batch(ptrs.data(), ptrs.size());
  }
  // Per-member totals must match: the batch partition sends each tuple to
  // the same ECMP shard the scalar path does.
  for (std::size_t k = 0; k < 4; ++k) {
    expect_equal(Snapshot::of(scalar->pool.mux(k)),
                 Snapshot::of(batched->pool.mux(k)), "pool member");
  }
  EXPECT_EQ(scalar->pool.total_forwarded(), batched->pool.total_forwarded());
  EXPECT_EQ(scalar->pool.no_backend_drops(), 0u);
}

}  // namespace
}  // namespace klb::lb
