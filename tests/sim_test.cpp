// DES kernel tests: event ordering, cancellation, timers, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace klb::sim {
namespace {

using util::SimTime;
using namespace util::literals;

TEST(EventQueue, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_in(30_ms, [&] { order.push_back(3); });
  sim.schedule_in(10_ms, [&] { order.push_back(1); });
  sim.schedule_in(20_ms, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_ms);
}

TEST(EventQueue, SameTimestampRunsInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_in(5_ms, [&order, i] { order.push_back(i); });
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const auto id = sim.schedule_in(10_ms, [&] { fired = true; });
  sim.cancel(id);
  sim.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(EventQueue, CancelAfterFireIsSafe) {
  Simulation sim;
  const auto id = sim.schedule_in(1_ms, [] {});
  sim.run_all();
  sim.cancel(id);  // must not crash or corrupt
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int count = 0;
  sim.schedule_in(10_ms, [&] { ++count; });
  sim.schedule_in(20_ms, [&] { ++count; });
  sim.run_until(15_ms);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), 15_ms);  // clock advances through idle time
  sim.run_until(25_ms);
  EXPECT_EQ(count, 2);
}

TEST(Simulation, EventsScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1_ms, recurse);
  };
  sim.schedule_in(1_ms, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 5_ms);
}

TEST(Simulation, ScheduleAtPastClampsToNow) {
  Simulation sim;
  sim.schedule_in(10_ms, [] {});
  sim.run_all();
  bool fired = false;
  sim.schedule_at(5_ms, [&] { fired = true; });  // in the past
  sim.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 10_ms);
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulation sim;
  int fires = 0;
  PeriodicTimer timer(sim, 10_ms, [&] { ++fires; });
  timer.start();
  sim.run_until(55_ms);
  EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimer, InitialDelayZeroFiresImmediately) {
  Simulation sim;
  int fires = 0;
  PeriodicTimer timer(sim, 10_ms, [&] { ++fires; });
  timer.start(SimTime::zero());
  sim.run_until(25_ms);
  EXPECT_EQ(fires, 3);  // t=0, 10, 20
}

TEST(PeriodicTimer, StopFromInsideCallback) {
  Simulation sim;
  int fires = 0;
  PeriodicTimer timer(sim, 10_ms, [&] {
    if (++fires == 3) timer.stop();
  });
  timer.start();
  sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, DestructorCancels) {
  Simulation sim;
  int fires = 0;
  {
    PeriodicTimer timer(sim, 10_ms, [&] { ++fires; });
    timer.start();
  }
  sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(fires, 0);
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Simulation sim(seed);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_in(SimTime::micros(static_cast<std::int64_t>(
                          sim.rng().uniform_int(std::uint64_t{1000}))),
                      [&values, &sim] { values.push_back(sim.rng().next()); });
    }
    sim.run_all();
    return values;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

}  // namespace
}  // namespace klb::sim
