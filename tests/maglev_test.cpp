// Maglev consistent-hash dataplane tests: weighted slot apportionment,
// minimal flow remap under DIP churn, the MUX backend lifecycle (stable
// ids, affinity GC, weights surviving add/remove/fail), and end-to-end
// churn under the multi-VIP controller.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "lb/lb_controller.hpp"
#include "lb/maglev.hpp"
#include "lb/mux.hpp"
#include "testbed/fleet.hpp"
#include "util/weight.hpp"

namespace klb::lb {
namespace {

using namespace util::literals;

std::int64_t sum_units(const std::vector<std::int64_t>& units) {
  return std::accumulate(units.begin(), units.end(), std::int64_t{0});
}

std::vector<MaglevEntry> equal_entries(std::size_t n,
                                       std::int64_t weight = 100) {
  std::vector<MaglevEntry> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = MaglevEntry{1000 + i, weight};
  return out;
}

/// Owner id per table slot (probing hash h in [0, M) hits slot h % M = h).
std::vector<std::uint64_t> owners(const MaglevTable& t) {
  std::vector<std::uint64_t> out(t.table_size());
  for (std::size_t s = 0; s < t.table_size(); ++s) out[s] = t.lookup_id(s);
  return out;
}

// --- MaglevTable -------------------------------------------------------------

TEST(MaglevTable, SizeRoundsUpToPrime) {
  EXPECT_EQ(MaglevTable(100).table_size(), 101u);
  EXPECT_EQ(MaglevTable(65'537).table_size(), 65'537u);
}

TEST(MaglevTable, SlotCountsProportionalToWeights) {
  MaglevTable t(10'007);
  const std::vector<MaglevEntry> entries{
      {1, 1000}, {2, 2000}, {3, 3000}, {4, 4000}};
  t.build(entries);

  const auto counts = t.slot_counts();
  ASSERT_EQ(counts.size(), entries.size());
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}),
            t.table_size());
  // Largest-remainder apportionment: exact to within one slot.
  const double m = static_cast<double>(t.table_size());
  EXPECT_NEAR(counts[0], m * 0.1, 1.0);
  EXPECT_NEAR(counts[1], m * 0.2, 1.0);
  EXPECT_NEAR(counts[2], m * 0.3, 1.0);
  EXPECT_NEAR(counts[3], m * 0.4, 1.0);
}

TEST(MaglevTable, ZeroWeightEntryOwnsNoSlots) {
  MaglevTable t(997);
  t.build({{1, 500}, {2, 0}, {3, 500}});
  const auto counts = t.slot_counts();
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[0] + counts[2], t.table_size());
}

TEST(MaglevTable, EmptyPoolMapsNothing) {
  MaglevTable t(997);
  t.build({});
  EXPECT_EQ(t.lookup(123), MaglevTable::kEmptySlot);
  EXPECT_EQ(t.lookup_id(123), MaglevTable::kNoId);
  t.build({{1, 0}});  // all weights zero behaves the same
  EXPECT_EQ(t.lookup(123), MaglevTable::kEmptySlot);
}

TEST(MaglevTable, SingleRemovalRemapsFewSlots) {
  MaglevTable before(65'537);
  MaglevTable after(65'537);
  auto entries = equal_entries(100);
  before.build(entries);
  const std::uint64_t removed = entries[50].id;
  entries.erase(entries.begin() + 50);
  after.build(entries);

  const auto a = owners(before);
  const auto b = owners(after);
  std::size_t moved = 0;  // slots that changed owner without having to
  for (std::size_t s = 0; s < a.size(); ++s)
    if (a[s] != removed && a[s] != b[s]) ++moved;
  // The removed DIP owned ~1% of slots; collateral churn must stay small.
  // `hash % n` would remap ~99% of them.
  EXPECT_LT(static_cast<double>(moved) / static_cast<double>(a.size()), 0.05);
}

TEST(MaglevTable, SingleAddRemapsFewSlots) {
  MaglevTable before(65'537);
  MaglevTable after(65'537);
  auto entries = equal_entries(100);
  before.build(entries);
  entries.push_back(MaglevEntry{9999, 100});
  after.build(entries);

  const auto a = owners(before);
  const auto b = owners(after);
  std::size_t moved = 0;  // changed owner but not to the newcomer
  for (std::size_t s = 0; s < a.size(); ++s)
    if (b[s] != 9999 && a[s] != b[s]) ++moved;
  EXPECT_LT(static_cast<double>(moved) / static_cast<double>(a.size()), 0.05);
}

TEST(MaglevTable, RebuildIsDeterministic) {
  MaglevTable t1(4999);
  MaglevTable t2(4999);
  const auto entries = equal_entries(20, 37);
  t1.build(entries);
  t2.build(entries);
  EXPECT_EQ(owners(t1), owners(t2));
}

// --- MaglevPolicy ------------------------------------------------------------

net::FiveTuple flow(std::uint32_t client, std::uint16_t port) {
  net::FiveTuple t;
  t.src_ip = net::IpAddr(0x0a020000 + client);
  t.dst_ip = net::IpAddr{10, 0, 0, 1};
  t.src_port = port;
  t.dst_port = 80;
  return t;
}

std::vector<BackendView> make_views(std::vector<std::int64_t> weights) {
  std::vector<BackendView> out;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    BackendView v;
    v.addr = net::IpAddr{10, 1, 0, static_cast<std::uint8_t>(i + 1)};
    v.weight_units = weights[i];
    out.push_back(v);
  }
  return out;
}

TEST(MaglevPolicy, FactoryBuildsIt) {
  const auto p = make_policy("maglev");
  EXPECT_EQ(p->name(), "maglev");
  EXPECT_TRUE(p->weighted());
}

TEST(MaglevPolicy, PicksAreAffineToTuple) {
  MaglevPolicy p;
  util::Rng rng(1);
  const auto views = make_views({5000, 3000, 2000});
  const auto t = flow(1, 12'345);
  const auto first = p.pick(t, views, rng);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.pick(t, views, rng), first);
}

TEST(MaglevPolicy, PickDistributionFollowsWeights) {
  MaglevPolicy p;
  util::Rng rng(1);
  const auto views = make_views({5000, 3000, 2000});
  std::map<std::size_t, int> counts;
  const int n = 30'000;
  for (int i = 0; i < n; ++i)
    counts[p.pick(flow(static_cast<std::uint32_t>(i / 100),
                       static_cast<std::uint16_t>(i % 100)),
                  views, rng)]++;
  EXPECT_NEAR(counts[0], n * 0.5, n * 0.02);
  EXPECT_NEAR(counts[1], n * 0.3, n * 0.02);
  EXPECT_NEAR(counts[2], n * 0.2, n * 0.02);
}

TEST(MaglevPolicy, DisabledBackendExcludedAfterInvalidate) {
  MaglevPolicy p;
  util::Rng rng(1);
  auto views = make_views({5000, 3000, 2000});
  views[1].enabled = false;
  p.invalidate();
  for (int i = 0; i < 200; ++i)
    EXPECT_NE(p.pick(flow(static_cast<std::uint32_t>(i), 80), views, rng), 1u);
}

TEST(MaglevPolicy, SingleDipRemovalRemapsFewFlows) {
  MaglevPolicy p;
  util::Rng rng(1);
  std::vector<std::int64_t> weights(50, 200);
  auto views = make_views(weights);

  const int flows = 20'000;
  std::vector<net::IpAddr> before(flows);
  for (int i = 0; i < flows; ++i)
    before[i] = views[p.pick(flow(static_cast<std::uint32_t>(i), 443),
                             views, rng)].addr;

  const auto removed = views[25].addr;
  views.erase(views.begin() + 25);
  p.invalidate();

  int moved = 0;
  for (int i = 0; i < flows; ++i) {
    const auto now = views[p.pick(flow(static_cast<std::uint32_t>(i), 443),
                                  views, rng)].addr;
    if (before[i] != removed && now != before[i]) ++moved;
  }
  EXPECT_LT(static_cast<double>(moved) / flows, 0.05);
}

// --- Mux lifecycle with the maglev policy ------------------------------------

struct ChurnFixture {
  sim::Simulation sim{17};
  net::Network net{sim};
  net::IpAddr vip{10, 0, 0, 1};

  net::Message request(std::uint32_t client, std::uint16_t port) {
    net::Message m;
    m.type = net::MsgType::kHttpRequest;
    m.tuple = flow(client, port);
    return m;
  }

  net::Message fin(std::uint32_t client, std::uint16_t port) {
    net::Message m;
    m.type = net::MsgType::kFin;
    m.tuple = flow(client, port);
    return m;
  }
};

TEST(MuxChurn, StableIdsSurviveRemoval) {
  ChurnFixture f;
  Mux mux(f.net, f.vip, make_policy("maglev"));
  const auto id1 = mux.add_backend(net::IpAddr{10, 1, 0, 1});
  const auto id2 = mux.add_backend(net::IpAddr{10, 1, 0, 2});
  const auto id3 = mux.add_backend(net::IpAddr{10, 1, 0, 3});
  EXPECT_NE(id1, id2);

  ASSERT_TRUE(mux.remove_backend(0));
  // Indices shifted, ids did not.
  EXPECT_EQ(mux.index_of_id(id2), std::optional<std::size_t>{0});
  EXPECT_EQ(mux.index_of_id(id3), std::optional<std::size_t>{1});
  EXPECT_FALSE(mux.index_of_id(id1).has_value());
}

TEST(MuxChurn, RemoveBackendDropsItsAffinityOnly) {
  ChurnFixture f;
  Mux mux(f.net, f.vip, make_policy("maglev"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});

  for (std::uint32_t c = 0; c < 200; ++c)
    f.net.send(f.vip, f.request(c, 443));
  f.sim.run_all();
  ASSERT_EQ(mux.affinity_size(), 200u);
  const auto conns_kept = mux.active_connections(1);
  ASSERT_GT(conns_kept, 0u);

  ASSERT_TRUE(mux.remove_backend(0));
  EXPECT_EQ(mux.dangling_affinity_count(), 0u);
  EXPECT_EQ(mux.affinity_size(), conns_kept);
  EXPECT_EQ(mux.active_connections(0), conns_kept);  // survivor, new index
}

TEST(MuxChurn, FailedBackendFlowsRetryOnSurvivors) {
  ChurnFixture f;
  Mux mux(f.net, f.vip, make_policy("maglev"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});

  for (std::uint32_t c = 0; c < 100; ++c)
    f.net.send(f.vip, f.request(c, 443));
  f.sim.run_all();
  const auto on_failed = mux.active_connections(0);
  ASSERT_GT(on_failed, 0u);

  ASSERT_TRUE(mux.fail_backend(0));
  EXPECT_EQ(mux.flows_reset_by_failure(), on_failed);
  EXPECT_EQ(mux.dangling_affinity_count(), 0u);

  // The reset clients reconnect: all flows land on the survivor now.
  for (std::uint32_t c = 0; c < 100; ++c)
    f.net.send(f.vip, f.request(c, 443));
  f.sim.run_all();
  EXPECT_EQ(mux.active_connections(0), 100u);
  EXPECT_EQ(mux.dangling_affinity_count(), 0u);
}

TEST(MuxChurn, AffinityGcReclaimsIdleFlows) {
  ChurnFixture f;
  Mux mux(f.net, f.vip, make_policy("maglev"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.set_affinity_idle_timeout(10_s);

  for (std::uint32_t c = 0; c < 5; ++c) f.net.send(f.vip, f.request(c, 443));
  f.sim.run_all();
  ASSERT_EQ(mux.active_connections(0), 5u);

  f.sim.run_for(6_s);
  f.net.send(f.vip, f.request(0, 443));  // flow 0 stays active
  f.sim.run_all();
  f.sim.run_for(6_s);  // flows 1-4 now idle > 10 s, flow 0 idle ~6 s

  EXPECT_EQ(mux.gc_affinity(), 4u);
  EXPECT_EQ(mux.affinity_size(), 1u);
  EXPECT_EQ(mux.active_connections(0), 1u);
  EXPECT_EQ(mux.flows_gced_idle(), 4u);

  // A FIN for a reclaimed flow is a no-op, not an underflow.
  f.net.send(f.vip, f.fin(1, 443));
  f.sim.run_all();
  EXPECT_EQ(mux.active_connections(0), 1u);
}

TEST(MuxChurn, WeightsSteerAfterChurnWithMaglev) {
  ChurnFixture f;
  Mux mux(f.net, f.vip, make_policy("maglev"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.add_backend(net::IpAddr{10, 1, 0, 3});
  ASSERT_TRUE(mux.set_weight_units({5000, 3000, 2000}));
  ASSERT_TRUE(mux.remove_backend(2));

  // Survivors rescaled 5:3; new flows follow the maglev table.
  const auto units = mux.weight_units();
  EXPECT_EQ(sum_units(units), util::kWeightScale);
  for (std::uint32_t c = 0; c < 4000; ++c)
    f.net.send(f.vip, f.request(c, 8080));
  f.sim.run_all();
  const auto total = static_cast<double>(mux.new_connections(0) +
                                         mux.new_connections(1));
  EXPECT_NEAR(static_cast<double>(mux.new_connections(0)) / total, 0.625,
              0.03);
}

// --- churn under the multi-VIP controller ------------------------------------

TEST(FleetChurn, ScaleOutScaleInAndFailureKeepWeightsSound) {
  core::MultiVipConfig cfg;
  cfg.solver_threads = 1;
  testbed::SyntheticFleet fleet(2, 4, cfg, /*seed=*/7);

  fleet.tick_round();  // initial ILP over the injected curves
  auto& sink = fleet.lb(0);
  ASSERT_EQ(sink.last_units().size(), 4u);
  EXPECT_EQ(sum_units(sink.last_units()), util::kWeightScale);

  // Scale-out mid-run: the new DIP joins Ready and the ILP redistributes.
  const auto added = fleet.scale_out(0, /*wmax=*/0.4, /*l0=*/1.2);
  fleet.tick_round();
  EXPECT_EQ(sink.backend_count(), 5u);
  ASSERT_EQ(sink.last_units().size(), 5u);
  EXPECT_EQ(sum_units(sink.last_units()), util::kWeightScale);
  EXPECT_GT(sink.last_units()[added], 0);  // newcomer carries traffic

  // Scale-in: remove it again.
  fleet.scale_in(0, added);
  fleet.tick_round();
  EXPECT_EQ(sink.backend_count(), 4u);
  ASSERT_EQ(sink.last_units().size(), 4u);
  EXPECT_EQ(sum_units(sink.last_units()), util::kWeightScale);

  // Abrupt failure mid-run: the dead DIP leaves the desired pool entirely
  // (a restated kActive weight-0 entry would re-admit the corpse, which
  // unweighted policies still pick) and the survivors rerun.
  fleet.fail_dip(0, 1);
  fleet.tick_round();
  EXPECT_EQ(sink.backend_count(), 3u);
  ASSERT_EQ(sink.last_units().size(), 3u);
  EXPECT_EQ(sum_units(sink.last_units()), util::kWeightScale);

  // No transaction was ever discarded: the coordinator's programs commit
  // in issue order (size races are structurally unreachable now).
  EXPECT_EQ(sink.superseded_programs(), 0u);

  // Steady state after churn: a forced rerun reproduces the same weights —
  // untouched backends keep their programmed units exactly.
  const auto settled = sink.last_units();
  fleet.coordinator().controller(0).mark_dirty();
  fleet.tick_round();
  EXPECT_EQ(sink.last_units(), settled);

  // The neighbouring VIP never saw the churn.
  EXPECT_EQ(fleet.lb(1).backend_count(), 4u);
  EXPECT_EQ(sum_units(fleet.lb(1).last_units()), util::kWeightScale);
  EXPECT_EQ(fleet.lb(1).superseded_programs(), 0u);
}

}  // namespace
}  // namespace klb::lb
