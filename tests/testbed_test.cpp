// Testbed composition tests: topology wiring, capacity accounting, static
// weight programming, metrics plumbing, and the synthetic curve helper.
#include <gtest/gtest.h>

#include "testbed/synthetic.hpp"
#include "testbed/testbed.hpp"

namespace klb::testbed {
namespace {

using namespace util::literals;

TEST(Specs, Table3PoolComposition) {
  const auto specs = table3_specs();
  ASSERT_EQ(specs.size(), 30u);
  int ds1 = 0, ds2 = 0, ds3 = 0, f8 = 0;
  for (const auto& s : specs) {
    if (s.vm.name == "DS1v2") ++ds1;
    if (s.vm.name == "DS2v2") ++ds2;
    if (s.vm.name == "DS3v2") ++ds3;
    if (s.vm.name == "F8sv2") ++f8;
  }
  EXPECT_EQ(ds1, 16);
  EXPECT_EQ(ds2, 8);
  EXPECT_EQ(ds3, 4);
  EXPECT_EQ(f8, 2);
}

TEST(Testbed, HealthyCapacityMatchesVmMath) {
  TestbedConfig cfg;
  cfg.seed = 61;
  Testbed bed(table3_specs(), cfg);
  // 16*1 + 8*2 + 4*4 cores at 1000/3 rps/core + 2*8 cores at 1.18x.
  const double expected =
      (16.0 + 16.0 + 16.0) * (1000.0 / 3.0) + 16.0 * 1.18 * (1000.0 / 3.0);
  EXPECT_NEAR(bed.healthy_capacity_rps(), expected, 1.0);
  EXPECT_NEAR(bed.offered_rps(), 0.70 * expected, 1.0);
}

TEST(Testbed, StaticWeightsReachTheMux) {
  TestbedConfig cfg;
  cfg.seed = 62;
  Testbed bed(three_dip_specs(1.0, 1.0, 1.0), cfg);
  bed.set_static_weights({1.0, 2.0, 7.0});
  bed.run_for(1_s);  // programming delay elapses
  const auto units = bed.mux().weight_units();
  EXPECT_EQ(units[0], util::kWeightScale / 10);
  EXPECT_EQ(units[1], 2 * util::kWeightScale / 10);
  EXPECT_EQ(units[2], 7 * util::kWeightScale / 10);
}

TEST(Testbed, MetricsAttributeTrafficPerDip) {
  TestbedConfig cfg;
  cfg.seed = 63;
  cfg.policy = "rr";
  Testbed bed(three_dip_specs(1.0, 1.0, 1.0), cfg);
  bed.run_for(10_s);
  const auto metrics = bed.metrics();
  ASSERT_EQ(metrics.size(), 3u);
  for (const auto& m : metrics) {
    EXPECT_GT(m.client_requests, 500u);   // RR splits ~evenly
    EXPECT_GT(m.cpu_utilization, 0.2);
    EXPECT_GT(m.client_latency_ms, 1.0);
  }
  EXPECT_GT(bed.overall_p99_ms(), bed.overall_latency_ms());
}

TEST(Testbed, ResetStatsClearsWindows) {
  TestbedConfig cfg;
  cfg.seed = 64;
  Testbed bed(three_dip_specs(1.0, 1.0, 1.0), cfg);
  bed.run_for(5_s);
  EXPECT_GT(bed.clients().recorder().overall().count(), 0u);
  bed.reset_stats();
  EXPECT_EQ(bed.clients().recorder().overall().count(), 0u);
  EXPECT_EQ(bed.mux().total_forwarded(), 0u);
}

// mux_count > 1 swaps the single Mux for an ECMP MuxPool behind the same
// VIP: traffic spreads across members, static weights land on every one
// through the one delayed transaction, and the maglev snapshots stay
// pointer-equal pool-wide under live load.
TEST(Testbed, MuxPoolServesTrafficEndToEnd) {
  TestbedConfig cfg;
  cfg.seed = 65;
  cfg.mux_count = 3;
  Testbed bed(three_dip_specs(1.0, 1.0, 1.0), cfg);
  auto* pool = bed.mux_pool();
  ASSERT_NE(pool, nullptr);

  bed.set_static_weights({1.0, 2.0, 7.0});
  bed.run_for(10_s);

  for (std::size_t k = 0; k < pool->mux_count(); ++k) {
    EXPECT_GT(pool->mux(k).total_forwarded(), 0u);
    EXPECT_EQ(pool->mux(k).weight_units(),
              (std::vector<std::int64_t>{1000, 2000, 7000}));
    EXPECT_EQ(pool->table_snapshot(k), pool->table_snapshot(0));
  }
  const auto metrics = bed.metrics();
  ASSERT_EQ(metrics.size(), 3u);
  std::uint64_t requests = 0;
  for (const auto& m : metrics) requests += m.client_requests;
  EXPECT_GT(requests, 1000u);
  // The heavy DIP carries visibly more than the light one.
  EXPECT_GT(metrics[2].client_requests, 3 * metrics[0].client_requests);
}

// After churn the dataplane's registration order ([A(draining), B, C, D])
// diverges from the live spec list ([B, C, D]) — a positional weight join
// would hand every DIP its neighbour's weight. metrics() must key by
// address and report only the live pool.
TEST(TestbedChurn, MetricsStayAddressKeyedThroughChurn) {
  TestbedConfig cfg;
  cfg.seed = 66;
  cfg.policy = "wrr";
  cfg.load_fraction = 0.0;  // quiescent: the test drives one manual flow
  Testbed bed(three_dip_specs(1.0, 1.0, 1.0), cfg);

  // Park everything except DIP A so the manual flow deterministically pins
  // there; the flow never FINs, so A's drain below stays pending.
  bed.set_static_weights({1.0, 0.0, 0.0});
  bed.run_for(1_s);
  net::Message req;
  req.type = net::MsgType::kHttpRequest;
  req.tuple.src_ip = net::IpAddr{10, 2, 0, 1};
  req.tuple.dst_ip = bed.vip();
  req.tuple.src_port = 50'000;
  req.tuple.dst_port = 80;
  req.conn_id = 9'999;
  req.req_id = 1;
  net::HttpRequest http;
  http.method = "GET";
  http.target = "/work";
  req.payload = http.serialize();
  bed.network().send(bed.vip(), req);
  bed.run_for(1_s);
  ASSERT_EQ(bed.mux().affinity_size(), 1u);
  ASSERT_EQ(bed.mux().new_connections(0), 1u);

  bed.set_static_weights({1.0, 2.0, 7.0});
  bed.run_for(1_s);

  const auto a_addr = bed.dip(0).address();
  ASSERT_TRUE(bed.scale_in(0));                    // A drains (flow pinned)
  const auto new_idx = bed.scale_out(DipSpec{});   // D joins in the same breath
  const auto new_addr = bed.dip(new_idx).address();
  bed.run_for(1_s);  // programming delay elapses; A still draining

  ASSERT_EQ(bed.mux().draining_count(), 1u);
  const auto metrics = bed.metrics();
  ASSERT_EQ(metrics.size(), 3u);
  double sum = 0.0;
  for (const auto& m : metrics) {
    sum += m.weight;
    EXPECT_NE(m.addr, a_addr);  // the leaver is not part of the live report
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // B and C keep their 2:7 ratio; the newcomer joined at the mean share.
  EXPECT_NEAR(metrics[1].weight / metrics[0].weight, 3.5, 0.01);
  EXPECT_EQ(metrics[2].addr, new_addr);
  EXPECT_NEAR(metrics[2].weight, 4.5 / 13.5, 0.01);

  // index_of tracks the live list, not registration order.
  EXPECT_FALSE(bed.index_of(a_addr).has_value());
  EXPECT_EQ(bed.index_of(new_addr), std::optional<std::size_t>{2});
  EXPECT_EQ(bed.retired_count(), 1u);
}

TEST(TestbedChurn, CapacityAndOfferedLoadTrackLiveList) {
  TestbedConfig cfg;
  cfg.seed = 67;
  Testbed bed(three_dip_specs(1.0, 1.0, 1.0), cfg);
  const double per_core = 1000.0 / 3.0;
  EXPECT_NEAR(bed.healthy_capacity_rps(), 3 * per_core, 1e-6);
  EXPECT_NEAR(bed.offered_rps(), 0.70 * 3 * per_core, 1e-6);

  DipSpec f8;
  f8.vm = server::kF8sv2;
  const auto idx = bed.scale_out(f8);
  EXPECT_EQ(idx, 3u);
  EXPECT_NEAR(bed.healthy_capacity_rps(), (3 + 8 * 1.18) * per_core, 1e-6);
  EXPECT_NEAR(bed.offered_rps(), 0.70 * bed.healthy_capacity_rps(), 1e-6);

  ASSERT_TRUE(bed.fail_dip(0));
  EXPECT_EQ(bed.dip_count(), 3u);
  EXPECT_NEAR(bed.healthy_capacity_rps(), (2 + 8 * 1.18) * per_core, 1e-6);
  EXPECT_NEAR(bed.offered_rps(), 0.70 * bed.healthy_capacity_rps(), 1e-6);

  EXPECT_FALSE(bed.fail_dip(99));  // out of range is loud, not UB

  // Fixed-load mode: the construction-time offered rate survives churn.
  TestbedConfig fixed = cfg;
  fixed.rescale_load_on_churn = false;
  Testbed bed2(three_dip_specs(1.0, 1.0, 1.0), fixed);
  const double offered0 = bed2.offered_rps();
  bed2.scale_out(f8);
  EXPECT_NEAR(bed2.offered_rps(), offered0, 1e-9);
}

TEST(SyntheticCurve, MatchesExplorerSemantics) {
  const auto curve = synthetic_curve(0.2, 1.5);
  ASSERT_TRUE(curve.fitted());
  EXPECT_NEAR(curve.wmax(), 0.2, 1e-9);
  EXPECT_NEAR(curve.latency_at(0.0), 1.5, 0.15);
  // ~5x l0 at wmax (the pseudo-drop point the explorer would find).
  EXPECT_NEAR(curve.latency_at(0.2), 7.5, 0.8);
  // Monotone.
  EXPECT_LT(curve.latency_at(0.05), curve.latency_at(0.15));
}

class SyntheticCurveSweep : public ::testing::TestWithParam<double> {};

TEST_P(SyntheticCurveSweep, InverseConsistentAcrossCapacities) {
  const double wmax = GetParam();
  const auto curve = synthetic_curve(wmax);
  for (double f = 0.2; f <= 1.0; f += 0.2) {
    const double w = f * wmax;
    const double l = curve.latency_at(w);
    EXPECT_NEAR(curve.weight_for(l), w, wmax * 0.05) << "f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, SyntheticCurveSweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.25, 0.5, 0.9));

}  // namespace
}  // namespace klb::testbed
