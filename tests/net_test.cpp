// net module tests: address parsing, 5-tuple hashing, HTTP and RESP codec
// round-trips (including malformed input), and fabric delivery semantics.
#include <gtest/gtest.h>

#include "net/address.hpp"
#include "net/fabric.hpp"
#include "net/five_tuple.hpp"
#include "net/http.hpp"
#include "net/resp.hpp"

namespace klb::net {
namespace {

using namespace util::literals;

TEST(IpAddr, ParseAndFormatRoundTrip) {
  for (const std::string s : {"0.0.0.0", "10.1.2.3", "255.255.255.255", "192.168.0.1"}) {
    const auto a = IpAddr::parse(s);
    ASSERT_TRUE(a.has_value()) << s;
    EXPECT_EQ(a->str(), s);
  }
}

TEST(IpAddr, RejectsMalformed) {
  for (const std::string s :
       {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "1.2.3.4 "}) {
    EXPECT_FALSE(IpAddr::parse(s).has_value()) << s;
  }
}

TEST(IpAddr, NextIncrements) {
  const IpAddr a{10, 0, 0, 255};
  EXPECT_EQ(a.next().str(), "10.0.1.0");
  EXPECT_EQ(a.next(3).str(), "10.0.1.2");
}

TEST(FiveTuple, HashSpreadsUniformly) {
  // Distinct source ports should spread evenly over 3 buckets (ECMP-style).
  std::array<int, 3> buckets{};
  FiveTuple t;
  t.src_ip = IpAddr{10, 2, 0, 1};
  t.dst_ip = IpAddr{10, 0, 0, 1};
  t.dst_port = 80;
  const int n = 30'000;
  for (int p = 0; p < n; ++p) {
    t.src_port = static_cast<std::uint16_t>(p % 65'536);
    buckets[hash_tuple(t) % 3]++;
  }
  for (const int b : buckets) EXPECT_NEAR(b, n / 3, n / 50);
}

TEST(FiveTuple, HashIsDeterministic) {
  FiveTuple t;
  t.src_ip = IpAddr{1, 2, 3, 4};
  t.src_port = 1234;
  EXPECT_EQ(hash_tuple(t), hash_tuple(t));
}

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.method = "GET";
  req.target = "/work?x=1";
  req.headers["Host"] = "10.0.0.1";
  req.body = "payload";
  const auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->target, "/work?x=1");
  EXPECT_EQ(parsed->headers.at("Host"), "10.0.0.1");
  EXPECT_EQ(parsed->headers.at("Content-Length"), "7");
  EXPECT_EQ(parsed->body, "payload");
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse resp;
  resp.status = 503;
  resp.reason = "Service Unavailable";
  resp.body = "overloaded";
  const auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 503);
  EXPECT_FALSE(parsed->ok());
  EXPECT_EQ(parsed->body, "overloaded");
}

TEST(Http, ParsesHandWrittenWire) {
  const std::string wire =
      "GET /index.html HTTP/1.1\r\nHost: example.com\r\n"
      "Content-Length: 0\r\n\r\n";
  const auto req = HttpRequest::parse(wire);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->target, "/index.html");
}

TEST(Http, RejectsMalformed) {
  EXPECT_FALSE(HttpRequest::parse("").has_value());
  EXPECT_FALSE(HttpRequest::parse("GET /\r\n\r\n").has_value());  // no version
  EXPECT_FALSE(HttpRequest::parse("GET / HTTP/2\r\n\r\n").has_value());
  EXPECT_FALSE(HttpResponse::parse("HTTP/1.1 abc OK\r\n\r\n").has_value());
  // Truncated body: Content-Length promises more than present.
  EXPECT_FALSE(
      HttpRequest::parse("GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
          .has_value());
}

TEST(Resp, ScalarRoundTrips) {
  for (const auto& v :
       {RespValue::simple("OK"), RespValue::error("ERR boom"),
        RespValue::integer_of(-42), RespValue::bulk("hello\r\nworld"),
        RespValue::null()}) {
    const auto decoded = resp_decode(resp_encode(v));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->value, v);
    EXPECT_EQ(decoded->consumed, resp_encode(v).size());
  }
}

TEST(Resp, NestedArrayRoundTrip) {
  const auto v = RespValue::array_of(
      {RespValue::bulk("LPUSH"), RespValue::integer_of(3),
       RespValue::array_of({RespValue::simple("a"), RespValue::null()})});
  const auto decoded = resp_decode(resp_encode(v));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->value, v);
}

TEST(Resp, CommandEncoding) {
  EXPECT_EQ(resp_encode_command({"GET", "key"}),
            "*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n");
}

TEST(Resp, IncompleteInputReturnsNullopt) {
  const auto full = resp_encode_command({"SET", "k", "v"});
  for (std::size_t cut = 1; cut < full.size(); ++cut)
    EXPECT_FALSE(resp_decode(full.substr(0, cut)).has_value()) << cut;
}

TEST(Resp, MalformedRejected) {
  EXPECT_FALSE(resp_decode("x\r\n").has_value());
  EXPECT_FALSE(resp_decode("$5\r\nab\r\n").has_value());
  EXPECT_FALSE(resp_decode(":12a\r\n").has_value());
}

class Collector : public Node {
 public:
  void on_message(const Message& msg) override { received.push_back(msg); }
  std::vector<Message> received;
};

TEST(Fabric, DeliversWithLatency) {
  sim::Simulation sim(3);
  Network net(sim);
  Collector a;
  net.attach(IpAddr{10, 0, 0, 1}, &a);

  Message m;
  m.type = MsgType::kHttpRequest;
  m.payload = "hello";
  net.send(IpAddr{10, 0, 0, 1}, m);
  EXPECT_TRUE(a.received.empty());  // not synchronous
  sim.run_all();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0].payload, "hello");
  EXPECT_GE(sim.now().us(), 150);  // at least the base latency
}

TEST(Fabric, UnboundAddressDrops) {
  sim::Simulation sim(3);
  Network net(sim);
  net.send(IpAddr{1, 1, 1, 1}, Message{});
  sim.run_all();
  EXPECT_EQ(net.messages_unreachable(), 1u);
}

TEST(Fabric, DetachStopsDelivery) {
  sim::Simulation sim(3);
  Network net(sim);
  Collector a;
  const IpAddr addr{10, 0, 0, 1};
  net.attach(addr, &a);
  net.attach(addr, nullptr);
  net.send(addr, Message{});
  sim.run_all();
  EXPECT_TRUE(a.received.empty());
}

TEST(Fabric, ManyMessagesAllArrive) {
  sim::Simulation sim(5);
  Network net(sim);
  Collector a;
  net.attach(IpAddr{10, 0, 0, 2}, &a);
  for (int i = 0; i < 1000; ++i) {
    Message m;
    m.req_id = static_cast<std::uint64_t>(i);
    net.send(IpAddr{10, 0, 0, 2}, m);
  }
  sim.run_all();
  EXPECT_EQ(a.received.size(), 1000u);
  EXPECT_EQ(net.messages_sent(), 1000u);
}

}  // namespace
}  // namespace klb::net
