// KLB_DEBUG_SYNC runtime validator tests (util/sync.cpp + the epoch
// invariants in lb/epoch.hpp).
//
// Every violation is a process abort, so these are death tests: the
// EXPECT_DEATH statement re-runs in a forked child that inherits the
// parent's lock-order graph, and the parent asserts on the child's
// one-line stderr report. Rank names are unique per test — the order
// graph is process-global, and a rank reused across tests would make one
// test's edges constrain another's.
//
// In builds without -DKLB_DEBUG_SYNC=ON the hooks compile to nothing, so
// every test here skips (the CI debug-sync job is where they bite).
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <thread>

#include "lb/epoch.hpp"
#include "util/effects.hpp"
#include "util/sync.hpp"

namespace klb {
namespace {

#if KLB_DEBUG_SYNC
constexpr bool kValidatorOn = true;
#else
constexpr bool kValidatorOn = false;
#endif

#define KLB_SKIP_WITHOUT_VALIDATOR()                                   \
  if (!kValidatorOn) {                                                 \
    GTEST_SKIP() << "built without KLB_DEBUG_SYNC; validator is a no-op"; \
  }

TEST(SyncDebugDeathTest, LockOrderInversionAborts) {
  KLB_SKIP_WITHOUT_VALIDATOR();
  util::Mutex a("klb.test.inv.A");
  util::Mutex b("klb.test.inv.B");
  {
    // Establish the canonical order A -> B.
    util::MutexLock la(a);
    util::MutexLock lb(b);
  }
  // The inverted acquire must abort immediately — no second thread, no
  // actual deadlock needed — and the report must name both ranks and the
  // cycle that the acquire would close.
  EXPECT_DEATH(
      {
        util::MutexLock lb(b);
        util::MutexLock la(a);
      },
      "lock-order violation.*closes cycle.*"
      "klb\\.test\\.inv\\.A.*klb\\.test\\.inv\\.B.*klb\\.test\\.inv\\.A");
}

TEST(SyncDebugDeathTest, SameRankNestingAborts) {
  KLB_SKIP_WITHOUT_VALIDATOR();
  // Two instances of one rank (like two flow-table shards): nesting them
  // is unordered and must abort on the inner acquire.
  util::Mutex first("klb.test.samerank");
  util::Mutex second("klb.test.samerank");
  util::MutexLock outer(first);
  EXPECT_DEATH({ util::MutexLock inner(second); },
               "lock-order violation.*klb\\.test\\.samerank.*same.*rank");
}

TEST(SyncDebugDeathTest, ReleasingUnheldLockAborts) {
  KLB_SKIP_WITHOUT_VALIDATOR();
  util::Mutex m("klb.test.unheld");
  EXPECT_DEATH(m.unlock(),
               "lock discipline violation.*klb\\.test\\.unheld.*does not hold");
}

TEST(SyncDebugDeathTest, PinUnderRegisteredControlLockAborts) {
  KLB_SKIP_WITHOUT_VALIDATOR();
  lb::EpochDomain domain;
  util::Mutex control("klb.test.pinctl", util::LockFlags::kControlPlane);
  domain.debug_register_control(&control);
  EXPECT_DEATH(
      {
        util::MutexLock lk(control);
        auto g = domain.pin();
      },
      "epoch invariant violation.*pinning an epoch domain.*"
      "klb\\.test\\.pinctl");
}

TEST(SyncDebugDeathTest, ControlAcquireWhilePinnedAborts) {
  KLB_SKIP_WITHOUT_VALIDATOR();
  lb::EpochDomain domain;
  util::Mutex control("klb.test.ctl2", util::LockFlags::kControlPlane);
  EXPECT_DEATH(
      {
        auto g = domain.pin();
        util::MutexLock lk(control);
      },
      "epoch invariant violation.*klb\\.test\\.ctl2.*live epoch pin");
}

TEST(SyncDebugDeathTest, ControlTryAcquireWhilePinnedAborts) {
  KLB_SKIP_WITHOUT_VALIDATOR();
  // try_lock never waits, but a successful one still enters the critical
  // section — the pin invariant applies to it all the same.
  lb::EpochDomain domain;
  util::Mutex control("klb.test.ctl3", util::LockFlags::kControlPlane);
  EXPECT_DEATH(
      {
        auto g = domain.pin();
        if (control.try_lock()) control.unlock();
      },
      "epoch invariant violation.*klb\\.test\\.ctl3.*live epoch pin");
}

TEST(SyncDebugDeathTest, RetireNeverPublishedAborts) {
  KLB_SKIP_WITHOUT_VALIDATOR();
  lb::EpochDomain domain;
  domain.debug_track_published();
  auto obj = std::make_shared<int>(42);
  EXPECT_DEATH(domain.retire(obj),
               "epoch invariant violation.*never published");
}

TEST(SyncDebugTest, RetireOfPublishedObjectIsClean) {
  KLB_SKIP_WITHOUT_VALIDATOR();
  lb::EpochDomain domain;
  domain.debug_track_published();
  auto obj = std::make_shared<int>(7);
  domain.debug_mark_published(obj.get());
  domain.retire(obj);  // must not abort
  EXPECT_EQ(domain.retired_total(), 1u);
}

TEST(SyncDebugTest, TryLockRecordsNoOrderEdge) {
  KLB_SKIP_WITHOUT_VALIDATOR();
  // Establish A -> B, then try_lock A while holding B. A blocking acquire
  // would close the cycle and abort; a trylock cannot wait, so it must be
  // admitted without recording the inverted edge.
  util::Mutex a("klb.test.noedge.A");
  util::Mutex b("klb.test.noedge.B");
  {
    util::MutexLock la(a);
    util::MutexLock lb(b);
  }
  {
    util::MutexLock lb(b);
    ASSERT_TRUE(a.try_lock());
    a.unlock();
  }
  // And the trylock above must not have poisoned the graph with B -> A:
  // the canonical order must still be acquirable.
  util::MutexLock la(a);
  util::MutexLock lb(b);
}

// --- effect-escape registry (util/effects.hpp) -----------------------------
// The registry records every KLB_EFFECT_ESCAPE site that *executes* in a
// debug build. These tests are the enforcement arm of the documented-site
// whitelist: an escape added without a kDocumentedEscapeSites entry (and
// the README justification that goes with it) fails here the first time
// it runs. Unlike the validator tests above, the registry is active in
// any !NDEBUG build — no KLB_DEBUG_SYNC needed.

TEST(EffectEscapeRegistryTest, ExecutedSitesAreAllDocumented) {
  if (!util::effects::registry_enabled()) {
    GTEST_SKIP() << "NDEBUG build: escape registry compiled out";
  }
  // Drive two known escapes so the registry is provably non-empty: a
  // Mutex try_lock/unlock pair records "util.Mutex.try_lock" and
  // "util.Mutex.unlock", and a pin records "epoch.pin_seed" on this
  // thread's first pin.
  util::Mutex m("klb.test.effects.reg");
  ASSERT_TRUE(m.try_lock());
  m.unlock();
  lb::EpochDomain domain;
  { auto g = domain.pin(); }

  const char* sites[util::effects::kDocumentedEscapeCount + 8];
  const std::size_t total = util::effects::escape_sites(
      sites, util::effects::kDocumentedEscapeCount + 8);
  ASSERT_GE(total, 2u);
  ASSERT_LE(total, util::effects::kDocumentedEscapeCount)
      << "more distinct escape sites executed than are documented";
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_TRUE(util::effects::site_documented(sites[i]))
        << "undocumented KLB_EFFECT_ESCAPE site executed: " << sites[i]
        << " (add it to kDocumentedEscapeSites + README or remove the "
           "escape)";
  }
}

TEST(EffectEscapeRegistryTest, WhitelistMatchesByContentNotPointer) {
  // site_documented is the whitelist predicate itself: it must admit
  // every documented name (even a TU-distinct copy of the literal) and
  // reject everything else, independent of build flavour.
  const char copy[] = "mux.pick";
  EXPECT_TRUE(util::effects::site_documented(copy));
  EXPECT_TRUE(util::effects::site_documented("flow.pin_insert"));
  EXPECT_TRUE(util::effects::site_documented("fabric.enqueue"));
  EXPECT_FALSE(util::effects::site_documented("klb.test.not_a_site"));
  EXPECT_FALSE(util::effects::site_documented("mux.pick "));
}

TEST(SyncDebugTest, CanonicalOrderReacquirableAcrossThreads) {
  KLB_SKIP_WITHOUT_VALIDATOR();
  // The per-thread edge cache must not hide edges from the global graph:
  // a second thread repeating the canonical order is clean, and the graph
  // it consults is the same one the first thread populated.
  util::Mutex a("klb.test.xthread.A");
  util::Mutex b("klb.test.xthread.B");
  {
    util::MutexLock la(a);
    util::MutexLock lb(b);
  }
  std::thread t([&] {
    util::MutexLock la(a);
    util::MutexLock lb(b);
  });
  t.join();
}

}  // namespace
}  // namespace klb
