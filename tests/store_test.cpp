// Latency store tests: KvEngine command semantics (Redis-compatible
// subset), TTL expiry on virtual time, the RESP wire server, and the typed
// latency-sample schema round trip.
#include <gtest/gtest.h>

#include "net/resp.hpp"
#include "sim/simulation.hpp"
#include "store/kv_engine.hpp"
#include "store/kv_server.hpp"
#include "store/latency_store.hpp"

namespace klb::store {
namespace {

using net::RespValue;
using namespace util::literals;

struct EngineFixture {
  util::SimTime now = util::SimTime::zero();
  KvEngine engine{[this] { return now; }};
};

TEST(KvEngine, PingPong) {
  EngineFixture f;
  EXPECT_EQ(f.engine.execute({"PING"}), RespValue::simple("PONG"));
  EXPECT_EQ(f.engine.execute({"PING", "hi"}), RespValue::bulk("hi"));
  EXPECT_EQ(f.engine.execute({"ECHO", "x"}), RespValue::bulk("x"));
}

TEST(KvEngine, SetGetDel) {
  EngineFixture f;
  EXPECT_EQ(f.engine.execute({"SET", "k", "v"}), RespValue::simple("OK"));
  EXPECT_EQ(f.engine.execute({"GET", "k"}), RespValue::bulk("v"));
  EXPECT_EQ(f.engine.execute({"DEL", "k", "missing"}), RespValue::integer_of(1));
  EXPECT_TRUE(f.engine.execute({"GET", "k"}).is_null());
}

TEST(KvEngine, CaseInsensitiveCommands) {
  EngineFixture f;
  EXPECT_EQ(f.engine.execute({"set", "k", "v"}), RespValue::simple("OK"));
  EXPECT_EQ(f.engine.execute({"gEt", "k"}), RespValue::bulk("v"));
}

TEST(KvEngine, TtlExpiryOnVirtualClock) {
  EngineFixture f;
  f.engine.execute({"SET", "k", "v", "EX", "10"});
  EXPECT_EQ(f.engine.execute({"TTL", "k"}), RespValue::integer_of(10));
  f.now = 9_s;
  EXPECT_EQ(f.engine.execute({"GET", "k"}), RespValue::bulk("v"));
  f.now = 11_s;
  EXPECT_TRUE(f.engine.execute({"GET", "k"}).is_null());
  EXPECT_EQ(f.engine.execute({"TTL", "k"}), RespValue::integer_of(-2));
}

TEST(KvEngine, ExpireCommand) {
  EngineFixture f;
  f.engine.execute({"SET", "k", "v"});
  EXPECT_EQ(f.engine.execute({"TTL", "k"}), RespValue::integer_of(-1));
  EXPECT_EQ(f.engine.execute({"EXPIRE", "k", "5"}), RespValue::integer_of(1));
  f.now = 6_s;
  EXPECT_EQ(f.engine.execute({"EXISTS", "k"}), RespValue::integer_of(0));
}

TEST(KvEngine, ListOperations) {
  EngineFixture f;
  EXPECT_EQ(f.engine.execute({"LPUSH", "l", "a"}), RespValue::integer_of(1));
  EXPECT_EQ(f.engine.execute({"LPUSH", "l", "b", "c"}), RespValue::integer_of(3));
  EXPECT_EQ(f.engine.execute({"RPUSH", "l", "z"}), RespValue::integer_of(4));
  EXPECT_EQ(f.engine.execute({"LLEN", "l"}), RespValue::integer_of(4));
  // LPUSH prepends: order is c, b, a, z.
  const auto range = f.engine.execute({"LRANGE", "l", "0", "-1"});
  ASSERT_EQ(range.array.size(), 4u);
  EXPECT_EQ(range.array[0].str, "c");
  EXPECT_EQ(range.array[3].str, "z");
  EXPECT_EQ(f.engine.execute({"LPOP", "l"}), RespValue::bulk("c"));
}

TEST(KvEngine, LrangeNegativeIndices) {
  EngineFixture f;
  f.engine.execute({"RPUSH", "l", "0", "1", "2", "3", "4"});
  const auto tail = f.engine.execute({"LRANGE", "l", "-2", "-1"});
  ASSERT_EQ(tail.array.size(), 2u);
  EXPECT_EQ(tail.array[0].str, "3");
  EXPECT_EQ(tail.array[1].str, "4");
}

TEST(KvEngine, LtrimBoundsHistory) {
  EngineFixture f;
  for (int i = 0; i < 10; ++i)
    f.engine.execute({"LPUSH", "l", std::to_string(i)});
  f.engine.execute({"LTRIM", "l", "0", "2"});
  EXPECT_EQ(f.engine.execute({"LLEN", "l"}), RespValue::integer_of(3));
  EXPECT_EQ(f.engine.execute({"LPOP", "l"}), RespValue::bulk("9"));
}

TEST(KvEngine, WrongTypeErrors) {
  EngineFixture f;
  f.engine.execute({"SET", "s", "v"});
  EXPECT_TRUE(f.engine.execute({"LPUSH", "s", "x"}).is_error());
  f.engine.execute({"LPUSH", "l", "x"});
  EXPECT_TRUE(f.engine.execute({"GET", "l"}).is_error());
}

TEST(KvEngine, UnknownCommandErrors) {
  EngineFixture f;
  EXPECT_TRUE(f.engine.execute({"SUBSCRIBE", "ch"}).is_error());
  EXPECT_TRUE(f.engine.execute({}).is_error());
}

TEST(KvEngine, KeysAndFlush) {
  EngineFixture f;
  f.engine.execute({"SET", "a", "1"});
  f.engine.execute({"SET", "b", "2"});
  EXPECT_EQ(f.engine.execute({"DBSIZE"}), RespValue::integer_of(2));
  const auto keys = f.engine.execute({"KEYS", "*"});
  ASSERT_EQ(keys.array.size(), 2u);
  EXPECT_EQ(keys.array[0].str, "a");  // sorted
  f.engine.execute({"FLUSHALL"});
  EXPECT_EQ(f.engine.execute({"DBSIZE"}), RespValue::integer_of(0));
}

TEST(LatencySample, SerializeParseRoundTrip) {
  LatencySample s;
  s.dip = net::IpAddr{10, 1, 0, 7};
  s.avg_latency_ms = 3.141592;
  s.probes = 100;
  s.errors = 3;
  s.timeouts = 1;
  s.at = util::SimTime::micros(123'456'789);
  const auto parsed = LatencySample::parse(s.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dip, s.dip);
  EXPECT_NEAR(parsed->avg_latency_ms, s.avg_latency_ms, 1e-6);
  EXPECT_EQ(parsed->probes, 100u);
  EXPECT_EQ(parsed->errors, 3u);
  EXPECT_EQ(parsed->timeouts, 1u);
  EXPECT_EQ(parsed->at, s.at);
}

TEST(LatencySample, ParseRejectsGarbage) {
  EXPECT_FALSE(LatencySample::parse("").has_value());
  EXPECT_FALSE(LatencySample::parse("10.0.0.1|1.0|2|3").has_value());
  EXPECT_FALSE(LatencySample::parse("bad|1.0|2|3|4|5").has_value());
  EXPECT_FALSE(LatencySample::parse("10.0.0.1|x|2|3|4|5").has_value());
}

TEST(LatencySample, FailureClassification) {
  LatencySample s;
  s.probes = 10;
  s.errors = 4;
  s.timeouts = 6;
  EXPECT_TRUE(s.all_failed());
  EXPECT_TRUE(s.saw_drops());
  s.errors = 0;
  s.timeouts = 0;
  EXPECT_FALSE(s.all_failed());
  EXPECT_FALSE(s.saw_drops());
}

TEST(LatencyStore, RecordAndReadBack) {
  auto engine = std::make_shared<KvEngine>([] { return util::SimTime::zero(); });
  LatencyStore store(engine, 4);
  const net::IpAddr vip{10, 0, 0, 1};
  const net::IpAddr dip{10, 1, 0, 1};

  for (int i = 0; i < 6; ++i) {
    LatencySample s;
    s.dip = dip;
    s.avg_latency_ms = 1.0 + i;
    s.probes = 100;
    s.at = util::SimTime::seconds(i);
    store.record(vip, s);
  }
  const auto latest = store.latest(vip, dip);
  ASSERT_TRUE(latest.has_value());
  EXPECT_NEAR(latest->avg_latency_ms, 6.0, 1e-9);

  const auto recent = store.recent(vip, dip, 10);
  EXPECT_EQ(recent.size(), 4u);  // history capped at 4
  EXPECT_NEAR(recent[0].avg_latency_ms, 6.0, 1e-9);   // newest first
  EXPECT_NEAR(recent[3].avg_latency_ms, 3.0, 1e-9);
}

TEST(LatencyStore, MissingKeyIsEmpty) {
  auto engine = std::make_shared<KvEngine>([] { return util::SimTime::zero(); });
  LatencyStore store(engine);
  EXPECT_FALSE(store.latest(net::IpAddr{1, 1, 1, 1}, net::IpAddr{2, 2, 2, 2})
                   .has_value());
}

class RespCollector : public net::Node {
 public:
  void on_message(const net::Message& msg) override {
    if (msg.type == net::MsgType::kRespReply) replies.push_back(msg.payload);
  }
  std::vector<std::string> replies;
};

TEST(KvServer, ServesRespOverFabric) {
  sim::Simulation sim(31);
  net::Network net(sim);
  auto engine = std::make_shared<KvEngine>([&sim] { return sim.now(); });
  KvServer server(net, net::IpAddr{10, 3, 0, 2}, engine);
  RespCollector client;
  net.attach(net::IpAddr{10, 3, 0, 9}, &client);

  auto send_cmd = [&](std::vector<std::string> parts) {
    net::Message m;
    m.type = net::MsgType::kRespCommand;
    m.tuple.src_ip = net::IpAddr{10, 3, 0, 9};
    m.tuple.dst_ip = net::IpAddr{10, 3, 0, 2};
    m.payload = net::resp_encode_command(parts);
    net.send(net::IpAddr{10, 3, 0, 2}, m);
  };

  // The fabric has datagram semantics (no cross-message ordering), so
  // drain between dependent commands like a synchronous client would.
  send_cmd({"SET", "k", "v"});
  sim.run_all();
  send_cmd({"GET", "k"});
  sim.run_all();

  ASSERT_EQ(client.replies.size(), 2u);
  EXPECT_EQ(client.replies[0], "+OK\r\n");
  EXPECT_EQ(client.replies[1], "$1\r\nv\r\n");
  EXPECT_EQ(server.commands_processed(), 2u);

  // The engine state is visible to an in-process facade sharing it.
  EXPECT_EQ(engine->execute({"GET", "k"}), RespValue::bulk("v"));
}

TEST(KvServer, MalformedPayloadGetsError) {
  sim::Simulation sim(32);
  net::Network net(sim);
  auto engine = std::make_shared<KvEngine>([&sim] { return sim.now(); });
  KvServer server(net, net::IpAddr{10, 3, 0, 2}, engine);
  RespCollector client;
  net.attach(net::IpAddr{10, 3, 0, 9}, &client);

  net::Message m;
  m.type = net::MsgType::kRespCommand;
  m.tuple.src_ip = net::IpAddr{10, 3, 0, 9};
  m.payload = "not resp at all";
  net.send(net::IpAddr{10, 3, 0, 2}, m);
  sim.run_all();
  ASSERT_EQ(client.replies.size(), 1u);
  EXPECT_EQ(client.replies[0][0], '-');  // RESP error marker
}

}  // namespace
}  // namespace klb::store
