// MuxPool tests: ECMP sharding over one VIP, the single-shared-maglev-build
// invariant (pointer-equal snapshots, identical program versions on every
// member), minimal flow remap across the pool under DIP churn, and the
// graceful-drain vs abrupt-failure lifecycle end to end.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "lb/lb_controller.hpp"
#include "lb/mux_pool.hpp"
#include "lb/pool_program.hpp"
#include "util/weight.hpp"

namespace klb::lb {
namespace {

using namespace util::literals;

net::FiveTuple flow(std::uint32_t client, std::uint16_t port) {
  net::FiveTuple t;
  t.src_ip = net::IpAddr(0x0a020000 + client);
  t.dst_ip = net::IpAddr{10, 0, 0, 1};
  t.src_port = port;
  t.dst_port = 80;
  return t;
}

/// DIP-side recorder: which flows (by src ip value) landed here.
class RecordingDip : public net::Node {
 public:
  void on_message(const net::Message& msg) override {
    if (msg.type == net::MsgType::kHttpRequest)
      seen_[msg.tuple.src_ip.value()] = true;
    ++messages_;
  }
  bool saw(std::uint32_t client_value) const { return seen_.count(client_value) > 0; }
  std::uint64_t messages() const { return messages_; }

 private:
  std::unordered_map<std::uint32_t, bool> seen_;
  std::uint64_t messages_ = 0;
};

struct PoolFixture {
  sim::Simulation sim{41};
  net::Network net{sim};
  net::IpAddr vip{10, 0, 0, 1};

  net::Message request(std::uint32_t client, std::uint16_t port) {
    net::Message m;
    m.type = net::MsgType::kHttpRequest;
    m.tuple = flow(client, port);
    return m;
  }

  net::Message fin(std::uint32_t client, std::uint16_t port) {
    net::Message m;
    m.type = net::MsgType::kFin;
    m.tuple = flow(client, port);
    return m;
  }

  static std::vector<net::IpAddr> dip_addrs(std::size_t n) {
    std::vector<net::IpAddr> out;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(net::IpAddr(0x0a010000 + static_cast<std::uint32_t>(i) + 1));
    return out;
  }

  static PoolProgram equal_program(std::uint64_t version,
                                   const std::vector<net::IpAddr>& dips) {
    PoolProgram p(version);
    const auto units = util::normalize_to_units(
        std::vector<double>(dips.size(), 1.0));
    for (std::size_t i = 0; i < dips.size(); ++i) p.add(dips[i], units[i]);
    return p;
  }
};

// Acceptance: all K muxes serve identical program versions with ONE shared
// maglev build per version — snapshots pointer-equal across the pool.
TEST(MuxPool, SharedSnapshotPointerEqualAcrossMuxes) {
  PoolFixture f;
  MuxPool pool(f.net, f.vip, 4);
  const auto dips = PoolFixture::dip_addrs(10);

  pool.apply_program(PoolFixture::equal_program(pool.issue_version(), dips));
  EXPECT_EQ(pool.shared_builds(), 1u);
  const auto snap1 = pool.table_snapshot(0);
  ASSERT_NE(snap1, nullptr);
  for (std::size_t k = 0; k < pool.mux_count(); ++k) {
    EXPECT_EQ(pool.table_snapshot(k), snap1);  // pointer-equal, not just equal
    EXPECT_EQ(pool.mux(k).applied_version(), pool.applied_version());
    EXPECT_EQ(pool.mux(k).backend_count(), dips.size());
  }

  // A new version swaps in a new snapshot — again one build, pool-wide.
  PoolProgram v2 = PoolFixture::equal_program(pool.issue_version(), dips);
  v2.entries[0].weight_units = 0;
  pool.apply_program(v2);
  EXPECT_EQ(pool.shared_builds(), 2u);
  const auto snap2 = pool.table_snapshot(0);
  EXPECT_NE(snap2, snap1);
  for (std::size_t k = 0; k < pool.mux_count(); ++k)
    EXPECT_EQ(pool.table_snapshot(k), snap2);
}

// A stale transaction is discarded pool-wide: no member applies it, no
// per-mux build happens, the snapshot pointer does not move.
TEST(MuxPool, StaleProgramDiscardedPoolWide) {
  PoolFixture f;
  MuxPool pool(f.net, f.vip, 3);
  const auto dips = PoolFixture::dip_addrs(4);

  pool.apply_program(PoolFixture::equal_program(2, dips));
  const auto snap = pool.table_snapshot(0);

  PoolProgram stale = PoolFixture::equal_program(1, dips);
  stale.entries.pop_back();  // stale view: 3-DIP pool
  pool.apply_program(stale);

  EXPECT_EQ(pool.superseded_programs(), 1u);
  EXPECT_EQ(pool.applied_version(), 2u);
  EXPECT_EQ(pool.shared_builds(), 1u);
  for (std::size_t k = 0; k < pool.mux_count(); ++k) {
    EXPECT_EQ(pool.table_snapshot(k), snap);
    EXPECT_EQ(pool.mux(k).applied_version(), 2u);
    EXPECT_EQ(pool.mux(k).backend_count(), 4u);
    EXPECT_EQ(pool.mux(k).superseded_programs(), 0u);  // never even offered
  }
}

// ECMP spreads flows across the members; every member serves traffic and
// the shard choice is stable per tuple.
TEST(MuxPool, EcmpShardsFlowsAcrossMuxes) {
  PoolFixture f;
  MuxPool pool(f.net, f.vip, 4);
  const auto dips = PoolFixture::dip_addrs(8);
  std::vector<RecordingDip> sinks(dips.size());
  for (std::size_t i = 0; i < dips.size(); ++i) f.net.attach(dips[i], &sinks[i]);
  pool.apply_program(PoolFixture::equal_program(pool.issue_version(), dips));

  for (std::uint32_t c = 0; c < 4000; ++c) {
    EXPECT_EQ(pool.shard_of(flow(c, 443)), pool.shard_of(flow(c, 443)));
    f.net.send(f.vip, f.request(c, 443));
  }
  f.sim.run_all();

  EXPECT_EQ(pool.total_forwarded(), 4000u);
  for (std::size_t k = 0; k < pool.mux_count(); ++k)
    EXPECT_GT(pool.mux(k).total_forwarded(), 500u);  // ~1000 +- spread
  std::uint64_t landed = 0;
  for (const auto& s : sinks) landed += s.messages();
  EXPECT_EQ(landed, 4000u);
}

// Acceptance: flow remap on a single-DIP removal stays < 1% across the
// pool. The shared table resolves hashes to stable DIP ids, so this is
// measured on the snapshot the whole pool serves: slots that changed owner
// without belonging to the removed DIP are collateral churn.
TEST(MuxPool, SingleDipRemovalRemapsUnderOnePercent) {
  PoolFixture f;
  MuxPool pool(f.net, f.vip, 3);
  const auto dips = PoolFixture::dip_addrs(100);

  pool.apply_program(PoolFixture::equal_program(pool.issue_version(), dips));
  const auto before = pool.table_snapshot(0);

  const auto removed = dips[50];
  PoolProgram v2(pool.issue_version());
  const auto units = util::normalize_to_units(
      std::vector<double>(dips.size() - 1, 1.0));
  std::size_t u = 0;
  for (const auto dip : dips)
    if (!(dip == removed)) v2.add(dip, units[u++]);
  pool.apply_program(v2);
  const auto after = pool.table_snapshot(0);

  ASSERT_EQ(before->table_size(), after->table_size());
  std::size_t moved = 0;
  for (std::size_t s = 0; s < before->table_size(); ++s) {
    const auto was = before->lookup_id(s);
    if (was == removed.value()) continue;  // had to move
    if (was != after->lookup_id(s)) ++moved;
  }
  EXPECT_LT(static_cast<double>(moved) /
                static_cast<double>(before->table_size()),
            0.01);
}

// Any two muxes pick the same DIP for the same 5-tuple (the reason the
// build is shared): replaying the pool's flows through each member's
// affinity-free pick path lands identically. Verified end to end — a flow
// re-sent after its FIN (no affinity left anywhere) still reaches the DIP
// it first landed on, whichever mux ECMP now assigns it to.
TEST(MuxPool, PicksConsistentAcrossMembers) {
  PoolFixture f;
  MuxPool pool(f.net, f.vip, 5);
  const auto dips = PoolFixture::dip_addrs(20);
  std::vector<RecordingDip> sinks(dips.size());
  for (std::size_t i = 0; i < dips.size(); ++i) f.net.attach(dips[i], &sinks[i]);
  pool.apply_program(PoolFixture::equal_program(pool.issue_version(), dips));

  // First landing of each flow.
  for (std::uint32_t c = 0; c < 2000; ++c) f.net.send(f.vip, f.request(c, 443));
  f.sim.run_all();
  std::map<std::uint32_t, std::size_t> first_dip;
  for (std::uint32_t c = 0; c < 2000; ++c)
    for (std::size_t i = 0; i < sinks.size(); ++i)
      if (sinks[i].saw(net::IpAddr(0x0a020000 + c).value())) {
        first_dip[c] = i;
        break;
      }
  ASSERT_EQ(first_dip.size(), 2000u);

  // Unpin everything, then replay: same tuple -> same DIP via the shared
  // table, no matter which member handles it.
  for (std::uint32_t c = 0; c < 2000; ++c) f.net.send(f.vip, f.fin(c, 443));
  f.sim.run_all();
  ASSERT_EQ(pool.affinity_size(), 0u);
  const auto forwarded_before = pool.total_forwarded();
  for (std::uint32_t c = 0; c < 2000; ++c) f.net.send(f.vip, f.request(c, 443));
  f.sim.run_all();
  EXPECT_EQ(pool.total_forwarded(), forwarded_before + 2000);
  std::uint64_t reconnections = 0;
  for (std::size_t k = 0; k < pool.mux_count(); ++k)
    for (std::size_t i = 0; i < pool.mux(k).backend_count(); ++i)
      reconnections += pool.mux(k).new_connections(i);
  EXPECT_EQ(reconnections, 4000u);  // 2000 first + 2000 replayed
  // Every replayed flow reached the DIP of its first landing: per-DIP new
  // connection counts doubled exactly.
  for (std::size_t i = 0; i < dips.size(); ++i) {
    std::uint64_t per_dip = pool.new_connections_to(dips[i]);
    std::uint64_t expected = 0;
    for (const auto& [c, d] : first_dip)
      if (d == i) expected += 2;
    EXPECT_EQ(per_dip, expected) << "dip " << i;
  }
}

// Acceptance: a Draining backend reaches Removed without dropping one
// pinned flow, pool-wide — while an abrupt fail_backend still resets them.
TEST(MuxPool, DrainCompletesWithoutDroppingPinnedFlows) {
  PoolFixture f;
  MuxPool pool(f.net, f.vip, 3);
  const auto dips = PoolFixture::dip_addrs(4);
  std::vector<RecordingDip> sinks(dips.size());
  for (std::size_t i = 0; i < dips.size(); ++i) f.net.attach(dips[i], &sinks[i]);
  pool.apply_program(PoolFixture::equal_program(pool.issue_version(), dips));

  for (std::uint32_t c = 0; c < 400; ++c) f.net.send(f.vip, f.request(c, 443));
  f.sim.run_all();
  const auto pinned_on_target = pool.new_connections_to(dips[0]);
  ASSERT_GT(pinned_on_target, 0u);

  // Drain DIP 0 in the same transaction that reweights the survivors.
  PoolProgram drain(pool.issue_version());
  drain.add(dips[0], 0, BackendState::kDraining);
  const auto units = util::normalize_to_units(std::vector<double>(3, 1.0));
  for (std::size_t i = 1; i < dips.size(); ++i) drain.add(dips[i], units[i - 1]);
  pool.apply_program(drain);

  // Pinned flows keep flowing to the drainer; new flows avoid it.
  const auto msgs_before = sinks[0].messages();
  for (std::uint32_t c = 0; c < 400; ++c)
    f.net.send(f.vip, f.request(c, 443));  // same flows: pinned
  for (std::uint32_t c = 1000; c < 1400; ++c)
    f.net.send(f.vip, f.request(c, 443));  // fresh flows: steered away
  f.sim.run_all();
  EXPECT_EQ(sinks[0].messages() - msgs_before, pinned_on_target);
  EXPECT_EQ(pool.new_connections_to(dips[0]), pinned_on_target);

  // FIN everything: the drain completes on every member without one reset.
  for (std::uint32_t c = 0; c < 400; ++c) f.net.send(f.vip, f.fin(c, 443));
  for (std::uint32_t c = 1000; c < 1400; ++c) f.net.send(f.vip, f.fin(c, 443));
  f.sim.run_all();
  EXPECT_EQ(pool.drains_completed(), pool.mux_count());
  EXPECT_EQ(pool.flows_reset_by_failure(), 0u);
  EXPECT_EQ(pool.backend_count(), 3u);
  for (std::size_t k = 0; k < pool.mux_count(); ++k)
    EXPECT_EQ(pool.mux(k).backend_count(), 3u);

  // Abrupt failure, for contrast: pinned flows are reset, loudly.
  for (std::uint32_t c = 2000; c < 2400; ++c) f.net.send(f.vip, f.request(c, 443));
  f.sim.run_all();
  const auto pinned_on_failed = pool.new_connections_to(dips[1]) -
                                /*pre-drain connections*/ 0;
  ASSERT_GT(pinned_on_failed, 0u);
  const auto active_on_failed = [&] {
    std::uint64_t n = 0;
    for (std::size_t k = 0; k < pool.mux_count(); ++k)
      for (std::size_t i = 0; i < pool.mux(k).backend_count(); ++i)
        if (pool.mux(k).backend_addr(i) == dips[1])
          n += pool.mux(k).active_connections(i);
    return n;
  }();
  ASSERT_GT(active_on_failed, 0u);
  const auto snap_before_fail = pool.table_snapshot(0);
  EXPECT_TRUE(pool.fail_backend(dips[1]));
  EXPECT_EQ(pool.flows_reset_by_failure(), active_on_failed);
  EXPECT_EQ(pool.backend_count(), 2u);

  // The shared table rebuilt immediately: the dead DIP's hash space went
  // to the survivors, so the reset flows' retries are served, not
  // blackholed until the next control-plane program.
  EXPECT_NE(pool.table_snapshot(0), snap_before_fail);
  for (std::size_t k = 1; k < pool.mux_count(); ++k)
    EXPECT_EQ(pool.table_snapshot(k), pool.table_snapshot(0));
  const auto fwd_before_retry = pool.total_forwarded();
  for (std::uint32_t c = 2000; c < 2400; ++c)
    f.net.send(f.vip, f.request(c, 443));  // the reset clients reconnect
  f.sim.run_all();
  EXPECT_EQ(pool.total_forwarded(), fwd_before_retry + 400);
  EXPECT_EQ(pool.new_connections_to(dips[1]), 0u);  // dead DIP reset counters gone with it
}

// The delayed control plane drives a pool exactly like a single mux: one
// transaction, committed on every member after the delay.
TEST(MuxPool, LbControllerProgramsWholePool) {
  PoolFixture f;
  MuxPool pool(f.net, f.vip, 3);
  const auto dips = PoolFixture::dip_addrs(3);
  pool.apply_program(PoolFixture::equal_program(pool.issue_version(), dips));
  LbController ctrl(f.sim, pool, 200_ms);

  PoolProgram p(ctrl.issue_version());
  p.add(dips[0], 5000).add(dips[1], 3000).add(dips[2], 2000);
  ctrl.apply_program(p);
  f.sim.run_until(100_ms);
  EXPECT_NE(pool.mux(0).weight_units()[0], 5000);  // not yet
  f.sim.run_until(300_ms);
  for (std::size_t k = 0; k < pool.mux_count(); ++k)
    EXPECT_EQ(pool.mux(k).weight_units(),
              (std::vector<std::int64_t>{5000, 3000, 2000}));
  EXPECT_EQ(pool.applied_version(), p.version);
}

}  // namespace
}  // namespace klb::lb
