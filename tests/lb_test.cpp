// LB dataplane tests: policy selection semantics (including weighted
// distribution properties), MUX affinity/FIN accounting, control-plane
// programming delay, and DNS traffic-manager behaviour.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/drain.hpp"
#include "lb/dns_lb.hpp"
#include "lb/lb_controller.hpp"
#include "lb/mux.hpp"
#include "lb/policy.hpp"
#include "store/latency_store.hpp"
#include "util/weight.hpp"

namespace klb::lb {
namespace {

using namespace util::literals;

std::vector<BackendView> make_backends(std::vector<std::int64_t> weights) {
  std::vector<BackendView> out;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    BackendView v;
    v.addr = net::IpAddr{10, 1, 0, static_cast<std::uint8_t>(i + 1)};
    v.weight_units = weights[i];
    out.push_back(v);
  }
  return out;
}

net::FiveTuple tuple_with_port(std::uint16_t port) {
  net::FiveTuple t;
  t.src_ip = net::IpAddr{10, 2, 0, 1};
  t.dst_ip = net::IpAddr{10, 0, 0, 1};
  t.src_port = port;
  t.dst_port = 80;
  return t;
}

TEST(Policy, FactoryKnowsAllNames) {
  for (const std::string name :
       {"rr", "wrr", "lc", "wlc", "random", "wrandom", "p2", "hash"}) {
    EXPECT_EQ(make_policy(name)->name(), name);
  }
  EXPECT_THROW(make_policy("nope"), std::invalid_argument);
}

TEST(Policy, RoundRobinCycles) {
  RoundRobin rr;
  util::Rng rng(1);
  auto backends = make_backends({1, 1, 1});
  std::vector<std::size_t> picks;
  for (int i = 0; i < 6; ++i)
    picks.push_back(rr.pick(tuple_with_port(0), backends, rng));
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(Policy, RoundRobinSkipsDisabled) {
  RoundRobin rr;
  util::Rng rng(1);
  auto backends = make_backends({1, 1, 1});
  backends[1].enabled = false;
  for (int i = 0; i < 4; ++i)
    EXPECT_NE(rr.pick(tuple_with_port(0), backends, rng), 1u);
}

TEST(Policy, SmoothWrrMatchesWeightsExactly) {
  SmoothWeightedRoundRobin wrr;
  util::Rng rng(1);
  auto backends = make_backends({5000, 3000, 2000});  // 0.5 / 0.3 / 0.2
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 1000; ++i)
    counts[wrr.pick(tuple_with_port(0), backends, rng)]++;
  EXPECT_EQ(counts[0], 500);
  EXPECT_EQ(counts[1], 300);
  EXPECT_EQ(counts[2], 200);
}

TEST(Policy, SmoothWrrInterleaves) {
  // Smooth WRR spreads the heavy backend: naive WRR emits 5 a's in a row
  // for (5,1,1); smooth caps the run at 4 (across the cycle boundary).
  SmoothWeightedRoundRobin wrr;
  util::Rng rng(1);
  auto backends = make_backends({5, 1, 1});
  int longest_run = 0;
  int run = 0;
  std::size_t prev = kNoBackend;
  for (int i = 0; i < 70; ++i) {
    const auto p = wrr.pick(tuple_with_port(0), backends, rng);
    run = (p == prev) ? run + 1 : 1;
    longest_run = std::max(longest_run, run);
    prev = p;
  }
  EXPECT_LE(longest_run, 4);
}

TEST(Policy, SmoothWrrZeroWeightExcluded) {
  SmoothWeightedRoundRobin wrr;
  util::Rng rng(1);
  auto backends = make_backends({1000, 0, 1000});
  for (int i = 0; i < 50; ++i)
    EXPECT_NE(wrr.pick(tuple_with_port(0), backends, rng), 1u);
}

TEST(Policy, LeastConnectionPicksEmptiest) {
  LeastConnection lc;
  util::Rng rng(1);
  auto backends = make_backends({1, 1, 1});
  backends[0].active_conns = 5;
  backends[1].active_conns = 2;
  backends[2].active_conns = 9;
  EXPECT_EQ(lc.pick(tuple_with_port(0), backends, rng), 1u);
}

TEST(Policy, WeightedLeastConnectionNormalizesByWeight) {
  WeightedLeastConnection wlc;
  util::Rng rng(1);
  auto backends = make_backends({8000, 2000});
  backends[0].active_conns = 8;  // (8+1)/8000 > (1+1)/2000? 1.125e-3 vs 1e-3
  backends[1].active_conns = 1;
  EXPECT_EQ(wlc.pick(tuple_with_port(0), backends, rng), 1u);
  backends[1].active_conns = 2;  // now (8+1)/8000 < (2+1)/2000
  EXPECT_EQ(wlc.pick(tuple_with_port(0), backends, rng), 0u);
}

TEST(Policy, WeightedRandomProportions) {
  WeightedRandom wr;
  util::Rng rng(99);
  auto backends = make_backends({7000, 2000, 1000});
  std::map<std::size_t, int> counts;
  const int n = 50'000;
  for (int i = 0; i < n; ++i)
    counts[wr.pick(tuple_with_port(0), backends, rng)]++;
  EXPECT_NEAR(counts[0], n * 0.7, n * 0.02);
  EXPECT_NEAR(counts[1], n * 0.2, n * 0.02);
  EXPECT_NEAR(counts[2], n * 0.1, n * 0.02);
}

TEST(Policy, HashIsAffineToTuple) {
  HashTuple hash;
  util::Rng rng(1);
  auto backends = make_backends({1, 1, 1});
  const auto t = tuple_with_port(12'345);
  const auto first = hash.pick(t, backends, rng);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(hash.pick(t, backends, rng), first);
  // Different ports spread.
  std::map<std::size_t, int> counts;
  for (std::uint16_t p = 0; p < 3000; ++p)
    counts[hash.pick(tuple_with_port(p), backends, rng)]++;
  for (const auto& [_, c] : counts) EXPECT_GT(c, 800);
}

TEST(Policy, EmptyPoolReturnsNoBackend) {
  RoundRobin rr;
  util::Rng rng(1);
  std::vector<BackendView> none;
  EXPECT_EQ(rr.pick(tuple_with_port(0), none, rng), kNoBackend);
  auto backends = make_backends({1});
  backends[0].enabled = false;
  EXPECT_EQ(rr.pick(tuple_with_port(0), backends, rng), kNoBackend);
}

// --- MUX ---------------------------------------------------------------------

/// Minimal WeightInterface that records the last programming (drain tests).
struct RecordingWeights : public WeightInterface {
  explicit RecordingWeights(std::size_t n) : n_(n) {}
  std::size_t backend_count() const override { return n_; }
  void program_weights(const std::vector<std::int64_t>& units) override {
    last_units = units;
  }
  void set_backend_enabled(std::size_t, bool) override {}
  void add_backend(net::IpAddr) override { ++n_; }
  bool remove_backend(std::size_t i) override {
    if (i >= n_) return false;
    --n_;
    return true;
  }
  std::vector<std::int64_t> last_units;
  std::size_t n_;
};

class Sink : public net::Node {
 public:
  void on_message(const net::Message& msg) override { messages.push_back(msg); }
  std::vector<net::Message> messages;
};

struct MuxFixture {
  sim::Simulation sim{11};
  net::Network net{sim};
  net::IpAddr vip{10, 0, 0, 1};
  Sink dip1, dip2;

  MuxFixture() {
    net.attach(net::IpAddr{10, 1, 0, 1}, &dip1);
    net.attach(net::IpAddr{10, 1, 0, 2}, &dip2);
  }

  net::Message request(std::uint16_t port, std::uint64_t conn, std::uint64_t req) {
    net::Message m;
    m.type = net::MsgType::kHttpRequest;
    m.tuple = tuple_with_port(port);
    m.conn_id = conn;
    m.req_id = req;
    return m;
  }
};

TEST(Mux, ForwardsAndPinsConnections) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("rr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});

  // Two requests on the same tuple must go to the same DIP even though RR
  // would alternate.
  f.net.send(f.vip, f.request(1000, 1, 1));
  f.net.send(f.vip, f.request(1000, 1, 2));
  f.sim.run_all();
  EXPECT_EQ(f.dip1.messages.size() + f.dip2.messages.size(), 2u);
  EXPECT_TRUE(f.dip1.messages.empty() || f.dip2.messages.empty());
  EXPECT_EQ(mux.total_forwarded(), 2u);
}

TEST(Mux, FinReleasesAffinityAndCount) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("rr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});

  f.net.send(f.vip, f.request(1000, 1, 1));
  f.sim.run_all();
  const std::size_t target = f.dip1.messages.empty() ? 1 : 0;
  EXPECT_EQ(mux.active_connections(target), 1u);

  net::Message fin;
  fin.type = net::MsgType::kFin;
  fin.tuple = tuple_with_port(1000);
  fin.conn_id = 1;
  f.net.send(f.vip, fin);
  f.sim.run_all();
  EXPECT_EQ(mux.active_connections(target), 0u);
  // The FIN is forwarded to the DIP.
  EXPECT_EQ(f.dip1.messages.size() + f.dip2.messages.size(), 2u);
}

TEST(Mux, WeightsSteerNewConnections) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.set_weight_units({9 * util::kWeightScale / 10, util::kWeightScale / 10});

  for (std::uint16_t p = 0; p < 100; ++p)
    f.net.send(f.vip, f.request(static_cast<std::uint16_t>(2000 + p),
                                static_cast<std::uint64_t>(p + 1), 1));
  f.sim.run_all();
  EXPECT_EQ(f.dip1.messages.size(), 90u);
  EXPECT_EQ(f.dip2.messages.size(), 10u);
}

TEST(Mux, DisabledBackendGetsNothingNew) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("rr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.set_backend_enabled(0, false);
  for (std::uint16_t p = 0; p < 10; ++p)
    f.net.send(f.vip, f.request(static_cast<std::uint16_t>(3000 + p),
                                static_cast<std::uint64_t>(p + 1), 1));
  f.sim.run_all();
  EXPECT_TRUE(f.dip1.messages.empty());
  EXPECT_EQ(f.dip2.messages.size(), 10u);
}

std::int64_t sum_units(const std::vector<std::int64_t>& units) {
  return std::accumulate(units.begin(), units.end(), std::int64_t{0});
}

// Regression (ISSUE 2): adding a DIP used to reset *every* backend to an
// equal integer split, wiping controller-programmed weights and leaking the
// kWeightScale % n remainder. Now the pool rescales: newcomer at a fair
// share, existing ratios preserved, units summing exactly to kWeightScale.
TEST(Mux, AddBackendPreservesProgrammedWeights) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.add_backend(net::IpAddr{10, 1, 0, 3});
  ASSERT_TRUE(mux.set_weight_units({5000, 3000, 2000}));

  mux.add_backend(net::IpAddr{10, 1, 0, 4});
  const auto units = mux.weight_units();
  // Ratios 5:3:2 preserved, newcomer at the pool mean (1/4 of the total).
  EXPECT_EQ(units, (std::vector<std::int64_t>{3750, 2250, 1500, 2500}));
  EXPECT_EQ(sum_units(units), util::kWeightScale);
}

TEST(Mux, AddBackendSpreadsEqualSplitRemainder) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("rr"));
  // 3 does not divide kWeightScale: the old equal-split floor programmed
  // 3 * 3333 = 9999 units. The rescale must not leak the remainder.
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.add_backend(net::IpAddr{10, 1, 0, 3});
  EXPECT_EQ(sum_units(mux.weight_units()), util::kWeightScale);
}

// Regression (ISSUE 2): a weight vector sized for a different pool used to
// be silently prefix-applied; a controller racing a membership change could
// half-program the pool. It is now rejected loudly.
TEST(Mux, SetWeightUnitsRejectsSizeMismatch) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  const auto before = mux.weight_units();

  EXPECT_FALSE(mux.set_weight_units({9000}));          // too short
  EXPECT_FALSE(mux.set_weight_units({1, 2, 3}));       // too long
  EXPECT_EQ(mux.weight_units(), before);
  EXPECT_EQ(mux.rejected_programmings(), 2u);
}

TEST(Mux, RemoveDrainedBackendLeavesSurvivorsUntouched) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.add_backend(net::IpAddr{10, 1, 0, 3});
  // Controller-style scale-in: drain the leaver to 0 first, then remove.
  ASSERT_TRUE(mux.set_weight_units({4000, 0, 6000}));
  ASSERT_TRUE(mux.remove_backend(1));
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{4000, 6000}));
}

TEST(Mux, RemoveBackendKeepsParkedPoolParked) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.add_backend(net::IpAddr{10, 1, 0, 3});
  // The controller parked the pool except one backend; removing that
  // backend must not resurrect the others via an equal-split fallback.
  ASSERT_TRUE(mux.set_weight_units({0, 0, util::kWeightScale}));
  ASSERT_TRUE(mux.remove_backend(2));
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{0, 0}));
}

TEST(Mux, RemoveLoadedBackendRescalesToFullScale) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.add_backend(net::IpAddr{10, 1, 0, 3});
  ASSERT_TRUE(mux.set_weight_units({6000, 2000, 2000}));
  ASSERT_TRUE(mux.remove_backend(0));
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{5000, 5000}));
  EXPECT_FALSE(mux.remove_backend(7));  // out of range
}

// Membership changes apply immediately; a delayed weight programming sized
// for the old pool must bounce off instead of half-applying.
TEST(LbController, InFlightProgrammingRejectedAfterChurn) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  LbController ctrl(f.sim, mux, 200_ms);

  ctrl.program_weights({7000, 3000});  // in flight...
  ctrl.add_backend(net::IpAddr{10, 1, 0, 3});  // ...pool grows immediately
  f.sim.run_all();
  EXPECT_EQ(mux.backend_count(), 3u);
  EXPECT_EQ(mux.rejected_programmings(), 1u);
  EXPECT_EQ(sum_units(mux.weight_units()), util::kWeightScale);
}

// A delayed enable/drain must land on the backend it was aimed at, even if
// membership churn renumbered the pool while it was in flight.
TEST(LbController, DelayedDrainFollowsBackendAcrossChurn) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("rr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.add_backend(net::IpAddr{10, 1, 0, 3});
  LbController ctrl(f.sim, mux, 200_ms);

  ctrl.set_backend_enabled(2, false);  // aim at 10.1.0.3...
  ctrl.remove_backend(0);              // ...pool renumbers before it lands
  f.sim.run_all();
  EXPECT_TRUE(mux.backend_enabled(0));   // 10.1.0.2 untouched
  EXPECT_FALSE(mux.backend_enabled(1));  // 10.1.0.3 drained

  // A drain aimed at a backend that was removed in flight is a no-op.
  ctrl.set_backend_enabled(1, true);
  ctrl.remove_backend(1);
  f.sim.run_all();
  EXPECT_EQ(mux.backend_count(), 1u);
  EXPECT_TRUE(mux.backend_enabled(0));
}

// Regression (ISSUE 2): DrainEstimator::finish restored kWeightScale / n
// per backend, under-programming the pool when n does not divide the
// scale. The estimator aborts here (no samples ever arrive), which drives
// exactly the finish() path.
TEST(DrainEstimator, RestoredEqualSplitSumsToScale) {
  sim::Simulation sim(31);
  auto engine = std::make_shared<store::KvEngine>([&sim] { return sim.now(); });
  store::LatencyStore store(engine);
  RecordingWeights lb(3);

  core::DrainEstimatorConfig cfg;
  cfg.max_load_time = 5_s;
  core::DrainEstimator est(sim, net::IpAddr{10, 0, 0, 1}, store, lb, cfg);

  bool done_called = false;
  est.run(net::IpAddr{10, 1, 0, 1}, 0, 1.0,
          [&](std::optional<util::SimTime> r) {
            done_called = true;
            EXPECT_FALSE(r.has_value());
          });
  sim.run_all();

  ASSERT_TRUE(done_called);
  ASSERT_EQ(lb.last_units.size(), 3u);
  EXPECT_EQ(sum_units(lb.last_units), util::kWeightScale);
  for (const auto u : lb.last_units) EXPECT_NEAR(u, util::kWeightScale / 3, 1);
}

TEST(LbController, ProgramsAfterDelay) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  LbController ctrl(f.sim, mux, 200_ms);

  ctrl.program_weights({7000, 3000});
  f.sim.run_until(100_ms);
  EXPECT_EQ(mux.weight_units()[0], util::kWeightScale / 2);  // still equal
  f.sim.run_until(300_ms);
  EXPECT_EQ(mux.weight_units()[0], 7000);
}

TEST(LbController, LaterProgrammingWins) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  LbController ctrl(f.sim, mux, 200_ms);

  ctrl.program_weights({7000, 3000});
  f.sim.run_until(100_ms);
  ctrl.program_weights({1000, 9000});
  f.sim.run_all();
  EXPECT_EQ(mux.weight_units()[0], 1000);
}

TEST(DnsTrafficManager, ResolvesByWeight) {
  sim::Simulation sim(21);
  std::vector<net::IpAddr> dips{net::IpAddr{10, 1, 0, 1},
                                net::IpAddr{10, 1, 0, 2},
                                net::IpAddr{10, 1, 0, 3}};
  DnsTrafficManager dns(sim, dips);
  dns.program_weights({2000, 3000, 5000});
  std::map<std::uint32_t, int> counts;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) counts[dns.resolve_authoritative().value()]++;
  EXPECT_NEAR(counts[dips[0].value()], n * 0.2, n * 0.02);
  EXPECT_NEAR(counts[dips[1].value()], n * 0.3, n * 0.02);
  EXPECT_NEAR(counts[dips[2].value()], n * 0.5, n * 0.02);
}

TEST(DnsTrafficManager, CacheDelaysWeightAdherence) {
  sim::Simulation sim(22);
  std::vector<net::IpAddr> dips{net::IpAddr{10, 1, 0, 1},
                                net::IpAddr{10, 1, 0, 2}};
  DnsTrafficManager dns(sim, dips, 30_s);
  dns.program_weights({util::kWeightScale, 0});
  EXPECT_EQ(dns.resolve_cached(7), dips[0]);
  // Flip the weights: the cached stub keeps answering the old DIP...
  dns.program_weights({0, util::kWeightScale});
  EXPECT_EQ(dns.resolve_cached(7), dips[0]);
  EXPECT_GT(dns.cache_hits(), 0u);
  // ...until the TTL expires.
  sim.schedule_in(31_s, [] {});
  sim.run_all();
  EXPECT_EQ(dns.resolve_cached(7), dips[1]);
}

TEST(DnsTrafficManager, DisabledBackendNotResolved) {
  sim::Simulation sim(23);
  std::vector<net::IpAddr> dips{net::IpAddr{10, 1, 0, 1},
                                net::IpAddr{10, 1, 0, 2}};
  DnsTrafficManager dns(sim, dips);
  dns.set_backend_enabled(0, false);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(dns.resolve_authoritative(), dips[1]);
}

}  // namespace
}  // namespace klb::lb
