// LB dataplane tests: policy selection semantics (including weighted
// distribution properties), MUX affinity/FIN accounting, transactional
// pool programming (PoolProgram versions, delay, supersession), and DNS
// traffic-manager behaviour.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/drain.hpp"
#include "lb/dns_lb.hpp"
#include "lb/lb_controller.hpp"
#include "lb/mux.hpp"
#include "lb/policy.hpp"
#include "lb/pool_program.hpp"
#include "store/latency_store.hpp"
#include "util/weight.hpp"

namespace klb::lb {
namespace {

using namespace util::literals;

std::vector<BackendView> make_backends(std::vector<std::int64_t> weights) {
  std::vector<BackendView> out;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    BackendView v;
    v.addr = net::IpAddr{10, 1, 0, static_cast<std::uint8_t>(i + 1)};
    v.weight_units = weights[i];
    out.push_back(v);
  }
  return out;
}

net::FiveTuple tuple_with_port(std::uint16_t port) {
  net::FiveTuple t;
  t.src_ip = net::IpAddr{10, 2, 0, 1};
  t.dst_ip = net::IpAddr{10, 0, 0, 1};
  t.src_port = port;
  t.dst_port = 80;
  return t;
}

TEST(Policy, FactoryKnowsAllNames) {
  for (const std::string name :
       {"rr", "wrr", "lc", "wlc", "random", "wrandom", "p2", "hash"}) {
    EXPECT_EQ(make_policy(name)->name(), name);
  }
  EXPECT_THROW(make_policy("nope"), std::invalid_argument);
}

TEST(Policy, RoundRobinCycles) {
  RoundRobin rr;
  util::Rng rng(1);
  auto backends = make_backends({1, 1, 1});
  std::vector<std::size_t> picks;
  for (int i = 0; i < 6; ++i)
    picks.push_back(rr.pick(tuple_with_port(0), backends, rng));
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(Policy, RoundRobinSkipsDisabled) {
  RoundRobin rr;
  util::Rng rng(1);
  auto backends = make_backends({1, 1, 1});
  backends[1].enabled = false;
  for (int i = 0; i < 4; ++i)
    EXPECT_NE(rr.pick(tuple_with_port(0), backends, rng), 1u);
}

TEST(Policy, SmoothWrrMatchesWeightsExactly) {
  SmoothWeightedRoundRobin wrr;
  util::Rng rng(1);
  auto backends = make_backends({5000, 3000, 2000});  // 0.5 / 0.3 / 0.2
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 1000; ++i)
    counts[wrr.pick(tuple_with_port(0), backends, rng)]++;
  EXPECT_EQ(counts[0], 500);
  EXPECT_EQ(counts[1], 300);
  EXPECT_EQ(counts[2], 200);
}

TEST(Policy, SmoothWrrInterleaves) {
  // Smooth WRR spreads the heavy backend: naive WRR emits 5 a's in a row
  // for (5,1,1); smooth caps the run at 4 (across the cycle boundary).
  SmoothWeightedRoundRobin wrr;
  util::Rng rng(1);
  auto backends = make_backends({5, 1, 1});
  int longest_run = 0;
  int run = 0;
  std::size_t prev = kNoBackend;
  for (int i = 0; i < 70; ++i) {
    const auto p = wrr.pick(tuple_with_port(0), backends, rng);
    run = (p == prev) ? run + 1 : 1;
    longest_run = std::max(longest_run, run);
    prev = p;
  }
  EXPECT_LE(longest_run, 4);
}

TEST(Policy, SmoothWrrZeroWeightExcluded) {
  SmoothWeightedRoundRobin wrr;
  util::Rng rng(1);
  auto backends = make_backends({1000, 0, 1000});
  for (int i = 0; i < 50; ++i)
    EXPECT_NE(wrr.pick(tuple_with_port(0), backends, rng), 1u);
}

TEST(Policy, LeastConnectionPicksEmptiest) {
  LeastConnection lc;
  util::Rng rng(1);
  auto backends = make_backends({1, 1, 1});
  backends[0].active_conns = 5;
  backends[1].active_conns = 2;
  backends[2].active_conns = 9;
  EXPECT_EQ(lc.pick(tuple_with_port(0), backends, rng), 1u);
}

TEST(Policy, WeightedLeastConnectionNormalizesByWeight) {
  WeightedLeastConnection wlc;
  util::Rng rng(1);
  auto backends = make_backends({8000, 2000});
  backends[0].active_conns = 8;  // (8+1)/8000 > (1+1)/2000? 1.125e-3 vs 1e-3
  backends[1].active_conns = 1;
  EXPECT_EQ(wlc.pick(tuple_with_port(0), backends, rng), 1u);
  backends[1].active_conns = 2;  // now (8+1)/8000 < (2+1)/2000
  EXPECT_EQ(wlc.pick(tuple_with_port(0), backends, rng), 0u);
}

TEST(Policy, WeightedRandomProportions) {
  WeightedRandom wr;
  util::Rng rng(99);
  auto backends = make_backends({7000, 2000, 1000});
  std::map<std::size_t, int> counts;
  const int n = 50'000;
  for (int i = 0; i < n; ++i)
    counts[wr.pick(tuple_with_port(0), backends, rng)]++;
  EXPECT_NEAR(counts[0], n * 0.7, n * 0.02);
  EXPECT_NEAR(counts[1], n * 0.2, n * 0.02);
  EXPECT_NEAR(counts[2], n * 0.1, n * 0.02);
}

TEST(Policy, HashIsAffineToTuple) {
  HashTuple hash;
  util::Rng rng(1);
  auto backends = make_backends({1, 1, 1});
  const auto t = tuple_with_port(12'345);
  const auto first = hash.pick(t, backends, rng);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(hash.pick(t, backends, rng), first);
  // Different ports spread.
  std::map<std::size_t, int> counts;
  for (std::uint16_t p = 0; p < 3000; ++p)
    counts[hash.pick(tuple_with_port(p), backends, rng)]++;
  for (const auto& [_, c] : counts) EXPECT_GT(c, 800);
}

TEST(Policy, EmptyPoolReturnsNoBackend) {
  RoundRobin rr;
  util::Rng rng(1);
  std::vector<BackendView> none;
  EXPECT_EQ(rr.pick(tuple_with_port(0), none, rng), kNoBackend);
  auto backends = make_backends({1});
  backends[0].enabled = false;
  EXPECT_EQ(rr.pick(tuple_with_port(0), backends, rng), kNoBackend);
}

// --- MUX ---------------------------------------------------------------------

/// Minimal PoolProgrammer that records the last transaction (drain tests).
struct RecordingDataplane : public PoolProgrammer {
  explicit RecordingDataplane(std::vector<net::IpAddr> addrs)
      : addrs_(std::move(addrs)) {}
  std::size_t backend_count() const override { return addrs_.size(); }
  std::vector<net::IpAddr> backend_addrs() const override { return addrs_; }
  void apply_program(const PoolProgram& p) override {
    last_units.clear();
    for (const auto& e : p.entries)
      if (e.state == BackendState::kActive)
        last_units.push_back(e.weight_units);
  }
  std::vector<std::int64_t> last_units;
  std::vector<net::IpAddr> addrs_;
};

class Sink : public net::Node {
 public:
  void on_message(const net::Message& msg) override { messages.push_back(msg); }
  std::vector<net::Message> messages;
};

struct MuxFixture {
  sim::Simulation sim{11};
  net::Network net{sim};
  net::IpAddr vip{10, 0, 0, 1};
  Sink dip1, dip2;

  MuxFixture() {
    net.attach(net::IpAddr{10, 1, 0, 1}, &dip1);
    net.attach(net::IpAddr{10, 1, 0, 2}, &dip2);
  }

  net::Message request(std::uint16_t port, std::uint64_t conn, std::uint64_t req) {
    net::Message m;
    m.type = net::MsgType::kHttpRequest;
    m.tuple = tuple_with_port(port);
    m.conn_id = conn;
    m.req_id = req;
    return m;
  }
};

TEST(Mux, ForwardsAndPinsConnections) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("rr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});

  // Two requests on the same tuple must go to the same DIP even though RR
  // would alternate.
  f.net.send(f.vip, f.request(1000, 1, 1));
  f.net.send(f.vip, f.request(1000, 1, 2));
  f.sim.run_all();
  EXPECT_EQ(f.dip1.messages.size() + f.dip2.messages.size(), 2u);
  EXPECT_TRUE(f.dip1.messages.empty() || f.dip2.messages.empty());
  EXPECT_EQ(mux.total_forwarded(), 2u);
}

TEST(Mux, FinReleasesAffinityAndCount) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("rr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});

  f.net.send(f.vip, f.request(1000, 1, 1));
  f.sim.run_all();
  const std::size_t target = f.dip1.messages.empty() ? 1 : 0;
  EXPECT_EQ(mux.active_connections(target), 1u);

  net::Message fin;
  fin.type = net::MsgType::kFin;
  fin.tuple = tuple_with_port(1000);
  fin.conn_id = 1;
  f.net.send(f.vip, fin);
  f.sim.run_all();
  EXPECT_EQ(mux.active_connections(target), 0u);
  // The FIN is forwarded to the DIP.
  EXPECT_EQ(f.dip1.messages.size() + f.dip2.messages.size(), 2u);
}

TEST(Mux, WeightsSteerNewConnections) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.set_weight_units({9 * util::kWeightScale / 10, util::kWeightScale / 10});

  for (std::uint16_t p = 0; p < 100; ++p)
    f.net.send(f.vip, f.request(static_cast<std::uint16_t>(2000 + p),
                                static_cast<std::uint64_t>(p + 1), 1));
  f.sim.run_all();
  EXPECT_EQ(f.dip1.messages.size(), 90u);
  EXPECT_EQ(f.dip2.messages.size(), 10u);
}

TEST(Mux, DisabledBackendGetsNothingNew) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("rr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.set_backend_enabled(0, false);
  for (std::uint16_t p = 0; p < 10; ++p)
    f.net.send(f.vip, f.request(static_cast<std::uint16_t>(3000 + p),
                                static_cast<std::uint64_t>(p + 1), 1));
  f.sim.run_all();
  EXPECT_TRUE(f.dip1.messages.empty());
  EXPECT_EQ(f.dip2.messages.size(), 10u);
}

std::int64_t sum_units(const std::vector<std::int64_t>& units) {
  return std::accumulate(units.begin(), units.end(), std::int64_t{0});
}

// Regression (ISSUE 2): adding a DIP used to reset *every* backend to an
// equal integer split, wiping controller-programmed weights and leaking the
// kWeightScale % n remainder. Now the pool rescales: newcomer at a fair
// share, existing ratios preserved, units summing exactly to kWeightScale.
TEST(Mux, AddBackendPreservesProgrammedWeights) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.add_backend(net::IpAddr{10, 1, 0, 3});
  ASSERT_TRUE(mux.set_weight_units({5000, 3000, 2000}));

  mux.add_backend(net::IpAddr{10, 1, 0, 4});
  const auto units = mux.weight_units();
  // Ratios 5:3:2 preserved, newcomer at the pool mean (1/4 of the total).
  EXPECT_EQ(units, (std::vector<std::int64_t>{3750, 2250, 1500, 2500}));
  EXPECT_EQ(sum_units(units), util::kWeightScale);
}

TEST(Mux, AddBackendSpreadsEqualSplitRemainder) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("rr"));
  // 3 does not divide kWeightScale: the old equal-split floor programmed
  // 3 * 3333 = 9999 units. The rescale must not leak the remainder.
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.add_backend(net::IpAddr{10, 1, 0, 3});
  EXPECT_EQ(sum_units(mux.weight_units()), util::kWeightScale);
}

// Regression (ISSUE 2): a weight vector sized for a different pool used to
// be silently prefix-applied; a controller racing a membership change could
// half-program the pool. It is now rejected loudly.
TEST(Mux, SetWeightUnitsRejectsSizeMismatch) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  const auto before = mux.weight_units();

  EXPECT_FALSE(mux.set_weight_units({9000}));          // too short
  EXPECT_FALSE(mux.set_weight_units({1, 2, 3}));       // too long
  EXPECT_EQ(mux.weight_units(), before);
  EXPECT_EQ(mux.rejected_programmings(), 2u);
}

TEST(Mux, RemoveDrainedBackendLeavesSurvivorsUntouched) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.add_backend(net::IpAddr{10, 1, 0, 3});
  // Controller-style scale-in: drain the leaver to 0 first, then remove.
  ASSERT_TRUE(mux.set_weight_units({4000, 0, 6000}));
  ASSERT_TRUE(mux.remove_backend(1));
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{4000, 6000}));
}

TEST(Mux, RemoveBackendKeepsParkedPoolParked) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.add_backend(net::IpAddr{10, 1, 0, 3});
  // The controller parked the pool except one backend; removing that
  // backend must not resurrect the others via an equal-split fallback.
  ASSERT_TRUE(mux.set_weight_units({0, 0, util::kWeightScale}));
  ASSERT_TRUE(mux.remove_backend(2));
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{0, 0}));
}

TEST(Mux, RemoveLoadedBackendRescalesToFullScale) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  mux.add_backend(net::IpAddr{10, 1, 0, 2});
  mux.add_backend(net::IpAddr{10, 1, 0, 3});
  ASSERT_TRUE(mux.set_weight_units({6000, 2000, 2000}));
  ASSERT_TRUE(mux.remove_backend(0));
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{5000, 5000}));
  EXPECT_FALSE(mux.remove_backend(7));  // out of range
}

// --- transactional programming (PoolProgram) --------------------------------

// A stale transaction that commits after a newer one is discarded whole —
// the versioned replacement for the old size-mismatch rejection.
// A failure observed by the dataplane outranks transactions issued before
// the observation: an in-flight pre-failure program (version above the
// last applied one, but issued before fail_backend ran) must not
// resurrect the dead backend at its old weight — that would blackhole the
// corpse's maglev/WRR share until the next post-failure commit. A program
// issued after the failure re-admits it deliberately.
TEST(PoolProgram, PreFailureProgramCannotResurrectFailedBackend) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  const net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2};

  PoolProgram v1(mux.issue_version());
  v1.add(a, 5000).add(b, 5000);
  mux.apply_program(v1);

  // v2 is issued (and would normally ride the programming delay)...
  PoolProgram v2(mux.issue_version());
  v2.add(a, 4000).add(b, 6000);
  // ...then the dataplane observes a's death before v2 commits.
  ASSERT_TRUE(mux.fail_backend(0));
  ASSERT_EQ(mux.backend_count(), 1u);

  mux.apply_program(v2);  // late commit of the pre-failure view
  EXPECT_EQ(mux.stale_failed_admissions(), 1u);
  EXPECT_EQ(mux.backend_count(), 1u);  // the corpse stays out...
  EXPECT_EQ(mux.backend_addr(0), b);
  EXPECT_EQ(mux.weight_units(),
            (std::vector<std::int64_t>{6000}));  // ...the rest applies

  // A program issued after the failure may resurrect the address.
  PoolProgram v3(mux.issue_version());
  v3.add(b, 8000).add(a, 2000);
  mux.apply_program(v3);
  EXPECT_EQ(mux.backend_count(), 2u);
  EXPECT_EQ(mux.stale_failed_admissions(), 1u);
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{8000, 2000}));
}

TEST(PoolProgram, StaleVersionDiscardedAfterCommit) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  const net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2};

  PoolProgram v2(2);
  v2.add(a, 1000).add(b, 9000);
  mux.apply_program(v2);
  ASSERT_EQ(mux.applied_version(), 2u);

  PoolProgram v1(1);  // issued earlier, delivered late
  v1.add(a, 7000).add(b, 3000);
  mux.apply_program(v1);

  EXPECT_EQ(mux.superseded_programs(), 1u);
  EXPECT_EQ(mux.applied_version(), 2u);
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{1000, 9000}));
}

// Supersession holds across a membership change: a stale program listing a
// since-removed backend must not resurrect it (or half-apply anything).
TEST(PoolProgram, StaleVersionDiscardedAcrossMembershipChange) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  const net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2}, c{10, 1, 0, 3};

  PoolProgram v1(1);
  v1.add(a, 4000).add(b, 3000).add(c, 3000);
  mux.apply_program(v1);
  ASSERT_EQ(mux.backend_count(), 3u);

  PoolProgram v3(3);  // newest desired pool: c is gone
  v3.add(a, 6000).add(b, 4000);
  mux.apply_program(v3);
  ASSERT_EQ(mux.backend_count(), 2u);

  PoolProgram v2(2);  // stale: still lists c
  v2.add(a, 2000).add(b, 2000).add(c, 6000);
  mux.apply_program(v2);

  EXPECT_EQ(mux.superseded_programs(), 1u);
  EXPECT_EQ(mux.backend_count(), 2u);  // c not resurrected
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{6000, 4000}));
  EXPECT_EQ(mux.rejected_programmings(), 0u);  // nothing partial to reject
}

// A backend the program omits is removed; one listed anew is admitted —
// membership and weights are one atomic commit.
TEST(PoolProgram, OmittedBackendRemovedNewcomerAdmitted) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  const net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2}, c{10, 1, 0, 3};

  PoolProgram v1(1);
  v1.add(a, 5000).add(b, 5000);
  mux.apply_program(v1);
  const auto id_b = mux.backend_id(1);

  PoolProgram v2(2);  // a leaves (omitted), c joins
  v2.add(b, 2500).add(c, 7500);
  mux.apply_program(v2);

  ASSERT_EQ(mux.backend_count(), 2u);
  EXPECT_EQ(mux.backend_addr(0), b);
  EXPECT_EQ(mux.backend_addr(1), c);
  EXPECT_EQ(mux.backend_id(0), id_b);  // stable id survives the transaction
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{2500, 7500}));
  EXPECT_EQ(mux.dangling_affinity_count(), 0u);
}

// The old race — weights sized for the old pool landing after a membership
// change — is structurally unreachable now: membership rides the same
// transaction as the weights, and the newer version wins whole.
TEST(LbController, ChurnAndWeightsCannotRace) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  const net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2}, c{10, 1, 0, 3};
  mux.add_backend(a);
  mux.add_backend(b);
  LbController ctrl(f.sim, mux, 200_ms);

  PoolProgram weights(ctrl.issue_version());  // weights for the 2-DIP pool...
  weights.add(a, 7000).add(b, 3000);
  ctrl.apply_program(weights);

  PoolProgram grown(ctrl.issue_version());  // ...then a scale-out commit
  grown.add(a, 5000).add(b, 3000).add(c, 2000);
  ctrl.apply_program(grown);

  f.sim.run_all();
  EXPECT_EQ(mux.backend_count(), 3u);
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{5000, 3000, 2000}));
  EXPECT_EQ(mux.rejected_programmings(), 0u);
  EXPECT_EQ(mux.superseded_programs(), 0u);  // in-order: nothing discarded
  EXPECT_EQ(sum_units(mux.weight_units()), util::kWeightScale);
}

// Draining through a transaction: the backend is parked immediately, keeps
// serving its pinned flow, and auto-completes to removed on the last FIN.
TEST(Mux, DrainingBackendCompletesOnLastFin) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  const net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2};
  PoolProgram v1(1);
  v1.add(a, 5000).add(b, 5000);
  mux.apply_program(v1);

  // Pin one flow per backend.
  for (std::uint16_t p = 0; p < 8; ++p)
    f.net.send(f.vip, f.request(static_cast<std::uint16_t>(1000 + p), p, 1));
  f.sim.run_all();
  ASSERT_GT(mux.active_connections(0), 0u);
  const auto pinned_on_a = mux.active_connections(0);

  PoolProgram v2(2);
  v2.add(a, 0, BackendState::kDraining).add(b, util::kWeightScale);
  mux.apply_program(v2);
  ASSERT_EQ(mux.backend_count(), 2u);  // still serving pinned flows
  EXPECT_TRUE(mux.backend_draining(0));
  EXPECT_EQ(mux.weight_units()[0], 0);

  // New connections all land on b while a's flows stay pinned to a.
  for (std::uint16_t p = 0; p < 20; ++p)
    f.net.send(f.vip, f.request(static_cast<std::uint16_t>(3000 + p),
                                static_cast<std::uint64_t>(100 + p), 1));
  f.sim.run_all();
  EXPECT_EQ(mux.active_connections(0), pinned_on_a);

  // FIN the pinned flows: the drain completes without a single reset.
  for (std::uint16_t p = 0; p < 8; ++p) {
    net::Message fin;
    fin.type = net::MsgType::kFin;
    fin.tuple = tuple_with_port(static_cast<std::uint16_t>(1000 + p));
    f.net.send(f.vip, fin);
  }
  f.sim.run_all();
  EXPECT_EQ(mux.backend_count(), 1u);
  EXPECT_EQ(mux.backend_addr(0), b);
  EXPECT_EQ(mux.drains_completed(), 1u);
  EXPECT_EQ(mux.flows_reset_by_failure(), 0u);
  EXPECT_EQ(mux.dangling_affinity_count(), 0u);
}

// A drain with no pinned flows completes within the same transaction, and
// re-listing a draining backend as Active cancels the drain.
TEST(Mux, DrainLifecycleEdges) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  const net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2};
  PoolProgram v1(1);
  v1.add(a, 5000).add(b, 5000);
  mux.apply_program(v1);

  PoolProgram v2(2);  // no flows pinned: drain is instant
  v2.add(a, 0, BackendState::kDraining).add(b, util::kWeightScale);
  mux.apply_program(v2);
  EXPECT_EQ(mux.backend_count(), 1u);
  EXPECT_EQ(mux.drains_completed(), 1u);

  // Pin a flow on b, condemn it, then change course: re-activate.
  f.net.send(f.vip, f.request(1000, 1, 1));
  f.sim.run_all();
  PoolProgram v3(3);
  v3.add(b, 0, BackendState::kDraining);
  mux.apply_program(v3);
  ASSERT_EQ(mux.backend_count(), 1u);
  EXPECT_TRUE(mux.backend_draining(0));

  PoolProgram v4(4);
  v4.add(b, util::kWeightScale);
  mux.apply_program(v4);
  EXPECT_FALSE(mux.backend_draining(0));
  EXPECT_TRUE(mux.backend_enabled(0));
  EXPECT_EQ(mux.weight_units()[0], util::kWeightScale);
}

// Regression (ISSUE 5): set_backend_enabled(i, true) used to silently
// re-enable a draining backend, leaving `draining && enabled` — the
// drainer kept accepting new connections, so its affinity never emptied
// and the promised auto-removal never completed. It is now refused.
TEST(Mux, EnablingDrainingBackendIsRefused) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  const net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2};
  PoolProgram v1(1);
  v1.add(a, 5000).add(b, 5000);
  mux.apply_program(v1);

  // Pin flows, then drain a.
  for (std::uint16_t p = 0; p < 16; ++p)
    f.net.send(f.vip, f.request(static_cast<std::uint16_t>(1000 + p), p, 1));
  f.sim.run_all();
  ASSERT_GT(mux.active_connections(0), 0u);
  PoolProgram v2(2);
  v2.add(a, 0, BackendState::kDraining).add(b, util::kWeightScale);
  mux.apply_program(v2);
  ASSERT_TRUE(mux.backend_draining(0));

  EXPECT_FALSE(mux.set_backend_enabled(0, true));
  EXPECT_TRUE(mux.backend_draining(0));   // still condemned
  EXPECT_FALSE(mux.backend_enabled(0));   // still parked

  // New connections still avoid the drainer...
  const auto conns_a = mux.new_connections(0);
  for (std::uint16_t p = 0; p < 10; ++p)
    f.net.send(f.vip, f.request(static_cast<std::uint16_t>(3000 + p),
                                static_cast<std::uint64_t>(100 + p), 1));
  f.sim.run_all();
  EXPECT_EQ(mux.new_connections(0), conns_a);

  // ...and the drain still auto-completes on the last FIN.
  for (std::uint16_t p = 0; p < 16; ++p) {
    net::Message fin;
    fin.type = net::MsgType::kFin;
    fin.tuple = tuple_with_port(static_cast<std::uint16_t>(1000 + p));
    f.net.send(f.vip, fin);
  }
  f.sim.run_all();
  EXPECT_EQ(mux.backend_count(), 1u);
  EXPECT_EQ(mux.drains_completed(), 1u);
  EXPECT_EQ(mux.flows_reset_by_failure(), 0u);

  // The maintenance knob still works on healthy backends, loudly bounded.
  EXPECT_TRUE(mux.set_backend_enabled(0, false));
  EXPECT_TRUE(mux.set_backend_enabled(0, true));
  EXPECT_FALSE(mux.set_backend_enabled(7, true));  // out of range
}

// Regression (ISSUE 5): smooth-WRR credits are index-keyed, and only a
// pool-*size* change used to reset them — a same-size membership swap (one
// removed + one admitted in a single transaction) handed the departed
// backend's accumulated smoothing credit to the newcomer at its index.
TEST(Policy, SmoothWrrSameSizeSwapResetsCredits) {
  SmoothWeightedRoundRobin seasoned;
  util::Rng rng(1);
  auto backends = make_backends({7500, 2500});
  for (int i = 0; i < 3; ++i)
    seasoned.pick(tuple_with_port(0), backends, rng);  // mid-cycle credit

  // Same-size swap: index 1's backend is replaced by a newcomer.
  backends[1].addr = net::IpAddr{10, 1, 0, 99};
  seasoned.invalidate();

  // The seasoned policy must now pick exactly like a fresh one: the
  // newcomer starts at zero credit instead of inheriting the leaver's.
  SmoothWeightedRoundRobin fresh;
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(seasoned.pick(tuple_with_port(0), backends, rng),
              fresh.pick(tuple_with_port(0), backends, rng))
        << "diverged at pick " << i;
}

// The same corruption through the transactional path: a one-commit swap
// (B out, C in, same pool size) must leave the dataplane's WRR in the
// same state as a pool that never knew B.
TEST(Mux, TransactionalSameSizeSwapResetsWrrState) {
  MuxFixture f;
  Mux seasoned(f.net, f.vip, make_policy("wrr"), /*attach_to_vip=*/false);
  Mux fresh(f.net, f.vip, make_policy("wrr"), /*attach_to_vip=*/false);
  const net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2}, c{10, 1, 0, 3};

  PoolProgram v1(1);
  v1.add(a, 7500).add(b, 2500);
  seasoned.apply_program(v1);
  for (std::uint16_t p = 0; p < 3; ++p) {  // accumulate smoothing credit
    net::Message m;
    m.type = net::MsgType::kHttpRequest;
    m.tuple = tuple_with_port(static_cast<std::uint16_t>(500 + p));
    seasoned.on_message(m);
  }

  PoolProgram v2(2);  // same-size swap: b leaves, c joins at b's share
  v2.add(a, 7500).add(c, 2500);
  seasoned.apply_program(v2);
  PoolProgram w1(1);
  w1.add(a, 7500).add(c, 2500);
  fresh.apply_program(w1);

  const auto base_a = seasoned.new_connections(0);  // pre-swap history
  const auto base_c = seasoned.new_connections(1);
  for (std::uint16_t p = 0; p < 20; ++p) {
    net::Message m;
    m.type = net::MsgType::kHttpRequest;
    m.tuple = tuple_with_port(static_cast<std::uint16_t>(2000 + p));
    seasoned.on_message(m);
    fresh.on_message(m);
    // Identical pick sequences <=> identical per-backend tallies at every
    // step (the newcomer inherited nothing).
    ASSERT_EQ(seasoned.new_connections(0) - base_a, fresh.new_connections(0))
        << "diverged at connection " << p;
    ASSERT_EQ(seasoned.new_connections(1) - base_c, fresh.new_connections(1))
        << "diverged at connection " << p;
  }
}

// A weights-only transaction (the drain estimator's kind) reweights the
// backends it lists and leaves membership alone: a scale-out that raced
// through the programming delay is not silently reverted by a stale view.
TEST(PoolProgram, WeightsOnlyDoesNotTouchMembership) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  const net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2}, c{10, 1, 0, 3};
  PoolProgram v1(1);
  v1.add(a, 4000).add(b, 3000).add(c, 3000);
  mux.apply_program(v1);

  PoolProgram v2(2);  // estimator's stale 2-DIP view, weights only
  v2.weights_only = true;
  v2.add(a, 8000).add(b, 2000);
  mux.apply_program(v2);

  ASSERT_EQ(mux.backend_count(), 3u);  // c untouched
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{8000, 2000, 3000}));

  PoolProgram v3(3);  // nor does it admit unknown DIPs
  v3.weights_only = true;
  v3.add(net::IpAddr{10, 1, 0, 9}, 5000);
  mux.apply_program(v3);
  EXPECT_EQ(mux.backend_count(), 3u);
}

// Duplicate-address backends (degenerate, but constructible through the
// imperative API) must reconcile without UB: the first match consumes the
// entry, the second is treated as not desired.
TEST(PoolProgram, DuplicateAddressBackendsReconcileSafely) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  const net::IpAddr a{10, 1, 0, 1};
  mux.add_backend(a);
  mux.add_backend(a);  // duplicate registration
  ASSERT_EQ(mux.backend_count(), 2u);

  PoolProgram v1(1);
  v1.add(a, util::kWeightScale);
  mux.apply_program(v1);
  EXPECT_EQ(mux.backend_count(), 1u);  // deduplicated, not crashed
  EXPECT_EQ(mux.weight_units(), (std::vector<std::int64_t>{util::kWeightScale}));
}

// Out-of-range accessors are loud sentinels, not UB (they used to index
// the backing vector unchecked).
TEST(Mux, OutOfRangeAccessorsAreSafe) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("rr"));
  mux.add_backend(net::IpAddr{10, 1, 0, 1});
  EXPECT_EQ(mux.backend_addr(5), net::IpAddr{});
  EXPECT_EQ(mux.backend_id(5), 0u);
  EXPECT_FALSE(mux.backend_enabled(5));
  EXPECT_FALSE(mux.backend_draining(5));
  EXPECT_EQ(mux.forwarded_requests(5), 0u);
  EXPECT_EQ(mux.new_connections(5), 0u);
  EXPECT_EQ(mux.active_connections(5), 0u);
  EXPECT_FALSE(mux.remove_backend(5));
}

// Regression (ISSUE 2): DrainEstimator::finish restored kWeightScale / n
// per backend, under-programming the pool when n does not divide the
// scale. The estimator aborts here (no samples ever arrive), which drives
// exactly the finish() path.
TEST(DrainEstimator, RestoredEqualSplitSumsToScale) {
  sim::Simulation sim(31);
  auto engine = std::make_shared<store::KvEngine>([&sim] { return sim.now(); });
  store::LatencyStore store(engine);
  RecordingDataplane lb({net::IpAddr{10, 1, 0, 1}, net::IpAddr{10, 1, 0, 2},
                         net::IpAddr{10, 1, 0, 3}});

  core::DrainEstimatorConfig cfg;
  cfg.max_load_time = 5_s;
  core::DrainEstimator est(sim, net::IpAddr{10, 0, 0, 1}, store, lb, cfg);

  bool done_called = false;
  est.run(net::IpAddr{10, 1, 0, 1}, 0, 1.0,
          [&](std::optional<util::SimTime> r) {
            done_called = true;
            EXPECT_FALSE(r.has_value());
          });
  sim.run_all();

  ASSERT_TRUE(done_called);
  ASSERT_EQ(lb.last_units.size(), 3u);
  EXPECT_EQ(sum_units(lb.last_units), util::kWeightScale);
  for (const auto u : lb.last_units) EXPECT_NEAR(u, util::kWeightScale / 3, 1);
}

TEST(LbController, TransactionCommitsAfterDelay) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  const net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2};
  mux.add_backend(a);
  mux.add_backend(b);
  LbController ctrl(f.sim, mux, 200_ms);

  PoolProgram p(ctrl.issue_version());
  p.add(a, 7000).add(b, 3000);
  ctrl.apply_program(p);
  f.sim.run_until(100_ms);
  EXPECT_EQ(mux.weight_units()[0], util::kWeightScale / 2);  // still equal
  f.sim.run_until(300_ms);
  EXPECT_EQ(mux.weight_units()[0], 7000);
}

TEST(LbController, LaterTransactionWins) {
  MuxFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"));
  const net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2};
  mux.add_backend(a);
  mux.add_backend(b);
  LbController ctrl(f.sim, mux, 200_ms);

  PoolProgram first(ctrl.issue_version());
  first.add(a, 7000).add(b, 3000);
  ctrl.apply_program(first);
  f.sim.run_until(100_ms);
  PoolProgram second(ctrl.issue_version());
  second.add(a, 1000).add(b, 9000);
  ctrl.apply_program(second);
  f.sim.run_all();
  EXPECT_EQ(mux.weight_units()[0], 1000);
  EXPECT_EQ(mux.applied_version(), second.version);
}

TEST(DnsTrafficManager, ResolvesByWeight) {
  sim::Simulation sim(21);
  std::vector<net::IpAddr> dips{net::IpAddr{10, 1, 0, 1},
                                net::IpAddr{10, 1, 0, 2},
                                net::IpAddr{10, 1, 0, 3}};
  DnsTrafficManager dns(sim, dips);
  PoolProgram p(dns.issue_version());
  p.add(dips[0], 2000).add(dips[1], 3000).add(dips[2], 5000);
  dns.apply_program(p);
  std::map<std::uint32_t, int> counts;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) counts[dns.resolve_authoritative().value()]++;
  EXPECT_NEAR(counts[dips[0].value()], n * 0.2, n * 0.02);
  EXPECT_NEAR(counts[dips[1].value()], n * 0.3, n * 0.02);
  EXPECT_NEAR(counts[dips[2].value()], n * 0.5, n * 0.02);
}

TEST(DnsTrafficManager, CacheDelaysWeightAdherence) {
  sim::Simulation sim(22);
  std::vector<net::IpAddr> dips{net::IpAddr{10, 1, 0, 1},
                                net::IpAddr{10, 1, 0, 2}};
  DnsTrafficManager dns(sim, dips, 30_s);
  PoolProgram all_first(dns.issue_version());
  all_first.add(dips[0], util::kWeightScale).add(dips[1], 0);
  dns.apply_program(all_first);
  EXPECT_EQ(dns.resolve_cached(7), dips[0]);
  // Flip the weights: the cached stub keeps answering the old DIP...
  PoolProgram all_second(dns.issue_version());
  all_second.add(dips[0], 0).add(dips[1], util::kWeightScale);
  dns.apply_program(all_second);
  EXPECT_EQ(dns.resolve_cached(7), dips[0]);
  EXPECT_GT(dns.cache_hits(), 0u);
  // ...until the TTL expires.
  sim.schedule_in(31_s, [] {});
  sim.run_all();
  EXPECT_EQ(dns.resolve_cached(7), dips[1]);
}

// Regression (ISSUE 3): an all-parked or all-draining pool used to fall
// back to dips_[0] — resolving clients onto a backend the controller had
// deliberately taken out of rotation. Resolution now fails loudly.
TEST(DnsTrafficManager, NoResolvableDipDropsResolution) {
  sim::Simulation sim(23);
  std::vector<net::IpAddr> dips{net::IpAddr{10, 1, 0, 1},
                                net::IpAddr{10, 1, 0, 2}};
  DnsTrafficManager dns(sim, dips);
  PoolProgram p(dns.issue_version());
  p.add(dips[0], 0).add(dips[1], 0);  // fully parked
  dns.apply_program(p);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(dns.resolve_authoritative(), net::IpAddr{});
  EXPECT_EQ(dns.dropped_resolutions(), 50u);
  // Failed resolutions are not cached: once a DIP is back, clients recover
  // immediately instead of caching the failure for a TTL.
  EXPECT_EQ(dns.resolve_cached(9), net::IpAddr{});
  PoolProgram back(dns.issue_version());
  back.add(dips[0], util::kWeightScale).add(dips[1], 0);
  dns.apply_program(back);
  EXPECT_EQ(dns.resolve_cached(9), dips[0]);
}

TEST(DnsTrafficManager, DrainingBackendLeavesRotationNotCaches) {
  sim::Simulation sim(24);
  std::vector<net::IpAddr> dips{net::IpAddr{10, 1, 0, 1},
                                net::IpAddr{10, 1, 0, 2}};
  DnsTrafficManager dns(sim, dips, 30_s);
  PoolProgram p(dns.issue_version());
  p.add(dips[0], util::kWeightScale).add(dips[1], 0);
  dns.apply_program(p);
  EXPECT_EQ(dns.resolve_cached(7), dips[0]);

  // Drain DIP 0: rotation flips immediately, the cached client does not —
  // the DNS analogue of serving a draining backend's pinned flows.
  PoolProgram drain(dns.issue_version());
  drain.add(dips[0], 0, BackendState::kDraining)
      .add(dips[1], util::kWeightScale);
  dns.apply_program(drain);
  EXPECT_EQ(dns.resolve_authoritative(), dips[1]);
  EXPECT_EQ(dns.resolve_cached(7), dips[0]);  // cache honoured
  EXPECT_EQ(dns.cache_evictions(), 0u);
  EXPECT_EQ(dns.backend_count(), 2u);

  // One TTL later every cache referencing it has expired: record dropped.
  sim.schedule_in(31_s, [] {});
  sim.run_all();
  EXPECT_EQ(dns.resolve_cached(7), dips[1]);
  EXPECT_EQ(dns.backend_count(), 1u);
}

// Regression (ISSUE 3): removing a backend used to leave client cache
// entries pointing at it for up to a TTL. kRemoved (and omission) now
// evicts the matching entries so clients re-resolve immediately.
TEST(DnsTrafficManager, RemovalEvictsCacheEntries) {
  sim::Simulation sim(25);
  std::vector<net::IpAddr> dips{net::IpAddr{10, 1, 0, 1},
                                net::IpAddr{10, 1, 0, 2}};
  DnsTrafficManager dns(sim, dips, 30_s);
  PoolProgram p(dns.issue_version());
  p.add(dips[0], util::kWeightScale).add(dips[1], 0);
  dns.apply_program(p);
  EXPECT_EQ(dns.resolve_cached(1), dips[0]);
  EXPECT_EQ(dns.resolve_cached(2), dips[0]);

  PoolProgram removed(dns.issue_version());  // dips[0] omitted: decommission
  removed.add(dips[1], util::kWeightScale);
  dns.apply_program(removed);
  EXPECT_EQ(dns.cache_evictions(), 2u);
  EXPECT_EQ(dns.resolve_cached(1), dips[1]);  // immediate, no TTL wait
  EXPECT_EQ(dns.resolve_cached(2), dips[1]);
  EXPECT_EQ(dns.backend_count(), 1u);
}

TEST(DnsTrafficManager, StaleProgramDiscarded) {
  sim::Simulation sim(26);
  std::vector<net::IpAddr> dips{net::IpAddr{10, 1, 0, 1},
                                net::IpAddr{10, 1, 0, 2}};
  DnsTrafficManager dns(sim, dips);
  PoolProgram v2(2);
  v2.add(dips[0], util::kWeightScale).add(dips[1], 0);
  dns.apply_program(v2);
  PoolProgram v1(1);
  v1.add(dips[0], 0).add(dips[1], util::kWeightScale);
  dns.apply_program(v1);
  EXPECT_EQ(dns.superseded_programs(), 1u);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(dns.resolve_authoritative(), dips[0]);
}

}  // namespace
}  // namespace klb::lb
