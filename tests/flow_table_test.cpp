// Sharded flow table + flow cache (ISSUE 5): shard distribution
// uniformity, cache epoch invalidation (a cached pick must never resurrect
// a tombstoned DIP), GC under concurrent insert, and the Mux-level
// affinity invariants — cross-shard drain completion and the
// flows_dropped_by_removal accounting — on top of the new table.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "lb/flow_table.hpp"
#include "lb/mux.hpp"
#include "lb/policy.hpp"
#include "lb/pool_program.hpp"
#include "util/weight.hpp"

namespace klb::lb {
namespace {

using namespace util::literals;

/// Distinct tuples spread over ports and client addresses.
net::FiveTuple flow_tuple(std::uint64_t i) {
  net::FiveTuple t;
  t.src_ip = net::IpAddr(static_cast<std::uint32_t>(0x0a020000 + i / 50'000));
  t.dst_ip = net::IpAddr{10, 0, 0, 1};
  t.src_port = static_cast<std::uint16_t>(10'000 + i % 50'000);
  t.dst_port = 80;
  return t;
}

TEST(FlowTable, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlowTable(FlowTableConfig{1, 0}).shard_count(), 1u);
  EXPECT_EQ(FlowTable(FlowTableConfig{5, 0}).shard_count(), 8u);
  EXPECT_EQ(FlowTable(FlowTableConfig{16, 0}).shard_count(), 16u);
  EXPECT_EQ(FlowTable(FlowTableConfig{0, 0}).shard_count(), 1u);
}

TEST(FlowTable, ShardDistributionIsUniform) {
  FlowTable table(FlowTableConfig{16, 0});
  const std::size_t flows = 64'000;
  for (std::uint64_t i = 0; i < flows; ++i)
    table.try_insert(flow_tuple(i), i % 7, util::SimTime::zero(), false);
  ASSERT_EQ(table.size(), flows);
  const double mean =
      static_cast<double>(flows) / static_cast<double>(table.shard_count());
  for (std::size_t k = 0; k < table.shard_count(); ++k) {
    const auto n = static_cast<double>(table.shard_size(k));
    EXPECT_GT(n, 0.8 * mean) << "shard " << k << " underloaded";
    EXPECT_LT(n, 1.2 * mean) << "shard " << k << " overloaded";
  }
}

TEST(FlowTable, PinLifecycleAndRaceSemantics) {
  FlowTable table;
  const auto t = flow_tuple(1);
  EXPECT_EQ(table.lookup(t, 0_s).kind, FlowHit::Kind::kMiss);

  auto [owner, fresh] = table.try_insert(t, 42, 0_s, false);
  EXPECT_TRUE(fresh);
  EXPECT_EQ(owner, 42u);
  // A concurrent same-tuple packet that lost the race keeps the winner.
  auto [owner2, fresh2] = table.try_insert(t, 99, 1_s, false);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(owner2, 42u);

  const auto hit = table.lookup(t, 2_s);
  EXPECT_EQ(hit.kind, FlowHit::Kind::kAffinity);
  EXPECT_EQ(hit.backend_id, 42u);

  EXPECT_EQ(table.erase(t), std::optional<std::uint64_t>(42));
  EXPECT_EQ(table.erase(t), std::nullopt);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, CachedPickServedUntilEpochBump) {
  FlowTable table(FlowTableConfig{4, 64});
  const auto t = flow_tuple(7);
  table.try_insert(t, 5, 0_s, /*cache_pick=*/true);
  table.erase(t);

  // The pin is gone but the cached pick survives the FIN...
  const auto hit = table.lookup(t, 1_s);
  EXPECT_EQ(hit.kind, FlowHit::Kind::kCachedPick);
  EXPECT_EQ(hit.backend_id, 5u);
  EXPECT_GE(table.stats().cache_hits, 1u);

  // ...until any pool mutation bumps the epoch: the stale pick must never
  // resurrect a backend the pool no longer serves.
  table.invalidate_picks();
  EXPECT_EQ(table.lookup(t, 2_s).kind, FlowHit::Kind::kMiss);
  EXPECT_EQ(table.stats().pick_invalidations, 1u);
}

TEST(FlowTable, CacheDisabledNeverServesPicks) {
  FlowTable table(FlowTableConfig{4, 0});
  const auto t = flow_tuple(3);
  table.try_insert(t, 5, 0_s, /*cache_pick=*/true);
  table.erase(t);
  EXPECT_EQ(table.lookup(t, 1_s).kind, FlowHit::Kind::kMiss);
  EXPECT_EQ(table.stats().cache_hits, 0u);
}

TEST(FlowTable, EraseBackendDropsEveryPinnedFlow) {
  FlowTable table(FlowTableConfig{8, 0});
  for (std::uint64_t i = 0; i < 300; ++i)
    table.try_insert(flow_tuple(i), i % 3, 0_s, false);
  EXPECT_EQ(table.erase_backend(1), 100u);
  EXPECT_EQ(table.size(), 200u);
  table.for_each([](const net::FiveTuple&, std::uint64_t id, util::SimTime) {
    EXPECT_NE(id, 1u);
  });
}

TEST(FlowTable, GcReclaimsDeadAndIdleShardLocally) {
  FlowTable table(FlowTableConfig{8, 0});
  // Backend 1 is dead; backend 2's flows are idle; backend 3's are fresh.
  for (std::uint64_t i = 0; i < 60; ++i)
    table.try_insert(flow_tuple(i), 1 + i % 3, i % 3 == 1 ? 1_s : 90_s, false);
  std::size_t dead = 0, idled = 0;
  const auto reclaimed = table.gc(
      100_s, 60_s, [](std::uint64_t id) { return id != 1; },
      [&](const net::FiveTuple&, std::uint64_t id, bool was_dead) {
        if (was_dead) {
          EXPECT_EQ(id, 1u);
          ++dead;
        } else {
          EXPECT_EQ(id, 2u);
          ++idled;
        }
      });
  EXPECT_EQ(reclaimed, 40u);
  EXPECT_EQ(dead, 20u);
  EXPECT_EQ(idled, 20u);
  EXPECT_EQ(table.size(), 20u);
  EXPECT_EQ(table.stats().gc_reclaimed, 40u);
}

// The reclaim callback runs after the shard lock drops: reentering the
// table from it must not deadlock (the Mux takes its pick mutex there).
TEST(FlowTable, GcReclaimCallbackMayReenterTable) {
  FlowTable table(FlowTableConfig{4, 0});
  for (std::uint64_t i = 0; i < 40; ++i)
    table.try_insert(flow_tuple(i), i % 2, 0_s, false);
  std::size_t seen = 0;
  table.gc(
      100_s, 0_s, [](std::uint64_t id) { return id != 0; },
      [&](const net::FiveTuple&, std::uint64_t, bool) {
        ++seen;
        (void)table.size();  // deadlocks if invoked under the shard lock
      });
  EXPECT_EQ(seen, 20u);
}

TEST(FlowTable, TryFindIsReadOnly) {
  FlowTable table(FlowTableConfig{4, 64});
  const auto t = flow_tuple(11);
  EXPECT_EQ(table.try_find(t), std::nullopt);
  table.try_insert(t, 7, 0_s, /*cache_pick=*/true);
  EXPECT_EQ(table.try_find(t), std::optional<std::uint64_t>(7));
  // No touch, no cache probe, no counter traffic.
  const auto before = table.stats();
  (void)table.try_find(t);
  (void)table.try_find(flow_tuple(12));
  const auto after = table.stats();
  EXPECT_EQ(after.cache_hits, before.cache_hits);
  EXPECT_EQ(after.cache_misses, before.cache_misses);
}

TEST(FlowTable, ExpectedFlowsHintPreReservesShards) {
  // Hinted: the buckets for the expected population exist up front, and
  // filling to that scale never rehashes (capacity is stable).
  FlowTableConfig hinted{8, 0};
  hinted.expected_flows = 64'000;
  FlowTable table(hinted);
  std::vector<std::size_t> buckets_at_start(table.shard_count());
  for (std::size_t k = 0; k < table.shard_count(); ++k) {
    buckets_at_start[k] = table.shard_buckets(k);
    EXPECT_GE(buckets_at_start[k] * 2, 64'000u / table.shard_count())
        << "shard " << k << " not pre-reserved";
  }
  for (std::uint64_t i = 0; i < 64'000; ++i)
    table.try_insert(flow_tuple(i), i % 3, 0_s, false);
  for (std::size_t k = 0; k < table.shard_count(); ++k)
    EXPECT_EQ(table.shard_buckets(k), buckets_at_start[k])
        << "shard " << k << " rehashed despite the hint";

  // Unhinted default: starts near-empty (the hint is opt-in).
  FlowTable bare(FlowTableConfig{8, 0});
  EXPECT_LT(bare.shard_buckets(0), buckets_at_start[0]);
}

TEST(FlowTable, MemoryTracksEntriesAndBuckets) {
  FlowTable table(FlowTableConfig{4, 64});
  const auto empty = table.memory();
  EXPECT_EQ(empty.entries, 0u);
  EXPECT_GT(empty.approx_bytes, 0u);  // shard structs + cache arrays
  for (std::uint64_t i = 0; i < 10'000; ++i)
    table.try_insert(flow_tuple(i), 1, 0_s, false);
  const auto full = table.memory();
  EXPECT_EQ(full.entries, 10'000u);
  EXPECT_GT(full.buckets, 0u);
  // Each entry costs at least its node; the ratio a bench gates on is
  // driven by this growth.
  EXPECT_GE(full.approx_bytes,
            empty.approx_bytes + 10'000u * sizeof(net::FiveTuple));
}

TEST(FlowTable, BudgetedGcSweepsIncrementally) {
  FlowTableConfig cfg{1, 0};
  cfg.gc_scan_budget = 64;
  FlowTable table(cfg);
  constexpr std::uint64_t kFlows = 2'000;
  for (std::uint64_t i = 0; i < kFlows; ++i)
    table.try_insert(flow_tuple(i), i % 2, 0_s, false);

  // One budgeted call examines ~the budget, not the whole shard (bucket
  // granularity makes it approximate), and reclaims only what it saw.
  const auto alive = [](std::uint64_t id) { return id != 1; };
  const auto first = table.gc_shard(0, 0_s, util::SimTime::zero(), alive,
                                    nullptr, FlowTable::kScanBudgeted);
  const auto scanned_once = table.stats().gc_scanned;
  EXPECT_GE(scanned_once, 64u);
  EXPECT_LT(scanned_once, kFlows);
  EXPECT_LT(first, kFlows / 2);

  // Successive calls resume from the cursor and drain the shard fully.
  std::size_t reclaimed = first;
  for (int i = 0; i < 200 && reclaimed < kFlows / 2; ++i)
    reclaimed += table.gc_shard(0, 0_s, util::SimTime::zero(), alive, nullptr,
                                FlowTable::kScanBudgeted);
  EXPECT_EQ(reclaimed, kFlows / 2);
  EXPECT_EQ(table.size(), kFlows / 2);
  // An explicit full sweep overrides the budget in one call.
  for (std::uint64_t i = 0; i < kFlows; ++i)
    table.try_insert(flow_tuple(100'000 + i), 1, 0_s, false);
  EXPECT_EQ(table.gc_shard(0, 0_s, util::SimTime::zero(), alive, nullptr,
                           FlowTable::kScanAll),
            kFlows);
}

TEST(FlowTable, GcUnderConcurrentInsert) {
  FlowTable table(FlowTableConfig{16, 64});
  constexpr std::uint64_t kPerThread = 20'000;
  constexpr std::uint64_t kThreads = 4;
  std::atomic<std::uint64_t> reclaimed{0};
  std::atomic<bool> stop{false};

  // GC continuously while writers insert: odd backend ids are "dead" and
  // reclaimable the moment they land.
  std::thread gc_thread([&] {
    while (!stop.load()) {
      reclaimed.fetch_add(table.gc(
          0_s, util::SimTime::zero(),
          [](std::uint64_t id) { return id % 2 == 0; }));
    }
  });
  std::vector<std::thread> writers;
  for (std::uint64_t w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const auto n = w * kPerThread + i;
        table.try_insert(flow_tuple(n), n % 4, 0_s, n % 3 == 0);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  gc_thread.join();
  reclaimed.fetch_add(table.gc(
      0_s, util::SimTime::zero(),
      [](std::uint64_t id) { return id % 2 == 0; }));

  // Exactly the even-id flows survive, and the shard-local books balance:
  // every insert is either still present or was reclaimed.
  const auto st = table.stats();
  EXPECT_EQ(st.inserts, kThreads * kPerThread);
  EXPECT_EQ(st.entries, st.inserts - st.gc_reclaimed - st.erases);
  EXPECT_EQ(st.entries + reclaimed.load(), st.inserts);
  table.for_each([](const net::FiveTuple&, std::uint64_t id, util::SimTime) {
    EXPECT_EQ(id % 2, 0u);
  });
}

// --- Mux on top of the sharded table ----------------------------------------

net::FiveTuple port_tuple(std::uint16_t port) {
  net::FiveTuple t;
  t.src_ip = net::IpAddr{10, 2, 0, 1};
  t.dst_ip = net::IpAddr{10, 0, 0, 1};
  t.src_port = port;
  t.dst_port = 80;
  return t;
}

struct MuxFlowFixture {
  sim::Simulation sim{17};
  net::Network net{sim};
  net::IpAddr vip{10, 0, 0, 1};
  net::IpAddr a{10, 1, 0, 1}, b{10, 1, 0, 2};

  net::Message request(std::uint16_t port) {
    net::Message m;
    m.type = net::MsgType::kHttpRequest;
    m.tuple = port_tuple(port);
    return m;
  }
  net::Message fin(std::uint16_t port) {
    net::Message m;
    m.type = net::MsgType::kFin;
    m.tuple = port_tuple(port);
    return m;
  }
};

// A drainer's pinned flows land in many shards; the drain must complete
// exactly when the *last* flow across all shards goes — per-backend active
// counts make completion shard-local, no shard may complete it early.
TEST(MuxFlowTable, CrossShardDrainCompletion) {
  MuxFlowFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"), /*attach_to_vip=*/true,
          FlowTableConfig{8, 64});
  PoolProgram v1(1);
  v1.add(f.a, 5000).add(f.b, 5000);
  mux.apply_program(v1);

  for (std::uint16_t p = 0; p < 200; ++p) mux.on_message(f.request(p));
  const auto id_a = mux.backend_id(0);
  std::vector<std::uint16_t> pinned_to_a;
  mux.flow_table().for_each(
      [&](const net::FiveTuple& t, std::uint64_t id, util::SimTime) {
        if (id == id_a) pinned_to_a.push_back(t.src_port);
      });
  ASSERT_GT(pinned_to_a.size(), 8u);  // enough flows to span shards
  std::set<std::size_t> shards;
  for (const auto p : pinned_to_a)
    shards.insert(mux.flow_table().shard_of(port_tuple(p)));
  ASSERT_GT(shards.size(), 1u) << "drainer's flows all in one shard";

  PoolProgram v2(2);
  v2.add(f.a, 0, BackendState::kDraining).add(f.b, util::kWeightScale);
  mux.apply_program(v2);
  ASSERT_TRUE(mux.backend_draining(0));

  // FIN all but the last pinned flow: every shard but one empties, and the
  // drain must still be running.
  for (std::size_t i = 0; i + 1 < pinned_to_a.size(); ++i)
    mux.on_message(f.fin(pinned_to_a[i]));
  EXPECT_EQ(mux.backend_count(), 2u);
  EXPECT_TRUE(mux.backend_draining(0));

  mux.on_message(f.fin(pinned_to_a.back()));
  EXPECT_EQ(mux.backend_count(), 1u);
  EXPECT_EQ(mux.backend_addr(0), f.b);
  EXPECT_EQ(mux.drains_completed(), 1u);
  EXPECT_EQ(mux.flows_reset_by_failure(), 0u);
  EXPECT_EQ(mux.dangling_affinity_count(), 0u);
}

// The flow cache serves repeat tuples for the maglev policy — but a pool
// mutation (fail_backend here) bumps the epoch, so a cached pick can never
// steer a reconnecting client into a tombstoned DIP.
TEST(MuxFlowTable, CachedPickNeverResurrectsFailedBackend) {
  MuxFlowFixture f;
  Mux mux(f.net, f.vip, make_policy("maglev"), /*attach_to_vip=*/true,
          FlowTableConfig{8, 256});
  PoolProgram v1(1);
  v1.add(f.a, 5000).add(f.b, 5000);
  mux.apply_program(v1);

  // Find a tuple maglev routes to backend a.
  std::uint16_t port = 0;
  for (std::uint16_t p = 1; p < 2000; ++p) {
    const auto before = mux.new_connections(0);
    mux.on_message(f.request(p));
    mux.on_message(f.fin(p));
    if (mux.new_connections(0) > before) {
      port = p;
      break;
    }
  }
  ASSERT_NE(port, 0) << "no tuple hashed to backend a";

  // A reconnect of the same tuple is served from the flow cache (no pin
  // existed any more), and lands on the same backend.
  const auto hits_before = mux.flow_table().stats().cache_hits;
  const auto conns_a = mux.new_connections(0);
  mux.on_message(f.request(port));
  EXPECT_GT(mux.flow_table().stats().cache_hits, hits_before);
  EXPECT_EQ(mux.new_connections(0), conns_a + 1);
  mux.on_message(f.fin(port));

  // Kill a. The reconnect must NOT follow the cached pick into the corpse.
  ASSERT_TRUE(mux.fail_backend(0));
  ASSERT_EQ(mux.backend_count(), 1u);
  const auto conns_b = mux.new_connections(0);  // b is index 0 now
  mux.on_message(f.request(port));
  EXPECT_EQ(mux.new_connections(0), conns_b + 1);
  EXPECT_EQ(mux.dangling_affinity_count(), 0u);
  EXPECT_EQ(mux.flows_reset_by_failure(), 0u);  // a held no pins when it died
}

// Abrupt graceful-path removal (transactional kRemoved / omission) drops
// pinned flows; before ISSUE 5 they were counted nowhere.
TEST(MuxFlowTable, RemovalDropsAreCounted) {
  MuxFlowFixture f;
  Mux mux(f.net, f.vip, make_policy("wrr"), true, FlowTableConfig{4, 0});
  PoolProgram v1(1);
  v1.add(f.a, 5000).add(f.b, 5000);
  mux.apply_program(v1);
  for (std::uint16_t p = 0; p < 100; ++p) mux.on_message(f.request(p));
  const auto pinned_a = mux.active_connections(0);
  const auto pinned_b = mux.active_connections(1);
  ASSERT_GT(pinned_a, 0u);
  ASSERT_GT(pinned_b, 0u);

  PoolProgram v2(2);  // a cut short, not drained
  v2.add(f.a, 0, BackendState::kRemoved).add(f.b, util::kWeightScale);
  mux.apply_program(v2);
  EXPECT_EQ(mux.flows_dropped_by_removal(), pinned_a);
  EXPECT_EQ(mux.flows_reset_by_failure(), 0u);

  PoolProgram v3(3);  // b omitted: same abrupt drop, same counter
  v3.add(net::IpAddr{10, 1, 0, 3}, util::kWeightScale);
  mux.apply_program(v3);
  EXPECT_EQ(mux.flows_dropped_by_removal(), pinned_a + pinned_b);
  EXPECT_EQ(mux.affinity_size(), 0u);
  EXPECT_EQ(mux.dangling_affinity_count(), 0u);
}

}  // namespace
}  // namespace klb::lb
