// Fig. 9: weights used for latency measurements, per Algorithm 1
// iteration, for one DIP of each VM type in the 30-DIP Table 3 pool.
//
// Paper: 8-10 iterations per DIP; the per-iteration weights diverge by
// type (bigger VMs probe higher weights); wmax comes out ordered
// DS1 < DS2 < DS3 < F8 (0.02 / 0.04 / 0.085 / 0.165 on their testbed).
#include "bench_common.hpp"

using namespace klb;

int main() {
  std::cout << "Fig. 9 reproduction: Algorithm 1 measurement weights per "
               "iteration.\nPaper: 8-10 iterations; wmax ordered by VM size "
               "(DS1 < DS2 < DS3 < F8).\n";

  testbed::TestbedConfig cfg;
  cfg.requests_per_session = 1.0;
  cfg.closed_loop_factor = 20.0;
  cfg.dip.backlog_per_core = 24;
  cfg.seed = 9;
  cfg.policy = "wrr";
  cfg.use_knapsacklb = true;
  testbed::Testbed bed(testbed::table3_specs(), cfg);
  const bool ready = bed.run_until_ready(util::SimTime::minutes(30));
  std::cout << "exploration " << (ready ? "finished" : "DID NOT FINISH")
            << " at t=" << bed.sim().now().str() << "\n";

  // One representative DIP per type: DIP-1, DIP-17, DIP-25, DIP-29
  // (indices 0, 16, 24, 28), exactly the paper's selection.
  const std::vector<std::size_t> picks{0, 16, 24, 28};

  std::size_t max_iters = 0;
  for (const auto i : picks)
    max_iters = std::max(max_iters,
                         bed.controller()->explorer(i).weight_trace().size());

  std::vector<std::string> headers{"iteration"};
  for (const auto i : picks)
    headers.push_back("DIP-" + std::to_string(i + 1) + " (" +
                      bed.dip(i).config().vm.name + ")");
  testbed::Table table(headers);
  for (std::size_t it = 0; it < max_iters; ++it) {
    std::vector<std::string> row{std::to_string(it + 1)};
    for (const auto i : picks) {
      const auto& trace = bed.controller()->explorer(i).weight_trace();
      row.push_back(it < trace.size() ? testbed::fmt(trace[it], 4) : "-");
    }
    table.row(row);
  }
  table.print();

  std::cout << "\nwmax per type:";
  for (const auto i : picks)
    std::cout << "  " << bed.dip(i).config().vm.name << "="
              << testbed::fmt(bed.controller()->explorer(i).wmax(), 4);
  std::cout << "\n(paper: DS1 0.02, DS2 0.04, DS3 0.085, F8 0.165 -- "
               "ordering is the target)\n";
  return 0;
}
