// Table 7: accuracy and running time of the multi-step ILP (§4.4).
//
// 100 DIPs. One-shot with 100 candidate weights per DIP vs two steps of 10
// candidates (zoom around step 1's choice). Paper: 36.8 s vs 0.65 s x2 —
// 28.3x faster at 99.9% accuracy.
#include <chrono>
#include <iostream>

#include "core/ilp_weights.hpp"
#include "testbed/report.hpp"
#include "testbed/synthetic.hpp"

using namespace klb;

int main() {
  std::cout << "Table 7 reproduction: multi-step ILP accuracy and runtime "
               "(100 DIPs).\nPaper: 100 points 36.8 s / 100% accuracy; 10 "
               "points x2 0.65s x2 / 99.9%.\n";

  const int dips = 100;
  std::vector<fit::WeightLatencyCurve> curves;
  for (int d = 0; d < dips; ++d) {
    const double wmax = 1.25 / dips * (1.0 + 0.02 * ((d * 7) % 5));
    curves.push_back(testbed::synthetic_curve(wmax));
  }
  std::vector<const fit::WeightLatencyCurve*> ptrs;
  for (const auto& c : curves) ptrs.push_back(&c);

  auto run = [&](int points, bool multi) {
    core::IlpWeightsConfig cfg;
    cfg.points_per_dip = points;
    cfg.force_multi_step = multi;
    // The sped-up ILP path (§5): near-symmetric 100-DIP instances defeat
    // our cut-less B&B within any reasonable budget (CBC's presolve
    // handles them); the DP is exact for theta = infinity, so the
    // one-shot-vs-zoom comparison is unaffected.
    cfg.backend = core::IlpBackend::kMckpDp;
    cfg.time_limit = std::chrono::milliseconds(120'000);
    const auto start = std::chrono::steady_clock::now();
    const auto result = core::IlpWeights(cfg).compute(ptrs);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    return std::make_pair(result, ms);
  };

  const auto [oneshot, oneshot_ms] = run(100, false);
  const auto [multi, multi_ms] = run(10, true);

  testbed::Table table({"#points", "running time", "objective (ms)",
                        "accuracy vs one-shot"});
  const double acc =
      oneshot.feasible && multi.feasible
          ? oneshot.estimated_total_latency_ms / multi.estimated_total_latency_ms
          : 0.0;
  table.row({"100 (one-shot)",
             testbed::fmt(static_cast<double>(oneshot_ms) / 1e3, 2) + " s",
             testbed::fmt(oneshot.estimated_total_latency_ms, 2), "100%"});
  table.row({"10 x2 (multi-step)",
             testbed::fmt(static_cast<double>(multi_ms) / 1e3, 2) + " s",
             testbed::fmt(multi.estimated_total_latency_ms, 2),
             testbed::fmt_pct(acc, 2)});
  table.print();
  std::cout << "speedup: "
            << testbed::fmt(static_cast<double>(oneshot_ms) /
                                std::max<std::int64_t>(1, multi_ms), 1)
            << "x (paper: 28.3x at 99.9% accuracy)\n";
  return 0;
}
