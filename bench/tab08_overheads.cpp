// Table 8 + §6.7: deployment overheads for a 60K-DIP datacenter.
//
// Closed-form model with the paper's constants (KLM 4500 probes/s on a
// DS1, D8a DIPs at $280/mo, DS1 KLM at $41/mo, Redis $6/day, controller
// regression 1 ms/DIP, ILP workload 851 s per 5 s period).
// Paper: 3410 KLM cores -> 0.71% core / 0.83% cost overhead; controller
// 193 VMs -> 0.32%; Redis negligible.
#include <iostream>

#include "core/overhead.hpp"
#include "testbed/report.hpp"

using namespace klb;

int main() {
  std::cout << "Table 8 + §6.7 reproduction: overheads at 60K DIPs.\n";

  const auto workload = core::table8_workload();
  testbed::Table wl({"#DIPs/VIP", "#VIPs"});
  for (const auto& c : workload)
    wl.row({std::to_string(c.dips_per_vip), std::to_string(c.vips)});
  wl.print();

  const auto r = core::compute_overheads(workload);

  testbed::Table table({"quantity", "value", "paper"});
  table.row({"total DIPs", std::to_string(r.total_dips), "60000"});
  table.row({"total VIPs", std::to_string(r.total_vips), "3330"});
  table.row({"KLM instances (1 core)", std::to_string(r.klm_instances), "3410"});
  table.row({"KLM core overhead", testbed::fmt_pct(r.klm_core_overhead, 2),
             "0.71%"});
  table.row({"KLM cost overhead", testbed::fmt_pct(r.klm_cost_overhead, 2),
             "0.83%"});
  table.row({"KLM cost (spot VMs)",
             testbed::fmt_pct(r.klm_cost_overhead_spot, 2), "/2.6"});
  table.row({"regression cores", std::to_string(r.regression_cores), "60"});
  table.row({"regression core overhead",
             testbed::fmt_pct(r.regression_core_overhead, 3), "0.01%"});
  table.row({"controller VMs (8 core)", std::to_string(r.controller_vms),
             "193"});
  table.row({"controller core overhead",
             testbed::fmt_pct(r.controller_core_overhead, 2), "0.32%"});
  table.row({"Redis monthly cost",
             "$" + testbed::fmt(r.redis_monthly_usd, 0), "$180"});
  table.row({"Redis cost overhead",
             testbed::fmt_pct(r.redis_cost_overhead, 4), "~0%"});
  table.print();
  return 0;
}
