// Fig. 15/16 composed, on a *live* pool: the paper's headline dynamics —
// capacity change and failures — exercised through the Testbed's runtime
// churn API instead of a static pool, with KnapsackLB on and the VIP
// served by an ECMP MuxPool (mux_count > 1).
//
// Scenario (Table-3 pool, constant offered load like the paper's figures):
//   1. steady baseline,
//   2. capacity change: two DS3v2s each lose a core to a co-located
//      process (Fig. 16's knob),
//   3. scale-out wave: fresh DS2v2s join mid-run and are explored and
//      folded into the ILP while traffic flows,
//   4. rolling graceful drain: DIPs leave one at a time, pinned flows
//      served out (zero resets),
//   5. correlated abrupt failure: two DIPs die at once (Fig. 15's event,
//      via the ops feed + dataplane fail_backend).
//
// `--short` runs a scaled-down pool and shorter windows — the CI smoke
// mode that keeps the live-churn path from rotting.
#include "bench_common.hpp"

using namespace klb;
using namespace klb::util::literals;

namespace {

struct PhaseStats {
  std::string name;
  double goodput_rps = 0.0;
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t timeouts = 0;
  std::uint64_t flows_reset = 0;
  std::uint64_t drains_completed = 0;
  std::size_t live_dips = 0;
};

PhaseStats measure_phase(testbed::Testbed& bed, lb::MuxPool& pool,
                         const std::string& name, util::SimTime window) {
  bed.reset_stats();
  const auto timeouts0 = bed.clients().recorder().timeouts();
  const auto resets0 = pool.flows_reset_by_failure();
  const auto drains0 = pool.drains_completed();
  bed.run_for(window);

  PhaseStats s;
  s.name = name;
  s.goodput_rps = static_cast<double>(bed.clients().recorder().overall().count()) /
                  window.sec();
  s.mean_ms = bed.overall_latency_ms();
  s.p99_ms = bed.overall_p99_ms();
  s.timeouts = bed.clients().recorder().timeouts() - timeouts0;
  s.flows_reset = pool.flows_reset_by_failure() - resets0;
  s.drains_completed = pool.drains_completed() - drains0;
  s.live_dips = bed.dip_count();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string json_path;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--short") {
      short_mode = true;
    } else if (args[i] == "--json" && i + 1 < args.size()) {
      json_path = args[++i];
    } else {
      std::cerr << "unknown argument '" << args[i]
                << "'\nusage: bench_fig16_dynamic_churn [--short] "
                   "[--json PATH]\n";
      return 2;
    }
  }
  std::cout << "Fig. 16 (dynamic): live pool churn under traffic"
            << (short_mode ? " [short mode]" : "") << "\n";

  testbed::TestbedConfig cfg;
  cfg.seed = 99;
  cfg.policy = "wrr";  // pool runs maglev-shared; knob unused
  cfg.use_knapsacklb = true;
  cfg.mux_count = 3;
  cfg.requests_per_session = 1.0;
  cfg.closed_loop_factor = 20.0;
  cfg.dip.backlog_per_core = 24;
  cfg.controller.refresh_interval = util::SimTime::zero();
  // The paper's figures hold offered load constant through the event.
  cfg.rescale_load_on_churn = false;

  std::vector<testbed::DipSpec> specs;
  if (short_mode) {
    for (int i = 0; i < 6; ++i) specs.push_back({server::kDs1v2, 1.0, 0.0});
    for (int i = 0; i < 2; ++i) specs.push_back({server::kDs2v2, 1.0, 0.0});
    specs.push_back({server::kF8sv2, 1.0, 0.0});
  } else {
    specs = testbed::table3_specs();
  }
  const auto window = short_mode ? 30_s : util::SimTime::minutes(2);
  const auto ready_limit =
      short_mode ? util::SimTime::minutes(10) : util::SimTime::minutes(30);
  const std::size_t scale_out_n = short_mode ? 2 : 3;
  const std::size_t drain_n = short_mode ? 2 : 3;

  testbed::Testbed bed(specs, cfg);
  auto* pool = bed.mux_pool();
  if (pool == nullptr) {
    std::cout << "[fail] expected a MuxPool (mux_count > 1)\n";
    return 1;
  }
  if (!bed.run_until_ready(ready_limit))
    std::cout << "[warn] initial exploration did not finish in time\n";
  bed.run_for(short_mode ? 20_s : util::SimTime::minutes(1));

  std::vector<PhaseStats> phases;
  phases.push_back(measure_phase(bed, *pool, "baseline", window));

  // --- capacity change (Fig. 16): two big DIPs lose a core mid-run ------
  std::size_t steal_a = short_mode ? 6 : 24;  // DS2s (short) / DS3s (full)
  std::size_t steal_b = steal_a + 1;
  bed.dip(steal_a).set_stolen_cores(1.0);
  bed.dip(steal_b).set_stolen_cores(1.0);
  phases.push_back(measure_phase(bed, *pool, "capacity change", window));

  // --- scale-out wave ---------------------------------------------------
  for (std::size_t i = 0; i < scale_out_n; ++i)
    bed.scale_out({server::kDs2v2, 1.0, 0.0});
  if (!bed.run_until_ready(ready_limit))
    std::cout << "[warn] newcomer exploration did not finish in time\n";
  phases.push_back(measure_phase(bed, *pool, "scale-out wave", window));

  // --- rolling graceful drain ------------------------------------------
  // The drain commits land during the settle runs below, before the
  // measured window re-baselines the counters — so the CI-gating "zero
  // resets" invariant must span the ops themselves, not just the window.
  const auto resets_before_drains = pool->flows_reset_by_failure();
  for (std::size_t i = 0; i < drain_n; ++i) {
    bed.scale_in(0);
    bed.run_for(short_mode ? 10_s : 30_s);
  }
  const auto drain_resets =
      pool->flows_reset_by_failure() - resets_before_drains;
  phases.push_back(measure_phase(bed, *pool, "rolling drain", window));

  // --- correlated abrupt failure ---------------------------------------
  const auto resets_before_fail = pool->flows_reset_by_failure();
  bed.fail_dip(0);
  bed.fail_dip(0);
  const auto failure_resets =
      pool->flows_reset_by_failure() - resets_before_fail;
  phases.push_back(measure_phase(bed, *pool, "correlated failure", window));

  testbed::Table table({"phase", "DIPs", "goodput rps", "mean ms", "p99 ms",
                        "timeouts", "resets", "drains"});
  for (const auto& s : phases)
    table.row({s.name, std::to_string(s.live_dips),
               testbed::fmt(s.goodput_rps, 0), testbed::fmt(s.mean_ms),
               testbed::fmt(s.p99_ms), std::to_string(s.timeouts),
               std::to_string(s.flows_reset),
               std::to_string(s.drains_completed)});
  table.print();

  // --- consistency: the live-churn contract (also the CI smoke check) ---
  // Freeze the control loop and let any transaction still riding the
  // programming delay commit, so the check compares settled state rather
  // than a program mid-delay.
  bed.controller()->stop();
  bed.run_for(1_s);
  int failures = 0;
  const auto metrics = bed.metrics();
  double sum = 0.0;
  for (const auto& m : metrics) {
    sum += m.weight;
    const auto cw = bed.controller()->weight_of(m.addr);
    if (!cw || std::abs(*cw - m.weight) > 2e-3) {
      std::cout << "[fail] weight attribution diverged for " << m.addr.str()
                << ": controller "
                << (cw ? testbed::fmt(*cw, 4) : std::string("<untracked>"))
                << " vs dataplane " << testbed::fmt(m.weight, 4) << "\n";
      ++failures;
    }
  }
  if (std::abs(sum - 1.0) > 1e-3) {
    std::cout << "[fail] live-pool weights sum to " << sum << ", want ~1\n";
    ++failures;
  }
  const auto& drain_phase = phases[phases.size() - 2];
  if (drain_resets + drain_phase.flows_reset != 0) {
    std::cout << "[fail] graceful drain reset "
              << drain_resets + drain_phase.flows_reset << " flows\n";
    ++failures;
  }
  const auto& fail_phase = phases.back();
  if (fail_phase.goodput_rps < 0.5 * phases.front().goodput_rps) {
    std::cout << "[fail] goodput collapsed after correlated failure\n";
    ++failures;
  }
  std::cout << "correlated failure reset " << failure_resets
            << " pinned flows; stale pre-failure re-admissions refused: "
            << pool->stale_failed_admissions() << "\n";

  std::cout << "\nPaper: capacity loss trims the degraded DIPs' weight "
               "15-17% (not the naive 25%);\nfailed DIPs' weight lands "
               "mostly on the high-capacity survivors. Here the same\n"
               "controller does both on a pool that grows, drains, and "
               "fails mid-run.\n";

  if (!json_path.empty()) {
    const auto dm = bed.dataplane_metrics();
    auto json = bench::Json::object();
    json.set("bench", "fig16_dynamic_churn")
        .set("mode", short_mode ? "short" : "full")
        .set("live_dips", bed.dip_count())
        .set("mux_count", cfg.mux_count)
        .set("offered_rps", bed.offered_rps());
    auto phases_json = bench::Json::array();
    for (const auto& s : phases)
      phases_json.push(bench::Json::object()
                           .set("phase", s.name)
                           .set("live_dips", s.live_dips)
                           .set("goodput_rps", s.goodput_rps)
                           .set("mean_ms", s.mean_ms)
                           .set("p99_ms", s.p99_ms)
                           .set("timeouts", s.timeouts)
                           .set("flows_reset", s.flows_reset)
                           .set("drains_completed", s.drains_completed));
    json.set("phases", std::move(phases_json));
    json.set("dataplane",
             bench::Json::object()
                 .set("flows_reset_by_failure", dm.flows_reset_by_failure)
                 .set("drains_completed", dm.drains_completed)
                 .set("no_backend_drops", dm.no_backend_drops)
                 .set("stale_failed_admissions", dm.stale_failed_admissions)
                 .set("generations_published", dm.generations_published)
                 .set("generations_retired", dm.generations_retired)
                 .set("pending_retired_generations",
                      dm.pending_retired_generations));
    json.set("failures", failures);
    if (!bench::write_json_file(json_path, json)) return 1;
  }
  return failures == 0 ? 0 : 1;
}
