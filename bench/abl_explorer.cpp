// Ablation: Algorithm 1's knobs — the growth pace alpha and the
// pseudo-drop threshold — against synthetic DIP physics with a known
// capacity. Reports iterations-to-converge and the error of the
// discovered wmax vs the true capacity weight, averaged over seeds and
// capacities.
//
// The paper fixes alpha=1 and threshold=5 (their testbed's saturation
// ratio); this sweep shows the trade-off our calibrated default (3.5)
// sits on: lower thresholds converge faster but underestimate capacity,
// higher ones overshoot into the drop region more often.
#include <iostream>

#include "core/explorer.hpp"
#include "testbed/report.hpp"
#include "util/rng.hpp"

using namespace klb;

namespace {

/// Closed-loop-flavoured synthetic DIP: latency rises to ~4x l0 at
/// capacity and saturates shortly after (like the DES under fixed client
/// concurrency); real drops above 1.1x capacity.
struct SyntheticDip {
  double wcap;
  double l0 = 3.4;
  double latency(double w, util::Rng& rng) const {
    const double rho = w / wcap;
    double base;
    if (rho < 1.0)
      base = l0 * (1.0 + 3.0 * rho * rho);
    else
      base = l0 * (4.0 + std::min(3.0, (rho - 1.0) * 8.0));
    return base * (1.0 + rng.normal(0.0, 0.04));
  }
  bool drops(double w) const { return w > wcap * 1.1; }
};

}  // namespace

int main() {
  std::cout << "Ablation: explorer alpha x pseudo-drop threshold.\n"
               "(true capacity weights 0.02..0.4; error = |wmax - wcap| / "
               "wcap averaged)\n";

  testbed::Table table({"alpha", "drop threshold", "avg iterations",
                        "avg wmax error", "overshoot runs"});

  for (const double alpha : {0.5, 1.0, 2.0}) {
    for (const double threshold : {2.0, 2.5, 3.0, 3.5, 4.5}) {
      double iters_total = 0.0;
      double err_total = 0.0;
      int overshoot = 0;
      int runs = 0;
      for (const double wcap : {0.02, 0.05, 0.1, 0.2, 0.4}) {
        for (int seed = 0; seed < 8; ++seed) {
          util::Rng rng(static_cast<std::uint64_t>(seed) * 977 + 13);
          SyntheticDip dip{wcap};
          core::ExplorerConfig cfg;
          cfg.alpha = alpha;
          cfg.pseudo_drop_factor = threshold;
          core::WeightExplorer ex(cfg);
          ex.set_l0(dip.l0);
          ex.begin(0.033);
          while (!ex.done())
            ex.observe(dip.latency(ex.next_weight(), rng),
                       dip.drops(ex.next_weight()));
          iters_total += ex.iterations();
          err_total += std::fabs(ex.wmax() - wcap) / wcap;
          if (ex.wmax() > wcap * 1.1) ++overshoot;
          ++runs;
        }
      }
      table.row({testbed::fmt(alpha, 1), testbed::fmt(threshold, 1),
                 testbed::fmt(iters_total / runs, 1),
                 testbed::fmt_pct(err_total / runs),
                 std::to_string(overshoot) + "/" + std::to_string(runs)});
    }
  }
  table.print();
  std::cout << "Defaults: alpha=1.0 (paper), threshold=3.5 (calibrated to "
               "this substrate's\nsaturation ratio; the paper's 5x assumes "
               "a smaller l0 floor).\n";
  return 0;
}
