// Fig. 16: weight changes when DIP-25..28 (the 4-core DS3v2s) each lose a
// core to a co-located process.
//
// Paper: instead of cutting those DIPs' weight by the naive 25%, the
// controller cut 15-17% — the remainder was absorbed mostly by DIP-29,30
// (better latency at the same weight). Detection is via the +-20% latency
// deviation rule (§4.5), not via any CPU counter.
#include "bench_common.hpp"

using namespace klb;

int main() {
  std::cout << "Fig. 16 reproduction: weight adaptation on capacity loss.\n";

  testbed::TestbedConfig cfg;
  cfg.requests_per_session = 1.0;
  cfg.closed_loop_factor = 20.0;
  cfg.dip.backlog_per_core = 24;
  cfg.seed = 16;
  cfg.policy = "wrr";
  cfg.use_knapsacklb = true;
  testbed::Testbed bed(testbed::table3_specs(), cfg);
  const bool ready = bed.run_until_ready(util::SimTime::minutes(30));
  if (!ready) std::cout << "[warn] exploration did not finish in time\n";
  bed.run_for(util::SimTime::seconds(40));
  const auto before = bed.controller()->current_weights();

  std::cout << "stealing 1 of 4 cores on DIP-25..28...\n";
  for (std::size_t i = 24; i < 28; ++i) bed.dip(i).set_stolen_cores(1.0);
  bed.run_for(util::SimTime::minutes(3));
  const auto after = bed.controller()->current_weights();
  std::cout << "capacity rescales applied: "
            << bed.controller()->capacity_rescales() << "\n";

  double ds3_before = 0.0;
  double ds3_after = 0.0;
  for (std::size_t i = 24; i < 28; ++i) {
    ds3_before += before[i];
    ds3_after += after[i];
  }
  double rest_before = 0.0;
  double rest_after = 0.0;
  for (std::size_t i = 28; i < 30; ++i) {
    rest_before += before[i];
    rest_after += after[i];
  }

  testbed::Table table({"group", "before", "after", "change"});
  table.row({"DIP-25..28 (degraded)", testbed::fmt(ds3_before, 3),
             testbed::fmt(ds3_after, 3),
             testbed::fmt((ds3_after / std::max(1e-9, ds3_before) - 1.0) * 100, 1) + "%"});
  table.row({"DIP-29,30 (F8)", testbed::fmt(rest_before, 3),
             testbed::fmt(rest_after, 3),
             testbed::fmt((rest_after / std::max(1e-9, rest_before) - 1.0) * 100, 1) + "%"});
  table.print();
  std::cout << "\nPaper: degraded DIPs' weight fell 15-17% (not the naive "
               "25%); most of the\nfreed weight moved to DIP-29,30.\n";
  return 0;
}
