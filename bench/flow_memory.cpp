// Flow-table memory at 10M-flow scale: the stateless fast path's headline
// (ISSUE 8, lb/consistency.hpp).
//
// A stateful L4 LB pays O(concurrent flows) memory for connection
// affinity. The hybrid dataplane pins only exception flows — slots whose
// maglev pick moved recently — and routes everyone else by hash, so its
// table holds the exception population instead of every flow. This bench
// measures exactly that trade on the real Mux packet path:
//
//   * Open `flows` connections (default 10M; --short: 200k) against a
//     64-DIP maglev pool, stateless OFF vs ON, and compare the flow
//     table's approximate bytes (FlowTable::memory(), an
//     instrumentation-independent estimate, so the OFF/ON ratio holds
//     under TSan/ASan too) and bytes/flow.
//   * Drive graceful-drain churn under live traffic in both modes and
//     count broken affinities two ways: a fabric tap asserts per-packet
//     that no flow's packets ever land on two different DIPs, and the
//     Mux's own affinity_breaks counter must agree. The gate is ZERO
//     additional breaks with stateless on — the whole point of the
//     exception filter.
//   * --gc: sweep-latency microbench on the table itself at `flows`
//     entries — full-shard sweeps vs budgeted incremental sweeps
//     (--gc-budget N, default 4096) — showing the per-call pause a
//     packet-path inline GC pays at 10M flows.
//
// The expected-flows hint is part of the story: the OFF table is
// pre-reserved for the full flow population (how an operator sizes a
// stateful deployment), the ON table for the expected exception fraction
// (flows/64) — rehash storms are excluded from both sides.
//
// --short gates (CI): bytes(OFF) >= 5x bytes(ON) at peak, zero broken
// affinities in both modes, zero additional breaks ON vs OFF, and a
// nonzero stateless-pick share. --json PATH emits the numbers for the
// perf trajectory.
//
// Usage: bench_flow_memory [--short] [--gc] [--gc-budget N] [--json PATH]
//                          [flows]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "lb/consistency.hpp"
#include "lb/flow_table.hpp"
#include "lb/maglev.hpp"
#include "lb/mux.hpp"
#include "lb/pool_program.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "testbed/report.hpp"
#include "util/weight.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kDips = 64;
constexpr std::uint32_t kDipBase = 0x0a010000;  // 10.1.0.0
const klb::net::IpAddr kVip{10, 0, 0, 1};
constexpr std::uint32_t kSrcBase = 0x0a020000;  // 10.2.0.0
constexpr std::uint64_t kPortSpan = 50'000;

klb::net::FiveTuple flow_tuple(std::uint64_t f) {
  klb::net::FiveTuple t;
  t.src_ip =
      klb::net::IpAddr(static_cast<std::uint32_t>(kSrcBase + f / kPortSpan));
  t.dst_ip = kVip;
  t.src_port = static_cast<std::uint16_t>(10'000 + f % kPortSpan);
  t.dst_port = 80;
  return t;
}

/// Inverse of flow_tuple: which flow does this packet belong to?
std::uint64_t flow_index(const klb::net::FiveTuple& t) {
  return static_cast<std::uint64_t>(t.src_ip.value() - kSrcBase) * kPortSpan +
         (t.src_port - 10'000u);
}

struct ScenarioResult {
  std::size_t peak_bytes = 0;       // steady state, all flows open
  std::size_t peak_entries = 0;
  std::size_t churn_bytes = 0;      // during churn (exception pins live)
  std::uint64_t tap_breaks = 0;     // flows observed on 2+ DIPs (ground truth)
  std::uint64_t affinity_breaks = 0;
  std::uint64_t stateless_picks = 0;
  std::uint64_t exception_pins = 0;
  std::uint64_t breaks_avoided = 0;
  double drive_sec = 0.0;
  bool ok = true;
};

/// One full drive: open `flows`, steady packets, `churn_rounds` graceful
/// drain+cancel cycles with a packet per flow in between, FIN everything.
/// The fabric tap watches every forwarded packet and records any flow that
/// ever reaches a second DIP.
ScenarioResult run_scenario(bool stateless, std::uint64_t flows,
                            int churn_rounds) {
  klb::sim::Simulation sim(11);
  klb::net::Network net(sim);

  ScenarioResult res;
  auto check = [&res](bool cond, const std::string& what) {
    if (!cond) {
      std::cerr << "INVARIANT VIOLATED: " << what << "\n";
      res.ok = false;
    }
  };

  // Per-flow owner observed on the wire; 0 = not yet seen. The tap runs on
  // the (single) driving thread, so plain vectors suffice.
  std::vector<std::uint32_t> owner(flows, 0);
  std::uint64_t tap_breaks = 0;
  net.set_tap([&](klb::net::IpAddr to, const klb::net::Message& m) {
    const auto v = to.value();
    if (v < kDipBase || v >= kDipBase + kDips) return;  // not a DIP
    const auto f = flow_index(m.tuple);
    if (owner[f] == 0) {
      owner[f] = v;
    } else if (owner[f] != v) {
      ++tap_breaks;
      owner[f] = v;  // count each re-home once, then track the new owner
    }
  });
  net.set_blackhole(true);  // tap still runs; the event queue stays cold

  klb::lb::FlowTableConfig flow_cfg;
  // Size the table the way its operator would: the stateful deployment
  // expects every flow pinned; the hybrid one expects the exception
  // fraction (~1/64 here: one backend's slots move per churn round).
  flow_cfg.expected_flows =
      stateless ? static_cast<std::size_t>(flows / kDips)
                : static_cast<std::size_t>(flows);
  klb::lb::ConsistencyConfig consistency;
  consistency.stateless = stateless;

  klb::lb::Mux mux(net, kVip, klb::lb::make_policy("maglev"),
                   /*attach_to_vip=*/true, flow_cfg, consistency);
  std::uint64_t version = 0;
  auto program = [&](std::size_t draining) {  // kDips = nobody draining
    klb::lb::PoolProgram p(++version);
    for (std::size_t d = 0; d < kDips; ++d)
      p.add(klb::net::IpAddr(static_cast<std::uint32_t>(kDipBase + d)),
            klb::util::kWeightScale / kDips,
            d == draining ? klb::lb::BackendState::kDraining
                          : klb::lb::BackendState::kActive);
    return p;
  };
  mux.apply_program(program(kDips));
  check(!stateless || mux.stateless_engaged(),
        "stateless mode engaged on a maglev policy");

  const auto t0 = Clock::now();
  klb::net::Message msg;
  msg.type = klb::net::MsgType::kHttpRequest;
  auto sweep = [&](std::uint64_t req_id) {
    msg.req_id = req_id;
    for (std::uint64_t f = 0; f < flows; ++f) {
      msg.tuple = flow_tuple(f);
      msg.conn_id = f;
      mux.on_message(msg);
    }
  };

  // Open + one steady mid-flow packet per flow: the 10M-concurrent-flows
  // steady state whose footprint is the headline.
  sweep(1);
  sweep(2);
  const auto peak = mux.flow_table().memory();
  res.peak_bytes = peak.approx_bytes;
  res.peak_entries = peak.entries;

  // Graceful churn under live traffic: drain one backend, let every flow
  // send a packet (mid-flow exception adoption happens here), cancel the
  // drain, another packet. Each round's table rebuild moves the victim's
  // slots and back.
  std::uint64_t req = 3;
  for (int r = 0; r < churn_rounds; ++r) {
    mux.apply_program(program(static_cast<std::size_t>(r) % kDips));
    sweep(req++);
    res.churn_bytes = std::max(res.churn_bytes,
                               mux.flow_table().memory().approx_bytes);
    mux.apply_program(program(kDips));
    sweep(req++);
  }

  msg.type = klb::net::MsgType::kFin;
  msg.req_id = req;
  for (std::uint64_t f = 0; f < flows; ++f) {
    msg.tuple = flow_tuple(f);
    msg.conn_id = f;
    mux.on_message(msg);
  }
  mux.poll();
  res.drive_sec = std::chrono::duration<double>(Clock::now() - t0).count();

  res.tap_breaks = tap_breaks;
  res.affinity_breaks = mux.affinity_breaks();
  res.stateless_picks = mux.stateless_picks();
  res.exception_pins = mux.exception_pins();
  res.breaks_avoided = mux.affinity_breaks_avoided();

  // Conservation: every flow opened exactly once (stateless openers count
  // connections without pinning; adoptions must not double-count), every
  // pin released.
  std::uint64_t conns = 0, active = 0;
  for (std::size_t d = 0; d < kDips; ++d) {
    conns += mux.new_connections(d);
    active += mux.active_connections(d);
  }
  check(conns == flows, "new connections == flows (" + std::to_string(conns) +
                            " vs " + std::to_string(flows) + ")");
  check(active == 0,
        "no active connections after all FINs (" + std::to_string(active) +
            " left)");
  check(mux.affinity_size() == 0,
        "affinity empty after all FINs (" +
            std::to_string(mux.affinity_size()) + " left)");
  check(mux.live_exception_pins() == 0,
        "slot-pin counters drained (" +
            std::to_string(mux.live_exception_pins()) + " left)");
  check(mux.no_backend_drops() == 0, "no refused connections");
  check(mux.dangling_affinity_count() == 0, "no dangling affinity entries");
  return res;
}

// --- --gc: sweep latency on the raw table at `flows` entries -----------------

struct GcResult {
  double full_sweep_ms = 0.0;      // one kScanAll call, worst shard
  double budgeted_max_ms = 0.0;    // worst single budgeted call
  std::uint64_t budgeted_calls = 0;  // calls to reclaim everything
};

GcResult run_gc(std::uint64_t flows, std::size_t budget) {
  using klb::util::SimTime;
  GcResult res;
  const auto alive = [](std::uint64_t id) { return id % 2 == 0; };

  // Two identical tables — sweeping mutates, so full and budgeted each get
  // a fresh population. Odd backend ids are reclaimable.
  for (const bool budgeted : {false, true}) {
    klb::lb::FlowTableConfig cfg;
    cfg.expected_flows = static_cast<std::size_t>(flows);
    cfg.gc_scan_budget = budget;
    klb::lb::FlowTable table(cfg);
    for (std::uint64_t f = 0; f < flows; ++f)
      table.try_insert(flow_tuple(f), f % 8, SimTime::zero(), false);

    if (!budgeted) {
      for (std::size_t k = 0; k < table.shard_count(); ++k) {
        const auto c0 = Clock::now();
        table.gc_shard(k, SimTime::zero(), SimTime::zero(), alive, nullptr,
                       klb::lb::FlowTable::kScanAll);
        res.full_sweep_ms = std::max(
            res.full_sweep_ms,
            std::chrono::duration<double, std::milli>(Clock::now() - c0)
                .count());
      }
    } else {
      std::size_t reclaimed = 0;
      const auto goal = static_cast<std::size_t>(flows) / 2;
      std::size_t k = 0;
      while (reclaimed < goal) {
        const auto c0 = Clock::now();
        reclaimed += table.gc_shard(k++ % table.shard_count(), SimTime::zero(),
                                    SimTime::zero(), alive, nullptr,
                                    klb::lb::FlowTable::kScanBudgeted);
        res.budgeted_max_ms = std::max(
            res.budgeted_max_ms,
            std::chrono::duration<double, std::milli>(Clock::now() - c0)
                .count());
        ++res.budgeted_calls;
      }
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  bool gc_mode = false;
  std::size_t gc_budget = 4096;
  std::string json_path;
  std::uint64_t flows = 10'000'000;
  bool flows_given = false;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto& a = args[i];
    if (a == "--short") {
      short_mode = true;
    } else if (a == "--gc") {
      gc_mode = true;
    } else if (a == "--gc-budget" && i + 1 < args.size()) {
      gc_budget = std::stoull(args[++i]);
    } else if (a == "--json" && i + 1 < args.size()) {
      json_path = args[++i];
    } else if (!a.empty() && a.size() <= 18 &&
               a.find_first_not_of("0123456789") == std::string::npos) {
      flows = std::stoull(a);
      flows_given = true;
    } else {
      std::cerr << "unknown argument '" << a << "'\nusage: bench_flow_memory"
                << " [--short] [--gc] [--gc-budget N] [--json PATH] [flows]\n";
      return 2;
    }
  }
  if (short_mode && !flows_given) flows = 200'000;
  const int churn_rounds = short_mode ? 2 : 4;

  klb::testbed::banner(
      "Flow-table memory: stateful vs stateless fast path (" +
      std::to_string(kDips) + " DIPs, maglev, " + std::to_string(flows) +
      " concurrent flows, " + std::to_string(churn_rounds) +
      " graceful-drain churn rounds)");

  const auto stateful = run_scenario(/*stateless=*/false, flows, churn_rounds);
  const auto hybrid = run_scenario(/*stateless=*/true, flows, churn_rounds);
  bool ok = stateful.ok && hybrid.ok;

  const double ratio = static_cast<double>(stateful.peak_bytes) /
                       std::max<double>(1.0, static_cast<double>(hybrid.peak_bytes));
  const double flows_d = static_cast<double>(flows);
  klb::testbed::Table table({"mode", "table bytes", "bytes/flow", "entries",
                             "stateless picks", "exception pins",
                             "breaks (tap/ctr)"});
  auto row = [&](const char* name, const ScenarioResult& r) {
    table.row({name, klb::testbed::fmt(static_cast<double>(r.peak_bytes) / 1e6, 1) + " MB",
               klb::testbed::fmt(static_cast<double>(r.peak_bytes) / flows_d, 1),
               std::to_string(r.peak_entries), std::to_string(r.stateless_picks),
               std::to_string(r.exception_pins),
               std::to_string(r.tap_breaks) + "/" +
                   std::to_string(r.affinity_breaks)});
  };
  row("stateful", stateful);
  row("stateless", hybrid);
  table.print();
  std::cout << "\nmemory ratio (stateful/stateless): "
            << klb::testbed::fmt(ratio, 1) << "x   ("
            << klb::testbed::fmt(static_cast<double>(stateful.peak_bytes) / 1e6, 1)
            << " MB -> "
            << klb::testbed::fmt(static_cast<double>(hybrid.peak_bytes) / 1e6, 1)
            << " MB at " << flows << " flows; churn peak "
            << klb::testbed::fmt(static_cast<double>(hybrid.churn_bytes) / 1e6, 1)
            << " MB)\nbreaks avoided by exception adoption: "
            << hybrid.breaks_avoided << "\n";

  auto json = klb::bench::Json::object();
  json.set("bench", "flow_memory")
      .set("mode", short_mode ? "short" : "full")
      .set("flows", flows)
      .set("dips", kDips)
      .set("churn_rounds", churn_rounds)
      .set("stateful_bytes", stateful.peak_bytes)
      .set("stateful_bytes_per_flow",
           static_cast<double>(stateful.peak_bytes) / flows_d)
      .set("stateful_entries", stateful.peak_entries)
      .set("stateless_bytes", hybrid.peak_bytes)
      .set("stateless_bytes_per_flow",
           static_cast<double>(hybrid.peak_bytes) / flows_d)
      .set("stateless_entries", hybrid.peak_entries)
      .set("stateless_churn_peak_bytes", hybrid.churn_bytes)
      .set("memory_ratio", ratio)
      .set("stateless_picks", hybrid.stateless_picks)
      .set("exception_pins", hybrid.exception_pins)
      .set("breaks_avoided", hybrid.breaks_avoided)
      .set("breaks_stateful", stateful.tap_breaks)
      .set("breaks_stateless", hybrid.tap_breaks)
      .set("drive_sec_stateful", stateful.drive_sec)
      .set("drive_sec_stateless", hybrid.drive_sec);

  if (gc_mode) {
    std::cout << "\n";
    klb::testbed::banner("GC sweep latency at " + std::to_string(flows) +
                         " flows (budget " + std::to_string(gc_budget) + ")");
    const auto gc = run_gc(flows, gc_budget);
    klb::testbed::Table gct({"sweep", "worst call", "calls to drain"});
    gct.row({"full shard", klb::testbed::fmt(gc.full_sweep_ms, 2) + " ms", "1/shard"});
    gct.row({"budgeted (" + std::to_string(gc_budget) + ")",
             klb::testbed::fmt(gc.budgeted_max_ms, 3) + " ms",
             std::to_string(gc.budgeted_calls)});
    gct.print();
    std::cout << "\nA budgeted sweep bounds the per-packet pause; successive "
                 "calls resume from the shard's bucket cursor.\n";
    json.set("gc", klb::bench::Json::object()
                       .set("budget", gc_budget)
                       .set("full_sweep_worst_ms", gc.full_sweep_ms)
                       .set("budgeted_worst_ms", gc.budgeted_max_ms)
                       .set("budgeted_calls", gc.budgeted_calls));
  }

  // --- gates (always checked; hard-fail the run) ----------------------------
  // Same-instrumentation ratio: approx_bytes is computed from sizeofs, not
  // RSS, so the OFF/ON comparison is identical under TSan.
  if (ratio < 5.0) {
    std::cerr << "FAIL: stateless memory ratio " << klb::testbed::fmt(ratio, 2)
              << "x below the 5x gate\n";
    ok = false;
  }
  if (hybrid.tap_breaks != 0 || hybrid.affinity_breaks != 0) {
    std::cerr << "FAIL: " << hybrid.tap_breaks << " tap-observed / "
              << hybrid.affinity_breaks
              << " counted affinity breaks with stateless on (gate: 0)\n";
    ok = false;
  }
  if (hybrid.tap_breaks > stateful.tap_breaks) {
    std::cerr << "FAIL: stateless mode broke more flows ("
              << hybrid.tap_breaks << ") than stateful (" << stateful.tap_breaks
              << ")\n";
    ok = false;
  }
  if (hybrid.stateless_picks == 0) {
    std::cerr << "FAIL: no stateless picks — the fast path never engaged\n";
    ok = false;
  }

  if (!json_path.empty() && !klb::bench::write_json_file(json_path, json))
    return 1;
  if (!ok) return 1;
  std::cout << "\ngates passed (>= 5x memory at " << flows
            << " flows, zero broken affinities under graceful churn)\n";
  return 0;
}
