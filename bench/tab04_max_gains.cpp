// Table 4: maximum latency gain of KnapsackLB over each LB policy on the
// 30-DIP pool — unweighted (RR, LC, RD, P2, Azure-hash) and weighted
// (WRR, WLC, weighted random) variants.
//
// Paper: unweighted — RR 45%, LC 23%, RD 42%, P2 24%, Azure 41%;
// weighted — WRR 42%, WLC 36%, RD(w) 41%. P2 and Azure have no weights.
#include "bench_common.hpp"

using namespace klb;
using namespace klb::bench;

int main() {
  std::cout << "Table 4 reproduction: max latency gains of KnapsackLB over "
               "other policies, 30 DIPs.\n";

  const auto specs = testbed::table3_specs();
  PolicyRunOptions opt;
  opt.seed = 4;
  opt.cluster_profile = true;

  std::cout << "running klb..." << std::flush;
  const auto klb_run = run_policy(specs, "klb", opt);
  std::cout << " done (converged at " << klb_run.convergence_time.str()
            << ")\n";

  struct Row {
    std::string label;
    std::string policy;
    bool weighted;
    double paper_gain;
  };
  const std::vector<Row> rows{
      {"RR (unweighted)", "rr", false, 0.45},
      {"LC (unweighted)", "lc", false, 0.23},
      {"RD (unweighted)", "random", false, 0.42},
      {"P2 (unweighted)", "p2", false, 0.24},
      {"Azure hash", "hash", false, 0.41},
      {"WRR (weighted)", "wrr", true, 0.42},
      {"WLC (weighted)", "wlc", true, 0.36},
      {"RD (weighted)", "wrandom", true, 0.41},
  };

  testbed::Table table({"policy", "policy mean (ms)", "KLB mean (ms)",
                        "max gain", "requests improved", "paper max gain"});
  for (const auto& row : rows) {
    std::cout << "running " << row.policy << (row.weighted ? " (weighted)" : "")
              << "..." << std::flush;
    auto o = opt;
    if (row.weighted) o.static_weights = core_weights(specs);
    const auto r = run_policy(specs, row.policy, o);
    std::cout << " done\n";
    const auto g = compare_gains(r, klb_run);
    table.row({row.label, testbed::fmt(r.mean_latency_ms),
               testbed::fmt(klb_run.mean_latency_ms),
               testbed::fmt_pct(g.max_gain),
               testbed::fmt_pct(g.request_share),
               testbed::fmt_pct(row.paper_gain, 0)});
  }
  table.print();
  return 0;
}
