// Dataplane pick-path scaling: weighted Maglev vs the 5-tuple modulo hash.
//
// Two properties let the maglev policy carry 10k-DIP pools (ISSUE 2):
//   1. pick cost: one hash + one array read, O(1) in the DIP count, where
//      HashTuple re-scans the pool for usable backends on every packet;
//   2. churn disruption: removing one DIP remaps a few percent of flows,
//      where `hash % n` remaps essentially all of them (every pinned flow
//      turns into a cross-DIP move once its affinity entry ages out).
//
// Usage: bench_maglev_lookup [picks_per_size]   (default 2'000'000)
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "lb/maglev.hpp"
#include "lb/policy.hpp"
#include "testbed/report.hpp"
#include "util/rng.hpp"

namespace {

using klb::lb::BackendView;
using Clock = std::chrono::steady_clock;

std::vector<BackendView> make_views(std::size_t n, klb::util::Rng& rng) {
  std::vector<BackendView> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].addr = klb::net::IpAddr(static_cast<std::uint32_t>(0x0a800000 + i));
    // Heterogeneous weights, as the ILP would program them.
    out[i].weight_units =
        static_cast<std::int64_t>(50 + rng.uniform_int(std::uint64_t{150}));
  }
  return out;
}

klb::net::FiveTuple flow(std::uint64_t f) {
  klb::net::FiveTuple t;
  t.src_ip = klb::net::IpAddr(static_cast<std::uint32_t>(0x0a020000 + f / 50'000));
  t.dst_ip = klb::net::IpAddr{10, 0, 0, 1};
  t.src_port = static_cast<std::uint16_t>(f % 50'000);
  t.dst_port = 443;
  return t;
}

/// Picks/sec over `picks` distinct-ish flows (volatile sink defeats DCE).
double measure_rate(klb::lb::Policy& policy,
                    const std::vector<BackendView>& views,
                    std::uint64_t picks, klb::util::Rng& rng) {
  volatile std::size_t sink = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t f = 0; f < picks; ++f)
    sink = sink + policy.pick(flow(f), views, rng);
  const auto dt = std::chrono::duration<double>(Clock::now() - t0).count();
  return dt > 0 ? static_cast<double>(picks) / dt : 0.0;
}

/// Fraction of flows (not mapped to the removed DIP) that change backend
/// when one DIP leaves the pool.
double remap_fraction(klb::lb::Policy& policy, std::vector<BackendView> views,
                      klb::util::Rng& rng) {
  const std::uint64_t flows = 50'000;
  std::vector<klb::net::IpAddr> before(flows);
  for (std::uint64_t f = 0; f < flows; ++f) {
    const auto i = policy.pick(flow(f), views, rng);
    before[f] = i == klb::lb::kNoBackend ? klb::net::IpAddr{} : views[i].addr;
  }
  const auto removed = views[views.size() / 2].addr;
  views.erase(views.begin() +
              static_cast<std::ptrdiff_t>(views.size() / 2));
  policy.invalidate();

  std::uint64_t moved = 0;
  std::uint64_t eligible = 0;
  for (std::uint64_t f = 0; f < flows; ++f) {
    if (before[f] == removed) continue;
    ++eligible;
    const auto i = policy.pick(flow(f), views, rng);
    const auto now = i == klb::lb::kNoBackend ? klb::net::IpAddr{} : views[i].addr;
    if (now != before[f]) ++moved;
  }
  return eligible ? static_cast<double>(moved) / static_cast<double>(eligible)
                  : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t picks = 2'000'000;
  if (argc > 1) picks = std::stoull(argv[1]);

  klb::testbed::banner("maglev vs 5-tuple-hash dataplane pick path");
  klb::testbed::Table table({"DIPs", "hash picks/s", "maglev picks/s",
                             "speedup", "hash remap", "maglev remap"});

  klb::util::Rng rng(42);
  for (const std::size_t dips : {100u, 1'000u, 10'000u}) {
    const auto views = make_views(dips, rng);

    klb::lb::HashTuple hash;
    klb::lb::MaglevPolicy maglev(std::max<std::size_t>(65'537, dips * 13));
    // One warm pick builds maglev's table outside the timed loop; steady
    // state re-picks, not rebuilds, are the packet path being measured.
    maglev.pick(flow(0), views, rng);

    const double hash_rate = measure_rate(hash, views, picks / 10, rng);
    const double maglev_rate = measure_rate(maglev, views, picks, rng);

    klb::lb::HashTuple hash_r;
    klb::lb::MaglevPolicy maglev_r(std::max<std::size_t>(65'537, dips * 13));
    const double hash_remap = remap_fraction(hash_r, views, rng);
    const double maglev_remap = remap_fraction(maglev_r, views, rng);

    table.row({std::to_string(dips),
               klb::testbed::fmt(hash_rate / 1e6, 2) + "M",
               klb::testbed::fmt(maglev_rate / 1e6, 2) + "M",
               klb::testbed::fmt(maglev_rate / std::max(1.0, hash_rate), 1) + "x",
               klb::testbed::fmt_pct(hash_remap),
               klb::testbed::fmt_pct(maglev_remap)});
  }
  table.print();
  std::cout << "\nmaglev pick cost is flat in the DIP count (consistent-hash "
               "table lookup);\nhash remap ~100% on any membership change vs "
               "maglev's few percent.\n";
  return 0;
}
