// Shared harness for the figure/table reproduction benches: run one LB
// policy (or KnapsackLB) on a DIP pool, collect per-DIP and per-VM-type
// metrics over a measurement window, and compute the latency-gain numbers
// the paper reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "testbed/report.hpp"
#include "testbed/testbed.hpp"
#include "util/effects.hpp"

namespace klb::bench {

using namespace util::literals;

struct PolicyRunResult {
  std::string policy;
  std::vector<testbed::DipMetrics> dips;
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  std::vector<double> raw_latencies_ms;  // per request, for CDF comparisons
  bool converged = true;                 // KnapsackLB exploration finished
  util::SimTime convergence_time = util::SimTime::zero();
};

struct PolicyRunOptions {
  std::uint64_t seed = 1;
  double load_fraction = 0.70;
  util::SimTime warmup = util::SimTime::seconds(20);
  util::SimTime window = util::SimTime::seconds(30);
  util::SimTime klb_limit = util::SimTime::minutes(20);
  /// Extra settle time after exploration finishes, before the warmup:
  /// lets §4.5's capacity rescales correct any under-discovered wmax
  /// (visible as an initial infeasible-ILP fallback) before measuring.
  util::SimTime klb_settle = util::SimTime::minutes(3);
  /// Static weights for weighted baselines (normalized internally); empty
  /// keeps the MUX's equal split.
  std::vector<double> static_weights;
  /// Cluster profile (the KLB comparison benches): one-request sessions, a
  /// large client-concurrency budget, and a small accept backlog. Multiple
  /// DIPs probe over-capacity weights at once during exploration; small
  /// backlogs shed overload via 503s instead of letting a few saturated
  /// DIPs hoard every client-concurrency slot and starve the others'
  /// measurements. All policies within a bench run the same profile, so
  /// comparisons stay apples-to-apples.
  bool cluster_profile = false;
};

/// Run `policy` ("rr", "lc", "wrr", "wlc", "random", "wrandom", "p2",
/// "hash", or "klb") on the pool and measure a steady window.
inline PolicyRunResult run_policy(const std::vector<testbed::DipSpec>& specs,
                                  const std::string& policy,
                                  const PolicyRunOptions& opt) {
  PolicyRunResult result;
  result.policy = policy;

  testbed::TestbedConfig cfg;
  cfg.seed = opt.seed;
  cfg.load_fraction = opt.load_fraction;
  cfg.use_knapsacklb = (policy == "klb");
  cfg.policy = cfg.use_knapsacklb ? "wrr" : policy;
  if (opt.cluster_profile) {
    cfg.requests_per_session = 1.0;
    cfg.closed_loop_factor = 20.0;
    cfg.dip.backlog_per_core = 24;
    // Steady-state comparison windows measure the converged assignment;
    // periodic curve refreshes (validated separately by the dynamics
    // benches and tests) would churn the window.
    cfg.controller.refresh_interval = util::SimTime::zero();
  }

  testbed::Testbed bed(specs, cfg);

  if (!opt.static_weights.empty()) bed.set_static_weights(opt.static_weights);

  if (cfg.use_knapsacklb) {
    result.converged = bed.run_until_ready(opt.klb_limit);
    result.convergence_time = bed.sim().now();
    bed.run_for(opt.klb_settle);
    bed.run_for(opt.warmup);
  } else {
    bed.run_for(opt.warmup);
  }

  bed.reset_stats();
  bed.run_for(opt.window);

  result.dips = bed.metrics();
  result.mean_latency_ms = bed.overall_latency_ms();
  result.p99_latency_ms = bed.overall_p99_ms();
  result.raw_latencies_ms = bed.clients().recorder().raw_latencies_ms();
  return result;
}

/// Aggregate per-DIP metrics by VM type, preserving first-seen order.
struct TypeAgg {
  std::string type;
  double cpu = 0.0;
  double latency_ms = 0.0;
  double weight = 0.0;
  std::uint64_t requests = 0;
  int count = 0;
};

inline std::vector<TypeAgg> by_type(const PolicyRunResult& r) {
  std::vector<TypeAgg> out;
  auto find = [&](const std::string& t) -> TypeAgg& {
    for (auto& a : out)
      if (a.type == t) return a;
    out.push_back(TypeAgg{t, 0, 0, 0, 0, 0});
    return out.back();
  };
  for (const auto& d : r.dips) {
    auto& agg = find(d.vm_type);
    agg.cpu += d.cpu_utilization;
    agg.latency_ms += d.client_latency_ms * static_cast<double>(d.client_requests);
    agg.weight += d.weight;
    agg.requests += d.client_requests;
    agg.count += 1;
  }
  for (auto& a : out) {
    a.cpu /= std::max(1, a.count);
    a.latency_ms =
        a.requests > 0 ? a.latency_ms / static_cast<double>(a.requests) : 0.0;
  }
  return out;
}

/// The paper's "cuts latency by up to X% for Y% of requests": compare the
/// two latency CDFs; X = max relative improvement across matching
/// percentiles, Y = fraction of percentiles where KLB is at least 2% better.
struct GainSummary {
  double max_gain = 0.0;       // at some percentile
  double request_share = 0.0;  // fraction of requests seeing >=2% gain
  double mean_gain = 0.0;      // gain on the mean
};

inline GainSummary compare_gains(const PolicyRunResult& baseline,
                                 const PolicyRunResult& klb) {
  GainSummary g;
  if (baseline.raw_latencies_ms.empty() || klb.raw_latencies_ms.empty())
    return g;
  auto base = baseline.raw_latencies_ms;
  auto ours = klb.raw_latencies_ms;
  std::sort(base.begin(), base.end());
  std::sort(ours.begin(), ours.end());

  int improved = 0;
  const int kSteps = 1000;
  for (int i = 0; i < kSteps; ++i) {
    const double q = (i + 0.5) / kSteps;
    const double b = base[static_cast<std::size_t>(q * static_cast<double>(base.size()))];
    const double o = ours[static_cast<std::size_t>(q * static_cast<double>(ours.size()))];
    if (b <= 0.0) continue;
    const double gain = (b - o) / b;
    g.max_gain = std::max(g.max_gain, gain);
    if (gain >= 0.02) ++improved;
  }
  g.request_share = static_cast<double>(improved) / kSteps;
  if (baseline.mean_latency_ms > 0.0)
    g.mean_gain = (baseline.mean_latency_ms - klb.mean_latency_ms) /
                  baseline.mean_latency_ms;
  return g;
}

/// Print the standard per-type CPU/latency table for a set of runs.
inline void print_by_type(const std::vector<PolicyRunResult>& runs) {
  std::vector<std::string> headers{"DIP type"};
  for (const auto& r : runs) headers.push_back(r.policy + " CPU");
  for (const auto& r : runs) headers.push_back(r.policy + " lat(ms)");
  testbed::Table table(headers);

  const auto first = by_type(runs.front());
  for (std::size_t t = 0; t < first.size(); ++t) {
    std::vector<std::string> row{first[t].type};
    for (const auto& r : runs) {
      const auto agg = by_type(r);
      row.push_back(testbed::fmt_pct(agg[t].cpu));
    }
    for (const auto& r : runs) {
      const auto agg = by_type(r);
      row.push_back(testbed::fmt(agg[t].latency_ms));
    }
    table.row(row);
  }
  table.print();
  for (const auto& r : runs) {
    std::cout << r.policy << ": mean " << testbed::fmt(r.mean_latency_ms)
              << " ms, P99 " << testbed::fmt(r.p99_latency_ms) << " ms";
    if (r.policy == "klb")
      std::cout << (r.converged ? "" : "  [WARN: exploration did not finish]");
    std::cout << "\n";
  }
}

/// Weights proportional to core count (the paper's WRR/WLC baselines).
inline std::vector<double> core_weights(const std::vector<testbed::DipSpec>& specs) {
  std::vector<double> w;
  for (const auto& s : specs) w.push_back(static_cast<double>(s.vm.cores));
  return w;
}

// --- machine-readable bench results (BENCH_*.json) ---------------------------
//
// Every Release bench-smoke run in CI emits its headline numbers through
// this tiny JSON value type and commits them to the repo root, so
// BENCH_mux_hotpath.json / BENCH_fig16_churn.json track PR-over-PR
// performance. Deliberately minimal: objects keep insertion order (stable
// diffs), doubles round-trip via max_digits-ish formatting, NaN/inf
// degrade to 0 (JSON has no spelling for them).
class Json {
 public:
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }

  Json() : kind_(Kind::kNull) {}
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}  // NOLINT(google-explicit-constructor)
  Json(double v) : kind_(Kind::kNumber), num_(v) {}  // NOLINT
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}  // NOLINT
  Json(std::uint64_t v)  // NOLINT
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}       // NOLINT
  Json(unsigned v) : kind_(Kind::kInt), int_(v) {}  // NOLINT
  Json(const char* v) : kind_(Kind::kString), str_(v) {}  // NOLINT
  Json(std::string v) : kind_(Kind::kString), str_(std::move(v)) {}  // NOLINT

  /// Object member (insertion-ordered; a repeated key overwrites).
  Json& set(const std::string& key, Json value) {
    for (auto& [k, v] : members_) {
      if (k == key) {
        v = std::move(value);
        return *this;
      }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
  }
  Json& push(Json value) {
    items_.push_back(std::move(value));
    return *this;
  }

  std::string dump(int indent = 2) const {
    std::ostringstream out;
    write(out, indent, 0);
    return out.str();
  }

 private:
  enum class Kind { kNull, kBool, kInt, kNumber, kString, kObject, kArray };
  explicit Json(Kind k) : kind_(k) {}

  static void escape(std::ostream& out, const std::string& s) {
    out << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
                << "0123456789abcdef"[c & 0xf];
          } else {
            out << c;
          }
      }
    }
    out << '"';
  }

  void write(std::ostream& out, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent) *
                              static_cast<std::size_t>(depth + 1),
                          ' ');
    const std::string close_pad(
        static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
        ' ');
    switch (kind_) {
      case Kind::kNull: out << "null"; break;
      case Kind::kBool: out << (bool_ ? "true" : "false"); break;
      case Kind::kInt: out << int_; break;
      case Kind::kNumber: {
        if (!std::isfinite(num_)) {
          out << 0;
          break;
        }
        std::ostringstream num;
        num.precision(12);
        num << num_;
        out << num.str();
        break;
      }
      case Kind::kString: escape(out, str_); break;
      case Kind::kObject: {
        if (members_.empty()) {
          out << "{}";
          break;
        }
        out << "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          out << pad;
          escape(out, members_[i].first);
          out << ": ";
          members_[i].second.write(out, indent, depth + 1);
          out << (i + 1 < members_.size() ? ",\n" : "\n");
        }
        out << close_pad << "}";
        break;
      }
      case Kind::kArray: {
        if (items_.empty()) {
          out << "[]";
          break;
        }
        out << "[\n";
        for (std::size_t i = 0; i < items_.size(); ++i) {
          out << pad;
          items_[i].write(out, indent, depth + 1);
          out << (i + 1 < items_.size() ? ",\n" : "\n");
        }
        out << close_pad << "]";
        break;
      }
    }
  }

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> items_;
};

/// Build provenance stamped into every BENCH_*.json: which compiler (and
/// version) produced the numbers, under which flags and sanitizers. A
/// regression that is really a toolchain change (gcc vs clang CI lanes,
/// an -O level slip, an accidentally-sanitized binary) is then visible in
/// the result diff itself instead of sending someone bisecting the code.
inline Json build_stamp() {
  auto build = Json::object();
#if defined(__clang__)
  build.set("compiler", "clang");
  build.set("compiler_version", Json(static_cast<std::int64_t>(__clang_major__)));
#elif defined(__GNUC__)
  build.set("compiler", "gcc");
  build.set("compiler_version", Json(static_cast<std::int64_t>(__GNUC__)));
#else
  build.set("compiler", "unknown");
#endif
#ifdef __VERSION__
  build.set("compiler_banner", __VERSION__);
#endif
#ifdef KLB_CXX_FLAGS
  // Injected per bench target by CMake: the flags this binary was
  // actually built with (build type included).
  build.set("cxx_flags", KLB_CXX_FLAGS);
#endif
#ifdef NDEBUG
  build.set("assertions", false);
#else
  build.set("assertions", true);
#endif
  build.set("function_effects", KLB_HAS_FUNCTION_EFFECTS != 0);
  bool sanitized = false;
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(realtime_sanitizer)
  sanitized = true;
#endif
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  sanitized = true;
#endif
  build.set("sanitized", sanitized);
  return build;
}

/// Write `value` to `path` with a trailing newline, stamping the build
/// provenance (see build_stamp) under a top-level "build" key. Returns
/// false (with a stderr note) on I/O failure so benches can exit non-zero.
inline bool write_json_file(const std::string& path, const Json& value) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return false;
  }
  Json stamped = value;
  stamped.set("build", build_stamp());
  out << stamped.dump() << "\n";
  return static_cast<bool>(out);
}


/// The Fig. 3/4 capacity-ratio sweep: 2x DIP-HC + 1x DIP-LC, DIP-LC
/// degraded to `ratio`, fixed traffic at 80% of healthy capacity.
inline void run_capacity_sweep(const std::string& policy) {
  testbed::banner("capacity-ratio sweep, policy = " + policy);
  testbed::Table table({"capacity ratio", "DIP-LC CPU", "DIP-HC CPU",
                        "DIP-LC lat(ms)", "DIP-HC lat(ms)", "LC/HC latency"});

  for (const double ratio : {1.0, 0.9, 0.75, 0.6}) {
    PolicyRunOptions opt;
    opt.seed = 42;
    opt.load_fraction = 0.80;  // paper: ~80% CPU at ratio 100%
    const auto r =
        run_policy(testbed::three_dip_specs(1.0, 1.0, ratio), policy, opt);

    const auto& hc1 = r.dips[0];
    const auto& hc2 = r.dips[1];
    const auto& lc = r.dips[2];
    const double hc_cpu = (hc1.cpu_utilization + hc2.cpu_utilization) / 2.0;
    const double hc_lat =
        (hc1.client_latency_ms * static_cast<double>(hc1.client_requests) +
         hc2.client_latency_ms * static_cast<double>(hc2.client_requests)) /
        std::max<double>(1.0, static_cast<double>(hc1.client_requests +
                                                  hc2.client_requests));
    table.row({testbed::fmt_pct(ratio, 0), testbed::fmt_pct(lc.cpu_utilization),
               testbed::fmt_pct(hc_cpu), testbed::fmt(lc.client_latency_ms),
               testbed::fmt(hc_lat),
               testbed::fmt(hc_lat > 0 ? lc.client_latency_ms / hc_lat : 0.0) +
                   "x"});
  }
  table.print();
}

}  // namespace klb::bench

