// §6.4: comparison against the agent-based CPU-feedback method.
//
// Four same-type DIPs, one degraded to 75%. The agent-based baseline
// (weight-update rule of [18] §4.1, requiring a CPU agent on every DIP)
// iterates towards uniform CPU; KnapsackLB reaches its assignment with a
// single ILP shot once curves exist. Paper: 4 iterations vs 1.
#include "bench_common.hpp"
#include "core/agent_baseline.hpp"

using namespace klb;
using namespace klb::util::literals;

int main() {
  std::cout << "§6.4 reproduction: agent-based CPU balancing vs "
               "KnapsackLB.\n";

  const auto specs = testbed::three_dip_specs(1.0, 1.0, 0.75);
  std::vector<testbed::DipSpec> four = specs;
  four.insert(four.begin(), testbed::DipSpec{server::kDs1v2, 1.0, 0.0});

  // --- agent-based: iterate weight ~ CPU feedback ---------------------------
  int agent_iterations = 0;
  {
    testbed::TestbedConfig cfg;
    cfg.seed = 64;
    cfg.policy = "wrr";
    testbed::Testbed bed(four, cfg);
    core::AgentCpuBalancer agent;

    std::vector<double> weights(four.size(), 1.0 / four.size());
    bed.set_static_weights(weights);
    bed.run_for(15_s);

    testbed::Table table({"iteration", "DIP-1 CPU", "DIP-2 CPU", "DIP-3 CPU",
                          "DIP-4 (0.75x) CPU", "spread"});
    for (agent_iterations = 0; agent_iterations < 16; ++agent_iterations) {
      std::vector<double> utils;
      for (std::size_t i = 0; i < bed.dip_count(); ++i)
        utils.push_back(bed.dip(i).cpu_utilization());
      const auto [lo, hi] = std::minmax_element(utils.begin(), utils.end());
      table.row({std::to_string(agent_iterations),
                 testbed::fmt_pct(utils[0]), testbed::fmt_pct(utils[1]),
                 testbed::fmt_pct(utils[2]), testbed::fmt_pct(utils[3]),
                 testbed::fmt_pct(*hi - *lo)});
      if (agent.converged(utils)) break;
      weights = agent.step(weights, utils);
      bed.set_static_weights(weights);
      for (std::size_t i = 0; i < bed.dip_count(); ++i) bed.dip(i).reset_stats();
      bed.run_for(10_s);
    }
    table.print();
  }

  // --- KnapsackLB: one ILP shot after curve building -------------------------
  std::uint64_t klb_ilp_runs = 0;
  {
    testbed::TestbedConfig cfg;
    cfg.seed = 64;
    cfg.policy = "wrr";
    cfg.use_knapsacklb = true;
    cfg.requests_per_session = 1.0;
    cfg.closed_loop_factor = 20.0;
    cfg.dip.backlog_per_core = 24;
    testbed::Testbed bed(four, cfg);
    bed.run_until_ready(util::SimTime::minutes(20));
    bed.run_for(30_s);
    klb_ilp_runs = bed.controller()->ilp_runs();
    std::cout << "\nKnapsackLB: weights after ";
    for (const auto w : bed.controller()->current_weights())
      std::cout << testbed::fmt(w, 3) << " ";
    std::cout << "(" << klb_ilp_runs << " ILP run(s) since curves built)\n";
  }

  std::cout << "\nagent-based iterations to uniform CPU: " << agent_iterations
            << " (paper: 4)\nKnapsackLB: single ILP shot per §6.4 (paper: "
               "1), and no DIP agents or CPU\ncounters involved.\n";
  return 0;
}
