// Fig. 14: three 1-core DIPs at capacities 1x / 0.8x / 0.6x (noisy
// neighbors), weighted RR and LC with weights 1:1:1 vs KnapsackLB.
//
// Paper: RR/LC over-utilize DIP-0.6 (high CPU + latency) while capacity
// sits idle on DIP-1; KLB equalizes CPU across all three and cuts latency
// by up to 37% (vs RR) and 29% (vs LC).
#include "bench_common.hpp"

using namespace klb;
using namespace klb::bench;

int main() {
  std::cout << "Fig. 14 reproduction: 3-DIP pool at 1x/0.8x/0.6x capacity.\n";

  const auto specs = testbed::three_dip_specs(1.0, 0.8, 0.6);
  PolicyRunOptions opt;
  opt.seed = 14;
  opt.cluster_profile = true;
  // The paper's Fig. 14 pool runs at ~70-80% CPU under KLB: offered load
  // is 70% of *healthy* capacity = 87.5% of the degraded pool; we keep a
  // little more headroom so the latency scale stays in the paper's range.
  opt.load_fraction = 0.62;

  std::vector<PolicyRunResult> runs;
  for (const std::string policy : {"rr", "lc", "klb"}) {
    std::cout << "running " << policy << "..." << std::flush;
    runs.push_back(run_policy(specs, policy, opt));
    std::cout << " done\n";
  }

  testbed::Table table({"DIP", "RR CPU", "LC CPU", "KLB CPU", "RR lat(ms)",
                        "LC lat(ms)", "KLB lat(ms)"});
  const std::vector<std::string> names{"DIP-1", "DIP-0.8", "DIP-0.6"};
  for (std::size_t i = 0; i < names.size(); ++i) {
    table.row({names[i], testbed::fmt_pct(runs[0].dips[i].cpu_utilization),
               testbed::fmt_pct(runs[1].dips[i].cpu_utilization),
               testbed::fmt_pct(runs[2].dips[i].cpu_utilization),
               testbed::fmt(runs[0].dips[i].client_latency_ms),
               testbed::fmt(runs[1].dips[i].client_latency_ms),
               testbed::fmt(runs[2].dips[i].client_latency_ms)});
  }
  table.print();

  const auto vs_rr = compare_gains(runs[0], runs[2]);
  const auto vs_lc = compare_gains(runs[1], runs[2]);
  std::cout << "\nKLB vs RR: up to " << testbed::fmt_pct(vs_rr.max_gain)
            << " latency cut (paper: 37%)\nKLB vs LC: up to "
            << testbed::fmt_pct(vs_lc.max_gain) << " (paper: 29%)\n"
            << "KLB weights: ";
  for (const auto& d : runs[2].dips) std::cout << testbed::fmt(d.weight, 3) << " ";
  std::cout << "\n";
  return 0;
}
