// Fig. 15: weight changes when DIP-25 and DIP-26 (two 4-core DS3v2) fail.
//
// Paper: the failed DIPs' weight is NOT split equally — most of it lands
// on the remaining big DIPs (DIP-27..30, +0.066 cumulative) because they
// absorb extra traffic with the least latency increase; DS1s gained only
// +0.012 and DS2s +0.027 cumulatively. Nothing gets overloaded.
#include "bench_common.hpp"

using namespace klb;

int main() {
  std::cout << "Fig. 15 reproduction: weight adaptation on DIP failures.\n";

  testbed::TestbedConfig cfg;
  cfg.requests_per_session = 1.0;
  cfg.closed_loop_factor = 20.0;
  cfg.dip.backlog_per_core = 24;
  cfg.seed = 15;
  cfg.policy = "wrr";
  cfg.use_knapsacklb = true;
  testbed::Testbed bed(testbed::table3_specs(), cfg);
  const bool ready = bed.run_until_ready(util::SimTime::minutes(30));
  if (!ready) std::cout << "[warn] exploration did not finish in time\n";
  bed.run_for(util::SimTime::seconds(40));
  const auto before = bed.controller()->current_weights();

  std::cout << "failing DIP-25 and DIP-26 (indices 24, 25)...\n";
  bed.dip(24).set_alive(false);
  bed.dip(25).set_alive(false);
  bed.run_for(util::SimTime::seconds(60));
  const auto after = bed.controller()->current_weights();
  std::cout << "failures detected: " << bed.controller()->failures_detected()
            << "\n";

  testbed::Table table({"group", "weight before", "weight after", "change"});
  struct Group {
    std::string name;
    std::size_t lo, hi;  // [lo, hi)
  };
  for (const auto& g :
       std::vector<Group>{{"DIP-1..16 (DS1)", 0, 16},
                          {"DIP-17..24 (DS2)", 16, 24},
                          {"DIP-25,26 (failed)", 24, 26},
                          {"DIP-27,28 (DS3)", 26, 28},
                          {"DIP-29,30 (F8)", 28, 30}}) {
    double b = 0.0;
    double a = 0.0;
    for (std::size_t i = g.lo; i < g.hi; ++i) {
      b += before[i];
      a += after[i];
    }
    table.row({g.name, testbed::fmt(b, 3), testbed::fmt(a, 3),
               (a >= b ? "+" : "") + testbed::fmt(a - b, 3)});
  }
  table.print();
  std::cout << "\nPaper: failed weight went mostly to the high-capacity "
               "DIPs (27-30: +0.066),\nsmall DIPs gained little (DS1 "
               "+0.012, DS2 +0.027): latency-informed, not equal.\n";
  return 0;
}
