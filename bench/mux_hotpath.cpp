// Multi-threaded MUX hot-path bench (ISSUE 5 + ISSUE 6): drives the real
// Mux::handle_request/handle_fin packet path from 1/2/4 worker threads and
// reports picks/sec, comparing the sharded FlowTable (+ per-shard flow
// cache) against the old monolithic single-map design (1 shard, no cache —
// every packet behind one lock).
//
// Workload: each thread owns a disjoint flow space; per round, each flow
// opens (policy pick / flow-cache pick), sends `requests_per_flow - 1`
// pinned requests (affinity hits), and FINs. Rounds >= 2 make reconnecting
// tuples exercise the flow cache. The fabric runs in blackhole mode (the
// event queue is single-threaded).
//
// --churn (ISSUE 6) additionally measures pool-generation publication under
// fire: a committer thread applies full PoolPrograms (rotated weights) and
// enable/disable flips at a fixed cadence while the worker threads sustain
// traffic. Each phase runs twice per thread count — once with the committer
// idle (the "before the generation switch" stable baseline) and once with
// it committing — and verifies, beyond counter conservation: zero
// no-backend drops, every retired generation reclaimed (retired ==
// published - 1, nothing pending), and the epoch floor caught up (no
// reader left pinned). In --short mode it gates programs/s >= 100 and
// churn throughput >= 0.9x the stable baseline at 2+ threads — at worker
// counts that leave the committer its own core (skipped entirely on
// single-core machines). In churn mode these gates replace the stable
// scaling gate, keeping the mode meaningful under TSan.
//
// Always verifies counter conservation after every run — with concurrent
// shards, a lost update shows up as a forwarded/connection/affinity
// mismatch — and exits non-zero on violation. In --short mode (the CI
// smoke) it additionally fails if multi-threaded throughput on the sharded
// table regresses below 0.9x the single-threaded baseline (skipped on
// single-core machines, where extra threads cannot help; like
// bench_fleet_multivip, the headline scaling needs real cores).
//
// --json PATH writes every measured number as BENCH-style JSON (see
// bench_common.hpp) for the CI perf trajectory.
//
// Usage: bench_mux_hotpath [--short] [--churn] [--json PATH]
//                          [flows_per_thread] [requests_per_flow]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "lb/maglev.hpp"
#include "lb/mux.hpp"
#include "lb/policy.hpp"
#include "lb/pool_generation.hpp"
#include "lb/pool_program.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "testbed/report.hpp"
#include "util/weight.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kDips = 64;
const klb::net::IpAddr kVip{10, 0, 0, 1};

klb::net::FiveTuple flow_tuple(unsigned thread, std::uint64_t flow) {
  klb::net::FiveTuple t;
  t.src_ip = klb::net::IpAddr(
      static_cast<std::uint32_t>(0x0a020000 + (thread << 12) + flow / 50'000));
  t.dst_ip = kVip;
  t.src_port = static_cast<std::uint16_t>(10'000 + flow % 50'000);
  t.dst_port = 80;
  return t;
}

struct RunResult {
  double rate = 0.0;  // handled requests (picks) per second, all threads
  std::uint64_t cache_hits = 0;
  bool ok = true;
};

RunResult run_one(std::size_t shards, std::size_t cache_slots,
                  unsigned threads, std::uint64_t flows,
                  std::uint64_t requests_per_flow, std::uint64_t rounds) {
  klb::sim::Simulation sim(7);
  klb::net::Network net(sim);
  net.set_blackhole(true);  // workers must not touch the event queue
  klb::lb::FlowTableConfig flow_cfg{shards, cache_slots};
  // The drive's concurrent-flow peak is known up front; the hint
  // pre-reserves the shard maps so no timed round pays for a rehash.
  flow_cfg.expected_flows = static_cast<std::size_t>(threads) * flows;
  klb::lb::Mux mux(net, kVip, klb::lb::make_policy("maglev"),
                   /*attach_to_vip=*/true, flow_cfg);
  klb::lb::PoolProgram pool(1);
  for (std::size_t d = 0; d < kDips; ++d)
    pool.add(klb::net::IpAddr(static_cast<std::uint32_t>(0x0a010000 + d)),
             klb::util::kWeightScale / kDips);
  mux.apply_program(pool);

  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) {
      }
      klb::net::Message msg;
      for (std::uint64_t r = 0; r < rounds; ++r) {
        for (std::uint64_t f = 0; f < flows; ++f) {
          msg.tuple = flow_tuple(w, f);
          msg.type = klb::net::MsgType::kHttpRequest;
          for (std::uint64_t q = 0; q < requests_per_flow; ++q)
            mux.on_message(msg);
          msg.type = klb::net::MsgType::kFin;
          mux.on_message(msg);
        }
      }
    });
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto dt = std::chrono::duration<double>(Clock::now() - t0).count();

  RunResult res;
  const auto expect_requests =
      static_cast<std::uint64_t>(threads) * flows * requests_per_flow * rounds;
  const auto expect_conns =
      static_cast<std::uint64_t>(threads) * flows * rounds;
  res.rate = dt > 0 ? static_cast<double>(expect_requests) / dt : 0.0;
  res.cache_hits = mux.flow_table().stats().cache_hits;

  // Counter conservation: with concurrent shards, any lost update or
  // leaked pin breaks one of these exactly.
  std::uint64_t conns = 0, active = 0;
  for (std::size_t d = 0; d < kDips; ++d) {
    conns += mux.new_connections(d);
    active += mux.active_connections(d);
  }
  auto check = [&res](bool cond, const std::string& what) {
    if (!cond) {
      std::cerr << "INVARIANT VIOLATED: " << what << "\n";
      res.ok = false;
    }
  };
  check(mux.total_forwarded() == expect_requests,
        "total_forwarded == requests sent (" +
            std::to_string(mux.total_forwarded()) + " vs " +
            std::to_string(expect_requests) + ")");
  check(conns == expect_conns, "new connections == flows opened (" +
                                   std::to_string(conns) + " vs " +
                                   std::to_string(expect_conns) + ")");
  check(active == 0, "no active connections after all FINs (" +
                         std::to_string(active) + " left)");
  check(mux.affinity_size() == 0, "affinity empty after all FINs (" +
                                      std::to_string(mux.affinity_size()) +
                                      " left)");
  check(mux.dangling_affinity_count() == 0, "no dangling affinity entries");
  check(mux.no_backend_drops() == 0, "no refused connections");
  return res;
}

RunResult best_of(int reps, std::size_t shards, std::size_t cache_slots,
                  unsigned threads, std::uint64_t flows,
                  std::uint64_t requests_per_flow, std::uint64_t rounds) {
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    const auto r =
        run_one(shards, cache_slots, threads, flows, requests_per_flow, rounds);
    if (!r.ok) return r;
    if (r.rate > best.rate) best = r;
  }
  return best;
}

// --- batch phase (ISSUE 9): handle_batch amortization ------------------------

/// Terminates bench flows like a DIP would: counts deliveries.
struct SinkNode final : klb::net::Node {
  std::uint64_t received = 0;
  void on_message(const klb::net::Message&) override { ++received; }
  void on_batch(const klb::net::Message* const*, std::size_t n) override {
    received += n;
  }
};

// Drives a prebuilt stream through Mux::handle_batch in bursts of `batch`
// messages — through the REAL fabric (no blackhole): every forward is a
// latency draw plus an event on the queue, delivered to a per-DIP sink.
// That is the full per-packet path a Testbed run pays, and it is exactly
// what the batch path amortizes: one epoch pin and one flow-shard lock
// per run on the MUX side, then one fabric event per destination group
// instead of one per packet (send_burst). One round interleaves every
// flow's requests round-robin — a burst spans many flows and shards —
// then closes every flow with a FIN sweep; the event queue is drained
// inside the timed region (delivery cost is part of the path). batch == 1
// is the scalar baseline through the same entry point. Single-threaded by
// construction (the event queue is), which also makes the 2x gate
// meaningful on any host, CI's single-core runners included.
RunResult run_batch_one(std::size_t batch, std::uint64_t flows,
                        std::uint64_t requests_per_flow,
                        std::uint64_t rounds) {
  // 16 DIPs (not the sweep's 64): a rack-scale pool where a 32-packet
  // burst lands ~2 packets per destination, so send_burst has runs to
  // coalesce — with 64 DIPs nearly every packet in a burst is a distinct
  // destination and the fabric-side amortization can't show.
  constexpr std::size_t kBatchDips = 16;
  klb::sim::Simulation sim(7);
  klb::net::Network net(sim);
  klb::lb::FlowTableConfig flow_cfg{};  // production sharded default
  flow_cfg.expected_flows = static_cast<std::size_t>(flows);
  klb::lb::Mux mux(net, kVip, klb::lb::make_policy("maglev"),
                   /*attach_to_vip=*/true, flow_cfg);
  klb::lb::PoolProgram pool(1);
  for (std::size_t d = 0; d < kBatchDips; ++d)
    pool.add(klb::net::IpAddr(static_cast<std::uint32_t>(0x0a010000 + d)),
             klb::util::kWeightScale / kBatchDips);
  mux.apply_program(pool);
  std::vector<SinkNode> sinks(kBatchDips);
  for (std::size_t d = 0; d < kBatchDips; ++d)
    net.attach(klb::net::IpAddr(static_cast<std::uint32_t>(0x0a010000 + d)),
               &sinks[d]);

  // The stream is prebuilt so the timed region measures the packet path,
  // not message construction.
  std::vector<klb::net::Message> stream;
  stream.reserve(flows * (requests_per_flow + 1));
  for (std::uint64_t q = 0; q < requests_per_flow; ++q)
    for (std::uint64_t f = 0; f < flows; ++f) {
      klb::net::Message m;
      m.type = klb::net::MsgType::kHttpRequest;
      m.tuple = flow_tuple(0, f);
      stream.push_back(m);
    }
  for (std::uint64_t f = 0; f < flows; ++f) {
    klb::net::Message m;
    m.type = klb::net::MsgType::kFin;
    m.tuple = flow_tuple(0, f);
    stream.push_back(m);
  }
  std::vector<const klb::net::Message*> ptrs;
  ptrs.reserve(stream.size());
  for (const auto& m : stream) ptrs.push_back(&m);

  const auto t0 = Clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < ptrs.size(); i += batch)
      mux.handle_batch(ptrs.data() + i, std::min(batch, ptrs.size() - i));
    sim.run_all();  // deliver this round's forwards before the flows reopen
  }
  const auto dt = std::chrono::duration<double>(Clock::now() - t0).count();

  RunResult res;
  const auto expect_requests = flows * requests_per_flow * rounds;
  const auto expect_conns = flows * rounds;
  res.rate = dt > 0 ? static_cast<double>(expect_requests) / dt : 0.0;
  res.cache_hits = mux.flow_table().stats().cache_hits;

  std::uint64_t conns = 0, active = 0, delivered = 0;
  for (std::size_t d = 0; d < kBatchDips; ++d) {
    conns += mux.new_connections(d);
    active += mux.active_connections(d);
    delivered += sinks[d].received;
  }
  auto check = [&res](bool cond, const std::string& what) {
    if (!cond) {
      std::cerr << "INVARIANT VIOLATED: " << what << "\n";
      res.ok = false;
    }
  };
  check(mux.total_forwarded() == expect_requests,
        "batch: total_forwarded == requests sent (" +
            std::to_string(mux.total_forwarded()) + " vs " +
            std::to_string(expect_requests) + ")");
  // End-to-end conservation through the fabric: every forwarded request
  // and every pinned flow's FIN reached a sink — burst coalescing loses
  // nothing.
  check(delivered == expect_requests + expect_conns,
        "batch: sinks received every request + FIN (" +
            std::to_string(delivered) + " vs " +
            std::to_string(expect_requests + expect_conns) + ")");
  check(net.messages_unreachable() == 0, "batch: no unreachable drops");
  check(conns == expect_conns, "batch: new connections == flows opened (" +
                                   std::to_string(conns) + " vs " +
                                   std::to_string(expect_conns) + ")");
  check(active == 0, "batch: no active connections after all FINs (" +
                         std::to_string(active) + " left)");
  check(mux.affinity_size() == 0, "batch: affinity empty after all FINs (" +
                                      std::to_string(mux.affinity_size()) +
                                      " left)");
  check(mux.dangling_affinity_count() == 0,
        "batch: no dangling affinity entries");
  check(mux.no_backend_drops() == 0, "batch: zero drops");
  return res;
}

RunResult best_of_batch(int reps, std::size_t batch, std::uint64_t flows,
                        std::uint64_t requests_per_flow,
                        std::uint64_t rounds) {
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    const auto r = run_batch_one(batch, flows, requests_per_flow, rounds);
    if (!r.ok) return r;
    if (r.rate > best.rate) best = r;
  }
  return best;
}

// --- churn phase (ISSUE 6): commits racing the packet path -------------------

struct ChurnResult {
  double rate = 0.0;              // picks/sec across all worker threads
  double programs_per_sec = 0.0;  // committed PoolPrograms/sec (0 if idle)
  std::uint64_t generations_published = 0;
  std::uint64_t generations_retired = 0;
  bool ok = true;
};

// Drives `threads` workers over their flow spaces for ~duration_sec wall
// seconds. With `commit`, a committer thread concurrently applies a full
// PoolProgram (same 64 members, rotated weights) every ~1ms and flips one
// backend's enable bit every 4th commit — every commit publishes a fresh
// immutable PoolGeneration and retires the old one through the epoch
// domain. Membership is stable, so counter conservation stays exact even
// though the generation under the packet path changes hundreds of times
// per second.
ChurnResult run_churn_phase(unsigned threads, std::uint64_t flows,
                            std::uint64_t requests_per_flow,
                            double duration_sec, bool commit) {
  klb::sim::Simulation sim(7);
  klb::net::Network net(sim);
  net.set_blackhole(true);
  const auto live0 = klb::lb::PoolGeneration::live_count();

  ChurnResult res;
  auto check = [&res](bool cond, const std::string& what) {
    if (!cond) {
      std::cerr << "INVARIANT VIOLATED: " << what << "\n";
      res.ok = false;
    }
  };
  {
    // A smaller maglev table than the production default keeps each
    // commit's rebuild cheap enough to sustain hundreds of programs/sec
    // even under TSan; pick cost is table-size independent.
    klb::lb::Mux mux(net, kVip, std::make_unique<klb::lb::MaglevPolicy>(4099),
                     /*attach_to_vip=*/true, klb::lb::FlowTableConfig{});
    auto make_program = [&mux](std::uint64_t rotation) {
      klb::lb::PoolProgram p(mux.issue_version());
      for (std::size_t d = 0; d < kDips; ++d) {
        const auto units = static_cast<std::int64_t>(
            klb::util::kWeightScale / kDips + ((d + rotation) % 8) * 16);
        p.add(klb::net::IpAddr(static_cast<std::uint32_t>(0x0a010000 + d)),
              units);
      }
      return p;
    };
    mux.apply_program(make_program(0));

    std::atomic<bool> go{false};
    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> rounds(threads, 0);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        while (!go.load(std::memory_order_acquire)) {
        }
        klb::net::Message msg;
        do {
          for (std::uint64_t f = 0; f < flows; ++f) {
            msg.tuple = flow_tuple(w, f);
            msg.type = klb::net::MsgType::kHttpRequest;
            for (std::uint64_t q = 0; q < requests_per_flow; ++q)
              mux.on_message(msg);
            msg.type = klb::net::MsgType::kFin;
            mux.on_message(msg);
          }
          ++rounds[w];
        } while (!stop.load(std::memory_order_acquire));
      });
    }

    std::uint64_t commits = 1;  // the initial program above
    std::thread committer;
    if (commit) {
      committer = std::thread([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        std::size_t disabled = kDips;  // kDips = none disabled
        while (!stop.load(std::memory_order_acquire)) {
          mux.apply_program(make_program(commits));
          ++commits;
          if (commits % 4 == 0) {
            // At most one backend disabled at a time; ids are stable, so
            // the shared per-backend counters keep conservation exact.
            if (disabled < kDips) mux.set_backend_enabled(disabled, true);
            disabled = (commits / 4) % kDips;
            mux.set_backend_enabled(disabled, false);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (disabled < kDips) mux.set_backend_enabled(disabled, true);
      });
    }

    const auto t0 = Clock::now();
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::duration<double>(duration_sec));
    stop.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    if (committer.joinable()) committer.join();
    const auto dt = std::chrono::duration<double>(Clock::now() - t0).count();

    // No reader is pinned anymore: one poll must drain the retired list.
    mux.poll();

    std::uint64_t total_rounds = 0;
    for (const auto r : rounds) total_rounds += r;
    const std::uint64_t sent = total_rounds * flows * requests_per_flow;
    const std::uint64_t opened = total_rounds * flows;
    res.rate = dt > 0 ? static_cast<double>(sent) / dt : 0.0;
    res.programs_per_sec =
        commit && dt > 0 ? static_cast<double>(commits) / dt : 0.0;
    res.generations_published = mux.generations_published();
    res.generations_retired = mux.generations_retired();

    std::uint64_t conns = 0, active = 0;
    for (std::size_t d = 0; d < kDips; ++d) {
      conns += mux.new_connections(d);
      active += mux.active_connections(d);
    }
    check(mux.total_forwarded() == sent,
          "churn: total_forwarded == requests sent (" +
              std::to_string(mux.total_forwarded()) + " vs " +
              std::to_string(sent) + ")");
    check(conns == opened, "churn: new connections == flows opened (" +
                               std::to_string(conns) + " vs " +
                               std::to_string(opened) + ")");
    check(active == 0, "churn: no active connections after all FINs (" +
                           std::to_string(active) + " left)");
    check(mux.affinity_size() == 0, "churn: affinity empty after all FINs");
    check(mux.dangling_affinity_count() == 0,
          "churn: no dangling affinity entries");
    check(mux.no_backend_drops() == 0,
          "churn: zero no-backend drops under churn (" +
              std::to_string(mux.no_backend_drops()) + " dropped)");
    // Generation lifecycle: everything retired was reclaimed (no reader
    // left pinned, no generation leaked), and only the current one lives.
    check(mux.pending_retired_generations() == 0,
          "churn: retired generations all reclaimed after poll (" +
              std::to_string(mux.pending_retired_generations()) +
              " pending)");
    check(mux.generations_retired() == mux.generations_published() - 1,
          "churn: generations retired == published - 1 (" +
              std::to_string(mux.generations_retired()) + " vs " +
              std::to_string(mux.generations_published()) + " published)");
    check(mux.oldest_live_epoch() == mux.current_epoch(),
          "churn: no reader pinned below the current epoch");
    check(mux.debug_check_generation(),
          "churn: current generation self-check");
    check(klb::lb::PoolGeneration::live_count() == live0 + 1,
          "churn: exactly the current generation object alive (" +
              std::to_string(klb::lb::PoolGeneration::live_count() - live0) +
              ")");
  }
  // Mux destroyed: its last generation must go too — a use-after-retire
  // bug would show up here as a leaked (or double-freed) snapshot.
  check(klb::lb::PoolGeneration::live_count() == live0,
        "churn: all generations destroyed with the Mux");
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  bool churn_mode = false;
  bool batch_mode = false;
  std::string json_path;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::uint64_t flows = 20'000;
  std::uint64_t requests_per_flow = 4;
  std::vector<std::uint64_t> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto& a = args[i];
    if (a == "--short") {
      short_mode = true;
    } else if (a == "--churn") {
      churn_mode = true;
    } else if (a == "--batch") {
      batch_mode = true;
    } else if (a == "--json" && i + 1 < args.size()) {
      json_path = args[++i];
    } else if (!a.empty() && a.size() <= 18 &&
               a.find_first_not_of("0123456789") == std::string::npos) {
      positional.push_back(std::stoull(a));
    } else {
      std::cerr << "unknown argument '" << a << "'\nusage: bench_mux_hotpath"
                << " [--short] [--churn] [--batch] [--json PATH]"
                << " [flows_per_thread] [requests_per_flow]\n";
      return 2;
    }
  }
  if (!positional.empty()) flows = positional[0];
  if (positional.size() > 1) requests_per_flow = positional[1];
  if (short_mode) flows = std::min<std::uint64_t>(flows, 8'000);
  const std::uint64_t rounds = 3;
  const int reps = short_mode ? 3 : 2;

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const klb::lb::FlowTableConfig sharded{};  // production default
  std::vector<unsigned> thread_counts{1, 2, 4};
  if (short_mode) {
    thread_counts = {1};
    if (hw >= 2) thread_counts.push_back(std::min(4u, hw));
  }

  klb::testbed::banner("MUX hot path: sharded flow table vs single map (" +
                       std::to_string(kDips) + " DIPs, maglev, " +
                       std::to_string(requests_per_flow) + " req/flow)");
  std::cout << "hardware threads: " << hw << ", flow-table shards: "
            << klb::lb::FlowTable(sharded).shard_count() << "\n\n";

  auto json = klb::bench::Json::object();
  json.set("bench", "mux_hotpath")
      .set("mode", short_mode ? "short" : "full")
      .set("hardware_threads", hw)
      .set("dips", kDips)
      .set("flows_per_thread", flows)
      .set("requests_per_flow", requests_per_flow);
  auto json_stable = klb::bench::Json::array();

  klb::testbed::Table table({"threads", "single-map picks/s", "sharded picks/s",
                             "sharded/single", "scaling vs 1T"});
  bool ok = true;
  double sharded_1t = 0.0, sharded_multi = 0.0;
  for (const auto t : thread_counts) {
    const auto base =
        best_of(reps, 1, 0, t, flows, requests_per_flow, rounds);
    const auto shard = best_of(reps, sharded.shard_count,
                               sharded.cache_slots_per_shard, t, flows,
                               requests_per_flow, rounds);
    ok = ok && base.ok && shard.ok;
    if (t == 1) sharded_1t = shard.rate;
    if (t > 1) sharded_multi = std::max(sharded_multi, shard.rate);
    table.row({std::to_string(t),
               klb::testbed::fmt(base.rate / 1e6, 2) + "M",
               klb::testbed::fmt(shard.rate / 1e6, 2) + "M",
               klb::testbed::fmt(shard.rate / std::max(1.0, base.rate), 2) +
                   "x",
               klb::testbed::fmt(shard.rate / std::max(1.0, sharded_1t), 2) +
                   "x"});
    json_stable.push(klb::bench::Json::object()
                         .set("threads", t)
                         .set("single_map_picks_per_sec", base.rate)
                         .set("sharded_picks_per_sec", shard.rate)
                         .set("cache_hits", shard.cache_hits));
  }
  table.print();
  std::cout << "\nAffinity hits and cached picks bypass the pick lock; only "
               "fresh policy picks serialize.\n";
  json.set("stable", std::move(json_stable));

  // --- batch phase (ISSUE 9): burst size sweep through handle_batch -------
  bool batch_gate_fail = false;
  if (batch_mode) {
    // Single-threaded end-to-end sweep through the real fabric (the event
    // queue is single-threaded), so the ratio is the amortization of the
    // per-packet fixed costs — epoch pin, generation load, shard/pick
    // locks, and one fabric event per destination run instead of one per
    // packet — and the gate is meaningful on any host, 1-core CI included.
    const auto batch_flows = std::min<std::uint64_t>(flows, 8'192);
    const std::vector<std::size_t> batch_sizes{1, 8, 32, 64};
    std::cout << "\n";
    klb::testbed::banner(
        "Batched packet path: handle_batch burst-size sweep through the "
        "fabric (" +
        std::to_string(batch_flows) + " flows, " +
        std::to_string(requests_per_flow) + " req/flow, 16 DIPs)");
    klb::testbed::Table batch_table({"batch", "pkts/s", "vs batch=1"});
    auto json_batch = klb::bench::Json::array();
    double rate1 = 0.0, rate32 = 0.0;
    for (const auto b : batch_sizes) {
      const auto r =
          best_of_batch(reps, b, batch_flows, requests_per_flow, rounds);
      ok = ok && r.ok;
      if (b == 1) rate1 = r.rate;
      if (b == 32) rate32 = r.rate;
      batch_table.row(
          {std::to_string(b), klb::testbed::fmt(r.rate / 1e6, 2) + "M",
           klb::testbed::fmt(r.rate / std::max(1.0, rate1), 2) + "x"});
      json_batch.push(klb::bench::Json::object()
                          .set("batch", b)
                          .set("picks_per_sec", r.rate)
                          .set("cache_hits", r.cache_hits));
    }
    // The headline gate: a 32-packet burst must at least double scalar
    // throughput on the same packets, or the batch path has stopped
    // amortizing.
    if (short_mode && rate32 < 2.0 * rate1) {
      std::cerr << "FAIL: batch=32 (" << rate32 / 1e6
                << "M/s) below 2x the batch=1 baseline (" << rate1 / 1e6
                << "M/s)\n";
      batch_gate_fail = true;
    }
    batch_table.print();
    std::cout << "\nOne epoch pin, one generation load, one lock per "
                 "flow-shard run, and one fabric event per destination "
                 "group per burst; batch=1 is the scalar path through the "
                 "same entry point.\n";
    if (short_mode && !batch_gate_fail) {
      std::cout << "batch gate passed (batch=32 >= 2x batch=1)\n";
    }
    json.set("batch", std::move(json_batch));
  }

  // --- churn phase: generation publication racing the packet path ---------
  bool churn_gate_fail = false;
  int churn_gates_checked = 0;
  if (churn_mode) {
    const double duration_sec = short_mode ? 1.0 : 2.5;
    const auto churn_flows = std::min<std::uint64_t>(flows, 2'000);
    // The committer is a real thread: gates only fire at worker counts
    // that leave it a core (t + 1 <= hw), so an oversubscribed runner
    // measures timesharing, not a regression, and is exempt.
    std::vector<unsigned> churn_counts{1, 2, 4};
    if (short_mode) {
      churn_counts = {1};
      if (hw >= 2) churn_counts.push_back(2);
    }
    std::cout << "\n";
    klb::testbed::banner(
        "Pool churn: PoolPrograms committing while traffic flows (" +
        std::to_string(churn_flows) + " flows/thread, ~" +
        klb::testbed::fmt(duration_sec, 1) + "s per phase)");
    klb::testbed::Table churn_table({"threads", "stable picks/s",
                                     "churn picks/s", "churn/stable",
                                     "programs/s", "generations"});
    auto json_churn = klb::bench::Json::array();
    for (const auto t : churn_counts) {
      const auto stable = run_churn_phase(t, churn_flows, requests_per_flow,
                                          duration_sec, /*commit=*/false);
      const auto churned = run_churn_phase(t, churn_flows, requests_per_flow,
                                           duration_sec, /*commit=*/true);
      ok = ok && stable.ok && churned.ok;
      const double ratio = churned.rate / std::max(1.0, stable.rate);
      churn_table.row({std::to_string(t),
                       klb::testbed::fmt(stable.rate / 1e6, 2) + "M",
                       klb::testbed::fmt(churned.rate / 1e6, 2) + "M",
                       klb::testbed::fmt(ratio, 2) + "x",
                       klb::testbed::fmt(churned.programs_per_sec, 0),
                       std::to_string(churned.generations_published)});
      json_churn.push(
          klb::bench::Json::object()
              .set("threads", t)
              .set("stable_picks_per_sec", stable.rate)
              .set("churn_picks_per_sec", churned.rate)
              .set("churn_over_stable", ratio)
              .set("programs_per_sec", churned.programs_per_sec)
              .set("generations_published", churned.generations_published)
              .set("generations_retired", churned.generations_retired));
      if (short_mode && hw >= 2 && t + 1 <= hw) {
        ++churn_gates_checked;
        if (churned.programs_per_sec < 100.0) {
          std::cerr << "FAIL: committed only "
                    << klb::testbed::fmt(churned.programs_per_sec, 0)
                    << " programs/s under traffic (gate: >= 100/s)\n";
          churn_gate_fail = true;
        }
        if (t >= 2 && ratio < 0.9) {
          std::cerr << "FAIL: churn throughput at " << t << " threads ("
                    << churned.rate / 1e6 << "M/s) regressed below 0.9x the "
                    << "stable-pool baseline (" << stable.rate / 1e6
                    << "M/s)\n";
          churn_gate_fail = true;
        }
      }
    }
    churn_table.print();
    std::cout << "\nEvery commit publishes an immutable generation; workers "
                 "pin it epoch-style and never block on the committer.\n";
    if (churn_gates_checked > 0 && !churn_gate_fail) {
      std::cout << "churn gates passed (>= 100 programs/s; churn >= 0.9x "
                   "stable at 2+ threads with a spare core)\n";
    } else if (short_mode && churn_gates_checked == 0) {
      std::cout << "churn gates skipped (needs a spare core for the "
                   "committer)\n";
    }
    json.set("churn", std::move(json_churn));
  }

  if (!json_path.empty() &&
      !klb::bench::write_json_file(json_path, json))
    return 1;

  if (!ok) {
    std::cerr << "FAIL: hot-path counter invariants violated\n";
    return 1;
  }
  if (churn_gate_fail || batch_gate_fail) return 1;
  if (churn_mode) {
    // In churn mode the churn gates carry the regression question; the
    // stable single-vs-multi gate is skipped so the mode stays meaningful
    // under sanitizer instrumentation (where raw scaling is distorted but
    // same-instrumentation churn/stable ratios are not).
    return 0;
  }
  if (short_mode && hw >= 2 && sharded_multi > 0.0) {
    if (sharded_multi < 0.9 * sharded_1t) {
      std::cerr << "FAIL: multi-threaded sharded throughput ("
                << sharded_multi / 1e6 << "M/s) regressed below 0.9x the "
                << "single-threaded baseline (" << sharded_1t / 1e6
                << "M/s)\n";
      return 1;
    }
    std::cout << "short-mode scaling gate passed ("
              << klb::testbed::fmt(sharded_multi / sharded_1t, 2)
              << "x at " << thread_counts.back() << " threads)\n";
  } else if (short_mode) {
    std::cout << "short-mode scaling gate skipped (single-core machine)\n";
  }
  return 0;
}
