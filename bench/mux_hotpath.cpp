// Multi-threaded MUX hot-path bench (ISSUE 5): drives the real
// Mux::handle_request/handle_fin packet path from 1/2/4 worker threads and
// reports picks/sec, comparing the sharded FlowTable (+ per-shard flow
// cache) against the old monolithic single-map design (1 shard, no cache —
// every packet behind one lock).
//
// Workload: each thread owns a disjoint flow space; per round, each flow
// opens (policy pick / flow-cache pick), sends `requests_per_flow - 1`
// pinned requests (affinity hits), and FINs. Rounds >= 2 make reconnecting
// tuples exercise the flow cache. The fabric runs in blackhole mode (the
// event queue is single-threaded); the pool is membership-stable, per the
// Mux threading contract.
//
// Always verifies counter conservation after every run — with concurrent
// shards, a lost update shows up as a forwarded/connection/affinity
// mismatch — and exits non-zero on violation. In --short mode (the CI
// smoke) it additionally fails if multi-threaded throughput on the sharded
// table regresses below 0.9x the single-threaded baseline (skipped on
// single-core machines, where extra threads cannot help; like
// bench_fleet_multivip, the headline scaling needs real cores).
//
// Usage: bench_mux_hotpath [--short] [flows_per_thread] [requests_per_flow]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "lb/mux.hpp"
#include "lb/policy.hpp"
#include "lb/pool_program.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "testbed/report.hpp"
#include "util/weight.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kDips = 64;
const klb::net::IpAddr kVip{10, 0, 0, 1};

klb::net::FiveTuple flow_tuple(unsigned thread, std::uint64_t flow) {
  klb::net::FiveTuple t;
  t.src_ip = klb::net::IpAddr(
      static_cast<std::uint32_t>(0x0a020000 + (thread << 12) + flow / 50'000));
  t.dst_ip = kVip;
  t.src_port = static_cast<std::uint16_t>(10'000 + flow % 50'000);
  t.dst_port = 80;
  return t;
}

struct RunResult {
  double rate = 0.0;  // handled requests (picks) per second, all threads
  std::uint64_t cache_hits = 0;
  bool ok = true;
};

RunResult run_one(std::size_t shards, std::size_t cache_slots,
                  unsigned threads, std::uint64_t flows,
                  std::uint64_t requests_per_flow, std::uint64_t rounds) {
  klb::sim::Simulation sim(7);
  klb::net::Network net(sim);
  net.set_blackhole(true);  // workers must not touch the event queue
  klb::lb::Mux mux(net, kVip, klb::lb::make_policy("maglev"),
                   /*attach_to_vip=*/true,
                   klb::lb::FlowTableConfig{shards, cache_slots});
  klb::lb::PoolProgram pool(1);
  for (std::size_t d = 0; d < kDips; ++d)
    pool.add(klb::net::IpAddr(static_cast<std::uint32_t>(0x0a010000 + d)),
             klb::util::kWeightScale / kDips);
  mux.apply_program(pool);

  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) {
      }
      klb::net::Message msg;
      for (std::uint64_t r = 0; r < rounds; ++r) {
        for (std::uint64_t f = 0; f < flows; ++f) {
          msg.tuple = flow_tuple(w, f);
          msg.type = klb::net::MsgType::kHttpRequest;
          for (std::uint64_t q = 0; q < requests_per_flow; ++q)
            mux.on_message(msg);
          msg.type = klb::net::MsgType::kFin;
          mux.on_message(msg);
        }
      }
    });
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto dt = std::chrono::duration<double>(Clock::now() - t0).count();

  RunResult res;
  const auto expect_requests =
      static_cast<std::uint64_t>(threads) * flows * requests_per_flow * rounds;
  const auto expect_conns =
      static_cast<std::uint64_t>(threads) * flows * rounds;
  res.rate = dt > 0 ? static_cast<double>(expect_requests) / dt : 0.0;
  res.cache_hits = mux.flow_table().stats().cache_hits;

  // Counter conservation: with concurrent shards, any lost update or
  // leaked pin breaks one of these exactly.
  std::uint64_t conns = 0, active = 0;
  for (std::size_t d = 0; d < kDips; ++d) {
    conns += mux.new_connections(d);
    active += mux.active_connections(d);
  }
  auto check = [&res](bool cond, const std::string& what) {
    if (!cond) {
      std::cerr << "INVARIANT VIOLATED: " << what << "\n";
      res.ok = false;
    }
  };
  check(mux.total_forwarded() == expect_requests,
        "total_forwarded == requests sent (" +
            std::to_string(mux.total_forwarded()) + " vs " +
            std::to_string(expect_requests) + ")");
  check(conns == expect_conns, "new connections == flows opened (" +
                                   std::to_string(conns) + " vs " +
                                   std::to_string(expect_conns) + ")");
  check(active == 0, "no active connections after all FINs (" +
                         std::to_string(active) + " left)");
  check(mux.affinity_size() == 0, "affinity empty after all FINs (" +
                                      std::to_string(mux.affinity_size()) +
                                      " left)");
  check(mux.dangling_affinity_count() == 0, "no dangling affinity entries");
  check(mux.no_backend_drops() == 0, "no refused connections");
  return res;
}

RunResult best_of(int reps, std::size_t shards, std::size_t cache_slots,
                  unsigned threads, std::uint64_t flows,
                  std::uint64_t requests_per_flow, std::uint64_t rounds) {
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    const auto r =
        run_one(shards, cache_slots, threads, flows, requests_per_flow, rounds);
    if (!r.ok) return r;
    if (r.rate > best.rate) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::uint64_t flows = 20'000;
  std::uint64_t requests_per_flow = 4;
  std::vector<std::uint64_t> positional;
  for (const auto& a : args) {
    if (a == "--short") {
      short_mode = true;
    } else if (!a.empty() && a.size() <= 18 &&
               a.find_first_not_of("0123456789") == std::string::npos) {
      positional.push_back(std::stoull(a));
    } else {
      std::cerr << "unknown argument '" << a << "'\nusage: bench_mux_hotpath"
                << " [--short] [flows_per_thread] [requests_per_flow]\n";
      return 2;
    }
  }
  if (!positional.empty()) flows = positional[0];
  if (positional.size() > 1) requests_per_flow = positional[1];
  if (short_mode) flows = std::min<std::uint64_t>(flows, 8'000);
  const std::uint64_t rounds = 3;
  const int reps = short_mode ? 3 : 2;

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const klb::lb::FlowTableConfig sharded{};  // production default
  std::vector<unsigned> thread_counts{1, 2, 4};
  if (short_mode) {
    thread_counts = {1};
    if (hw >= 2) thread_counts.push_back(std::min(4u, hw));
  }

  klb::testbed::banner("MUX hot path: sharded flow table vs single map (" +
                       std::to_string(kDips) + " DIPs, maglev, " +
                       std::to_string(requests_per_flow) + " req/flow)");
  std::cout << "hardware threads: " << hw << ", flow-table shards: "
            << klb::lb::FlowTable(sharded).shard_count() << "\n\n";

  klb::testbed::Table table({"threads", "single-map picks/s", "sharded picks/s",
                             "sharded/single", "scaling vs 1T"});
  bool ok = true;
  double sharded_1t = 0.0, sharded_multi = 0.0;
  for (const auto t : thread_counts) {
    const auto base =
        best_of(reps, 1, 0, t, flows, requests_per_flow, rounds);
    const auto shard = best_of(reps, sharded.shard_count,
                               sharded.cache_slots_per_shard, t, flows,
                               requests_per_flow, rounds);
    ok = ok && base.ok && shard.ok;
    if (t == 1) sharded_1t = shard.rate;
    if (t > 1) sharded_multi = std::max(sharded_multi, shard.rate);
    table.row({std::to_string(t),
               klb::testbed::fmt(base.rate / 1e6, 2) + "M",
               klb::testbed::fmt(shard.rate / 1e6, 2) + "M",
               klb::testbed::fmt(shard.rate / std::max(1.0, base.rate), 2) +
                   "x",
               klb::testbed::fmt(shard.rate / std::max(1.0, sharded_1t), 2) +
                   "x"});
  }
  table.print();
  std::cout << "\nAffinity hits and cached picks bypass the pick lock; only "
               "fresh policy picks serialize.\n";

  if (!ok) {
    std::cerr << "FAIL: hot-path counter invariants violated\n";
    return 1;
  }
  if (short_mode && hw >= 2 && sharded_multi > 0.0) {
    if (sharded_multi < 0.9 * sharded_1t) {
      std::cerr << "FAIL: multi-threaded sharded throughput ("
                << sharded_multi / 1e6 << "M/s) regressed below 0.9x the "
                << "single-threaded baseline (" << sharded_1t / 1e6
                << "M/s)\n";
      return 1;
    }
    std::cout << "short-mode scaling gate passed ("
              << klb::testbed::fmt(sharded_multi / sharded_1t, 2)
              << "x at " << thread_counts.back() << " threads)\n";
  } else if (short_mode) {
    std::cout << "short-mode scaling gate skipped (single-core machine)\n";
  }
  return 0;
}
