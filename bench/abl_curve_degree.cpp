// Ablation: polynomial degree for the weight-latency fit (§4.2 uses
// degree 2). Fit quality (R^2) and out-of-sample latency error across
// synthetic exploration histories of varying capacity.
#include <iostream>

#include "core/explorer.hpp"
#include "fit/wl_curve.hpp"
#include "testbed/report.hpp"
#include "util/rng.hpp"

using namespace klb;

int main() {
  std::cout << "Ablation: regression degree for the weight-latency curve.\n";

  testbed::Table table({"degree", "avg R^2", "avg out-of-sample error",
                        "fit failures"});

  for (const int degree : {1, 2, 3}) {
    double r2_total = 0.0;
    double err_total = 0.0;
    int err_count = 0;
    int failures = 0;
    int fits = 0;

    for (const double wcap : {0.05, 0.1, 0.2, 0.4}) {
      for (int seed = 0; seed < 10; ++seed) {
        util::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
        const double l0 = 3.4;
        auto truth = [&](double w) {
          const double rho = w / wcap;
          return rho < 1.0 ? l0 * (1.0 + 3.0 * rho * rho)
                           : l0 * (4.0 + (rho - 1.0) * 8.0);
        };

        // Explore like Algorithm 1 would.
        core::WeightExplorer ex;
        ex.set_l0(l0);
        ex.begin(0.033);
        while (!ex.done()) {
          const double w = ex.next_weight();
          ex.observe(truth(w) * (1.0 + rng.normal(0.0, 0.04)),
                     w > wcap * 1.1);
        }

        fit::WeightLatencyCurve curve;
        for (const auto& p : ex.history())
          curve.add_point(p.weight, p.latency_ms, p.dropped);
        curve.add_point(0.0, l0, false);
        ++fits;
        if (!curve.fit(degree)) {
          ++failures;
          continue;
        }
        r2_total += curve.fit_r_squared();
        // Out-of-sample: relative error at weights inside [0, wmax].
        for (double f = 0.1; f <= 0.9; f += 0.2) {
          const double w = f * curve.wmax();
          err_total += std::fabs(curve.latency_at(w) - truth(w)) / truth(w);
          ++err_count;
        }
      }
    }
    table.row({std::to_string(degree),
               testbed::fmt(r2_total / std::max(1, fits - failures), 4),
               testbed::fmt_pct(err_total / std::max(1, err_count)),
               std::to_string(failures)});
  }
  table.print();
  std::cout << "Degree 2 (the paper's choice) balances bias and variance "
               "on 5-10 point fits.\n";
  return 0;
}
