// Fleet-scale multi-VIP control plane: solver-pool speedup vs. serial.
//
// The paper's scalability story (§5, Fig. 8, Tab. 6) is one ILP per VIP on
// a shared controller VM. At fleet scale (hundreds of VIPs, Charon-style
// deployments) the wall-clock bottleneck is solver time; this bench
// measures coordinator round throughput on a synthetic V x D fleet —
// every VIP dirty every round, unlimited slot budget, so each round is
// exactly V ILP solves — serial first, then pooled at growing widths.
//
//   ./bench_fleet_multivip [--vips 100] [--dips 30] [--rounds 10]
//                          [--threads 4] [--seed 1]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "testbed/fleet.hpp"
#include "util/flags.hpp"

using namespace klb;

namespace {

struct RunStats {
  double seconds = 0.0;
  double rounds_per_sec = 0.0;
  std::uint64_t solves = 0;
};

RunStats run_fleet(std::size_t vips, std::size_t dips, int rounds,
                   int solver_threads, std::uint64_t seed) {
  core::MultiVipConfig cfg;
  cfg.solver_threads = solver_threads;
  cfg.max_ilp_per_round = 0;  // unlimited: rounds are solver-bound
  testbed::SyntheticFleet fleet(vips, dips, cfg, seed);

  // Warm-up round (first-touch allocations) outside the timed window.
  fleet.mark_all_dirty();
  fleet.tick_round();
  std::uint64_t warmup_solves = 0;
  for (std::size_t v = 0; v < vips; ++v)
    warmup_solves += fleet.coordinator().controller(v).ilp_runs();

  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    fleet.mark_all_dirty();
    fleet.tick_round();
  }
  const auto end = std::chrono::steady_clock::now();

  RunStats stats;
  stats.seconds = std::chrono::duration<double>(end - start).count();
  stats.rounds_per_sec = rounds / stats.seconds;
  for (std::size_t v = 0; v < vips; ++v)
    stats.solves += fleet.coordinator().controller(v).ilp_runs();
  stats.solves -= warmup_solves;  // timed window only
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto vips = static_cast<std::size_t>(flags.get_int("vips", 100));
  const auto dips = static_cast<std::size_t>(flags.get_int("dips", 30));
  const int rounds = std::max(1, static_cast<int>(flags.get_int("rounds", 10)));
  const int max_threads = flags.get_int("threads", 4);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::printf("fleet: %zu VIPs x %zu DIPs, %d rounds per config "
              "(%u hardware threads)\n\n",
              vips, dips, rounds, std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() < 2)
    std::printf("note: single-core host — pooled speedup needs >1 core\n\n");
  std::printf("%-10s %12s %12s %10s %10s\n", "threads", "total (s)",
              "rounds/sec", "solves", "speedup");

  const auto serial = run_fleet(vips, dips, rounds, 1, seed);
  std::printf("%-10d %12.3f %12.2f %10llu %9.2fx\n", 1, serial.seconds,
              serial.rounds_per_sec,
              static_cast<unsigned long long>(serial.solves), 1.0);

  double best_speedup = 1.0;
  for (int t = 2; t <= max_threads; t *= 2) {
    const auto pooled = run_fleet(vips, dips, rounds, t, seed);
    const double speedup = pooled.rounds_per_sec / serial.rounds_per_sec;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("%-10d %12.3f %12.2f %10llu %9.2fx\n", t, pooled.seconds,
                pooled.rounds_per_sec,
                static_cast<unsigned long long>(pooled.solves), speedup);
  }

  std::printf("\nbest pooled speedup: %.2fx over serial\n", best_speedup);
  return 0;
}
