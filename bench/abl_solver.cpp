// Ablation: generic branch & bound vs the MCKP dynamic program on
// identical weight-assignment instances — the §5 "ILP speedup" quantified.
// Both must return the same objective (also asserted in tests/ilp_test).
#include <benchmark/benchmark.h>

#include "core/ilp_weights.hpp"
#include "testbed/synthetic.hpp"

using namespace klb;

namespace {

void run(benchmark::State& state, core::IlpBackend backend) {
  const int dips = static_cast<int>(state.range(0));
  std::vector<fit::WeightLatencyCurve> curves;
  for (int d = 0; d < dips; ++d)
    curves.push_back(testbed::synthetic_curve(
        1.3 / dips * (1.0 + 0.03 * ((d * 13) % 7)), 1.0 + 0.1 * (d % 4)));
  std::vector<const fit::WeightLatencyCurve*> ptrs;
  for (const auto& c : curves) ptrs.push_back(&c);

  core::IlpWeightsConfig cfg;
  cfg.backend = backend;
  cfg.force_multi_step = false;
  cfg.time_limit = std::chrono::milliseconds(60'000);
  const core::IlpWeights solver(cfg);

  double objective = 0.0;
  for (auto _ : state) {
    const auto result = solver.compute(ptrs);
    objective = result.estimated_total_latency_ms;
    benchmark::DoNotOptimize(result);
  }
  state.counters["objective_ms"] = objective;
}

void BM_BranchAndBound(benchmark::State& state) {
  run(state, core::IlpBackend::kBranchAndBound);
}
void BM_MckpDp(benchmark::State& state) {
  run(state, core::IlpBackend::kMckpDp);
}

}  // namespace

BENCHMARK(BM_BranchAndBound)->Arg(10)->Arg(30)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_MckpDp)->Arg(10)->Arg(30)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
