// Fig. 4: HAProxy least-connection under dynamic capacity changes.
//
// Same sweep as Fig. 3 with the least-connection policy. The paper's
// finding: LC equalizes *concurrent connections*, not load — the slow DIP
// holds its connections longer, still saturates (slightly less than RR),
// and its latency stays well above the healthy DIPs'.
#include "bench_common.hpp"

int main() {
  std::cout << "Fig. 4 reproduction: least-connection also fails to adapt.\n"
               "Paper shape: like RR but with slightly smaller CPU "
               "imbalance; DIP-LC still\nsaturates and suffers the latency "
               "penalty.\n";
  klb::bench::run_capacity_sweep("lc");
  return 0;
}
