// Fig. 5: impact of increasing weight (traffic) on latency and CPU.
//
// One 2-core DIP; traffic sweeps 1X..8X (8X ~= full capacity). The
// application latency tracks CPU utilization (flat below ~60%, knee, then
// saturation), while ICMP/TCP-SYN pings are answered by the kernel and
// stay flat — the reason KnapsackLB must probe at the application layer.
#include "klm/klm.hpp"
#include "testbed/report.hpp"
#include "testbed/testbed.hpp"
#include "workload/client.hpp"

using namespace klb;
using namespace klb::util::literals;

int main() {
  std::cout << "Fig. 5 reproduction: app latency follows load; pings do "
               "not.\nPaper shape: CPU rises linearly 1X..8X; app latency "
               "flat until ~60% CPU\nthen climbs steeply; ping latency flat "
               "throughout.\n";

  testbed::Table table({"traffic", "CPU util", "app latency (ms)",
                        "ping latency (ms)"});

  server::DipConfig dip_cfg;
  dip_cfg.vm = server::kDs2v2;
  const double capacity = 2.0 * 1000.0 / dip_cfg.demand_core_ms;

  for (int mult = 1; mult <= 8; ++mult) {
    sim::Simulation sim(100 + static_cast<std::uint64_t>(mult));
    net::Network net(sim);
    server::DipServer dip(net, net::IpAddr{10, 1, 0, 1}, dip_cfg);

    // Direct client load at mult/8 of capacity (weight = traffic here).
    const double rps = capacity * static_cast<double>(mult) / 8.0 * 0.97;
    workload::ClientConfig ccfg;
    ccfg.requests_per_session = 1.0;
    workload::ClientPool clients(net, net::IpAddr{10, 2, 0, 1},
                                 dip.address(), workload::TrafficPattern(rps),
                                 ccfg);
    // Note: VIP-less direct mode — point the "vip" at the DIP itself.
    clients.start();

    klm::PingProber prober(net, net::IpAddr{10, 3, 0, 3});

    sim.run_for(8_s);  // warmup
    dip.reset_stats();
    clients.recorder().reset();
    prober.ping(dip.address(), 100, util::SimTime::millis(100));
    sim.run_for(12_s);
    clients.stop();
    sim.run_for(1_s);

    table.row({std::to_string(mult) + "X",
               testbed::fmt_pct(dip.cpu_utilization()),
               testbed::fmt(clients.recorder().overall().mean()),
               testbed::fmt(prober.rtt_ms().mean(), 3)});
  }
  table.print();
  std::cout << "App latency inflates with CPU; ping latency stays ~flat "
               "(kernel path).\n";
  return 0;
}
