// Fig. 13: weighted RR and weighted LC (weights proportional to core
// count) vs KnapsackLB on the 30-DIP pool.
//
// Paper: core-count weights ignore that throughput does not scale
// linearly with cores (and that F-series cores are faster), so WRR/WLC
// still overload the 4-core DS VMs; KLB reduced latency on those DIPs by
// 42% / 36.2%.
//
// The paper measured that non-linearity on real VMs ("the throughput of
// 4-core DS-type VM did not scale linearly with number of cores"); our
// DIP model is linear in cores by construction, so the shortfall is
// injected as the scenario: multi-core DIPs run at a capacity factor the
// operator cannot see (DS3 0.70, F8 0.85 — within the up-to-40% capacity
// variation the paper cites) while WRR/WLC still weight by core count.
// KnapsackLB never sees core counts and learns the real capacities from
// latency.
#include "bench_common.hpp"

using namespace klb;
using namespace klb::bench;

int main() {
  std::cout << "Fig. 13 reproduction: WRR/WLC (weights = core counts) vs "
               "KnapsackLB, 30 DIPs.\n";

  auto specs = testbed::table3_specs();
  for (auto& spec : specs) {
    if (spec.vm.cores == 4) spec.capacity_factor = 0.70;  // DS3v2 shortfall
    if (spec.vm.cores == 8) spec.capacity_factor = 0.85;  // F8sv2 shortfall
  }
  PolicyRunOptions opt;
  opt.seed = 13;
  opt.cluster_profile = true;

  std::vector<PolicyRunResult> runs;
  for (const std::string policy : {"wrr", "wlc", "klb"}) {
    std::cout << "running " << policy << "..." << std::flush;
    auto o = opt;
    if (policy != "klb") o.static_weights = core_weights(specs);
    runs.push_back(run_policy(specs, policy, o));
    std::cout << " done\n";
  }
  print_by_type(runs);

  const auto vs_wrr = compare_gains(runs[0], runs[2]);
  const auto vs_wlc = compare_gains(runs[1], runs[2]);
  std::cout << "\nKLB vs WRR: up to " << testbed::fmt_pct(vs_wrr.max_gain)
            << " latency cut (paper: 42% on the overloaded DIPs)\n"
            << "KLB vs WLC: up to " << testbed::fmt_pct(vs_wlc.max_gain)
            << " latency cut (paper: 36.2%)\n";
  return 0;
}
