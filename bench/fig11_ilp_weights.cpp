// Fig. 11: weights calculated by the ILP for 15 DIPs (50% of each Table 3
// type: 8x DS1v2, 4x DS2v2, 2x DS3v2, 1x F8sv2).
//
// Paper: per-type weights come out in ratio 1 : 2 : 3.9 : 9.7; the ILP is
// latency-informed, not capacity-proportional — DIP-29 (12.5% of total
// capacity) got weight 0.135, DIP-1..16 (25% of capacity together) got a
// combined 0.225.
#include "bench_common.hpp"

using namespace klb;

int main() {
  std::cout << "Fig. 11 reproduction: ILP weight assignment for 15 DIPs.\n"
               "Paper: type weight ratios ~1 : 2 : 3.9 : 9.7; "
               "latency-informed, not proportional.\n";

  std::vector<testbed::DipSpec> specs;
  for (int i = 0; i < 8; ++i) specs.push_back({server::kDs1v2, 1.0, 0.0});
  for (int i = 0; i < 4; ++i) specs.push_back({server::kDs2v2, 1.0, 0.0});
  for (int i = 0; i < 2; ++i) specs.push_back({server::kDs3v2, 1.0, 0.0});
  specs.push_back({server::kF8sv2, 1.0, 0.0});

  testbed::TestbedConfig cfg;
  cfg.requests_per_session = 1.0;
  cfg.closed_loop_factor = 20.0;
  cfg.dip.backlog_per_core = 24;
  cfg.seed = 11;
  cfg.policy = "wrr";
  cfg.use_knapsacklb = true;
  testbed::Testbed bed(specs, cfg);
  const bool ready = bed.run_until_ready(util::SimTime::minutes(30));
  if (!ready) std::cout << "[warn] exploration did not finish in time\n";
  bed.run_for(util::SimTime::seconds(30));

  const auto& w = bed.controller()->current_weights();
  testbed::Table table({"DIP", "type", "weight"});
  std::map<std::string, std::pair<double, int>> per_type;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    table.row({std::to_string(i + 1), specs[i].vm.name, testbed::fmt(w[i], 4)});
    per_type[specs[i].vm.name].first += w[i];
    per_type[specs[i].vm.name].second += 1;
  }
  table.print();

  const double ds1_avg = per_type["DS1v2"].first / per_type["DS1v2"].second;
  std::cout << "\nper-type average weight (ratio vs DS1v2):\n";
  for (const auto& [type, acc] : per_type) {
    const double avg = acc.first / acc.second;
    std::cout << "  " << type << ": " << testbed::fmt(avg, 4) << "  (x"
              << testbed::fmt(ds1_avg > 0 ? avg / ds1_avg : 0.0, 1) << ")\n";
  }
  std::cout << "(paper ratios: DS1 x1, DS2 x2, DS3 x3.9, F8 x9.7)\n";
  return 0;
}
