// Fig. 17: weight changes when total traffic rises 10%.
//
// Paper: all DIPs see higher latency at unchanged weights -> traffic
// change detected -> weight-latency curves shift left -> ILP rerun.
// DIP-25..30 (the big VMs) absorb most of the extra traffic; nothing
// overloads. Detection took <5 s; the ILP ~120 ms.
#include "bench_common.hpp"

using namespace klb;

int main() {
  std::cout << "Fig. 17 reproduction: weight adaptation on +10% traffic.\n";

  testbed::TestbedConfig cfg;
  cfg.requests_per_session = 1.0;
  cfg.closed_loop_factor = 20.0;
  cfg.dip.backlog_per_core = 24;
  cfg.seed = 17;
  cfg.policy = "wrr";
  cfg.use_knapsacklb = true;
  cfg.load_fraction = 0.65;
  testbed::Testbed bed(testbed::table3_specs(), cfg);
  const bool ready = bed.run_until_ready(util::SimTime::minutes(30));
  if (!ready) std::cout << "[warn] exploration did not finish in time\n";
  bed.run_for(util::SimTime::seconds(40));
  const auto before = bed.controller()->current_weights();

  std::cout << "increasing traffic by 10%...\n";
  bed.clients().set_pattern(workload::TrafficPattern(bed.offered_rps() * 1.10));
  bed.run_for(util::SimTime::minutes(3));
  const auto after = bed.controller()->current_weights();
  std::cout << "traffic rescales: " << bed.controller()->traffic_rescales()
            << ", capacity rescales: " << bed.controller()->capacity_rescales()
            << ", ILP time: " << bed.controller()->last_ilp_elapsed().count()
            << " ms\n";

  testbed::Table table({"group", "weight before", "weight after", "change"});
  struct Group {
    std::string name;
    std::size_t lo, hi;
  };
  for (const auto& g :
       std::vector<Group>{{"DIP-1..16 (DS1)", 0, 16},
                          {"DIP-17..24 (DS2)", 16, 24},
                          {"DIP-25..28 (DS3)", 24, 28},
                          {"DIP-29,30 (F8)", 28, 30}}) {
    double b = 0.0;
    double a = 0.0;
    for (std::size_t i = g.lo; i < g.hi; ++i) {
      b += before[i];
      a += after[i];
    }
    table.row({g.name, testbed::fmt(b, 3), testbed::fmt(a, 3),
               (a >= b ? "+" : "") + testbed::fmt(a - b, 3)});
  }
  table.print();
  std::cout << "\nPaper: DIP-25..30 absorbed most of the extra traffic "
               "(more latency headroom\nper unit weight); no DIP "
               "overloaded.\n";
  return 0;
}
