// Sharded event-loop driver scaling (ISSUE 9): the same live-churn
// scenario the fig16 bench gates — steady traffic, scale-out, graceful
// drain, abrupt failure — run at driver_shards = 1, 2, 4 over a FIXED
// virtual duration. The single-threaded Simulation (shards = 1) is the
// determinism reference; the sharded runs execute the identical scenario
// on N per-shard event queues in bounded virtual-time windows. Since
// virtual time is held constant, the wall-clock ratio is the capacity
// headline: how much more offered RPS the testbed sustains per
// wall-second when the driver saturates more cores.
//
// Fabric latency is raised to 5 ms so the driver window (== base_latency,
// the largest window that cannot reorder cross-shard messages) amortizes
// many events per barrier — the regime the sharded driver is for. The
// barrier handshake is paid once per window regardless of work, so the
// scaling headroom is (events per window) / (barrier cost): the knobs
// below (window size, pool size) exist to keep that ratio high enough
// that the gates measure the driver, not the barrier.
//
// `--short` is the CI smoke mode: scaled-down pool, shorter phases, and
// the scaling gates (>= 0.9x/shard at 2 shards, >= 3x at 4 shards),
// applied only where the host has the cores to back them. On hosts
// without them, an oversubscribed run measures timesharing, not the
// driver, and is exempt. `--invariants-only` (the TSan job) shrinks the
// phases further and skips the gates entirely: timing under a 5-20x
// sanitizer slowdown is noise, but the churn invariants — zero graceful
// resets, completed drains, zero no-backend drops, request conservation —
// must hold at every shard count.
#include <chrono>
#include <thread>

#include "bench_common.hpp"

using namespace klb;
using namespace klb::util::literals;

namespace {

struct ShardRun {
  std::size_t shards = 1;
  double wall_sec = 0.0;
  double virtual_sec = 0.0;
  std::uint64_t successes = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t drains_completed = 0;
  std::uint64_t graceful_resets = 0;  // resets during the drain phase
  std::uint64_t no_backend_drops = 0;
  bool ok = true;
};

ShardRun run_one(std::size_t shards, bool short_mode, bool invariants_only) {
  testbed::TestbedConfig cfg;
  cfg.seed = 1234;
  cfg.load_fraction = 0.85;  // more events per window = more to amortize
  cfg.mux_count = 2;  // maglev-shared pool: tuple-deterministic, VIP anycast
  cfg.requests_per_session = 1.0;
  cfg.closed_loop_factor = 20.0;
  cfg.dip.backlog_per_core = 24;
  cfg.rescale_load_on_churn = false;
  cfg.driver_shards = shards;
  cfg.fabric.base_latency = util::SimTime::millis(5);
  cfg.fabric.jitter_mean = util::SimTime::micros(500);

  std::vector<testbed::DipSpec> specs;
  if (short_mode) {
    for (int i = 0; i < 12; ++i) specs.push_back({server::kDs1v2, 1.0, 0.0});
    for (int i = 0; i < 4; ++i) specs.push_back({server::kDs2v2, 1.0, 0.0});
    for (int i = 0; i < 2; ++i) specs.push_back({server::kF8sv2, 1.0, 0.0});
  } else {
    specs = testbed::table3_specs();
  }

  const auto steady = invariants_only ? 3_s : (short_mode ? 10_s : 30_s);
  const auto phase = invariants_only ? 2_s : (short_mode ? 5_s : 15_s);

  testbed::Testbed bed(specs, cfg);
  auto* pool = bed.mux_pool();
  if (pool == nullptr) {
    std::cerr << "expected a MuxPool (mux_count > 1)\n";
    ShardRun bad;
    bad.ok = false;
    return bad;
  }
  bed.run_for(short_mode ? 5_s : 10_s);  // warmup, untimed
  bed.reset_stats();

  // The timed region: fixed virtual duration, live churn riding along.
  ShardRun r;
  r.shards = shards;
  const auto v0 = bed.sim().now();
  const auto t0 = std::chrono::steady_clock::now();
  bed.run_for(steady);
  // Steady state over: no churn has run yet, so a refused connection up
  // to here would be a dataplane bug. Churn transients are different —
  // while a restated program rides the programming delay, a maglev slot
  // can briefly name a parked or failed backend and the member refuses
  // rather than guesses (the client retries); those refusals are correct
  // behavior and are reported, not gated.
  r.no_backend_drops = bed.dataplane_metrics().no_backend_drops;
  bed.scale_out({server::kDs2v2, 1.0, 0.0});
  bed.run_for(phase);
  const auto resets_before_drain = pool->flows_reset_by_failure();
  bed.scale_in(0);  // graceful: pinned flows served out, zero resets
  bed.run_for(phase);
  r.graceful_resets =
      pool->flows_reset_by_failure() - resets_before_drain;
  bed.fail_dip(0);  // abrupt: survivors absorb, clients retry
  bed.run_for(phase);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  r.virtual_sec = (bed.sim().now() - v0).sec();

  r.successes = bed.client_successes();
  r.timeouts = bed.client_timeouts();
  r.requests_sent = bed.client_requests_sent();
  r.drains_completed = pool->drains_completed();

  auto check = [&r, shards](bool cond, const std::string& what) {
    if (!cond) {
      std::cerr << "INVARIANT VIOLATED (shards=" << shards << "): " << what
                << "\n";
      r.ok = false;
    }
  };
  check(r.successes > 0, "clients made progress");
  check(r.successes + r.timeouts <= r.requests_sent,
        "request conservation (successes " + std::to_string(r.successes) +
            " + timeouts " + std::to_string(r.timeouts) + " <= sent " +
            std::to_string(r.requests_sent) + ")");
  check(r.graceful_resets == 0,
        "graceful drain reset " + std::to_string(r.graceful_resets) +
            " flows");
  check(r.no_backend_drops == 0,
        "steady-state no-backend drops: " +
            std::to_string(r.no_backend_drops));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  bool invariants_only = false;
  std::string json_path;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--short") {
      short_mode = true;
    } else if (args[i] == "--invariants-only") {
      invariants_only = true;
      short_mode = true;  // implies the small pool and short phases
    } else if (args[i] == "--json" && i + 1 < args.size()) {
      json_path = args[++i];
    } else {
      std::cerr << "unknown argument '" << args[i]
                << "'\nusage: bench_testbed_shards [--short] "
                   "[--invariants-only] [--json PATH]\n";
      return 2;
    }
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "Sharded event-loop driver: fixed virtual duration, "
               "wall-clock scaling"
            << (invariants_only ? " [invariants only]"
                                : (short_mode ? " [short mode]" : ""))
            << " (" << hw << " hardware threads)\n";

  const std::vector<std::size_t> shard_counts{1, 2, 4};
  std::vector<ShardRun> runs;
  bool ok = true;
  for (const auto s : shard_counts) {
    runs.push_back(run_one(s, short_mode, invariants_only));
    ok = ok && runs.back().ok;
  }

  const double wall1 = std::max(1e-9, runs.front().wall_sec);
  testbed::Table table({"shards", "virtual s", "wall s", "speedup",
                        "successes", "timeouts", "drains"});
  for (const auto& r : runs)
    table.row({std::to_string(r.shards), testbed::fmt(r.virtual_sec, 1),
               testbed::fmt(r.wall_sec, 2),
               testbed::fmt(wall1 / std::max(1e-9, r.wall_sec), 2) + "x",
               std::to_string(r.successes), std::to_string(r.timeouts),
               std::to_string(r.drains_completed)});
  table.print();
  std::cout << "\nSame scenario, same virtual seconds; the speedup column "
               "is offered-RPS headroom per wall-second.\n";

  // --- scaling gates (Release smoke only; timing under TSan is noise) ----
  bool gate_fail = false;
  if (short_mode && !invariants_only) {
    const auto speedup = [&](std::size_t shards) {
      for (const auto& r : runs)
        if (r.shards == shards) return wall1 / std::max(1e-9, r.wall_sec);
      return 0.0;
    };
    if (hw >= 2 && speedup(2) < 1.8) {
      std::cerr << "FAIL: 2 shards sped up only " << testbed::fmt(speedup(2), 2)
                << "x (< 0.9x/shard) on a " << hw << "-thread host\n";
      gate_fail = true;
    }
    if (hw >= 4 && speedup(4) < 3.0) {
      std::cerr << "FAIL: 4 shards sped up only " << testbed::fmt(speedup(4), 2)
                << "x (< 3x) on a " << hw << "-thread host\n";
      gate_fail = true;
    }
    if (!gate_fail)
      std::cout << "scaling gates passed (or exempt: host has " << hw
                << " hardware threads)\n";
  }

  if (!json_path.empty()) {
    auto json = bench::Json::object();
    json.set("bench", "testbed_shards")
        .set("mode", invariants_only ? "invariants-only"
                                     : (short_mode ? "short" : "full"))
        .set("hardware_threads", hw);
    auto runs_json = bench::Json::array();
    for (const auto& r : runs)
      runs_json.push(bench::Json::object()
                         .set("shards", static_cast<std::uint64_t>(r.shards))
                         .set("virtual_sec", r.virtual_sec)
                         .set("wall_sec", r.wall_sec)
                         .set("speedup_vs_1",
                              wall1 / std::max(1e-9, r.wall_sec))
                         .set("successes", r.successes)
                         .set("timeouts", r.timeouts)
                         .set("drains_completed", r.drains_completed)
                         .set("steady_no_backend_drops", r.no_backend_drops));
    json.set("runs", std::move(runs_json));
    json.set("invariants_ok", ok).set("gates_ok", !gate_fail);
    if (!bench::write_json_file(json_path, json)) return 1;
  }
  return (ok && !gate_fail) ? 0 : 1;
}
