// Fig. 12: average CPU and latency per VM type on the 30-DIP Table 3 pool
// for RR, LC, and KnapsackLB, at 70% of cluster capacity.
//
// Paper: RR/LC overload the small DIPs (DS1/DS2 high CPU + latency) while
// the big ones idle; KnapsackLB evens both out. Headline: KLB cuts latency
// by up to 45% for 79% of requests vs RR, and up to 23% for 68% vs LC.
#include "bench_common.hpp"

using namespace klb;
using namespace klb::bench;

int main() {
  std::cout << "Fig. 12 reproduction: RR vs LC vs KnapsackLB on the 30-DIP "
               "Table 3 pool.\n";

  PolicyRunOptions opt;
  opt.seed = 12;
  opt.cluster_profile = true;

  std::vector<PolicyRunResult> runs;
  for (const std::string policy : {"rr", "lc", "klb"}) {
    std::cout << "running " << policy << "..." << std::flush;
    runs.push_back(run_policy(testbed::table3_specs(), policy, opt));
    std::cout << " done\n";
  }
  print_by_type(runs);

  const auto vs_rr = compare_gains(runs[0], runs[2]);
  const auto vs_lc = compare_gains(runs[1], runs[2]);
  std::cout << "\nKLB vs RR: cuts latency by up to "
            << testbed::fmt_pct(vs_rr.max_gain) << " for "
            << testbed::fmt_pct(vs_rr.request_share)
            << " of requests (paper: up to 45% for 79%)\n"
            << "KLB vs LC: cuts latency by up to "
            << testbed::fmt_pct(vs_lc.max_gain) << " for "
            << testbed::fmt_pct(vs_lc.request_share)
            << " of requests (paper: up to 23% for 68%)\n";
  return 0;
}
