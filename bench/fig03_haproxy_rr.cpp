// Fig. 3: HAProxy round robin under dynamic capacity changes.
//
// Three 1-core DIPs (2x DIP-HC, 1x DIP-LC); DIP-LC's capacity is degraded
// to {100, 90, 75, 60}% by a cache-thrashing antagonist while the traffic
// stays fixed. RR keeps splitting equally, so DIP-LC saturates and its
// latency inflates while DIP-HC stays underutilized.
#include "bench_common.hpp"

int main() {
  std::cout << "Fig. 3 reproduction: round robin cannot adapt to dynamic "
               "capacities.\nPaper shape: equal CPU/latency at ratio 100%; "
               "DIP-LC saturates (100% CPU,\n>2x latency) as the ratio "
               "drops, while DIP-HC has headroom.\n";
  klb::bench::run_capacity_sweep("rr");
  return 0;
}
