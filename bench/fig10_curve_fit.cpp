// Fig. 10: weight-latency curves from degree-2 polynomial regression for
// one DIP of each VM type, against the actual measured points.
//
// Paper: the regression tracks the few measured points well (only 4-5
// non-dropped points per DIP), and the curve is made monotone.
#include "bench_common.hpp"

using namespace klb;

int main() {
  std::cout << "Fig. 10 reproduction: curve fitting using polynomial "
               "regression (degree 2).\n";

  testbed::TestbedConfig cfg;
  cfg.requests_per_session = 1.0;
  cfg.closed_loop_factor = 20.0;
  cfg.dip.backlog_per_core = 24;
  cfg.seed = 10;
  cfg.policy = "wrr";
  cfg.use_knapsacklb = true;
  testbed::Testbed bed(testbed::table3_specs(), cfg);
  const bool ready = bed.run_until_ready(util::SimTime::minutes(30));
  if (!ready) std::cout << "[warn] exploration did not finish in time\n";

  const std::vector<std::size_t> picks{0, 16, 24, 28};
  for (const auto i : picks) {
    const auto& ex = bed.controller()->explorer(i);
    const auto& curve = bed.controller()->curve(i);
    testbed::banner("DIP-" + std::to_string(i + 1) + " (" +
                    bed.dip(i).config().vm.name + "), l0=" +
                    testbed::fmt(ex.l0_ms()) + " ms, R^2=" +
                    testbed::fmt(curve.fit_r_squared(), 4));

    testbed::Table table({"weight", "measured (ms)", "fitted (ms)", "drop"});
    for (const auto& pt : ex.history()) {
      table.row({testbed::fmt(pt.weight, 4), testbed::fmt(pt.latency_ms),
                 pt.dropped ? "-" : testbed::fmt(curve.latency_at(pt.weight)),
                 pt.dropped ? "yes" : ""});
    }
    table.print();

    std::cout << "fitted curve samples: ";
    for (double f = 0.0; f <= 1.001; f += 0.25) {
      const double w = f * curve.wmax();
      std::cout << "l(" << testbed::fmt(w, 3)
                << ")=" << testbed::fmt(curve.latency_at(w)) << "  ";
    }
    std::cout << "\n";
  }
  std::cout << "\nRegression fits the measured (non-dropped) points with "
               "few samples; the\nmonotone envelope removes any dips "
               "(paper's running-max fix).\n";
  return 0;
}
