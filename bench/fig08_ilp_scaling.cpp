// Fig. 8: one-shot ILP performance for varying #DIPs and #weights/DIP.
//
// The paper's strawman: equal-performance DIPs, candidate weights uniform
// in [0,1] (NOT [0,wmax]), solved by the generic B&B. Outcomes per cell:
//   <time>  solved, and no DIP exceeds its capacity weight
//   DO      solved, but some DIP is assigned weight > wmax (overload)
//   TO      solver hit the time (or memory) budget
//
// The paper's 20-minute timeout is scaled down (default 10 s/cell,
// --timeout_s to change); the DO/TO *pattern* across the grid is the
// reproduction target. Paper: 10 weights solves up to 500 DIPs (7.8 s);
// all >=50-weight columns overload or time out at scale.
#include <chrono>
#include <iostream>

#include "ilp/model.hpp"
#include "testbed/report.hpp"
#include "testbed/synthetic.hpp"
#include "util/flags.hpp"

using namespace klb;

namespace {

struct CellResult {
  std::string label;
};

CellResult run_cell(int dips, int weights, double timeout_s) {
  // Equal-performance DIPs: capacity weight = 1.25/dips (traffic at 80%
  // of capacity, §6.6), curve per the F-series shape.
  const double wmax = 1.25 / dips;
  const auto curve = testbed::synthetic_curve(wmax);

  ilp::Model model;
  model.set_binary_bounds_implied(true);
  std::vector<std::vector<int>> vars(static_cast<std::size_t>(dips));
  std::vector<std::pair<int, double>> weight_row;
  // Uniform grid over [0,1] including 0 (a DIP may be left unused). The
  // coarseness of this grid relative to 1/#DIPs is what produces DO.
  std::vector<double> candidates;
  for (int i = 0; i < weights; ++i)
    candidates.push_back(static_cast<double>(i) / (weights - 1));

  for (int d = 0; d < dips; ++d) {
    std::vector<std::pair<int, double>> one;
    for (const double w : candidates) {
      const int v = model.add_var(ilp::VarType::kBinary, curve.latency_at(w));
      vars[static_cast<std::size_t>(d)].push_back(v);
      one.emplace_back(v, 1.0);
      weight_row.emplace_back(v, w);
    }
    model.add_constraint(std::move(one), lp::Relation::kEq, 1.0);
  }
  model.add_constraint(weight_row, lp::Relation::kLe, 1.0);
  model.add_constraint(weight_row, lp::Relation::kGe, 0.99);

  ilp::IlpOptions opt;
  opt.time_limit = std::chrono::milliseconds(
      static_cast<std::int64_t>(timeout_s * 1e3));
  const auto start = std::chrono::steady_clock::now();
  const auto result = ilp::solve(model, opt);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  if (result.status == ilp::IlpStatus::kMemLimit) return {"TO(mem)"};
  if (result.status == ilp::IlpStatus::kInfeasible) return {"infeas"};
  if (result.status == ilp::IlpStatus::kTimeout) return {"TO"};

  // DIP overload check: any chosen weight above the capacity weight?
  // (For timeout-with-incumbent the check runs on the best solution found:
  // those cells are marked DO* — overloaded, optimality unproven. CBC's
  // presolve/cuts prove these symmetric instances faster than our B&B.)
  bool overloaded = false;
  for (int d = 0; d < dips && !overloaded; ++d) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const auto v = static_cast<std::size_t>(
          vars[static_cast<std::size_t>(d)][i]);
      if (result.x[v] > 0.5 && candidates[i] > wmax * 1.0001) {
        overloaded = true;
        break;
      }
    }
  }
  const bool proven = result.status == ilp::IlpStatus::kOptimal;
  if (overloaded) return {proven ? "DO" : "DO*"};
  if (!proven) return {"TO"};
  if (ms >= 1000) return {testbed::fmt(static_cast<double>(ms) / 1e3, 1) + "s"};
  return {std::to_string(ms) + "ms"};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double timeout_s = flags.get_double("timeout_s", 10.0);

  std::cout << "Fig. 8 reproduction: one-shot ILP with weights uniform in "
               "[0,1].\nPaper pattern (20 min timeout): 10-weight column "
               "solves through 500 DIPs;\nwider weight sets hit DO (DIP "
               "overload) or TO. Cell timeout here: "
            << timeout_s << " s.\n";

  const std::vector<int> dip_counts{10, 50, 100, 500};
  const std::vector<int> weight_counts{10, 50, 100, 500};

  // Same layout as the paper: rows = #weights per DIP, columns = #DIPs.
  std::vector<std::string> headers{"#weights \\ #DIPs"};
  for (const int d : dip_counts) headers.push_back(std::to_string(d));
  testbed::Table table(headers);

  for (const int w : weight_counts) {
    std::vector<std::string> row{std::to_string(w)};
    for (const int d : dip_counts) {
      row.push_back(run_cell(d, w, timeout_s).label);
    }
    table.row(row);
  }
  table.print();
  std::cout << "(DO = solved, some DIP above capacity; DO* = best solution "
               "found within the\nbudget overloads a DIP, optimality "
               "unproven; TO = no useful answer in time.)\n";
  return 0;
}
