// Table 1: load imbalance using the Azure L4 LB (IP 5-tuple hash).
//
// Azure LB only balances on the connection hash — equal spread regardless
// of capacity. With DIP-LC at 60%, the paper measured DIP-LC at 84% CPU /
// 7.18 ms vs DIP-HC at 51% / 5.00 ms (latency +43%).
#include "bench_common.hpp"

int main() {
  std::cout << "Table 1 reproduction: Azure L4 LB (5-tuple hash) with "
               "DIP-LC at 60% capacity.\nPaper: DIP-LC 84% CPU / 7.18 ms; "
               "DIP-HC 51% CPU / 5.00 ms (+43% latency).\n";

  klb::bench::PolicyRunOptions opt;
  opt.seed = 42;
  opt.load_fraction = 0.45;  // paper's Table 1 ran cooler than Fig. 3
  const auto r = klb::bench::run_policy(
      klb::testbed::three_dip_specs(1.0, 1.0, 0.6), "hash", opt);

  const auto& lc = r.dips[2];
  const double hc_cpu =
      (r.dips[0].cpu_utilization + r.dips[1].cpu_utilization) / 2.0;
  const double hc_lat =
      (r.dips[0].client_latency_ms + r.dips[1].client_latency_ms) / 2.0;

  klb::testbed::Table table({"DIPs", "CPU utilization", "Latency"});
  table.row({"DIP-LC", klb::testbed::fmt_pct(lc.cpu_utilization),
             klb::testbed::fmt(lc.client_latency_ms) + " msec"});
  table.row({"DIP-HC", klb::testbed::fmt_pct(hc_cpu),
             klb::testbed::fmt(hc_lat) + " msec"});
  table.print();
  std::cout << "DIP-LC latency is "
            << klb::testbed::fmt_pct(
                   hc_lat > 0 ? lc.client_latency_ms / hc_lat - 1.0 : 0.0)
            << " higher than DIP-HC (paper: +43%).\n";
  return 0;
}
