// Table 6: ILP running time vs number of DIPs (10 candidate weights per
// DIP in [0, wmax], F-series-shaped curves, traffic at 80% of capacity).
//
// Paper (CBC): 10 DIPs 20 ms, 50 -> 194 ms, 100 -> 645 ms, 500 -> 5.8 s,
// 1000 -> 21.1 s. Absolute numbers differ by solver; the growth shape is
// the target. Both our backends are timed: the generic B&B (CBC stand-in)
// and the MCKP DP fast path the controller uses.
#include <benchmark/benchmark.h>

#include "core/ilp_weights.hpp"
#include "testbed/synthetic.hpp"

using namespace klb;

namespace {

std::vector<fit::WeightLatencyCurve> make_curves(int dips) {
  // Equal-performance DIPs at 80% load: capacity weight 1.25/dips.
  std::vector<fit::WeightLatencyCurve> curves;
  curves.reserve(static_cast<std::size_t>(dips));
  for (int d = 0; d < dips; ++d) {
    // Tiny deterministic capacity jitter breaks symmetry like real
    // measurements do (identical curves are a B&B worst case the real
    // system never sees).
    const double wmax = 1.25 / dips * (1.0 + 0.02 * ((d * 7) % 5));
    curves.push_back(testbed::synthetic_curve(wmax));
  }
  return curves;
}

void run_backend(benchmark::State& state, core::IlpBackend backend) {
  const int dips = static_cast<int>(state.range(0));
  const auto curves = make_curves(dips);
  std::vector<const fit::WeightLatencyCurve*> ptrs;
  for (const auto& c : curves) ptrs.push_back(&c);

  core::IlpWeightsConfig cfg;
  cfg.backend = backend;
  cfg.force_multi_step = false;
  cfg.time_limit = std::chrono::milliseconds(60'000);
  const core::IlpWeights solver(cfg);

  bool feasible = true;
  for (auto _ : state) {
    const auto result = solver.compute(ptrs);
    feasible = feasible && result.feasible;
    benchmark::DoNotOptimize(result);
  }
  state.counters["feasible"] = feasible ? 1 : 0;
}

void BM_IlpBnB(benchmark::State& state) {
  run_backend(state, core::IlpBackend::kBranchAndBound);
}
void BM_IlpMckpDp(benchmark::State& state) {
  run_backend(state, core::IlpBackend::kMckpDp);
}

}  // namespace

BENCHMARK(BM_IlpBnB)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_IlpMckpDp)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
