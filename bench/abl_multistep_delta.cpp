// Ablation: the §4.4 zoom radius (delta = zoom_fraction * wmax) of the
// multi-step ILP. Small radii refine too little; large ones re-introduce
// the coarse step-1 grid. Paper uses 10%.
#include <chrono>
#include <iostream>

#include "core/ilp_weights.hpp"
#include "testbed/report.hpp"
#include "testbed/synthetic.hpp"

using namespace klb;

int main() {
  std::cout << "Ablation: multi-step ILP zoom radius (100 DIPs, 10 points "
               "per step).\n";

  const int dips = 100;
  std::vector<fit::WeightLatencyCurve> curves;
  for (int d = 0; d < dips; ++d)
    curves.push_back(testbed::synthetic_curve(
        1.25 / dips * (1.0 + 0.02 * ((d * 7) % 5))));
  std::vector<const fit::WeightLatencyCurve*> ptrs;
  for (const auto& c : curves) ptrs.push_back(&c);

  // Reference: a one-shot solve with a very fine grid.
  core::IlpWeightsConfig ref_cfg;
  ref_cfg.points_per_dip = 100;
  ref_cfg.force_multi_step = false;
  ref_cfg.backend = core::IlpBackend::kMckpDp;
  const auto reference = core::IlpWeights(ref_cfg).compute(ptrs);

  testbed::Table table({"zoom radius", "objective (ms)", "vs fine-grid",
                        "time (ms)"});
  for (const double zoom : {0.02, 0.05, 0.10, 0.20, 0.40}) {
    core::IlpWeightsConfig cfg;
    cfg.points_per_dip = 10;
    cfg.force_multi_step = true;
    cfg.zoom_fraction = zoom;
    cfg.backend = core::IlpBackend::kMckpDp;
    const auto start = std::chrono::steady_clock::now();
    const auto result = core::IlpWeights(cfg).compute(ptrs);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    table.row({testbed::fmt_pct(zoom, 0),
               testbed::fmt(result.estimated_total_latency_ms, 3),
               testbed::fmt_pct(reference.estimated_total_latency_ms /
                                    std::max(1e-9, result.estimated_total_latency_ms),
                                2),
               std::to_string(ms)});
  }
  table.print();
  std::cout << "reference fine-grid objective: "
            << testbed::fmt(reference.estimated_total_latency_ms, 3)
            << " ms\nThe paper's 10% radius recovers ~the fine-grid optimum "
               "at a fraction of the cost.\n";
  return 0;
}
