// Table 5: KnapsackLB works with other LBs — Nginx (native weight
// interface, smooth WRR) and Azure Traffic Manager (DNS-based weights).
//
// Weights 0.2 / 0.3 / 0.5 over three DIPs, 10K requests. Paper: Nginx
// lands 20/30/50%; the DNS path lands roughly there (18/34/48%) with lag
// from client-side DNS caching.
#include "lb/dns_lb.hpp"
#include "testbed/report.hpp"
#include "testbed/testbed.hpp"
#include "workload/client.hpp"

using namespace klb;
using namespace klb::util::literals;

int main() {
  std::cout << "Table 5 reproduction: weight adherence via Nginx-style WRR "
               "and DNS traffic manager.\nTarget weights: DIP-1 0.2, DIP-2 "
               "0.3, DIP-3 0.5.\n";

  testbed::Table table({"LB", "DIP-1", "DIP-2", "DIP-3", "requests"});

  // --- Nginx: MUX with smooth WRR and a native weight interface -------------
  {
    testbed::TestbedConfig cfg;
    cfg.seed = 5;
    cfg.policy = "wrr";
    cfg.load_fraction = 0.40;
    testbed::Testbed bed(testbed::three_dip_specs(1.0, 1.0, 1.0), cfg);
    bed.set_static_weights({0.2, 0.3, 0.5});
    bed.run_for(5_s);
    bed.reset_stats();
    // ~10K requests at this load.
    bed.run_for(util::SimTime::seconds(25));
    const auto m = bed.metrics();
    const double total = static_cast<double>(
        m[0].client_requests + m[1].client_requests + m[2].client_requests);
    table.row({"Nginx (WRR)",
               testbed::fmt_pct(m[0].client_requests / total, 0),
               testbed::fmt_pct(m[1].client_requests / total, 0),
               testbed::fmt_pct(m[2].client_requests / total, 0),
               std::to_string(static_cast<int>(total))});
  }

  // --- Azure Traffic Manager: DNS resolution with client caches -------------
  {
    sim::Simulation sim(6);
    net::Network net(sim);
    std::vector<std::unique_ptr<server::DipServer>> dips;
    std::vector<net::IpAddr> addrs;
    for (int i = 0; i < 3; ++i) {
      auto d = std::make_unique<server::DipServer>(
          net, net::IpAddr{10, 1, 0, static_cast<std::uint8_t>(i + 1)},
          server::DipConfig{});
      addrs.push_back(d->address());
      dips.push_back(std::move(d));
    }
    lb::DnsTrafficManager dns(sim, addrs, util::SimTime::seconds(20));
    lb::PoolProgram program(dns.issue_version());
    program.add(addrs[0], 2000).add(addrs[1], 3000).add(addrs[2], 5000);
    dns.apply_program(program);

    workload::ClientConfig ccfg;
    ccfg.requests_per_session = 1.0;
    workload::ClientPool clients(net, net::IpAddr{10, 2, 0, 1}, dns,
                                 workload::TrafficPattern(400.0), ccfg);
    clients.start();
    sim.run_until(util::SimTime::seconds(25));
    clients.stop();

    const auto& per_dip = clients.recorder().per_dip();
    const double total =
        static_cast<double>(clients.recorder().overall().count());
    auto share = [&](int i) {
      const auto it = per_dip.find(addrs[static_cast<std::size_t>(i)]);
      return it == per_dip.end() ? 0.0
                                 : static_cast<double>(it->second.count()) / total;
    };
    table.row({"Azure TM (DNS)", testbed::fmt_pct(share(0), 0),
               testbed::fmt_pct(share(1), 0), testbed::fmt_pct(share(2), 0),
               std::to_string(static_cast<int>(total))});
  }

  table.print();
  std::cout << "Paper: Nginx 20/30/50; Azure TM 18/34/48 (DNS caching adds "
               "slack).\n";
  return 0;
}
