#include "lb/policy.hpp"

#include <stdexcept>

#include "lb/maglev.hpp"
#include "server/dip_server.hpp"
#include "util/weight.hpp"

namespace klb::lb {

const std::vector<std::size_t>& Policy::usable(
    const std::vector<BackendView>& backends, bool need_weight) {
  if (usable_dirty_ || backends.size() != usable_pool_size_ ||
      need_weight != usable_need_weight_) {
    usable_.clear();
    usable_.reserve(backends.size());
    for (std::size_t i = 0; i < backends.size(); ++i) {
      if (!backends[i].enabled) continue;
      if (need_weight && backends[i].weight_units <= 0) continue;
      usable_.push_back(i);
    }
    usable_pool_size_ = backends.size();
    usable_need_weight_ = need_weight;
    usable_dirty_ = false;
  }
  return usable_;
}

std::size_t RoundRobin::pick(const net::FiveTuple&,
                             const std::vector<BackendView>& backends,
                             util::Rng&) {
  const auto& idx = usable(backends, /*need_weight=*/false);
  if (idx.empty()) return kNoBackend;
  return idx[counter_++ % idx.size()];
}

std::size_t SmoothWeightedRoundRobin::pick(
    const net::FiveTuple&, const std::vector<BackendView>& backends,
    util::Rng&) {
  const auto& idx = usable(backends, /*need_weight=*/true);
  if (membership_dirty_ || current_.size() != backends.size()) {
    // Credits are index-keyed: reset them whenever the index -> backend
    // mapping changed (any membership difference, same-size swaps
    // included), but keep them across pure reweights so the smoothing
    // stays smooth through controller reprogramming.
    bool changed = members_.size() != backends.size();
    for (std::size_t i = 0; !changed && i < backends.size(); ++i)
      changed = members_[i] != backends[i].addr.value();
    if (changed) {
      current_.assign(backends.size(), 0);
      members_.resize(backends.size());
      for (std::size_t i = 0; i < backends.size(); ++i)
        members_[i] = backends[i].addr.value();
    }
    membership_dirty_ = false;
  }

  std::int64_t total = 0;
  std::size_t best = kNoBackend;
  for (const auto i : idx) {
    current_[i] += backends[i].weight_units;
    total += backends[i].weight_units;
    if (best == kNoBackend || current_[i] > current_[best]) best = i;
  }
  if (best == kNoBackend) return kNoBackend;
  current_[best] -= total;
  return best;
}

std::size_t LeastConnection::pick(const net::FiveTuple&,
                                  const std::vector<BackendView>& backends,
                                  util::Rng& rng) {
  const auto& idx = usable(backends, /*need_weight=*/false);
  if (idx.empty()) return kNoBackend;
  std::uint64_t best_conns = std::numeric_limits<std::uint64_t>::max();
  ties_.clear();
  for (const auto i : idx) {
    if (backends[i].active_conns < best_conns) {
      best_conns = backends[i].active_conns;
      ties_.clear();
      ties_.push_back(i);
    } else if (backends[i].active_conns == best_conns) {
      ties_.push_back(i);
    }
  }
  return ties_[rng.uniform_int(static_cast<std::uint64_t>(ties_.size()))];
}

std::size_t WeightedLeastConnection::pick(
    const net::FiveTuple&, const std::vector<BackendView>& backends,
    util::Rng& rng) {
  const auto& idx = usable(backends, /*need_weight=*/true);
  if (idx.empty()) return kNoBackend;
  double best_score = std::numeric_limits<double>::infinity();
  ties_.clear();
  for (const auto i : idx) {
    // +1 so empty backends still differentiate by weight.
    const double score =
        (static_cast<double>(backends[i].active_conns) + 1.0) /
        static_cast<double>(backends[i].weight_units);
    if (score < best_score - 1e-12) {
      best_score = score;
      ties_.clear();
      ties_.push_back(i);
    } else if (score <= best_score + 1e-12) {
      ties_.push_back(i);
    }
  }
  return ties_[rng.uniform_int(static_cast<std::uint64_t>(ties_.size()))];
}

std::size_t RandomPolicy::pick(const net::FiveTuple&,
                               const std::vector<BackendView>& backends,
                               util::Rng& rng) {
  const auto& idx = usable(backends, /*need_weight=*/false);
  if (idx.empty()) return kNoBackend;
  return idx[rng.uniform_int(static_cast<std::uint64_t>(idx.size()))];
}

std::size_t WeightedRandom::pick(const net::FiveTuple&,
                                 const std::vector<BackendView>& backends,
                                 util::Rng& rng) {
  const auto& idx = usable(backends, /*need_weight=*/true);
  if (idx.empty()) return kNoBackend;
  if (weights_dirty_ || weights_.size() != idx.size()) {
    weights_.resize(idx.size());
    for (std::size_t k = 0; k < idx.size(); ++k)
      weights_[k] = static_cast<double>(backends[idx[k]].weight_units);
    weights_dirty_ = false;
  }
  const auto k = rng.weighted_index(weights_);
  return k < idx.size() ? idx[k] : kNoBackend;
}

std::size_t PowerOfTwoCpu::pick(const net::FiveTuple&,
                                const std::vector<BackendView>& backends,
                                util::Rng& rng) {
  const auto& idx = usable(backends, /*need_weight=*/false);
  if (idx.empty()) return kNoBackend;
  if (idx.size() == 1) return idx[0];
  const auto a = idx[rng.uniform_int(static_cast<std::uint64_t>(idx.size()))];
  std::size_t b = a;
  while (b == a)
    b = idx[rng.uniform_int(static_cast<std::uint64_t>(idx.size()))];
  auto cpu = [](const BackendView& v) {
    return v.server ? v.server->cpu_utilization_now() : 0.0;
  };
  return cpu(backends[a]) <= cpu(backends[b]) ? a : b;
}

std::size_t HashTuple::pick(const net::FiveTuple& tuple,
                            const std::vector<BackendView>& backends,
                            util::Rng&) KLB_NONALLOCATING {
  // usable() is allocation-free once cached, but only its rebuild branch
  // can prove that — escape the call, keep the pick itself verified.
  const std::vector<std::size_t>* idx = nullptr;
  KLB_EFFECT_ESCAPE("policy.usable_rebuild",
                    idx = &usable(backends, /*need_weight=*/false));
  if (idx->empty()) return kNoBackend;
  return (*idx)[net::hash_tuple(tuple) % idx->size()];
}

std::unique_ptr<Policy> make_policy(const std::string& name) {
  if (name == "rr") return std::make_unique<RoundRobin>();
  if (name == "wrr") return std::make_unique<SmoothWeightedRoundRobin>();
  if (name == "lc") return std::make_unique<LeastConnection>();
  if (name == "wlc") return std::make_unique<WeightedLeastConnection>();
  if (name == "random") return std::make_unique<RandomPolicy>();
  if (name == "wrandom") return std::make_unique<WeightedRandom>();
  if (name == "p2") return std::make_unique<PowerOfTwoCpu>();
  if (name == "hash") return std::make_unique<HashTuple>();
  if (name == "maglev") return std::make_unique<MaglevPolicy>();
  throw std::invalid_argument("unknown LB policy: " + name);
}

}  // namespace klb::lb
