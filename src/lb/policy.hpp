// DIP-selection policies for the MUX dataplane.
//
// These are the algorithms the paper evaluates against (§2.1, §6.2): round
// robin, least connection, random, power-of-two, 5-tuple hash — each in
// unweighted and (where supported) weighted flavours. A policy picks a
// backend for each *new* connection; existing connections stay pinned by
// the MUX's affinity table.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "net/five_tuple.hpp"
#include "util/rng.hpp"

namespace klb::server {
class DipServer;
}

namespace klb::lb {

/// The dataplane's per-backend view handed to a policy on every pick.
struct BackendView {
  net::IpAddr addr;
  std::int64_t weight_units = 0;  // programmed weight, util::kWeightScale = 1.0
  bool enabled = true;
  std::uint64_t active_conns = 0;  // tracked by the MUX (proxy-visible FINs)
  /// Non-owning; only the power-of-two policy reads CPU from it. Real P2
  /// deployments get this signal from an agent — exactly the dependency
  /// KnapsackLB avoids (§6.4) — so it lives here, not in the controller.
  const server::DipServer* server = nullptr;
};

inline constexpr std::size_t kNoBackend = std::numeric_limits<std::size_t>::max();

class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;
  /// true when the policy honours programmed weights.
  virtual bool weighted() const { return false; }
  /// Choose a backend index for a new connection, or kNoBackend.
  virtual std::size_t pick(const net::FiveTuple& tuple,
                           const std::vector<BackendView>& backends,
                           util::Rng& rng) = 0;
  /// The backend pool changed (weights, membership, enable bits). Policies
  /// that precompute per-pool state (maglev's lookup table) rebuild lazily
  /// on the next pick; stateless policies ignore it. The Mux calls this on
  /// every pool mutation.
  virtual void invalidate() {}
};

/// Factory by policy name: "rr", "wrr", "lc", "wlc", "random", "wrandom",
/// "p2", "hash", "maglev". Throws std::invalid_argument for unknown names.
std::unique_ptr<Policy> make_policy(const std::string& name);

// --- concrete policies (exposed for direct construction in tests) ---------

/// Plain round robin: rotate over enabled backends.
class RoundRobin : public Policy {
 public:
  std::string name() const override { return "rr"; }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;

 private:
  std::uint64_t counter_ = 0;
};

/// Nginx-style smooth weighted round robin. With equal weights this
/// degenerates to plain RR; weight updates take effect on the next pick.
class SmoothWeightedRoundRobin : public Policy {
 public:
  std::string name() const override { return "wrr"; }
  bool weighted() const override { return true; }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;

 private:
  std::vector<std::int64_t> current_;
};

/// Least connection: fewest MUX-tracked active connections wins; random
/// tie-break so equal backends share evenly.
class LeastConnection : public Policy {
 public:
  std::string name() const override { return "lc"; }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;
};

/// Weighted least connection (HAProxy semantics): fewest conns/weight.
class WeightedLeastConnection : public Policy {
 public:
  std::string name() const override { return "wlc"; }
  bool weighted() const override { return true; }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;
};

/// Uniform random over enabled backends.
class RandomPolicy : public Policy {
 public:
  std::string name() const override { return "random"; }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;
};

/// Weighted random: probability proportional to programmed weight.
class WeightedRandom : public Policy {
 public:
  std::string name() const override { return "wrandom"; }
  bool weighted() const override { return true; }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;
};

/// Power-of-two-choices on CPU utilization (§6.2's P2): sample two distinct
/// backends, route to the one with lower instantaneous CPU.
class PowerOfTwoCpu : public Policy {
 public:
  std::string name() const override { return "p2"; }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;
};

/// Azure-LB-style 5-tuple hash: unweighted, affinity comes for free.
class HashTuple : public Policy {
 public:
  std::string name() const override { return "hash"; }
  std::size_t pick(const net::FiveTuple& tuple,
                   const std::vector<BackendView>&, util::Rng&) override;
};

}  // namespace klb::lb
