// DIP-selection policies for the MUX dataplane.
//
// These are the algorithms the paper evaluates against (§2.1, §6.2): round
// robin, least connection, random, power-of-two, 5-tuple hash — each in
// unweighted and (where supported) weighted flavours. A policy picks a
// backend for each *new* connection; existing connections stay pinned by
// the MUX's affinity table.
//
// Picks are hot-path calls: the base class caches the usable-index list
// (enabled backends, positive weight where required) and rebuilds it only
// on invalidate() or a pool-size change, so a steady-state pick never
// heap-allocates (ISSUE 5). The Mux calls invalidate() on every pool
// mutation; direct users that mutate their BackendView vector (tests,
// benches) must do the same — a size change is detected automatically, a
// pure weight/enable change is not.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "net/five_tuple.hpp"
#include "util/effects.hpp"
#include "util/rng.hpp"

namespace klb::server {
class DipServer;
}

namespace klb::lb {

class MaglevTable;

/// The dataplane's per-backend view handed to a policy on every pick.
struct BackendView {
  net::IpAddr addr;
  std::int64_t weight_units = 0;  // programmed weight, util::kWeightScale = 1.0
  bool enabled = true;
  std::uint64_t active_conns = 0;  // tracked by the MUX (proxy-visible FINs)
  /// Non-owning; only the power-of-two policy reads CPU from it. Real P2
  /// deployments get this signal from an agent — exactly the dependency
  /// KnapsackLB avoids (§6.4) — so it lives here, not in the controller.
  const server::DipServer* server = nullptr;
};

inline constexpr std::size_t kNoBackend = std::numeric_limits<std::size_t>::max();

class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;
  /// true when the policy honours programmed weights.
  virtual bool weighted() const { return false; }
  /// true when picks read the MUX-tracked connection counts (LC family):
  /// the MUX keeps the policy views' active_conns fresh only then, and
  /// never serves such a policy's picks from the flow cache (a cached
  /// choice would bypass the live-load balancing).
  virtual bool uses_connection_counts() const { return false; }
  /// true when the pick is a pure function of the 5-tuple for a fixed pool
  /// (hash, maglev): only then may the MUX serve repeat tuples from its
  /// flow cache — for rotation/random policies a cached pick would skew
  /// the distribution the policy exists to produce.
  virtual bool pick_is_tuple_deterministic() const { return false; }
  /// Choose a backend index for a new connection, or kNoBackend.
  virtual std::size_t pick(const net::FiveTuple& tuple,
                           const std::vector<BackendView>& backends,
                           util::Rng& rng) = 0;
  /// The backend pool changed (weights, membership, enable bits). Drops
  /// the cached usable list; overrides that keep extra per-pool state
  /// (maglev's table, WRR's smoothing credits) must chain up.
  virtual void invalidate() { usable_dirty_ = true; }
  /// Duplicate this policy, carrying rotation/smoothing state forward so a
  /// pool-generation swap doesn't restart RR at index 0 or drop WRR
  /// credits. The clone is independent: mutating it never touches the
  /// original (generations each own their policy instance).
  virtual std::unique_ptr<Policy> clone() const = 0;
  /// Eagerly rebuild any lazily-maintained per-pool state (maglev's
  /// lookup table) for exactly `backends`, off the packet path. Called on
  /// the control plane after invalidate(), before the generation carrying
  /// this policy is published; the default is a no-op because most
  /// policies rebuild cheaply inside pick().
  virtual void prepare(const std::vector<BackendView>& backends) {
    (void)backends;
  }
  /// The maglev lookup table backing this policy's deterministic picks,
  /// or nullptr when it has none. Non-null enables the Mux's stateless
  /// fast path (lb/consistency.hpp): the table pointer must stay stable
  /// for the policy's lifetime, and its *contents* must be frozen once
  /// the generation carrying the policy is published (prepare() fills it
  /// before publication) — the packet path reads it without a lock.
  virtual const MaglevTable* maglev_table() const { return nullptr; }

 protected:
  /// Indices of enabled backends (positive weight too when `need_weight`),
  /// cached across picks — rebuilt only after invalidate() or when the
  /// pool size changed. Returns a reference: no per-pick allocation.
  const std::vector<std::size_t>& usable(
      const std::vector<BackendView>& backends, bool need_weight);

 private:
  std::vector<std::size_t> usable_;
  std::size_t usable_pool_size_ = 0;
  bool usable_need_weight_ = false;
  bool usable_dirty_ = true;
};

/// Factory by policy name: "rr", "wrr", "lc", "wlc", "random", "wrandom",
/// "p2", "hash", "maglev". Throws std::invalid_argument for unknown names.
std::unique_ptr<Policy> make_policy(const std::string& name);

// --- concrete policies (exposed for direct construction in tests) ---------

/// Plain round robin: rotate over enabled backends.
class RoundRobin : public Policy {
 public:
  std::string name() const override { return "rr"; }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<RoundRobin>(*this);  // carries the rotation point
  }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;

 private:
  std::uint64_t counter_ = 0;
};

/// Nginx-style smooth weighted round robin. With equal weights this
/// degenerates to plain RR; weight updates take effect on the next pick
/// (smoothing credits survive a pure reweight, like nginx's). Membership
/// is re-checked after invalidate(): credits are index-keyed, so carrying
/// them across a membership change used to hand a departed backend's
/// accumulated credit to whichever newcomer inherited its index — the
/// same-size transactional swap made that invisible to the old
/// size-only reset (ISSUE 5).
class SmoothWeightedRoundRobin : public Policy {
 public:
  std::string name() const override { return "wrr"; }
  bool weighted() const override { return true; }
  std::unique_ptr<Policy> clone() const override {
    // Carries the smoothing credits: a reweight-only generation swap must
    // stay as smooth as nginx's in-place reweight.
    return std::make_unique<SmoothWeightedRoundRobin>(*this);
  }
  void invalidate() override {
    Policy::invalidate();
    membership_dirty_ = true;
  }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;

 private:
  std::vector<std::int64_t> current_;
  std::vector<std::uint32_t> members_;  // addr per index, aligned with current_
  bool membership_dirty_ = true;
};

/// Least connection: fewest MUX-tracked active connections wins; random
/// tie-break so equal backends share evenly.
class LeastConnection : public Policy {
 public:
  std::string name() const override { return "lc"; }
  bool uses_connection_counts() const override { return true; }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<LeastConnection>(*this);
  }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;

 private:
  std::vector<std::size_t> ties_;  // scratch, reused across picks
};

/// Weighted least connection (HAProxy semantics): fewest conns/weight.
class WeightedLeastConnection : public Policy {
 public:
  std::string name() const override { return "wlc"; }
  bool weighted() const override { return true; }
  bool uses_connection_counts() const override { return true; }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<WeightedLeastConnection>(*this);
  }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;

 private:
  std::vector<std::size_t> ties_;  // scratch, reused across picks
};

/// Uniform random over enabled backends.
class RandomPolicy : public Policy {
 public:
  std::string name() const override { return "random"; }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<RandomPolicy>(*this);
  }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;
};

/// Weighted random: probability proportional to programmed weight.
class WeightedRandom : public Policy {
 public:
  std::string name() const override { return "wrandom"; }
  bool weighted() const override { return true; }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<WeightedRandom>(*this);
  }
  void invalidate() override {
    Policy::invalidate();
    weights_dirty_ = true;
  }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;

 private:
  std::vector<double> weights_;  // aligned with the cached usable list
  bool weights_dirty_ = true;
};

/// Power-of-two-choices on CPU utilization (§6.2's P2): sample two distinct
/// backends, route to the one with lower instantaneous CPU.
class PowerOfTwoCpu : public Policy {
 public:
  std::string name() const override { return "p2"; }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<PowerOfTwoCpu>(*this);
  }
  std::size_t pick(const net::FiveTuple&, const std::vector<BackendView>&,
                   util::Rng&) override;
};

/// Azure-LB-style 5-tuple hash: unweighted, affinity comes for free.
class HashTuple : public Policy {
 public:
  std::string name() const override { return "hash"; }
  bool pick_is_tuple_deterministic() const override { return true; }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<HashTuple>(*this);
  }
  /// Tuple-deterministic and, steady-state, allocation-free: hash + one
  /// indexed read of the cached usable list. The post-invalidate() cache
  /// rebuild is the "policy.usable_rebuild" escape.
  std::size_t pick(const net::FiveTuple& tuple,
                   const std::vector<BackendView>&, util::Rng&)
      KLB_NONALLOCATING override;
};

}  // namespace klb::lb
