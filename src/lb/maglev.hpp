// Weighted Maglev-style consistent hashing for the MUX dataplane.
//
// A MaglevTable is a flat lookup array (prime-sized) filled from per-backend
// pseudo-random slot permutations (Eisenbud et al., NSDI'16). Each backend's
// permutation is derived only from its stable id, so rebuilding the table
// after a weight or membership change moves as few slots as possible:
// removing one DIP from a 100-DIP pool remaps a few percent of flows, where
// `hash % n` remaps essentially all of them. Slot counts are apportioned to
// the programmed `weight_units` by largest remainder, so the table honours
// KnapsackLB's ILP weights exactly (to one slot).
//
// Packet-path cost is one hash + one array read — O(1) in the DIP count —
// which is what lets the dataplane scale to 10k-DIP pools (bench/
// maglev_lookup.cpp measures it against the O(n) usable-scan policies).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lb/policy.hpp"

namespace klb::lb {

/// One backend as the table sees it: a stable identity (the Mux uses the
/// DIP address value) plus its programmed weight. Entries with weight <= 0
/// take no slots but keep their position so entry indexes stay aligned
/// with the caller's backend indexes.
struct MaglevEntry {
  std::uint64_t id = 0;
  std::int64_t weight_units = 0;
};

class MaglevTable {
 public:
  static constexpr std::uint32_t kEmptySlot =
      std::numeric_limits<std::uint32_t>::max();
  static constexpr std::uint64_t kNoId =
      std::numeric_limits<std::uint64_t>::max();
  /// Default table size (prime). ~650 slots per backend at 100 DIPs; pass
  /// a larger minimum for 10k-DIP pools if finer weight resolution matters.
  static constexpr std::size_t kDefaultMinSize = 65'537;

  /// The table allocates the first prime >= min_table_size slots (the
  /// permutation walk needs the size coprime with every skip).
  explicit MaglevTable(std::size_t min_table_size = kDefaultMinSize);

  /// Rebuild the table. Disruption is minimal only if callers keep each
  /// id's relative order stable across builds (the Mux registration order
  /// does). Entries with weight <= 0 are excluded from the table.
  void build(const std::vector<MaglevEntry>& entries);

  /// Entry index owning `hash`'s slot, or kEmptySlot for an empty table.
  /// One array read — the packet path's per-pick cost; nonblocking.
  std::uint32_t lookup(std::uint64_t hash) const KLB_NONBLOCKING {
    return slots_[hash % slots_.size()];
  }

  /// As lookup(), but resolves to the entry's stable id (kNoId if empty).
  std::uint64_t lookup_id(std::uint64_t hash) const KLB_NONBLOCKING {
    const auto e = lookup(hash);
    return e == kEmptySlot ? kNoId : ids_[e];
  }

  std::size_t table_size() const { return slots_.size(); }
  std::size_t entry_count() const { return ids_.size(); }
  std::uint64_t builds() const { return builds_; }

  /// Slots owned per entry index (weight-proportionality checks).
  std::vector<std::size_t> slot_counts() const;

  /// Resolve every slot to its owner's stable id, truncated to 32 bits
  /// (the Mux keys tables by DIP address values, which fit), with
  /// 0xFFFFFFFF for empty slots. `out` is resized to table_size(). This
  /// is what GenerationDiff (lb/consistency.hpp) diffs across publishes
  /// to find the slots whose pick changed.
  void resolve_slots(std::vector<std::uint32_t>& out) const;

 private:
  std::vector<std::uint32_t> slots_;  // entry index or kEmptySlot
  std::vector<std::uint64_t> ids_;    // stable id per entry index
  std::uint64_t builds_ = 0;
};

/// The "maglev" MUX policy: consistent-hash DIP selection over the 5-tuple,
/// weight-aware, O(1) per pick.
///
/// The table is rebuilt lazily on the next pick after invalidate(); the Mux
/// calls invalidate() on every weight/membership/enable change. Direct
/// users that mutate their BackendView vector (tests, benches) must do the
/// same — a size change is detected automatically, a pure weight change is
/// not (detecting it would cost the O(n) scan this policy exists to avoid).
class MaglevPolicy : public Policy {
 public:
  explicit MaglevPolicy(std::size_t min_table_size = MaglevTable::kDefaultMinSize)
      : table_(min_table_size), min_table_size_(min_table_size) {}

  std::string name() const override { return "maglev"; }
  bool weighted() const override { return true; }
  bool pick_is_tuple_deterministic() const override { return true; }
  void invalidate() override {
    Policy::invalidate();
    dirty_ = true;
  }
  /// Fresh same-sized instance, not a copy: the table is derived state
  /// that prepare()/the next pick rebuilds, and copying O(table) slots per
  /// generation publish would put a 65k memcpy on the control path.
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<MaglevPolicy>(min_table_size_);
  }
  /// Eager build on the control plane so the first pick after a
  /// generation publish doesn't pay the O(table) fill under the pick lock.
  void prepare(const std::vector<BackendView>& backends) override {
    rebuild(backends);
  }

  /// Steady-state: hash + one table read, allocation-free. The lazy
  /// rebuild after invalidate() is the "policy.maglev_rebuild" escape
  /// (published generations are prepared eagerly and never take it).
  std::size_t pick(const net::FiveTuple& tuple,
                   const std::vector<BackendView>& backends,
                   util::Rng& rng) KLB_NONALLOCATING override;

  const MaglevTable& table() const { return table_; }
  /// Member table: pointer stable for the policy's lifetime, contents
  /// frozen after prepare() (published generations are never re-prepared).
  const MaglevTable* maglev_table() const override { return &table_; }

 private:
  void rebuild(const std::vector<BackendView>& backends);

  MaglevTable table_;
  std::size_t min_table_size_ = MaglevTable::kDefaultMinSize;
  bool dirty_ = true;
  std::size_t cached_count_ = 0;
};

/// Maglev policy backed by an externally built, immutable table snapshot.
///
/// A MuxPool ECMP-shards one VIP over N muxes; for their picks to agree
/// (per-connection consistency even when ECMP re-shards a flow to another
/// mux), all N must consult the *same* table. The pool builds one
/// MaglevTable per committed program version and publishes it to every
/// member's policy as a shared_ptr<const> snapshot — pointer-equal across
/// the pool, swapped atomically, never mutated in place.
///
/// The table resolves hashes to stable ids (DIP address values); the
/// policy maps ids to local backend indexes through a cache rebuilt on
/// invalidate(), so a pick stays O(1) while each mux keeps its own view
/// (a draining backend may linger on one mux and be gone from another).
class SharedMaglevPolicy : public Policy {
 public:
  std::string name() const override { return "maglev-shared"; }
  bool weighted() const override { return true; }
  bool pick_is_tuple_deterministic() const override { return true; }
  void invalidate() override {
    Policy::invalidate();
    index_dirty_ = true;
  }
  /// Copying is cheap and correct here: the table is an immutable shared
  /// snapshot (the clone aliases it) and the id->index cache rebuilds.
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<SharedMaglevPolicy>(*this);
  }
  void prepare(const std::vector<BackendView>& backends) override {
    index_by_id_.clear();
    for (std::size_t i = 0; i < backends.size(); ++i)
      index_by_id_[backends[i].addr.value()] = i;
    index_dirty_ = false;
  }

  /// Publish a new snapshot (pool-wide, once per program version).
  void set_table(std::shared_ptr<const MaglevTable> table) {
    table_ = std::move(table);
    index_dirty_ = true;
  }
  /// The current snapshot — pointer-equal across all muxes of a pool.
  const std::shared_ptr<const MaglevTable>& table_snapshot() const {
    return table_;
  }
  /// The shared snapshot (immutable by contract); clones alias it, so the
  /// pointer outlives any generation that carries this policy.
  const MaglevTable* maglev_table() const override { return table_.get(); }

  /// Steady-state: hash + table read + two frozen-map finds, allocation-
  /// free. The id->index cache rebuild after invalidate()/set_table() is
  /// the "policy.maglev_rebuild" escape (prepare() fills it eagerly on the
  /// control plane, so published generations never take it).
  std::size_t pick(const net::FiveTuple& tuple,
                   const std::vector<BackendView>& backends,
                   util::Rng& rng) KLB_NONALLOCATING override;

 private:
  std::shared_ptr<const MaglevTable> table_;
  std::unordered_map<std::uint64_t, std::size_t> index_by_id_;
  bool index_dirty_ = true;
};

}  // namespace klb::lb
