// Epoch-based reclamation for the MUX's pool-state generations (ROADMAP
// item 1, the RCU-style publication scheme).
//
// The problem: the packet path must load "the current pool configuration"
// wait-free, while the control plane keeps publishing new configurations
// at programming rate. A reader that loaded generation G must be able to
// keep dereferencing it for the (short) duration of one packet, even if
// the control plane published G+1 mid-packet — so G cannot be freed until
// every such reader is provably gone.
//
// The scheme is classic epoch-based reclamation (EBR):
//
//   * A global epoch counter, bumped once per retire.
//   * A fixed array of per-reader slots. A reader *pins* by claiming a
//     free slot and publishing the epoch it observed, with a
//     publish-then-verify loop: store the epoch, re-read the global
//     counter, and re-publish until the two agree. All slot/epoch
//     accesses are seq_cst, which is what makes the verify conclusive: if
//     a writer's bump is not visible to the reader's verify load, then
//     the reader's slot store is visible to the writer's scan (they
//     cannot both miss each other in the single total order).
//   * A writer retires an object only *after* unlinking it (swapping the
//     current-generation pointer), and tags it with the post-bump epoch.
//     Any reader pinned at an epoch >= the tag pinned after the bump,
//     hence after the unlink, hence can only see the new object; readers
//     pinned below the tag are visible in the slot array and block
//     reclamation.
//   * reclaim() frees every retired object whose tag is <= the minimum
//     epoch over the occupied slots (or the current epoch when no reader
//     is pinned).
//
// Pin/unpin is one CAS + one load / one store — no locks, no allocation —
// so the packet path can afford a pin per packet. Retire/reclaim take an
// internal mutex; they run on the control plane only.
//
// The domain stores retired objects as shared_ptr<const void>, so it can
// hold anything and "free" means dropping the last reference.
// Debug invariants (KLB_DEBUG_SYNC, see util/sync.hpp): a domain may
// register its owner's control-plane mutex — pin() then aborts if the
// calling thread holds it (the pin would block the very reclamation that
// control section can trigger). A domain may also opt into published-set
// tracking — retire() then aborts on an object that was never announced
// via debug_mark_published (retiring something readers could never have
// been handed means the unlink-before-retire contract was broken). Guard
// release asserts its slot is still claimed, catching double releases and
// foreign slot stores.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "util/sync.hpp"

namespace klb::lb {

class EpochDomain {
 public:
  /// Reader slots. More concurrent pins than this spin-wait for a slot;
  /// 64 comfortably covers every thread count the benches drive (a
  /// thread may hold two pins at once: packet path + inline GC).
  static constexpr std::size_t kSlots = 64;

  /// RAII pin: holds a reader slot from pin() until destruction (or an
  /// explicit release()). Movable so it can ride in a return value.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& o) noexcept : slot_(o.slot_) { o.slot_ = nullptr; }
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        release();
        slot_ = o.slot_;
        o.slot_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { release(); }

    /// The unpin: one seq_cst store. Nonblocking — this runs at the tail
    /// of every packet/burst (the debug-validator hooks are compiled out
    /// of effect-checked Release builds and statically exempted here).
    void release() KLB_NONBLOCKING {
      if (slot_ != nullptr) {
#if KLB_DEBUG_SYNC
        KLB_EFFECTS_SUPPRESS_BEGIN
        if (slot_->load(std::memory_order_seq_cst) == 0) {
          util::sync_debug::die(
              "epoch invariant violation",
              "releasing a pin whose slot is already free (double release, "
              "or a foreign store onto this slot)");
        }
        KLB_EFFECTS_SUPPRESS_END
#endif
        slot_->store(0, std::memory_order_seq_cst);
        slot_ = nullptr;
#if KLB_DEBUG_SYNC
        KLB_EFFECTS_SUPPRESS_BEGIN
        util::sync_debug::on_unpin();
        KLB_EFFECTS_SUPPRESS_END
#endif
      }
    }
    bool active() const KLB_NONBLOCKING { return slot_ != nullptr; }

   private:
    friend class EpochDomain;
    explicit Guard(std::atomic<std::uint64_t>* slot) : slot_(slot) {}
    std::atomic<std::uint64_t>* slot_ = nullptr;
  };

  EpochDomain() = default;
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Claim a reader slot at the current epoch (wait-free in the common
  /// case; spins only if all kSlots are simultaneously pinned). The
  /// caller must pin *before* loading the protected pointer.
  /// Nonallocating, not nonblocking: the first pin on a thread seeds its
  /// slot hint ("epoch.pin_seed" escape) and an oversubscribed domain
  /// yields between rescans ("epoch.pin_stall" escape).
  Guard pin() KLB_NONALLOCATING;

  /// Hand an unlinked object to the domain. The caller must have made the
  /// object unreachable to *new* readers first (swapped the published
  /// pointer); retire() tags it with a fresh epoch and reclaims whatever
  /// has become safe. Control-plane only.
  void retire(std::shared_ptr<const void> obj) KLB_EXCLUDES(retired_mu_);

  /// Free every retired object no pinned reader can still hold. Returns
  /// the number reclaimed. Safe to call any time from the control plane.
  std::size_t reclaim() KLB_EXCLUDES(retired_mu_);

  /// Debug wiring (no-ops unless KLB_DEBUG_SYNC): tell the validator which
  /// control-plane mutex guards this domain's publication. pin() then
  /// aborts when called with that mutex held by the same thread.
  void debug_register_control(const util::Mutex* control);
  /// Opt this domain into published-set tracking: once enabled, retire()
  /// aborts on an object never announced via debug_mark_published().
  void debug_track_published();
  /// Announce that `obj` has been published to readers (call at the
  /// pointer-swap site, before the old generation is retired).
  void debug_mark_published(const void* obj);

  /// Current global epoch (starts at 1, bumped once per retire).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }
  /// Minimum epoch over the pinned readers, or the current epoch when no
  /// reader is pinned — the reclamation floor.
  std::uint64_t oldest_live_epoch() const;

  std::uint64_t retired_total() const {
    return retired_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t reclaimed_total() const {
    return reclaimed_total_.load(std::memory_order_relaxed);
  }
  /// Objects retired but not yet reclaimed (a straggling reader, or no
  /// reclaim() call since the last retire burst).
  std::size_t pending_retired() const KLB_EXCLUDES(retired_mu_);

 private:
  /// Own cache line per slot: two readers pinning concurrently must not
  /// false-share.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};  // 0 = free (live epochs start at 1)
  };

  struct Retired {
    std::uint64_t tag = 0;
    std::shared_ptr<const void> obj;
  };

  std::array<Slot, kSlots> slots_;
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> retired_total_{0};
  std::atomic<std::uint64_t> reclaimed_total_{0};
  mutable util::Mutex retired_mu_{"klb.epoch.retired"};
  std::vector<Retired> retired_ KLB_GUARDED_BY(retired_mu_);

#if KLB_DEBUG_SYNC
  void debug_check_retire(const void* obj);
  /// Raw std::mutex: validator-adjacent state must not instrument itself.
  mutable std::mutex debug_mu_;
  const util::Mutex* debug_control_ = nullptr;
  bool debug_track_published_ = false;
  std::set<const void*> debug_published_;
#endif
};

}  // namespace klb::lb
