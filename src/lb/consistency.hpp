// Stateless-fast-path subsystem: per-generation exception filters for
// tuple-deterministic policies (ROADMAP item 2, the stateful/stateless
// hybrid argued by Cohen et al., "LB Scalability: Achieving the Right
// Balance Between Being Stateful and Stateless").
//
// The observation: with a Maglev-style table, a flow's pick is a pure
// function of its 5-tuple *while its table slot keeps the same owner*. A
// per-flow pin is only load-bearing for the small set of "exception"
// flows whose slot's owner changed recently — everyone else can be routed
// by hash alone, with no FlowTable insert, no FIN bookkeeping, and no GC.
// At 10M concurrent flows that is the difference between a multi-GB
// connection table and a few MB of pinned exceptions.
//
// Three pieces:
//
//   * GenerationDiff — control-plane-only engine owned by the Mux. On
//     every generation publish it resolves the new table to a per-slot
//     owner vector, diffs it against the running history, and emits an
//     immutable ExceptionFilter for the generation being published. It
//     remembers, per slot, the last *breaking* change (a non-empty owner
//     replaced) and the owner that change displaced.
//   * ExceptionFilter — the immutable product, carried by (and retired
//     with) its PoolGeneration. A compact slot bitmap ("changed within the
//     last `history` publishes") plus a sparse slot -> previous-owner map.
//     The packet path reads it lock-free through the generation pin.
//   * SlotPinCounts — live pinned-exception-flow counts per slot (relaxed
//     atomics, fixed size, allocated once). A slot with live pins stays on
//     the exception path even after its change ages out of the filter
//     window, so a pinned flow is never prematurely routed by hash (the
//     "no premature unpin" invariant; see ISSUE 8's churn tests).
//
// Routing decision (Mux::handle_request):
//
//     slot unchanged && no live pins        -> route by hash, stateless
//     slot changed, mid-flow, prev alive    -> adopt: pin to prev owner
//     slot changed, mid-flow, prev gone     -> affinity break (counted)
//     slot changed, opener                  -> pin to the current pick: a
//                                              stateless open would be
//                                              indistinguishable mid-flow
//                                              from the pre-change flows
//                                              and get mis-adopted
//     policy non-deterministic / no table   -> always pin (legacy path)
//
// Stateless flows adopt a pin on their first packet after their slot's
// owner moves. The one documented hole: a flow silent across more than
// `history` consecutive publishes that span a change of its slot cannot
// be adopted (its previous owner has aged out of the filter) and breaks —
// the same trade the stateless half of the literature makes. Size
// `history` to the programming rate, or keep such flows on a pinning
// policy.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/effects.hpp"

namespace klb::lb {

class MaglevTable;

/// Mux-level knobs for the stateless fast path. `stateless = false` (the
/// default) keeps the classic pin-every-flow dataplane byte-for-byte.
struct ConsistencyConfig {
  bool stateless = false;
  /// A changed slot stays on the exception path for this many publishes
  /// (>= 1). Larger windows tolerate longer flow silences across churn at
  /// the cost of more exception pins.
  std::size_t history = 8;
  /// Quiescence window a drainer must be idle for before its drain may
  /// auto-complete (stateless mode only). Stateless flows hold no pin, so
  /// `active == 0` alone no longer proves a drainer empty — their traffic
  /// is the only evidence they exist. Every request the drainer serves
  /// re-arms the window (see Mux::drain_ripe), so live flows keep their
  /// backend as long as their inter-packet gaps stay under the grace;
  /// flows silent for longer are adopted by the filter on their next
  /// packet, or break once it forgets. Size it past the service-time tail:
  /// a flow whose response is in flight when the window closes forwards
  /// nothing until the response lands. Microseconds of sim time.
  std::int64_t drain_grace_us = 1'000'000;
};

/// Immutable per-generation exception summary. Readers access it through
/// a pinned PoolGeneration; it is reclaimed with the generation.
class ExceptionFilter {
 public:
  /// Sentinel owner: "no previous owner recorded" / empty slot. Owner ids
  /// are DIP address values (see MaglevTable::resolve_slots).
  static constexpr std::uint32_t kNoOwner = 0xFFFFFFFFu;

  ExceptionFilter(std::uint64_t seq, std::size_t table_size)
      : seq_(seq), table_size_(table_size),
        bits_((table_size + 63) / 64, 0) {}

  /// True when `slot`'s owner changed within the filter window. Packet
  /// path: one bitmap word read, nonblocking.
  bool is_exception(std::size_t slot) const KLB_NONBLOCKING {
    return (bits_[slot >> 6] >> (slot & 63)) & 1u;
  }
  /// The owner displaced by `slot`'s most recent in-window change —
  /// where this slot's pre-change stateless flows actually live. kNoOwner
  /// when the slot is not flagged (or the change emptied from nothing).
  /// A read-only find on the frozen map: no allocation, no lock.
  std::uint32_t prev_owner(std::size_t slot) const KLB_NONBLOCKING {
    const auto it = prev_.find(static_cast<std::uint32_t>(slot));
    return it == prev_.end() ? kNoOwner : it->second;
  }

  std::uint64_t seq() const KLB_NONBLOCKING { return seq_; }
  std::size_t table_size() const KLB_NONBLOCKING { return table_size_; }
  /// Flagged slots (observability; the testbed reports it).
  std::size_t exception_slots() const { return exception_count_; }

 private:
  friend class GenerationDiff;

  void flag(std::size_t slot, std::uint32_t prev) {
    bits_[slot >> 6] |= 1ull << (slot & 63);
    ++exception_count_;
    if (prev != kNoOwner) prev_.emplace(static_cast<std::uint32_t>(slot), prev);
  }

  std::uint64_t seq_ = 0;
  std::size_t table_size_ = 0;
  std::size_t exception_count_ = 0;
  std::vector<std::uint64_t> bits_;
  std::unordered_map<std::uint32_t, std::uint32_t> prev_;
};

/// Live exception-pin counts per table slot. Fixed size (allocated once
/// in the Mux constructor), relaxed atomics: the packet path increments on
/// pin, decrements on unpin (FIN / GC / backend removal), and reads one
/// counter per packet — no lock, no allocation. Counts are exact because
/// in stateless mode *every* FlowTable insert and erase passes through
/// them, regardless of which path created the pin.
class SlotPinCounts {
 public:
  explicit SlotPinCounts(std::size_t slots) : counts_(slots) {}

  SlotPinCounts(const SlotPinCounts&) = delete;
  SlotPinCounts& operator=(const SlotPinCounts&) = delete;

  std::size_t size() const KLB_NONBLOCKING { return counts_.size(); }

  void inc(std::size_t slot) KLB_NONBLOCKING {
    counts_[slot].fetch_add(1, std::memory_order_relaxed);
  }
  /// Floored at zero (mirrors the active-connection counters): a stray
  /// decrement must not wrap a neighbouring slot's protection away. The
  /// CAS loop is lock-free (retries only under concurrent traffic on the
  /// same slot), so this stays inside the nonblocking contract.
  void dec(std::size_t slot) KLB_NONBLOCKING {
    auto& c = counts_[slot];
    auto cur = c.load(std::memory_order_relaxed);
    while (cur > 0 &&
           !c.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed)) {
    }
  }
  std::uint32_t count(std::size_t slot) const KLB_NONBLOCKING {
    return counts_[slot].load(std::memory_order_relaxed);
  }
  /// Sum over all slots — O(slots), control/observability path only.
  std::uint64_t total() const;

 private:
  std::vector<std::atomic<std::uint32_t>> counts_;
};

/// Control-plane diff engine: one per Mux, guarded by the Mux's control
/// mutex (publications are already serialized there). Not thread-safe on
/// its own.
class GenerationDiff {
 public:
  explicit GenerationDiff(ConsistencyConfig cfg);

  /// Diff `table` against the running history and build the filter for
  /// the generation being published as `seq`. Returns nullptr (stateless
  /// disengaged for this generation) when the table's size does not match
  /// the first-seen size — a policy swap changed table geometry, so slot
  /// indexes are incomparable.
  std::shared_ptr<const ExceptionFilter> on_publish(const MaglevTable& table,
                                                    std::uint64_t seq);

  /// Publishes diffed so far (the window clock).
  std::uint64_t publishes() const { return publishes_; }

 private:
  ConsistencyConfig cfg_;
  std::uint64_t publishes_ = 0;
  std::vector<std::uint32_t> owners_;    // current owner per slot
  std::vector<std::uint32_t> prev_;      // owner displaced by the last change
  std::vector<std::uint64_t> changed_at_;  // publish count of it (0 = never)
  std::vector<std::uint32_t> scratch_;   // resolve_slots target, reused
};

}  // namespace klb::lb
