// DNS-based weighted load balancing (Azure Traffic Manager in §6.5).
//
// For LBs with no weight interface, KnapsackLB falls back to DNS: the
// authority resolves the service name to a DIP IP drawn proportionally to
// the programmed weights. Clients cache resolutions for a TTL, so weight
// changes are adhered to only as caches expire — the lag the paper calls
// out in Table 5's discussion.
//
// Programming is the same transactional PoolProgram contract the MUX
// serves. The DNS analogue of connection draining is the TTL: a backend
// programmed kDraining leaves rotation immediately but its cached
// resolutions are honoured until they expire (no client is yanked
// mid-session), and the record is dropped once a full TTL has passed. A
// kRemoved (or omitted) backend is cut now: its cache entries are evicted
// so no client resolves to a decommissioned DIP for up to a TTL.
#pragma once

#include <cstdint>
#include <iterator>
#include <unordered_map>
#include <vector>

#include "lb/pool_program.hpp"
#include "net/address.hpp"
#include "sim/simulation.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/weight.hpp"

namespace klb::lb {

class DnsTrafficManager : public PoolProgrammer {
 public:
  DnsTrafficManager(sim::Simulation& sim, std::vector<net::IpAddr> dips,
                    util::SimTime ttl = util::SimTime::seconds(30))
      : sim_(sim), rng_(sim.rng().fork()), ttl_(ttl) {
    const auto share =
        dips.empty() ? util::kWeightScale
                     : util::kWeightScale / static_cast<std::int64_t>(dips.size());
    for (const auto dip : dips) records_.push_back(Record{dip, share, false,
                                                          util::SimTime::zero()});
  }

  // --- PoolProgrammer --------------------------------------------------------
  std::size_t backend_count() const override {
    std::size_t n = 0;
    for (const auto& r : records_)
      if (!drain_expired(r)) ++n;
    return n;
  }

  std::vector<net::IpAddr> backend_addrs() const override {
    std::vector<net::IpAddr> out;
    for (const auto& r : records_)
      if (!r.draining) out.push_back(r.addr);
    return out;
  }

  void apply_program(const PoolProgram& program) override {
    if (program.version <= applied_version_) {
      ++superseded_programs_;
      util::log_warn("klb-dns") << "discarding stale pool program v"
                                << program.version << " (already at v"
                                << applied_version_ << ")";
      return;
    }
    applied_version_ = program.version;
    expire_drained();

    std::unordered_map<std::uint32_t, const PoolEntry*> desired;
    for (const auto& e : program.entries) desired[e.dip.value()] = &e;

    for (auto it = records_.begin(); it != records_.end();) {
      // Absent (or consumed by an earlier duplicate record): removed —
      // unless the program is weights-only or the record already drains.
      const auto d = desired.find(it->addr.value());
      if (d == desired.end() || d->second == nullptr) {
        if (program.weights_only || it->draining) {
          ++it;
        } else {
          evict_cached(it->addr);
          it = records_.erase(it);
        }
        continue;
      }
      switch (d->second->state) {
        case BackendState::kActive:
          it->weight_units =
              d->second->weight_units < 0 ? 0 : d->second->weight_units;
          it->draining = false;
          ++it;
          break;
        case BackendState::kDraining:
          it->weight_units = 0;
          if (!it->draining) {
            it->draining = true;
            it->drain_deadline = sim_.now() + ttl_;  // caches expired by then
          }
          ++it;
          break;
        case BackendState::kRemoved:
          evict_cached(it->addr);
          it = records_.erase(it);
          break;
      }
      d->second = nullptr;  // consumed
    }

    for (const auto& e : program.entries) {
      if (program.weights_only) break;  // no admissions
      const auto d = desired.find(e.dip.value());
      if (d == desired.end() || d->second == nullptr) continue;
      d->second = nullptr;
      if (e.state != BackendState::kActive) continue;
      records_.push_back(Record{e.dip, e.weight_units < 0 ? 0 : e.weight_units,
                                false, util::SimTime::zero()});
    }
  }

  std::uint64_t applied_version() const { return applied_version_; }
  std::uint64_t superseded_programs() const { return superseded_programs_; }

  // --- resolver -------------------------------------------------------------
  /// Authoritative resolution: weighted random over the in-rotation DIPs.
  /// With no resolvable DIP (empty or fully parked pool) the resolution is
  /// dropped — an empty IpAddr, never a blind fallback to some parked or
  /// draining backend.
  net::IpAddr resolve_authoritative() {
    expire_drained();
    std::vector<double> w(records_.size(), 0.0);
    bool any = false;
    for (std::size_t i = 0; i < records_.size(); ++i) {
      if (records_[i].draining || records_[i].weight_units <= 0) continue;
      w[i] = static_cast<double>(records_[i].weight_units);
      any = true;
    }
    if (!any) {
      ++dropped_resolutions_;
      return net::IpAddr{};
    }
    const auto i = rng_.weighted_index(w);
    if (i >= records_.size()) {  // defensive: weighted_index found no mass
      ++dropped_resolutions_;
      return net::IpAddr{};
    }
    ++resolutions_;
    return records_[i].addr;
  }

  /// Resolution through a per-client cache: `client_id` keys the cache
  /// entry; re-resolves only after the TTL expires. Failed resolutions are
  /// not cached (the client retries next time).
  net::IpAddr resolve_cached(std::uint64_t client_id) {
    const auto it = cache_.find(client_id);
    if (it != cache_.end() && it->second.expires > sim_.now() &&
        !(it->second.addr == net::IpAddr{})) {
      ++cache_hits_;
      return it->second.addr;
    }
    const auto addr = resolve_authoritative();
    if (addr == net::IpAddr{}) {
      cache_.erase(client_id);
      return addr;
    }
    cache_[client_id] = CacheEntry{addr, sim_.now() + ttl_};
    return addr;
  }

  util::SimTime ttl() const { return ttl_; }
  std::uint64_t authoritative_resolutions() const { return resolutions_; }
  std::uint64_t cache_hits() const { return cache_hits_; }
  /// Cache entries evicted because their DIP was removed from the pool.
  std::uint64_t cache_evictions() const { return cache_evictions_; }
  /// Resolutions dropped because no DIP was in rotation.
  std::uint64_t dropped_resolutions() const { return dropped_resolutions_; }
  std::size_t draining_count() const {
    std::size_t n = 0;
    for (const auto& r : records_)
      if (r.draining && !drain_expired(r)) ++n;
    return n;
  }

 private:
  struct Record {
    net::IpAddr addr;
    std::int64_t weight_units = 0;
    bool draining = false;
    util::SimTime drain_deadline = util::SimTime::zero();
  };

  struct CacheEntry {
    net::IpAddr addr;
    util::SimTime expires = util::SimTime::zero();
  };

  bool drain_expired(const Record& r) const {
    return r.draining && r.drain_deadline <= sim_.now();
  }

  void expire_drained() {
    for (auto it = records_.begin(); it != records_.end();)
      it = drain_expired(*it) ? records_.erase(it) : std::next(it);
  }

  void evict_cached(net::IpAddr addr) {
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (it->second.addr == addr) {
        ++cache_evictions_;
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
  }

  sim::Simulation& sim_;
  util::Rng rng_;
  util::SimTime ttl_;
  std::vector<Record> records_;
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::uint64_t applied_version_ = 0;
  std::uint64_t superseded_programs_ = 0;
  std::uint64_t resolutions_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_evictions_ = 0;
  std::uint64_t dropped_resolutions_ = 0;
};

}  // namespace klb::lb
