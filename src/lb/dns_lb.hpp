// DNS-based weighted load balancing (Azure Traffic Manager in §6.5).
//
// For LBs with no weight interface, KnapsackLB falls back to DNS: the
// authority resolves the service name to a DIP IP drawn proportionally to
// the programmed weights. Clients cache resolutions for a TTL, so weight
// changes are adhered to only as caches expire — the lag the paper calls
// out in Table 5's discussion.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lb/lb_controller.hpp"
#include "net/address.hpp"
#include "sim/simulation.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/weight.hpp"

namespace klb::lb {

class DnsTrafficManager : public WeightInterface {
 public:
  DnsTrafficManager(sim::Simulation& sim, std::vector<net::IpAddr> dips,
                    util::SimTime ttl = util::SimTime::seconds(30))
      : sim_(sim), rng_(sim.rng().fork()), dips_(std::move(dips)), ttl_(ttl) {
    weights_.assign(dips_.size(), util::kWeightScale /
                                      static_cast<std::int64_t>(dips_.size()));
    enabled_.assign(dips_.size(), true);
  }

  // --- WeightInterface ------------------------------------------------------
  std::size_t backend_count() const override { return dips_.size(); }

  void program_weights(const std::vector<std::int64_t>& units) override {
    if (units.size() != weights_.size()) {
      util::log_warn("klb-dns") << "rejecting weight programming: "
                                << units.size() << " entries for "
                                << weights_.size() << " DIPs";
      return;
    }
    for (std::size_t i = 0; i < weights_.size(); ++i)
      weights_[i] = units[i] < 0 ? 0 : units[i];
  }

  void set_backend_enabled(std::size_t i, bool enabled) override {
    if (i < enabled_.size()) enabled_[i] = enabled;
  }

  void add_backend(net::IpAddr dip) override {
    // Same churn semantics as the MUX: a fair share for the newcomer,
    // existing ratios preserved (DNS resolution is already proportional,
    // so no exact-sum renormalization is needed).
    std::int64_t sum = 0;
    for (const auto w : weights_) sum += w;
    dips_.push_back(dip);
    weights_.push_back(weights_.empty() || sum <= 0
                           ? util::kWeightScale
                           : sum / static_cast<std::int64_t>(weights_.size()));
    enabled_.push_back(true);
  }

  bool remove_backend(std::size_t i) override {
    if (i >= dips_.size()) return false;
    dips_.erase(dips_.begin() + static_cast<std::ptrdiff_t>(i));
    weights_.erase(weights_.begin() + static_cast<std::ptrdiff_t>(i));
    enabled_.erase(enabled_.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }

  // --- resolver -------------------------------------------------------------
  /// Authoritative resolution: weighted random over enabled DIPs.
  net::IpAddr resolve_authoritative() {
    std::vector<double> w(dips_.size(), 0.0);
    for (std::size_t i = 0; i < dips_.size(); ++i)
      if (enabled_[i]) w[i] = static_cast<double>(weights_[i]);
    auto i = rng_.weighted_index(w);
    if (i >= dips_.size()) i = 0;
    ++resolutions_;
    return dips_[i];
  }

  /// Resolution through a per-client cache: `client_id` keys the cache
  /// entry; re-resolves only after the TTL expires.
  net::IpAddr resolve_cached(std::uint64_t client_id) {
    auto& entry = cache_[client_id];
    if (entry.expires <= sim_.now() || entry.addr == net::IpAddr{}) {
      entry.addr = resolve_authoritative();
      entry.expires = sim_.now() + ttl_;
    } else {
      ++cache_hits_;
    }
    return entry.addr;
  }

  util::SimTime ttl() const { return ttl_; }
  std::uint64_t authoritative_resolutions() const { return resolutions_; }
  std::uint64_t cache_hits() const { return cache_hits_; }

 private:
  struct CacheEntry {
    net::IpAddr addr;
    util::SimTime expires = util::SimTime::zero();
  };

  sim::Simulation& sim_;
  util::Rng rng_;
  std::vector<net::IpAddr> dips_;
  util::SimTime ttl_;
  std::vector<std::int64_t> weights_;
  std::vector<bool> enabled_;
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::uint64_t resolutions_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace klb::lb
