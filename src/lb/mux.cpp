#include "lb/mux.hpp"

#include "util/logging.hpp"
#include "util/weight.hpp"

namespace klb::lb {

Mux::Mux(net::Network& net, net::IpAddr vip, std::unique_ptr<Policy> policy)
    : net_(net), vip_(vip), policy_(std::move(policy)),
      rng_(net.sim().rng().fork()) {
  net_.attach(vip_, this);
}

Mux::~Mux() { net_.attach(vip_, nullptr); }

void Mux::set_policy(std::unique_ptr<Policy> policy) {
  policy_ = std::move(policy);
}

void Mux::add_backend(net::IpAddr dip, const server::DipServer* server) {
  Backend b;
  b.addr = dip;
  b.server = server;
  // New backends start at an equal share so an unweighted pool works out
  // of the box; weighted policies get reprogrammed by the LB controller.
  backends_.push_back(b);
  const auto equal = util::kWeightScale /
                     static_cast<std::int64_t>(backends_.size());
  for (auto& be : backends_) be.weight_units = equal;
}

void Mux::set_weight_units(const std::vector<std::int64_t>& units) {
  for (std::size_t i = 0; i < backends_.size() && i < units.size(); ++i)
    backends_[i].weight_units = units[i] < 0 ? 0 : units[i];
}

std::vector<std::int64_t> Mux::weight_units() const {
  std::vector<std::int64_t> out(backends_.size());
  for (std::size_t i = 0; i < backends_.size(); ++i)
    out[i] = backends_[i].weight_units;
  return out;
}

void Mux::set_backend_enabled(std::size_t i, bool enabled) {
  if (i < backends_.size()) backends_[i].enabled = enabled;
}

void Mux::reset_counters() {
  for (auto& b : backends_) {
    b.connections = 0;
    b.forwarded = 0;
  }
  total_forwarded_ = 0;
  no_backend_drops_ = 0;
}

std::vector<BackendView> Mux::views() const {
  std::vector<BackendView> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b.view());
  return out;
}

void Mux::on_message(const net::Message& msg) {
  switch (msg.type) {
    case net::MsgType::kHttpRequest:
      handle_request(msg);
      break;
    case net::MsgType::kFin:
      handle_fin(msg);
      break;
    default:
      break;
  }
}

void Mux::handle_request(const net::Message& msg) {
  std::size_t dip;
  const auto it = affinity_.find(msg.tuple);
  if (it != affinity_.end()) {
    dip = it->second;  // connection affinity: pinned regardless of weights
  } else {
    dip = policy_->pick(msg.tuple, views(), rng_);
    if (dip == kNoBackend) {
      ++no_backend_drops_;
      return;  // connection refused; client times out
    }
    affinity_[msg.tuple] = dip;
    ++backends_[dip].active;
    ++backends_[dip].connections;
  }
  ++backends_[dip].forwarded;
  ++total_forwarded_;
  net_.send(backends_[dip].addr, msg);  // original tuple preserved (encap)
}

void Mux::handle_fin(const net::Message& msg) {
  const auto it = affinity_.find(msg.tuple);
  if (it == affinity_.end()) return;
  auto& b = backends_[it->second];
  if (b.active > 0) --b.active;
  net_.send(b.addr, msg);  // let the server close out the connection too
  affinity_.erase(it);
}

}  // namespace klb::lb
