#include "lb/mux.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "util/logging.hpp"
#include "util/weight.hpp"

namespace klb::lb {

namespace {
constexpr const char* kLog = "klb-mux";
/// Inline idle-flow sweeps are amortized so the whole table is covered
/// once per this many forwarded requests (one shard per trigger), keeping
/// the GC O(1)-ish per packet and shard-local.
constexpr std::uint64_t kGcRequestInterval = 4096;
}  // namespace

Mux::Mux(net::Network& net, net::IpAddr vip, std::unique_ptr<Policy> policy,
         bool attach_to_vip, FlowTableConfig flow_cfg)
    : net_(net), vip_(vip), attached_(attach_to_vip),
      policy_(std::move(policy)), rng_(net.sim().rng().fork()),
      flows_(flow_cfg) {
  policy_uses_conns_ = policy_->uses_connection_counts();
  policy_caches_picks_ = policy_->pick_is_tuple_deterministic();
  policy_weighted_ = policy_->weighted();
  if (attached_) net_.attach(vip_, this);
}

Mux::~Mux() {
  if (attached_) net_.attach(vip_, nullptr);
}

void Mux::set_policy(std::unique_ptr<Policy> policy) {
  policy_ = std::move(policy);
  policy_uses_conns_ = policy_->uses_connection_counts();
  policy_caches_picks_ = policy_->pick_is_tuple_deterministic();
  policy_weighted_ = policy_->weighted();
  // Re-snapshot the views: active_conns is only kept fresh while a
  // connection-count policy is installed, so a switch *to* one must not
  // inherit counts staled under the previous policy.
  rebuild_views();
  // The old policy's cached picks are meaningless under the new one.
  invalidate_pick_state();
}

void Mux::invalidate_pick_state() {
  policy_->invalidate();
  flows_.invalidate_picks();
}

// --- transactional programming -------------------------------------------------

void Mux::apply_program(const PoolProgram& program) {
  if (program.version <= applied_version_) {
    ++superseded_programs_;
    util::log_warn(kLog) << "discarding stale pool program v"
                         << program.version << " (pool already at v"
                         << applied_version_ << ")";
    return;
  }
  applied_version_ = program.version;

  // Reconciliation is keyed by DIP address — the one name the emitter and
  // the dataplane agree on; stable ids stay dataplane-internal.
  std::unordered_map<std::uint32_t, const PoolEntry*> desired;
  for (const auto& e : program.entries) desired[e.dip.value()] = &e;

  std::vector<std::uint64_t> to_remove;  // stable ids, graceful removal
  for (auto& b : backends_) {
    const auto it = desired.find(b.addr.value());
    // Absent from the desired pool (or its entry was consumed by an
    // earlier duplicate-address backend): removed — unless the program is
    // weights-only (it does not own membership) or the backend is already
    // draining, in which case the drain keeps running to completion.
    if (it == desired.end() || it->second == nullptr) {
      if (!program.weights_only && !b.draining) to_remove.push_back(b.id);
      continue;
    }
    switch (it->second->state) {
      case BackendState::kActive: {
        const auto units = it->second->weight_units;
        b.weight_units = units < 0 ? 0 : units;
        b.enabled = true;
        b.draining = false;  // re-listing a drainer as Active cancels it
        break;
      }
      case BackendState::kDraining:
        b.weight_units = 0;
        b.enabled = false;
        b.draining = true;
        break;
      case BackendState::kRemoved:
        to_remove.push_back(b.id);
        break;
    }
    it->second = nullptr;  // consumed: not a newcomer
  }

  // Admit newcomers in program order (keeps the pool's relative order in
  // step with the program's, which the maglev build's minimal-disruption
  // property relies on). Weights-only programs admit nothing.
  for (const auto& e : program.entries) {
    if (program.weights_only) break;
    const auto it = desired.find(e.dip.value());
    if (it == desired.end() || it->second == nullptr) continue;
    it->second = nullptr;  // a duplicate entry admits one backend, not two
    if (e.state != BackendState::kActive) continue;  // nothing to condemn
    const auto tomb = failed_tombstones_.find(e.dip.value());
    if (tomb != failed_tombstones_.end()) {
      if (program.version <= tomb->second) {
        // Issued before the failure was observed: a stale view of the
        // pool, not a deliberate resurrection. Admitting it would steer
        // the dead DIP's hash share into a black hole until the next
        // post-failure commit.
        ++stale_failed_admissions_;
        util::log_warn(kLog)
            << "program v" << program.version << " re-lists failed backend "
            << e.dip.str() << " (condemned at v" << tomb->second
            << "); skipping entry";
        continue;
      }
      failed_tombstones_.erase(tomb);  // post-failure program: readmit
    }
    Backend b;
    b.id = next_backend_id_++;
    b.addr = e.dip;
    b.weight_units = e.weight_units < 0 ? 0 : e.weight_units;
    backends_.push_back(b);
  }

  for (const auto id : to_remove) {
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      if (backends_[i].id != id) continue;
      erase_backend_raw(i, /*failed=*/false);
      break;
    }
  }

  // A drain with no pinned flows completes in the same transaction.
  for (std::size_t i = 0; i < backends_.size();) {
    auto& b = backends_[i];
    if (b.draining && b.active.load(std::memory_order_relaxed) == 0) {
      drains_completed_.fetch_add(1, std::memory_order_relaxed);
      erase_backend_raw(i, /*failed=*/false);
    } else {
      ++i;
    }
  }

  // Weights apply literally — the transaction declares the whole pool, so
  // there is nothing to rescale (unlike the imperative churn ops below).
  rebuild_id_index();
  rebuild_views();
  invalidate_pick_state();
}

std::vector<net::IpAddr> Mux::backend_addrs() const {
  std::vector<net::IpAddr> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_)
    if (!b.draining) out.push_back(b.addr);
  return out;
}

std::size_t Mux::draining_count() const {
  std::size_t n = 0;
  for (const auto& b : backends_)
    if (b.draining) ++n;
  return n;
}

bool Mux::maybe_complete_drain(std::size_t i) {
  if (i >= backends_.size()) return false;
  if (!backends_[i].draining ||
      backends_[i].active.load(std::memory_order_relaxed) > 0)
    return false;
  drains_completed_.fetch_add(1, std::memory_order_relaxed);
  util::log_info(kLog) << "backend " << backends_[i].addr.str()
                       << " drained; completing removal";
  erase_backend_raw(i, /*failed=*/false);
  rebuild_id_index();
  rebuild_views();
  invalidate_pick_state();
  return true;
}

// --- imperative lifecycle (direct dataplane manipulation) ----------------------

std::uint64_t Mux::add_backend(net::IpAddr dip,
                               const server::DipServer* server) {
  failed_tombstones_.erase(dip.value());  // imperative re-add is deliberate
  Backend b;
  b.id = next_backend_id_++;
  b.addr = dip;
  b.server = server;
  // The newcomer enters at the pool's mean weight (a fair share relative
  // to its peers); existing controller-programmed ratios are preserved by
  // renormalize — an n-DIP equal pool stays equal at n+1, a weighted pool
  // keeps its shape. An all-parked pool gives the newcomer everything.
  std::int64_t sum = 0;
  for (const auto& be : backends_) sum += be.weight_units;
  b.weight_units =
      backends_.empty() || sum <= 0
          ? util::kWeightScale
          : (sum + static_cast<std::int64_t>(backends_.size()) / 2) /
                static_cast<std::int64_t>(backends_.size());
  backends_.push_back(b);
  renormalize_weights();
  rebuild_id_index();
  rebuild_views();
  invalidate_pick_state();
  return b.id;
}

bool Mux::remove_backend(std::size_t i) { return erase_backend(i, false); }

bool Mux::fail_backend(std::size_t i,
                       std::optional<std::uint64_t> condemned_until_version) {
  if (i >= backends_.size()) return false;
  // Tombstone the address against every transaction issued up to the
  // failure observation: one of them may still be riding the programming
  // delay, and committing it must not resurrect the corpse.
  condemn(backends_[i].addr,
          condemned_until_version ? *condemned_until_version
                                  : issued_versions());
  return erase_backend(i, true);
}

bool Mux::erase_backend(std::size_t i, bool failed) {
  if (i >= backends_.size()) return false;
  erase_backend_raw(i, failed);
  renormalize_weights();
  rebuild_id_index();
  rebuild_views();
  invalidate_pick_state();
  return true;
}

void Mux::erase_backend_raw(std::size_t i, bool failed) {
  const auto id = backends_[i].id;
  if (failed) {
    util::log_warn(kLog) << "backend " << backends_[i].addr.str()
                         << " failed; resetting "
                         << backends_[i].active.load(std::memory_order_relaxed)
                         << " pinned flows";
  }
  drop_affinity_for(id, failed);
  backends_.erase(backends_.begin() + static_cast<std::ptrdiff_t>(i));
}

void Mux::renormalize_weights() {
  if (backends_.empty()) return;
  std::vector<double> raw(backends_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    raw[i] = static_cast<double>(backends_[i].weight_units);
    sum += raw[i];
  }
  // A fully parked pool (all zeros) stays parked: normalize's equal-split
  // fallback would resurrect a VIP the controller deliberately weighted to
  // zero, e.g. after removing the only weighted backend.
  if (sum <= 0.0) return;
  const auto units = util::normalize_to_units(raw);
  for (std::size_t i = 0; i < backends_.size(); ++i)
    backends_[i].weight_units = units[i];
}

void Mux::drop_affinity_for(std::uint64_t id, bool count_as_reset) {
  const auto n = flows_.erase_backend(id);
  if (n == 0) return;
  if (count_as_reset) {
    flows_reset_.fetch_add(n, std::memory_order_relaxed);
  } else {
    // Graceful-path abrupt drop (transactional kRemoved, omission, or an
    // imperative remove): not a failure reset, not a drained-to-zero —
    // without its own counter these flows vanish from every metric.
    flows_dropped_.fetch_add(n, std::memory_order_relaxed);
  }
}

void Mux::rebuild_id_index() {
  id_index_.clear();
  for (std::size_t i = 0; i < backends_.size(); ++i)
    id_index_[backends_[i].id] = i;
}

std::optional<std::size_t> Mux::index_of_id(std::uint64_t id) const {
  const auto it = id_index_.find(id);
  if (it == id_index_.end()) return std::nullopt;
  return it->second;
}

// --- bounds-checked accessors --------------------------------------------------

net::IpAddr Mux::backend_addr(std::size_t i) const {
  if (i >= backends_.size()) {
    util::log_warn(kLog) << "backend_addr(" << i << ") out of range ("
                         << backends_.size() << " backends)";
    return net::IpAddr{};
  }
  return backends_[i].addr;
}

std::uint64_t Mux::backend_id(std::size_t i) const {
  if (i >= backends_.size()) {
    util::log_warn(kLog) << "backend_id(" << i << ") out of range ("
                         << backends_.size() << " backends)";
    return 0;
  }
  return backends_[i].id;
}

bool Mux::backend_enabled(std::size_t i) const {
  if (i >= backends_.size()) {
    util::log_warn(kLog) << "backend_enabled(" << i << ") out of range ("
                         << backends_.size() << " backends)";
    return false;
  }
  return backends_[i].enabled;
}

bool Mux::backend_draining(std::size_t i) const {
  return i < backends_.size() && backends_[i].draining;
}

std::uint64_t Mux::forwarded_requests(std::size_t i) const {
  return i < backends_.size()
             ? backends_[i].forwarded.load(std::memory_order_relaxed)
             : 0;
}

std::uint64_t Mux::new_connections(std::size_t i) const {
  return i < backends_.size()
             ? backends_[i].connections.load(std::memory_order_relaxed)
             : 0;
}

std::uint64_t Mux::active_connections(std::size_t i) const {
  return i < backends_.size()
             ? backends_[i].active.load(std::memory_order_relaxed)
             : 0;
}

// --- imperative weight programming ---------------------------------------------

bool Mux::set_weight_units(const std::vector<std::int64_t>& units) {
  if (units.size() != backends_.size()) {
    ++rejected_programmings_;
    util::log_warn(kLog) << "rejecting weight programming: " << units.size()
                         << " entries for " << backends_.size()
                         << " backends (controller out of sync with pool)";
    return false;
  }
  for (std::size_t i = 0; i < backends_.size(); ++i)
    backends_[i].weight_units =
        backends_[i].draining ? 0 : (units[i] < 0 ? 0 : units[i]);
  rebuild_views();
  invalidate_pick_state();
  return true;
}

std::vector<std::int64_t> Mux::weight_units() const {
  std::vector<std::int64_t> out(backends_.size());
  for (std::size_t i = 0; i < backends_.size(); ++i)
    out[i] = backends_[i].weight_units;
  return out;
}

bool Mux::set_backend_enabled(std::size_t i, bool enabled) {
  if (i >= backends_.size()) {
    util::log_warn(kLog) << "set_backend_enabled(" << i << ") out of range ("
                         << backends_.size() << " backends)";
    return false;
  }
  if (enabled && backends_[i].draining) {
    // Enabling a drainer would leave `draining && enabled`: it keeps
    // accepting new connections, so its affinity never empties and the
    // promised auto-removal never completes. Cancel the drain explicitly
    // (re-list kActive in a PoolProgram) instead.
    util::log_warn(kLog) << "refusing to enable draining backend "
                         << backends_[i].addr.str()
                         << " (cancel the drain via a pool program instead)";
    return false;
  }
  backends_[i].enabled = enabled;
  views_[i].enabled = enabled;
  invalidate_pick_state();
  return true;
}

void Mux::reset_counters() {
  for (auto& b : backends_) {
    b.connections.store(0, std::memory_order_relaxed);
    b.forwarded.store(0, std::memory_order_relaxed);
  }
  total_forwarded_.store(0, std::memory_order_relaxed);
  no_backend_drops_.store(0, std::memory_order_relaxed);
  drains_completed_.store(0, std::memory_order_relaxed);
  flows_reset_.store(0, std::memory_order_relaxed);
  flows_gced_.store(0, std::memory_order_relaxed);
  flows_dropped_.store(0, std::memory_order_relaxed);
  rejected_programmings_ = 0;
  superseded_programs_ = 0;
  stale_failed_admissions_ = 0;
}

void Mux::rebuild_views() {
  views_.clear();
  views_.reserve(backends_.size());
  for (const auto& b : backends_) views_.push_back(b.view());
}

void Mux::refresh_view_active(std::size_t i) {
  // Only the LC family reads active_conns from the views; for everyone
  // else skipping the patch keeps FINs off the pick mutex entirely.
  if (!policy_uses_conns_) return;
  std::lock_guard<std::mutex> lk(pick_mutex_);
  if (i < views_.size())
    views_[i].active_conns = backends_[i].active.load(std::memory_order_relaxed);
}

std::size_t Mux::dangling_affinity_count() const {
  std::size_t n = 0;
  flows_.for_each([&](const net::FiveTuple&, std::uint64_t id, util::SimTime) {
    if (id_index_.count(id) == 0) ++n;
  });
  return n;
}

std::size_t Mux::gc_shard(std::size_t k) {
  const auto now = net_.sim().now();
  const auto reclaimed = flows_.gc_shard(
      k, now, affinity_idle_,
      [this](std::uint64_t id) { return id_index_.count(id) > 0; },
      // Runs after the shard lock drops (FlowTable contract), so taking
      // the pick mutex inside refresh_view_active cannot deadlock against
      // a concurrent pick -> pin.
      [this](std::uint64_t id, bool dead) {
        flows_gced_.fetch_add(1, std::memory_order_relaxed);
        if (dead) return;  // a live backend loses a flow that never FIN'd
        if (const auto idx = index_of_id(id)) release_connection(*idx);
      });
  // The GC may have reclaimed a drainer's last flow (FIN-less clients are
  // exactly what would otherwise wedge a graceful scale-in forever).
  for (std::size_t i = 0; i < backends_.size();)
    if (!maybe_complete_drain(i)) ++i;
  return reclaimed;
}

std::size_t Mux::gc_affinity() {
  std::size_t reclaimed = 0;
  for (std::size_t k = 0; k < flows_.shard_count(); ++k)
    reclaimed += gc_shard(k);
  return reclaimed;
}

void Mux::maybe_gc() {
  if (affinity_idle_ <= util::SimTime::zero()) return;
  // One shard per trigger: the whole table is covered once per
  // kGcRequestInterval forwarded requests, but no single packet ever pays
  // for more than one shard's sweep.
  const auto interval =
      std::max<std::uint64_t>(1, kGcRequestInterval / flows_.shard_count());
  if (requests_since_gc_.fetch_add(1, std::memory_order_relaxed) + 1 <
      interval)
    return;
  requests_since_gc_.store(0, std::memory_order_relaxed);
  gc_shard(gc_cursor_.fetch_add(1, std::memory_order_relaxed) %
           flows_.shard_count());
}

void Mux::on_message(const net::Message& msg) {
  switch (msg.type) {
    case net::MsgType::kHttpRequest:
      handle_request(msg);
      break;
    case net::MsgType::kFin:
      handle_fin(msg);
      break;
    default:
      break;
  }
}

void Mux::forward(std::size_t i, const net::Message& msg) {
  backends_[i].forwarded.fetch_add(1, std::memory_order_relaxed);
  total_forwarded_.fetch_add(1, std::memory_order_relaxed);
  net_.send(backends_[i].addr, msg);  // original tuple preserved (encap)
}

void Mux::handle_request(const net::Message& msg) {
  maybe_gc();
  const auto now = net_.sim().now();
  auto hit = flows_.lookup(msg.tuple, now);
  if (hit.kind == FlowHit::Kind::kAffinity) {
    // Connection affinity: pinned regardless of weights — unless the
    // backend died since (defensive; removal drops its entries eagerly).
    // Draining backends keep serving their pinned flows: that is the whole
    // point of the graceful scale-in.
    if (const auto idx = index_of_id(hit.backend_id)) {
      forward(*idx, msg);
      return;
    }
    flows_.erase(msg.tuple);
    hit = FlowHit{};
  }

  // New connection. A fresh cached pick short-circuits the policy for
  // tuple-deterministic policies (hash, maglev) — any pool mutation since
  // the pick was cached bumped the epoch, so a hit can only name a
  // still-current choice; the index checks below are defensive.
  std::size_t dip = kNoBackend;
  std::uint64_t id = 0;
  if (hit.kind == FlowHit::Kind::kCachedPick && policy_caches_picks_) {
    if (const auto idx = index_of_id(hit.backend_id)) {
      const auto& b = backends_[*idx];
      if (b.enabled && !b.draining &&
          (b.weight_units > 0 || !policy_weighted_)) {
        dip = *idx;
        id = hit.backend_id;
      }
    }
  }
  std::uint64_t owner = 0;
  bool fresh = false;
  bool pinned = false;
  if (dip == kNoBackend) {
    std::lock_guard<std::mutex> lk(pick_mutex_);
    dip = policy_->pick(msg.tuple, views_, rng_);
    if (dip == kNoBackend) {
      no_backend_drops_.fetch_add(1, std::memory_order_relaxed);
      return;  // connection refused; client times out
    }
    id = backends_[dip].id;
    if (policy_uses_conns_) {
      // LC-family: pin and account *inside* the pick critical section
      // (pick mutex -> shard mutex is the legal order), so the next pick
      // already sees this connection — releasing first would let
      // concurrent opens herd onto the same least-loaded backend.
      std::tie(owner, fresh) =
          flows_.try_insert(msg.tuple, id, now, policy_caches_picks_);
      if (fresh) {
        backends_[dip].connections.fetch_add(1, std::memory_order_relaxed);
        views_[dip].active_conns =
            backends_[dip].active.fetch_add(1, std::memory_order_relaxed) + 1;
      }
      pinned = true;
    }
  }
  if (!pinned) {
    std::tie(owner, fresh) =
        flows_.try_insert(msg.tuple, id, now, policy_caches_picks_);
    if (fresh) {
      backends_[dip].connections.fetch_add(1, std::memory_order_relaxed);
      backends_[dip].active.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!fresh) {
    // A concurrent packet of the same tuple pinned it first; honour the
    // winner (single-threaded drive never takes this branch).
    if (const auto idx = index_of_id(owner)) dip = *idx;
  }
  forward(dip, msg);
}

void Mux::release_connection(std::size_t i) {
  auto& b = backends_[i];
  auto cur = b.active.load(std::memory_order_relaxed);
  while (cur > 0 &&
         !b.active.compare_exchange_weak(cur, cur - 1,
                                         std::memory_order_relaxed)) {
  }
  refresh_view_active(i);
}

void Mux::handle_fin(const net::Message& msg) {
  const auto id = flows_.erase(msg.tuple);
  if (!id) return;
  const auto idx = index_of_id(*id);
  if (!idx) return;  // backend removed while the flow was live
  release_connection(*idx);
  net_.send(backends_[*idx].addr, msg);  // let the server close out too
  maybe_complete_drain(*idx);  // last pinned flow gone -> drain completes
}

}  // namespace klb::lb
