#include "lb/mux.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "lb/maglev.hpp"
#include "util/logging.hpp"
#include "util/weight.hpp"

namespace klb::lb {

namespace {
constexpr const char* kLog = "klb-mux";
/// Inline idle-flow sweeps are amortized so the whole table is covered
/// once per this many forwarded requests (one shard per trigger), keeping
/// the GC O(1)-ish per packet and shard-local.
constexpr std::uint64_t kGcRequestInterval = 4096;
/// Batched requests are staged through stack scratch of this many lanes:
/// big enough to amortize the per-burst costs (epoch pin, shard locks, one
/// pick-mutex acquisition), small enough to live comfortably on the stack.
constexpr std::size_t kBatchChunk = 32;
}  // namespace

Mux::Mux(net::Network& net, net::IpAddr vip, std::unique_ptr<Policy> policy,
         bool attach_to_vip, FlowTableConfig flow_cfg,
         ConsistencyConfig consistency)
    : net_(net), vip_(vip), attached_(attach_to_vip),
      consistency_(consistency), rng_(net.sim().rng().fork()),
      flows_(flow_cfg) {
  if (consistency_.stateless) {
    // Engage the hybrid dataplane now or never: the slot-pin counters are
    // sized to the policy's table before any packet can arrive, so the
    // packet path reads slot_pins_ without synchronization, and every pin
    // ever inserted is slot-counted (exact counts even across later
    // policy swaps — a filterless generation pins everything, and those
    // pins still inc/dec their slots).
    const auto* table = policy->maglev_table();
    if (table != nullptr && table->table_size() > 0) {
      slot_pins_ = std::make_unique<SlotPinCounts>(table->table_size());
      diff_ = std::make_unique<GenerationDiff>(consistency_);
    } else {
      util::log_warn(kLog)
          << "stateless fast path requested but policy '" << policy->name()
          << "' has no maglev table; running fully stateful";
    }
  }
  // Debug wiring: pins must never be taken under THIS mux's control lock,
  // and only pointers announced at the publication site may be retired.
  epochs_.debug_register_control(&control_mutex_);
  epochs_.debug_track_published();
  // Publish the initial empty-pool generation: the packet path may assume
  // current_ is never null. Its sequence (1) matches the FlowTable's
  // initial pick epoch.
  util::MutexLock lk(control_mutex_);
  publish_locked({}, /*program_version=*/0, std::move(policy));
  if (attached_) net_.attach(vip_, this);
}

Mux::~Mux() {
  if (attached_) net_.attach(vip_, nullptr);
}

void Mux::set_policy(std::unique_ptr<Policy> policy) {
  util::MutexLock lk(control_mutex_);
  publish_locked(draft_locked(), applied_version(), std::move(policy));
}

std::shared_ptr<const MaglevTable> Mux::shared_table_snapshot() const {
  auto ref = read_gen();
  const auto* shared =
      dynamic_cast<const SharedMaglevPolicy*>(&ref.gen->policy());
  // Reading without pick_mutex_ is safe: a published generation's policy
  // never has set_table called on it again — the snapshot is frozen at
  // publication.
  return shared ? shared->table_snapshot() : nullptr;
}

// --- generation publication ----------------------------------------------------

void Mux::publish_locked(std::vector<GenBackend> backends,
                         std::uint64_t program_version,
                         std::unique_ptr<Policy> policy_override) {
  const auto seq = gen_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::unique_ptr<Policy> policy;
  if (policy_override) {
    policy = std::move(policy_override);
  } else {
    // Clone under the pick mutex: concurrent picks mutate policy state
    // (rotation counters, smoothing credits) and the clone must be a
    // consistent snapshot of it.
    util::MutexLock lk(pick_mutex_);
    policy = current_owner_->policy().clone();
  }
  policy->invalidate();
  auto gen = std::make_shared<PoolGeneration>(seq, program_version,
                                              std::move(backends),
                                              std::move(policy));
  // Eager per-pool state build (maglev's table fill) on the control
  // thread: no reader can see this generation yet, so no lock is needed,
  // and the first pick against it pays nothing extra under pick_mutex_.
  gen->policy().prepare(gen->views());

  if (diff_ && gen->policy_caches_picks()) {
    // Hybrid dataplane: diff the freshly built table against the history
    // and attach the exception filter — still before publication, so the
    // packet path sees generation + filter as one atomic unit. A policy
    // without a table (or with incomparable geometry) publishes without a
    // filter: every flow pins, exactly the classic dataplane.
    if (const auto* table = gen->maglev_table();
        table != nullptr && table->table_size() == slot_pins_->size())
      gen->set_exception_filter(diff_->on_publish(*table, seq));
  }

  // Re-key the flow cache to the new generation BEFORE swinging the
  // pointer: cached picks from older generations stop hitting, and a
  // straggler still reading a retired generation inserts entries stamped
  // with that generation's (old) sequence — born invalid, never served.
  flows_.set_pick_epoch(seq);
  epochs_.debug_mark_published(gen.get());
  current_.store(gen.get(), std::memory_order_release);
  auto old = std::move(current_owner_);
  current_owner_ = std::move(gen);
  generations_published_.fetch_add(1, std::memory_order_relaxed);
  // Retire only after the swap: the epoch tag then proves any reader
  // pinned at or above it can only be holding the new generation.
  if (old) epochs_.retire(std::shared_ptr<const void>(std::move(old)));
}

void Mux::poll() {
  if (drain_poll_pending_.load(std::memory_order_acquire)) {
    util::MutexLock lk(control_mutex_);
    sweep_drains_locked();
  }
  epochs_.reclaim();
}

void Mux::note_drain_empty() KLB_NONBLOCKING {
  drain_poll_pending_.store(true, std::memory_order_release);
  // Opportunistic sweep: never block the packet path on the control
  // mutex. Uncontended (the single-threaded simulator always is) this
  // completes the drain inline, preserving the pre-generation timing; a
  // busy control plane picks the flag up in its own mutation or poll().
  util::MutexLock lk(control_mutex_, util::kTryToLock);
  if (lk) KLB_EFFECT_ESCAPE("mux.drain_sweep", sweep_drains_locked());
}

bool Mux::drain_ripe(const GenBackend& b) const {
  if (!b.draining) return false;
  if (b.counters->active.load(std::memory_order_relaxed) != 0) return false;
  // Hybrid dataplane: the drainer's stateless flows hold no pin, so an
  // empty active count does not prove it idle — their traffic is the only
  // evidence they exist. The drain completes once the drainer has been
  // *quiescent* (no forwarded requests) for the grace window; every packet
  // it serves re-arms the window (forward() stamps last_forward_us), so a
  // live stateless flow keeps its backend for as long as its inter-packet
  // gaps stay under the grace. Flows silent for longer adopt on their next
  // packet if the filter still remembers the drain, and break otherwise —
  // the documented stateless trade (lb/consistency.hpp).
  if (!slot_pins_) return true;
  const auto last =
      std::max(b.drain_since_us,
               b.counters->last_forward_us.load(std::memory_order_relaxed));
  return net_.sim().now().us() - last >= consistency_.drain_grace_us;
}

void Mux::sweep_drains_locked() {
  if (!drain_poll_pending_.exchange(false, std::memory_order_acq_rel)) return;
  auto draft = draft_locked();
  std::vector<std::uint64_t> done;
  bool grace_pending = false;
  for (auto it = draft.begin(); it != draft.end();) {
    if (drain_ripe(*it)) {
      util::log_info(kLog) << "backend " << it->addr.str()
                           << " drained; completing removal";
      done.push_back(it->id);
      it = draft.erase(it);
    } else {
      if (it->draining &&
          it->counters->active.load(std::memory_order_relaxed) == 0)
        grace_pending = true;
      ++it;
    }
  }
  if (grace_pending) {
    // An idle drainer inside its grace window: re-arm so the next poll()
    // re-checks — the FIN that emptied it will not fire again.
    drain_poll_pending_.store(true, std::memory_order_release);
  }
  if (done.empty()) return;
  drains_completed_.fetch_add(done.size(), std::memory_order_relaxed);
  publish_locked(std::move(draft), applied_version());
  // The drain completed with zero pinned flows; this only mops up affinity
  // entries a straggling reader may have re-pinned mid-completion.
  for (const auto id : done) drop_affinity_for(id, /*count_as_reset=*/false);
}

// --- transactional programming -------------------------------------------------

void Mux::apply_program(const PoolProgram& program) {
  util::MutexLock lk(control_mutex_);
  if (program.version <= applied_version()) {
    superseded_programs_.fetch_add(1, std::memory_order_relaxed);
    util::log_warn(kLog) << "discarding stale pool program v"
                         << program.version << " (pool already at v"
                         << applied_version() << ")";
    return;
  }
  applied_version_.store(program.version, std::memory_order_relaxed);

  auto draft = draft_locked();

  // Reconciliation is keyed by DIP address — the one name the emitter and
  // the dataplane agree on; stable ids stay dataplane-internal.
  std::unordered_map<std::uint32_t, const PoolEntry*> desired;
  for (const auto& e : program.entries) desired[e.dip.value()] = &e;

  std::vector<std::uint64_t> to_remove;  // stable ids, graceful removal
  for (auto& b : draft) {
    const auto it = desired.find(b.addr.value());
    // Absent from the desired pool (or its entry was consumed by an
    // earlier duplicate-address backend): removed — unless the program is
    // weights-only (it does not own membership) or the backend is already
    // draining, in which case the drain keeps running to completion.
    if (it == desired.end() || it->second == nullptr) {
      if (!program.weights_only && !b.draining) to_remove.push_back(b.id);
      continue;
    }
    switch (it->second->state) {
      case BackendState::kActive: {
        const auto units = it->second->weight_units;
        b.weight_units = units < 0 ? 0 : units;
        b.enabled = true;
        b.draining = false;  // re-listing a drainer as Active cancels it
        break;
      }
      case BackendState::kDraining:
        b.weight_units = 0;
        b.enabled = false;
        if (!b.draining) b.drain_since_us = net_.sim().now().us();
        b.draining = true;
        break;
      case BackendState::kRemoved:
        to_remove.push_back(b.id);
        break;
    }
    it->second = nullptr;  // consumed: not a newcomer
  }

  // Admit newcomers in program order (keeps the pool's relative order in
  // step with the program's, which the maglev build's minimal-disruption
  // property relies on). Weights-only programs admit nothing.
  for (const auto& e : program.entries) {
    if (program.weights_only) break;
    const auto it = desired.find(e.dip.value());
    if (it == desired.end() || it->second == nullptr) continue;
    it->second = nullptr;  // a duplicate entry admits one backend, not two
    if (e.state != BackendState::kActive) continue;  // nothing to condemn
    const auto tomb = failed_tombstones_.find(e.dip.value());
    if (tomb != failed_tombstones_.end()) {
      if (program.version <= tomb->second) {
        // Issued before the failure was observed: a stale view of the
        // pool, not a deliberate resurrection. Admitting it would steer
        // the dead DIP's hash share into a black hole until the next
        // post-failure commit.
        stale_failed_admissions_.fetch_add(1, std::memory_order_relaxed);
        util::log_warn(kLog)
            << "program v" << program.version << " re-lists failed backend "
            << e.dip.str() << " (condemned at v" << tomb->second
            << "); skipping entry";
        continue;
      }
      failed_tombstones_.erase(tomb);  // post-failure program: readmit
    }
    GenBackend b;
    b.id = next_backend_id_++;
    b.addr = e.dip;
    b.weight_units = e.weight_units < 0 ? 0 : e.weight_units;
    b.counters = std::make_shared<BackendCounters>();
    draft.push_back(std::move(b));
  }

  // (removed id, counted-as-dropped) — affinity drops run after the new
  // generation is live, so the packet path stops forwarding to a removed
  // backend before its entries disappear.
  std::vector<std::uint64_t> dropped_ids;
  for (const auto id : to_remove) {
    for (auto it = draft.begin(); it != draft.end(); ++it) {
      if (it->id != id) continue;
      draft.erase(it);
      dropped_ids.push_back(id);
      break;
    }
  }

  // A drain with no pinned flows completes in the same transaction —
  // unless the hybrid dataplane's grace is still running (see drain_ripe).
  for (auto it = draft.begin(); it != draft.end();) {
    if (drain_ripe(*it)) {
      drains_completed_.fetch_add(1, std::memory_order_relaxed);
      dropped_ids.push_back(it->id);
      it = draft.erase(it);
    } else {
      if (it->draining &&
          it->counters->active.load(std::memory_order_relaxed) == 0)
        drain_poll_pending_.store(true, std::memory_order_release);
      ++it;
    }
  }

  // Weights apply literally — the transaction declares the whole pool, so
  // there is nothing to rescale (unlike the imperative churn ops below).
  publish_locked(std::move(draft), program.version);
  for (const auto id : dropped_ids) drop_affinity_for(id, false);
}

std::size_t Mux::backend_count() const {
  auto ref = read_gen();
  return ref.gen->size();
}

std::vector<net::IpAddr> Mux::backend_addrs() const {
  auto ref = read_gen();
  std::vector<net::IpAddr> out;
  out.reserve(ref.gen->size());
  for (const auto& b : ref.gen->backends())
    if (!b.draining) out.push_back(b.addr);
  return out;
}

std::size_t Mux::draining_count() const {
  auto ref = read_gen();
  std::size_t n = 0;
  for (const auto& b : ref.gen->backends())
    if (b.draining) ++n;
  return n;
}

// --- imperative lifecycle (direct dataplane manipulation) ----------------------

std::uint64_t Mux::add_backend(net::IpAddr dip,
                               const server::DipServer* server) {
  util::MutexLock lk(control_mutex_);
  failed_tombstones_.erase(dip.value());  // imperative re-add is deliberate
  auto draft = draft_locked();
  GenBackend b;
  b.id = next_backend_id_++;
  b.addr = dip;
  b.server = server;
  b.counters = std::make_shared<BackendCounters>();
  // The newcomer enters at the pool's mean weight (a fair share relative
  // to its peers); existing controller-programmed ratios are preserved by
  // renormalize — an n-DIP equal pool stays equal at n+1, a weighted pool
  // keeps its shape. An all-parked pool gives the newcomer everything.
  std::int64_t sum = 0;
  for (const auto& be : draft) sum += be.weight_units;
  b.weight_units =
      draft.empty() || sum <= 0
          ? util::kWeightScale
          : (sum + static_cast<std::int64_t>(draft.size()) / 2) /
                static_cast<std::int64_t>(draft.size());
  const auto id = b.id;
  draft.push_back(std::move(b));
  renormalize_weights(draft);
  publish_locked(std::move(draft), applied_version());
  return id;
}

bool Mux::remove_backend(std::size_t i) {
  util::MutexLock lk(control_mutex_);
  return erase_backend(i, false);
}

bool Mux::fail_backend(std::size_t i,
                       std::optional<std::uint64_t> condemned_until_version) {
  util::MutexLock lk(control_mutex_);
  if (i >= current_owner_->size()) return false;
  // Tombstone the address against every transaction issued up to the
  // failure observation: one of them may still be riding the programming
  // delay, and committing it must not resurrect the corpse.
  condemn_locked(current_owner_->backends()[i].addr,
                 condemned_until_version ? *condemned_until_version
                                         : issued_versions());
  return erase_backend(i, true);
}

void Mux::condemn(net::IpAddr addr, std::uint64_t until_version) {
  util::MutexLock lk(control_mutex_);
  condemn_locked(addr, until_version);
}

bool Mux::erase_backend(std::size_t i, bool failed) {
  auto draft = draft_locked();
  if (i >= draft.size()) return false;
  const auto id = draft[i].id;
  if (failed) {
    util::log_warn(kLog)
        << "backend " << draft[i].addr.str() << " failed; resetting "
        << draft[i].counters->active.load(std::memory_order_relaxed)
        << " pinned flows";
  }
  draft.erase(draft.begin() + static_cast<std::ptrdiff_t>(i));
  renormalize_weights(draft);
  publish_locked(std::move(draft), applied_version());
  drop_affinity_for(id, failed);
  return true;
}

void Mux::renormalize_weights(std::vector<GenBackend>& draft) {
  if (draft.empty()) return;
  std::vector<double> raw(draft.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < draft.size(); ++i) {
    raw[i] = static_cast<double>(draft[i].weight_units);
    sum += raw[i];
  }
  // A fully parked pool (all zeros) stays parked: normalize's equal-split
  // fallback would resurrect a VIP the controller deliberately weighted to
  // zero, e.g. after removing the only weighted backend.
  if (sum <= 0.0) return;
  const auto units = util::normalize_to_units(raw);
  for (std::size_t i = 0; i < draft.size(); ++i)
    draft[i].weight_units = units[i];
}

void Mux::drop_affinity_for(std::uint64_t id, bool count_as_reset) {
  const auto n = flows_.erase_backend(
      id, !slot_pins_ ? std::function<void(const net::FiveTuple&)>{}
                      : [this](const net::FiveTuple& t) {
                          slot_pins_->dec(static_cast<std::size_t>(
                              net::hash_tuple(t) % slot_pins_->size()));
                        });
  if (n == 0) return;
  if (count_as_reset) {
    flows_reset_.fetch_add(n, std::memory_order_relaxed);
  } else {
    // Graceful-path abrupt drop (transactional kRemoved, omission, or an
    // imperative remove): not a failure reset, not a drained-to-zero —
    // without its own counter these flows vanish from every metric.
    flows_dropped_.fetch_add(n, std::memory_order_relaxed);
  }
}

std::optional<std::size_t> Mux::index_of_id(std::uint64_t id) const {
  auto ref = read_gen();
  return ref.gen->index_of(id);
}

// --- bounds-checked accessors --------------------------------------------------

net::IpAddr Mux::backend_addr(std::size_t i) const {
  auto ref = read_gen();
  if (i >= ref.gen->size()) {
    util::log_warn(kLog) << "backend_addr(" << i << ") out of range ("
                         << ref.gen->size() << " backends)";
    return net::IpAddr{};
  }
  return ref.gen->backends()[i].addr;
}

std::uint64_t Mux::backend_id(std::size_t i) const {
  auto ref = read_gen();
  if (i >= ref.gen->size()) {
    util::log_warn(kLog) << "backend_id(" << i << ") out of range ("
                         << ref.gen->size() << " backends)";
    return 0;
  }
  return ref.gen->backends()[i].id;
}

bool Mux::backend_enabled(std::size_t i) const {
  auto ref = read_gen();
  if (i >= ref.gen->size()) {
    util::log_warn(kLog) << "backend_enabled(" << i << ") out of range ("
                         << ref.gen->size() << " backends)";
    return false;
  }
  return ref.gen->backends()[i].enabled;
}

bool Mux::backend_draining(std::size_t i) const {
  auto ref = read_gen();
  return i < ref.gen->size() && ref.gen->backends()[i].draining;
}

std::uint64_t Mux::forwarded_requests(std::size_t i) const {
  auto ref = read_gen();
  return i < ref.gen->size()
             ? ref.gen->backends()[i].counters->forwarded.load(
                   std::memory_order_relaxed)
             : 0;
}

std::uint64_t Mux::new_connections(std::size_t i) const {
  auto ref = read_gen();
  return i < ref.gen->size()
             ? ref.gen->backends()[i].counters->connections.load(
                   std::memory_order_relaxed)
             : 0;
}

std::uint64_t Mux::active_connections(std::size_t i) const {
  auto ref = read_gen();
  return i < ref.gen->size()
             ? ref.gen->backends()[i].counters->active.load(
                   std::memory_order_relaxed)
             : 0;
}

// --- imperative weight programming ---------------------------------------------

bool Mux::set_weight_units(const std::vector<std::int64_t>& units) {
  util::MutexLock lk(control_mutex_);
  auto draft = draft_locked();
  if (units.size() != draft.size()) {
    rejected_programmings_.fetch_add(1, std::memory_order_relaxed);
    util::log_warn(kLog) << "rejecting weight programming: " << units.size()
                         << " entries for " << draft.size()
                         << " backends (controller out of sync with pool)";
    return false;
  }
  for (std::size_t i = 0; i < draft.size(); ++i)
    draft[i].weight_units =
        draft[i].draining ? 0 : (units[i] < 0 ? 0 : units[i]);
  publish_locked(std::move(draft), applied_version());
  return true;
}

std::vector<std::int64_t> Mux::weight_units() const {
  auto ref = read_gen();
  std::vector<std::int64_t> out(ref.gen->size());
  for (std::size_t i = 0; i < ref.gen->size(); ++i)
    out[i] = ref.gen->backends()[i].weight_units;
  return out;
}

bool Mux::set_backend_enabled(std::size_t i, bool enabled) {
  util::MutexLock lk(control_mutex_);
  auto draft = draft_locked();
  if (i >= draft.size()) {
    util::log_warn(kLog) << "set_backend_enabled(" << i << ") out of range ("
                         << draft.size() << " backends)";
    return false;
  }
  if (enabled && draft[i].draining) {
    // Enabling a drainer would leave `draining && enabled`: it keeps
    // accepting new connections, so its affinity never empties and the
    // promised auto-removal never completes. Cancel the drain explicitly
    // (re-list kActive in a PoolProgram) instead.
    util::log_warn(kLog) << "refusing to enable draining backend "
                         << draft[i].addr.str()
                         << " (cancel the drain via a pool program instead)";
    return false;
  }
  draft[i].enabled = enabled;
  publish_locked(std::move(draft), applied_version());
  return true;
}

void Mux::reset_counters() {
  util::MutexLock lk(control_mutex_);
  for (const auto& b : current_owner_->backends()) {
    b.counters->connections.store(0, std::memory_order_relaxed);
    b.counters->forwarded.store(0, std::memory_order_relaxed);
  }
  total_forwarded_.store(0, std::memory_order_relaxed);
  no_backend_drops_.store(0, std::memory_order_relaxed);
  drains_completed_.store(0, std::memory_order_relaxed);
  flows_reset_.store(0, std::memory_order_relaxed);
  flows_gced_.store(0, std::memory_order_relaxed);
  flows_dropped_.store(0, std::memory_order_relaxed);
  rejected_programmings_.store(0, std::memory_order_relaxed);
  superseded_programs_.store(0, std::memory_order_relaxed);
  stale_failed_admissions_.store(0, std::memory_order_relaxed);
  stateless_picks_.store(0, std::memory_order_relaxed);
  exception_pins_.store(0, std::memory_order_relaxed);
  affinity_breaks_avoided_.store(0, std::memory_order_relaxed);
  affinity_breaks_.store(0, std::memory_order_relaxed);
}

std::size_t Mux::exception_slots() const {
  auto ref = read_gen();
  const auto* f = ref.gen->exception_filter();
  return f ? f->exception_slots() : 0;
}

std::size_t Mux::dangling_affinity_count() const {
  auto ref = read_gen();
  const auto* gen = ref.gen;
  std::size_t n = 0;
  flows_.for_each([&](const net::FiveTuple&, std::uint64_t id, util::SimTime) {
    if (!gen->index_of(id)) ++n;
  });
  return n;
}

bool Mux::debug_check_generation() const {
  auto ref = read_gen();
  return ref.gen != nullptr && ref.gen->self_check();
}

// --- affinity GC ---------------------------------------------------------------

std::size_t Mux::gc_shard(std::size_t k, std::size_t max_scan) {
  const auto now = net_.sim().now();
  const auto idle = util::SimTime::micros(
      affinity_idle_us_.load(std::memory_order_relaxed));
  bool drain_emptied = false;
  std::size_t reclaimed = 0;
  {
    auto ref = read_gen();
    const auto* gen = ref.gen;
    reclaimed = flows_.gc_shard(
        k, now, idle,
        [gen](std::uint64_t id) { return gen->index_of(id).has_value(); },
        // Runs after the shard lock drops (FlowTable contract), so taking
        // the pick mutex inside release_connection cannot deadlock against
        // a concurrent pick -> pin.
        [this, gen](const net::FiveTuple& t, std::uint64_t id, bool dead) {
          flows_gced_.fetch_add(1, std::memory_order_relaxed);
          if (slot_pins_)
            slot_pins_->dec(static_cast<std::size_t>(net::hash_tuple(t) %
                                                     slot_pins_->size()));
          if (dead) return;  // a live backend loses a flow that never FIN'd
          if (const auto idx = gen->index_of(id))
            release_connection(*gen, *idx);
        },
        max_scan);
    // The GC may have reclaimed a drainer's last flow (FIN-less clients
    // are exactly what would otherwise wedge a graceful scale-in forever).
    for (const auto& b : gen->backends()) {
      if (b.draining &&
          b.counters->active.load(std::memory_order_relaxed) == 0) {
        drain_emptied = true;
        break;
      }
    }
  }
  // Flag outside the pin: completing the drain publishes + retires, and
  // our own pinned slot must not defer the reclamation it triggers.
  if (drain_emptied) note_drain_empty();
  return reclaimed;
}

std::size_t Mux::gc_affinity() {
  std::size_t reclaimed = 0;
  for (std::size_t k = 0; k < flows_.shard_count(); ++k)
    reclaimed += gc_shard(k, FlowTable::kScanAll);
  return reclaimed;
}

void Mux::maybe_gc(std::uint64_t batch) {
  if (affinity_idle_us_.load(std::memory_order_relaxed) <= 0) return;
  // One shard per trigger: the whole table is covered once per
  // kGcRequestInterval forwarded requests, but no single packet (or batch)
  // ever pays for more than one shard's sweep.
  const auto interval =
      std::max<std::uint64_t>(1, kGcRequestInterval / flows_.shard_count());
  if (requests_since_gc_.fetch_add(batch, std::memory_order_relaxed) + batch <
      interval)
    return;
  requests_since_gc_.store(0, std::memory_order_relaxed);
  gc_shard(gc_cursor_.fetch_add(1, std::memory_order_relaxed) %
               flows_.shard_count(),
           FlowTable::kScanBudgeted);
}

// --- packet path ---------------------------------------------------------------

void Mux::on_message(const net::Message& msg) {
  switch (msg.type) {
    case net::MsgType::kHttpRequest:
      handle_request(msg);
      break;
    case net::MsgType::kFin:
      handle_fin(msg);
      break;
    default:
      break;
  }
}

void Mux::on_batch(const net::Message* const* msgs, std::size_t n) {
  handle_batch(msgs, n);
}

void Mux::handle_batch(const net::Message* const* msgs, std::size_t n)
    KLB_NONALLOCATING {
  std::size_t i = 0;
  while (i < n) {
    if (msgs[i]->type == net::MsgType::kHttpRequest) {
      // Contiguous request run: staged, chunked to the stack scratch size.
      std::size_t j = i + 1;
      while (j < n && msgs[j]->type == net::MsgType::kHttpRequest) ++j;
      for (std::size_t off = i; off < j; off += kBatchChunk)
        handle_request_chunk(msgs + off, std::min(kBatchChunk, j - off));
      i = j;
    } else if (msgs[i]->type == net::MsgType::kFin) {
      // Contiguous FIN run: batched unpin (one shard lock per run, one
      // epoch pin, grouped forwards), same chunking.
      std::size_t j = i + 1;
      while (j < n && msgs[j]->type == net::MsgType::kFin) ++j;
      for (std::size_t off = i; off < j; off += kBatchChunk)
        handle_fin_chunk(msgs + off, std::min(kBatchChunk, j - off));
      i = j;
    } else {
      ++i;
    }
  }
}

void Mux::forward_run(const PoolGeneration& gen, std::size_t i,
                      const net::Message* const* msgs, std::size_t k)
    KLB_NONALLOCATING {
  const auto& b = gen.backends()[i];
  b.counters->forwarded.fetch_add(k, std::memory_order_relaxed);
  // Quiescence evidence for stateless drains (drain_ripe): only drainers
  // pay the stamp, so the steady-state hot path is untouched.
  if (slot_pins_ && b.draining)
    b.counters->last_forward_us.store(net_.sim().now().us(),
                                      std::memory_order_relaxed);
  total_forwarded_.fetch_add(k, std::memory_order_relaxed);
  net_.send_burst(b.addr, msgs, k);  // original tuples preserved (encap)
}

std::optional<std::size_t> Mux::resolve_stateless(const PoolGeneration& gen,
                                                  const MaglevTable& table,
                                                  std::uint64_t hash,
                                                  const net::Message& msg)
    KLB_NONBLOCKING {
  const auto pick = table.lookup_id(hash);
  if (pick == MaglevTable::kNoId) return std::nullopt;
  const auto idx = gen.index_of_addr(static_cast<std::uint32_t>(pick));
  if (!idx) return std::nullopt;  // table predates this view; policy refuses
  const auto& b = gen.backends()[*idx];
  if (!b.enabled || b.draining || b.weight_units <= 0) return std::nullopt;
  stateless_picks_.fetch_add(1, std::memory_order_relaxed);
  if (msg.req_id <= 1) {
    // Opener: the connection exists even though no pin ever will — the
    // cumulative count keeps stateless and stateful accounting
    // comparable. `active` deliberately stays untouched: it counts pins,
    // which is what drains wait on.
    b.counters->connections.fetch_add(1, std::memory_order_relaxed);
  }
  return idx;
}

void Mux::handle_request_chunk(const net::Message* const* msgs,
                               std::size_t n) KLB_NONALLOCATING {
  // Amortized idle-flow GC: at most one budgeted shard sweep per
  // gc-interval of forwarded requests, never per packet.
  KLB_EFFECT_ESCAPE("mux.maybe_gc", maybe_gc(n));
  const auto now = net_.sim().now();
  // Pin the current generation once for the whole chunk: every index below
  // names a position in THIS snapshot, immune to concurrent publications.
  // A pick computed here may race a commit and land on a just-reweighted
  // backend — bounded by one burst, the same window a real dataplane's
  // config swap has.
  auto ref = read_gen();
  const PoolGeneration& gen = *ref.gen;
  if (n > 1 && !gen.policy_caches_picks()) {
    // Non-tuple-deterministic policies (rr/wrr/lc family) mutate pick
    // state per packet: process the burst per packet under the shared pin
    // so the pick sequence is exactly the scalar path's.
    for (std::size_t i = 0; i < n; ++i)
      process_chunk_pinned(gen, now, msgs + i, 1);
    return;
  }
  process_chunk_pinned(gen, now, msgs, n);
}

void Mux::process_chunk_pinned(const PoolGeneration& gen, util::SimTime now,
                               const net::Message* const* msgs,
                               std::size_t n) KLB_NONALLOCATING {
  // Per-packet scratch. Deliberately no default member initializers: only
  // the first n lanes are touched, so the batch-of-1 (scalar) case pays
  // for one lane, not kBatchChunk.
  struct Lane {
    std::uint64_t hash;
    std::uint64_t backend_id;  // stable id to pin (valid when dip set)
    std::uint64_t owner;       // try_insert winner
    std::size_t dip;           // resolved backend index or kNoBackend
    std::uint32_t slot;        // hybrid slot (valid when slot_pins_)
    std::uint8_t st;
    bool exception;
    bool adopted;  // mid-flow exception pin: not a new connection
    bool fresh;
  };
  enum : std::uint8_t {
    kForwardOnly,  // dip resolved, no pin wanted (stateless/affinity hit)
    kNeedLookup,   // awaiting the grouped affinity lookup
    kNeedPick,     // policy pick required
    kNeedPin,      // dip + id resolved, try_insert pending
    kPinned,       // insert done (possibly losing to a concurrent winner)
    kDropped,      // no usable backend: client times out
  };
  Lane lanes[kBatchChunk];
  FlowLookup lookups[kBatchChunk];
  std::uint32_t lookup_lane[kBatchChunk];

  // --- stage A: hash + stateless fast-path classification (lock-free) ------
  // One hash, one bitmap bit, one relaxed counter read, one table read per
  // packet: no lock, no allocation, no FlowTable traffic. A slot is
  // exceptional when its pick changed recently (the filter) or while
  // pinned flows live on it (the live counter — pins may outlive the
  // filter window, and a pinned flow must never be rerouted by hash).
  const ExceptionFilter* filter = nullptr;
  const MaglevTable* table = nullptr;
  if (slot_pins_) {
    filter = gen.exception_filter();
    table = gen.maglev_table();
  }
  const bool hybrid = filter != nullptr && table != nullptr;
  std::size_t need_lookup = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Lane& ln = lanes[i];
    const net::Message& m = *msgs[i];
    ln.hash = net::hash_tuple(m.tuple);
    ln.backend_id = 0;
    ln.owner = 0;
    ln.dip = kNoBackend;
    ln.slot = 0;
    ln.exception = false;
    ln.adopted = false;
    ln.fresh = false;
    if (slot_pins_) {
      ln.slot = static_cast<std::uint32_t>(ln.hash % slot_pins_->size());
      if (hybrid) {
        if (filter->is_exception(ln.slot) || slot_pins_->count(ln.slot) > 0) {
          ln.exception = true;
        } else if (const auto idx =
                       resolve_stateless(gen, *table, ln.hash, m)) {
          ln.dip = *idx;
          ln.st = kForwardOnly;
          continue;
        }
        // Unflagged but unroutable (empty slot, stale view): fall through —
        // the stateful path decides, and any pin it creates flags the slot
        // through its live count.
      }
    }
    ln.st = kNeedLookup;
    lookups[need_lookup].tuple = &m.tuple;
    lookups[need_lookup].hash = ln.hash;
    lookup_lane[need_lookup] = static_cast<std::uint32_t>(i);
    ++need_lookup;
  }

  // --- stage B: grouped affinity lookup (one lock per touched shard) -------
  flows_.lookup_batch(lookups, need_lookup, now);

  // --- stage C: per-packet resolution (same decision tree as ever) ---------
  bool any_pick = false;
  for (std::size_t j = 0; j < need_lookup; ++j) {
    Lane& ln = lanes[lookup_lane[j]];
    const net::Message& m = *msgs[lookup_lane[j]];
    FlowHit hit = lookups[j].hit;
    if (hit.kind == FlowHit::Kind::kAffinity) {
      // Connection affinity: pinned regardless of weights — unless the
      // backend died since (defensive; removal drops its entries eagerly).
      // Draining backends keep serving their pinned flows: that is the
      // whole point of the graceful scale-in.
      if (const auto idx = gen.index_of(hit.backend_id)) {
        ln.dip = *idx;
        ln.st = kForwardOnly;
        continue;
      }
      if (flows_.erase(m.tuple).has_value() && slot_pins_)
        slot_pins_->dec(ln.slot);
      hit = FlowHit{};
    }
    if (ln.exception) {
      // Flagged slot, no pin for this tuple yet. Openers PIN to the
      // current pick (the "filter miss -> pin" arm): served statelessly
      // they would be indistinguishable, mid-flow, from the pre-change
      // flows the filter remembers, and the adoption below would re-home
      // them onto an owner they never had. The pin is the disambiguation —
      // and it is exactly as long-lived as the flow, not the slot's flag.
      if (m.req_id > 1) {
        const auto prev = filter->prev_owner(ln.slot);
        const auto pick = table->lookup_id(ln.hash);
        const auto cur = pick == MaglevTable::kNoId
                             ? ExceptionFilter::kNoOwner
                             : static_cast<std::uint32_t>(pick);
        if (prev != ExceptionFilter::kNoOwner && prev != cur) {
          if (const auto pidx = gen.index_of_addr(prev)) {
            // Adopt: pin the flow to the backend that was serving it
            // before the slot's pick moved (for a graceful drain, the
            // drainer — which keeps serving pinned flows). This is the
            // break the whole subsystem exists to avoid.
            affinity_breaks_avoided_.fetch_add(1, std::memory_order_relaxed);
            ln.dip = *pidx;
            ln.backend_id = gen.backends()[ln.dip].id;
            ln.adopted = true;
          } else {
            // The previous owner is gone (failure / completed removal):
            // the flow genuinely re-homes onto the current pick, pinned so
            // it does not break again.
            affinity_breaks_.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          // The slot is flagged but its pick did not move away from this
          // flow's owner (pin-held slot, or a change that has already been
          // reverted): the current pick IS the flow's backend — serve it
          // statelessly rather than pinning it for life.
          if (const auto idx = resolve_stateless(gen, *table, ln.hash, m)) {
            ln.dip = *idx;
            ln.st = kForwardOnly;
            continue;
          }
        }
      }
      if (ln.dip == kNoBackend) {
        // Re-homed flow or unroutable slot: resolve through the table like
        // a stateless pick would, then pin below.
        const auto pick = table->lookup_id(ln.hash);
        if (pick != MaglevTable::kNoId) {
          if (const auto idx =
                  gen.index_of_addr(static_cast<std::uint32_t>(pick))) {
            const auto& b = gen.backends()[*idx];
            if (b.enabled && !b.draining && b.weight_units > 0) {
              ln.dip = *idx;
              ln.backend_id = b.id;
            }
          }
        }
      }
    }
    // A fresh cached pick short-circuits the policy for tuple-deterministic
    // policies (hash, maglev) — the cache is keyed to the generation
    // sequence, so a hit can only name a choice made against the current
    // generation; the index checks below are defensive.
    if (ln.dip == kNoBackend && hit.kind == FlowHit::Kind::kCachedPick &&
        gen.policy_caches_picks()) {
      if (const auto idx = gen.index_of(hit.backend_id)) {
        const auto& b = gen.backends()[*idx];
        if (b.enabled && !b.draining &&
            (b.weight_units > 0 || !gen.policy_weighted())) {
          ln.dip = *idx;
          ln.backend_id = hit.backend_id;
        }
      }
    }
    if (ln.dip != kNoBackend) {
      ln.st = kNeedPin;
    } else {
      ln.st = kNeedPick;
      any_pick = true;
    }
  }

  // --- stage D: policy picks, one pick_mutex_ acquisition per chunk --------
  // The carved-out slow lane of the request path: the pick mutex is a
  // blocking lock, the pick itself is a virtual call (policies may rebuild
  // caches), and the LC-family pin inserts a map node. All of it is the
  // documented "mux.pick" escape; tuple-deterministic steady state never
  // enters (affinity hits, cached picks, and stateless routes resolve in
  // stages A-C).
  if (any_pick) {
    KLB_EFFECT_ESCAPE("mux.pick", {
      util::MutexLock lk(pick_mutex_);
      for (std::size_t i = 0; i < n; ++i) {
        Lane& ln = lanes[i];
        if (ln.st != kNeedPick) continue;
        const net::Message& m = *msgs[i];
        ln.dip = gen.policy().pick(m.tuple, gen.views(), rng_);
        if (ln.dip == kNoBackend) {
          no_backend_drops_.fetch_add(1, std::memory_order_relaxed);
          ln.st = kDropped;  // connection refused; client times out
          continue;
        }
        ln.backend_id = gen.backends()[ln.dip].id;
        if (gen.policy_uses_conns()) {
          // LC-family: pin and account *inside* the pick critical section
          // (pick mutex -> shard mutex is the legal order), so the next
          // pick already sees this connection — releasing first would let
          // concurrent opens herd onto the same least-loaded backend.
          std::tie(ln.owner, ln.fresh) = flows_.try_insert(
              m.tuple, ln.backend_id, now, gen.policy_caches_picks(),
              gen.seq());
          if (ln.fresh) {
            auto& c = *gen.backends()[ln.dip].counters;
            c.connections.fetch_add(1, std::memory_order_relaxed);
            gen.views()[ln.dip].active_conns =
                c.active.fetch_add(1, std::memory_order_relaxed) + 1;
          }
          ln.st = kPinned;
        } else {
          ln.st = kNeedPin;
        }
      }
    });
  }

  // --- stage E: pins outside the pick mutex + shared pin accounting --------
  for (std::size_t i = 0; i < n; ++i) {
    Lane& ln = lanes[i];
    if (ln.st == kNeedPin) {
      // One map-node allocation per new *connection* under the shard lock
      // — the documented "flow.pin_insert" hole, not a per-packet cost.
      KLB_EFFECT_ESCAPE("flow.pin_insert", {
        std::tie(ln.owner, ln.fresh) = flows_.try_insert(
            msgs[i]->tuple, ln.backend_id, now, gen.policy_caches_picks(),
            gen.seq());
      });
      if (ln.fresh) {
        auto& c = *gen.backends()[ln.dip].counters;
        // An adopted flow's connection was already counted at its
        // stateless open; only the pin (active) is new.
        if (!ln.adopted)
          c.connections.fetch_add(1, std::memory_order_relaxed);
        c.active.fetch_add(1, std::memory_order_relaxed);
      }
      ln.st = kPinned;
    }
    if (ln.st != kPinned) continue;
    if (ln.fresh && slot_pins_) {
      // Every pin in hybrid mode is slot-counted, keeping its slot on the
      // exception path for as long as it lives — regardless of which
      // branch created it.
      slot_pins_->inc(ln.slot);
      exception_pins_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!ln.fresh) {
      // A concurrent packet of the same tuple pinned it first; honour the
      // winner (single-threaded scalar drive never takes this branch).
      if (const auto idx = gen.index_of(ln.owner)) ln.dip = *idx;
    }
  }

  // --- stage F: forward, grouped per destination DIP -----------------------
  if (n == 1) {
    if (lanes[0].st != kDropped) forward_run(gen, lanes[0].dip, msgs, 1);
    return;
  }
  std::uint32_t order[kBatchChunk];
  std::size_t n_fwd = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (lanes[i].st != kDropped) order[n_fwd++] = static_cast<std::uint32_t>(i);
  // Stable insertion sort by destination DIP: n <= kBatchChunk, so this
  // beats std::stable_sort (which heap-allocates a temporary buffer) and
  // keeps burst order within a DIP for free.
  for (std::size_t s = 1; s < n_fwd; ++s) {
    const std::uint32_t v = order[s];
    const std::size_t dip = lanes[v].dip;
    std::size_t j = s;
    for (; j > 0 && lanes[order[j - 1]].dip > dip; --j) order[j] = order[j - 1];
    order[j] = v;
  }
  const net::Message* out[kBatchChunk];
  std::size_t i = 0;
  while (i < n_fwd) {
    const std::size_t dip = lanes[order[i]].dip;
    std::size_t k = 0;
    do {
      out[k++] = msgs[order[i]];
      ++i;
    } while (i < n_fwd && lanes[order[i]].dip == dip);
    forward_run(gen, dip, out, k);
  }
}

void Mux::release_connection(const PoolGeneration& gen, std::size_t i)
    KLB_NONALLOCATING {
  auto& active = gen.backends()[i].counters->active;
  auto cur = active.load(std::memory_order_relaxed);
  while (cur > 0 && !active.compare_exchange_weak(cur, cur - 1,
                                                  std::memory_order_relaxed)) {
  }
  // Only the LC family reads active_conns from the views; for everyone
  // else skipping the patch keeps FINs off the pick mutex entirely.
  if (!gen.policy_uses_conns()) return;
  KLB_EFFECT_ESCAPE("mux.release_pick_refresh", {
    util::MutexLock lk(pick_mutex_);
    gen.views()[i].active_conns = active.load(std::memory_order_relaxed);
  });
}

std::optional<std::size_t> Mux::resolve_fin(const PoolGeneration& gen,
                                            const FlowErase& r,
                                            bool* drain_emptied)
    KLB_NONALLOCATING {
  if (!r.found) {
    // No pin: in hybrid mode this is the normal close of a stateless flow
    // (nothing in the table was ever its state). The server still needs
    // the FIN to close out — deliver it where the data packets went: the
    // displaced previous owner when the slot is flagged with one that
    // differs from the current pick (exactly the mid-flow adoption rule,
    // handle_request), the current table pick otherwise.
    if (!slot_pins_) return std::nullopt;
    const auto* table = gen.maglev_table();
    if (table == nullptr) return std::nullopt;
    const auto slot = static_cast<std::size_t>(r.hash % slot_pins_->size());
    const auto pick = table->lookup_id(r.hash);
    const auto cur = pick == MaglevTable::kNoId
                         ? ExceptionFilter::kNoOwner
                         : static_cast<std::uint32_t>(pick);
    std::uint32_t dst = cur;
    if (const auto* f = gen.exception_filter();
        f != nullptr && f->is_exception(slot)) {
      const auto prev = f->prev_owner(slot);
      if (prev != ExceptionFilter::kNoOwner && prev != cur &&
          gen.index_of_addr(prev))
        dst = prev;
    }
    if (dst == ExceptionFilter::kNoOwner) return std::nullopt;
    return gen.index_of_addr(dst);
  }
  if (slot_pins_)
    slot_pins_->dec(static_cast<std::size_t>(r.hash % slot_pins_->size()));
  const auto idx = gen.index_of(r.id);
  if (!idx) return std::nullopt;  // backend removed while the flow was live
  release_connection(gen, *idx);
  const auto& b = gen.backends()[*idx];
  if (b.draining && b.counters->active.load(std::memory_order_relaxed) == 0)
    *drain_emptied = true;
  return idx;
}

void Mux::handle_fin(const net::Message& msg) KLB_NONALLOCATING {
  FlowErase r;
  r.tuple = &msg.tuple;
  r.hash = net::hash_tuple(msg.tuple);
  flows_.erase_batch(&r, 1);
  net::IpAddr addr;
  bool forward = false;
  bool drain_emptied = false;
  {
    auto ref = read_gen();
    if (const auto idx = resolve_fin(*ref.gen, r, &drain_emptied)) {
      addr = ref.gen->backends()[*idx].addr;
      forward = true;
    }
  }
  if (forward) net_.send(addr, msg);  // let the server close out too
  // Flag after unpinning (see gc_shard): the completion this triggers
  // retires a generation, and our own slot must not block its reclaim.
  if (drain_emptied) note_drain_empty();
}

void Mux::handle_fin_chunk(const net::Message* const* msgs, std::size_t n)
    KLB_NONALLOCATING {
  if (n == 1) {
    handle_fin(*msgs[0]);
    return;
  }
  FlowErase reqs[kBatchChunk];
  for (std::size_t i = 0; i < n; ++i) {
    reqs[i].tuple = &msgs[i]->tuple;
    reqs[i].hash = net::hash_tuple(msgs[i]->tuple);
  }
  flows_.erase_batch(reqs, n);

  constexpr std::uint32_t kNoFwd = 0xffffffffu;
  std::uint32_t dip[kBatchChunk];
  std::size_t drains_emptied = 0;
  {
    auto ref = read_gen();
    const PoolGeneration& gen = *ref.gen;
    for (std::size_t i = 0; i < n; ++i) {
      bool de = false;
      const auto idx = resolve_fin(gen, reqs[i], &de);
      dip[i] = idx ? static_cast<std::uint32_t>(*idx) : kNoFwd;
      drains_emptied += de ? 1 : 0;
    }
    // Forward grouped per destination, like stage F of the request path
    // (kNoFwd sorts last and is skipped).
    std::uint32_t order[kBatchChunk];
    for (std::size_t i = 0; i < n; ++i)
      order[i] = static_cast<std::uint32_t>(i);
    for (std::size_t s = 1; s < n; ++s) {
      const std::uint32_t v = order[s];
      const std::uint32_t d = dip[v];
      std::size_t j = s;
      for (; j > 0 && dip[order[j - 1]] > d; --j) order[j] = order[j - 1];
      order[j] = v;
    }
    const net::Message* out[kBatchChunk];
    std::size_t i = 0;
    while (i < n && dip[order[i]] != kNoFwd) {
      const std::uint32_t d = dip[order[i]];
      std::size_t k = 0;
      do {
        out[k++] = msgs[order[i]];
        ++i;
      } while (i < n && dip[order[i]] == d);
      net_.send_burst(gen.backends()[d].addr, out, k);
    }
  }
  // Flag after unpinning (see handle_fin): each emptied drain completes
  // once, exactly as the scalar path would have reported it.
  for (std::size_t k = 0; k < drains_emptied; ++k) note_drain_empty();
}

}  // namespace klb::lb
