#include "lb/mux.hpp"

#include <numeric>

#include "util/logging.hpp"
#include "util/weight.hpp"

namespace klb::lb {

namespace {
constexpr const char* kLog = "klb-mux";
/// Inline idle-flow sweeps run at most once per this many requests, so the
/// GC amortizes to O(1) per packet.
constexpr std::uint64_t kGcRequestInterval = 4096;
}  // namespace

Mux::Mux(net::Network& net, net::IpAddr vip, std::unique_ptr<Policy> policy,
         bool attach_to_vip)
    : net_(net), vip_(vip), attached_(attach_to_vip),
      policy_(std::move(policy)), rng_(net.sim().rng().fork()) {
  if (attached_) net_.attach(vip_, this);
}

Mux::~Mux() {
  if (attached_) net_.attach(vip_, nullptr);
}

void Mux::set_policy(std::unique_ptr<Policy> policy) {
  policy_ = std::move(policy);
  policy_->invalidate();
}

// --- transactional programming -------------------------------------------------

void Mux::apply_program(const PoolProgram& program) {
  if (program.version <= applied_version_) {
    ++superseded_programs_;
    util::log_warn(kLog) << "discarding stale pool program v"
                         << program.version << " (pool already at v"
                         << applied_version_ << ")";
    return;
  }
  applied_version_ = program.version;

  // Reconciliation is keyed by DIP address — the one name the emitter and
  // the dataplane agree on; stable ids stay dataplane-internal.
  std::unordered_map<std::uint32_t, const PoolEntry*> desired;
  for (const auto& e : program.entries) desired[e.dip.value()] = &e;

  std::vector<std::uint64_t> to_remove;  // stable ids, graceful removal
  for (auto& b : backends_) {
    const auto it = desired.find(b.addr.value());
    // Absent from the desired pool (or its entry was consumed by an
    // earlier duplicate-address backend): removed — unless the program is
    // weights-only (it does not own membership) or the backend is already
    // draining, in which case the drain keeps running to completion.
    if (it == desired.end() || it->second == nullptr) {
      if (!program.weights_only && !b.draining) to_remove.push_back(b.id);
      continue;
    }
    switch (it->second->state) {
      case BackendState::kActive: {
        const auto units = it->second->weight_units;
        b.weight_units = units < 0 ? 0 : units;
        b.enabled = true;
        b.draining = false;  // re-listing a drainer as Active cancels it
        break;
      }
      case BackendState::kDraining:
        b.weight_units = 0;
        b.enabled = false;
        b.draining = true;
        break;
      case BackendState::kRemoved:
        to_remove.push_back(b.id);
        break;
    }
    it->second = nullptr;  // consumed: not a newcomer
  }

  // Admit newcomers in program order (keeps the pool's relative order in
  // step with the program's, which the maglev build's minimal-disruption
  // property relies on). Weights-only programs admit nothing.
  for (const auto& e : program.entries) {
    if (program.weights_only) break;
    const auto it = desired.find(e.dip.value());
    if (it == desired.end() || it->second == nullptr) continue;
    it->second = nullptr;  // a duplicate entry admits one backend, not two
    if (e.state != BackendState::kActive) continue;  // nothing to condemn
    const auto tomb = failed_tombstones_.find(e.dip.value());
    if (tomb != failed_tombstones_.end()) {
      if (program.version <= tomb->second) {
        // Issued before the failure was observed: a stale view of the
        // pool, not a deliberate resurrection. Admitting it would steer
        // the dead DIP's hash share into a black hole until the next
        // post-failure commit.
        ++stale_failed_admissions_;
        util::log_warn(kLog)
            << "program v" << program.version << " re-lists failed backend "
            << e.dip.str() << " (condemned at v" << tomb->second
            << "); skipping entry";
        continue;
      }
      failed_tombstones_.erase(tomb);  // post-failure program: readmit
    }
    Backend b;
    b.id = next_backend_id_++;
    b.addr = e.dip;
    b.weight_units = e.weight_units < 0 ? 0 : e.weight_units;
    backends_.push_back(b);
  }

  for (const auto id : to_remove) {
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      if (backends_[i].id != id) continue;
      erase_backend_raw(i, /*failed=*/false);
      break;
    }
  }

  // A drain with no pinned flows completes in the same transaction.
  for (std::size_t i = 0; i < backends_.size();) {
    auto& b = backends_[i];
    if (b.draining && b.active == 0) {
      ++drains_completed_;
      erase_backend_raw(i, /*failed=*/false);
    } else {
      ++i;
    }
  }

  // Weights apply literally — the transaction declares the whole pool, so
  // there is nothing to rescale (unlike the imperative churn ops below).
  rebuild_id_index();
  rebuild_views();
  policy_->invalidate();
}

std::vector<net::IpAddr> Mux::backend_addrs() const {
  std::vector<net::IpAddr> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_)
    if (!b.draining) out.push_back(b.addr);
  return out;
}

std::size_t Mux::draining_count() const {
  std::size_t n = 0;
  for (const auto& b : backends_)
    if (b.draining) ++n;
  return n;
}

bool Mux::maybe_complete_drain(std::size_t i) {
  if (i >= backends_.size()) return false;
  if (!backends_[i].draining || backends_[i].active > 0) return false;
  ++drains_completed_;
  util::log_info(kLog) << "backend " << backends_[i].addr.str()
                       << " drained; completing removal";
  erase_backend_raw(i, /*failed=*/false);
  rebuild_id_index();
  rebuild_views();
  policy_->invalidate();
  return true;
}

// --- imperative lifecycle (direct dataplane manipulation) ----------------------

std::uint64_t Mux::add_backend(net::IpAddr dip,
                               const server::DipServer* server) {
  failed_tombstones_.erase(dip.value());  // imperative re-add is deliberate
  Backend b;
  b.id = next_backend_id_++;
  b.addr = dip;
  b.server = server;
  // The newcomer enters at the pool's mean weight (a fair share relative
  // to its peers); existing controller-programmed ratios are preserved by
  // renormalize — an n-DIP equal pool stays equal at n+1, a weighted pool
  // keeps its shape. An all-parked pool gives the newcomer everything.
  std::int64_t sum = 0;
  for (const auto& be : backends_) sum += be.weight_units;
  b.weight_units =
      backends_.empty() || sum <= 0
          ? util::kWeightScale
          : (sum + static_cast<std::int64_t>(backends_.size()) / 2) /
                static_cast<std::int64_t>(backends_.size());
  backends_.push_back(b);
  renormalize_weights();
  rebuild_id_index();
  rebuild_views();
  policy_->invalidate();
  return b.id;
}

bool Mux::remove_backend(std::size_t i) { return erase_backend(i, false); }

bool Mux::fail_backend(std::size_t i,
                       std::optional<std::uint64_t> condemned_until_version) {
  if (i >= backends_.size()) return false;
  // Tombstone the address against every transaction issued up to the
  // failure observation: one of them may still be riding the programming
  // delay, and committing it must not resurrect the corpse.
  condemn(backends_[i].addr,
          condemned_until_version ? *condemned_until_version
                                  : issued_versions());
  return erase_backend(i, true);
}

bool Mux::erase_backend(std::size_t i, bool failed) {
  if (i >= backends_.size()) return false;
  erase_backend_raw(i, failed);
  renormalize_weights();
  rebuild_id_index();
  rebuild_views();
  policy_->invalidate();
  return true;
}

void Mux::erase_backend_raw(std::size_t i, bool failed) {
  const auto id = backends_[i].id;
  if (failed) {
    util::log_warn(kLog) << "backend " << backends_[i].addr.str()
                         << " failed; resetting "
                         << backends_[i].active << " pinned flows";
  }
  drop_affinity_for(id, failed);
  backends_.erase(backends_.begin() + static_cast<std::ptrdiff_t>(i));
}

void Mux::renormalize_weights() {
  if (backends_.empty()) return;
  std::vector<double> raw(backends_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    raw[i] = static_cast<double>(backends_[i].weight_units);
    sum += raw[i];
  }
  // A fully parked pool (all zeros) stays parked: normalize's equal-split
  // fallback would resurrect a VIP the controller deliberately weighted to
  // zero, e.g. after removing the only weighted backend.
  if (sum <= 0.0) return;
  const auto units = util::normalize_to_units(raw);
  for (std::size_t i = 0; i < backends_.size(); ++i)
    backends_[i].weight_units = units[i];
}

void Mux::drop_affinity_for(std::uint64_t id, bool count_as_reset) {
  for (auto it = affinity_.begin(); it != affinity_.end();) {
    if (it->second.backend_id == id) {
      if (count_as_reset) ++flows_reset_;
      it = affinity_.erase(it);
    } else {
      ++it;
    }
  }
}

void Mux::rebuild_id_index() {
  id_index_.clear();
  for (std::size_t i = 0; i < backends_.size(); ++i)
    id_index_[backends_[i].id] = i;
}

std::optional<std::size_t> Mux::index_of_id(std::uint64_t id) const {
  const auto it = id_index_.find(id);
  if (it == id_index_.end()) return std::nullopt;
  return it->second;
}

// --- bounds-checked accessors --------------------------------------------------

net::IpAddr Mux::backend_addr(std::size_t i) const {
  if (i >= backends_.size()) {
    util::log_warn(kLog) << "backend_addr(" << i << ") out of range ("
                         << backends_.size() << " backends)";
    return net::IpAddr{};
  }
  return backends_[i].addr;
}

std::uint64_t Mux::backend_id(std::size_t i) const {
  if (i >= backends_.size()) {
    util::log_warn(kLog) << "backend_id(" << i << ") out of range ("
                         << backends_.size() << " backends)";
    return 0;
  }
  return backends_[i].id;
}

bool Mux::backend_enabled(std::size_t i) const {
  if (i >= backends_.size()) {
    util::log_warn(kLog) << "backend_enabled(" << i << ") out of range ("
                         << backends_.size() << " backends)";
    return false;
  }
  return backends_[i].enabled;
}

bool Mux::backend_draining(std::size_t i) const {
  return i < backends_.size() && backends_[i].draining;
}

std::uint64_t Mux::forwarded_requests(std::size_t i) const {
  return i < backends_.size() ? backends_[i].forwarded : 0;
}

std::uint64_t Mux::new_connections(std::size_t i) const {
  return i < backends_.size() ? backends_[i].connections : 0;
}

std::uint64_t Mux::active_connections(std::size_t i) const {
  return i < backends_.size() ? backends_[i].view().active_conns : 0;
}

// --- imperative weight programming ---------------------------------------------

bool Mux::set_weight_units(const std::vector<std::int64_t>& units) {
  if (units.size() != backends_.size()) {
    ++rejected_programmings_;
    util::log_warn(kLog) << "rejecting weight programming: " << units.size()
                         << " entries for " << backends_.size()
                         << " backends (controller out of sync with pool)";
    return false;
  }
  for (std::size_t i = 0; i < backends_.size(); ++i)
    backends_[i].weight_units =
        backends_[i].draining ? 0 : (units[i] < 0 ? 0 : units[i]);
  rebuild_views();
  policy_->invalidate();
  return true;
}

std::vector<std::int64_t> Mux::weight_units() const {
  std::vector<std::int64_t> out(backends_.size());
  for (std::size_t i = 0; i < backends_.size(); ++i)
    out[i] = backends_[i].weight_units;
  return out;
}

void Mux::set_backend_enabled(std::size_t i, bool enabled) {
  if (i < backends_.size()) {
    backends_[i].enabled = enabled;
    views_[i].enabled = enabled;
    policy_->invalidate();
  }
}

void Mux::reset_counters() {
  for (auto& b : backends_) {
    b.connections = 0;
    b.forwarded = 0;
  }
  total_forwarded_ = 0;
  no_backend_drops_ = 0;
  rejected_programmings_ = 0;
  superseded_programs_ = 0;
  drains_completed_ = 0;
  flows_reset_ = 0;
  flows_gced_ = 0;
  stale_failed_admissions_ = 0;
}

void Mux::rebuild_views() {
  views_.clear();
  views_.reserve(backends_.size());
  for (const auto& b : backends_) views_.push_back(b.view());
}

std::size_t Mux::dangling_affinity_count() const {
  std::size_t n = 0;
  for (const auto& [tuple, aff] : affinity_)
    if (id_index_.count(aff.backend_id) == 0) ++n;
  return n;
}

std::size_t Mux::gc_affinity() {
  std::size_t reclaimed = 0;
  const auto now = net_.sim().now();
  for (auto it = affinity_.begin(); it != affinity_.end();) {
    const auto idx = index_of_id(it->second.backend_id);
    const bool dead = !idx.has_value();
    const bool idle = affinity_idle_ > util::SimTime::zero() &&
                      it->second.last_seen + affinity_idle_ < now;
    if (dead || idle) {
      if (!dead) {  // a live backend loses a flow that never FIN'd
        auto& b = backends_[*idx];
        if (b.active > 0) --b.active;
        views_[*idx].active_conns = b.active;
      }
      ++flows_gced_;
      ++reclaimed;
      it = affinity_.erase(it);
    } else {
      ++it;
    }
  }
  // The GC may have reclaimed a drainer's last flow (FIN-less clients are
  // exactly what would otherwise wedge a graceful scale-in forever).
  for (std::size_t i = 0; i < backends_.size();)
    if (!maybe_complete_drain(i)) ++i;
  return reclaimed;
}

void Mux::maybe_gc() {
  if (affinity_idle_ <= util::SimTime::zero()) return;
  if (++requests_since_gc_ < kGcRequestInterval) return;
  requests_since_gc_ = 0;
  gc_affinity();
}

void Mux::on_message(const net::Message& msg) {
  switch (msg.type) {
    case net::MsgType::kHttpRequest:
      handle_request(msg);
      break;
    case net::MsgType::kFin:
      handle_fin(msg);
      break;
    default:
      break;
  }
}

void Mux::handle_request(const net::Message& msg) {
  maybe_gc();
  std::size_t dip = kNoBackend;
  const auto it = affinity_.find(msg.tuple);
  if (it != affinity_.end()) {
    // Connection affinity: pinned regardless of weights — unless the
    // backend died since (defensive; removal drops its entries eagerly).
    // Draining backends keep serving their pinned flows: that is the whole
    // point of the graceful scale-in.
    const auto idx = index_of_id(it->second.backend_id);
    if (idx) {
      dip = *idx;
      it->second.last_seen = net_.sim().now();
    } else {
      affinity_.erase(it);
    }
  }
  if (dip == kNoBackend) {
    dip = policy_->pick(msg.tuple, views_, rng_);
    if (dip == kNoBackend) {
      ++no_backend_drops_;
      return;  // connection refused; client times out
    }
    affinity_[msg.tuple] = Affinity{backends_[dip].id, net_.sim().now()};
    ++backends_[dip].active;
    ++backends_[dip].connections;
    views_[dip].active_conns = backends_[dip].active;
  }
  ++backends_[dip].forwarded;
  ++total_forwarded_;
  net_.send(backends_[dip].addr, msg);  // original tuple preserved (encap)
}

void Mux::handle_fin(const net::Message& msg) {
  const auto it = affinity_.find(msg.tuple);
  if (it == affinity_.end()) return;
  const auto idx = index_of_id(it->second.backend_id);
  affinity_.erase(it);
  if (!idx) return;  // backend removed while the flow was live
  auto& b = backends_[*idx];
  if (b.active > 0) --b.active;
  views_[*idx].active_conns = b.active;
  net_.send(b.addr, msg);  // let the server close out the connection too
  maybe_complete_drain(*idx);  // last pinned flow gone -> drain completes
}

}  // namespace klb::lb
