#include "lb/consistency.hpp"

#include <algorithm>

#include "lb/maglev.hpp"
#include "util/logging.hpp"

namespace klb::lb {

namespace {
constexpr const char* kLog = "klb-consistency";
}  // namespace

std::uint64_t SlotPinCounts::total() const {
  std::uint64_t n = 0;
  for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
  return n;
}

GenerationDiff::GenerationDiff(ConsistencyConfig cfg) : cfg_(cfg) {
  cfg_.history = std::max<std::size_t>(1, cfg_.history);
}

std::shared_ptr<const ExceptionFilter> GenerationDiff::on_publish(
    const MaglevTable& table, std::uint64_t seq) {
  table.resolve_slots(scratch_);
  const auto n = scratch_.size();

  if (owners_.empty()) {
    // First publish: adopt the table as the baseline. Every slot is an
    // empty -> owner transition — there are no pre-existing flows whose
    // pick could have moved, so nothing is flagged.
    owners_ = scratch_;
    prev_.assign(n, ExceptionFilter::kNoOwner);
    changed_at_.assign(n, 0);
    publishes_ = 1;
    return std::make_shared<const ExceptionFilter>(seq, n);
  }
  if (n != owners_.size()) {
    // Table geometry changed under us (a policy swap with a different
    // min_table_size): slot indexes are incomparable, so no filter — the
    // Mux falls back to pinning every flow for this generation.
    util::log_warn(kLog) << "table size changed " << owners_.size() << " -> "
                         << n << "; stateless path disengaged";
    return nullptr;
  }

  ++publishes_;
  for (std::size_t s = 0; s < n; ++s) {
    const auto owner = scratch_[s];
    const auto old = owners_[s];
    if (owner == old) continue;
    if (old != ExceptionFilter::kNoOwner) {
      // A breaking change: flows hashed here were being served by `old`.
      // (empty -> owner transitions carry no flows and stay unflagged —
      // otherwise the very first pool fill would pin everything forever.)
      changed_at_[s] = publishes_;
      prev_[s] = old;
    }
    owners_[s] = owner;
  }

  auto filter = std::make_shared<ExceptionFilter>(seq, n);
  for (std::size_t s = 0; s < n; ++s) {
    if (changed_at_[s] == 0) continue;
    if (publishes_ - changed_at_[s] >= cfg_.history) continue;
    filter->flag(s, prev_[s]);
  }
  return filter;
}

}  // namespace klb::lb
