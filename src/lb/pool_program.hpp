// Transactional, id-keyed dataplane programming (the redesigned Fig. 6
// "LB controller" contract).
//
// KnapsackLB's controller only ever talks to the LB through a weight
// interface. The first cut of that interface was index-positional and
// one-op-at-a-time (program_weights by registration order, add/remove by
// index, each op with its own delay), so a membership/weights sequence
// could interleave into transient misprograms. The redesign makes every
// programming a *transaction*: a PoolProgram describes the entire desired
// pool — each backend keyed by its DIP address, with a weight and a
// lifecycle state — and the dataplane applies it atomically. Versions are
// monotonic; a stale in-flight transaction that commits after a newer one
// is discarded whole, so the old size-mismatch race is structurally
// unreachable (there is nothing partial to apply).
#pragma once

#include <cstdint>
#include <vector>

#include "net/address.hpp"

namespace klb::lb {

/// Desired lifecycle state of one backend within a transaction.
enum class BackendState : std::uint8_t {
  /// In rotation at `weight_units`.
  kActive,
  /// Graceful scale-in: parked at weight 0 (no new connections), pinned
  /// flows keep draining; the dataplane auto-completes the backend to
  /// removed once its affinity entries empty. A draining backend no longer
  /// belongs to the desired pool: later transactions simply omit it and
  /// the drain continues. Re-listing it as kActive cancels the drain.
  kDraining,
  /// Immediate graceful removal (cut a drain short / decommission now):
  /// affinity entries are dropped, clients reconnect via the policy.
  kRemoved,
};

/// One backend of the desired pool. Keyed by DIP address — the one name
/// the controller and every dataplane agree on; the MUX maps it to its
/// own stable backend id internally.
struct PoolEntry {
  net::IpAddr dip;
  std::int64_t weight_units = 0;  // consulted only for kActive
  BackendState state = BackendState::kActive;
};

/// A whole-pool transaction. Entries list the complete desired pool in a
/// stable order (keeping relative order stable across versions is what
/// lets the maglev build stay minimally disruptive); a backend the
/// dataplane serves but the program omits is removed — unless it is
/// already draining, in which case the drain runs to completion.
struct PoolProgram {
  std::uint64_t version = 0;
  std::vector<PoolEntry> entries;
  /// Partial transaction: update the listed backends' weights/states
  /// atomically but leave unlisted backends untouched — no
  /// omission-removal, no admission of unknown DIPs. For secondary
  /// writers (the drain estimator) that reweight a pool they do not own
  /// the membership of: a membership change racing through the
  /// programming delay is not silently reverted by their stale view.
  bool weights_only = false;

  PoolProgram() = default;
  explicit PoolProgram(std::uint64_t v) : version(v) {}

  PoolProgram& add(net::IpAddr dip, std::int64_t weight_units,
                   BackendState state = BackendState::kActive) {
    entries.push_back(PoolEntry{dip, weight_units, state});
    return *this;
  }
};

/// Anything that can serve a pool programmed this way: a MUX, an
/// ECMP-sharded MUX pool, a DNS traffic manager, a recording sink, or the
/// LbController decorator that adds the programming delay. This replaces
/// the imperative WeightInterface (program_weights / set_backend_enabled /
/// add_backend / remove_backend) wholesale.
class PoolProgrammer {
 public:
  virtual ~PoolProgrammer() = default;

  /// Backends currently served (active + still-draining).
  virtual std::size_t backend_count() const = 0;

  /// Addresses of the backends in the desired pool (active, registration
  /// order; draining leftovers excluded) — the view an emitter bases its
  /// next full-pool transaction on.
  virtual std::vector<net::IpAddr> backend_addrs() const = 0;

  /// Apply the transaction after an implementation-specific delay. Later
  /// versions monotonically supersede in-flight ones: a dataplane that
  /// already committed version v discards any program with version <= v.
  virtual void apply_program(const PoolProgram& program) = 0;

  /// Periodic control-plane maintenance hook. Dataplanes that defer work
  /// off the packet path (the Mux's drain auto-completion and retired
  /// generation reclamation) run it here; the default is a no-op. Called
  /// from the controller's tick and safe to call at any frequency.
  virtual void poll() {}

  /// Stamp the next transaction. All emitters programming through one
  /// interface share this counter, so supersession is totally ordered
  /// even with several writers (controller + drain estimator). Decorators
  /// (LbController) override it to delegate to the wrapped dataplane, so
  /// direct and decorated emitters draw from the same sequence.
  virtual std::uint64_t issue_version() { return ++issued_versions_; }
  std::uint64_t issued_versions() const { return issued_versions_; }

 private:
  std::uint64_t issued_versions_ = 0;
};

}  // namespace klb::lb
