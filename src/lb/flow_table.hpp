// Sharded connection-affinity table + per-shard flow cache for the MUX
// hot path (ISSUE 5 / ROADMAP item c).
//
// The per-packet MUX path is: tuple hash -> affinity lookup -> (on miss)
// policy pick -> pin. A single monolithic unordered_map serializes every
// packet of every core behind one structure; a FlowTable splits the flow
// space into a power-of-two number of shards, chosen by the tuple hash,
// each with its own mutex, map, counters, and flow cache. Two cores only
// contend when their packets hash to the same shard, so lookup/insert/FIN
// throughput scales with cores — the per-core state-scaling problem the
// stateful-vs-stateless LB literature (and XLB's in-kernel path) optimize.
//
// The flow cache is a small per-shard direct-mapped array of recent
// (tuple -> backend id) pick results, consulted on an affinity miss before
// the policy runs: a tuple that reconnects shortly after its FIN re-pins
// without re-entering the (serialized) policy pick. Cached picks carry the
// epoch they were stored under; every pool mutation bumps the table epoch
// (Mux::apply_program, fail_backend, weight changes), so a cached pick can
// never resurrect a tombstoned or reweighted backend — the whole cache
// invalidates in O(1).
//
// Thread-safety: every public operation is safe to call concurrently.
// GC sweeps are shard-local: gc_shard(k) holds only shard k's lock, so an
// inline sweep from the packet path never stalls the other shards, and the
// reclaim callback runs after the lock is released (callers may reenter
// the table or take their own locks from it).
//
// Per-shard counters (inserts, erases, GC reclaims, cache hits/misses) are
// only aggregated on read — the hot path never touches a shared counter
// cache line.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/five_tuple.hpp"
#include "util/sync.hpp"
#include "util/time.hpp"

namespace klb::lb {

struct FlowTableConfig {
  /// Rounded up to a power of two. One shard degenerates to the old
  /// monolithic single-map table (the bench baseline).
  std::size_t shard_count = 16;
  /// Direct-mapped flow-cache slots per shard, rounded up to a power of
  /// two. 0 disables the cache.
  std::size_t cache_slots_per_shard = 256;
  /// Expected concurrent flows across the whole table. Positive values
  /// pre-reserve each shard's map for its share, so filling to that scale
  /// never rehashes (a rehash at 10M flows stalls that shard for the
  /// whole re-bucketing). 0 keeps the default growth behaviour.
  std::size_t expected_flows = 0;
  /// Default cap on entries examined per gc_shard() call (0 = sweep the
  /// whole shard). A bounded sweep resumes from a per-shard bucket cursor
  /// on the next call, so inline GC from the packet path stays O(budget)
  /// at 10M flows instead of O(shard). Explicit full sweeps can override
  /// per call.
  std::size_t gc_scan_budget = 0;
};

/// Aggregated per-shard counters (one lock per shard held briefly on read).
struct FlowTableStats {
  std::size_t entries = 0;
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t gc_reclaimed = 0;
  std::uint64_t gc_scanned = 0;  // entries examined by GC sweeps
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t pick_invalidations = 0;  // epoch bumps
};

/// Memory footprint, aggregated across shards. `approx_bytes` estimates
/// heap usage from the node-based unordered_map layout (per-entry node +
/// bucket array) plus the flow-cache arrays and the shard structs — an
/// estimate, but the *same* estimate in every build mode, so ratios
/// (stateless vs stateful) are instrumentation-independent and hold under
/// sanitizers (bench/flow_memory.cpp gates on the ratio).
struct FlowTableMemory {
  std::size_t entries = 0;
  std::size_t buckets = 0;      // sum of shard bucket counts
  std::size_t cache_slots = 0;  // sum of shard flow-cache capacities
  std::size_t approx_bytes = 0;
};

/// Result of the combined affinity-then-cache lookup (one lock acquisition).
struct FlowHit {
  enum class Kind : std::uint8_t {
    kMiss,        // unknown tuple: run the policy
    kAffinity,    // pinned flow (last_seen touched)
    kCachedPick,  // no pin, but a fresh cached pick for this tuple
  };
  Kind kind = Kind::kMiss;
  std::uint64_t backend_id = 0;
};

/// One element of a batched affinity lookup. The caller precomputes the
/// tuple hash (it already needs it for the stateless path); the result
/// lands in `hit`.
struct FlowLookup {
  const net::FiveTuple* tuple = nullptr;
  std::uint64_t hash = 0;
  FlowHit hit;
};

/// One element of a batched FIN unpin (erase_batch). The caller
/// precomputes the tuple hash; `found`/`id` report whether the flow was
/// pinned and to which backend.
struct FlowErase {
  const net::FiveTuple* tuple = nullptr;
  std::uint64_t hash = 0;
  std::uint64_t id = 0;
  bool found = false;
};

class FlowTable {
 public:
  explicit FlowTable(FlowTableConfig cfg = {});

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  std::size_t shard_count() const KLB_NONBLOCKING { return shards_.size(); }
  std::size_t shard_of(const net::FiveTuple& t) const KLB_NONBLOCKING {
    return shard_index(net::hash_tuple(t));
  }

  /// Affinity lookup with last-seen touch; on miss, probe the flow cache.
  /// Nonallocating: the one shard-lock acquisition is the documented
  /// "flow.shard_lock" escape; everything under it is lock-free reads.
  FlowHit lookup(const net::FiveTuple& t, util::SimTime now)
      KLB_NONALLOCATING;

  /// Batched lookup(): partitions the requests by shard and takes each
  /// shard lock once for its whole group. Element-wise identical to
  /// calling lookup() per request. The grouping stage is lock-free and
  /// allocation-free (per-thread scratch grows once per high-water mark —
  /// "flow.scratch_grow"); each per-run lock is "flow.shard_lock".
  void lookup_batch(FlowLookup* reqs, std::size_t n, util::SimTime now)
      KLB_NONALLOCATING;

  /// Pin `t` to `backend_id` unless it is already pinned (a concurrent
  /// packet of the same tuple may have won the race). Returns the owning
  /// backend id and whether this call inserted it. With `cache_pick` the
  /// pick is also stored in the shard's flow cache, stamped `pick_epoch`
  /// (0 = the table's current epoch). A generation-based Mux passes the
  /// epoch of the generation the pick was computed against, so a straggler
  /// thread still reading a retired generation writes cache entries that
  /// are already invalid — never a stale pick served as fresh.
  std::pair<std::uint64_t, bool> try_insert(const net::FiveTuple& t,
                                            std::uint64_t backend_id,
                                            util::SimTime now, bool cache_pick,
                                            std::uint64_t pick_epoch = 0);

  /// Read-only affinity probe: no last-seen touch, no flow-cache probe,
  /// no counter traffic. Diagnostics and tests; the packet path uses
  /// lookup().
  std::optional<std::uint64_t> try_find(const net::FiveTuple& t) const;

  /// Unpin `t`, returning the backend it was pinned to (FIN path).
  /// Nonallocating in the lookup() split: the one shard-lock acquisition
  /// (and the node free under it) is the "flow.shard_lock" escape.
  std::optional<std::uint64_t> erase(const net::FiveTuple& t)
      KLB_NONALLOCATING;

  /// Batched erase(): partitions the requests by shard and takes each
  /// shard lock once for its whole group. Element-wise identical to
  /// calling erase() per request. Nonallocating in the same split as
  /// lookup_batch(): the staging lanes never touch the heap; the node
  /// frees happen only inside the documented "flow.shard_lock" runs.
  void erase_batch(FlowErase* reqs, std::size_t n) KLB_NONALLOCATING;

  /// Drop every flow pinned to `backend_id` (backend removal/failure).
  /// Returns the number of flows dropped. `dropped` runs per dropped flow
  /// after the owning shard's lock is released (callers unpin slot
  /// accounting from it).
  std::size_t erase_backend(std::uint64_t backend_id,
                            const std::function<void(const net::FiveTuple&)>&
                                dropped = nullptr);

  /// Reclaim dead flows (backend fails `alive`) and — when `idle` is
  /// positive — flows idle since before `now - idle`, in shard `k` only.
  /// `alive` runs under the shard lock and must not reenter the table;
  /// `reclaimed(tuple, backend_id, dead)` runs per reclaimed flow *after*
  /// the lock is released, so it may reenter the table or take caller
  /// locks. `max_scan` bounds the entries examined (kScanAll = whole
  /// shard; kScanBudgeted = the configured gc_scan_budget); a bounded
  /// sweep resumes from the shard's bucket cursor next call, wrapping the
  /// whole shard over successive calls.
  static constexpr std::size_t kScanAll = 0;
  static constexpr std::size_t kScanBudgeted =
      static_cast<std::size_t>(-1);
  std::size_t gc_shard(std::size_t k, util::SimTime now, util::SimTime idle,
                       const std::function<bool(std::uint64_t)>& alive,
                       const std::function<void(const net::FiveTuple&,
                                                std::uint64_t, bool)>&
                           reclaimed = nullptr,
                       std::size_t max_scan = kScanAll);

  /// Full sweep: gc_shard over every shard (still one shard lock at a time).
  std::size_t gc(util::SimTime now, util::SimTime idle,
                 const std::function<bool(std::uint64_t)>& alive,
                 const std::function<void(const net::FiveTuple&, std::uint64_t,
                                          bool)>& reclaimed = nullptr);

  /// Invalidate every cached pick pool-wide in O(1) (epoch bump). Called
  /// by the Mux on every pool mutation so a cached pick can never
  /// resurrect a removed, failed, drained, or reweighted backend.
  void invalidate_picks() {
    epoch_.fetch_add(1, std::memory_order_relaxed);
    pick_invalidations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Jump the pick epoch to `epoch` (a generation sequence number). Lets
  /// the Mux key cached picks to its generation sequence: entries written
  /// under an older generation miss, and a straggler's try_insert with
  /// that older pick_epoch is born invalid. Callers must pass strictly
  /// increasing values.
  void set_pick_epoch(std::uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_relaxed);
    pick_invalidations_.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t size() const;
  std::size_t shard_size(std::size_t k) const;
  /// Shard k's current map capacity (bucket count) — pre-reserve checks.
  std::size_t shard_buckets(std::size_t k) const;
  /// Aggregated footprint (entries, buckets, approximate bytes).
  FlowTableMemory memory() const;
  std::size_t gc_scan_budget() const { return gc_scan_budget_; }

  /// Visit every flow as (tuple, backend_id, last_seen). Holds each shard's
  /// lock during its callbacks — test/diagnostic use; do not reenter the
  /// table from `fn`.
  void for_each(const std::function<void(const net::FiveTuple&, std::uint64_t,
                                         util::SimTime)>& fn) const;

  FlowTableStats stats() const;

 private:
  struct Flow {
    std::uint64_t backend_id = 0;
    util::SimTime last_seen = util::SimTime::zero();
  };

  struct CacheSlot {
    net::FiveTuple tuple;
    std::uint64_t backend_id = 0;
    std::uint64_t epoch = 0;  // 0 = never written (live epochs start at 1)
  };

  /// Own cache line per shard: the mutex and map of one shard must not
  /// false-share with its neighbours. All shard mutexes share one lock
  /// rank ("klb.flow.shard"): the table never nests two shard locks, so
  /// the debug validator treats any same-rank nesting as a bug.
  struct alignas(64) Shard {
    mutable util::Mutex mu{"klb.flow.shard"};
    std::unordered_map<net::FiveTuple, Flow> flows KLB_GUARDED_BY(mu);
    std::vector<CacheSlot> cache KLB_GUARDED_BY(mu);
    std::uint64_t inserts KLB_GUARDED_BY(mu) = 0;
    std::uint64_t erases KLB_GUARDED_BY(mu) = 0;
    std::uint64_t gc_reclaimed KLB_GUARDED_BY(mu) = 0;
    std::uint64_t gc_scanned KLB_GUARDED_BY(mu) = 0;
    std::uint64_t cache_hits KLB_GUARDED_BY(mu) = 0;
    std::uint64_t cache_misses KLB_GUARDED_BY(mu) = 0;
    /// Bucket index a budgeted GC sweep resumes from (wraps).
    std::size_t gc_cursor KLB_GUARDED_BY(mu) = 0;
  };

  /// Shard choice uses the hash's top bits: the low bits feed the affinity
  /// map buckets and the maglev table index, so shard choice stays
  /// decorrelated from both.
  std::size_t shard_index(std::uint64_t h) const KLB_NONBLOCKING {
    return static_cast<std::size_t>(h >> 48) & shard_mask_;
  }

  /// Lock-free under the shard lock: map find + in-place touch + cache
  /// probe, no allocation (nonblocking — the lock is the caller's).
  FlowHit lookup_locked(Shard& s, const net::FiveTuple& t, std::uint64_t h,
                        util::SimTime now) KLB_NONBLOCKING
      KLB_REQUIRES(s.mu);
  /// Frees the flow's map node on a hit — callers run it inside their
  /// "flow.shard_lock" escape (the one lane where the table may free).
  void erase_locked(Shard& s, FlowErase& r) KLB_REQUIRES(s.mu);
  std::size_t cache_index(std::uint64_t h) const KLB_NONBLOCKING {
    return static_cast<std::size_t>(h >> 16) & cache_mask_;
  }

  std::size_t shard_mask_ = 0;
  std::size_t cache_mask_ = 0;  // meaningful only when cache_enabled_
  bool cache_enabled_ = false;
  std::size_t gc_scan_budget_ = 0;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> pick_invalidations_{0};
};

}  // namespace klb::lb
