// Immutable pool-state generations for the MUX dataplane (ROADMAP item 1).
//
// A PoolGeneration is one committed configuration of a VIP's pool:
// membership, addresses, stable ids, weights, enable/drain flags, and the
// policy instance that serves picks for this configuration. The Mux builds
// one per control-plane mutation (pool program, imperative churn op,
// weight change, policy swap), publishes it through a single atomic
// pointer, and retires the previous one into an EpochDomain — the packet
// path loads the current generation wait-free and never observes a
// half-applied configuration.
//
// Two members are deliberately *not* frozen:
//
//   * Per-backend counters (active/connections/forwarded) live in shared
//     BackendCounters blocks keyed by stable id, referenced by every
//     generation that carries the backend — a generation swap must not
//     lose or reset in-flight accounting (a FIN may decrement through a
//     newer generation than the request that incremented).
//   * views() is the policy-facing scratch vector. Its active_conns
//     fields are patched in place under the Mux's pick mutex for the
//     LC-family policies, exactly as the pre-generation code patched its
//     views cache; everything else in it is fixed at construction.
//
// The structural fields checksum at construction; self_check() recomputes
// and compares, so a concurrent reader can assert it never saw a torn or
// partially initialized generation (the concurrency tests do).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lb/consistency.hpp"
#include "lb/policy.hpp"
#include "net/address.hpp"

namespace klb::server {
class DipServer;
}

namespace klb::lb {

/// Packet-path counters for one backend, shared across generations by
/// stable id. Relaxed atomics: aggregated on the control path.
struct BackendCounters {
  std::atomic<std::uint64_t> active{0};
  std::atomic<std::uint64_t> connections{0};  // cumulative new connections
  std::atomic<std::uint64_t> forwarded{0};    // cumulative forwarded requests
  /// Sim time of the last request forwarded while draining (hybrid mode
  /// only; 0 otherwise). Stateless flows hold no pin, so traffic is the
  /// only evidence a drainer still serves them: drain auto-completion
  /// waits until the drainer has been *idle* for the grace window, and
  /// every forwarded packet re-arms it (Mux::drain_ripe).
  std::atomic<std::int64_t> last_forward_us{0};
};

/// One backend as a generation carries it. Plain values — copying a
/// backend vector into the next generation's draft is how the control
/// plane mutates the pool.
struct GenBackend {
  std::uint64_t id = 0;  // stable across pool churn; affinity key
  net::IpAddr addr;
  const server::DipServer* server = nullptr;  // only P2 reads through this
  std::int64_t weight_units = 0;
  bool enabled = true;
  bool draining = false;  // condemned: parked until affinity empties
  /// Sim time the drain started (meaningful while `draining`). Stateless
  /// mode gates drain auto-completion on a grace period past this: flows
  /// without a pin need time to adopt one (or FIN) before the backend
  /// disappears — active == 0 alone no longer proves the drainer idle.
  std::int64_t drain_since_us = 0;
  std::shared_ptr<BackendCounters> counters;

  BackendView view() const KLB_NONBLOCKING {
    return BackendView{addr, weight_units, enabled,
                       counters ? counters->active.load(
                                      std::memory_order_relaxed)
                                : 0,
                       server};
  }
};

class PoolGeneration {
 public:
  /// `seq` is the Mux's generation sequence number (doubles as the flow
  /// cache's pick epoch); `program_version` the last committed
  /// transaction. The policy instance becomes generation-owned: it must
  /// already be invalidated/prepared for exactly this backend list.
  PoolGeneration(std::uint64_t seq, std::uint64_t program_version,
                 std::vector<GenBackend> backends,
                 std::unique_ptr<Policy> policy)
      : seq_(seq), program_version_(program_version),
        backends_(std::move(backends)), policy_(std::move(policy)) {
    index_by_id_.reserve(backends_.size());
    views_.reserve(backends_.size());
    index_by_addr_.reserve(backends_.size());
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      index_by_id_.emplace(backends_[i].id, i);
      index_by_addr_[backends_[i].addr.value()] = i;  // duplicates: last wins
      views_.push_back(backends_[i].view());
    }
    policy_uses_conns_ = policy_->uses_connection_counts();
    policy_caches_picks_ = policy_->pick_is_tuple_deterministic();
    policy_weighted_ = policy_->weighted();
    // The pointer is stable even though the table's *contents* are filled
    // later (prepare() runs before publication); null for policies with
    // no maglev table.
    table_ = policy_->maglev_table();
    checksum_ = compute_checksum();
    live_count_ref().fetch_add(1, std::memory_order_relaxed);
  }

  ~PoolGeneration() {
    live_count_ref().fetch_sub(1, std::memory_order_relaxed);
  }

  PoolGeneration(const PoolGeneration&) = delete;
  PoolGeneration& operator=(const PoolGeneration&) = delete;

  // Read accessors consulted by the packet path under a generation pin:
  // all nonblocking (frozen fields, read-only map finds, no allocation).
  std::uint64_t seq() const KLB_NONBLOCKING { return seq_; }
  std::uint64_t program_version() const KLB_NONBLOCKING {
    return program_version_;
  }

  const std::vector<GenBackend>& backends() const KLB_NONBLOCKING {
    return backends_;
  }
  std::size_t size() const KLB_NONBLOCKING { return backends_.size(); }

  std::optional<std::size_t> index_of(std::uint64_t id) const
      KLB_NONBLOCKING {
    const auto it = index_by_id_.find(id);
    if (it == index_by_id_.end()) return std::nullopt;
    return it->second;
  }

  /// Index by DIP address value — the identity maglev tables resolve to
  /// (stable ids stay dataplane-internal; the table is shared pool-wide).
  std::optional<std::size_t> index_of_addr(std::uint32_t addr) const
      KLB_NONBLOCKING {
    const auto it = index_by_addr_.find(addr);
    if (it == index_by_addr_.end()) return std::nullopt;
    return it->second;
  }

  /// The maglev table this generation's policy serves, or nullptr. Frozen
  /// at publication; the packet path reads it lock-free under its pin.
  const MaglevTable* maglev_table() const KLB_NONBLOCKING { return table_; }

  /// The generation's exception filter (lb/consistency.hpp), or nullptr
  /// when the stateless fast path is off/disengaged. Set by the Mux on
  /// the control thread before the generation is published (never after),
  /// and reclaimed with the generation.
  const ExceptionFilter* exception_filter() const KLB_NONBLOCKING {
    return filter_.get();
  }
  void set_exception_filter(std::shared_ptr<const ExceptionFilter> f) {
    filter_ = std::move(f);
  }

  /// Policy-facing views, index-aligned with backends(). active_conns is
  /// patched in place — only under the owning Mux's pick mutex.
  std::vector<BackendView>& views() const KLB_NONBLOCKING { return views_; }

  /// The generation-owned policy. Stateful: every call must hold the
  /// owning Mux's pick mutex.
  Policy& policy() const KLB_NONBLOCKING { return *policy_; }

  // Policy traits cached at construction: no virtual dispatch per packet.
  bool policy_uses_conns() const KLB_NONBLOCKING {
    return policy_uses_conns_;
  }
  bool policy_caches_picks() const KLB_NONBLOCKING {
    return policy_caches_picks_;
  }
  bool policy_weighted() const KLB_NONBLOCKING { return policy_weighted_; }

  /// Recompute the structural checksum and compare with the one stamped
  /// at construction — false means a torn/corrupt generation (never
  /// expected; asserted by the concurrency tests).
  bool self_check() const { return compute_checksum() == checksum_; }

  /// Generations currently alive process-wide (published + retired but
  /// not yet reclaimed + drafts under construction). The churn bench
  /// asserts this returns to one-per-mux after quiescing — the
  /// no-use-after-retire / no-leak invariant.
  static std::uint64_t live_count() {
    return live_count_ref().load(std::memory_order_relaxed);
  }

 private:
  static std::atomic<std::uint64_t>& live_count_ref() {
    static std::atomic<std::uint64_t> count{0};
    return count;
  }

  std::uint64_t compute_checksum() const {
    auto mix = [](std::uint64_t x) {
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebull;
      x ^= x >> 31;
      return x;
    };
    std::uint64_t h = mix(seq_ ^ 0x9e3779b97f4a7c15ull) ^
                      mix(program_version_ + 0x165667b19e3779f9ull);
    for (const auto& b : backends_) {
      h = mix(h ^ b.id);
      h = mix(h ^ b.addr.value());
      h = mix(h ^ static_cast<std::uint64_t>(b.weight_units));
      h = mix(h ^ ((b.enabled ? 2ull : 0ull) | (b.draining ? 1ull : 0ull)));
    }
    return h;
  }

  std::uint64_t seq_ = 0;
  std::uint64_t program_version_ = 0;
  std::vector<GenBackend> backends_;
  std::unordered_map<std::uint64_t, std::size_t> index_by_id_;
  std::unordered_map<std::uint32_t, std::size_t> index_by_addr_;
  const MaglevTable* table_ = nullptr;
  std::shared_ptr<const ExceptionFilter> filter_;
  mutable std::vector<BackendView> views_;  // active_conns patched under pick mutex
  std::unique_ptr<Policy> policy_;
  bool policy_uses_conns_ = false;
  bool policy_caches_picks_ = false;
  bool policy_weighted_ = false;
  std::uint64_t checksum_ = 0;
};

}  // namespace klb::lb
