#include "lb/mux_pool.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace klb::lb {

namespace {
constexpr const char* kLog = "klb-muxpool";

/// ECMP salt: decorrelates shard choice from the maglev table's backend
/// choice (both start from hash_tuple).
constexpr std::uint64_t kEcmpSalt = 0xecb99a18d7f4a7c1ull;

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}
}  // namespace

MuxPool::MuxPool(net::Network& net, net::IpAddr vip, std::size_t mux_count,
                 std::size_t min_table_size, FlowTableConfig flow_cfg,
                 ConsistencyConfig consistency)
    : net_(net), vip_(vip), min_table_size_(min_table_size) {
  mux_count = std::max<std::size_t>(1, mux_count);
  // ECMP spreads the flow space uniformly, so each member expects its
  // even share of the pool-wide flow population.
  flow_cfg.expected_flows /= mux_count;
  muxes_.reserve(mux_count);
  for (std::size_t k = 0; k < mux_count; ++k) {
    auto policy = std::make_unique<SharedMaglevPolicy>();
    // An empty table of the final geometry: hybrid engagement sizes its
    // slot-pin counters from the policy's table in the Mux constructor,
    // and every table published later (publish_table) allocates the same
    // prime slot count, so the filters stay comparable for the pool's
    // whole lifetime.
    policy->set_table(std::make_shared<MaglevTable>(min_table_size_));
    muxes_.push_back(std::make_unique<Mux>(net_, vip_, std::move(policy),
                                           /*attach_to_vip=*/false, flow_cfg,
                                           consistency));
  }
  net_.attach(vip_, this);
}

MuxPool::~MuxPool() { net_.attach(vip_, nullptr); }

std::size_t MuxPool::shard_of(const net::FiveTuple& tuple) const {
  return static_cast<std::size_t>(mix64(net::hash_tuple(tuple) ^ kEcmpSalt) %
                                  muxes_.size());
}

std::shared_ptr<const MaglevTable> MuxPool::table_snapshot(
    std::size_t k) const {
  return muxes_[k]->shared_table_snapshot();
}

std::size_t MuxPool::backend_count() const {
  std::size_t n = 0;
  for (const auto& m : muxes_) n = std::max(n, m->backend_count());
  return n;
}

std::vector<net::IpAddr> MuxPool::backend_addrs() const {
  // The desired (non-draining) pool is identical on every member; drains
  // may complete at different times, but those are excluded here anyway.
  return muxes_.front()->backend_addrs();
}

void MuxPool::apply_program(const PoolProgram& program) {
  util::MutexLock lk(mu_);
  // One version check for the whole pool: either every member commits this
  // transaction or none does, so the members cannot diverge.
  if (program.version <= applied_version_) {
    ++superseded_programs_;
    util::log_warn(kLog) << "discarding stale pool program v"
                         << program.version << " (pool already at v"
                         << applied_version_ << ")";
    return;
  }
  applied_version_ = program.version;

  for (auto& m : muxes_) m->apply_program(program);
  publish_table();
}

void MuxPool::publish_table() {
  // One maglev build per commit, derived from the post-apply pool state
  // (member 0 is representative: every member applied the same programs,
  // and draining stragglers are excluded from the table either way).
  // Entry order follows the members' registration order, which tracks the
  // programs' stable relative order, so the rebuild stays minimally
  // disruptive. Ids are DIP address values — identical on every mux by
  // construction, which is what makes one table servable by all of them.
  const auto& m = *muxes_.front();
  const auto units = m.weight_units();
  std::vector<MaglevEntry> entries;
  entries.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (m.backend_draining(i)) continue;
    entries.push_back(MaglevEntry{m.backend_addr(i).value(), units[i]});
  }
  auto table = std::make_shared<MaglevTable>(min_table_size_);
  table->build(entries);
  ++shared_builds_;
  for (auto& mux : muxes_) {
    // Each member gets a fresh policy instance carrying the pointer-equal
    // snapshot, published as a new pool generation — the table itself is
    // still built once and shared pool-wide.
    auto policy = std::make_unique<SharedMaglevPolicy>();
    policy->set_table(table);
    mux->set_policy(std::move(policy));
  }
}

void MuxPool::poll() {
  for (auto& m : muxes_) m->poll();
}

bool MuxPool::fail_backend(net::IpAddr dip) {
  util::MutexLock lk(mu_);
  // Tombstone against the POOL's version sequence (members never issue
  // their own): every member refuses the same set of pre-failure
  // transactions, so they cannot diverge on whether the corpse is served.
  const auto condemned = issued_versions();
  bool any = false;
  for (const auto& m : muxes_) {
    bool served = false;
    for (std::size_t i = 0; i < m->backend_count(); ++i) {
      if (m->backend_addr(i) == dip) {
        served = true;
        any = m->fail_backend(i, condemned) || any;
        break;
      }
    }
    // A member not serving the DIP (e.g. its drain completed there first)
    // still records the tombstone, so all members agree on which
    // in-flight transactions are allowed to re-admit the address.
    if (!served) m->condemn(dip, condemned);
  }
  // Rebuild the shared table now: the dead DIP's hash space redistributes
  // to the survivors immediately (its reset flows retry as new
  // connections), instead of blackholing until the next program commits.
  if (any) publish_table();
  return any;
}

std::uint64_t MuxPool::total_forwarded() const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_) n += m->total_forwarded();
  return n;
}

std::uint64_t MuxPool::flows_reset_by_failure() const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_) n += m->flows_reset_by_failure();
  return n;
}

std::uint64_t MuxPool::no_backend_drops() const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_) n += m->no_backend_drops();
  return n;
}

std::uint64_t MuxPool::flows_dropped_by_removal() const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_) n += m->flows_dropped_by_removal();
  return n;
}

std::uint64_t MuxPool::drains_completed() const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_) n += m->drains_completed();
  return n;
}

std::size_t MuxPool::draining_count() const {
  std::size_t n = 0;
  for (const auto& m : muxes_) n += m->draining_count();
  return n;
}

std::size_t MuxPool::affinity_size() const {
  std::size_t n = 0;
  for (const auto& m : muxes_) n += m->affinity_size();
  return n;
}

std::uint64_t MuxPool::new_connections_to(net::IpAddr dip) const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_)
    for (std::size_t i = 0; i < m->backend_count(); ++i)
      if (m->backend_addr(i) == dip) n += m->new_connections(i);
  return n;
}

std::uint64_t MuxPool::stale_failed_admissions() const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_) n += m->stale_failed_admissions();
  return n;
}

std::uint64_t MuxPool::generations_published() const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_) n += m->generations_published();
  return n;
}

std::uint64_t MuxPool::generations_retired() const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_) n += m->generations_retired();
  return n;
}

std::size_t MuxPool::pending_retired_generations() const {
  std::size_t n = 0;
  for (const auto& m : muxes_) n += m->pending_retired_generations();
  return n;
}

bool MuxPool::stateless_engaged() const {
  for (const auto& m : muxes_)
    if (!m->stateless_engaged()) return false;
  return true;
}

std::uint64_t MuxPool::stateless_picks() const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_) n += m->stateless_picks();
  return n;
}

std::uint64_t MuxPool::exception_pins() const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_) n += m->exception_pins();
  return n;
}

std::uint64_t MuxPool::affinity_breaks_avoided() const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_) n += m->affinity_breaks_avoided();
  return n;
}

std::uint64_t MuxPool::affinity_breaks() const {
  std::uint64_t n = 0;
  for (const auto& m : muxes_) n += m->affinity_breaks();
  return n;
}

FlowTableMemory MuxPool::flow_memory() const {
  FlowTableMemory out;
  for (const auto& m : muxes_) {
    const auto mem = m->flow_table().memory();
    out.entries += mem.entries;
    out.buckets += mem.buckets;
    out.cache_slots += mem.cache_slots;
    out.approx_bytes += mem.approx_bytes;
  }
  return out;
}

void MuxPool::on_message(const net::Message& msg) {
  // The routers' ECMP spray: stateless per-tuple shard choice. A shard is
  // a full Mux — affinity table, counters, drain lifecycle of its own.
  muxes_[shard_of(msg.tuple)]->on_message(msg);
}

void MuxPool::on_batch(const net::Message* const* msgs, std::size_t n) {
  if (n == 1) {
    on_message(*msgs[0]);
    return;
  }
  // Counting-sort partition by ECMP shard (stable: a shard's sub-burst
  // keeps the burst's relative order), then one handle_batch per member.
  const std::size_t shards = muxes_.size();
  if (shards == 1) {
    muxes_[0]->handle_batch(msgs, n);
    return;
  }
  constexpr std::size_t kStack = 64;
  std::uint32_t stack_shard[kStack];
  const net::Message* stack_out[kStack];
  std::vector<std::uint32_t> heap_shard;
  std::vector<const net::Message*> heap_out;
  std::uint32_t* shard_of_msg = stack_shard;
  const net::Message** out = stack_out;
  if (n > kStack) {
    heap_shard.resize(n);
    heap_out.resize(n);
    shard_of_msg = heap_shard.data();
    out = heap_out.data();
  }
  std::vector<std::uint32_t> counts(shards + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    shard_of_msg[i] = static_cast<std::uint32_t>(shard_of(msgs[i]->tuple));
    ++counts[shard_of_msg[i] + 1];
  }
  for (std::size_t k = 1; k <= shards; ++k) counts[k] += counts[k - 1];
  std::vector<std::uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (std::size_t i = 0; i < n; ++i) out[cursor[shard_of_msg[i]]++] = msgs[i];
  for (std::size_t k = 0; k < shards; ++k) {
    const std::size_t begin = counts[k], end = counts[k + 1];
    if (begin != end) muxes_[k]->handle_batch(out + begin, end - begin);
  }
}

}  // namespace klb::lb
