// Multi-MUX VIP pool: N Mux instances ECMP-sharded over one VIP.
//
// Real L4 deployments announce a VIP from a fleet of MUXes and let the
// routers ECMP-spray flows across them (Ananta/Maglev). Two properties
// make that safe here:
//
//   1. One Maglev build per program version, shared by every mux. The
//      pool builds a single weighted MaglevTable from each committed
//      PoolProgram and publishes it to all members as an immutable
//      shared_ptr<const> snapshot (pointer-equal across the pool), so any
//      two muxes pick the same DIP for the same 5-tuple — a flow that ECMP
//      re-shards to a different mux (router churn) still reaches its DIP
//      even before an affinity entry exists there. This is also N-1 fewer
//      O(table) builds per programming.
//   2. Transactions commit pool-wide: apply_program runs the version check
//      once and applies the same program to every member, so the members
//      can never serve different versions.
//
// The ECMP hash is salted differently from the maglev hash, so shard
// choice and backend choice stay statistically independent.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lb/maglev.hpp"
#include "lb/mux.hpp"
#include "lb/pool_program.hpp"
#include "net/fabric.hpp"
#include "util/sync.hpp"

namespace klb::lb {

class MuxPool : public net::Node, public PoolProgrammer {
 public:
  /// Build `mux_count` muxes behind `vip`. The pool binds the VIP; the
  /// members are detached and run the shared-snapshot maglev policy.
  /// `flow_cfg` sizes each member's flow table (expected_flows is split
  /// evenly across members — ECMP spreads the flow space uniformly);
  /// `consistency` opts every member into the stateless fast path. The
  /// pool hands each member policy an empty table of min_table_size before
  /// construction, so hybrid engagement (which must size its slot-pin
  /// counters in the Mux constructor) works even though the first real
  /// table is only built at the first commit.
  MuxPool(net::Network& net, net::IpAddr vip, std::size_t mux_count,
          std::size_t min_table_size = MaglevTable::kDefaultMinSize,
          FlowTableConfig flow_cfg = {}, ConsistencyConfig consistency = {});
  ~MuxPool() override;

  MuxPool(const MuxPool&) = delete;
  MuxPool& operator=(const MuxPool&) = delete;

  net::IpAddr vip() const { return vip_; }
  std::size_t mux_count() const { return muxes_.size(); }
  Mux& mux(std::size_t k) { return *muxes_[k]; }
  const Mux& mux(std::size_t k) const { return *muxes_[k]; }

  /// Shard index a tuple ECMP-hashes to (exposed for tests).
  std::size_t shard_of(const net::FiveTuple& tuple) const;

  /// The maglev snapshot mux `k` currently serves. Pointer-equal across
  /// all members after every commit — the single-shared-build invariant.
  /// By value: the snapshot is read out of the member's current pool
  /// generation, which a concurrent commit may retire at any moment.
  std::shared_ptr<const MaglevTable> table_snapshot(std::size_t k) const;

  // --- PoolProgrammer --------------------------------------------------------
  /// Backends served by the pool (the maximum over members: a drain may
  /// complete on one mux while another still serves pinned flows).
  std::size_t backend_count() const override;
  std::vector<net::IpAddr> backend_addrs() const override;
  void apply_program(const PoolProgram& program) override;
  /// Deferred maintenance fan-out (drain completion, generation reclaim).
  void poll() override;

  std::uint64_t applied_version() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return applied_version_;
  }
  std::uint64_t superseded_programs() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return superseded_programs_;
  }
  /// Shared maglev builds (one per committed version, not per mux).
  std::uint64_t shared_builds() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return shared_builds_;
  }

  /// Abrupt backend death observed by the dataplane (host failure): drops
  /// `dip` from every member, counting pinned flows as reset — the
  /// counterpart of a graceful kDraining program. Returns true if any
  /// member still served the DIP.
  bool fail_backend(net::IpAddr dip) KLB_EXCLUDES(mu_);

  // --- aggregated dataplane counters -----------------------------------------
  std::uint64_t total_forwarded() const;
  std::uint64_t flows_reset_by_failure() const;
  /// New connections refused pool-wide (no usable backend on the owning
  /// shard's member) — the testbed's no-drop invariant reads this.
  std::uint64_t no_backend_drops() const;
  /// Pinned flows dropped by abrupt graceful-path removals pool-wide (see
  /// Mux::flows_dropped_by_removal).
  std::uint64_t flows_dropped_by_removal() const;
  std::uint64_t drains_completed() const;
  /// Backends still parked in the draining state, summed over members (a
  /// drain completes per member as its pinned flows empty).
  std::size_t draining_count() const;
  std::size_t affinity_size() const;
  /// New connections landed on `dip` across all members.
  std::uint64_t new_connections_to(net::IpAddr dip) const;
  /// Stale pre-failure program entries refused pool-wide (see
  /// Mux::stale_failed_admissions).
  std::uint64_t stale_failed_admissions() const;
  /// Pool-state generations published / reclaimed, summed over members
  /// (see Mux::generations_published / generations_retired).
  std::uint64_t generations_published() const;
  std::uint64_t generations_retired() const;
  std::size_t pending_retired_generations() const;

  // --- stateless fast path (lb/consistency.hpp), summed over members ----------
  /// True when every member engaged the hybrid dataplane.
  bool stateless_engaged() const;
  std::uint64_t stateless_picks() const;
  std::uint64_t exception_pins() const;
  std::uint64_t affinity_breaks_avoided() const;
  std::uint64_t affinity_breaks() const;
  /// Flow-table footprint aggregated over members (bench/flow_memory.cpp
  /// gates the stateless-vs-stateful byte ratio on this).
  FlowTableMemory flow_memory() const;

  // --- net::Node -------------------------------------------------------------
  void on_message(const net::Message& msg) override;
  /// Batched ECMP dispatch: partitions the burst by member shard and hands
  /// each member its sub-burst through Mux::handle_batch, preserving the
  /// burst's relative order within a shard.
  void on_batch(const net::Message* const* msgs, std::size_t n) override;

 private:
  /// Build one table from the current pool state and hand the snapshot to
  /// every member (runs after each commit and after a dataplane-local
  /// failure). Caller holds mu_; the members' own control locks are taken
  /// underneath it (klb.muxpool.control -> klb.mux.control is the legal
  /// order, never the reverse).
  void publish_table() KLB_REQUIRES(mu_);

  net::Network& net_;
  net::IpAddr vip_;
  std::size_t min_table_size_;
  std::vector<std::unique_ptr<Mux>> muxes_;
  /// Serializes pool-wide commits/failures against each other and guards
  /// the version bookkeeping below.
  mutable util::Mutex mu_{"klb.muxpool.control",
                          util::LockFlags::kControlPlane};
  std::uint64_t applied_version_ KLB_GUARDED_BY(mu_) = 0;
  std::uint64_t superseded_programs_ KLB_GUARDED_BY(mu_) = 0;
  std::uint64_t shared_builds_ KLB_GUARDED_BY(mu_) = 0;
};

}  // namespace klb::lb
