#include "lb/epoch.hpp"

#include <functional>
#include <thread>

namespace klb::lb {

EpochDomain::~EpochDomain() {
  // No reader may outlive the domain; drop whatever is still parked.
  util::MutexLock lk(retired_mu_);
  reclaimed_total_.fetch_add(retired_.size(), std::memory_order_relaxed);
  retired_.clear();
}

namespace {
/// Per-thread slot-probe start: seeded once from the thread id so
/// concurrent readers spread out instead of all CASing slot 0, then
/// reused. Constant-initialized POD TLS — after the first pin a thread
/// pays no TLS guard and no pthread_self() on this path.
thread_local int t_slot_hint = -1;
}  // namespace

EpochDomain::Guard EpochDomain::pin() KLB_NONALLOCATING {
#if KLB_DEBUG_SYNC
  KLB_EFFECTS_SUPPRESS_BEGIN
  util::sync_debug::on_pin(debug_control_);
  KLB_EFFECTS_SUPPRESS_END
#endif
  int hint = t_slot_hint;
  if (hint < 0) {
    KLB_EFFECT_ESCAPE("epoch.pin_seed", {
      hint = static_cast<int>(
          std::hash<std::thread::id>{}(std::this_thread::get_id()) % kSlots);
      t_slot_hint = hint;
    });
  }
  const auto start = static_cast<std::size_t>(hint);
  std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    for (std::size_t i = 0; i < kSlots; ++i) {
      auto& slot = slots_[(start + i) % kSlots].epoch;
      std::uint64_t expected = 0;
      if (!slot.compare_exchange_strong(expected, e,
                                        std::memory_order_seq_cst))
        continue;
      // Publish-then-verify: the pin is only complete once the published
      // epoch and the global epoch agree. If a writer bumped in between,
      // re-publish the newer value — the seq_cst total order guarantees
      // that either our slot store is visible to the writer's reclaim
      // scan, or the writer's bump is visible to this verify load.
      for (;;) {
        const auto e2 = epoch_.load(std::memory_order_seq_cst);
        if (e2 == e) return Guard(&slot);
        slot.store(e2, std::memory_order_seq_cst);
        e = e2;
      }
    }
    // Every slot busy: more simultaneous pins than kSlots. Back off and
    // retry — never fall back to a lock on the reader side.
    KLB_EFFECT_ESCAPE("epoch.pin_stall", std::this_thread::yield());
    e = epoch_.load(std::memory_order_seq_cst);
  }
}

void EpochDomain::retire(std::shared_ptr<const void> obj) {
#if KLB_DEBUG_SYNC
  debug_check_retire(obj.get());
#endif
  // The bump *after* the caller's pointer swap is what makes the tag
  // meaningful: a reader pinned at >= tag observed the bump, therefore
  // the swap, therefore cannot hold `obj`.
  const auto tag = epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  {
    util::MutexLock lk(retired_mu_);
    retired_.push_back(Retired{tag, std::move(obj)});
  }
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  reclaim();
}

std::uint64_t EpochDomain::oldest_live_epoch() const {
  std::uint64_t floor = epoch_.load(std::memory_order_seq_cst);
  for (const auto& s : slots_) {
    const auto e = s.epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < floor) floor = e;
  }
  return floor;
}

std::size_t EpochDomain::reclaim() {
  const auto floor = oldest_live_epoch();
  // Destructors run outside the lock: a generation's teardown may be
  // arbitrary user code (policy, counter blocks) and must not extend the
  // retired-list critical section.
  std::vector<std::shared_ptr<const void>> freed;
  {
    util::MutexLock lk(retired_mu_);
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->tag <= floor) {
        freed.push_back(std::move(it->obj));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    retired_.erase(keep, retired_.end());
  }
  reclaimed_total_.fetch_add(freed.size(), std::memory_order_relaxed);
  return freed.size();
}

std::size_t EpochDomain::pending_retired() const {
  util::MutexLock lk(retired_mu_);
  return retired_.size();
}

#if KLB_DEBUG_SYNC

void EpochDomain::debug_register_control(const util::Mutex* control) {
  // Called once from the owner's constructor, before any concurrency.
  debug_control_ = control;
}

void EpochDomain::debug_track_published() {
  std::lock_guard<std::mutex> lk(debug_mu_);
  debug_track_published_ = true;
}

void EpochDomain::debug_mark_published(const void* obj) {
  std::lock_guard<std::mutex> lk(debug_mu_);
  debug_published_.insert(obj);
}

void EpochDomain::debug_check_retire(const void* obj) {
  std::lock_guard<std::mutex> lk(debug_mu_);
  if (debug_track_published_ && debug_published_.count(obj) == 0) {
    util::sync_debug::die(
        "epoch invariant violation",
        "retiring an object that was never published to readers (the "
        "unlink-before-retire contract was not followed)");
  }
  debug_published_.erase(obj);
}

#else

void EpochDomain::debug_register_control(const util::Mutex*) {}
void EpochDomain::debug_track_published() {}
void EpochDomain::debug_mark_published(const void*) {}

#endif  // KLB_DEBUG_SYNC

}  // namespace klb::lb
