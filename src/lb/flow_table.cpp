#include "lb/flow_table.hpp"

#include <algorithm>

namespace klb::lb {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlowTable::FlowTable(FlowTableConfig cfg)
    : shards_(round_up_pow2(std::max<std::size_t>(1, cfg.shard_count))) {
  shard_mask_ = shards_.size() - 1;
  cache_enabled_ = cfg.cache_slots_per_shard > 0;
  if (cache_enabled_) {
    const auto slots = round_up_pow2(cfg.cache_slots_per_shard);
    cache_mask_ = slots - 1;
    for (auto& s : shards_) s.cache.resize(slots);
  }
}

FlowHit FlowTable::lookup(const net::FiveTuple& t, util::SimTime now) {
  const auto h = net::hash_tuple(t);
  auto& s = shards_[shard_index(h)];
  util::MutexLock lk(s.mu);
  const auto it = s.flows.find(t);
  if (it != s.flows.end()) {
    it->second.last_seen = now;
    return FlowHit{FlowHit::Kind::kAffinity, it->second.backend_id};
  }
  if (cache_enabled_) {
    const auto& slot = s.cache[cache_index(h)];
    if (slot.epoch == epoch_.load(std::memory_order_relaxed) &&
        slot.tuple == t) {
      ++s.cache_hits;
      return FlowHit{FlowHit::Kind::kCachedPick, slot.backend_id};
    }
    ++s.cache_misses;
  }
  return FlowHit{};
}

std::pair<std::uint64_t, bool> FlowTable::try_insert(const net::FiveTuple& t,
                                                     std::uint64_t backend_id,
                                                     util::SimTime now,
                                                     bool cache_pick,
                                                     std::uint64_t pick_epoch) {
  const auto h = net::hash_tuple(t);
  auto& s = shards_[shard_index(h)];
  util::MutexLock lk(s.mu);
  const auto [it, inserted] = s.flows.emplace(t, Flow{backend_id, now});
  if (!inserted) return {it->second.backend_id, false};
  ++s.inserts;
  if (cache_enabled_ && cache_pick) {
    auto& slot = s.cache[cache_index(h)];
    slot.tuple = t;
    slot.backend_id = backend_id;
    slot.epoch =
        pick_epoch != 0 ? pick_epoch : epoch_.load(std::memory_order_relaxed);
  }
  return {backend_id, true};
}

std::optional<std::uint64_t> FlowTable::erase(const net::FiveTuple& t) {
  auto& s = shards_[shard_of(t)];
  util::MutexLock lk(s.mu);
  const auto it = s.flows.find(t);
  if (it == s.flows.end()) return std::nullopt;
  const auto id = it->second.backend_id;
  s.flows.erase(it);
  ++s.erases;
  return id;
}

std::size_t FlowTable::erase_backend(std::uint64_t backend_id) {
  std::size_t dropped = 0;
  for (auto& s : shards_) {
    util::MutexLock lk(s.mu);
    for (auto it = s.flows.begin(); it != s.flows.end();) {
      if (it->second.backend_id == backend_id) {
        it = s.flows.erase(it);
        ++s.erases;
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

std::size_t FlowTable::gc_shard(
    std::size_t k, util::SimTime now, util::SimTime idle,
    const std::function<bool(std::uint64_t)>& alive,
    const std::function<void(std::uint64_t, bool)>& reclaimed) {
  auto& s = shards_[k & shard_mask_];
  // (backend_id, dead) per reclaimed flow, gathered under the lock and
  // reported after it drops — the callback may reenter the table or take
  // caller-side locks without deadlocking against the packet path.
  std::vector<std::pair<std::uint64_t, bool>> gone;
  {
    util::MutexLock lk(s.mu);
    for (auto it = s.flows.begin(); it != s.flows.end();) {
      const bool dead = !alive(it->second.backend_id);
      const bool idled = idle > util::SimTime::zero() &&
                         it->second.last_seen + idle < now;
      if (dead || idled) {
        gone.emplace_back(it->second.backend_id, dead);
        it = s.flows.erase(it);
        ++s.gc_reclaimed;
      } else {
        ++it;
      }
    }
  }
  if (reclaimed)
    for (const auto& [id, dead] : gone) reclaimed(id, dead);
  return gone.size();
}

std::size_t FlowTable::gc(
    util::SimTime now, util::SimTime idle,
    const std::function<bool(std::uint64_t)>& alive,
    const std::function<void(std::uint64_t, bool)>& reclaimed) {
  std::size_t n = 0;
  for (std::size_t k = 0; k < shards_.size(); ++k)
    n += gc_shard(k, now, idle, alive, reclaimed);
  return n;
}

std::size_t FlowTable::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    util::MutexLock lk(s.mu);
    n += s.flows.size();
  }
  return n;
}

std::size_t FlowTable::shard_size(std::size_t k) const {
  const auto& s = shards_[k & shard_mask_];
  util::MutexLock lk(s.mu);
  return s.flows.size();
}

void FlowTable::for_each(
    const std::function<void(const net::FiveTuple&, std::uint64_t,
                             util::SimTime)>& fn) const {
  for (const auto& s : shards_) {
    util::MutexLock lk(s.mu);
    for (const auto& [tuple, flow] : s.flows)
      fn(tuple, flow.backend_id, flow.last_seen);
  }
}

FlowTableStats FlowTable::stats() const {
  FlowTableStats out;
  for (const auto& s : shards_) {
    util::MutexLock lk(s.mu);
    out.entries += s.flows.size();
    out.inserts += s.inserts;
    out.erases += s.erases;
    out.gc_reclaimed += s.gc_reclaimed;
    out.cache_hits += s.cache_hits;
    out.cache_misses += s.cache_misses;
  }
  out.pick_invalidations = pick_invalidations_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace klb::lb
