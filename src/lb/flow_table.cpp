#include "lb/flow_table.hpp"

#include <algorithm>
#include <tuple>

namespace klb::lb {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Per-entry heap cost of a node-based unordered_map: the stored pair
/// plus the node header (next pointer + cached hash in the common
/// libstdc++/libc++ layouts). An estimate — but build-mode independent,
/// which is what the memory bench's ratio gate needs.
constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);

/// Stable counting sort of batch indices by shard: afterwards idx[]
/// enumerates [0, n) grouped by shard_of_req, burst order preserved
/// within a shard. Counting sort beats a comparison sort on the
/// per-packet path twice over — the shard index is computed exactly once
/// per message (by the caller, into shard_of_req) and nothing allocates
/// (std::stable_sort grabs a heap buffer even for a 32-element burst).
/// `counts` must hold `shards` zeroed slots; it is clobbered.
void group_by_shard(const std::uint32_t* shard_of_req, std::size_t n,
                    std::size_t shards, std::uint32_t* counts,
                    std::uint32_t* idx) KLB_NONBLOCKING {
  for (std::size_t i = 0; i < n; ++i) ++counts[shard_of_req[i]];
  std::uint32_t cursor = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const auto c = counts[s];
    counts[s] = cursor;
    cursor += c;
  }
  for (std::size_t i = 0; i < n; ++i)
    idx[counts[shard_of_req[i]]++] = static_cast<std::uint32_t>(i);
}

/// Grouping scratch for batches whose (n, shard_count) outgrows the stack
/// buffer. Per thread, grown geometrically and reused: the old heap_buf
/// fallback re-allocated on *every* oversized batch (any table with >64
/// shards paid a malloc per burst — exactly the regression class this
/// PR's effect contracts exist to name). Accessed only inside the
/// "flow.scratch_grow" escape: the thread_local wrapper and the rare
/// resize are invisible to the effect analysis.
std::uint32_t* batch_scratch(std::size_t words) {
  thread_local std::vector<std::uint32_t> scratch;
  if (scratch.size() < words) scratch.resize(words);
  return scratch.data();
}

}  // namespace

FlowTable::FlowTable(FlowTableConfig cfg)
    : shards_(round_up_pow2(std::max<std::size_t>(1, cfg.shard_count))) {
  shard_mask_ = shards_.size() - 1;
  cache_enabled_ = cfg.cache_slots_per_shard > 0;
  gc_scan_budget_ = cfg.gc_scan_budget;
  if (cache_enabled_) {
    const auto slots = round_up_pow2(cfg.cache_slots_per_shard);
    cache_mask_ = slots - 1;
    for (auto& s : shards_) s.cache.resize(slots);
  }
  if (cfg.expected_flows > 0) {
    // Pre-size every shard for its share of the expected population: the
    // fill to that scale then never rehashes (a 10M-flow rehash stalls
    // the shard for the whole re-bucketing — the "rehash storm").
    const auto per_shard = cfg.expected_flows / shards_.size() + 1;
    for (auto& s : shards_) s.flows.reserve(per_shard);
  }
}

FlowHit FlowTable::lookup_locked(Shard& s, const net::FiveTuple& t,
                                 std::uint64_t h,
                                 util::SimTime now) KLB_NONBLOCKING {
  const auto it = s.flows.find(t);
  if (it != s.flows.end()) {
    it->second.last_seen = now;
    return FlowHit{FlowHit::Kind::kAffinity, it->second.backend_id};
  }
  if (cache_enabled_) {
    const auto& slot = s.cache[cache_index(h)];
    if (slot.epoch == epoch_.load(std::memory_order_relaxed) &&
        slot.tuple == t) {
      ++s.cache_hits;
      return FlowHit{FlowHit::Kind::kCachedPick, slot.backend_id};
    }
    ++s.cache_misses;
  }
  return FlowHit{};
}

FlowHit FlowTable::lookup(const net::FiveTuple& t,
                          util::SimTime now) KLB_NONALLOCATING {
  const auto h = net::hash_tuple(t);
  auto& s = shards_[shard_index(h)];
  FlowHit hit;
  KLB_EFFECT_ESCAPE("flow.shard_lock", {
    util::MutexLock lk(s.mu);
    hit = lookup_locked(s, t, h, now);
  });
  return hit;
}

void FlowTable::lookup_batch(FlowLookup* reqs, std::size_t n,
                             util::SimTime now) KLB_NONALLOCATING {
  if (n == 0) return;
  if (n == 1) {
    auto& s = shards_[shard_index(reqs[0].hash)];
    KLB_EFFECT_ESCAPE("flow.shard_lock", {
      util::MutexLock lk(s.mu);
      reqs[0].hit = lookup_locked(s, *reqs[0].tuple, reqs[0].hash, now);
    });
    return;
  }
  // Group by shard (stable, allocation-free — see group_by_shard), then
  // take each shard lock once for its run.
  constexpr std::size_t kStack = 64;
  std::uint32_t stack_buf[3 * kStack];
  std::uint32_t* buf = stack_buf;
  const std::size_t width = std::max(n, shards_.size());
  if (width > kStack)
    KLB_EFFECT_ESCAPE("flow.scratch_grow", buf = batch_scratch(3 * width));
  std::uint32_t* shard_of_req = buf;
  std::uint32_t* idx = buf + width;
  std::uint32_t* counts = buf + 2 * width;
  std::fill(counts, counts + shards_.size(), 0u);
  for (std::size_t i = 0; i < n; ++i)
    shard_of_req[i] = static_cast<std::uint32_t>(shard_index(reqs[i].hash));
  group_by_shard(shard_of_req, n, shards_.size(), counts, idx);
  std::size_t i = 0;
  while (i < n) {
    const std::size_t shard = shard_of_req[idx[i]];
    auto& s = shards_[shard];
    KLB_EFFECT_ESCAPE("flow.shard_lock", {
      util::MutexLock lk(s.mu);
      do {
        FlowLookup& r = reqs[idx[i]];
        r.hit = lookup_locked(s, *r.tuple, r.hash, now);
        ++i;
      } while (i < n && shard_of_req[idx[i]] == shard);
    });
  }
}

void FlowTable::erase_batch(FlowErase* reqs, std::size_t n) KLB_NONALLOCATING {
  if (n == 0) return;
  if (n == 1) {
    auto& s = shards_[shard_index(reqs[0].hash)];
    KLB_EFFECT_ESCAPE("flow.shard_lock", {
      util::MutexLock lk(s.mu);
      erase_locked(s, reqs[0]);
    });
    return;
  }
  constexpr std::size_t kStack = 64;
  std::uint32_t stack_buf[3 * kStack];
  std::uint32_t* buf = stack_buf;
  const std::size_t width = std::max(n, shards_.size());
  if (width > kStack)
    KLB_EFFECT_ESCAPE("flow.scratch_grow", buf = batch_scratch(3 * width));
  std::uint32_t* shard_of_req = buf;
  std::uint32_t* idx = buf + width;
  std::uint32_t* counts = buf + 2 * width;
  std::fill(counts, counts + shards_.size(), 0u);
  for (std::size_t i = 0; i < n; ++i)
    shard_of_req[i] = static_cast<std::uint32_t>(shard_index(reqs[i].hash));
  group_by_shard(shard_of_req, n, shards_.size(), counts, idx);
  std::size_t i = 0;
  while (i < n) {
    const std::size_t shard = shard_of_req[idx[i]];
    auto& s = shards_[shard];
    KLB_EFFECT_ESCAPE("flow.shard_lock", {
      util::MutexLock lk(s.mu);
      do {
        erase_locked(s, reqs[idx[i]]);
        ++i;
      } while (i < n && shard_of_req[idx[i]] == shard);
    });
  }
}

std::optional<std::uint64_t> FlowTable::try_find(
    const net::FiveTuple& t) const {
  const auto& s = shards_[shard_of(t)];
  util::MutexLock lk(s.mu);
  const auto it = s.flows.find(t);
  if (it == s.flows.end()) return std::nullopt;
  return it->second.backend_id;
}

std::pair<std::uint64_t, bool> FlowTable::try_insert(const net::FiveTuple& t,
                                                     std::uint64_t backend_id,
                                                     util::SimTime now,
                                                     bool cache_pick,
                                                     std::uint64_t pick_epoch) {
  const auto h = net::hash_tuple(t);
  auto& s = shards_[shard_index(h)];
  util::MutexLock lk(s.mu);
  const auto [it, inserted] = s.flows.emplace(t, Flow{backend_id, now});
  if (!inserted) return {it->second.backend_id, false};
  ++s.inserts;
  if (cache_enabled_ && cache_pick) {
    auto& slot = s.cache[cache_index(h)];
    slot.tuple = t;
    slot.backend_id = backend_id;
    slot.epoch =
        pick_epoch != 0 ? pick_epoch : epoch_.load(std::memory_order_relaxed);
  }
  return {backend_id, true};
}

void FlowTable::erase_locked(Shard& s, FlowErase& r) {
  const auto it = s.flows.find(*r.tuple);
  if (it == s.flows.end()) {
    r.found = false;
    return;
  }
  r.found = true;
  r.id = it->second.backend_id;
  s.flows.erase(it);
  ++s.erases;
}

std::optional<std::uint64_t> FlowTable::erase(const net::FiveTuple& t)
    KLB_NONALLOCATING {
  FlowErase r;
  r.tuple = &t;
  r.hash = net::hash_tuple(t);
  auto& s = shards_[shard_index(r.hash)];
  KLB_EFFECT_ESCAPE("flow.shard_lock", {
    util::MutexLock lk(s.mu);
    erase_locked(s, r);
  });
  if (!r.found) return std::nullopt;
  return r.id;
}

std::size_t FlowTable::erase_backend(
    std::uint64_t backend_id,
    const std::function<void(const net::FiveTuple&)>& dropped) {
  std::size_t total = 0;
  std::vector<net::FiveTuple> gone;  // reported after the shard lock drops
  for (auto& s : shards_) {
    gone.clear();
    {
      util::MutexLock lk(s.mu);
      for (auto it = s.flows.begin(); it != s.flows.end();) {
        if (it->second.backend_id == backend_id) {
          if (dropped) gone.push_back(it->first);
          it = s.flows.erase(it);
          ++s.erases;
          ++total;
        } else {
          ++it;
        }
      }
    }
    if (dropped)
      for (const auto& t : gone) dropped(t);
  }
  return total;
}

std::size_t FlowTable::gc_shard(
    std::size_t k, util::SimTime now, util::SimTime idle,
    const std::function<bool(std::uint64_t)>& alive,
    const std::function<void(const net::FiveTuple&, std::uint64_t, bool)>&
        reclaimed,
    std::size_t max_scan) {
  auto& s = shards_[k & shard_mask_];
  if (max_scan == kScanBudgeted) max_scan = gc_scan_budget_;
  // (tuple, backend_id, dead) per reclaimed flow, gathered under the lock
  // and reported after it drops — the callback may reenter the table or
  // take caller-side locks without deadlocking against the packet path.
  std::vector<std::tuple<net::FiveTuple, std::uint64_t, bool>> gone;
  {
    util::MutexLock lk(s.mu);
    auto doomed = [&](const Flow& f) {
      const bool dead = !alive(f.backend_id);
      const bool idled =
          idle > util::SimTime::zero() && f.last_seen + idle < now;
      return std::make_pair(dead || idled, dead);
    };
    if (max_scan == kScanAll || max_scan >= s.flows.size()) {
      // Unbounded: one pass over the whole shard, erasing in place.
      s.gc_scanned += s.flows.size();
      s.gc_cursor = 0;
      for (auto it = s.flows.begin(); it != s.flows.end();) {
        const auto [kill, dead] = doomed(it->second);
        if (kill) {
          gone.emplace_back(it->first, it->second.backend_id, dead);
          it = s.flows.erase(it);
          ++s.gc_reclaimed;
        } else {
          ++it;
        }
      }
    } else if (!s.flows.empty()) {
      // Bounded: walk whole buckets from the resume cursor until the scan
      // budget is spent (always finishing the bucket in progress), then
      // park the cursor for the next call. Local iterators cannot erase,
      // so doomed keys are collected and erased by lookup afterwards —
      // still under the same lock acquisition.
      const auto buckets = s.flows.bucket_count();
      std::vector<net::FiveTuple> doomed_keys;
      std::size_t scanned = 0;
      std::size_t b = s.gc_cursor % buckets;
      for (std::size_t visited = 0; visited < buckets && scanned < max_scan;
           ++visited, b = (b + 1) % buckets) {
        for (auto it = s.flows.begin(b); it != s.flows.end(b); ++it) {
          ++scanned;
          if (doomed(it->second).first) doomed_keys.push_back(it->first);
        }
      }
      s.gc_cursor = b;
      s.gc_scanned += scanned;
      for (const auto& key : doomed_keys) {
        const auto it = s.flows.find(key);
        if (it == s.flows.end()) continue;
        gone.emplace_back(it->first, it->second.backend_id,
                          doomed(it->second).second);
        s.flows.erase(it);
        ++s.gc_reclaimed;
      }
    }
  }
  if (reclaimed)
    for (const auto& [tuple, id, dead] : gone) reclaimed(tuple, id, dead);
  return gone.size();
}

std::size_t FlowTable::gc(
    util::SimTime now, util::SimTime idle,
    const std::function<bool(std::uint64_t)>& alive,
    const std::function<void(const net::FiveTuple&, std::uint64_t, bool)>&
        reclaimed) {
  std::size_t n = 0;
  for (std::size_t k = 0; k < shards_.size(); ++k)
    n += gc_shard(k, now, idle, alive, reclaimed, kScanAll);
  return n;
}

std::size_t FlowTable::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    util::MutexLock lk(s.mu);
    n += s.flows.size();
  }
  return n;
}

std::size_t FlowTable::shard_size(std::size_t k) const {
  const auto& s = shards_[k & shard_mask_];
  util::MutexLock lk(s.mu);
  return s.flows.size();
}

std::size_t FlowTable::shard_buckets(std::size_t k) const {
  const auto& s = shards_[k & shard_mask_];
  util::MutexLock lk(s.mu);
  return s.flows.bucket_count();
}

FlowTableMemory FlowTable::memory() const {
  FlowTableMemory out;
  for (const auto& s : shards_) {
    util::MutexLock lk(s.mu);
    out.entries += s.flows.size();
    out.buckets += s.flows.bucket_count();
    out.cache_slots += s.cache.capacity();
  }
  using Node = std::pair<const net::FiveTuple, Flow>;
  out.approx_bytes = out.entries * (sizeof(Node) + kNodeOverhead) +
                     out.buckets * sizeof(void*) +
                     out.cache_slots * sizeof(CacheSlot) +
                     shards_.size() * sizeof(Shard);
  return out;
}

void FlowTable::for_each(
    const std::function<void(const net::FiveTuple&, std::uint64_t,
                             util::SimTime)>& fn) const {
  for (const auto& s : shards_) {
    util::MutexLock lk(s.mu);
    for (const auto& [tuple, flow] : s.flows)
      fn(tuple, flow.backend_id, flow.last_seen);
  }
}

FlowTableStats FlowTable::stats() const {
  FlowTableStats out;
  for (const auto& s : shards_) {
    util::MutexLock lk(s.mu);
    out.entries += s.flows.size();
    out.inserts += s.inserts;
    out.erases += s.erases;
    out.gc_reclaimed += s.gc_reclaimed;
    out.gc_scanned += s.gc_scanned;
    out.cache_hits += s.cache_hits;
    out.cache_misses += s.cache_misses;
  }
  out.pick_invalidations = pick_invalidations_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace klb::lb
