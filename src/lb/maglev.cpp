#include "lb/maglev.hpp"

#include <algorithm>

#include "net/five_tuple.hpp"
#include "util/weight.hpp"

namespace klb::lb {

namespace {

/// SplitMix64 finalizer: the same mixer the RNG seeds with, used here to
/// derive a backend's (offset, skip) from nothing but its stable id.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

bool is_prime(std::size_t n) {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  for (std::size_t d = 3; d * d <= n; d += 2)
    if (n % d == 0) return false;
  return true;
}

std::size_t next_prime(std::size_t n) {
  while (!is_prime(n)) ++n;
  return n;
}

}  // namespace

MaglevTable::MaglevTable(std::size_t min_table_size) {
  slots_.assign(next_prime(std::max<std::size_t>(min_table_size, 3)),
                kEmptySlot);
}

void MaglevTable::build(const std::vector<MaglevEntry>& entries) {
  ++builds_;
  const std::size_t m = slots_.size();
  std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  ids_.resize(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) ids_[i] = entries[i].id;

  std::vector<std::uint32_t> usable;  // entry indexes with positive weight
  std::vector<std::int64_t> weights;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].weight_units <= 0) continue;
    usable.push_back(static_cast<std::uint32_t>(i));
    weights.push_back(entries[i].weight_units);
  }
  if (usable.empty()) return;

  // Largest-remainder slot apportionment — the same algorithm (and code)
  // the controller uses to make weight units sum to kWeightScale, here
  // with the table size as the total: exact to within one slot.
  const auto targets = util::normalize_to_units(
      std::vector<double>(weights.begin(), weights.end()),
      static_cast<std::int64_t>(m));

  // Per-backend permutation state: slot_j = (offset + j * skip) % m. With
  // m prime every skip in [1, m-1] walks all m slots, so the fill below
  // always terminates (sum of targets == m).
  const std::size_t n = usable.size();
  std::vector<std::size_t> offset(n), skip(n), next(n, 0), taken(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint64_t h = mix64(entries[usable[k]].id);
    offset[k] = static_cast<std::size_t>(h % m);
    skip[k] = static_cast<std::size_t>(
                  1 + mix64(h ^ 0x9e3779b97f4a7c15ull) % (m - 1));
  }

  // Round-robin fill: each backend claims the next free slot of its own
  // permutation until it holds its apportioned share. Because permutations
  // depend only on the id, a pool change leaves every surviving backend
  // claiming (almost) the same slots — the minimal-disruption property.
  std::size_t filled = 0;
  while (filled < m) {
    for (std::size_t k = 0; k < n && filled < m; ++k) {
      if (taken[k] >= static_cast<std::size_t>(targets[k])) continue;
      std::size_t pos;
      do {
        pos = (offset[k] + next[k] * skip[k]) % m;
        ++next[k];
      } while (slots_[pos] != kEmptySlot);
      slots_[pos] = usable[k];
      ++taken[k];
      ++filled;
    }
  }
}

void MaglevTable::resolve_slots(std::vector<std::uint32_t>& out) const {
  out.resize(slots_.size());
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const auto e = slots_[s];
    out[s] = e == kEmptySlot ? 0xFFFFFFFFu
                             : static_cast<std::uint32_t>(ids_[e]);
  }
}

std::vector<std::size_t> MaglevTable::slot_counts() const {
  std::vector<std::size_t> counts(ids_.size(), 0);
  for (const auto s : slots_)
    if (s != kEmptySlot) ++counts[s];
  return counts;
}

std::size_t MaglevPolicy::pick(const net::FiveTuple& tuple,
                               const std::vector<BackendView>& backends,
                               util::Rng&) KLB_NONALLOCATING {
  if (dirty_ || backends.size() != cached_count_)
    KLB_EFFECT_ESCAPE("policy.maglev_rebuild", rebuild(backends));
  const auto idx = table_.lookup(net::hash_tuple(tuple));
  if (idx == MaglevTable::kEmptySlot) return kNoBackend;
  return idx;  // entries are built 1:1 with backend indexes
}

std::size_t SharedMaglevPolicy::pick(const net::FiveTuple& tuple,
                                     const std::vector<BackendView>& backends,
                                     util::Rng&) KLB_NONALLOCATING {
  if (!table_) return kNoBackend;
  if (index_dirty_ || index_by_id_.size() != backends.size()) {
    KLB_EFFECT_ESCAPE("policy.maglev_rebuild", {
      index_by_id_.clear();
      for (std::size_t i = 0; i < backends.size(); ++i)
        index_by_id_[backends[i].addr.value()] = i;
      index_dirty_ = false;
    });
  }
  const auto id = table_->lookup_id(net::hash_tuple(tuple));
  if (id == MaglevTable::kNoId) return kNoBackend;
  const auto it = index_by_id_.find(id);
  // The table and the pool commit together, so a miss means the snapshot
  // predates this mux's view (or the backend was imperatively removed);
  // refuse rather than guess — affinity hits never reach this path.
  if (it == index_by_id_.end()) return kNoBackend;
  const auto& b = backends[it->second];
  if (!b.enabled || b.weight_units <= 0) return kNoBackend;
  return it->second;
}

void MaglevPolicy::rebuild(const std::vector<BackendView>& backends) {
  std::vector<MaglevEntry> entries(backends.size());
  for (std::size_t i = 0; i < backends.size(); ++i) {
    entries[i].id = backends[i].addr.value();
    entries[i].weight_units =
        backends[i].enabled ? backends[i].weight_units : 0;
  }
  table_.build(entries);
  cached_count_ = backends.size();
  dirty_ = false;
}

}  // namespace klb::lb
