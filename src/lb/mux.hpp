// The MUX: the L4 LB dataplane instance.
//
// A Mux owns a VIP, keeps the connection-affinity state (5-tuple -> stable
// backend id) in a sharded FlowTable with a per-shard flow cache (see
// lb/flow_table.hpp), applies the configured policy to new connections,
// and forwards requests to DIPs with the original tuple preserved (encap +
// direct server return, per Fig. 1). FINs flow through the MUX so it can
// maintain per-DIP active connection counts for (W)LC — the proxy-visible
// signal HAProxy uses.
//
// Threading (ISSUE 5): the packet path — handle_request/handle_fin via
// on_message — is safe to drive concurrently from multiple threads over a
// membership-stable pool with no draining members (a drainer's last FIN
// completes the drain inline, which is a pool mutation — park drains on
// the control thread before resuming concurrent drive, exactly like any
// other lifecycle op). Affinity state contends only per shard;
// per-backend counters are relaxed atomics aggregated on read; policy
// picks (and the shared RNG they draw from) serialize on a single pick
// mutex, which the flow cache and affinity hits bypass. Control-path
// operations (apply_program, add/remove/fail_backend, weight changes, GC
// configuration) mutate the backend vector and the policy and must be
// serialized against the packet path by the caller — the simulator's
// single-threaded event loop does this by construction; a multithreaded
// driver (bench/mux_hotpath.cpp) must quiesce packets around programming,
// exactly like a real dataplane swapping its config generation.
//
// Programming is transactional (see lb/pool_program.hpp): apply_program()
// commits a whole desired pool — membership, weights, and lifecycle states
// — atomically, and discards any transaction older than the last one
// committed. Backends carry a stable id from registration to removal, so
// the affinity state survives pool churn — indices shift when a backend is
// removed, ids never do. Every pool mutation bumps the flow-cache epoch: a
// cached pick can never resurrect a removed, failed, or reweighted DIP.
//
// Graceful scale-in is first-class: a backend programmed kDraining is
// parked (no new connections) while its pinned flows keep being served,
// and it auto-completes to removed the moment its last affinity entry
// drains (FIN or idle-GC) — the per-backend active count makes completion
// shard-local, no cross-shard scan. fail_backend() stays the abrupt path:
// pinned flows are counted as reset and their clients retry on the
// survivors.
//
// Weight changes only affect *new* connections: pinned connections drain
// naturally, which is precisely the effect §4.7's drain-time estimation has
// to wait out.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lb/flow_table.hpp"
#include "lb/policy.hpp"
#include "lb/pool_program.hpp"
#include "net/fabric.hpp"

namespace klb::lb {

class Mux : public net::Node, public PoolProgrammer {
 public:
  /// With attach_to_vip = false the Mux does not bind the VIP on the
  /// fabric — a MuxPool owns the VIP and steers messages to its member
  /// muxes directly (ECMP sharding). `flow_cfg` sizes the sharded flow
  /// table (a 1-shard, 0-cache config reproduces the old monolithic map —
  /// the bench baseline).
  Mux(net::Network& net, net::IpAddr vip, std::unique_ptr<Policy> policy,
      bool attach_to_vip = true, FlowTableConfig flow_cfg = {});
  ~Mux() override;

  net::IpAddr vip() const { return vip_; }
  const Policy& policy() const { return *policy_; }
  Policy& mutable_policy() { return *policy_; }

  /// Replace the policy (connection table survives, like a HAProxy reload).
  void set_policy(std::unique_ptr<Policy> policy);

  // --- transactional programming (PoolProgrammer) ----------------------------

  /// Commit a whole-pool transaction immediately (the programming delay
  /// lives in LbController). Stale versions (<= the last committed one)
  /// are discarded whole and counted. Semantics per entry:
  ///   kActive   — in rotation at the programmed weight (added if new),
  ///   kDraining — parked at 0, pinned flows drain, auto-removed when the
  ///               last affinity entry goes,
  ///   kRemoved  — removed now (affinity dropped, clients reconnect).
  /// A served backend the program omits is removed — unless it is already
  /// draining, in which case the drain continues.
  void apply_program(const PoolProgram& program) override;

  std::size_t backend_count() const override { return backends_.size(); }
  /// Active (non-draining) backends, registration order.
  std::vector<net::IpAddr> backend_addrs() const override;

  /// Version of the last committed transaction (0 = none yet).
  std::uint64_t applied_version() const { return applied_version_; }
  /// Transactions discarded because a newer version had already committed.
  std::uint64_t superseded_programs() const { return superseded_programs_; }
  /// Drains that auto-completed to removal.
  std::uint64_t drains_completed() const {
    return drains_completed_.load(std::memory_order_relaxed);
  }
  std::size_t draining_count() const;

  // --- backend lifecycle (dataplane-local / direct test access) --------------

  /// Register a backend and return its stable id. Existing weights are
  /// rescaled — newcomer at a fair share, existing ratios preserved, units
  /// summing to util::kWeightScale — never reset. `server` is optional and
  /// only consulted by the power-of-two policy.
  std::uint64_t add_backend(net::IpAddr dip,
                            const server::DipServer* server = nullptr);

  /// Deregister backend `i` (scale-in): its affinity entries are dropped
  /// and the survivors are rescaled back to kWeightScale (exactly unchanged
  /// when the backend was already drained to weight 0; a fully parked pool
  /// stays parked). Returns false for an out-of-range index.
  bool remove_backend(std::size_t i);

  /// Abrupt backend death (host failure): like remove_backend but the
  /// pinned flows are counted as reset — their clients see a connection
  /// reset and retry as new flows on the survivors. The address is also
  /// tombstoned at `condemned_until_version` (default: every version this
  /// dataplane's sequence has issued so far; a MuxPool passes its own
  /// counter): a transaction issued at or before that version predates the
  /// failure observation, so its entry cannot re-admit the corpse at its
  /// old weight while riding out the programming delay — that would
  /// blackhole the dead DIP's hash space until the next post-failure
  /// commit. A transaction issued after the failure re-admits normally
  /// (a deliberate resurrection) and clears the tombstone.
  bool fail_backend(std::size_t i,
                    std::optional<std::uint64_t> condemned_until_version =
                        std::nullopt);

  /// Record the failure tombstone alone (see fail_backend) without
  /// touching any backend — a MuxPool uses it to keep members that do not
  /// currently serve the address in agreement with those that do.
  void condemn(net::IpAddr addr, std::uint64_t until_version) {
    failed_tombstones_[addr.value()] = until_version;
  }

  /// Bounds-checked accessors: an out-of-range index is loud (warn +
  /// sentinel), matching remove_backend's convention — never UB.
  net::IpAddr backend_addr(std::size_t i) const;
  std::uint64_t backend_id(std::size_t i) const;
  bool backend_enabled(std::size_t i) const;
  bool backend_draining(std::size_t i) const;
  /// Index currently holding stable id `id`, if the backend still exists.
  std::optional<std::size_t> index_of_id(std::uint64_t id) const;

  /// Program weights (grid units, util::kWeightScale = 1.0), one entry per
  /// backend in registration order — the legacy imperative path, kept for
  /// direct dataplane manipulation in tests/benches (controllers go
  /// through apply_program). A vector whose size does not match
  /// backend_count() is rejected with a warning; returns false then.
  /// Draining backends stay parked at 0 regardless of the vector.
  bool set_weight_units(const std::vector<std::int64_t>& units);
  std::vector<std::int64_t> weight_units() const;

  /// Administratively park (enabled = false) or unpark a backend without
  /// the removal lifecycle — a temporary maintenance knob. Enabling a
  /// *draining* backend is refused (warn + false): the drainer would keep
  /// accepting new connections while `draining` still promises auto-removal
  /// on empty, so it could never complete (ISSUE 5). Cancelling a drain is
  /// an explicit act: re-list the backend kActive in a PoolProgram.
  /// Returns false for an out-of-range index too.
  bool set_backend_enabled(std::size_t i, bool enabled);

  // --- affinity state --------------------------------------------------------

  /// Enable idle-flow GC: affinity entries with no request for `idle` are
  /// reclaimed (flows that never FIN). Zero (the default) disables it.
  /// Inline sweeps run one shard at a time, amortized so the whole table
  /// is covered every ~few thousand forwarded requests; explicit
  /// gc_affinity() calls sweep everything.
  void set_affinity_idle_timeout(util::SimTime idle) { affinity_idle_ = idle; }

  /// Sweep every shard now; returns the number of entries reclaimed.
  std::size_t gc_affinity();

  std::size_t affinity_size() const { return flows_.size(); }
  /// Entries whose backend no longer exists. Always 0 — removal drops them
  /// eagerly — but tests assert it after churn.
  std::size_t dangling_affinity_count() const;

  /// The sharded affinity table (shard/cache introspection for tests and
  /// benches).
  const FlowTable& flow_table() const { return flows_; }

  // --- dataplane counters ----------------------------------------------------
  std::uint64_t forwarded_requests(std::size_t i) const;
  std::uint64_t new_connections(std::size_t i) const;
  std::uint64_t active_connections(std::size_t i) const;
  std::uint64_t total_forwarded() const {
    return total_forwarded_.load(std::memory_order_relaxed);
  }
  /// New connections refused because the policy had no usable backend
  /// (clients see a timeout). The testbed asserts this stays zero through
  /// steady phases (ISSUE 5 — it used to be counted but unreadable).
  std::uint64_t no_backend_drops() const {
    return no_backend_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected_programmings() const { return rejected_programmings_; }
  std::uint64_t flows_reset_by_failure() const {
    return flows_reset_.load(std::memory_order_relaxed);
  }
  std::uint64_t flows_gced_idle() const {
    return flows_gced_.load(std::memory_order_relaxed);
  }
  /// Pinned flows dropped by an abrupt *graceful-path* removal — a
  /// transactional kRemoved, omission from a non-weights-only program, or
  /// an imperative remove_backend — as opposed to reset-by-failure or
  /// drained-to-zero. Invisible before ISSUE 5: these flows vanished from
  /// every metric.
  std::uint64_t flows_dropped_by_removal() const {
    return flows_dropped_.load(std::memory_order_relaxed);
  }
  /// Program entries skipped because they would have re-admitted a failed
  /// backend from a transaction issued before the failure was observed.
  std::uint64_t stale_failed_admissions() const {
    return stale_failed_admissions_;
  }
  void reset_counters();

  // --- net::Node -------------------------------------------------------------
  void on_message(const net::Message& msg) override;

 private:
  struct Backend {
    std::uint64_t id = 0;  // stable across pool churn; affinity key
    net::IpAddr addr;
    const server::DipServer* server = nullptr;
    std::int64_t weight_units = 0;
    bool enabled = true;
    bool draining = false;  // condemned: parked until affinity empties
    // Packet-path counters: relaxed atomics so concurrent shards never
    // lose an update; aggregated/read on the control path.
    std::atomic<std::uint64_t> active{0};
    std::atomic<std::uint64_t> connections{0};  // cumulative new connections
    std::atomic<std::uint64_t> forwarded{0};    // cumulative forwarded requests

    Backend() = default;
    Backend(const Backend& o) { *this = o; }
    Backend& operator=(const Backend& o) {
      id = o.id;
      addr = o.addr;
      server = o.server;
      weight_units = o.weight_units;
      enabled = o.enabled;
      draining = o.draining;
      active.store(o.active.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      connections.store(o.connections.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      forwarded.store(o.forwarded.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      return *this;
    }

    BackendView view() const {
      return BackendView{addr, weight_units, enabled,
                         active.load(std::memory_order_relaxed), server};
    }
  };

  void handle_request(const net::Message& msg);
  void handle_fin(const net::Message& msg);
  void forward(std::size_t i, const net::Message& msg);
  /// Decrement backend `i`'s active count (never below zero) and, for
  /// connection-count policies, refresh its policy view under the pick
  /// mutex.
  void release_connection(std::size_t i);
  void refresh_view_active(std::size_t i);
  /// Refresh the cached policy view of the pool. Rebuilt on pool mutations
  /// (O(n), as the mutations already are); the per-packet pick path only
  /// patches active_conns in place, so a pick stays O(policy), not O(n).
  void rebuild_views();
  /// Drop per-pool pick state: the policy's caches and every cached flow
  /// pick (epoch bump). Called on every pool mutation.
  void invalidate_pick_state();
  /// Rescale all weights to sum kWeightScale, preserving current ratios.
  /// All-zero pools fall back to an equal split (traffic must go somewhere).
  void renormalize_weights();
  bool erase_backend(std::size_t i, bool failed);
  /// Drop backend `i` and its affinity without renormalizing or rebuilding
  /// caches — the transactional path applies weights literally and rebuilds
  /// once per program; the imperative erase_backend wraps this.
  void erase_backend_raw(std::size_t i, bool failed);
  /// Remove backend `i` if it is draining with no affinity entries left.
  /// Returns true when the backend was removed (index `i` now names the
  /// next backend). The drain completes without resetting a single flow.
  bool maybe_complete_drain(std::size_t i);
  void drop_affinity_for(std::uint64_t id, bool count_as_reset);
  void rebuild_id_index();
  void maybe_gc();
  /// Sweep one flow-table shard (dead + idle entries) and complete any
  /// drain the sweep emptied.
  std::size_t gc_shard(std::size_t k);

  net::Network& net_;
  net::IpAddr vip_;
  bool attached_ = false;
  std::unique_ptr<Policy> policy_;
  util::Rng rng_;
  /// Serializes policy picks (stateful policies + the shared RNG) and
  /// every views_ access on the packet path. Lock order: pick_mutex_ may
  /// be followed by a shard mutex (pick -> pin), never the reverse —
  /// FlowTable callbacks that reenter the Mux run after the shard lock
  /// drops (see FlowTable::gc_shard).
  std::mutex pick_mutex_;
  // Policy traits cached at install time: no virtual dispatch per packet.
  bool policy_uses_conns_ = false;    // Policy::uses_connection_counts
  bool policy_caches_picks_ = false;  // Policy::pick_is_tuple_deterministic
  bool policy_weighted_ = false;      // Policy::weighted
  std::vector<Backend> backends_;
  std::vector<BackendView> views_;  // policy-facing cache, index-aligned
  std::unordered_map<std::uint64_t, std::size_t> id_index_;
  FlowTable flows_;
  /// Failed address -> highest version issued when the failure was
  /// observed. Programs at or below that version cannot re-admit the
  /// address (they predate the failure); newer programs clear the entry.
  std::unordered_map<std::uint32_t, std::uint64_t> failed_tombstones_;
  util::SimTime affinity_idle_ = util::SimTime::zero();
  std::uint64_t next_backend_id_ = 1;
  std::atomic<std::uint64_t> requests_since_gc_{0};
  std::atomic<std::uint64_t> gc_cursor_{0};  // next shard the inline GC sweeps
  std::atomic<std::uint64_t> total_forwarded_{0};
  std::atomic<std::uint64_t> no_backend_drops_{0};
  std::atomic<std::uint64_t> drains_completed_{0};
  std::atomic<std::uint64_t> flows_reset_{0};
  std::atomic<std::uint64_t> flows_gced_{0};
  std::atomic<std::uint64_t> flows_dropped_{0};
  std::uint64_t rejected_programmings_ = 0;
  std::uint64_t applied_version_ = 0;
  std::uint64_t superseded_programs_ = 0;
  std::uint64_t stale_failed_admissions_ = 0;
};

}  // namespace klb::lb
