// The MUX: the L4 LB dataplane instance.
//
// A Mux owns a VIP, keeps the connection-affinity table (5-tuple -> stable
// backend id), applies the configured policy to new connections, and
// forwards requests to DIPs with the original tuple preserved (encap +
// direct server return, per Fig. 1). FINs flow through the MUX so it can
// maintain per-DIP active connection counts for (W)LC — the proxy-visible
// signal HAProxy uses.
//
// Backend lifecycle: backends carry a stable id from registration to
// removal, so the affinity table survives pool churn — indices shift when
// a backend is removed, ids never do. Adding a backend rescales the pool
// (newcomer gets a fair share, existing ratios preserved, units keep
// summing to util::kWeightScale) instead of wiping controller-programmed
// weights; removing one drops its affinity entries and rescales the rest
// the same way (scale-in after draining to weight 0 leaves the survivors'
// units exactly unchanged). Flows that never FIN are reclaimed by the
// affinity GC once an idle timeout is configured.
//
// Weight changes only affect *new* connections: pinned connections drain
// naturally, which is precisely the effect §4.7's drain-time estimation has
// to wait out.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lb/policy.hpp"
#include "net/fabric.hpp"

namespace klb::lb {

class Mux : public net::Node {
 public:
  Mux(net::Network& net, net::IpAddr vip, std::unique_ptr<Policy> policy);
  ~Mux() override;

  net::IpAddr vip() const { return vip_; }
  const Policy& policy() const { return *policy_; }

  /// Replace the policy (connection table survives, like a HAProxy reload).
  void set_policy(std::unique_ptr<Policy> policy);

  // --- backend lifecycle -----------------------------------------------------

  /// Register a backend and return its stable id. Existing weights are
  /// rescaled — newcomer at a fair share, existing ratios preserved, units
  /// summing to util::kWeightScale — never reset. `server` is optional and
  /// only consulted by the power-of-two policy.
  std::uint64_t add_backend(net::IpAddr dip,
                            const server::DipServer* server = nullptr);

  /// Deregister backend `i` (scale-in): its affinity entries are dropped
  /// and the survivors are rescaled back to kWeightScale (exactly unchanged
  /// when the backend was already drained to weight 0; a fully parked pool
  /// stays parked). Returns false for an out-of-range index.
  bool remove_backend(std::size_t i);

  /// Abrupt backend death (host failure): like remove_backend but the
  /// pinned flows are counted as reset — their clients see a connection
  /// reset and retry as new flows on the survivors.
  bool fail_backend(std::size_t i);

  std::size_t backend_count() const { return backends_.size(); }
  net::IpAddr backend_addr(std::size_t i) const { return backends_[i].addr; }
  std::uint64_t backend_id(std::size_t i) const { return backends_[i].id; }
  /// Index currently holding stable id `id`, if the backend still exists.
  std::optional<std::size_t> index_of_id(std::uint64_t id) const;

  /// Program weights (grid units, util::kWeightScale = 1.0), one entry per
  /// backend in registration order. This is the interface the LB controller
  /// programs; KnapsackLB never calls it directly. A vector whose size does
  /// not match backend_count() is rejected with a warning (a controller/mux
  /// pool-size race must not half-program the pool); returns false then.
  bool set_weight_units(const std::vector<std::int64_t>& units);
  std::vector<std::int64_t> weight_units() const;

  /// Administratively drain a backend (no new connections).
  void set_backend_enabled(std::size_t i, bool enabled);
  bool backend_enabled(std::size_t i) const { return backends_[i].enabled; }

  // --- affinity table --------------------------------------------------------

  /// Enable idle-flow GC: affinity entries with no request for `idle` are
  /// reclaimed (flows that never FIN). Zero (the default) disables it.
  /// Sweeps run inline every few thousand forwarded requests and on
  /// explicit gc_affinity() calls.
  void set_affinity_idle_timeout(util::SimTime idle) { affinity_idle_ = idle; }

  /// Sweep now; returns the number of entries reclaimed.
  std::size_t gc_affinity();

  std::size_t affinity_size() const { return affinity_.size(); }
  /// Entries whose backend no longer exists. Always 0 — removal drops them
  /// eagerly — but tests assert it after churn.
  std::size_t dangling_affinity_count() const;

  // --- dataplane counters ----------------------------------------------------
  std::uint64_t forwarded_requests(std::size_t i) const {
    return backends_[i].forwarded;
  }
  std::uint64_t new_connections(std::size_t i) const {
    return backends_[i].connections;
  }
  std::uint64_t active_connections(std::size_t i) const {
    return backends_[i].view().active_conns;
  }
  std::uint64_t total_forwarded() const { return total_forwarded_; }
  std::uint64_t rejected_programmings() const { return rejected_programmings_; }
  std::uint64_t flows_reset_by_failure() const { return flows_reset_; }
  std::uint64_t flows_gced_idle() const { return flows_gced_; }
  void reset_counters();

  // --- net::Node -------------------------------------------------------------
  void on_message(const net::Message& msg) override;

 private:
  struct Backend {
    std::uint64_t id = 0;  // stable across pool churn; affinity key
    net::IpAddr addr;
    const server::DipServer* server = nullptr;
    std::int64_t weight_units = 0;
    bool enabled = true;
    std::uint64_t active = 0;
    std::uint64_t connections = 0;  // cumulative new connections
    std::uint64_t forwarded = 0;    // cumulative forwarded requests

    BackendView view() const {
      return BackendView{addr, weight_units, enabled, active, server};
    }
  };

  struct Affinity {
    std::uint64_t backend_id = 0;
    util::SimTime last_seen = util::SimTime::zero();
  };

  void handle_request(const net::Message& msg);
  void handle_fin(const net::Message& msg);
  /// Refresh the cached policy view of the pool. Rebuilt on pool mutations
  /// (O(n), as the mutations already are); the per-packet pick path only
  /// patches active_conns in place, so a pick stays O(policy), not O(n).
  void rebuild_views();
  /// Rescale all weights to sum kWeightScale, preserving current ratios.
  /// All-zero pools fall back to an equal split (traffic must go somewhere).
  void renormalize_weights();
  bool erase_backend(std::size_t i, bool failed);
  void drop_affinity_for(std::uint64_t id, bool count_as_reset);
  void rebuild_id_index();
  void maybe_gc();

  net::Network& net_;
  net::IpAddr vip_;
  std::unique_ptr<Policy> policy_;
  util::Rng rng_;
  std::vector<Backend> backends_;
  std::vector<BackendView> views_;  // policy-facing cache, index-aligned
  std::unordered_map<std::uint64_t, std::size_t> id_index_;
  std::unordered_map<net::FiveTuple, Affinity> affinity_;
  util::SimTime affinity_idle_ = util::SimTime::zero();
  std::uint64_t next_backend_id_ = 1;
  std::uint64_t requests_since_gc_ = 0;
  std::uint64_t total_forwarded_ = 0;
  std::uint64_t no_backend_drops_ = 0;
  std::uint64_t rejected_programmings_ = 0;
  std::uint64_t flows_reset_ = 0;
  std::uint64_t flows_gced_ = 0;
};

}  // namespace klb::lb
