// The MUX: the L4 LB dataplane instance.
//
// A Mux owns a VIP, keeps the connection-affinity state (5-tuple -> stable
// backend id) in a sharded FlowTable with a per-shard flow cache (see
// lb/flow_table.hpp), applies the configured policy to new connections,
// and forwards requests to DIPs with the original tuple preserved (encap +
// direct server return, per Fig. 1). FINs flow through the MUX so it can
// maintain per-DIP active connection counts for (W)LC — the proxy-visible
// signal HAProxy uses.
//
// Pool state is published as immutable generations (ROADMAP item 1, the
// RCU-style scheme): every control-plane mutation — a committed
// PoolProgram, imperative churn, a weight or enable change, a policy swap
// — builds a fresh lb::PoolGeneration (membership, weights, flags, and a
// per-generation policy clone) and swings one atomic pointer to it. The
// packet path pins the current generation through an EpochDomain (one CAS
// + one store per packet, no lock, no allocation), works against that
// frozen snapshot for the duration of the packet, and unpins; superseded
// generations are retired into the domain and freed only once every
// reader that could hold them is provably gone. The packet path therefore
// NEVER takes a lock the control plane can hold: programs commit at full
// traffic rate (bench/mux_hotpath.cpp --churn drives both concurrently).
//
// What still serializes:
//   * control_mutex_ — all control-plane mutations against each other.
//   * pick_mutex_ — policy picks (stateful policies + the shared RNG) and
//     the per-generation views' active_conns patching. Affinity hits and
//     flow-cache hits bypass it. The control plane takes it only for the
//     instants of cloning the old policy into a new generation.
//   * per-shard FlowTable mutexes — affinity state, per shard.
// Lock order: control_mutex_ -> pick_mutex_ -> shard mutex. The packet
// path starts at pick_mutex_ or below, so it can stall on a shard or on a
// concurrent pick, but never on the control plane; an epoch pin is not a
// lock.
//
// Programming is transactional (see lb/pool_program.hpp): apply_program()
// commits a whole desired pool — membership, weights, and lifecycle states
// — atomically, and discards any transaction older than the last one
// committed. Backends carry a stable id from registration to removal, so
// the affinity state survives pool churn — indices shift when a backend is
// removed, ids never do. Every publication re-keys the flow cache to the
// new generation's sequence number: a cached pick can never resurrect a
// removed, failed, or reweighted DIP, and a pick computed against an
// already-retired generation is cached dead-on-arrival.
//
// Graceful scale-in is first-class: a backend programmed kDraining is
// parked (no new connections) while its pinned flows keep being served.
// Completion is a control-plane action: the FIN (or idle-GC) that empties
// a drainer only *flags* it (note_drain_empty), and the flag is swept by
// an opportunistic try_lock on the spot — uncontended callers (the
// single-threaded simulator always is) complete the drain inline exactly
// as before — or by the next control-plane poll()/mutation otherwise. The
// packet path never blocks on the sweep. fail_backend() stays the abrupt
// path: pinned flows are counted as reset and their clients retry on the
// survivors.
//
// Weight changes only affect *new* connections: pinned connections drain
// naturally, which is precisely the effect §4.7's drain-time estimation has
// to wait out.
//
// Stateless fast path (ROADMAP item 2, lb/consistency.hpp): with a
// ConsistencyConfig{stateless = true} and a maglev-table policy, flows
// whose table slot is unchanged across recent generations are routed by
// hash alone — no FlowTable insert, no FIN state, no GC — and only
// "exception" flows (slots whose pick moved, mid-flow adoptions onto a
// draining backend) are pinned. The hot path stays allocation-free and
// lock-free: pin epoch, read the generation's ExceptionFilter, test one
// bitmap bit + one slot-pin counter, one table read, forward. Drain
// auto-completion additionally waits out consistency.drain_grace_us,
// because a drainer may be serving stateless flows that hold no pin.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lb/consistency.hpp"
#include "lb/epoch.hpp"
#include "lb/flow_table.hpp"
#include "lb/policy.hpp"
#include "lb/pool_generation.hpp"
#include "lb/pool_program.hpp"
#include "net/fabric.hpp"
#include "util/sync.hpp"

namespace klb::lb {

class MaglevTable;

class Mux : public net::Node, public PoolProgrammer {
 public:
  /// With attach_to_vip = false the Mux does not bind the VIP on the
  /// fabric — a MuxPool owns the VIP and steers messages to its member
  /// muxes directly (ECMP sharding). `flow_cfg` sizes the sharded flow
  /// table (a 1-shard, 0-cache config reproduces the old monolithic map —
  /// the bench baseline). `consistency` opts into the stateless fast path
  /// (lb/consistency.hpp); it engages only when the *initial* policy
  /// carries a maglev table (so the slot-pin counters can be sized once,
  /// before any packet), and is ignored with a warning otherwise.
  Mux(net::Network& net, net::IpAddr vip, std::unique_ptr<Policy> policy,
      bool attach_to_vip = true, FlowTableConfig flow_cfg = {},
      ConsistencyConfig consistency = {});
  ~Mux() override;

  net::IpAddr vip() const { return vip_; }

  /// Replace the policy (connection table survives, like a HAProxy
  /// reload). Publishes a new generation carrying the given instance.
  void set_policy(std::unique_ptr<Policy> policy) KLB_EXCLUDES(control_mutex_);

  /// The maglev snapshot the current generation's policy serves, or null
  /// when the policy is not a SharedMaglevPolicy (MuxPool introspection).
  std::shared_ptr<const MaglevTable> shared_table_snapshot() const;

  // --- transactional programming (PoolProgrammer) ----------------------------

  /// Commit a whole-pool transaction immediately (the programming delay
  /// lives in LbController). Stale versions (<= the last committed one)
  /// are discarded whole and counted. Semantics per entry:
  ///   kActive   — in rotation at the programmed weight (added if new),
  ///   kDraining — parked at 0, pinned flows drain, auto-removed when the
  ///               last affinity entry goes,
  ///   kRemoved  — removed now (affinity dropped, clients reconnect).
  /// A served backend the program omits is removed — unless it is already
  /// draining, in which case the drain continues.
  void apply_program(const PoolProgram& program) override;

  /// Deferred control-plane maintenance: complete drains the packet path
  /// flagged, reclaim retired generations. Cheap; call at tick rate.
  void poll() override;

  std::size_t backend_count() const override;
  /// Active (non-draining) backends, registration order.
  std::vector<net::IpAddr> backend_addrs() const override;

  /// Version of the last committed transaction (0 = none yet).
  std::uint64_t applied_version() const {
    return applied_version_.load(std::memory_order_relaxed);
  }
  /// Transactions discarded because a newer version had already committed.
  std::uint64_t superseded_programs() const {
    return superseded_programs_.load(std::memory_order_relaxed);
  }
  /// Drains that auto-completed to removal.
  std::uint64_t drains_completed() const {
    return drains_completed_.load(std::memory_order_relaxed);
  }
  std::size_t draining_count() const;

  // --- backend lifecycle (dataplane-local / direct test access) --------------

  /// Register a backend and return its stable id. Existing weights are
  /// rescaled — newcomer at a fair share, existing ratios preserved, units
  /// summing to util::kWeightScale — never reset. `server` is optional and
  /// only consulted by the power-of-two policy.
  std::uint64_t add_backend(net::IpAddr dip,
                            const server::DipServer* server = nullptr)
      KLB_EXCLUDES(control_mutex_);

  /// Deregister backend `i` (scale-in): its affinity entries are dropped
  /// and the survivors are rescaled back to kWeightScale (exactly unchanged
  /// when the backend was already drained to weight 0; a fully parked pool
  /// stays parked). Returns false for an out-of-range index.
  bool remove_backend(std::size_t i) KLB_EXCLUDES(control_mutex_);

  /// Abrupt backend death (host failure): like remove_backend but the
  /// pinned flows are counted as reset — their clients see a connection
  /// reset and retry as new flows on the survivors. The address is also
  /// tombstoned at `condemned_until_version` (default: every version this
  /// dataplane's sequence has issued so far; a MuxPool passes its own
  /// counter): a transaction issued at or before that version predates the
  /// failure observation, so its entry cannot re-admit the corpse at its
  /// old weight while riding out the programming delay — that would
  /// blackhole the dead DIP's hash space until the next post-failure
  /// commit. A transaction issued after the failure re-admits normally
  /// (a deliberate resurrection) and clears the tombstone.
  bool fail_backend(std::size_t i,
                    std::optional<std::uint64_t> condemned_until_version =
                        std::nullopt) KLB_EXCLUDES(control_mutex_);

  /// Record the failure tombstone alone (see fail_backend) without
  /// touching any backend — a MuxPool uses it to keep members that do not
  /// currently serve the address in agreement with those that do.
  void condemn(net::IpAddr addr, std::uint64_t until_version)
      KLB_EXCLUDES(control_mutex_);

  /// Bounds-checked accessors: an out-of-range index is loud (warn +
  /// sentinel), matching remove_backend's convention — never UB. Indices
  /// name positions in the *current* generation.
  net::IpAddr backend_addr(std::size_t i) const;
  std::uint64_t backend_id(std::size_t i) const;
  bool backend_enabled(std::size_t i) const;
  bool backend_draining(std::size_t i) const;
  /// Index currently holding stable id `id`, if the backend still exists.
  std::optional<std::size_t> index_of_id(std::uint64_t id) const;

  /// Program weights (grid units, util::kWeightScale = 1.0), one entry per
  /// backend in registration order — the legacy imperative path, kept for
  /// direct dataplane manipulation in tests/benches (controllers go
  /// through apply_program). A vector whose size does not match
  /// backend_count() is rejected with a warning; returns false then.
  /// Draining backends stay parked at 0 regardless of the vector.
  bool set_weight_units(const std::vector<std::int64_t>& units)
      KLB_EXCLUDES(control_mutex_);
  std::vector<std::int64_t> weight_units() const;

  /// Administratively park (enabled = false) or unpark a backend without
  /// the removal lifecycle — a temporary maintenance knob. Enabling a
  /// *draining* backend is refused (warn + false): the drainer would keep
  /// accepting new connections while `draining` still promises auto-removal
  /// on empty, so it could never complete (ISSUE 5). Cancelling a drain is
  /// an explicit act: re-list the backend kActive in a PoolProgram.
  /// Returns false for an out-of-range index too.
  bool set_backend_enabled(std::size_t i, bool enabled)
      KLB_EXCLUDES(control_mutex_);

  // --- affinity state --------------------------------------------------------

  /// Enable idle-flow GC: affinity entries with no request for `idle` are
  /// reclaimed (flows that never FIN). Zero (the default) disables it.
  /// Inline sweeps run one shard at a time, amortized so the whole table
  /// is covered every ~few thousand forwarded requests; explicit
  /// gc_affinity() calls sweep everything.
  void set_affinity_idle_timeout(util::SimTime idle) {
    affinity_idle_us_.store(idle.us(), std::memory_order_relaxed);
  }

  /// Sweep every shard now; returns the number of entries reclaimed.
  std::size_t gc_affinity();

  std::size_t affinity_size() const { return flows_.size(); }
  /// Entries whose backend no longer exists. Always 0 once churn quiesces
  /// — removal drops them eagerly, and the amortized GC mops up any a
  /// straggling reader re-pinned mid-removal — tests assert it after churn.
  std::size_t dangling_affinity_count() const;

  /// The sharded affinity table (shard/cache introspection for tests and
  /// benches).
  const FlowTable& flow_table() const { return flows_; }

  // --- dataplane counters ----------------------------------------------------
  std::uint64_t forwarded_requests(std::size_t i) const;
  std::uint64_t new_connections(std::size_t i) const;
  std::uint64_t active_connections(std::size_t i) const;
  std::uint64_t total_forwarded() const {
    return total_forwarded_.load(std::memory_order_relaxed);
  }
  /// New connections refused because the policy had no usable backend
  /// (clients see a timeout). The testbed asserts this stays zero through
  /// steady phases (ISSUE 5 — it used to be counted but unreadable).
  std::uint64_t no_backend_drops() const {
    return no_backend_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected_programmings() const {
    return rejected_programmings_.load(std::memory_order_relaxed);
  }
  std::uint64_t flows_reset_by_failure() const {
    return flows_reset_.load(std::memory_order_relaxed);
  }
  std::uint64_t flows_gced_idle() const {
    return flows_gced_.load(std::memory_order_relaxed);
  }
  /// Pinned flows dropped by an abrupt *graceful-path* removal — a
  /// transactional kRemoved, omission from a non-weights-only program, or
  /// an imperative remove_backend — as opposed to reset-by-failure or
  /// drained-to-zero. Invisible before ISSUE 5: these flows vanished from
  /// every metric.
  std::uint64_t flows_dropped_by_removal() const {
    return flows_dropped_.load(std::memory_order_relaxed);
  }
  /// Program entries skipped because they would have re-admitted a failed
  /// backend from a transaction issued before the failure was observed.
  std::uint64_t stale_failed_admissions() const {
    return stale_failed_admissions_.load(std::memory_order_relaxed);
  }
  void reset_counters() KLB_EXCLUDES(control_mutex_);

  // --- stateless fast path (lb/consistency.hpp) ------------------------------
  /// True when the hybrid stateless/stateful dataplane engaged at
  /// construction (stateless requested + table-bearing policy).
  bool stateless_engaged() const { return slot_pins_ != nullptr; }
  /// Requests routed purely by hash — no FlowTable entry ever existed.
  std::uint64_t stateless_picks() const {
    return stateless_picks_.load(std::memory_order_relaxed);
  }
  /// Flows pinned while the hybrid dataplane is engaged (exception flows).
  std::uint64_t exception_pins() const {
    return exception_pins_.load(std::memory_order_relaxed);
  }
  /// Mid-flow packets whose slot's pick moved and that were adopted onto
  /// their previous backend (each one is a break the filter prevented).
  std::uint64_t affinity_breaks_avoided() const {
    return affinity_breaks_avoided_.load(std::memory_order_relaxed);
  }
  /// Mid-flow packets whose slot's pick moved and whose previous backend
  /// is gone — the flow genuinely re-homed (zero under graceful churn;
  /// failures break flows in stateful mode too).
  std::uint64_t affinity_breaks() const {
    return affinity_breaks_.load(std::memory_order_relaxed);
  }
  /// Table slots flagged exceptional in the current generation's filter.
  std::size_t exception_slots() const;
  /// Live exception pins summed over all slots (O(table) scan).
  std::uint64_t live_exception_pins() const {
    return slot_pins_ ? slot_pins_->total() : 0;
  }

  // --- generation / reclamation observability --------------------------------
  /// Generations published since construction (>= 1: the constructor
  /// publishes the initial empty-pool generation).
  std::uint64_t generations_published() const {
    return generations_published_.load(std::memory_order_relaxed);
  }
  /// Retired generations actually freed. After quiescing + poll() this
  /// equals generations_published() - 1 (only the current one lives).
  std::uint64_t generations_retired() const {
    return epochs_.reclaimed_total();
  }
  /// Retired generations still parked behind a pinned reader.
  std::size_t pending_retired_generations() const {
    return epochs_.pending_retired();
  }
  /// Sequence number of the current generation (== the flow cache's pick
  /// epoch).
  std::uint64_t generation_seq() const {
    return gen_seq_.load(std::memory_order_relaxed);
  }
  std::uint64_t current_epoch() const { return epochs_.epoch(); }
  std::uint64_t oldest_live_epoch() const {
    return epochs_.oldest_live_epoch();
  }
  /// Pin the current generation and verify its structural checksum — the
  /// concurrency tests call this from a racing thread to assert no torn
  /// publication is ever observable.
  bool debug_check_generation() const;

  // --- net::Node -------------------------------------------------------------
  void on_message(const net::Message& msg) override;
  void on_batch(const net::Message* const* msgs, std::size_t n) override;

  /// Batched packet entry: processes a burst of messages with per-burst
  /// amortization — the epoch pin and generation load happen once, affinity
  /// lookups are grouped to take each FlowTable shard lock once, policy
  /// picks for the burst's misses share one pick_mutex_ acquisition, and
  /// forwarding is grouped per destination DIP into fabric bursts. Counter
  /// outcomes are element-wise identical to handle_request for
  /// tuple-deterministic policies; stateful policies (rr/lc family) are
  /// processed per packet under the shared pin so their pick sequence
  /// matches the scalar path exactly. Mixed types allowed: contiguous
  /// request runs are batched, FINs are handled per message.
  void handle_batch(const net::Message* const* msgs, std::size_t n)
      KLB_NONALLOCATING KLB_EXCLUDES(control_mutex_, pick_mutex_);

 private:
  /// A pinned read of the current generation: `gen` stays valid until
  /// `guard` releases (scope exit). Everything the packet path does with
  /// pool state happens through one of these.
  struct GenRef {
    EpochDomain::Guard guard;
    const PoolGeneration* gen = nullptr;
  };
  GenRef read_gen() const KLB_NONALLOCATING {
    GenRef r;
    // Pin first, load second: a generation retired after this pin tags
    // above our published epoch, so whatever the load returns cannot be
    // reclaimed under us.
    r.guard = epochs_.pin();
    r.gen = current_.load(std::memory_order_acquire);
    return r;
  }

  /// The scalar entry is the batch-of-1 case: one code path (ISSUE 9).
  void handle_request(const net::Message& msg)
      KLB_NONALLOCATING KLB_EXCLUDES(control_mutex_, pick_mutex_) {
    const net::Message* p = &msg;
    handle_request_chunk(&p, 1);
  }
  /// One pinned, staged pass over up to kBatchChunk requests.
  /// Nonallocating: the slow lanes it may cross are the documented
  /// escapes — "mux.maybe_gc" (amortized sweep), "mux.pick" (stage D),
  /// "flow.pin_insert" (stage E) and the FlowTable/fabric sites below.
  void handle_request_chunk(const net::Message* const* msgs, std::size_t n)
      KLB_NONALLOCATING KLB_EXCLUDES(control_mutex_, pick_mutex_);
  /// The staged body, running against an already-pinned generation.
  void process_chunk_pinned(const PoolGeneration& gen, util::SimTime now,
                            const net::Message* const* msgs, std::size_t n)
      KLB_NONALLOCATING KLB_EXCLUDES(control_mutex_, pick_mutex_);
  void handle_fin(const net::Message& msg)
      KLB_NONALLOCATING KLB_EXCLUDES(control_mutex_, pick_mutex_);
  /// Batched FIN run: one erase_batch over the flow shards, one epoch
  /// pin, forwards grouped per destination. Element-wise identical to
  /// handle_fin per message.
  void handle_fin_chunk(const net::Message* const* msgs, std::size_t n)
      KLB_NONALLOCATING KLB_EXCLUDES(control_mutex_, pick_mutex_);
  /// Post-unpin FIN resolution against a pinned generation: which backend
  /// index should see the FIN (nullopt = drop), releasing the connection
  /// and flagging `drain_emptied` when this FIN was a drainer's last.
  std::optional<std::size_t> resolve_fin(const PoolGeneration& gen,
                                         const FlowErase& r,
                                         bool* drain_emptied)
      KLB_NONALLOCATING KLB_EXCLUDES(control_mutex_, pick_mutex_);
  /// Forward `k` messages to backend `i`: per-run counter updates, one
  /// fabric burst. The scalar forward is the k=1 case.
  void forward_run(const PoolGeneration& gen, std::size_t i,
                   const net::Message* const* msgs, std::size_t k)
      KLB_NONALLOCATING;
  /// Stateless resolution: the backend index `hash` routes to through the
  /// generation's table, or nullopt when the table/pool had no usable
  /// answer (the caller falls back to the stateful path). On success the
  /// stateless counters are bumped (openers count their connection); the
  /// caller forwards. Fully lock-free: table read + relaxed counters.
  std::optional<std::size_t> resolve_stateless(const PoolGeneration& gen,
                                               const MaglevTable& table,
                                               std::uint64_t hash,
                                               const net::Message& msg)
      KLB_NONBLOCKING;
  /// Decrement backend `i`'s active count (never below zero) and, for
  /// connection-count policies, refresh its view under the pick mutex
  /// (the "mux.release_pick_refresh" escape — skipped entirely for
  /// policies that never read active_conns).
  void release_connection(const PoolGeneration& gen, std::size_t i)
      KLB_NONALLOCATING KLB_EXCLUDES(pick_mutex_);

  /// Build and publish the next generation from `backends`, cloning the
  /// current policy unless `policy_override` supplies one. Re-keys the
  /// flow cache, swings the pointer, retires the predecessor. Caller holds
  /// control_mutex_ (and NOT pick_mutex_).
  void publish_locked(std::vector<GenBackend> backends,
                      std::uint64_t program_version,
                      std::unique_ptr<Policy> policy_override = nullptr)
      KLB_REQUIRES(control_mutex_) KLB_EXCLUDES(pick_mutex_);
  /// Copy of the current generation's backends — the draft every
  /// control-plane mutation edits. Caller holds control_mutex_.
  std::vector<GenBackend> draft_locked() const KLB_REQUIRES(control_mutex_) {
    return current_owner_->backends();
  }

  /// True when `b`'s drain may auto-complete: no pinned flows, and (in
  /// stateless mode) the drain grace has elapsed — pin-less flows need
  /// that window to adopt exception pins or FIN before the backend goes.
  bool drain_ripe(const GenBackend& b) const;
  /// Flag "some drainer may have emptied" from the packet path and sweep
  /// it opportunistically (try-lock construction; never blocks).
  /// Uncontended callers — the single-threaded simulator always —
  /// complete the drain inline, inside the "mux.drain_sweep" escape.
  void note_drain_empty() KLB_NONBLOCKING KLB_EXCLUDES(control_mutex_);
  /// Remove every empty drainer in one publication. Caller holds
  /// control_mutex_. No-op when the pending flag is clear.
  void sweep_drains_locked() KLB_REQUIRES(control_mutex_);

  void condemn_locked(net::IpAddr addr, std::uint64_t until_version)
      KLB_REQUIRES(control_mutex_) {
    failed_tombstones_[addr.value()] = until_version;
  }
  bool erase_backend(std::size_t i, bool failed) KLB_REQUIRES(control_mutex_);
  void drop_affinity_for(std::uint64_t id, bool count_as_reset);
  /// Rescale `draft` weights to sum kWeightScale, preserving ratios.
  /// All-zero pools stay parked (traffic deliberately weighted away).
  static void renormalize_weights(std::vector<GenBackend>& draft);
  /// Amortized inline GC accounting for a batch of `batch` requests (the
  /// scalar path passes 1): one counter add and at most one shard sweep
  /// per call.
  void maybe_gc(std::uint64_t batch = 1);
  /// Sweep one flow-table shard (dead + idle entries) and flag any drain
  /// the sweep emptied. `max_scan` bounds the entries examined (see
  /// FlowTable::gc_shard): inline packet-path sweeps pass kScanBudgeted so
  /// no packet ever pays for a full shard at 10M flows; explicit
  /// gc_affinity() passes kScanAll.
  std::size_t gc_shard(std::size_t k,
                       std::size_t max_scan = FlowTable::kScanAll);

  net::Network& net_;
  net::IpAddr vip_;
  bool attached_ = false;
  ConsistencyConfig consistency_;
  util::Rng rng_ KLB_GUARDED_BY(pick_mutex_);

  /// Serializes control-plane mutations against each other. The packet
  /// path never takes it (note_drain_empty only try_locks). Flagged
  /// control-plane: acquiring it while holding an epoch pin is an abort
  /// under KLB_DEBUG_SYNC — its critical sections retire generations, and
  /// a held pin would defer that reclamation forever.
  mutable util::Mutex control_mutex_{"klb.mux.control",
                                     util::LockFlags::kControlPlane};
  /// Serializes policy picks (stateful policies + the shared RNG) and the
  /// generation views' active_conns patching. Lock order: pick_mutex_ may
  /// be followed by a shard mutex (pick -> pin), never the reverse —
  /// FlowTable callbacks that reenter the Mux run after the shard lock
  /// drops (see FlowTable::gc_shard).
  util::Mutex pick_mutex_{"klb.mux.pick"};

  /// The published generation. Readers pin (epochs_) then acquire-load;
  /// writers store under control_mutex_ and retire the predecessor.
  std::atomic<const PoolGeneration*> current_{nullptr};
  /// Strong ref keeping `current_` alive.
  std::shared_ptr<const PoolGeneration> current_owner_
      KLB_GUARDED_BY(control_mutex_);
  mutable EpochDomain epochs_;

  FlowTable flows_;
  /// Stateless fast path (both null when disengaged — the classic
  /// dataplane). slot_pins_ is sized to the policy's table in the
  /// constructor and never reallocated: the packet path reads it without
  /// synchronization. diff_ runs on the control thread only.
  std::unique_ptr<SlotPinCounts> slot_pins_;
  std::unique_ptr<GenerationDiff> diff_ KLB_GUARDED_BY(control_mutex_);
  /// Failed address -> highest version issued when the failure was
  /// observed. Programs at or below that version cannot re-admit the
  /// address (they predate the failure); newer programs clear the entry.
  std::unordered_map<std::uint32_t, std::uint64_t> failed_tombstones_
      KLB_GUARDED_BY(control_mutex_);
  std::uint64_t next_backend_id_ KLB_GUARDED_BY(control_mutex_) = 1;

  std::atomic<std::int64_t> affinity_idle_us_{0};
  std::atomic<bool> drain_poll_pending_{false};
  std::atomic<std::uint64_t> gen_seq_{0};
  std::atomic<std::uint64_t> generations_published_{0};
  std::atomic<std::uint64_t> requests_since_gc_{0};
  std::atomic<std::uint64_t> gc_cursor_{0};  // next shard the inline GC sweeps
  std::atomic<std::uint64_t> total_forwarded_{0};
  std::atomic<std::uint64_t> no_backend_drops_{0};
  std::atomic<std::uint64_t> drains_completed_{0};
  std::atomic<std::uint64_t> flows_reset_{0};
  std::atomic<std::uint64_t> flows_gced_{0};
  std::atomic<std::uint64_t> flows_dropped_{0};
  std::atomic<std::uint64_t> rejected_programmings_{0};
  std::atomic<std::uint64_t> applied_version_{0};
  std::atomic<std::uint64_t> superseded_programs_{0};
  std::atomic<std::uint64_t> stale_failed_admissions_{0};
  std::atomic<std::uint64_t> stateless_picks_{0};
  std::atomic<std::uint64_t> exception_pins_{0};
  std::atomic<std::uint64_t> affinity_breaks_avoided_{0};
  std::atomic<std::uint64_t> affinity_breaks_{0};
};

}  // namespace klb::lb
