// The MUX: the L4 LB dataplane instance.
//
// A Mux owns a VIP, keeps the connection-affinity table (5-tuple -> DIP),
// applies the configured policy to new connections, and forwards requests
// to DIPs with the original tuple preserved (encap + direct server return,
// per Fig. 1). FINs flow through the MUX so it can maintain per-DIP active
// connection counts for (W)LC — the proxy-visible signal HAProxy uses.
//
// Weight changes only affect *new* connections: pinned connections drain
// naturally, which is precisely the effect §4.7's drain-time estimation has
// to wait out.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lb/policy.hpp"
#include "net/fabric.hpp"

namespace klb::lb {

class Mux : public net::Node {
 public:
  Mux(net::Network& net, net::IpAddr vip, std::unique_ptr<Policy> policy);
  ~Mux() override;

  net::IpAddr vip() const { return vip_; }
  const Policy& policy() const { return *policy_; }

  /// Replace the policy (connection table survives, like a HAProxy reload).
  void set_policy(std::unique_ptr<Policy> policy);

  /// Register a backend. `server` is optional and only consulted by the
  /// power-of-two policy.
  void add_backend(net::IpAddr dip, const server::DipServer* server = nullptr);

  std::size_t backend_count() const { return backends_.size(); }
  net::IpAddr backend_addr(std::size_t i) const { return backends_[i].addr; }

  /// Program weights (grid units, util::kWeightScale = 1.0), one entry per
  /// backend in registration order. This is the interface the LB controller
  /// programs; KnapsackLB never calls it directly.
  void set_weight_units(const std::vector<std::int64_t>& units);
  std::vector<std::int64_t> weight_units() const;

  /// Administratively drain a backend (no new connections).
  void set_backend_enabled(std::size_t i, bool enabled);

  // --- dataplane counters ---------------------------------------------------
  std::uint64_t forwarded_requests(std::size_t i) const {
    return backends_[i].forwarded;
  }
  std::uint64_t new_connections(std::size_t i) const {
    return backends_[i].connections;
  }
  std::uint64_t active_connections(std::size_t i) const {
    return backends_[i].view().active_conns;
  }
  std::uint64_t total_forwarded() const { return total_forwarded_; }
  void reset_counters();

  // --- net::Node -------------------------------------------------------------
  void on_message(const net::Message& msg) override;

 private:
  struct Backend {
    net::IpAddr addr;
    const server::DipServer* server = nullptr;
    std::int64_t weight_units = 0;
    bool enabled = true;
    std::uint64_t active = 0;
    std::uint64_t connections = 0;  // cumulative new connections
    std::uint64_t forwarded = 0;    // cumulative forwarded requests

    BackendView view() const {
      return BackendView{addr, weight_units, enabled, active, server};
    }
  };

  void handle_request(const net::Message& msg);
  void handle_fin(const net::Message& msg);
  std::vector<BackendView> views() const;

  net::Network& net_;
  net::IpAddr vip_;
  std::unique_ptr<Policy> policy_;
  util::Rng rng_;
  std::vector<Backend> backends_;
  std::unordered_map<net::FiveTuple, std::size_t> affinity_;
  std::uint64_t total_forwarded_ = 0;
  std::uint64_t no_backend_drops_ = 0;
};

}  // namespace klb::lb
