// The existing LB's control plane (HAProxy runtime API / Ananta controller
// in Fig. 6). KnapsackLB talks to this interface only — it never touches
// the MUXes. Programming is asynchronous: a transaction reaches the
// dataplane after `programming_delay`, which is one of the two delays
// §4.7's drain-time logic has to absorb (the other is connection
// draining).
#pragma once

#include <cstdint>
#include <vector>

#include "lb/pool_program.hpp"
#include "sim/simulation.hpp"
#include "util/time.hpp"

namespace klb::lb {

/// Delay decorator over any dataplane: the controller hands a whole-pool
/// transaction to the LB, and the LB commits it `programming_delay` later
/// — membership, weights, and lifecycle land together, so the delay covers
/// one transaction instead of N racing ops. Supersession needs no
/// bookkeeping here: the dataplane's version check discards any
/// transaction older than the newest it has committed, even if delivery
/// reorders.
class LbController : public PoolProgrammer {
 public:
  LbController(sim::Simulation& sim, PoolProgrammer& dataplane,
               util::SimTime programming_delay = util::SimTime::millis(200))
      : sim_(sim), dataplane_(dataplane), delay_(programming_delay) {}

  std::size_t backend_count() const override {
    return dataplane_.backend_count();
  }

  std::vector<net::IpAddr> backend_addrs() const override {
    return dataplane_.backend_addrs();
  }

  void apply_program(const PoolProgram& program) override {
    sim_.schedule_in(delay_, [this, program] {
      dataplane_.apply_program(program);
    });
  }

  /// Versions are drawn from the dataplane's sequence: programs issued
  /// around the decorator (tests, a second controller) and through it
  /// stay totally ordered.
  std::uint64_t issue_version() override { return dataplane_.issue_version(); }

  /// Maintenance passes straight through — deferred drain completion and
  /// generation reclamation happen in the dataplane, not in the delay
  /// decorator.
  void poll() override { dataplane_.poll(); }

  util::SimTime programming_delay() const { return delay_; }
  PoolProgrammer& dataplane() { return dataplane_; }

 private:
  sim::Simulation& sim_;
  PoolProgrammer& dataplane_;
  util::SimTime delay_;
};

}  // namespace klb::lb
