// The existing LB's control plane (HAProxy runtime API / Ananta controller
// in Fig. 6). KnapsackLB talks to this interface only — it never touches
// the MUXes. Programming is asynchronous: new weights reach the dataplane
// after `programming_delay`, which is one of the two delays §4.7's
// drain-time logic has to absorb (the other is connection draining).
#pragma once

#include <cstdint>
#include <vector>

#include "lb/mux.hpp"
#include "util/weight.hpp"

namespace klb::lb {

/// Abstract weight-programming interface: anything that can apply per-DIP
/// weights (a MUX pool, a DNS traffic manager, ...). This is the "LB
/// controller" box of Fig. 6.
///
/// Membership (add/remove) is a synchronous config push — the pool resizes
/// immediately — while weight programming keeps its implementation-specific
/// delay. An in-flight programming sized for the old pool is rejected by
/// the dataplane (never prefix-applied), so a membership/weights race is
/// loud instead of silently half-programming the pool.
class WeightInterface {
 public:
  virtual ~WeightInterface() = default;
  virtual std::size_t backend_count() const = 0;
  /// Apply weights (grid units summing to util::kWeightScale). Takes
  /// effect after an implementation-specific delay.
  virtual void program_weights(const std::vector<std::int64_t>& units) = 0;
  /// Remove/readmit a backend from rotation (used on failure detection).
  virtual void set_backend_enabled(std::size_t i, bool enabled) = 0;
  /// Scale-out: append a backend to the pool.
  virtual void add_backend(net::IpAddr dip) = 0;
  /// Scale-in: drop backend `i` from the pool; false if out of range.
  virtual bool remove_backend(std::size_t i) = 0;
};

class LbController : public WeightInterface {
 public:
  LbController(sim::Simulation& sim, Mux& mux,
               util::SimTime programming_delay = util::SimTime::millis(200))
      : sim_(sim), mux_(mux), delay_(programming_delay) {}

  std::size_t backend_count() const override { return mux_.backend_count(); }

  void program_weights(const std::vector<std::int64_t>& units) override {
    const std::uint64_t gen = ++generation_;
    sim_.schedule_in(delay_, [this, gen, units] {
      // Later programmings supersede earlier in-flight ones.
      if (gen <= latest_applied_) return;
      latest_applied_ = gen;
      mux_.set_weight_units(units);
    });
  }

  void set_backend_enabled(std::size_t i, bool enabled) override {
    if (i >= mux_.backend_count()) return;
    // Capture the stable id, not the index: synchronous membership ops can
    // renumber the pool before the delayed change lands, and draining the
    // wrong backend would be a silent misprogram.
    const auto id = mux_.backend_id(i);
    sim_.schedule_in(delay_, [this, id, enabled] {
      if (const auto idx = mux_.index_of_id(id))
        mux_.set_backend_enabled(*idx, enabled);
    });
  }

  void add_backend(net::IpAddr dip) override { mux_.add_backend(dip); }

  bool remove_backend(std::size_t i) override {
    return mux_.remove_backend(i);
  }

  util::SimTime programming_delay() const { return delay_; }

 private:
  sim::Simulation& sim_;
  Mux& mux_;
  util::SimTime delay_;
  std::uint64_t generation_ = 0;
  std::uint64_t latest_applied_ = 0;
};

}  // namespace klb::lb
