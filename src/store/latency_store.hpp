// The latency store (Fig. 6): VIP -> list of <DIP, latency, time> tuples.
//
// A typed schema over the KvEngine. KLM instances append samples over the
// wire (through KvServer); the controller reads through this facade
// synchronously — the store round trip (0.3-4 ms against Azure Redis, §6.7)
// is negligible against the 5-second control loop, so modelling it would
// only add plumbing, not behaviour. Samples are stored newest-first under
// key "lat:<vip>:<dip>" with a bounded history.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "store/kv_engine.hpp"

namespace klb::store {

/// One KLM measurement round for one DIP.
struct LatencySample {
  net::IpAddr dip;
  double avg_latency_ms = 0.0;
  std::uint32_t probes = 0;    // requests attempted this round
  std::uint32_t errors = 0;    // 5xx responses (server-side drops)
  std::uint32_t timeouts = 0;  // no response at all
  util::SimTime at = util::SimTime::zero();

  /// A round where nothing came back: the DIP looks dead (§4.5 failures).
  bool all_failed() const { return probes > 0 && errors + timeouts >= probes; }
  /// Any drop at all — the explorer's "packet drop" input (Algorithm 1).
  bool saw_drops() const { return errors + timeouts > 0; }

  std::string serialize() const;
  static std::optional<LatencySample> parse(const std::string& s);
};

class LatencyStore {
 public:
  explicit LatencyStore(std::shared_ptr<KvEngine> engine,
                        std::size_t history_per_dip = 64)
      : engine_(std::move(engine)), history_(history_per_dip) {}

  KvEngine& engine() { return *engine_; }

  /// Append a sample (newest first) and trim history.
  void record(net::IpAddr vip, const LatencySample& sample);

  /// The most recent sample for a DIP, if any.
  std::optional<LatencySample> latest(net::IpAddr vip, net::IpAddr dip) const;

  /// Most recent `n` samples, newest first.
  std::vector<LatencySample> recent(net::IpAddr vip, net::IpAddr dip,
                                    std::size_t n) const;

  /// Deregister a DIP: delete its sample history (scale-in/failure — a
  /// later tenant of the address must not inherit the leaver's samples).
  /// Returns true when there was history to delete.
  bool forget(net::IpAddr vip, net::IpAddr dip);

  static std::string key_for(net::IpAddr vip, net::IpAddr dip);

 private:
  std::shared_ptr<KvEngine> engine_;
  std::size_t history_;
};

}  // namespace klb::store
