#include "store/kv_engine.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace klb::store {

namespace {

using net::RespValue;

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

bool parse_i64(const std::string& s, std::int64_t& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

RespValue wrong_args(const std::string& cmd) {
  return RespValue::error("ERR wrong number of arguments for '" + cmd + "'");
}

RespValue wrong_type() {
  return RespValue::error(
      "WRONGTYPE Operation against a key holding the wrong kind of value");
}

}  // namespace

KvEngine::Entry* KvEngine::live(const std::string& key) {
  const auto it = data_.find(key);
  if (it == data_.end()) return nullptr;
  if (it->second.expires <= clock_()) {
    data_.erase(it);
    return nullptr;
  }
  return &it->second;
}

net::RespValue KvEngine::execute(const std::vector<std::string>& cmd) {
  util::MutexLock lk(mu_);
  if (cmd.empty()) return RespValue::error("ERR empty command");
  const std::string op = upper(cmd[0]);

  if (op == "PING")
    return cmd.size() > 1 ? RespValue::bulk(cmd[1]) : RespValue::simple("PONG");
  if (op == "ECHO")
    return cmd.size() == 2 ? RespValue::bulk(cmd[1]) : wrong_args("echo");
  if (op == "SET") return cmd_set(cmd);
  if (op == "GET") return cmd_get(cmd);
  if (op == "DEL") return cmd_del(cmd);
  if (op == "EXISTS") return cmd_exists(cmd);
  if (op == "EXPIRE") return cmd_expire(cmd);
  if (op == "TTL") return cmd_ttl(cmd);
  if (op == "LPUSH") return cmd_push(cmd, /*left=*/true);
  if (op == "RPUSH") return cmd_push(cmd, /*left=*/false);
  if (op == "LPOP") return cmd_lpop(cmd);
  if (op == "LRANGE") return cmd_lrange(cmd);
  if (op == "LLEN") return cmd_llen(cmd);
  if (op == "LTRIM") return cmd_ltrim(cmd);
  if (op == "KEYS") return cmd_keys(cmd);
  if (op == "DBSIZE")
    return RespValue::integer_of(static_cast<std::int64_t>(data_.size()));
  if (op == "FLUSHALL") {
    data_.clear();
    return RespValue::simple("OK");
  }
  return RespValue::error("ERR unknown command '" + cmd[0] + "'");
}

net::RespValue KvEngine::cmd_set(const std::vector<std::string>& cmd) {
  if (cmd.size() != 3 && cmd.size() != 5) return wrong_args("set");
  Entry e;
  e.str = cmd[2];
  if (cmd.size() == 5) {
    if (upper(cmd[3]) != "EX") return RespValue::error("ERR syntax error");
    std::int64_t secs = 0;
    if (!parse_i64(cmd[4], secs) || secs <= 0)
      return RespValue::error("ERR invalid expire time in 'set' command");
    e.expires = clock_() + util::SimTime::seconds(static_cast<double>(secs));
  }
  data_[cmd[1]] = std::move(e);
  return RespValue::simple("OK");
}

net::RespValue KvEngine::cmd_get(const std::vector<std::string>& cmd) {
  if (cmd.size() != 2) return wrong_args("get");
  Entry* e = live(cmd[1]);
  if (!e) return RespValue::null();
  if (e->is_list) return wrong_type();
  return RespValue::bulk(e->str);
}

net::RespValue KvEngine::cmd_del(const std::vector<std::string>& cmd) {
  if (cmd.size() < 2) return wrong_args("del");
  std::int64_t removed = 0;
  for (std::size_t i = 1; i < cmd.size(); ++i)
    removed += static_cast<std::int64_t>(data_.erase(cmd[i]));
  return RespValue::integer_of(removed);
}

net::RespValue KvEngine::cmd_exists(const std::vector<std::string>& cmd) {
  if (cmd.size() < 2) return wrong_args("exists");
  std::int64_t found = 0;
  for (std::size_t i = 1; i < cmd.size(); ++i)
    if (live(cmd[i])) ++found;
  return RespValue::integer_of(found);
}

net::RespValue KvEngine::cmd_expire(const std::vector<std::string>& cmd) {
  if (cmd.size() != 3) return wrong_args("expire");
  std::int64_t secs = 0;
  if (!parse_i64(cmd[2], secs)) return RespValue::error("ERR value is not an integer");
  Entry* e = live(cmd[1]);
  if (!e) return RespValue::integer_of(0);
  e->expires = clock_() + util::SimTime::seconds(static_cast<double>(secs));
  return RespValue::integer_of(1);
}

net::RespValue KvEngine::cmd_ttl(const std::vector<std::string>& cmd) {
  if (cmd.size() != 2) return wrong_args("ttl");
  Entry* e = live(cmd[1]);
  if (!e) return RespValue::integer_of(-2);
  if (e->expires == util::SimTime::max()) return RespValue::integer_of(-1);
  return RespValue::integer_of(
      static_cast<std::int64_t>((e->expires - clock_()).sec()));
}

net::RespValue KvEngine::cmd_push(const std::vector<std::string>& cmd,
                                  bool left) {
  if (cmd.size() < 3) return wrong_args(left ? "lpush" : "rpush");
  Entry* e = live(cmd[1]);
  if (e && !e->is_list) return wrong_type();
  if (!e) {
    Entry fresh;
    fresh.is_list = true;
    e = &(data_[cmd[1]] = std::move(fresh));
  }
  for (std::size_t i = 2; i < cmd.size(); ++i) {
    if (left)
      e->list.push_front(cmd[i]);
    else
      e->list.push_back(cmd[i]);
  }
  return RespValue::integer_of(static_cast<std::int64_t>(e->list.size()));
}

net::RespValue KvEngine::cmd_lpop(const std::vector<std::string>& cmd) {
  if (cmd.size() != 2) return wrong_args("lpop");
  Entry* e = live(cmd[1]);
  if (!e) return RespValue::null();
  if (!e->is_list) return wrong_type();
  if (e->list.empty()) return RespValue::null();
  auto v = RespValue::bulk(e->list.front());
  e->list.pop_front();
  if (e->list.empty()) data_.erase(cmd[1]);
  return v;
}

net::RespValue KvEngine::cmd_lrange(const std::vector<std::string>& cmd) {
  if (cmd.size() != 4) return wrong_args("lrange");
  std::int64_t start = 0;
  std::int64_t stop = 0;
  if (!parse_i64(cmd[2], start) || !parse_i64(cmd[3], stop))
    return RespValue::error("ERR value is not an integer");
  Entry* e = live(cmd[1]);
  if (!e) return RespValue::array_of({});
  if (!e->is_list) return wrong_type();

  const auto n = static_cast<std::int64_t>(e->list.size());
  if (start < 0) start = std::max<std::int64_t>(0, n + start);
  if (stop < 0) stop = n + stop;
  stop = std::min(stop, n - 1);
  net::RespArray items;
  for (std::int64_t i = start; i <= stop; ++i)
    items.push_back(RespValue::bulk(e->list[static_cast<std::size_t>(i)]));
  return RespValue::array_of(std::move(items));
}

net::RespValue KvEngine::cmd_llen(const std::vector<std::string>& cmd) {
  if (cmd.size() != 2) return wrong_args("llen");
  Entry* e = live(cmd[1]);
  if (!e) return RespValue::integer_of(0);
  if (!e->is_list) return wrong_type();
  return RespValue::integer_of(static_cast<std::int64_t>(e->list.size()));
}

net::RespValue KvEngine::cmd_ltrim(const std::vector<std::string>& cmd) {
  if (cmd.size() != 4) return wrong_args("ltrim");
  std::int64_t start = 0;
  std::int64_t stop = 0;
  if (!parse_i64(cmd[2], start) || !parse_i64(cmd[3], stop))
    return RespValue::error("ERR value is not an integer");
  Entry* e = live(cmd[1]);
  if (!e) return RespValue::simple("OK");
  if (!e->is_list) return wrong_type();

  const auto n = static_cast<std::int64_t>(e->list.size());
  if (start < 0) start = std::max<std::int64_t>(0, n + start);
  if (stop < 0) stop = n + stop;
  stop = std::min(stop, n - 1);
  if (start > stop) {
    data_.erase(cmd[1]);
    return RespValue::simple("OK");
  }
  std::deque<std::string> kept(
      e->list.begin() + static_cast<std::ptrdiff_t>(start),
      e->list.begin() + static_cast<std::ptrdiff_t>(stop + 1));
  e->list = std::move(kept);
  return RespValue::simple("OK");
}

net::RespValue KvEngine::cmd_keys(const std::vector<std::string>& cmd) {
  // Only the "*" pattern is supported (all the system uses).
  if (cmd.size() != 2) return wrong_args("keys");
  net::RespArray items;
  std::vector<std::string> keys;
  for (const auto& [k, _] : data_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  for (auto& k : keys) {
    if (cmd[1] == "*" || cmd[1] == k) items.push_back(RespValue::bulk(k));
  }
  return RespValue::array_of(std::move(items));
}

}  // namespace klb::store
