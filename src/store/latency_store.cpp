#include "store/latency_store.hpp"

#include <charconv>
#include <cstdio>

namespace klb::store {

std::string LatencySample::serialize() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s|%.6f|%u|%u|%u|%lld", dip.str().c_str(),
                avg_latency_ms, probes, errors, timeouts,
                static_cast<long long>(at.us()));
  return buf;
}

std::optional<LatencySample> LatencySample::parse(const std::string& s) {
  // Format: ip|latency|probes|errors|timeouts|time_us
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const auto bar = s.find('|', pos);
    if (bar == std::string::npos) {
      parts.push_back(s.substr(pos));
      break;
    }
    parts.push_back(s.substr(pos, bar - pos));
    pos = bar + 1;
  }
  if (parts.size() != 6) return std::nullopt;

  LatencySample out;
  const auto ip = net::IpAddr::parse(parts[0]);
  if (!ip) return std::nullopt;
  out.dip = *ip;

  char* end = nullptr;
  out.avg_latency_ms = std::strtod(parts[1].c_str(), &end);
  if (end == parts[1].c_str()) return std::nullopt;

  auto parse_u32 = [](const std::string& p, std::uint32_t& v) {
    const auto [ptr, ec] = std::from_chars(p.data(), p.data() + p.size(), v);
    return ec == std::errc{} && ptr == p.data() + p.size();
  };
  if (!parse_u32(parts[2], out.probes) || !parse_u32(parts[3], out.errors) ||
      !parse_u32(parts[4], out.timeouts))
    return std::nullopt;

  std::int64_t us = 0;
  const auto [ptr, ec] =
      std::from_chars(parts[5].data(), parts[5].data() + parts[5].size(), us);
  if (ec != std::errc{} || ptr != parts[5].data() + parts[5].size())
    return std::nullopt;
  out.at = util::SimTime::micros(us);
  return out;
}

std::string LatencyStore::key_for(net::IpAddr vip, net::IpAddr dip) {
  return "lat:" + vip.str() + ":" + dip.str();
}

void LatencyStore::record(net::IpAddr vip, const LatencySample& sample) {
  const auto key = key_for(vip, sample.dip);
  engine_->execute({"LPUSH", key, sample.serialize()});
  engine_->execute({"LTRIM", key, "0", std::to_string(history_ - 1)});
}

std::optional<LatencySample> LatencyStore::latest(net::IpAddr vip,
                                                  net::IpAddr dip) const {
  auto samples = recent(vip, dip, 1);
  if (samples.empty()) return std::nullopt;
  return samples.front();
}

bool LatencyStore::forget(net::IpAddr vip, net::IpAddr dip) {
  const auto result = engine_->execute({"DEL", key_for(vip, dip)});
  return result.type == net::RespValue::Type::kInteger && result.integer > 0;
}

std::vector<LatencySample> LatencyStore::recent(net::IpAddr vip,
                                                net::IpAddr dip,
                                                std::size_t n) const {
  const auto key = key_for(vip, dip);
  const auto result = engine_->execute(
      {"LRANGE", key, "0", std::to_string(n == 0 ? 0 : n - 1)});
  std::vector<LatencySample> out;
  if (result.type != net::RespValue::Type::kArray) return out;
  for (const auto& item : result.array) {
    if (auto s = LatencySample::parse(item.str)) out.push_back(*s);
  }
  return out;
}

}  // namespace klb::store
