// Redis-like key/value engine: the storage core of the latency store.
//
// Implements the command subset the system needs (strings, lists, TTLs)
// with RESP semantics. The engine is synchronous; KvServer exposes it over
// the simulated network via RESP, and LatencyStore wraps it with a typed
// schema. Expiry uses an injected clock so virtual time drives TTLs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/resp.hpp"
#include "util/sync.hpp"
#include "util/time.hpp"

namespace klb::store {

class KvEngine {
 public:
  using Clock = std::function<util::SimTime()>;

  explicit KvEngine(Clock clock) : clock_(std::move(clock)) {}

  /// Execute one command (already split into parts, e.g. {"LPUSH","k","v"}).
  /// Commands: PING, ECHO, SET (with optional EX seconds), GET, DEL, EXISTS,
  /// EXPIRE, TTL, LPUSH, RPUSH, LPOP, LRANGE, LLEN, LTRIM, KEYS, FLUSHALL,
  /// DBSIZE. Unknown commands return a RESP error, matching Redis.
  /// Thread-safe: the whole command executes under one engine lock
  /// (matching Redis's single command-processing thread).
  net::RespValue execute(const std::vector<std::string>& cmd)
      KLB_EXCLUDES(mu_);

  std::size_t key_count() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return data_.size();
  }

 private:
  struct Entry {
    bool is_list = false;
    std::string str;
    std::deque<std::string> list;
    util::SimTime expires = util::SimTime::max();
  };

  // Returns nullptr for missing or expired keys (expired keys are reaped).
  Entry* live(const std::string& key) KLB_REQUIRES(mu_);

  net::RespValue cmd_set(const std::vector<std::string>& cmd)
      KLB_REQUIRES(mu_);
  net::RespValue cmd_get(const std::vector<std::string>& cmd)
      KLB_REQUIRES(mu_);
  net::RespValue cmd_del(const std::vector<std::string>& cmd)
      KLB_REQUIRES(mu_);
  net::RespValue cmd_exists(const std::vector<std::string>& cmd)
      KLB_REQUIRES(mu_);
  net::RespValue cmd_expire(const std::vector<std::string>& cmd)
      KLB_REQUIRES(mu_);
  net::RespValue cmd_ttl(const std::vector<std::string>& cmd)
      KLB_REQUIRES(mu_);
  net::RespValue cmd_push(const std::vector<std::string>& cmd, bool left)
      KLB_REQUIRES(mu_);
  net::RespValue cmd_lpop(const std::vector<std::string>& cmd)
      KLB_REQUIRES(mu_);
  net::RespValue cmd_lrange(const std::vector<std::string>& cmd)
      KLB_REQUIRES(mu_);
  net::RespValue cmd_llen(const std::vector<std::string>& cmd)
      KLB_REQUIRES(mu_);
  net::RespValue cmd_ltrim(const std::vector<std::string>& cmd)
      KLB_REQUIRES(mu_);
  net::RespValue cmd_keys(const std::vector<std::string>& cmd)
      KLB_REQUIRES(mu_);

  Clock clock_;
  mutable util::Mutex mu_{"klb.store.kv"};
  std::unordered_map<std::string, Entry> data_ KLB_GUARDED_BY(mu_);
};

}  // namespace klb::store
