// Network front-end for the KvEngine: accepts RESP command messages and
// replies with RESP-encoded results, playing the role of the Azure Redis
// instance in Fig. 6. Malformed commands get RESP errors, like real Redis.
#pragma once

#include <memory>

#include "net/fabric.hpp"
#include "store/kv_engine.hpp"

namespace klb::store {

class KvServer : public net::Node {
 public:
  KvServer(net::Network& net, net::IpAddr addr,
           std::shared_ptr<KvEngine> engine)
      : net_(net), addr_(addr), engine_(std::move(engine)) {
    net_.attach(addr_, this);
  }

  ~KvServer() override { net_.attach(addr_, nullptr); }

  net::IpAddr address() const { return addr_; }
  KvEngine& engine() { return *engine_; }

  std::uint64_t commands_processed() const { return processed_; }

  void on_message(const net::Message& msg) override {
    if (msg.type != net::MsgType::kRespCommand) return;
    ++processed_;

    net::RespValue result;
    const auto decoded = net::resp_decode(msg.payload);
    if (!decoded || decoded->value.type != net::RespValue::Type::kArray) {
      result = net::RespValue::error("ERR Protocol error: expected array");
    } else {
      std::vector<std::string> parts;
      bool ok = true;
      for (const auto& item : decoded->value.array) {
        if (item.type != net::RespValue::Type::kBulkString) {
          ok = false;
          break;
        }
        parts.push_back(item.str);
      }
      result = ok ? engine_->execute(parts)
                  : net::RespValue::error(
                        "ERR Protocol error: expected bulk strings");
    }

    net::Message reply;
    reply.type = net::MsgType::kRespReply;
    reply.tuple = msg.tuple;
    reply.conn_id = msg.conn_id;
    reply.req_id = msg.req_id;
    reply.payload = net::resp_encode(result);
    net_.send(msg.tuple.src_ip, reply);
  }

 private:
  net::Network& net_;
  net::IpAddr addr_;
  std::shared_ptr<KvEngine> engine_;
  std::uint64_t processed_ = 0;
};

}  // namespace klb::store
