// Client-side latency accounting.
//
// Records per-request outcomes, overall and attributed per DIP (clients
// learn the serving DIP from the Server response header — purely an
// observability convenience; no component of KnapsackLB consumes it).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/address.hpp"
#include "util/stats.hpp"

namespace klb::workload {

class LatencyRecorder {
 public:
  void record_success(net::IpAddr dip, double latency_ms) {
    overall_.add(latency_ms);
    histogram_.add(latency_ms / 1e3);  // histogram works in seconds
    per_dip_[dip].add(latency_ms);
    latencies_.push_back(latency_ms);
  }

  void record_error(net::IpAddr dip) { ++errors_[dip]; }
  void record_timeout() { ++timeouts_; }

  const util::Welford& overall() const { return overall_; }
  double percentile_ms(double p) const { return histogram_.percentile(p) * 1e3; }

  const std::map<net::IpAddr, util::Welford>& per_dip() const {
    return per_dip_;
  }
  std::uint64_t errors() const {
    std::uint64_t total = 0;
    for (const auto& [_, n] : errors_) total += n;
    return total;
  }
  std::uint64_t errors_for(net::IpAddr dip) const {
    const auto it = errors_.find(dip);
    return it == errors_.end() ? 0 : it->second;
  }
  std::uint64_t timeouts() const { return timeouts_; }

  /// Raw per-request latencies (ms) in completion order — used for the
  /// "cuts latency by X% for Y% of requests" CDF comparisons.
  const std::vector<double>& raw_latencies_ms() const { return latencies_; }

  void reset() {
    overall_.reset();
    histogram_.reset();
    per_dip_.clear();
    errors_.clear();
    timeouts_ = 0;
    latencies_.clear();
  }

 private:
  util::Welford overall_;
  util::LogHistogram histogram_{1e-5, 1e2, 50};
  std::map<net::IpAddr, util::Welford> per_dip_;
  std::map<net::IpAddr, std::uint64_t> errors_;
  std::uint64_t timeouts_ = 0;
  std::vector<double> latencies_;
};

}  // namespace klb::workload
