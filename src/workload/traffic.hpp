// Time-varying offered load.
//
// A TrafficPattern is a piecewise-constant request rate (requests/sec over
// virtual time). §6.3's "+10% traffic" experiment is a two-piece pattern;
// steady-state benches use a single piece.
#pragma once

#include <algorithm>
#include <vector>

#include "util/time.hpp"

namespace klb::workload {

class TrafficPattern {
 public:
  /// Constant rate.
  explicit TrafficPattern(double rps) { pieces_.push_back({util::SimTime::zero(), rps}); }

  /// Piecewise: each piece applies from its start time until the next.
  /// Pieces must be sorted by start time; the first should start at 0.
  explicit TrafficPattern(std::vector<std::pair<util::SimTime, double>> pieces)
      : pieces_(std::move(pieces)) {}

  double rate_at(util::SimTime t) const {
    double rate = pieces_.empty() ? 0.0 : pieces_.front().second;
    for (const auto& [start, rps] : pieces_) {
      if (start <= t) rate = rps;
      else break;
    }
    return rate;
  }

  /// Scale every piece by `factor` (used to hit "x% of cluster capacity").
  void scale(double factor) {
    for (auto& [_, rps] : pieces_) rps *= factor;
  }

  void add_piece(util::SimTime start, double rps) {
    pieces_.emplace_back(start, rps);
    std::sort(pieces_.begin(), pieces_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

 private:
  std::vector<std::pair<util::SimTime, double>> pieces_;
};

}  // namespace klb::workload
