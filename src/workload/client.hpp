// Open-loop client population.
//
// One ClientPool stands in for the paper's 8 client VMs: sessions (TCP
// connections) arrive as a Poisson process at the TrafficPattern's rate
// divided by requests-per-session; each session issues its requests
// sequentially on one connection, then closes with a FIN. Arrivals are
// open-loop — a slow server does not slow the arrival rate, it builds
// queue — which is what makes overload visible as latency (§2.1).
//
// Targets: a VIP behind a Mux, or a DNS traffic manager (resolve-per-
// session with per-client TTL caching), matching §6.5's two integration
// modes.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "lb/dns_lb.hpp"
#include "net/fabric.hpp"
#include "net/http.hpp"
#include "workload/recorder.hpp"
#include "workload/traffic.hpp"

namespace klb::workload {

struct ClientConfig {
  /// Number of simulated client VMs (spread across source IPs).
  int client_ips = 8;
  /// Mean requests per connection (geometric, >= 1). >1 exercises
  /// connection affinity and §4.7 draining.
  double requests_per_session = 4.0;
  /// Per-request timeout; expiry counts as a timeout and aborts the session.
  util::SimTime request_timeout = util::SimTime::seconds(2);
  std::string url = "/work";
  /// Closed-loop cap: at most this many sessions in flight (0 = open
  /// loop). Arrivals beyond the cap defer until a session finishes --
  /// the fixed-concurrency behaviour of real load generators, which keeps
  /// overload latency finite the way the paper's clients did.
  std::uint64_t max_outstanding_sessions = 0;
};

class ClientPool : public net::Node {
 public:
  /// VIP mode: requests go to `vip` (the Mux).
  ClientPool(net::Network& net, net::IpAddr first_client_ip, net::IpAddr vip,
             TrafficPattern pattern, ClientConfig cfg = {});

  /// DNS mode: sessions resolve through the traffic manager and connect
  /// directly to the resolved DIP.
  ClientPool(net::Network& net, net::IpAddr first_client_ip,
             lb::DnsTrafficManager& dns, TrafficPattern pattern,
             ClientConfig cfg = {});

  ~ClientPool() override;

  void start();
  void stop();

  LatencyRecorder& recorder() { return recorder_; }
  const LatencyRecorder& recorder() const { return recorder_; }

  /// Replace the offered-load pattern (takes effect at the next arrival).
  void set_pattern(TrafficPattern pattern) { pattern_ = std::move(pattern); }

  std::uint64_t sessions_started() const { return sessions_started_; }
  std::uint64_t requests_sent() const { return requests_sent_; }

  // --- net::Node -------------------------------------------------------------
  void on_message(const net::Message& msg) override;

 private:
  struct Session {
    net::FiveTuple tuple;
    net::IpAddr target;        // VIP or resolved DIP
    std::uint64_t conn_id = 0;
    std::uint64_t requests_left = 0;
    std::uint64_t next_req_id = 1;
    util::SimTime sent_at = util::SimTime::zero();
    sim::EventId timeout_event = sim::kInvalidEvent;
  };

  /// The Simulation this pool's events live on: the owner shard of its
  /// client IPs under a sharded driver, the root sim otherwise. Arrival and
  /// timeout events are cancellable, so every schedule/cancel/clock read
  /// must go through this fixed binding — the caller-relative net_.sim()
  /// would scatter them across whichever shard happened to be executing.
  sim::Simulation& sim() { return net_.sim_for(first_ip_); }

  void schedule_next_arrival();
  void start_session();
  void send_request(Session& s);
  void finish_session(Session& s);
  void on_timeout(std::uint64_t conn_id);
  net::IpAddr pick_client_ip();

  net::Network& net_;
  net::IpAddr first_ip_;
  net::IpAddr vip_;
  lb::DnsTrafficManager* dns_ = nullptr;
  TrafficPattern pattern_;
  ClientConfig cfg_;
  util::Rng rng_;

  bool running_ = false;
  sim::EventId arrival_event_ = sim::kInvalidEvent;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::uint64_t next_conn_id_ = 1;
  std::uint16_t next_port_ = 10'000;
  int next_ip_offset_ = 0;
  std::uint64_t deferred_sessions_ = 0;

  LatencyRecorder recorder_;
  std::uint64_t sessions_started_ = 0;
  std::uint64_t requests_sent_ = 0;
};

}  // namespace klb::workload
