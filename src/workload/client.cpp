#include "workload/client.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace klb::workload {

ClientPool::ClientPool(net::Network& net, net::IpAddr first_client_ip,
                       net::IpAddr vip, TrafficPattern pattern,
                       ClientConfig cfg)
    : net_(net), first_ip_(first_client_ip), vip_(vip),
      pattern_(std::move(pattern)), cfg_(cfg), rng_(net.sim_for(first_client_ip).rng().fork()) {
  for (int i = 0; i < cfg_.client_ips; ++i)
    net_.attach(first_ip_.next(static_cast<std::uint32_t>(i)), this);
}

ClientPool::ClientPool(net::Network& net, net::IpAddr first_client_ip,
                       lb::DnsTrafficManager& dns, TrafficPattern pattern,
                       ClientConfig cfg)
    : net_(net), first_ip_(first_client_ip), dns_(&dns),
      pattern_(std::move(pattern)), cfg_(cfg), rng_(net.sim_for(first_client_ip).rng().fork()) {
  for (int i = 0; i < cfg_.client_ips; ++i)
    net_.attach(first_ip_.next(static_cast<std::uint32_t>(i)), this);
}

ClientPool::~ClientPool() {
  stop();
  for (int i = 0; i < cfg_.client_ips; ++i)
    net_.attach(first_ip_.next(static_cast<std::uint32_t>(i)), nullptr);
}

void ClientPool::start() {
  if (running_) return;
  running_ = true;
  schedule_next_arrival();
}

void ClientPool::stop() {
  running_ = false;
  if (arrival_event_ != sim::kInvalidEvent) {
    sim().cancel(arrival_event_);
    arrival_event_ = sim::kInvalidEvent;
  }
}

void ClientPool::schedule_next_arrival() {
  if (!running_) return;
  const double rps = pattern_.rate_at(sim().now());
  const double session_rate =
      rps / std::max(1.0, cfg_.requests_per_session);
  if (session_rate <= 0.0) {
    // No load right now: poll the pattern again shortly.
    arrival_event_ = sim().schedule_in(
        util::SimTime::millis(100), [this] { schedule_next_arrival(); });
    return;
  }
  const double gap_s = rng_.exponential(1.0 / session_rate);
  arrival_event_ =
      sim().schedule_in(util::SimTime::seconds(gap_s), [this] {
        start_session();
        schedule_next_arrival();
      });
}

net::IpAddr ClientPool::pick_client_ip() {
  const auto ip = first_ip_.next(static_cast<std::uint32_t>(next_ip_offset_));
  next_ip_offset_ = (next_ip_offset_ + 1) % std::max(1, cfg_.client_ips);
  return ip;
}

void ClientPool::start_session() {
  if (cfg_.max_outstanding_sessions > 0 &&
      sessions_.size() >= cfg_.max_outstanding_sessions) {
    ++deferred_sessions_;  // closed loop: wait for a slot
    return;
  }
  Session s;
  s.conn_id = next_conn_id_++;
  // Geometric with mean requests_per_session, support >= 1.
  const double p = 1.0 / std::max(1.0, cfg_.requests_per_session);
  std::uint64_t k = 1;
  while (!rng_.bernoulli(p) && k < 1000) ++k;
  s.requests_left = k;

  s.target = dns_ ? dns_->resolve_cached(s.conn_id % 64)  // ~64 cached stubs
                  : vip_;
  s.tuple.src_ip = pick_client_ip();
  s.tuple.dst_ip = dns_ ? s.target : vip_;
  s.tuple.src_port = next_port_;
  next_port_ = (next_port_ == 65'535) ? 10'000 : next_port_ + 1;
  s.tuple.dst_port = 80;

  ++sessions_started_;
  const auto conn_id = s.conn_id;
  sessions_.emplace(conn_id, s);
  send_request(sessions_.at(conn_id));
}

void ClientPool::send_request(Session& s) {
  net::HttpRequest http;
  http.method = "GET";
  http.target = cfg_.url;
  http.headers["Host"] = s.tuple.dst_ip.str();

  net::Message msg;
  msg.type = net::MsgType::kHttpRequest;
  msg.tuple = s.tuple;
  msg.conn_id = s.conn_id;
  msg.req_id = s.next_req_id++;
  msg.payload = http.serialize();

  s.sent_at = sim().now();
  ++requests_sent_;

  const auto conn_id = s.conn_id;
  s.timeout_event = sim().schedule_in(
      cfg_.request_timeout, [this, conn_id] { on_timeout(conn_id); });

  net_.send(s.target, msg);
}

void ClientPool::on_message(const net::Message& msg) {
  if (msg.type != net::MsgType::kHttpResponse) return;
  const auto it = sessions_.find(msg.conn_id);
  if (it == sessions_.end()) return;  // late response after timeout
  Session& s = it->second;

  if (s.timeout_event != sim::kInvalidEvent) {
    sim().cancel(s.timeout_event);
    s.timeout_event = sim::kInvalidEvent;
  }

  const auto latency = sim().now() - s.sent_at;
  const auto http = net::HttpResponse::parse(msg.payload);

  // Attribute the response to the DIP from the Server header.
  net::IpAddr dip;
  if (http) {
    const auto hdr = http->headers.find("Server");
    if (hdr != http->headers.end()) {
      const auto slash = hdr->second.find('/');
      if (slash != std::string::npos) {
        if (const auto a = net::IpAddr::parse(hdr->second.substr(slash + 1)))
          dip = *a;
      }
    }
  }

  if (http && http->ok()) {
    recorder_.record_success(dip, latency.ms());
  } else {
    recorder_.record_error(dip);
  }

  --s.requests_left;
  if (s.requests_left == 0 || !http || !http->ok()) {
    finish_session(s);
  } else {
    send_request(s);
  }
}

void ClientPool::finish_session(Session& s) {
  net::Message fin;
  fin.type = net::MsgType::kFin;
  fin.tuple = s.tuple;
  fin.conn_id = s.conn_id;
  // In DNS mode there is no MUX: the FIN goes straight to the DIP.
  net_.send(dns_ ? s.target : vip_, fin);
  sessions_.erase(s.conn_id);
  if (deferred_sessions_ > 0 && running_) {
    --deferred_sessions_;
    start_session();
  }
}

void ClientPool::on_timeout(std::uint64_t conn_id) {
  const auto it = sessions_.find(conn_id);
  if (it == sessions_.end()) return;
  it->second.timeout_event = sim::kInvalidEvent;
  recorder_.record_timeout();
  finish_session(it->second);
}

}  // namespace klb::workload
