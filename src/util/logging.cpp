#include "util/logging.hpp"

namespace klb::util {

LogLevel& log_threshold() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

}  // namespace klb::util
