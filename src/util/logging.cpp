#include "util/logging.hpp"

#include <atomic>
#include <iostream>

#include "util/sync.hpp"

namespace klb::util {

namespace {

std::atomic<LogLevel>& threshold_storage() {
  static std::atomic<LogLevel> level{LogLevel::kWarn};
  return level;
}

/// Serializes sink writes: worker threads warn concurrently with the sim
/// thread, and interleaved half-lines are worse than no log at all. Leaf
/// rank — log sites run under control/pick/round locks all over the tree,
/// so nothing may be acquired under it.
Mutex& sink_mutex() {
  static Mutex mu{"klb.log.sink"};
  return mu;
}

}  // namespace

LogLevel log_threshold() {
  return threshold_storage().load(std::memory_order_relaxed);
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

namespace detail {

void write_log_line(const std::string& line) {
  MutexLock lk(sink_mutex());
  std::clog << line;
}

}  // namespace detail

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

}  // namespace klb::util
