// Deterministic random number generation for the simulator.
//
// All stochastic behaviour in the library flows from a seeded Rng so that
// every experiment is reproducible from its printed seed. The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64 so that small
// integer seeds still produce well-mixed state.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace klb::util {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be used with
/// <random> distributions, though the built-in helpers below are preferred
/// for cross-platform determinism (libstdc++ distributions are not
/// guaranteed to produce identical streams across versions).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to expand the seed into 256 bits of state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t uniform_int(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Exponential with the given mean (mean = 1/rate).
  double exponential(double mean) {
    // Guard against log(0).
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (no cached spare: determinism over speed).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  /// Lognormal with given mean and coefficient of variation of the
  /// *resulting* distribution (handy for service-demand models).
  double lognormal_mean_cov(double mean, double cov) {
    if (cov <= 0.0) return mean;
    const double sigma2 = std::log(1.0 + cov * cov);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
  }

  /// true with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// Returns weights.size() when all weights are <= 0.
  template <typename Container>
  std::size_t weighted_index(const Container& weights) {
    double total = 0.0;
    for (double w : weights) total += (w > 0.0 ? w : 0.0);
    if (total <= 0.0) return weights.size();
    double x = uniform() * total;
    std::size_t i = 0;
    for (double w : weights) {
      if (w > 0.0) {
        x -= w;
        if (x < 0.0) return i;
      }
      ++i;
    }
    return weights.size() - 1;  // numeric edge: fall back to the last entry
  }

  /// Derive an independent child generator (for per-component streams).
  Rng fork() { return Rng(next()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace klb::util
