// Streaming statistics used throughout the simulator and the controller:
// Welford mean/variance, log-bucketed latency histograms with percentile
// queries, and windowed time-weighted utilization accounting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace klb::util {

/// Numerically stable streaming mean / variance / min / max (Welford).
class Welford {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = (n_ == 1) ? x : std::min(min_, x);
    max_ = (n_ == 1) ? x : std::max(max_, x);
  }

  /// Merge another accumulator (parallel Welford / Chan et al.).
  void merge(const Welford& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto n = n_ + o.n_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / static_cast<double>(n);
    mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    n_ = n;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = Welford{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Latency histogram with geometrically spaced buckets.
///
/// Buckets span [min_value, max_value] with `buckets_per_decade` buckets per
/// factor of 10, giving a bounded relative error on percentile queries
/// (~ +/- half a bucket width). Values outside the range clamp to the edge
/// buckets. Suited for request latencies spanning microseconds to seconds.
class LogHistogram {
 public:
  explicit LogHistogram(double min_value = 1e-6, double max_value = 1e2,
                        int buckets_per_decade = 50)
      : min_value_(min_value),
        log_min_(std::log10(min_value)),
        scale_(buckets_per_decade) {
    const int decades =
        static_cast<int>(std::ceil(std::log10(max_value / min_value)));
    counts_.assign(static_cast<std::size_t>(decades * buckets_per_decade) + 2,
                   0);
  }

  void add(double v) {
    ++total_;
    sum_ += v;
    counts_[index_of(v)]++;
  }

  std::uint64_t count() const { return total_; }
  double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }

  /// p in [0,1]; returns the representative value of the bucket containing
  /// the p-th quantile. p=0.5 -> median, p=0.99 -> P99.
  double percentile(double p) const {
    if (total_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(total_))));
    // Walk non-empty buckets only and remember the last one, so the rank
    // crossing always resolves to a bucket that holds samples at or before
    // it — never a later bucket (which would inflate tail percentiles,
    // e.g. after a merge() whose counts undercount total_).
    std::uint64_t seen = 0;
    std::size_t last_nonempty = counts_.size() - 1;
    bool any = false;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      last_nonempty = i;
      any = true;
      seen += counts_[i];
      if (seen >= rank) return bucket_mid(i);
    }
    return any ? bucket_mid(last_nonempty) : bucket_mid(counts_.size() - 1);
  }

  void merge(const LogHistogram& o) {
    // Only valid for identically configured histograms.
    for (std::size_t i = 0; i < counts_.size() && i < o.counts_.size(); ++i)
      counts_[i] += o.counts_[i];
    total_ += o.total_;
    sum_ += o.sum_;
  }

  void reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    sum_ = 0.0;
  }

 private:
  std::size_t index_of(double v) const {
    if (v <= min_value_) return 0;
    const double pos = (std::log10(v) - log_min_) * scale_;
    const auto idx = static_cast<std::size_t>(pos) + 1;
    return std::min(idx, counts_.size() - 1);
  }

  double bucket_mid(std::size_t i) const {
    if (i == 0) return min_value_;
    const double lo = log_min_ + static_cast<double>(i - 1) / scale_;
    return std::pow(10.0, lo + 0.5 / scale_);
  }

  double min_value_;
  double log_min_;
  double scale_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Time-weighted average of a step function (e.g. #busy cores over time).
/// Feed (time, new_value) transitions; query the average over [start, now].
class TimeWeighted {
 public:
  void set(double time, double value) {
    if (has_last_) {
      // Guard against non-monotonic time (clock skew between feeders):
      // a transition "before" the last one contributes no (negative) area
      // and does not move the clock backwards.
      if (time > last_time_) {
        area_ += last_value_ * (time - last_time_);
        last_time_ = time;
      }
    } else {
      start_ = time;
      last_time_ = time;
      has_last_ = true;
    }
    last_value_ = value;
  }

  /// Average value over [window_start, now]; `now` must be >= last set time.
  double average(double now) const {
    if (!has_last_ || now <= start_) return 0.0;
    const double area = area_ + last_value_ * (now - last_time_);
    return area / (now - start_);
  }

  double current() const { return last_value_; }

  /// Restart the averaging window at `time`, keeping the current value.
  void reset_window(double time) {
    start_ = time;
    last_time_ = time;
    area_ = 0.0;
  }

 private:
  bool has_last_ = false;
  double start_ = 0.0;
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double area_ = 0.0;
};

}  // namespace klb::util
