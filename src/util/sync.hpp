// Capability-annotated synchronization primitives: the one place the
// codebase's concurrency contracts are written down as *checked* code.
//
// Two enforcement layers share these types:
//
//   1. Clang Thread Safety Analysis (compile time). klb::util::Mutex is a
//      CAPABILITY, MutexLock a SCOPED_CAPABILITY, and the KLB_GUARDED_BY /
//      KLB_REQUIRES / KLB_EXCLUDES macros below annotate which state each
//      lock protects and which functions demand or forbid it. Clang builds
//      run with -Wthread-safety (see CMakeLists.txt; CI adds -Werror), so
//      touching a guarded field without its lock, calling a REQUIRES
//      helper bare, or double-acquiring a scoped lock fails the build.
//      The macros expand to nothing on GCC — zero cost, zero divergence.
//
//   2. The KLB_DEBUG_SYNC runtime validator (Debug builds, opt-in via
//      -DKLB_DEBUG_SYNC=ON). Every Mutex carries a *name* — its lock rank,
//      lockdep-style: all flow-table shard locks share one rank
//      "klb.flow.shard". Blocking acquisitions record (held -> acquired)
//      edges in a process-wide order graph and abort with a cycle report
//      the moment an acquisition would close a cycle — the ABBA deadlock
//      is caught on the first inverted acquire, not when two threads
//      finally interleave. try_lock successes record no edge (a trylock
//      cannot wait, so it can never complete a deadlock cycle) but still
//      participate in the held-set. Locks flagged kControlPlane
//      additionally assert they are never acquired while the calling
//      thread holds a live epoch pin (see lb/epoch.hpp) — the pin would
//      block the very reclamation the control plane is about to trigger.
//
// The canonical lock order this encodes (see README "Concurrency
// contracts"): control locks (mux/pool/testbed) -> pick -> shard, with
// epoch pins strictly outside all control capabilities.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/effects.hpp"

// --- Clang Thread Safety Analysis attribute macros -----------------------------
// Standard TSA spellings (see clang.llvm.org/docs/ThreadSafetyAnalysis).
// They compile away on non-clang compilers.
#if defined(__clang__)
#define KLB_TSA_ATTR(x) __attribute__((x))
#else
#define KLB_TSA_ATTR(x)
#endif

#define KLB_CAPABILITY(x) KLB_TSA_ATTR(capability(x))
#define KLB_SCOPED_CAPABILITY KLB_TSA_ATTR(scoped_lockable)
#define KLB_GUARDED_BY(x) KLB_TSA_ATTR(guarded_by(x))
#define KLB_PT_GUARDED_BY(x) KLB_TSA_ATTR(pt_guarded_by(x))
#define KLB_REQUIRES(...) KLB_TSA_ATTR(requires_capability(__VA_ARGS__))
#define KLB_ACQUIRE(...) KLB_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define KLB_RELEASE(...) KLB_TSA_ATTR(release_capability(__VA_ARGS__))
#define KLB_TRY_ACQUIRE(...) KLB_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define KLB_EXCLUDES(...) KLB_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define KLB_RETURN_CAPABILITY(x) KLB_TSA_ATTR(lock_returned(x))
#define KLB_NO_THREAD_SAFETY_ANALYSIS KLB_TSA_ATTR(no_thread_safety_analysis)

#ifndef KLB_DEBUG_SYNC
#define KLB_DEBUG_SYNC 0
#endif

namespace klb::util {

class Mutex;

/// Runtime-validator hooks (implemented in sync.cpp; only referenced when
/// KLB_DEBUG_SYNC is on). All state is thread-local plus one global order
/// graph; every function either passes or aborts the process with a
/// one-line report on stderr.
namespace sync_debug {
#if KLB_DEBUG_SYNC
/// Pre-block: record (held -> mu) order edges, abort on a cycle-forming or
/// same-rank acquire, and run the control-vs-pin check.
void before_lock(const Mutex& mu);
/// Post-acquire: push onto the calling thread's held stack.
void on_locked(const Mutex& mu);
/// Successful try_lock: held-stack push + control-vs-pin check, NO order
/// edges (a trylock never waits, so it cannot complete a deadlock cycle).
void on_try_locked(const Mutex& mu);
void on_unlock(const Mutex& mu);
/// Does the calling thread hold `mu` (this exact instance)?
bool holds(const Mutex& mu);
/// Epoch-pin accounting: `registered_control` is the domain's registered
/// control mutex (may be null). Aborts if the caller holds it (the pin
/// would block reclamation) or if the per-thread pin depth runs away.
void on_pin(const Mutex* registered_control);
void on_unpin();
[[noreturn]] void die(const char* what, const char* detail);
#endif
}  // namespace sync_debug

enum class LockFlags : unsigned {
  kNone = 0,
  /// Control-plane capability: must never be acquired (even by try_lock)
  /// while the calling thread holds a live epoch pin.
  kControlPlane = 1u << 0,
};

/// A std::mutex with a capability annotation, a lock rank (name), and
/// optional runtime order/invariant validation. The name is a lock
/// *class*: every instance sharing it (e.g. all flow-table shards) is one
/// rank in the order graph.
class KLB_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name, LockFlags flags = LockFlags::kNone)
      : name_(name), flags_(static_cast<unsigned>(flags)) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() KLB_ACQUIRE() {
#if KLB_DEBUG_SYNC
    sync_debug::before_lock(*this);
#endif
    mu_.lock();
#if KLB_DEBUG_SYNC
    sync_debug::on_locked(*this);
#endif
  }

  /// Nonblocking by construction: pthread unlock hands the mutex off (it
  /// may wake a waiter) but never sleeps. The effect analysis cannot see
  /// through the libc call, so the body is a documented escape — which is
  /// what lets RAII releases run inside KLB_NONBLOCKING lanes.
  void unlock() KLB_NONBLOCKING KLB_RELEASE() {
    KLB_EFFECT_ESCAPE("util.Mutex.unlock", {
#if KLB_DEBUG_SYNC
      sync_debug::on_unlock(*this);
#endif
      mu_.unlock();
    });
  }

  /// Nonblocking by construction: a trylock can fail but can never wait,
  /// so it is legal inside KLB_NONBLOCKING code (the opportunistic
  /// note_drain_empty sweep rests on this). Same documented-escape body as
  /// unlock() — the analysis cannot see through pthread_mutex_trylock.
  bool try_lock() KLB_NONBLOCKING KLB_TRY_ACQUIRE(true) {
    bool won = false;
    KLB_EFFECT_ESCAPE("util.Mutex.try_lock", {
      won = mu_.try_lock();
#if KLB_DEBUG_SYNC
      if (won) sync_debug::on_try_locked(*this);
#endif
    });
    return won;
  }

  const char* name() const { return name_; }
  bool is_control_plane() const {
    return (flags_ & static_cast<unsigned>(LockFlags::kControlPlane)) != 0;
  }

 private:
  std::mutex mu_;
  const char* name_;
  unsigned flags_;
};

/// Tag selecting MutexLock's try-lock constructor (std::try_to_lock
/// without dragging in <mutex> lock machinery at call sites).
struct TryToLock {};
inline constexpr TryToLock kTryToLock{};

/// RAII lock, annotated as a scoped capability (the drop-in replacement
/// for std::lock_guard on a klb::util::Mutex).
///
/// Two construction paths with different effect contracts:
///   - MutexLock lk(mu);            // blocking acquire — slow lanes only
///   - MutexLock lk(mu, kTryToLock);  // KLB_NONBLOCKING-legal trylock
/// The try path may not hold the lock: branch on the lock object
/// (`if (lk) ...` — the thread-safety analysis understands the boolean
/// conversion of a try-acquired scoped capability). The destructor
/// releases only what was acquired and is nonblocking either way.
class KLB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KLB_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  MutexLock(Mutex& mu, TryToLock) KLB_NONBLOCKING KLB_TRY_ACQUIRE(true, mu)
      : mu_(mu), held_(mu.try_lock()) {}
  ~MutexLock() KLB_NONBLOCKING KLB_RELEASE() {
    if (held_) mu_.unlock();
  }

  /// Did the try-lock constructor acquire the mutex? (Always true for the
  /// blocking constructor.)
  explicit operator bool() const KLB_NONBLOCKING { return held_; }
  bool held() const KLB_NONBLOCKING { return held_; }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable usable with Mutex. Deliberately no predicate
/// overload: the analysis treats lambda bodies as separate functions, so a
/// predicate reading guarded state would warn — callers loop explicitly
/// (`while (!cond) cv.wait(mu);`), which keeps every guarded read inside
/// the annotated function body.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and re-acquires it before returning
  /// (the re-acquire goes through Mutex::lock, so the runtime validator
  /// sees the same order edges a fresh acquisition would record).
  void wait(Mutex& mu) KLB_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace klb::util
