// Tiny command-line flag parser for the examples and bench harnesses.
// Supports --name=value and --name value forms plus boolean switches.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace klb::util {

class Flags {
 public:
  Flags(int argc, char** argv);

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get(const std::string& name, const std::string& def = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  /// Names that were provided but never queried — for catching typos.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace klb::util
