// Fixed-point LB weights.
//
// The controller, scheduler, and ILP all operate on weights from [0, 1].
// Accumulating doubles drifts (sum-to-1 checks fail), and the ILP needs an
// exact integer grid anyway, so weights are represented in units of
// 1/kWeightScale. 1e4 units gives 0.01% resolution -- finer than the finest
// grid the multi-step ILP ever requests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace klb::util {

inline constexpr std::int64_t kWeightScale = 10'000;

/// Round a real weight in [0,1] to grid units.
inline std::int64_t weight_to_units(double w) {
  return std::llround(std::clamp(w, 0.0, 1.0) * static_cast<double>(kWeightScale));
}

inline double units_to_weight(std::int64_t u) {
  return static_cast<double>(u) / static_cast<double>(kWeightScale);
}

/// Normalize a non-negative weight vector so the rounded units sum exactly
/// to `total` (kWeightScale by default; the maglev table passes its slot
/// count). Largest-remainder apportionment: deterministic and minimizes
/// total rounding error. All-zero input yields an equal split.
std::vector<std::int64_t> normalize_to_units(const std::vector<double>& weights,
                                             std::int64_t total = kWeightScale);

/// Convenience: normalize and return doubles that sum to exactly 1 in grid
/// units (each value is a multiple of 1/kWeightScale).
std::vector<double> normalize_weights(const std::vector<double>& weights);

}  // namespace klb::util
