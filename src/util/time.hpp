// Virtual time for the discrete-event simulator.
//
// SimTime is a strong type over integer microseconds. Integer time keeps
// event ordering exact (no float comparison hazards) and microsecond
// resolution comfortably covers sub-millisecond service latencies while
// allowing multi-day simulations within int64 range.
#pragma once

#include <cstdint>
#include <string>

namespace klb::util {

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{INT64_MAX}; }
  static constexpr SimTime micros(std::int64_t us) { return SimTime{us}; }
  static constexpr SimTime millis(double ms) {
    return SimTime{static_cast<std::int64_t>(ms * 1e3)};
  }
  static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr SimTime minutes(double m) { return seconds(m * 60.0); }

  constexpr std::int64_t us() const { return us_; }
  constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  constexpr double sec() const { return static_cast<double>(us_) / 1e6; }

  friend constexpr bool operator==(SimTime a, SimTime b) {
    return a.us_ == b.us_;
  }
  friend constexpr bool operator!=(SimTime a, SimTime b) {
    return a.us_ != b.us_;
  }
  friend constexpr bool operator<(SimTime a, SimTime b) {
    return a.us_ < b.us_;
  }
  friend constexpr bool operator<=(SimTime a, SimTime b) {
    return a.us_ <= b.us_;
  }
  friend constexpr bool operator>(SimTime a, SimTime b) {
    return a.us_ > b.us_;
  }
  friend constexpr bool operator>=(SimTime a, SimTime b) {
    return a.us_ >= b.us_;
  }

  constexpr SimTime operator+(SimTime o) const { return SimTime{us_ + o.us_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{us_ - o.us_}; }
  constexpr SimTime& operator+=(SimTime o) {
    us_ += o.us_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    us_ -= o.us_;
    return *this;
  }
  constexpr SimTime operator*(double k) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(us_) * k)};
  }

  std::string str() const {
    const double s = sec();
    if (s >= 1.0) return std::to_string(s) + "s";
    return std::to_string(ms()) + "ms";
  }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

namespace literals {
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::micros(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::millis(static_cast<double>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::seconds(static_cast<double>(v));
}
}  // namespace literals

}  // namespace klb::util
