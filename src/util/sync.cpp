// KLB_DEBUG_SYNC runtime validator: lock-order graph + epoch-pin
// accounting (see util/sync.hpp for the model). Compiled to nothing when
// the flag is off.
#include "util/sync.hpp"

#if KLB_DEBUG_SYNC

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace klb::util::sync_debug {

namespace {

/// Locks the calling thread currently holds, acquisition order.
thread_local std::vector<const Mutex*> t_held;
/// Live epoch pins on the calling thread (across all domains).
thread_local int t_pins = 0;

/// A thread may legitimately hold a packet-path pin plus an inline-GC pin;
/// anything past this is a leak (e.g. a Guard that never releases).
constexpr int kMaxPinDepth = 8;

/// The global lock-order graph, keyed by lock rank (Mutex::name). Guarded
/// by a raw std::mutex: the validator must not instrument itself.
std::mutex g_graph_mu;
std::map<std::string, std::set<std::string>>& graph() {
  static auto* g = new std::map<std::string, std::set<std::string>>();
  return *g;
}

/// Per-thread cache of edges already in the graph, so a warm hot path
/// stops taking g_graph_mu entirely.
thread_local std::set<std::pair<std::string, std::string>> t_seen;

/// DFS: is `target` reachable from `cur`? On success `path` holds the
/// ranks from `cur` to `target` inclusive. Caller holds g_graph_mu.
bool reaches(const std::string& cur, const std::string& target,
             std::set<std::string>& visited, std::vector<std::string>& path) {
  path.push_back(cur);
  if (cur == target) return true;
  if (visited.insert(cur).second) {
    const auto it = graph().find(cur);
    if (it != graph().end()) {
      for (const auto& next : it->second)
        if (reaches(next, target, visited, path)) return true;
    }
  }
  path.pop_back();
  return false;
}

void check_control_vs_pin(const Mutex& mu) {
  if (mu.is_control_plane() && t_pins > 0) {
    std::string detail = "acquiring control-plane lock \"";
    detail += mu.name();
    detail += "\" while holding " + std::to_string(t_pins) +
              " live epoch pin(s); the pin would block the reclamation "
              "this lock's critical section can trigger";
    die("epoch invariant violation", detail.c_str());
  }
}

/// Record `from -> to`, aborting if the reverse direction is already
/// reachable (the acquire now in progress would close a wait cycle).
void record_edge(const Mutex& from_mu, const Mutex& to_mu) {
  const std::string from = from_mu.name();
  const std::string to = to_mu.name();
  if (t_seen.count({from, to}) != 0) return;
  std::lock_guard<std::mutex> lk(g_graph_mu);
  auto& out = graph()[from];
  if (out.count(to) == 0) {
    std::set<std::string> visited;
    std::vector<std::string> path;
    if (reaches(to, from, visited, path)) {
      // path = to -> ... -> from; appending `to` prints the full cycle.
      std::string detail = "acquiring \"" + to + "\" while holding \"" + from +
                           "\" closes cycle: ";
      for (const auto& rank : path) detail += rank + " -> ";
      detail += to;
      die("lock-order violation", detail.c_str());
    }
    out.insert(to);
  }
  t_seen.insert({from, to});
}

}  // namespace

void before_lock(const Mutex& mu) {
  check_control_vs_pin(mu);
  for (const Mutex* held : t_held) {
    if (std::string(held->name()) == mu.name()) {
      std::string detail = "acquiring \"" + std::string(mu.name()) +
                           "\" while already holding a lock of the same "
                           "rank (self-deadlock, or unordered same-rank "
                           "nesting between instances)";
      die("lock-order violation", detail.c_str());
    }
  }
  for (const Mutex* held : t_held) record_edge(*held, mu);
}

void on_locked(const Mutex& mu) { t_held.push_back(&mu); }

void on_try_locked(const Mutex& mu) {
  check_control_vs_pin(mu);
  t_held.push_back(&mu);
}

void on_unlock(const Mutex& mu) {
  // Search from the back: releases are almost always LIFO, but manual
  // try_lock/unlock pairs (Mux::note_drain_empty) may interleave.
  const auto it = std::find(t_held.rbegin(), t_held.rend(), &mu);
  if (it == t_held.rend()) {
    std::string detail =
        "releasing \"" + std::string(mu.name()) + "\" which this thread does not hold";
    die("lock discipline violation", detail.c_str());
  }
  t_held.erase(std::next(it).base());
}

bool holds(const Mutex& mu) {
  return std::find(t_held.begin(), t_held.end(), &mu) != t_held.end();
}

void on_pin(const Mutex* registered_control) {
  if (registered_control != nullptr && holds(*registered_control)) {
    std::string detail = "pinning an epoch domain while holding its "
                         "control-plane lock \"";
    detail += registered_control->name();
    detail += "\"; retiring under this pin could never reclaim";
    die("epoch invariant violation", detail.c_str());
  }
  if (++t_pins > kMaxPinDepth) {
    die("epoch invariant violation",
        "per-thread pin depth exceeded (a Guard is leaking, or pins are "
        "recursing)");
  }
}

void on_unpin() {
  if (--t_pins < 0)
    die("epoch invariant violation", "unpin without a matching pin");
}

[[noreturn]] void die(const char* what, const char* detail) {
  std::fprintf(stderr, "[klb-sync] FATAL %s: %s\n", what, detail);
  std::fflush(stderr);
  std::abort();
}

}  // namespace klb::util::sync_debug

#endif  // KLB_DEBUG_SYNC
