// Minimal leveled logger. Components log through a shared sink; benches and
// tests can raise the threshold to keep output clean, examples can lower it
// to narrate what the controller is doing.
//
// Thread-safety: the threshold is an atomic (benches flip it around
// multi-threaded phases while workers hit warn paths), and sink writes are
// serialized so concurrent lines never tear. A LogLine samples the
// threshold once at construction and buffers locally; only the final
// one-call flush takes the sink lock.
#pragma once

#include <sstream>
#include <string>

namespace klb::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold (relaxed atomic read).
LogLevel log_threshold();
/// Set the process-wide threshold. Safe from any thread; lines already
/// being built keep the threshold they sampled at construction.
void set_log_threshold(LogLevel level);

const char* log_level_name(LogLevel level);

namespace detail {

/// Write one complete line to the shared sink, serialized against
/// concurrent writers (implemented in logging.cpp).
void write_log_line(const std::string& line);

class LogLine {
 public:
  LogLine(LogLevel level, const char* component)
      : enabled_(level >= log_threshold()) {
    if (enabled_)
      stream_ << "[" << log_level_name(level) << "] " << component << ": ";
  }
  ~LogLine() {
    if (enabled_) {
      stream_ << '\n';
      write_log_line(stream_.str());
    }
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug(const char* component) {
  return detail::LogLine(LogLevel::kDebug, component);
}
inline detail::LogLine log_info(const char* component) {
  return detail::LogLine(LogLevel::kInfo, component);
}
inline detail::LogLine log_warn(const char* component) {
  return detail::LogLine(LogLevel::kWarn, component);
}
inline detail::LogLine log_error(const char* component) {
  return detail::LogLine(LogLevel::kError, component);
}

}  // namespace klb::util
