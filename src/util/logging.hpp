// Minimal leveled logger. Components log through a shared sink; benches and
// tests can raise the threshold to keep output clean, examples can lower it
// to narrate what the controller is doing.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace klb::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold. Not thread-safe by design: the simulator is
/// single-threaded and benches set this once at startup.
LogLevel& log_threshold();

const char* log_level_name(LogLevel level);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* component) : level_(level) {
    stream_ << "[" << log_level_name(level) << "] " << component << ": ";
  }
  ~LogLine() {
    if (level_ >= log_threshold()) {
      stream_ << '\n';
      std::clog << stream_.str();
    }
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_threshold()) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug(const char* component) {
  return detail::LogLine(LogLevel::kDebug, component);
}
inline detail::LogLine log_info(const char* component) {
  return detail::LogLine(LogLevel::kInfo, component);
}
inline detail::LogLine log_warn(const char* component) {
  return detail::LogLine(LogLevel::kWarn, component);
}
inline detail::LogLine log_error(const char* component) {
  return detail::LogLine(LogLevel::kError, component);
}

}  // namespace klb::util
