// Escape-site registry for KLB_EFFECT_ESCAPE (see util/effects.hpp).
//
// The registry must itself satisfy the contracts it audits: note_escape()
// runs inside annotated hot-path functions (debug builds), so it is a
// fixed-capacity lock-free table of interned site names — no heap, no
// locks, a bounded scan of <= kMaxSites atomic slots.
#include "util/effects.hpp"

#include <atomic>
#include <cstring>

namespace klb::util::effects {

namespace {

/// Fixed capacity: comfortably above kDocumentedEscapeCount so even a
/// misbehaving build (many undocumented sites) is fully recorded for the
/// test to report rather than silently truncated.
constexpr std::size_t kMaxSites = 64;

std::atomic<const char*> g_sites[kMaxSites];

bool same_site(const char* a, const char* b) {
  return a == b || std::strcmp(a, b) == 0;
}

}  // namespace

bool site_documented(const char* site) {
  for (std::size_t i = 0; i < kDocumentedEscapeCount; ++i)
    if (same_site(kDocumentedEscapeSites[i], site)) return true;
  return false;
}

void note_escape(const char* site) {
  for (std::size_t i = 0; i < kMaxSites; ++i) {
    const char* cur = g_sites[i].load(std::memory_order_acquire);
    if (cur == nullptr) {
      if (g_sites[i].compare_exchange_strong(cur, site,
                                             std::memory_order_acq_rel))
        return;
      // Lost the race: `cur` now holds the winner — fall through to the
      // duplicate check against it.
    }
    if (same_site(cur, site)) return;
  }
  // Table full: drop. kMaxSites is sized so this means dozens of distinct
  // undocumented sites — the documented-escapes test has long since failed.
}

std::size_t escape_sites(const char** out, std::size_t cap) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < kMaxSites; ++i) {
    const char* cur = g_sites[i].load(std::memory_order_acquire);
    if (cur == nullptr) break;  // slots fill front-to-back
    if (n < cap) out[n] = cur;
    ++n;
  }
  return n;
}

}  // namespace klb::util::effects
