#include "util/weight.hpp"

#include <numeric>

namespace klb::util {

std::vector<std::int64_t> normalize_to_units(const std::vector<double>& weights,
                                              std::int64_t total) {
  const std::size_t n = weights.size();
  std::vector<std::int64_t> units(n, 0);
  if (n == 0 || total <= 0) return units;

  double sum = 0.0;
  for (double w : weights) sum += (w > 0.0 ? w : 0.0);

  if (sum <= 0.0) {
    // Equal split with the leftover spread over the first few entries.
    const std::int64_t base = total / static_cast<std::int64_t>(n);
    std::int64_t rem = total - base * static_cast<std::int64_t>(n);
    for (std::size_t i = 0; i < n; ++i)
      units[i] = base + (static_cast<std::int64_t>(i) < rem ? 1 : 0);
    return units;
  }

  // Largest remainder method.
  std::vector<double> exact(n);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    exact[i] = w / sum * static_cast<double>(total);
    units[i] = static_cast<std::int64_t>(exact[i]);  // floor
    assigned += units[i];
  }
  std::int64_t leftover = total - assigned;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ra = exact[a] - static_cast<double>(units[a]);
    const double rb = exact[b] - static_cast<double>(units[b]);
    if (ra != rb) return ra > rb;
    return a < b;  // deterministic tie-break
  });
  for (std::size_t k = 0; leftover > 0 && k < n; ++k, --leftover)
    units[order[k]] += 1;

  return units;
}

std::vector<double> normalize_weights(const std::vector<double>& weights) {
  const auto units = normalize_to_units(weights);
  std::vector<double> out(units.size());
  for (std::size_t i = 0; i < units.size(); ++i)
    out[i] = units_to_weight(units[i]);
  return out;
}

}  // namespace klb::util
