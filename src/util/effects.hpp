// Hot-path effect contracts: the compile-time counterpart of the paper's
// "the packet path is the scalability budget" argument.
//
// PR 7 made the *locking* model checked code (util/sync.hpp); this header
// does the same for *effects*. A function annotated KLB_NONBLOCKING must
// never block (no mutex acquire, no syscall that sleeps) and, by
// implication, never allocate; KLB_NONALLOCATING is the weaker contract —
// taking a carved-out slow-lane lock is legal, touching the heap is not.
// Both map onto Clang 20's function-effects attributes
// ([[clang::nonblocking]] / [[clang::nonallocating]], verified by
// -Wfunction-effects; see clang.llvm.org/docs/FunctionEffectAnalysis.html)
// and expand to nothing on GCC and older clang — zero cost, zero
// divergence, exactly like the TSA macros.
//
// Enforcement is two-pronged:
//
//   1. Compile time: clang >= 20 builds run -Wfunction-effects (CI adds
//      -Werror), so a stray std::vector temporary, shared_ptr copy, or
//      blocking MutexLock inside an annotated lane fails the build. The
//      negative-compilation suite (tests/negative_compile/effect_*.cpp)
//      pins the analysis the same way the TSA cases pin -Wthread-safety.
//
//   2. Run time: a RealtimeSanitizer CI job (-fsanitize=realtime) drives
//      bench_mux_hotpath and flow_table_test. RTSan enters a "realtime
//      context" at every [[clang::nonblocking]] function and aborts on
//      malloc/lock/syscall anywhere downstream — including through the
//      type-erased calls (std::function taps, virtual picks) the static
//      analysis cannot see through.
//
// KLB_EFFECT_ESCAPE(site, stmt...) is the one sanctioned hole: it
// suppresses the static diagnostic, suspends RTSan for the enclosed
// statements, and (in debug builds) records `site` in a process-wide
// registry. Every site must be listed in kDocumentedEscapeSites below and
// justified in README "Hot-path effect contracts"; sync_debug_test asserts
// the registry never sees an undocumented site, so an escape cannot be
// added quietly.
#pragma once

#include <cstddef>

// --- Clang 20 function-effects attribute macros -------------------------------
// The attributes are part of the function *type* and are spelled after the
// parameter list (like noexcept): `void f() KLB_NONBLOCKING;`. When a
// declaration also carries TSA attributes, put the effect macro first:
// `bool try_lock() KLB_NONBLOCKING KLB_TRY_ACQUIRE(true);`.
#if defined(__clang__) && __clang_major__ >= 20
#define KLB_HAS_FUNCTION_EFFECTS 1
#define KLB_NONBLOCKING [[clang::nonblocking]]
#define KLB_NONALLOCATING [[clang::nonallocating]]
#define KLB_EFFECTS_SUPPRESS_BEGIN \
  _Pragma("clang diagnostic push") \
      _Pragma("clang diagnostic ignored \"-Wfunction-effects\"")
#define KLB_EFFECTS_SUPPRESS_END _Pragma("clang diagnostic pop")
#else
#define KLB_HAS_FUNCTION_EFFECTS 0
#define KLB_NONBLOCKING
#define KLB_NONALLOCATING
#define KLB_EFFECTS_SUPPRESS_BEGIN
#define KLB_EFFECTS_SUPPRESS_END
#endif

// RTSan is active iff this TU was compiled with -fsanitize=realtime.
#if defined(__has_feature)
#if __has_feature(realtime_sanitizer)
#include <sanitizer/rtsan_interface.h>
#define KLB_EFFECTS_RTSAN 1
#endif
#endif
#ifndef KLB_EFFECTS_RTSAN
#define KLB_EFFECTS_RTSAN 0
#endif

// The escape registry runs in debug builds only: Release hot paths must
// not pay for bookkeeping, and the registry's consumer (sync_debug_test's
// documented-escapes assertion) runs in the Debug CI lanes.
#ifndef KLB_EFFECTS_REGISTRY
#ifdef NDEBUG
#define KLB_EFFECTS_REGISTRY 0
#else
#define KLB_EFFECTS_REGISTRY 1
#endif
#endif

namespace klb::util::effects {

/// Every sanctioned KLB_EFFECT_ESCAPE site, by name. Adding an escape means
/// adding it here AND to the README's justification table; the debug-build
/// registry + sync_debug_test reject any site not on this list. Keep the
/// names stable — they are the audit trail for "where may the packet path
/// still block or allocate, and why".
inline constexpr const char* kDocumentedEscapeSites[] = {
    // util/sync.hpp — pthread trylock/unlock never sleep, but the analysis
    // cannot see through the libc call; nonblocking by construction.
    "util.Mutex.try_lock",
    "util.Mutex.unlock",
    // lb/epoch.cpp — first pin on a thread seeds its slot hint from the
    // thread id (TLS + pthread_self); later pins are pure CAS.
    "epoch.pin_seed",
    // lb/epoch.cpp — all 64 slots busy: yield and rescan. Only reachable
    // with >64 concurrently pinned threads.
    "epoch.pin_stall",
    // lb/flow_table.cpp — the carved-out slow lane: one shard lock per
    // contiguous run of a grouped batch.
    "flow.shard_lock",
    // lb/flow_table.cpp — per-thread grouping scratch grows once per
    // high-water mark (first oversized batch on a thread), then is reused.
    "flow.scratch_grow",
    // lb/mux.cpp — pinning a new flow inserts a FlowTable map node (one
    // allocation per *connection*, not per packet) under the shard lock.
    "flow.pin_insert",
    // lb/mux.cpp — stage D: the one pick_mutex_ acquire per burst, plus
    // the policy pick under it (policies may rebuild caches).
    "mux.pick",
    // lb/mux.cpp — LC-family view refresh on FIN takes pick_mutex_.
    "mux.release_pick_refresh",
    // lb/mux.cpp — opportunistic drain sweep: control_mutex_ try-lock
    // succeeded, the sweep itself is control-plane code.
    "mux.drain_sweep",
    // lb/mux.cpp — budgeted GC sweep hoisted off the per-packet path; runs
    // at most once per gc-interval and takes shard locks.
    "mux.maybe_gc",
    // lb/policy.cpp — usable-index cache rebuild after invalidate(); a
    // steady-state pick takes the cached branch.
    "policy.usable_rebuild",
    // lb/maglev.cpp — lazy table / id-index rebuild after invalidate();
    // published generations are prepared eagerly and never hit this.
    "policy.maglev_rebuild",
    // net/fabric.cpp — the observation tap is a type-erased std::function
    // installed by benches; the default (none) is a single atomic load.
    "fabric.tap",
    // net/fabric.cpp — post-staging enqueue tail: copies the burst onto
    // the event queue / cross-shard mailbox. Blackhole-mode benches (the
    // packet-path rate measurements) never reach it.
    "fabric.enqueue",
};

inline constexpr std::size_t kDocumentedEscapeCount =
    sizeof(kDocumentedEscapeSites) / sizeof(kDocumentedEscapeSites[0]);

/// True when `site` appears in kDocumentedEscapeSites (string compare, so
/// it works across TU-distinct literals).
bool site_documented(const char* site);

/// Record that `site` executed (idempotent; lock-free and allocation-free
/// so it is legal inside the very lanes it audits). Undocumented sites are
/// still recorded — the test asserts they never appear.
void note_escape(const char* site);

/// Snapshot the distinct sites recorded so far into `out` (up to `cap`);
/// returns how many there are in total.
std::size_t escape_sites(const char** out, std::size_t cap);

constexpr bool registry_enabled() { return KLB_EFFECTS_REGISTRY != 0; }

/// RAII body of KLB_EFFECT_ESCAPE: suspends RTSan's realtime context for
/// the enclosed statements and (debug builds) records the site. In a
/// Release build without RTSan this compiles to nothing.
class ScopedEffectEscape {
 public:
  explicit ScopedEffectEscape(const char* site) {
#if KLB_EFFECTS_RTSAN
    __rtsan_disable();
#endif
#if KLB_EFFECTS_REGISTRY
    note_escape(site);
#else
    (void)site;
#endif
  }
  ~ScopedEffectEscape() {
#if KLB_EFFECTS_RTSAN
    __rtsan_enable();
#endif
  }
  ScopedEffectEscape(const ScopedEffectEscape&) = delete;
  ScopedEffectEscape& operator=(const ScopedEffectEscape&) = delete;
};

}  // namespace klb::util::effects

/// The sanctioned hole in an effect contract. `site` is a string literal
/// that must appear in kDocumentedEscapeSites; the remaining arguments are
/// the statements to exempt (braces welcome — commas are handled).
/// Declarations inside do not outlive the escape: assign to variables
/// declared before it when a result must cross the boundary.
#define KLB_EFFECT_ESCAPE(site, ...)                                  \
  do {                                                                \
    KLB_EFFECTS_SUPPRESS_BEGIN                                        \
    ::klb::util::effects::ScopedEffectEscape klb_effects_scope{site}; \
    __VA_ARGS__;                                                      \
    KLB_EFFECTS_SUPPRESS_END                                          \
  } while (0)
