#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace klb::lp {

namespace {

constexpr double kEps = 1e-9;

/// Dense tableau with rows [0..m): constraint rows, plus a cost row.
/// Column layout: [0, n) structural, [n, n+s) slack/surplus,
/// [n+s, n+s+a) artificial, last column = rhs.
class Tableau {
 public:
  Tableau(const Problem& p, const SolveOptions& opt) : problem_(p), opt_(opt) {}

  Status build() {
    const auto m = problem_.rows.size();
    n_ = static_cast<std::size_t>(problem_.num_vars);

    // Count slack and artificial columns.
    slacks_ = 0;
    artificials_ = 0;
    for (const auto& row : problem_.rows) {
      if (row.rel != Relation::kEq) ++slacks_;
      // >= and = rows need artificials; <= rows with negative rhs do too,
      // but we normalize rhs >= 0 first (flipping the relation).
    }

    cols_ = n_ + slacks_;  // artificials appended after normalization pass
    rows_count_ = m;

    // Normalize rows to rhs >= 0 and decide artificials.
    norm_rel_.resize(m);
    std::vector<double> rhs(m);
    std::size_t next_slack = 0;
    slack_col_.assign(m, SIZE_MAX);
    sign_.assign(m, 1.0);
    for (std::size_t i = 0; i < m; ++i) {
      Relation rel = problem_.rows[i].rel;
      double b = problem_.rows[i].rhs;
      double sign = 1.0;
      if (b < 0) {
        sign = -1.0;
        b = -b;
        if (rel == Relation::kLe)
          rel = Relation::kGe;
        else if (rel == Relation::kGe)
          rel = Relation::kLe;
      }
      sign_[i] = sign;
      norm_rel_[i] = rel;
      rhs[i] = b;
      if (problem_.rows[i].rel != Relation::kEq)
        slack_col_[i] = n_ + next_slack++;
      if (rel != Relation::kLe) ++artificials_;
    }

    total_cols_ = n_ + slacks_ + artificials_ + 1;  // +1 rhs
    const std::size_t bytes = (m + 1) * total_cols_ * sizeof(double);
    if (bytes > opt_.max_tableau_bytes) return Status::kMemLimit;

    t_.assign((m + 1) * total_cols_, 0.0);
    basis_.assign(m, SIZE_MAX);

    std::size_t next_art = n_ + slacks_;
    for (std::size_t i = 0; i < m; ++i) {
      double* row = row_ptr(i);
      for (const auto& [var, coeff] : problem_.rows[i].terms) {
        if (var >= 0 && static_cast<std::size_t>(var) < n_)
          row[static_cast<std::size_t>(var)] += sign_[i] * coeff;
      }
      row[total_cols_ - 1] = rhs[i];
      if (slack_col_[i] != SIZE_MAX) {
        // After normalization: <= gets +1 slack (basic), >= gets -1 surplus.
        row[slack_col_[i]] = (norm_rel_[i] == Relation::kLe) ? 1.0 : -1.0;
      }
      if (norm_rel_[i] == Relation::kLe) {
        basis_[i] = slack_col_[i];
      } else {
        row[next_art] = 1.0;
        basis_[i] = next_art;
        ++next_art;
      }
    }
    art_begin_ = n_ + slacks_;
    art_end_ = next_art;
    return Status::kOptimal;
  }

  /// Phase 1: minimize the sum of artificials.
  Status phase1(std::int64_t& iters) {
    if (art_begin_ == art_end_) return Status::kOptimal;  // all-slack basis
    double* cost = row_ptr(rows_count_);
    std::fill(cost, cost + total_cols_, 0.0);
    for (std::size_t c = art_begin_; c < art_end_; ++c) cost[c] = 1.0;
    // Price out the basic artificials.
    for (std::size_t i = 0; i < rows_count_; ++i) {
      if (basis_[i] >= art_begin_ && basis_[i] < art_end_) {
        const double* row = row_ptr(i);
        for (std::size_t c = 0; c < total_cols_; ++c) cost[c] -= row[c];
      }
    }
    const Status st = iterate(iters, /*restrict_cols=*/art_end_);
    if (st != Status::kOptimal) return st;
    if (cost[total_cols_ - 1] < -1e-7) return Status::kInfeasible;

    // Pivot any remaining basic artificials out (degenerate rows).
    for (std::size_t i = 0; i < rows_count_; ++i) {
      if (basis_[i] < art_begin_ || basis_[i] >= art_end_) continue;
      const double* row = row_ptr(i);
      std::size_t enter = SIZE_MAX;
      for (std::size_t c = 0; c < art_begin_; ++c) {
        if (std::fabs(row[c]) > kEps) {
          enter = c;
          break;
        }
      }
      if (enter == SIZE_MAX) continue;  // redundant row; artificial stays 0
      pivot(i, enter);
    }
    return Status::kOptimal;
  }

  /// Phase 2: minimize the true objective (artificial columns frozen).
  Status phase2(std::int64_t& iters) {
    double* cost = row_ptr(rows_count_);
    std::fill(cost, cost + total_cols_, 0.0);
    for (std::size_t c = 0; c < n_ && c < problem_.objective.size(); ++c)
      cost[c] = problem_.objective[c];
    // Price out basic variables.
    for (std::size_t i = 0; i < rows_count_; ++i) {
      const std::size_t b = basis_[i];
      if (b < n_ && b < problem_.objective.size() &&
          std::fabs(problem_.objective[b]) > 0.0) {
        const double f = problem_.objective[b];
        const double* row = row_ptr(i);
        for (std::size_t c = 0; c < total_cols_; ++c) cost[c] -= f * row[c];
      }
    }
    return iterate(iters, /*restrict_cols=*/art_begin_);
  }

  std::vector<double> extract() const {
    std::vector<double> x(n_, 0.0);
    for (std::size_t i = 0; i < rows_count_; ++i) {
      if (basis_[i] < n_) x[basis_[i]] = row_cptr(i)[total_cols_ - 1];
    }
    return x;
  }

  double objective_value() const {
    double v = 0.0;
    const auto x = extract();
    for (std::size_t c = 0; c < n_ && c < problem_.objective.size(); ++c)
      v += problem_.objective[c] * x[c];
    return v;
  }

 private:
  double* row_ptr(std::size_t r) { return &t_[r * total_cols_]; }
  const double* row_cptr(std::size_t r) const { return &t_[r * total_cols_]; }

  bool deadline_passed() const {
    return opt_.deadline &&
           std::chrono::steady_clock::now() > *opt_.deadline;
  }

  void pivot(std::size_t prow, std::size_t pcol) {
    double* pr = row_ptr(prow);
    const double pv = pr[pcol];
    for (std::size_t c = 0; c < total_cols_; ++c) pr[c] /= pv;
    for (std::size_t r = 0; r <= rows_count_; ++r) {
      if (r == prow) continue;
      double* row = row_ptr(r);
      const double f = row[pcol];
      if (std::fabs(f) < 1e-13) continue;
      for (std::size_t c = 0; c < total_cols_; ++c) row[c] -= f * pr[c];
      row[pcol] = 0.0;  // cancel residual rounding
    }
    basis_[prow] = pcol;
  }

  /// Simplex iterations on columns [0, restrict_cols).
  Status iterate(std::int64_t& iters, std::size_t restrict_cols) {
    const double* cost = row_cptr(rows_count_);
    int degenerate_streak = 0;
    while (true) {
      if (iters >= opt_.max_iterations) return Status::kIterLimit;
      if ((iters & 63) == 0 && deadline_passed()) return Status::kIterLimit;
      ++iters;

      // Entering column: Dantzig (most negative reduced cost); Bland
      // (first negative) after a degeneracy streak to break cycles.
      const bool bland = degenerate_streak > 64;
      std::size_t enter = SIZE_MAX;
      double best = -kEps;
      for (std::size_t c = 0; c < restrict_cols; ++c) {
        const double rc = cost[c];
        if (rc < best) {
          enter = c;
          if (bland) break;
          best = rc;
        }
      }
      if (enter == SIZE_MAX) return Status::kOptimal;

      // Ratio test (Bland tie-break on basis index for determinism).
      std::size_t leave = SIZE_MAX;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < rows_count_; ++r) {
        const double* row = row_cptr(r);
        const double a = row[enter];
        if (a <= kEps) continue;
        const double ratio = row[total_cols_ - 1] / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave == SIZE_MAX || basis_[r] < basis_[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
      if (leave == SIZE_MAX) return Status::kUnbounded;

      degenerate_streak = (best_ratio < kEps) ? degenerate_streak + 1 : 0;
      pivot(leave, enter);
    }
  }

  const Problem& problem_;
  const SolveOptions& opt_;

  std::size_t n_ = 0;
  std::size_t slacks_ = 0;
  std::size_t artificials_ = 0;
  std::size_t cols_ = 0;
  std::size_t total_cols_ = 0;
  std::size_t rows_count_ = 0;
  std::size_t art_begin_ = 0;
  std::size_t art_end_ = 0;

  std::vector<double> t_;
  std::vector<std::size_t> basis_;
  std::vector<std::size_t> slack_col_;
  std::vector<Relation> norm_rel_;
  std::vector<double> sign_;
};

}  // namespace

Solution solve(const Problem& problem, const SolveOptions& options) {
  Solution sol;
  Tableau tab(problem, options);

  const Status build_status = tab.build();
  if (build_status != Status::kOptimal) {
    sol.status = build_status;
    return sol;
  }

  std::int64_t iters = 0;
  Status st = tab.phase1(iters);
  if (st == Status::kOptimal) st = tab.phase2(iters);

  sol.status = st;
  sol.iterations = iters;
  if (st == Status::kOptimal) {
    sol.x = tab.extract();
    sol.objective = tab.objective_value();
  }
  return sol;
}

}  // namespace klb::lp
