// Dense two-phase primal simplex.
//
// The substrate under the ILP branch-and-bound (the paper used COIN-OR
// CBC, which is itself B&B over an LP solver). Standard computational
// form: minimize c^T x subject to sparse rows { <=, >=, = } b, x >= 0.
// Phase 1 drives artificials out; Dantzig pricing with a Bland's-rule
// fallback after a degeneracy streak guards against cycling. A deadline
// and an iteration cap make long solves abort cleanly — that is what
// turns Fig. 8's oversized instances into TO cells instead of hangs.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

namespace klb::lp {

enum class Relation { kLe, kGe, kEq };

enum class Status {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterLimit,   // iteration cap or deadline hit
  kMemLimit,    // tableau would exceed the memory budget
};

struct Constraint {
  std::vector<std::pair<int, double>> terms;  // (variable, coefficient)
  Relation rel = Relation::kLe;
  double rhs = 0.0;
};

struct Problem {
  int num_vars = 0;
  std::vector<double> objective;  // size num_vars; minimized
  std::vector<Constraint> rows;

  /// NOTE: the returned reference is invalidated by the next add_row call
  /// (vector growth); fill `terms` before adding further rows, or use the
  /// overload below.
  Constraint& add_row(Relation rel, double rhs) {
    rows.push_back(Constraint{{}, rel, rhs});
    return rows.back();
  }

  void add_row(Relation rel, double rhs,
               std::vector<std::pair<int, double>> terms) {
    rows.push_back(Constraint{std::move(terms), rel, rhs});
  }
};

struct SolveOptions {
  std::int64_t max_iterations = 200'000;
  /// Absolute deadline; unset = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Refuse to build a tableau larger than this many bytes.
  std::size_t max_tableau_bytes = std::size_t{768} * 1024 * 1024;
};

struct Solution {
  Status status = Status::kInfeasible;
  std::vector<double> x;
  double objective = 0.0;
  std::int64_t iterations = 0;
};

/// Solve the LP. `x` is populated for kOptimal only.
Solution solve(const Problem& problem, const SolveOptions& options = {});

}  // namespace klb::lp
