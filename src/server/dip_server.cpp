#include "server/dip_server.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace klb::server {

DipServer::DipServer(net::Network& net, net::IpAddr addr, DipConfig cfg)
    : net_(net), addr_(addr), cfg_(cfg), rng_(net.sim().rng().fork()) {
  net_.attach(addr_, this);
  busy_tw_.set(net_.sim().now().sec(), 0.0);
}

DipServer::~DipServer() { net_.attach(addr_, nullptr); }

void DipServer::set_capacity_factor(double f) {
  capacity_factor_ = std::clamp(f, 0.05, 1.0);
}

void DipServer::set_stolen_cores(double cores) {
  stolen_cores_ = std::clamp(cores, 0.0, static_cast<double>(cfg_.vm.cores) - 0.25);
}

void DipServer::set_alive(bool alive) {
  if (alive == alive_) return;
  alive_ = alive;
  if (alive_) {
    net_.attach(addr_, this);
    touch_cpu_accounting();
  } else {
    net_.attach(addr_, nullptr);
    // A crashed server loses its queue and connections; in-flight
    // completions are invalidated via the epoch.
    ++epoch_;
    queue_.clear();
    busy_workers_ = 0;
    active_conns_ = 0;
    touch_cpu_accounting();
  }
}

double DipServer::effective_rate() const {
  const double share =
      (static_cast<double>(cfg_.vm.cores) - stolen_cores_) /
      static_cast<double>(cfg_.vm.cores);
  return cfg_.vm.speed * capacity_factor_ * share;
}

double DipServer::capacity_rps() const {
  const double per_worker_rate = effective_rate() / (cfg_.demand_core_ms / 1e3);
  return per_worker_rate * static_cast<double>(worker_count());
}

double DipServer::cpu_utilization() const {
  const double avg_busy = busy_tw_.average(net_.sim().now().sec());
  const double util =
      (avg_busy + stolen_cores_) / static_cast<double>(cfg_.vm.cores);
  return std::clamp(util, 0.0, 1.0);
}

double DipServer::cpu_utilization_now() const {
  const double util = (static_cast<double>(busy_workers_) + stolen_cores_) /
                      static_cast<double>(cfg_.vm.cores);
  return std::clamp(util, 0.0, 1.0);
}

void DipServer::reset_stats() {
  completed_ = 0;
  dropped_ = 0;
  latency_ms_.reset();
  busy_tw_.reset_window(net_.sim().now().sec());
}

void DipServer::on_message(const net::Message& msg) {
  if (!alive_) return;
  switch (msg.type) {
    case net::MsgType::kHttpRequest:
      handle_request(msg);
      break;
    case net::MsgType::kFin:
      handle_fin(msg);
      break;
    case net::MsgType::kPing:
      handle_ping(msg);
      break;
    default:
      break;  // servers ignore stray responses / store traffic
  }
}

void DipServer::handle_request(const net::Message& msg) {
  // The first request of a connection (req_id counts from 1) establishes
  // it; conn-less probes (req_id 0) are counted as one-shot connections.
  if (msg.req_id <= 1) ++active_conns_;

  if (static_cast<int>(queue_.size()) >= backlog_limit()) {
    ++dropped_;
    send_response(msg, 503, cfg_.kernel_latency);
    return;
  }
  queue_.push_back(PendingRequest{msg, net_.sim().now()});
  dispatch();
}

void DipServer::handle_fin(const net::Message&) {
  if (active_conns_ > 0) --active_conns_;
}

void DipServer::handle_ping(const net::Message& msg) {
  // Kernel answers pings without touching the application: latency is a
  // small constant plus scheduling noise, independent of load (Fig. 5).
  net::Message reply;
  reply.type = net::MsgType::kPingReply;
  reply.tuple = msg.tuple;
  reply.conn_id = msg.conn_id;
  reply.req_id = msg.req_id;
  const auto jitter = util::SimTime::micros(
      static_cast<std::int64_t>(rng_.exponential(20.0)));
  const auto delay = cfg_.kernel_latency + jitter;
  net::IpAddr to = msg.tuple.src_ip;
  net_.sim().schedule_in(delay, [this, to, reply] { net_.send(to, reply); });
}

void DipServer::dispatch() {
  while (busy_workers_ < static_cast<std::uint64_t>(worker_count()) &&
         !queue_.empty()) {
    PendingRequest req = std::move(queue_.front());
    queue_.pop_front();
    ++busy_workers_;
    touch_cpu_accounting();

    const double demand_ms =
        rng_.lognormal_mean_cov(cfg_.demand_core_ms, cfg_.demand_cov);
    const double service_ms = demand_ms / effective_rate();
    const auto epoch = epoch_;
    net_.sim().schedule_in(util::SimTime::millis(service_ms),
                           [this, r = std::move(req), epoch]() mutable {
                             if (epoch != epoch_) return;  // crashed since
                             complete(std::move(r), net_.sim().now());
                           });
  }
}

void DipServer::complete(PendingRequest req, util::SimTime /*started_at*/) {
  --busy_workers_;
  touch_cpu_accounting();
  ++completed_;
  const auto server_time = net_.sim().now() - req.enqueued_at;
  latency_ms_.add(server_time.ms());
  send_response(req.msg, 200, util::SimTime::zero());
  dispatch();
}

void DipServer::send_response(const net::Message& req, int status,
                              util::SimTime extra_delay) {
  net::HttpResponse http;
  http.status = status;
  http.reason = net::default_reason(status);
  http.headers["Server"] = "klb-dip/" + addr_.str();
  http.body = (status == 200) ? "result" : "overloaded";

  net::Message resp;
  resp.type = net::MsgType::kHttpResponse;
  resp.tuple = req.tuple;
  resp.conn_id = req.conn_id;
  resp.req_id = req.req_id;
  resp.payload = http.serialize();

  // Direct server return: the response goes straight to the client.
  const net::IpAddr to = req.tuple.src_ip;
  if (extra_delay > util::SimTime::zero()) {
    net_.sim().schedule_in(extra_delay,
                           [this, to, resp] { net_.send(to, resp); });
  } else {
    net_.send(to, resp);
  }
}

void DipServer::touch_cpu_accounting() {
  busy_tw_.set(net_.sim().now().sec(), static_cast<double>(busy_workers_));
}

}  // namespace klb::server
