// Azure VM type catalog used by the paper's testbed (Table 3).
//
// `speed` is the per-core speed relative to a DS-series core. The paper
// measured F-series to be 15-20% faster than the corresponding DS VM
// (§2.2.1, §6); we use 1.18.
#pragma once

#include <string>
#include <vector>

namespace klb::server {

struct VmType {
  std::string name;
  int cores = 1;
  double speed = 1.0;  // per-core speed multiplier vs. a DS-series core
};

inline const VmType kDs1v2{"DS1v2", 1, 1.0};
inline const VmType kDs2v2{"DS2v2", 2, 1.0};
inline const VmType kDs3v2{"DS3v2", 4, 1.0};
inline const VmType kF8sv2{"F8sv2", 8, 1.18};

/// The 30-DIP pool from Table 3: 16x DS1v2, 8x DS2v2, 4x DS3v2, 2x F8sv2.
inline std::vector<VmType> table3_pool() {
  std::vector<VmType> pool;
  for (int i = 0; i < 16; ++i) pool.push_back(kDs1v2);
  for (int i = 0; i < 8; ++i) pool.push_back(kDs2v2);
  for (int i = 0; i < 4; ++i) pool.push_back(kDs3v2);
  for (int i = 0; i < 2; ++i) pool.push_back(kF8sv2);
  return pool;
}

/// Relative capacity of a VM type (cores x speed), the paper's notion of
/// "max throughput of a DIP" up to a constant factor.
inline double relative_capacity(const VmType& t) {
  return t.cores * t.speed;
}

}  // namespace klb::server
