// The DIP (backend server) model.
//
// A DIP is a c-core VM running a web server whose request handler performs
// a cache-intensive computation (the paper's workload). We model it as a
// FIFO queue served by `cores` parallel workers:
//
//   service time = demand / (core_speed * capacity_factor * antagonist_share)
//
// where `demand` is drawn from a low-variance lognormal (cache tasks are
// near-deterministic), `capacity_factor` models cache-thrashing noisy
// neighbors (work takes longer), and antagonist_share = (cores - stolen) /
// cores models neighbors that outright consume vCPU time.
//
// The accept backlog is bounded: requests arriving when the backlog is full
// are "packet drops" in the paper's terminology — we answer them with an
// immediate 503 so probers observe errors quickly (a silent drop + client
// timeout gives the same control-loop signal, slower).
//
// ICMP/TCP pings are answered in constant kernel time regardless of
// application load — this asymmetry is the point of the paper's Fig. 5 and
// is why KnapsackLB must probe at the application layer.
//
// CPU utilization reporting: a busy worker occupies a full core (thrashed
// cores do less useful work but still read 100% busy), and stolen cores
// read busy too. util = (busy_workers + stolen_cores) / cores, clamped.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "net/fabric.hpp"
#include "net/http.hpp"
#include "server/vm_types.hpp"
#include "util/stats.hpp"

namespace klb::server {

struct DipConfig {
  VmType vm = kDs1v2;
  /// Mean service demand in core-milliseconds on a speed-1.0 core.
  double demand_core_ms = 3.0;
  /// Coefficient of variation of the demand (cache task: near-deterministic).
  double demand_cov = 0.08;
  /// Accept-backlog bound per core; overflow = packet drop.
  int backlog_per_core = 96;
  /// Kernel handling time for pings and drop responses.
  util::SimTime kernel_latency = util::SimTime::micros(120);
};

class DipServer : public net::Node {
 public:
  DipServer(net::Network& net, net::IpAddr addr, DipConfig cfg);
  ~DipServer() override;

  net::IpAddr address() const { return addr_; }
  const DipConfig& config() const { return cfg_; }

  // --- noisy-neighbor controls -------------------------------------------
  /// Cache-thrashing neighbor: work on every core slows by this factor
  /// (1.0 = healthy). The paper's "capacity ratio" knob.
  void set_capacity_factor(double f);
  double capacity_factor() const { return capacity_factor_; }

  /// Neighbor consuming whole vCPUs (Fig. 16's "process that consumes
  /// 1 core"). May be fractional.
  void set_stolen_cores(double cores);
  double stolen_cores() const { return stolen_cores_; }

  /// Take the DIP down / bring it back (probe traffic gets no answer while
  /// down; used for the failure experiments).
  void set_alive(bool alive);
  bool alive() const { return alive_; }

  // --- observability -------------------------------------------------------
  /// Time-averaged CPU utilization in [0,1] since the last stats window
  /// reset, including stolen cores.
  double cpu_utilization() const;
  /// Instantaneous utilization (busy now / cores).
  double cpu_utilization_now() const;

  std::uint64_t completed() const { return completed_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t active_connections() const { return active_conns_; }
  std::uint64_t in_flight() const { return busy_workers_ + queue_.size(); }

  /// Per-request service latency (queueing + service) as observed at the
  /// server, since the last window reset.
  const util::Welford& service_latency_ms() const { return latency_ms_; }

  /// Restart the CPU/latency/drop accounting window (benches call this
  /// after warmup).
  void reset_stats();

  /// Effective max throughput in requests/sec given current neighbors --
  /// the paper's "capacity". Exposed for oracles and tests, never consumed
  /// by the controller (which must learn it from latency alone).
  double capacity_rps() const;

  // --- net::Node ----------------------------------------------------------
  void on_message(const net::Message& msg) override;

 private:
  struct PendingRequest {
    net::Message msg;
    util::SimTime enqueued_at;
  };

  void handle_request(const net::Message& msg);
  void handle_fin(const net::Message& msg);
  void handle_ping(const net::Message& msg);
  void dispatch();
  void complete(PendingRequest req, util::SimTime started_at);
  void send_response(const net::Message& req, int status,
                     util::SimTime server_time);
  void touch_cpu_accounting();

  double effective_rate() const;  // service-rate multiplier per worker
  int worker_count() const { return cfg_.vm.cores; }
  int backlog_limit() const { return cfg_.backlog_per_core * cfg_.vm.cores; }

  net::Network& net_;
  net::IpAddr addr_;
  DipConfig cfg_;
  util::Rng rng_;

  double capacity_factor_ = 1.0;
  double stolen_cores_ = 0.0;
  bool alive_ = true;

  std::deque<PendingRequest> queue_;
  std::uint64_t busy_workers_ = 0;
  std::uint64_t active_conns_ = 0;
  std::uint64_t epoch_ = 0;  // bumped on crash; invalidates in-flight work

  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  util::Welford latency_ms_;
  util::TimeWeighted busy_tw_;
};

}  // namespace klb::server
