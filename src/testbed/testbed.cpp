#include "testbed/testbed.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/logging.hpp"
#include "util/weight.hpp"

namespace klb::testbed {

namespace {
const net::IpAddr kVip{10, 0, 0, 1};
const net::IpAddr kDipBase{10, 1, 0, 1};
const net::IpAddr kClientBase{10, 2, 0, 1};
const net::IpAddr kKlmAddr{10, 3, 0, 1};
const net::IpAddr kStoreAddr{10, 3, 0, 2};
}  // namespace

std::vector<DipSpec> table3_specs() {
  std::vector<DipSpec> specs;
  for (const auto& vm : server::table3_pool()) specs.push_back(DipSpec{vm, 1.0, 0.0});
  return specs;
}

std::vector<DipSpec> three_dip_specs(double hc1, double hc2, double lc) {
  return {DipSpec{server::kDs1v2, hc1, 0.0}, DipSpec{server::kDs1v2, hc2, 0.0},
          DipSpec{server::kDs1v2, lc, 0.0}};
}

Testbed::Testbed(std::vector<DipSpec> specs, TestbedConfig cfg)
    : cfg_(cfg), specs_(std::move(specs)) {
  sim_ = std::make_unique<sim::Simulation>(cfg_.seed);
  const std::size_t shards = std::max<std::size_t>(1, cfg_.driver_shards);
  if (shards > 1) {
    const auto window = cfg_.driver_window > util::SimTime::zero()
                            ? cfg_.driver_window
                            : cfg_.fabric.base_latency;
    driver_ = std::make_unique<sim::ShardedDriver>(*sim_, shards, window);
  }
  net_ = std::make_unique<net::Network>(*sim_, cfg_.fabric);
  if (driver_) net_->set_driver(driver_.get());
  vip_ = kVip;
  if (driver_) {
    // The VIP is anycast — the mux packet path runs on whichever shard
    // sent to it, which is the whole scaling win — when every shard would
    // route a given tuple identically (thread-safe AND order-insensitive).
    // Stateful policies (rr/lc family) mutate pick state per packet, so
    // their mux stays pinned to shard 0.
    const bool tuple_deterministic = cfg_.mux_count > 1 ||
                                     cfg_.policy == "maglev" ||
                                     cfg_.policy == "hash";
    driver_->set_owner(vip_.value(), tuple_deterministic
                                         ? sim::ShardedDriver::kAnycast
                                         : 0);
  }

  // Construction is single-threaded, but make_dip and the pool bookkeeping
  // require the control lock, so hold it for the wiring below.
  util::MutexLock lk(mu_);

  // DIPs.
  std::vector<net::IpAddr> dip_addrs;
  for (const auto& spec : specs_) {
    dips_.push_back(make_dip(spec));
    dip_addrs.push_back(dips_.back()->address());
  }
  desired_weights_.assign(dips_.size(), 1.0);  // equal split until programmed

  // MUX + LB control plane. One Mux runs the configured policy; a pool
  // ECMP-shards the VIP over mux_count members sharing one maglev build
  // per program (the policy knob does not apply there).
  lb::FlowTableConfig flow_cfg;
  flow_cfg.expected_flows = cfg_.expected_flows;
  lb::ConsistencyConfig consistency;
  consistency.stateless = cfg_.stateless_dataplane;
  if (cfg_.mux_count > 1) {
    pool_ = std::make_unique<lb::MuxPool>(*net_, vip_, cfg_.mux_count,
                                          lb::MaglevTable::kDefaultMinSize,
                                          flow_cfg, consistency);
    lb::PoolProgram bootstrap(pool_->issue_version());
    const auto units = util::normalize_to_units(
        std::vector<double>(dip_addrs.size(), 1.0));
    for (std::size_t i = 0; i < dip_addrs.size(); ++i)
      bootstrap.add(dip_addrs[i], units[i]);
    pool_->apply_program(bootstrap);
  } else {
    mux_ = std::make_unique<lb::Mux>(*net_, vip_, lb::make_policy(cfg_.policy),
                                     /*attach_to_vip=*/true, flow_cfg,
                                     consistency);
    for (std::size_t i = 0; i < dips_.size(); ++i)
      mux_->add_backend(dip_addrs[i], dips_[i].get());
  }
  lb_ctrl_ = std::make_unique<lb::LbController>(*sim_, dataplane(),
                                                cfg_.programming_delay);

  // Latency store (engine shared between the wire server and the typed
  // facade the controller reads).
  kv_engine_ = std::make_shared<store::KvEngine>(
      [this] { return sim_->now(); });
  kv_server_ = std::make_unique<store::KvServer>(*net_, kStoreAddr, kv_engine_);
  lat_store_ = std::make_unique<store::LatencyStore>(kv_engine_);

  // KLM.
  klm_ = std::make_unique<klm::Klm>(*net_, kKlmAddr, vip_, dip_addrs,
                                    kStoreAddr, cfg_.klm);
  klm_->start();

  // Clients at load_fraction of healthy capacity: one pool per driver
  // shard, each offering an even split of the rate from its own shard.
  offered_rps_ = cfg_.load_fraction * healthy_capacity_rps_locked();
  workload::ClientConfig ccfg;
  ccfg.requests_per_session = cfg_.requests_per_session;
  std::uint64_t total_cap = 0;
  if (cfg_.closed_loop_factor > 0.0) {
    // Nominal in-flight ~= offered * (service + queueing headroom + RTT).
    const double nominal_latency_s =
        cfg_.dip.demand_core_ms / 1e3 * 2.0 + 0.001;
    total_cap = static_cast<std::uint64_t>(
        std::max(4.0, std::ceil(cfg_.closed_loop_factor * offered_rps_ *
                                nominal_latency_s /
                                std::max(1.0, cfg_.requests_per_session))));
  }
  for (std::size_t p = 0; p < shards; ++p) {
    // 256 addresses per pool keeps the per-shard IP ranges disjoint.
    const auto base = kClientBase.next(static_cast<std::uint32_t>(p) * 256);
    if (driver_) {
      // Register owners before construction: the pool forks its RNG from
      // (and binds its cancellable events to) its owner shard's sim.
      for (int i = 0; i < ccfg.client_ips; ++i)
        driver_->set_owner(base.next(static_cast<std::uint32_t>(i)).value(),
                           static_cast<std::uint32_t>(p));
    }
    auto pool_cfg = ccfg;
    if (total_cap > 0)
      pool_cfg.max_outstanding_sessions =
          std::max<std::uint64_t>(1, (total_cap + shards - 1) / shards);
    client_pools_.push_back(std::make_unique<workload::ClientPool>(
        *net_, base, vip_,
        workload::TrafficPattern(offered_rps_ / static_cast<double>(shards)),
        pool_cfg));
    client_pools_.back()->start();
  }

  // Dataplane heartbeat (see testbed.hpp): poll() at tick rate regardless
  // of whether a controller runs. It lives on shard 0 and is safe against
  // packet processing on other shards: poll's drain sweeps and generation
  // reclamation only take control-plane locks and try-locks the packet
  // path never holds across a window.
  dataplane_poll_ = std::make_unique<sim::PeriodicTimer>(
      *sim_, util::SimTime::millis(50), [this] { dataplane().poll(); });
  dataplane_poll_->start();

  // KnapsackLB controller (optional).
  if (cfg_.use_knapsacklb) {
    controller_ = std::make_unique<core::Controller>(
        *sim_, vip_, dip_addrs, *lat_store_, *lb_ctrl_, cfg_.controller);
    controller_->start();
  }
}

Testbed::~Testbed() {
  if (controller_) controller_->stop();
  for (auto& c : client_pools_) c->stop();
  if (klm_) klm_->stop();
}

void Testbed::run_for(util::SimTime duration) {
  if (driver_) {
    driver_->run_for(duration);
  } else {
    sim_->run_for(duration);
  }
}

bool Testbed::run_until_ready(util::SimTime limit) {
  if (!controller_) return false;
  const auto deadline = sim_->now() + limit;
  while (sim_->now() < deadline) {
    if (controller_->all_ready()) return true;
    run_for(cfg_.controller.round_interval);
  }
  return controller_->all_ready();
}

void Testbed::reset_stats() {
  util::MutexLock lk(mu_);
  for (auto& d : dips_) d->reset_stats();
  for (auto& c : client_pools_) c->recorder().reset();
  if (pool_) {
    for (std::size_t k = 0; k < pool_->mux_count(); ++k)
      pool_->mux(k).reset_counters();
  } else {
    mux_->reset_counters();
  }
}

std::unique_ptr<server::DipServer> Testbed::make_dip(const DipSpec& spec) {
  auto dip_cfg = cfg_.dip;
  dip_cfg.vm = spec.vm;
  const auto addr = kDipBase.next(next_dip_offset_++);
  auto dip = std::make_unique<server::DipServer>(*net_, addr, dip_cfg);
  dip->set_capacity_factor(spec.capacity_factor);
  dip->set_stolen_cores(spec.stolen_cores);
  // Round-robin shard ownership by construction order (stable across
  // churn: offsets are never reused). The DIP's service events then run on
  // its shard, spreading server work across cores like the clients.
  if (driver_)
    driver_->set_owner(addr.value(),
                       static_cast<std::uint32_t>((next_dip_offset_ - 1) %
                                                  driver_->shard_count()));
  return dip;
}

std::optional<std::size_t> Testbed::index_of(net::IpAddr addr) const {
  util::MutexLock lk(mu_);
  for (std::size_t i = 0; i < dips_.size(); ++i)
    if (dips_[i]->address() == addr) return i;
  return std::nullopt;
}

std::size_t Testbed::scale_out(DipSpec spec) {
  util::MutexLock lk(mu_);
  auto dip = make_dip(spec);
  const auto addr = dip->address();
  specs_.push_back(spec);
  dips_.push_back(std::move(dip));
  // Fair share relative to the incumbents: the mean of their desired
  // weights (an all-parked pool hands the newcomer a unit weight).
  double mean = 1.0;
  if (!desired_weights_.empty()) {
    double sum = 0.0;
    for (const double w : desired_weights_) sum += w;
    if (sum > 0.0) mean = sum / static_cast<double>(desired_weights_.size());
  }
  desired_weights_.push_back(mean);
  klm_->add_dip(addr);  // probed from the next KLM round on
  if (controller_) {
    // One transaction admits the newcomer parked at 0; it enters the
    // NeedL0 -> Exploring -> Ready lifecycle and the ILP folds it in once
    // its curve fits — traffic keeps flowing off the incumbents meanwhile.
    controller_->add_dip(addr);
  } else {
    program_live_pool(std::nullopt);
  }
  refresh_offered_load();
  util::log_info("klb-testbed")
      << "scale-out: DIP " << addr.str() << " (" << spec.vm.name
      << ") joined; live pool " << dips_.size();
  return dips_.size() - 1;
}

bool Testbed::scale_in(std::size_t i) {
  util::MutexLock lk(mu_);
  if (i >= dips_.size()) {
    util::log_warn("klb-testbed") << "scale_in(" << i << ") out of range ("
                                  << dips_.size() << " live DIPs)";
    return false;
  }
  const auto addr = dips_[i]->address();
  // Deregister measurement first: a probe round racing the drain must not
  // write samples for a DIP the controller no longer owns.
  klm_->remove_dip(addr);
  lat_store_->forget(vip_, addr);
  // The server keeps running until Testbed destruction: the dataplane
  // serves its pinned flows to completion (that is the graceful part).
  retired_dips_.push_back(std::move(dips_[i]));
  dips_.erase(dips_.begin() + static_cast<std::ptrdiff_t>(i));
  specs_.erase(specs_.begin() + static_cast<std::ptrdiff_t>(i));
  desired_weights_.erase(desired_weights_.begin() +
                         static_cast<std::ptrdiff_t>(i));
  if (controller_) {
    if (const auto ci = controller_->index_of(addr))
      controller_->remove_dip(*ci);
  } else {
    program_live_pool(addr);
  }
  refresh_offered_load();
  util::log_info("klb-testbed") << "scale-in: DIP " << addr.str()
                                << " draining; live pool " << dips_.size();
  return true;
}

bool Testbed::fail_dip(std::size_t i) {
  util::MutexLock lk(mu_);
  if (i >= dips_.size()) {
    util::log_warn("klb-testbed") << "fail_dip(" << i << ") out of range ("
                                  << dips_.size() << " live DIPs)";
    return false;
  }
  const auto addr = dips_[i]->address();
  dips_[i]->set_alive(false);
  klm_->remove_dip(addr);
  lat_store_->forget(vip_, addr);
  // Dataplane first: the dead DIP's share redistributes to the survivors
  // immediately (its pinned flows are counted as reset; clients retry).
  if (pool_) {
    pool_->fail_backend(addr);
  } else {
    for (std::size_t k = 0; k < mux_->backend_count(); ++k) {
      if (mux_->backend_addr(k) == addr) {
        mux_->fail_backend(k);
        break;
      }
    }
  }
  // Ops-feed report: faster than waiting for a §4.5 probe blackout.
  if (controller_) {
    if (const auto ci = controller_->index_of(addr))
      controller_->mark_failed(*ci);
  }
  retired_dips_.push_back(std::move(dips_[i]));
  dips_.erase(dips_.begin() + static_cast<std::ptrdiff_t>(i));
  specs_.erase(specs_.begin() + static_cast<std::ptrdiff_t>(i));
  desired_weights_.erase(desired_weights_.begin() +
                         static_cast<std::ptrdiff_t>(i));
  refresh_offered_load();
  util::log_info("klb-testbed") << "failure: DIP " << addr.str()
                                << " down; live pool " << dips_.size();
  return true;
}

void Testbed::program_live_pool(std::optional<net::IpAddr> draining_leaver) {
  const auto norm = util::normalize_to_units(desired_weights_);
  lb::PoolProgram p(lb_ctrl_->issue_version());
  for (std::size_t k = 0; k < dips_.size(); ++k)
    p.add(dips_[k]->address(), norm[k]);
  if (draining_leaver) p.add(*draining_leaver, 0, lb::BackendState::kDraining);
  lb_ctrl_->apply_program(p);
}

void Testbed::refresh_offered_load() {
  if (!cfg_.rescale_load_on_churn) return;
  offered_rps_ = cfg_.load_fraction * healthy_capacity_rps_locked();
  const double per_pool =
      offered_rps_ / static_cast<double>(client_pools_.size());
  for (auto& c : client_pools_)
    c->set_pattern(workload::TrafficPattern(per_pool));
}

void Testbed::set_static_weights(const std::vector<double>& weights) {
  util::MutexLock lk(mu_);
  // A wrong-sized vector must stay loud: a whole-pool transaction built
  // from it would silently decommission the unlisted DIPs.
  if (weights.size() != dips_.size()) {
    util::log_warn("klb-testbed")
        << "set_static_weights: " << weights.size() << " weights for "
        << dips_.size() << " DIPs; ignoring";
    return;
  }
  desired_weights_ = weights;
  const auto units = util::normalize_to_units(weights);
  lb::PoolProgram p(lb_ctrl_->issue_version());
  for (std::size_t i = 0; i < dips_.size(); ++i)
    p.add(dips_[i]->address(), units[i]);
  lb_ctrl_->apply_program(p);
}

std::vector<DipMetrics> Testbed::metrics() const {
  util::MutexLock lk(mu_);
  std::vector<DipMetrics> out;
  // Merge the per-shard pools' attributions (Welford moments compose
  // exactly). One pool — the common case — merges trivially.
  std::map<net::IpAddr, util::Welford> per_dip;
  for (const auto& c : client_pools_)
    for (const auto& [addr, w] : c->recorder().per_dip())
      per_dip[addr].merge(w);
  // Join the dataplane's weights by DIP address: after any membership
  // change the dataplane's registration order and the live spec list
  // diverge, so a positional join would attribute weights to the wrong
  // DIP. Draining leftovers are parked at 0 and not part of the live pool.
  const auto& m0 = mux0();
  const auto units = m0.weight_units();
  std::unordered_map<std::uint32_t, double> weight_by_addr;
  for (std::size_t k = 0; k < units.size(); ++k) {
    if (m0.backend_draining(k)) continue;
    weight_by_addr[m0.backend_addr(k).value()] = util::units_to_weight(units[k]);
  }
  for (std::size_t i = 0; i < dips_.size(); ++i) {
    DipMetrics m;
    m.addr = dips_[i]->address();
    m.vm_type = specs_[i].vm.name;
    m.cpu_utilization = dips_[i]->cpu_utilization();
    m.drops = dips_[i]->dropped();
    // A live DIP the dataplane does not serve yet (admission still in the
    // programming delay) reads weight 0 rather than someone else's.
    const auto wit = weight_by_addr.find(m.addr.value());
    m.weight = wit != weight_by_addr.end() ? wit->second : 0.0;
    const auto it = per_dip.find(m.addr);
    if (it != per_dip.end()) {
      m.client_latency_ms = it->second.mean();
      m.client_requests = it->second.count();
    }
    out.push_back(m);
  }
  return out;
}

DataplaneMetrics Testbed::dataplane_metrics() const {
  DataplaneMetrics out;
  const auto add = [&out](const lb::Mux& m) {
    out.flows_reset_by_failure += m.flows_reset_by_failure();
    out.flows_gced_idle += m.flows_gced_idle();
    out.flows_dropped_by_removal += m.flows_dropped_by_removal();
    out.no_backend_drops += m.no_backend_drops();
    out.drains_completed += m.drains_completed();
    out.stale_failed_admissions += m.stale_failed_admissions();
    out.affinity_entries += m.affinity_size();
    out.generations_published += m.generations_published();
    out.generations_retired += m.generations_retired();
    out.pending_retired_generations += m.pending_retired_generations();
    out.stateless_picks += m.stateless_picks();
    out.exception_pins += m.exception_pins();
    out.affinity_breaks_avoided += m.affinity_breaks_avoided();
    out.affinity_breaks += m.affinity_breaks();
    const auto mem = m.flow_table().memory();
    out.flow_table_bytes += mem.approx_bytes;
    out.flow_table_capacity += mem.buckets;
  };
  if (pool_) {
    for (std::size_t k = 0; k < pool_->mux_count(); ++k) add(pool_->mux(k));
  } else {
    add(*mux_);
  }
  return out;
}

double Testbed::overall_latency_ms() const {
  util::Welford all;
  for (const auto& c : client_pools_) all.merge(c->recorder().overall());
  return all.mean();
}

double Testbed::overall_p99_ms() const {
  if (client_pools_.size() == 1)
    return client_pools_.front()->recorder().percentile_ms(0.99);
  // Sharded runs: exact percentile over the merged raw samples (the
  // per-pool log-histograms do not merge).
  std::vector<double> lat;
  for (const auto& c : client_pools_) {
    const auto& raw = c->recorder().raw_latencies_ms();
    lat.insert(lat.end(), raw.begin(), raw.end());
  }
  if (lat.empty()) return 0.0;
  const auto k = static_cast<std::ptrdiff_t>(
      0.99 * static_cast<double>(lat.size() - 1));
  std::nth_element(lat.begin(), lat.begin() + k, lat.end());
  return lat[static_cast<std::size_t>(k)];
}

std::uint64_t Testbed::client_successes() const {
  std::uint64_t n = 0;
  for (const auto& c : client_pools_) n += c->recorder().overall().count();
  return n;
}

std::uint64_t Testbed::client_timeouts() const {
  std::uint64_t n = 0;
  for (const auto& c : client_pools_) n += c->recorder().timeouts();
  return n;
}

std::uint64_t Testbed::client_requests_sent() const {
  std::uint64_t n = 0;
  for (const auto& c : client_pools_) n += c->requests_sent();
  return n;
}

std::uint64_t Testbed::client_sessions_started() const {
  std::uint64_t n = 0;
  for (const auto& c : client_pools_) n += c->sessions_started();
  return n;
}

double Testbed::healthy_capacity_rps_locked() const {
  double total = 0.0;
  for (const auto& spec : specs_) {
    const double per_core_rps =
        spec.vm.speed / (cfg_.dip.demand_core_ms / 1e3);
    total += per_core_rps * spec.vm.cores;
  }
  return total;
}

}  // namespace klb::testbed
