// Synthetic weight-latency curves for solver-scale experiments (§6.6).
//
// Fig. 8 / Tables 6-7 exercise the ILP at up to 1000 DIPs without a
// dataplane. The paper uses the F-series curve measured in §6.1; we build
// the analytic equivalent: latency flat near l0 at low weight, rising
// quadratically to ~5x l0 at the DIP's capacity weight (the knee shape of
// Fig. 5 that drives both the explorer and the fit).
#pragma once

#include "fit/wl_curve.hpp"

namespace klb::testbed {

/// A fitted curve whose capacity weight (wmax) is `wmax`, unloaded latency
/// `l0_ms`, and latency at wmax ~= 5x l0 (the explorer's pseudo-drop
/// point). Sampled at 5 weights like a real exploration, then fit with
/// degree 2.
inline fit::WeightLatencyCurve synthetic_curve(double wmax,
                                               double l0_ms = 1.5) {
  fit::WeightLatencyCurve curve;
  for (const double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double w = f * wmax;
    const double latency = l0_ms * (1.0 + 4.0 * f * f);  // 5x l0 at wmax
    curve.add_point(w, latency, /*dropped=*/false);
  }
  curve.fit(2);
  return curve;
}

}  // namespace klb::testbed
