// Fixed-width table / series printers so bench output lines up with the
// paper's figures and tables.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace klb::testbed {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());

    auto print_row = [&](const std::vector<std::string>& cells) {
      os << "| ";
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& v = c < cells.size() ? cells[c] : "";
        os << std::left << std::setw(static_cast<int>(width[c])) << v << " | ";
      }
      os << "\n";
    };
    print_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << std::string(width[c] + 2, '-') << "|";
    os << "\n";
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

inline std::string fmt_pct(double fraction, int precision = 1) {
  return fmt(fraction * 100.0, precision) + "%";
}

inline void banner(const std::string& title, std::ostream& os = std::cout) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace klb::testbed
