// A synthetic multi-VIP control-plane fleet (§5 at scale, no dataplane).
//
// Fig. 8 / Tab. 6 benchmark one ILP at growing DIP counts; the fleet
// fixture does the same for the *coordinator*: V VIPs x D DIPs, every DIP
// Ready with an injected synthetic curve, weights programmed into a sink.
// That isolates exactly the work the controller VM does per round —
// sample scan + ILP solves — so the fleet benches measure solver-pool
// scaling and the coordinator tests check grant policy without simulating
// traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/multi_vip.hpp"
#include "store/latency_store.hpp"
#include "testbed/synthetic.hpp"
#include "util/rng.hpp"

namespace klb::testbed {

/// PoolProgrammer that records transactions and drives no dataplane.
/// Mirrors the MUX's contract: a stale transaction (version <= the last
/// committed one) is discarded whole and counted, so churn tests catch
/// ordering races; with no pinned flows, a kDraining entry completes to
/// removed immediately.
class SinkDataplane : public lb::PoolProgrammer {
 public:
  explicit SinkDataplane(std::vector<net::IpAddr> dips) {
    for (const auto dip : dips)
      backends_.push_back(Backend{dip, 0});
  }

  std::size_t backend_count() const override { return backends_.size(); }
  std::vector<net::IpAddr> backend_addrs() const override {
    std::vector<net::IpAddr> out;
    for (const auto& b : backends_) out.push_back(b.addr);
    return out;
  }

  void apply_program(const lb::PoolProgram& program) override {
    if (program.version <= applied_version_) {
      ++superseded_;
      return;
    }
    applied_version_ = program.version;
    if (program.weights_only) {
      for (const auto& e : program.entries)
        for (auto& b : backends_)
          if (b.addr == e.dip && e.state == lb::BackendState::kActive)
            b.weight_units = e.weight_units < 0 ? 0 : e.weight_units;
    } else {
      backends_.clear();
      for (const auto& e : program.entries)
        if (e.state == lb::BackendState::kActive)
          backends_.push_back(
              Backend{e.dip, e.weight_units < 0 ? 0 : e.weight_units});
    }
    last_units_.clear();
    for (const auto& b : backends_) last_units_.push_back(b.weight_units);
    ++programs_;
  }

  const std::vector<std::int64_t>& last_units() const { return last_units_; }
  std::uint64_t programs() const { return programs_; }
  std::uint64_t applied_version() const { return applied_version_; }
  std::uint64_t superseded_programs() const { return superseded_; }

 private:
  struct Backend {
    net::IpAddr addr;
    std::int64_t weight_units = 0;
  };

  std::vector<Backend> backends_;
  std::vector<std::int64_t> last_units_;
  std::uint64_t applied_version_ = 0;
  std::uint64_t programs_ = 0;
  std::uint64_t superseded_ = 0;
};

class SyntheticFleet {
 public:
  /// Build `vips` VIPs of `dips` DIPs each. Curve shapes (wmax, l0) are
  /// drawn from Rng(seed), so two fleets with equal (vips, dips, seed)
  /// hold identical curves regardless of `cfg` — the parallel-vs-serial
  /// determinism test relies on this. Curve refresh is disabled: the
  /// fixture has no KLM feeding samples, so a refresh could never finish.
  SyntheticFleet(std::size_t vips, std::size_t dips, core::MultiVipConfig cfg,
                 std::uint64_t seed = 1)
      : round_interval_(cfg.round_interval),
        engine_(std::make_shared<store::KvEngine>([this] { return sim_.now(); })),
        store_(engine_) {
    cfg.controller.refresh_interval = util::SimTime::zero();
    coord_ = std::make_unique<core::MultiVipCoordinator>(sim_, cfg);

    util::Rng rng(seed);
    for (std::size_t v = 0; v < vips; ++v) {
      const auto vip = net::IpAddr(static_cast<std::uint32_t>(0x0a000001 + v));
      std::vector<net::IpAddr> addrs;
      for (std::size_t d = 0; d < dips; ++d)
        addrs.push_back(
            net::IpAddr(static_cast<std::uint32_t>(0x0a800000 + (v << 8) + d)));
      lbs_.push_back(std::make_unique<SinkDataplane>(addrs));
      const auto idx = coord_->add_vip(vip, addrs, store_, *lbs_.back());
      // Heterogeneous pool: per-DIP capacity 0.5-2x the fair share, total
      // capacity ~1.25x the VIP's demand so the ILP stays feasible.
      auto& ctl = coord_->controller(idx);
      const double base = 1.25 / static_cast<double>(dips);
      for (std::size_t d = 0; d < dips; ++d) {
        const double wmax = base * (0.5 + 1.5 * rng.uniform());
        const double l0 = 1.0 + 2.0 * rng.uniform();
        ctl.inject_ready_curve(d, synthetic_curve(wmax, l0));
      }
    }
  }

  sim::Simulation& sim() { return sim_; }
  core::MultiVipCoordinator& coordinator() { return *coord_; }
  SinkDataplane& lb(std::size_t v) { return *lbs_[v]; }

  void mark_all_dirty() {
    for (std::size_t v = 0; v < coord_->vip_count(); ++v)
      coord_->controller(v).mark_dirty();
  }

  // --- pool churn (the §6 capacity-change scenario, fleet-scale) ------------

  /// Scale-out: add a DIP with a synthetic Ready curve to VIP `v` mid-run.
  /// Returns the new DIP's index on that VIP's controller.
  std::size_t scale_out(std::size_t v, double wmax, double l0 = 1.5) {
    auto& ctl = coord_->controller(v);
    const auto addr =
        net::IpAddr(static_cast<std::uint32_t>(0x0ac00000 + (v << 12)) +
                    next_addr_++);
    const auto idx = ctl.add_dip(addr);
    ctl.inject_ready_curve(idx, synthetic_curve(wmax, l0));
    return idx;
  }

  /// Scale-in: remove DIP `d` from VIP `v` mid-run.
  void scale_in(std::size_t v, std::size_t d) {
    coord_->controller(v).remove_dip(d);
  }

  /// Abrupt DIP failure mid-round (ops-feed report).
  void fail_dip(std::size_t v, std::size_t d) {
    coord_->controller(v).mark_failed(d);
  }

  /// Advance virtual time one round interval, then run a coordinated
  /// round. Driving tick() with a frozen clock would feed the dynamics
  /// detector never-stale zero-latency observations (the fixture records
  /// no samples), so rounds must move time like the real timer does.
  void tick_round() {
    sim_.run_for(round_interval_);
    coord_->tick();
  }

 private:
  sim::Simulation sim_{1};
  util::SimTime round_interval_;
  std::shared_ptr<store::KvEngine> engine_;
  store::LatencyStore store_;
  std::vector<std::unique_ptr<SinkDataplane>> lbs_;
  std::unique_ptr<core::MultiVipCoordinator> coord_;
  std::uint32_t next_addr_ = 1;  // scale-out DIPs get addresses of their own
};

}  // namespace klb::testbed
