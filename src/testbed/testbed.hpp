// Experiment composition: the simulated equivalent of the paper's 41-VM
// Azure deployment (§6 Setup).
//
// A Testbed wires together, on one virtual-time Simulation:
//   - N DIP servers (VM types + noisy-neighbor knobs),
//   - one MUX with a selectable policy behind a VIP,
//   - the HAProxy-like LB control plane (weight programming with delay),
//   - an open-loop client pool driving a fraction of cluster capacity,
//   - the KLM prober + RESP latency store,
//   - optionally the KnapsackLB controller.
//
// Benches and examples construct a Testbed, run phases of virtual time,
// and read per-DIP CPU / client-observed latency off it.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "klm/klm.hpp"
#include "lb/dns_lb.hpp"
#include "lb/lb_controller.hpp"
#include "lb/mux.hpp"
#include "lb/mux_pool.hpp"
#include "server/dip_server.hpp"
#include "sim/sharded_driver.hpp"
#include "store/kv_server.hpp"
#include "util/sync.hpp"
#include "workload/client.hpp"

namespace klb::testbed {

struct DipSpec {
  server::VmType vm = server::kDs1v2;
  double capacity_factor = 1.0;  // cache-thrash slowdown (1.0 = healthy)
  double stolen_cores = 0.0;     // antagonist-held vCPUs
};

struct TestbedConfig {
  std::uint64_t seed = 1;
  std::string policy = "wrr";  // lb policy for the MUX
  /// Offered load as a fraction of the pool's healthy capacity (the paper
  /// runs at 70%).
  double load_fraction = 0.70;
  double requests_per_session = 4.0;
  /// Closed-loop concurrency, as a multiple of the nominal in-flight
  /// request count (offered_rps x ~unloaded latency). 0 = open loop.
  /// The paper's clients were fixed-concurrency load generators, which is
  /// what keeps overloaded-DIP latency at a few multiples of healthy
  /// rather than backlog-bound.
  double closed_loop_factor = 5.0;
  server::DipConfig dip;  // shared service-demand model
  klm::KlmConfig klm;
  core::ControllerConfig controller;
  bool use_knapsacklb = false;
  util::SimTime programming_delay = util::SimTime::millis(200);
  /// MUXes ECMP-sharded behind the VIP. 1 = a single Mux running `policy`;
  /// >1 = a lb::MuxPool whose members share one maglev build per program
  /// version (`policy` is ignored — the pool runs maglev-shared).
  std::size_t mux_count = 1;
  /// Recompute the offered load (load_fraction x live healthy capacity)
  /// after every scale_out/scale_in/fail_dip, so the load tracks the pool
  /// the way a front-door autoscaler would. false keeps the offered rate
  /// fixed at construction-time capacity — the paper's figures hold load
  /// constant through failures.
  bool rescale_load_on_churn = true;
  /// Opt the dataplane into the stateless fast path (lb/consistency.hpp):
  /// flows on unchanged maglev slots route by hash with no flow-table
  /// entry; only exception flows pin. Requires a maglev-table policy
  /// (mux_count > 1 always qualifies; a single Mux needs policy =
  /// "maglev"), and is ignored with a warning otherwise.
  bool stateless_dataplane = false;
  /// Expected concurrent flows pool-wide: pre-reserves the flow-table
  /// shards so filling to that scale never rehashes. 0 = default growth.
  std::size_t expected_flows = 0;
  /// Event-loop driver shards (ISSUE 9). 1 = the single-threaded
  /// Simulation (determinism reference). N > 1 runs N per-shard event
  /// queues on host threads in bounded virtual-time windows: DIPs are
  /// assigned round-robin to shards, each shard gets its own ClientPool
  /// (the offered rate splits evenly), and the VIP is anycast — processed
  /// on the sending client's shard — when the dataplane is
  /// tuple-deterministic (mux_count > 1, or policy "maglev"/"hash"),
  /// pinned to shard 0 otherwise. Control plane (KLM, store, controller,
  /// churn ops, poll heartbeat) stays on shard 0.
  std::size_t driver_shards = 1;
  /// Fabric latency model. Shard benches raise base_latency so the window
  /// (which must not exceed it) amortizes more events per barrier.
  net::FabricConfig fabric;
  /// Virtual-time window per barrier; zero = fabric.base_latency, the
  /// largest window that cannot reorder cross-shard messages.
  util::SimTime driver_window = util::SimTime::zero();
};

/// Pool-level dataplane lifecycle counters, aggregated over every MUX
/// behind the VIP (one Mux, or all MuxPool members). These are the flows
/// that do NOT show up in per-DIP metrics: reset by failure, reclaimed by
/// idle-GC, dropped by an abrupt removal (ISSUE 5 — previously invisible),
/// or refused because no backend was usable.
struct DataplaneMetrics {
  std::uint64_t flows_reset_by_failure = 0;
  std::uint64_t flows_gced_idle = 0;
  std::uint64_t flows_dropped_by_removal = 0;
  std::uint64_t no_backend_drops = 0;
  std::uint64_t drains_completed = 0;
  std::uint64_t stale_failed_admissions = 0;
  std::size_t affinity_entries = 0;
  /// Pool-generation publication/reclamation (see Mux: every committed
  /// program or churn op publishes one immutable generation; retired ones
  /// are freed epoch-style once no reader can hold them).
  std::uint64_t generations_published = 0;
  std::uint64_t generations_retired = 0;
  std::size_t pending_retired_generations = 0;
  /// Stateless fast path (lb/consistency.hpp; all zero when not engaged).
  std::uint64_t stateless_picks = 0;
  std::uint64_t exception_pins = 0;
  std::uint64_t affinity_breaks_avoided = 0;
  std::uint64_t affinity_breaks = 0;
  /// Flow-table footprint across the dataplane (the memory the stateless
  /// path exists to avoid). Capacity = bucket count.
  std::size_t flow_table_bytes = 0;
  std::size_t flow_table_capacity = 0;
};

/// Per-DIP metrics snapshot for reporting.
struct DipMetrics {
  net::IpAddr addr;
  std::string vm_type;
  double cpu_utilization = 0.0;       // server-side, window average
  double client_latency_ms = 0.0;     // mean over client requests
  std::uint64_t client_requests = 0;
  std::uint64_t drops = 0;
  double weight = 0.0;                // current MUX weight
};

class Testbed {
 public:
  Testbed(std::vector<DipSpec> specs, TestbedConfig cfg);
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // --- run control ----------------------------------------------------------
  void run_for(util::SimTime duration);
  /// Run until the KnapsackLB controller reports every DIP Ready (requires
  /// use_knapsacklb). Returns false if `limit` elapses first.
  bool run_until_ready(util::SimTime limit);
  /// Clear all measurement windows (after warmup / before a window).
  void reset_stats() KLB_EXCLUDES(mu_);

  // --- topology access --------------------------------------------------------
  sim::Simulation& sim() { return *sim_; }
  net::Network& network() { return *net_; }
  /// The sharded event-loop driver, or nullptr when driver_shards == 1.
  sim::ShardedDriver* driver() { return driver_.get(); }
  std::size_t dip_count() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return dips_.size();
  }
  server::DipServer& dip(std::size_t i) KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return *dips_[i];
  }
  /// The single Mux, or the pool's first member (mux_count > 1) — all
  /// members serve identical programs, so member 0 answers pool-shape
  /// questions (weights, membership).
  lb::Mux& mux() { return pool_ ? pool_->mux(0) : *mux_; }
  /// The pool when mux_count > 1, else nullptr.
  lb::MuxPool* mux_pool() { return pool_.get(); }
  /// The dataplane behind the LB controller (the Mux or the MuxPool).
  lb::PoolProgrammer& dataplane() {
    return pool_ ? static_cast<lb::PoolProgrammer&>(*pool_)
                 : static_cast<lb::PoolProgrammer&>(*mux_);
  }
  lb::LbController& lb_controller() { return *lb_ctrl_; }
  /// Shard 0's client pool (the only one when driver_shards == 1 — the
  /// common case; per-pool reads are exact there). Sharded runs drive one
  /// pool per shard: use the client_* aggregates below for totals.
  workload::ClientPool& clients() { return *client_pools_.front(); }
  std::size_t client_pool_count() const { return client_pools_.size(); }
  workload::ClientPool& client_pool(std::size_t p) {
    return *client_pools_[p];
  }
  /// Aggregates over every per-shard client pool.
  std::uint64_t client_successes() const;
  std::uint64_t client_timeouts() const;
  std::uint64_t client_requests_sent() const;
  std::uint64_t client_sessions_started() const;
  klm::Klm& klm() { return *klm_; }
  store::LatencyStore& latency_store() { return *lat_store_; }
  core::Controller* controller() { return controller_.get(); }
  net::IpAddr vip() const { return vip_; }

  /// Program static weights (units of weight 1.0 per DIP, normalized
  /// internally) through the LB controller — the "operator sets weights by
  /// core count" baselines.
  void set_static_weights(const std::vector<double>& weights)
      KLB_EXCLUDES(mu_);

  // --- live pool churn --------------------------------------------------------
  // The paper's headline scenarios (Fig. 15 failures, Fig. 16 capacity
  // change) happen on a live pool. These ops run at virtual-run time, while
  // traffic flows: they construct/tear down the DipServer, register or
  // deregister the DIP with the KLM prober and the latency store, and drive
  // the controller (when enabled) so membership, weights, and measurement
  // all move through the same transactional path the dataplane serves.

  /// Scale-out: bring up a fresh DipServer on a never-reused address, start
  /// probing it, and admit it to the pool. With KnapsackLB on, the newcomer
  /// enters the NeedL0 -> Exploring -> Ready lifecycle and is folded into
  /// the ILP once its curve fits; without, it joins at a fair share of the
  /// current weights. Returns the new DIP's live index.
  std::size_t scale_out(DipSpec spec) KLB_EXCLUDES(mu_);

  /// Graceful scale-in of live DIP `i`: the dataplane parks it (kDraining),
  /// keeps serving its pinned flows, and completes the removal when the
  /// last one drains — zero flows reset. The server keeps running until the
  /// Testbed is destroyed so in-flight work finishes; KLM and the latency
  /// store forget the DIP immediately. Returns false for an out-of-range
  /// index.
  bool scale_in(std::size_t i) KLB_EXCLUDES(mu_);

  /// Abrupt failure of live DIP `i` (host death): the server stops
  /// answering, the dataplane drops it now (its pinned flows are counted
  /// as reset, clients retry on survivors), and the controller is told via
  /// the ops feed (mark_failed) instead of waiting out a probe blackout.
  /// Returns false for an out-of-range index.
  bool fail_dip(std::size_t i) KLB_EXCLUDES(mu_);

  /// Live index of the DIP serving `addr`, if it is in the live pool.
  std::optional<std::size_t> index_of(net::IpAddr addr) const
      KLB_EXCLUDES(mu_);

  /// Servers removed from the live pool but kept constructed (drainers
  /// serving pinned flows out; failed hosts that no longer answer).
  std::size_t retired_count() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return retired_dips_.size();
  }

  // --- metrics ---------------------------------------------------------------
  std::vector<DipMetrics> metrics() const KLB_EXCLUDES(mu_);
  /// Pool-level lifecycle counters (see DataplaneMetrics).
  DataplaneMetrics dataplane_metrics() const;
  /// Mean client latency over the current window.
  double overall_latency_ms() const;
  double overall_p99_ms() const;
  /// Healthy-pool capacity in requests/sec (speed-weighted, ignoring
  /// current antagonists).
  double healthy_capacity_rps() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return healthy_capacity_rps_locked();
  }
  double offered_rps() const KLB_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return offered_rps_;
  }

 private:
  /// Build one DipServer from a spec on the next fresh address.
  std::unique_ptr<server::DipServer> make_dip(const DipSpec& spec)
      KLB_REQUIRES(mu_);
  double healthy_capacity_rps_locked() const KLB_REQUIRES(mu_);
  /// No-controller reprogramming: restate the (already mutated) live pool
  /// at its desired weights in one transaction, with `draining_leaver`
  /// appended as a kDraining rider. Emitted from the testbed's own desired
  /// view, never read back from the dataplane — a back-to-back churn op
  /// must not restate the pre-commit state of a program still riding the
  /// programming delay (that would, e.g., resurrect a drainer as Active).
  void program_live_pool(std::optional<net::IpAddr> draining_leaver)
      KLB_REQUIRES(mu_);
  /// Re-derive offered load from the live spec list (rescale_load_on_churn).
  void refresh_offered_load() KLB_REQUIRES(mu_);
  const lb::Mux& mux0() const { return pool_ ? pool_->mux(0) : *mux_; }

  TestbedConfig cfg_;

  std::unique_ptr<sim::Simulation> sim_;
  /// Declared between sim_ and net_: the driver's shard Simulations must
  /// outlive every component that cancels events through net_->sim_for()
  /// on destruction (the per-shard client pools), and the driver itself
  /// joins its workers before sim_ goes away.
  std::unique_ptr<sim::ShardedDriver> driver_;
  std::unique_ptr<net::Network> net_;
  net::IpAddr vip_;
  /// Serializes churn ops (scale_out/scale_in/fail_dip) and metric reads
  /// against each other, and guards the live-pool bookkeeping below.
  /// Component locks (klm, store, mux/pool control, log) nest underneath.
  mutable util::Mutex mu_{"klb.testbed.control",
                          util::LockFlags::kControlPlane};
  std::vector<DipSpec> specs_ KLB_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<server::DipServer>> dips_ KLB_GUARDED_BY(mu_);
  /// Scaled-in or failed servers, parked until destruction: a drainer must
  /// keep serving its pinned flows, and a failed host must stay bound (and
  /// silent) rather than free its address for reuse.
  std::vector<std::unique_ptr<server::DipServer>> retired_dips_
      KLB_GUARDED_BY(mu_);
  std::uint32_t next_dip_offset_ KLB_GUARDED_BY(mu_) = 0;  // never reused
  /// Desired weights for the live pool (index-aligned with dips_), used by
  /// the no-controller programming path; with KnapsackLB on, the
  /// controller owns the weights and this is only bookkeeping.
  std::vector<double> desired_weights_ KLB_GUARDED_BY(mu_);
  std::unique_ptr<lb::Mux> mux_;        // mux_count == 1
  std::unique_ptr<lb::MuxPool> pool_;   // mux_count > 1
  std::unique_ptr<lb::LbController> lb_ctrl_;
  std::shared_ptr<store::KvEngine> kv_engine_;
  std::unique_ptr<store::KvServer> kv_server_;
  std::unique_ptr<store::LatencyStore> lat_store_;
  std::unique_ptr<klm::Klm> klm_;
  /// One pool per driver shard (a single pool when unsharded), each bound
  /// to its shard through net_->sim_for so its cancellable arrival/timeout
  /// events stay on one event queue.
  std::vector<std::unique_ptr<workload::ClientPool>> client_pools_;
  std::unique_ptr<core::Controller> controller_;
  /// Control-plane heartbeat: Mux::poll() is a tick-rate contract (drain
  /// sweeps, generation reclamation), and the KnapsackLB controller's loop
  /// only covers it when one is running. The testbed polls unconditionally
  /// so controllerless scenarios complete grace-deferred drains too (the
  /// stateless fast path defers completion past the quiescence window).
  /// Declared last: destroyed first, so no tick fires into torn-down
  /// components.
  std::unique_ptr<sim::PeriodicTimer> dataplane_poll_;
  double offered_rps_ KLB_GUARDED_BY(mu_) = 0.0;
};

/// The paper's Table 3 pool: 16x DS1v2 + 8x DS2v2 + 4x DS3v2 + 2x F8sv2.
std::vector<DipSpec> table3_specs();

/// §2.1's three-DIP pool at the given capacity factors (e.g. {1, 1, 0.6}).
std::vector<DipSpec> three_dip_specs(double hc1, double hc2, double lc);

}  // namespace klb::testbed
