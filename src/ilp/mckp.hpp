// Multiple-Choice Knapsack solver (exact dynamic program).
//
// The Fig. 7 ILP with theta = infinity *is* an MCKP: pick exactly one
// (weight, latency) item per DIP so the weights sum to the grid total and
// total latency is minimal. This DP is the optimization fast path the
// paper alludes to in §5 ("we speed up ILP"); the generic B&B remains the
// reference implementation and tests assert both agree.
//
// Weights are integer grid units (util::kWeightScale = weight 1.0). An
// exact-sum solution rarely exists on an arbitrary grid, so the target is
// a window [total - slack, total]; the DP returns the min-cost choice
// whose sum lands in the window (preferring larger sums on cost ties).
#pragma once

#include <cstdint>
#include <vector>

namespace klb::ilp {

struct MckpItem {
  std::int64_t weight_units = 0;
  double cost = 0.0;
};

struct MckpGroup {
  std::vector<MckpItem> items;
};

struct MckpResult {
  bool feasible = false;
  double cost = 0.0;
  std::int64_t total_units = 0;
  /// Chosen item index per group.
  std::vector<int> choice;
};

/// Exact DP: O(groups * total * max_items_per_group) time,
/// O(groups * total) reconstruction memory (16-bit choice ids).
MckpResult solve_mckp(const std::vector<MckpGroup>& groups,
                      std::int64_t total_units, std::int64_t slack_units);

}  // namespace klb::ilp
