// ILP model builder + branch-and-bound solver.
//
// Stands in for COIN-OR CBC (the paper's solver, §5): a general 0/1-and-
// integer linear model solved by branch & bound over the lp:: simplex
// relaxation. Branching fixes binary variables (substituting them out of
// the child LP), selection is most-fractional, exploration is best-bound
// with an eager dive for early incumbents. A deadline turns into the
// paper's "TO" outcome: the best incumbent (if any) is returned flagged.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "lp/simplex.hpp"

namespace klb::ilp {

enum class VarType { kContinuous, kBinary };

enum class IlpStatus {
  kOptimal,
  kFeasibleTimeout,  // incumbent found, but optimality not proven in time
  kTimeout,          // no incumbent before the deadline
  kInfeasible,
  kUnbounded,
  kMemLimit,
};

class Model {
 public:
  /// Returns the variable index. `obj` is the minimized objective
  /// coefficient. Binary variables are [0,1]-bounded by construction;
  /// continuous ones are [0, ub].
  int add_var(VarType type, double obj, double ub = 1e30,
              std::string name = {});

  void add_constraint(std::vector<std::pair<int, double>> terms,
                      lp::Relation rel, double rhs);

  int num_vars() const { return static_cast<int>(types_.size()); }
  int num_constraints() const { return static_cast<int>(rows_.size()); }
  VarType var_type(int v) const { return types_[static_cast<std::size_t>(v)]; }
  const std::string& var_name(int v) const {
    return names_[static_cast<std::size_t>(v)];
  }

  /// Declare that every binary variable's <=1 bound is implied by the
  /// constraints (true for multiple-choice structures where each group
  /// sums to 1); skips emitting explicit bound rows.
  void set_binary_bounds_implied(bool implied) { implied_bounds_ = implied; }

 private:
  friend struct Solver;
  std::vector<VarType> types_;
  std::vector<double> obj_;
  std::vector<double> ub_;
  std::vector<std::string> names_;
  std::vector<lp::Constraint> rows_;
  bool implied_bounds_ = false;
};

struct IlpOptions {
  std::optional<std::chrono::milliseconds> time_limit;
  std::int64_t max_nodes = 1'000'000;
  double integrality_tol = 1e-6;
  /// Relative optimality gap at which search stops.
  double rel_gap = 1e-9;
  std::size_t max_tableau_bytes = std::size_t{768} * 1024 * 1024;
};

struct IlpResult {
  IlpStatus status = IlpStatus::kInfeasible;
  std::vector<double> x;
  double objective = 0.0;
  std::int64_t nodes_explored = 0;
  double best_bound = 0.0;
  std::chrono::milliseconds elapsed{0};

  bool has_solution() const {
    return status == IlpStatus::kOptimal ||
           status == IlpStatus::kFeasibleTimeout;
  }
};

IlpResult solve(const Model& model, const IlpOptions& options = {});

}  // namespace klb::ilp
