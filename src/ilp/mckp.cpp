#include "ilp/mckp.hpp"

#include <algorithm>
#include <limits>

namespace klb::ilp {

MckpResult solve_mckp(const std::vector<MckpGroup>& groups,
                      std::int64_t total_units, std::int64_t slack_units) {
  MckpResult result;
  if (groups.empty() || total_units < 0) return result;
  for (const auto& g : groups) {
    if (g.items.empty()) return result;           // no pickable item
    if (g.items.size() > 65'535) return result;   // choice id is uint16
  }

  const auto capacity = static_cast<std::size_t>(total_units) + 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> prev(capacity, kInf);
  std::vector<double> cur(capacity, kInf);
  // parent[g][u]: item chosen for group g to reach sum u.
  std::vector<std::vector<std::uint16_t>> parent(
      groups.size(), std::vector<std::uint16_t>(capacity, 0xffff));

  prev[0] = 0.0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::fill(cur.begin(), cur.end(), kInf);
    auto& par = parent[g];
    for (std::size_t item = 0; item < groups[g].items.size(); ++item) {
      const auto& it = groups[g].items[item];
      if (it.weight_units < 0 || it.weight_units > total_units) continue;
      const auto w = static_cast<std::size_t>(it.weight_units);
      for (std::size_t u = w; u < capacity; ++u) {
        const double base = prev[u - w];
        if (base == kInf) continue;
        const double cost = base + it.cost;
        if (cost < cur[u]) {
          cur[u] = cost;
          par[u] = static_cast<std::uint16_t>(item);
        }
      }
    }
    std::swap(prev, cur);
  }

  // Pick the best landing spot inside [total - slack, total]; prefer the
  // larger sum on (near-)ties so the schedule uses the full budget.
  const std::int64_t lo = std::max<std::int64_t>(0, total_units - slack_units);
  std::size_t best_u = capacity;  // sentinel
  double best_cost = kInf;
  for (std::int64_t u = total_units; u >= lo; --u) {
    const auto uu = static_cast<std::size_t>(u);
    if (prev[uu] < best_cost - 1e-12) {
      best_cost = prev[uu];
      best_u = uu;
    }
  }
  if (best_u == capacity) return result;  // infeasible in the window

  result.feasible = true;
  result.cost = best_cost;
  result.total_units = static_cast<std::int64_t>(best_u);
  result.choice.assign(groups.size(), -1);
  std::size_t u = best_u;
  for (std::size_t g = groups.size(); g-- > 0;) {
    const std::uint16_t item = parent[g][u];
    result.choice[g] = static_cast<int>(item);
    u -= static_cast<std::size_t>(groups[g].items[item].weight_units);
  }
  return result;
}

}  // namespace klb::ilp
