#include "ilp/model.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace klb::ilp {

int Model::add_var(VarType type, double obj, double ub, std::string name) {
  types_.push_back(type);
  obj_.push_back(obj);
  ub_.push_back(type == VarType::kBinary ? 1.0 : ub);
  names_.push_back(std::move(name));
  return static_cast<int>(types_.size()) - 1;
}

void Model::add_constraint(std::vector<std::pair<int, double>> terms,
                           lp::Relation rel, double rhs) {
  rows_.push_back(lp::Constraint{std::move(terms), rel, rhs});
}

namespace {

struct Node {
  // Fixings are (var, value) pairs applied in order; values are 0 or 1.
  std::vector<std::pair<int, double>> fixings;
  double bound = -1e300;  // parent LP objective (lower bound)
  int depth = 0;
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;  // best bound first
    return a.depth < b.depth;                          // then deepest (dive)
  }
};

}  // namespace

struct Solver {
  const Model& model;
  const IlpOptions& opt;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();

  bool deadline_passed() const {
    return opt.time_limit &&
           std::chrono::steady_clock::now() - start > *opt.time_limit;
  }

  /// Build the LP relaxation with the node's fixings substituted out.
  /// Fixed columns keep their index but get a forced x=v via a pinned
  /// equality row collapse: we instead substitute, adjusting rhs and
  /// accumulating the objective constant.
  lp::Problem build_lp(const std::vector<std::pair<int, double>>& fixings,
                       std::vector<double>& fixed_value,
                       double& obj_constant) const {
    const auto n = static_cast<std::size_t>(model.num_vars());
    fixed_value.assign(n, -1.0);  // -1 = free
    for (const auto& [v, val] : fixings)
      fixed_value[static_cast<std::size_t>(v)] = val;

    lp::Problem p;
    p.num_vars = model.num_vars();
    p.objective.assign(n, 0.0);
    obj_constant = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (fixed_value[v] >= 0.0)
        obj_constant += model.obj_[v] * fixed_value[v];
      else
        p.objective[v] = model.obj_[v];
    }

    for (const auto& row : model.rows_) {
      lp::Constraint out;
      out.rel = row.rel;
      out.rhs = row.rhs;
      for (const auto& [v, coeff] : row.terms) {
        const auto vu = static_cast<std::size_t>(v);
        if (fixed_value[vu] >= 0.0)
          out.rhs -= coeff * fixed_value[vu];
        else
          out.terms.emplace_back(v, coeff);
      }
      p.rows.push_back(std::move(out));
    }

    // Upper-bound rows for free variables whose bound is not implied.
    for (std::size_t v = 0; v < n; ++v) {
      if (fixed_value[v] >= 0.0) continue;
      const bool skip_binary =
          model.implied_bounds_ && model.types_[v] == VarType::kBinary;
      const double ub = model.ub_[v];
      if (!skip_binary && ub < 1e29) {
        lp::Constraint bound;
        bound.rel = lp::Relation::kLe;
        bound.rhs = ub;
        bound.terms.emplace_back(static_cast<int>(v), 1.0);
        p.rows.push_back(std::move(bound));
      }
    }
    return p;
  }

  IlpResult run() {
    IlpResult result;
    double incumbent_obj = 1e300;
    std::vector<double> incumbent_x;
    double best_open_bound = -1e300;

    std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
    open.push(Node{});

    while (!open.empty()) {
      if (result.nodes_explored >= opt.max_nodes) break;
      if (deadline_passed()) break;

      Node node = open.top();
      open.pop();
      const auto cutoff = [&](double bound) {
        if (incumbent_obj >= 1e299) return false;
        const double tol =
            1e-9 + opt.rel_gap * std::max(1.0, std::fabs(incumbent_obj));
        return bound >= incumbent_obj - tol;
      };
      if (node.bound > -1e299 && cutoff(node.bound)) continue;  // pruned

      ++result.nodes_explored;

      std::vector<double> fixed_value;
      double obj_constant = 0.0;
      const auto lp_problem = build_lp(node.fixings, fixed_value, obj_constant);

      lp::SolveOptions lp_opt;
      lp_opt.max_tableau_bytes = opt.max_tableau_bytes;
      if (opt.time_limit) lp_opt.deadline = start + *opt.time_limit;
      const auto lp_sol = lp::solve(lp_problem, lp_opt);

      if (lp_sol.status == lp::Status::kMemLimit) {
        result.status = IlpStatus::kMemLimit;
        result.elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
        return result;
      }
      if (lp_sol.status == lp::Status::kIterLimit) break;  // deadline
      if (lp_sol.status == lp::Status::kInfeasible) continue;
      if (lp_sol.status == lp::Status::kUnbounded) {
        if (node.fixings.empty()) {
          result.status = IlpStatus::kUnbounded;
          return result;
        }
        continue;
      }

      const double node_obj = lp_sol.objective + obj_constant;
      if (cutoff(node_obj)) continue;

      // Find the most fractional integer variable.
      int branch_var = -1;
      double best_frac_dist = opt.integrality_tol;
      for (int v = 0; v < model.num_vars(); ++v) {
        const auto vu = static_cast<std::size_t>(v);
        if (model.types_[vu] != VarType::kBinary) continue;
        if (fixed_value[vu] >= 0.0) continue;
        const double x = lp_sol.x[vu];
        const double dist = std::fabs(x - std::round(x));
        if (dist > best_frac_dist) {
          best_frac_dist = dist;
          branch_var = v;
        }
      }

      if (branch_var < 0) {
        // Integral: candidate incumbent.
        if (node_obj < incumbent_obj) {
          incumbent_obj = node_obj;
          incumbent_x.assign(static_cast<std::size_t>(model.num_vars()), 0.0);
          for (int v = 0; v < model.num_vars(); ++v) {
            const auto vu = static_cast<std::size_t>(v);
            incumbent_x[vu] =
                fixed_value[vu] >= 0.0 ? fixed_value[vu] : lp_sol.x[vu];
            if (model.types_[vu] == VarType::kBinary)
              incumbent_x[vu] = std::round(incumbent_x[vu]);
          }
        }
        continue;
      }

      // Branch: try the value the LP leans toward first (better dives).
      const double x = lp_sol.x[static_cast<std::size_t>(branch_var)];
      const double first = x >= 0.5 ? 1.0 : 0.0;
      for (const double val : {1.0 - first, first}) {  // pushed last = popped first on ties
        Node child;
        child.fixings = node.fixings;
        child.fixings.emplace_back(branch_var, val);
        child.bound = node_obj;
        child.depth = node.depth + 1;
        open.push(std::move(child));
      }
      best_open_bound = std::max(best_open_bound, node_obj);
    }

    result.elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);

    const bool finished = open.empty() &&
                          result.nodes_explored < opt.max_nodes &&
                          !deadline_passed();
    if (incumbent_obj < 1e299) {
      result.x = std::move(incumbent_x);
      result.objective = incumbent_obj;
      result.status = finished ? IlpStatus::kOptimal : IlpStatus::kFeasibleTimeout;
      result.best_bound = finished ? incumbent_obj : best_open_bound;
    } else {
      result.status = finished ? IlpStatus::kInfeasible : IlpStatus::kTimeout;
    }
    return result;
  }
};

IlpResult solve(const Model& model, const IlpOptions& options) {
  Solver solver{model, options};
  return solver.run();
}

}  // namespace klb::ilp
