// The per-DIP weight->latency curve (§4.2, §4.5).
//
// Built from the explorer's few (weight, latency, dropped?) measurements:
// a degree-2 polynomial is fitted to the non-dropped points, then forced
// monotone non-decreasing by a running-max envelope (the paper's fix for
// regression dips). The curve answers three queries the controller needs:
//
//   latency_at(w)   - estimated response latency if this DIP ran at w
//   weight_for(l)   - inverse lookup: largest weight keeping latency <= l
//   rescale(delta)  - §4.5 dynamics: traffic/capacity changed, so the same
//                     latencies now occur at delta-times-smaller weights
//                     (curve_new(w) = curve_old(w / delta))
//
// The rescale factor accumulates across events; raw fitted data is kept so
// refreshes can rebuild from scratch.
#pragma once

#include <optional>
#include <vector>

#include "fit/polyfit.hpp"

namespace klb::fit {

struct CurvePoint {
  double weight = 0.0;
  double latency_ms = 0.0;
  bool dropped = false;  // packet drops observed at this weight
};

class WeightLatencyCurve {
 public:
  /// `envelope_step`: grid resolution for the monotone envelope.
  explicit WeightLatencyCurve(double envelope_step = 1e-3)
      : step_(envelope_step) {}

  void add_point(double weight, double latency_ms, bool dropped);
  void clear();

  const std::vector<CurvePoint>& points() const { return points_; }

  /// Max weight measured without packet drop — Algorithm 1's wmax, in the
  /// *current* (rescaled) coordinate system.
  double wmax() const { return wmax_raw_ * scale_; }
  void set_wmax(double w) { wmax_raw_ = w / scale_; }

  /// Fit the polynomial (degree 2 per the paper) to non-dropped points and
  /// build the monotone envelope. Returns false with fewer than 2 usable
  /// points or a singular system.
  bool fit(int degree = 2);
  bool fitted() const { return !envelope_.empty(); }

  /// Estimated latency at a weight (monotone envelope; clamps beyond the
  /// envelope's domain to its boundary values).
  double latency_at(double weight) const;

  /// Largest weight whose estimated latency stays <= `latency_ms`;
  /// 0 when even weight 0 exceeds it.
  double weight_for(double latency_ms) const;

  /// §4.5: multiply all weights by delta (delta < 1 shifts the curve left:
  /// same latency at smaller weight). Accumulates.
  void rescale(double delta);
  double scale() const { return scale_; }

  /// Fit quality over the non-dropped points (1.0 = perfect).
  double fit_r_squared() const { return r2_; }

  /// The fitted polynomial in raw (pre-rescale) coordinates, if any.
  const std::optional<Polynomial>& raw_polynomial() const { return poly_; }

 private:
  double envelope_at_raw(double raw_weight) const;

  std::vector<CurvePoint> points_;
  double wmax_raw_ = 0.0;
  double scale_ = 1.0;
  double step_;

  std::optional<Polynomial> poly_;
  std::vector<double> envelope_;  // monotone latency at i*step_, raw coords
  double envelope_limit_ = 0.0;   // raw-weight upper end of the envelope
  double end_slope_ = 0.0;        // envelope slope used beyond the limit
  double r2_ = 0.0;
};

}  // namespace klb::fit
