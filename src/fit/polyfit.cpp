#include "fit/polyfit.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace klb::fit {

std::optional<std::vector<double>> solve_linear(
    std::vector<std::vector<double>> a, std::vector<double> b) {
  const std::size_t n = a.size();
  if (n == 0 || b.size() != n) return std::nullopt;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    if (std::fabs(a[pivot][col]) < 1e-12) return std::nullopt;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);

    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a[i][c] * x[c];
    x[i] = acc / a[i][i];
  }
  return x;
}

std::optional<Polynomial> polyfit(const std::vector<double>& xs,
                                  const std::vector<double>& ys, int degree) {
  if (xs.size() != ys.size() || xs.empty() || degree < 0) return std::nullopt;

  // Clamp the degree to the number of distinct x-values minus one.
  const std::set<double> distinct(xs.begin(), xs.end());
  degree = std::min<int>(degree, static_cast<int>(distinct.size()) - 1);
  if (degree < 0) return std::nullopt;

  // Scale x to [0,1] for conditioning; unscale coefficients afterwards.
  const double xmax = *std::max_element(xs.begin(), xs.end());
  const double xmin = *std::min_element(xs.begin(), xs.end());
  const double span = (xmax - xmin) > 1e-12 ? (xmax - xmin) : 1.0;

  const auto m = static_cast<std::size_t>(degree) + 1;
  std::vector<std::vector<double>> ata(m, std::vector<double>(m, 0.0));
  std::vector<double> atb(m, 0.0);

  for (std::size_t k = 0; k < xs.size(); ++k) {
    const double t = (xs[k] - xmin) / span;
    std::vector<double> row(m, 1.0);
    for (std::size_t j = 1; j < m; ++j) row[j] = row[j - 1] * t;
    for (std::size_t i = 0; i < m; ++i) {
      atb[i] += row[i] * ys[k];
      for (std::size_t j = 0; j < m; ++j) ata[i][j] += row[i] * row[j];
    }
  }

  auto scaled = solve_linear(std::move(ata), std::move(atb));
  if (!scaled) return std::nullopt;

  // Convert from the scaled basis t = (x - xmin)/span back to powers of x
  // via binomial expansion of ((x - xmin)/span)^j.
  std::vector<double> coeffs(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    // Expand t^j = sum_k C(j,k) x^k (-xmin)^(j-k) / span^j.
    double cjk = 1.0;  // C(j, 0)
    for (std::size_t k = 0; k <= j; ++k) {
      const double term = cjk * std::pow(-xmin, static_cast<double>(j - k)) /
                          std::pow(span, static_cast<double>(j));
      coeffs[k] += (*scaled)[j] * term;
      cjk = cjk * static_cast<double>(j - k) / static_cast<double>(k + 1);
    }
  }

  return Polynomial{std::move(coeffs)};
}

double r_squared(const Polynomial& p, const std::vector<double>& xs,
                 const std::vector<double>& ys) {
  if (xs.empty() || xs.size() != ys.size()) return 0.0;
  double mean = 0.0;
  for (const double y : ys) mean += y;
  mean /= static_cast<double>(ys.size());

  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - p.eval(xs[i]);
    ss_res += e * e;
    ss_tot += (ys[i] - mean) * (ys[i] - mean);
  }
  if (ss_tot < 1e-15) return ss_res < 1e-15 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace klb::fit
