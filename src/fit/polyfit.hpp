// Least-squares polynomial regression (§4.2).
//
// KnapsackLB fits latency = f(weight) with a degree-2 polynomial from a
// handful of measurements. Normal equations solved by Gaussian elimination
// with partial pivoting; for the tiny systems here (degree <= 4) that is
// both fast and numerically adequate, and x-values are pre-scaled to [0,1]
// to keep the Vandermonde system well-conditioned.
#pragma once

#include <optional>
#include <vector>

namespace klb::fit {

/// Polynomial with coefficients in ascending order: c[0] + c[1]x + c[2]x^2...
struct Polynomial {
  std::vector<double> coeffs;

  double eval(double x) const {
    double acc = 0.0;
    for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
    return acc;
  }

  int degree() const { return static_cast<int>(coeffs.size()) - 1; }
};

/// Fit a polynomial of the given degree to (x, y) samples.
/// Requires xs.size() == ys.size() and at least degree+1 samples; the
/// degree is clamped down when there are fewer distinct points. Returns
/// nullopt when the system is singular (e.g. all x identical).
std::optional<Polynomial> polyfit(const std::vector<double>& xs,
                                  const std::vector<double>& ys, int degree);

/// Solve the dense linear system A x = b in place (partial pivoting).
/// Exposed for reuse (and direct testing); returns nullopt when singular.
std::optional<std::vector<double>> solve_linear(
    std::vector<std::vector<double>> a, std::vector<double> b);

/// Coefficient of determination (R^2) of a fit on the given samples.
double r_squared(const Polynomial& p, const std::vector<double>& xs,
                 const std::vector<double>& ys);

}  // namespace klb::fit
