#include "fit/wl_curve.hpp"

#include <algorithm>
#include <cmath>

namespace klb::fit {

void WeightLatencyCurve::add_point(double weight, double latency_ms,
                                   bool dropped) {
  points_.push_back(CurvePoint{weight / scale_, latency_ms, dropped});
  if (!dropped) wmax_raw_ = std::max(wmax_raw_, weight / scale_);
}

void WeightLatencyCurve::clear() {
  points_.clear();
  poly_.reset();
  envelope_.clear();
  wmax_raw_ = 0.0;
  scale_ = 1.0;
  r2_ = 0.0;
}

bool WeightLatencyCurve::fit(int degree) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& p : points_) {
    if (p.dropped) continue;  // paper: only fit points without drops
    xs.push_back(p.weight);
    ys.push_back(p.latency_ms);
  }
  if (xs.size() < 2) return false;

  auto poly = polyfit(xs, ys, degree);
  if (!poly) return false;
  poly_ = std::move(*poly);
  r2_ = r_squared(*poly_, xs, ys);

  // Envelope spans [0, 1.25 * max measured weight] so the ILP can ask a
  // bit beyond the exploration range without falling off the curve.
  const double xmax = *std::max_element(xs.begin(), xs.end());
  envelope_limit_ = std::max(step_, xmax * 1.25);
  const auto n = static_cast<std::size_t>(envelope_limit_ / step_) + 1;
  envelope_.assign(n, 0.0);
  double running = -1e300;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = static_cast<double>(i) * step_;
    running = std::max(running, poly_->eval(w));
    // Latency is also physically non-negative.
    envelope_[i] = std::max(running, 0.0);
  }
  end_slope_ = n >= 2 ? (envelope_[n - 1] - envelope_[n - 2]) / step_ : 0.0;
  return true;
}

double WeightLatencyCurve::envelope_at_raw(double raw_weight) const {
  if (envelope_.empty()) return 0.0;
  if (raw_weight <= 0.0) return envelope_.front();
  const double idx_f = raw_weight / step_;
  const auto idx = static_cast<std::size_t>(idx_f);
  if (idx + 1 >= envelope_.size()) {
    // Beyond the measured range: extrapolate with the envelope's end slope
    // so more-overloaded weights keep looking worse to the ILP.
    const double beyond =
        raw_weight - static_cast<double>(envelope_.size() - 1) * step_;
    return envelope_.back() + end_slope_ * beyond;
  }
  const double frac = idx_f - static_cast<double>(idx);
  return envelope_[idx] * (1.0 - frac) + envelope_[idx + 1] * frac;
}

double WeightLatencyCurve::latency_at(double weight) const {
  return envelope_at_raw(weight / scale_);
}

double WeightLatencyCurve::weight_for(double latency_ms) const {
  if (envelope_.empty()) return 0.0;
  if (envelope_.front() > latency_ms) return 0.0;
  if (latency_ms >= envelope_.back()) {
    // Invert the linear extrapolation beyond the envelope.
    const double base = static_cast<double>(envelope_.size() - 1) * step_;
    if (end_slope_ <= 1e-12) return base * scale_;
    return (base + (latency_ms - envelope_.back()) / end_slope_) * scale_;
  }
  // The envelope is monotone: binary search the last index <= latency.
  std::size_t lo = 0;
  std::size_t hi = envelope_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (envelope_[mid] <= latency_ms)
      lo = mid;
    else
      hi = mid - 1;
  }
  return static_cast<double>(lo) * step_ * scale_;
}

void WeightLatencyCurve::rescale(double delta) {
  if (delta <= 0.0) return;
  // Bound the cumulative drift from the originally fitted curve: repeated
  // noise-driven corrections must not compound into a runaway scale (a
  // genuinely larger change shows up in the next refresh instead).
  scale_ = std::clamp(scale_ * delta, 0.2, 5.0);
}

}  // namespace klb::fit
