// The KnapsackLB controller (Fig. 6): one instance per VIP.
//
// A periodic round loop (default 10 s — the paper's scheduler round) that:
//
//   1. pulls fresh KLM samples from the latency store (samples taken
//      before the last weight programming settled are discarded: §4.7's
//      drain consideration),
//   2. advances each DIP's lifecycle:
//        NeedL0 -> Exploring -> Ready   (and Failed on probe blackouts)
//      NeedL0 DIPs are parked at weight 0 so their direct-probe sample *is*
//      l0 ("we measure l0 ... by setting its weight to 0", §4.3);
//      Exploring DIPs run Algorithm 1; finished explorations are curve-fit,
//   3. packs measurement requests into the round via the §4.6 scheduler,
//   4. in steady state runs the Fig. 7 ILP (multi-step per §4.4) whenever
//      a curve changed, programs weights through the LB's existing weight
//      interface (never touching MUXes/DIPs/clients),
//   5. watches for §4.5 dynamics: traffic-wide or per-DIP latency drift
//      (curve rescale + ILP rerun), failures (drop the DIP, rerun), and
//      periodic curve refreshes capped at `refresh_capacity_fraction` of
//      the pool.
//
// Everything the controller knows arrives through the latency store; it
// holds no handles to servers or MUX internals.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dynamics.hpp"
#include "core/explorer.hpp"
#include "core/ilp_weights.hpp"
#include "core/scheduler.hpp"
#include "lb/lb_controller.hpp"
#include "sim/simulation.hpp"
#include "store/latency_store.hpp"

namespace klb::core {

struct ControllerConfig {
  util::SimTime round_interval = util::SimTime::seconds(10);
  /// Samples younger than last programming + this are not trusted
  /// (programming delay + connection draining, §4.7). Can be replaced by a
  /// measured value from DrainEstimator.
  util::SimTime drain_allowance = util::SimTime::seconds(4);
  ExplorerConfig explorer;
  /// The controller defaults to the MCKP fast path (the paper's §5
  /// "sped-up" ILP); a finite theta silently switches back to B&B.
  IlpWeightsConfig ilp = [] {
    IlpWeightsConfig c;
    c.backend = IlpBackend::kMckpDp;
    return c;
  }();
  DynamicsConfig dynamics;
  /// Fraction of total capacity allowed to refresh simultaneously (§4.5).
  double refresh_capacity_fraction = 0.05;
  /// Re-explore a DIP's curve this long after it was fitted; zero = never.
  /// On by default: refresh is the paper's defence against curve drift
  /// (and our rescale clamps rely on it to pick up large real changes).
  util::SimTime refresh_interval = util::SimTime::minutes(4);
  /// A DIP whose latest sample latency exceeds this multiple of its l0 is
  /// scheduled in the overloaded priority class.
  double overload_latency_factor = 3.0;
};

class Controller {
 public:
  enum class DipPhase { kNeedL0, kExploring, kReady, kFailed };

  Controller(sim::Simulation& sim, net::IpAddr vip,
             std::vector<net::IpAddr> dips, store::LatencyStore& store,
             lb::PoolProgrammer& lb, ControllerConfig cfg = {});

  void start();
  void stop();

  /// Program the bootstrap weights without starting the round timer — for
  /// an external coordinator (MultiVipCoordinator) that drives rounds.
  void start_managed();

  /// Run one controller round immediately (benches and the multi-VIP
  /// coordinator drive rounds manually). With allow_ilp = false the
  /// steady-state ILP is deferred (stays dirty) — the §5 cross-VIP
  /// prioritization: only the VIPs granted a solver slot recompute now.
  void tick(bool allow_ilp = true);

  /// Result of the pure ILP compute, handed between solve_ilp() and
  /// apply_ilp() so the solve can run on a SolverPool worker.
  struct IlpSolveOutcome {
    bool attempted = false;          // false: no ready curves this round
    std::vector<std::size_t> index;  // DIP index per solved curve
    IlpWeightsResult result;
  };

  /// Phase 1 of a round (cheap, sim thread): consume samples, advance DIP
  /// lifecycles, schedule measurements or classify dynamics. Returns true
  /// when the VIP wants a steady-state ILP solve (steady state + dirty).
  /// tick(true) is equivalent to
  /// `if (tick_prepare()) apply_ilp(solve_ilp());`.
  bool tick_prepare();

  /// Phase 2 (expensive, thread-safe): run the Fig. 7 ILP over the current
  /// ready curves. Pure compute — mutates nothing, so a SolverPool worker
  /// may run it while other VIPs solve concurrently, as long as nothing
  /// mutates this controller until apply_ilp().
  IlpSolveOutcome solve_ilp() const;

  /// Phase 3 (serial, sim thread): program the solved weights, update
  /// counters, clear the dirty flag. Applying outcomes in VIP order makes
  /// a pooled run bit-identical to a serial one.
  void apply_ilp(const IlpSolveOutcome& outcome);

  /// A curve changed and the steady-state ILP has not rerun yet.
  bool ilp_dirty() const { return ilp_dirty_; }

  // --- inspection -----------------------------------------------------------
  std::size_t dip_count() const { return dips_.size(); }
  net::IpAddr dip_addr(std::size_t i) const { return dips_[i].addr; }
  DipPhase phase(std::size_t i) const { return dips_[i].phase; }
  /// Index currently tracking `addr` — pool churn shifts indices, so
  /// anything keeping a long-lived handle to a DIP must key by address.
  std::optional<std::size_t> index_of(net::IpAddr addr) const;
  /// The last programmed weight for `addr` (the controller's per-address
  /// view; nullopt for an address it does not track).
  std::optional<double> weight_of(net::IpAddr addr) const;
  bool all_ready() const;
  const std::vector<double>& current_weights() const { return weights_; }
  const WeightExplorer& explorer(std::size_t i) const {
    return dips_[i].explorer;
  }
  const fit::WeightLatencyCurve& curve(std::size_t i) const {
    return dips_[i].curve;
  }

  std::uint64_t rounds_run() const { return rounds_; }
  std::uint64_t ilp_runs() const { return ilp_runs_; }
  std::uint64_t traffic_rescales() const { return traffic_rescales_; }
  std::uint64_t capacity_rescales() const { return capacity_rescales_; }
  std::uint64_t failures_detected() const { return failures_; }
  std::chrono::milliseconds last_ilp_elapsed() const { return last_ilp_ms_; }

  /// Force an ILP recomputation on the next round (tests/benches).
  void mark_dirty() { ilp_dirty_ = true; }

  // --- pool churn (§6's capacity-change scenario as a first-class op) -------

  /// Scale-out: append a DIP to this VIP's pool and to the LB. The DIP
  /// enters the NeedL0 lifecycle (or call inject_ready_curve for synthetic
  /// pools). Returns the new DIP's index.
  std::size_t add_dip(net::IpAddr addr);

  /// Scale-in: remove DIP `i` from the pool. The leaver is programmed
  /// kDraining in the same transaction that reweights the survivors — the
  /// dataplane parks it, serves its pinned flows out, and auto-completes
  /// the removal when the last one drains (no manual weight-0 + wait +
  /// remove sequencing). Surviving DIPs keep their state and the ILP
  /// reruns over the smaller pool. Returns false for an out-of-range
  /// index.
  bool remove_dip(std::size_t i);

  /// Abrupt failure reported out-of-band (an ops/health feed, faster than
  /// waiting for a §4.5 probe blackout): the DIP is dropped from rotation
  /// and the ILP reruns, exactly like the sample-driven failure path.
  void mark_failed(std::size_t i);

  /// Install a pre-fitted curve and mark the DIP Ready, bypassing
  /// exploration (fleet-scale benches and coordinator tests build synthetic
  /// pools this way). Marks the ILP dirty like a real curve change.
  void inject_ready_curve(std::size_t i, fit::WeightLatencyCurve curve);

 private:
  struct DipState {
    net::IpAddr addr;
    DipPhase phase = DipPhase::kNeedL0;
    WeightExplorer explorer;
    fit::WeightLatencyCurve curve;
    bool awaiting_measurement = false;  // scheduled at the explorer's weight
    double scheduled_weight = 0.0;
    util::SimTime last_sample_at = util::SimTime::zero();
    util::SimTime curve_built_at = util::SimTime::zero();
    std::uint64_t request_seq = 0;
    double last_latency_ms = 0.0;
    int deviation_streak = 0;       // consecutive capacity-deviation rounds
    double pending_delta = 1.0;     // last proposed rescale factor
  };

  void process_samples();
  void handle_sample(std::size_t i, const store::LatencySample& sample);
  void run_measurement_round();
  void apply_dynamics();
  void maybe_refresh();
  /// Emit one whole-pool transaction: every DIP the controller tracks,
  /// with `weights` normalized to grid units (plus `extra`, if any —
  /// remove_dip appends the leaver as a kDraining entry).
  void program(const std::vector<double>& weights,
               const std::vector<lb::PoolEntry>& extra = {});
  double equal_share() const;
  std::size_t alive_count() const;

  sim::Simulation& sim_;
  net::IpAddr vip_;
  store::LatencyStore& store_;
  lb::PoolProgrammer& lb_;
  ControllerConfig cfg_;

  std::vector<DipState> dips_;
  std::vector<double> weights_;  // last programmed weights
  util::SimTime last_program_at_ = util::SimTime::zero();
  bool ilp_dirty_ = true;
  std::uint64_t seq_counter_ = 0;
  int traffic_streak_ = 0;
  double pending_traffic_delta_ = 1.0;

  MeasurementScheduler scheduler_;
  IlpWeights ilp_;
  DynamicsDetector dynamics_;
  sim::PeriodicTimer timer_;

  std::uint64_t rounds_ = 0;
  std::uint64_t ilp_runs_ = 0;
  std::uint64_t traffic_rescales_ = 0;
  std::uint64_t capacity_rescales_ = 0;
  std::uint64_t failures_ = 0;
  std::chrono::milliseconds last_ilp_ms_{0};
};

}  // namespace klb::core
