#include "core/controller.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/weight.hpp"

namespace klb::core {

namespace {
constexpr const char* kLog = "klb-controller";
}

Controller::Controller(sim::Simulation& sim, net::IpAddr vip,
                       std::vector<net::IpAddr> dips,
                       store::LatencyStore& store, lb::PoolProgrammer& lb,
                       ControllerConfig cfg)
    : sim_(sim), vip_(vip), store_(store), lb_(lb), cfg_(cfg),
      scheduler_(IlpWeights(cfg.ilp)), ilp_(cfg.ilp), dynamics_(cfg.dynamics),
      timer_(sim, cfg.round_interval, [this] { tick(); }) {
  dips_.reserve(dips.size());
  for (const auto addr : dips) {
    DipState s;
    s.addr = addr;
    s.explorer = WeightExplorer(cfg_.explorer);
    dips_.push_back(std::move(s));
  }
  weights_.assign(dips_.size(), 0.0);
}

void Controller::start() {
  start_managed();
  timer_.start();
}

void Controller::start_managed() {
  // Bootstrap: everything starts at an equal split so the service carries
  // traffic while l0 measurements cycle through (the scheduler will park
  // NeedL0 DIPs at weight 0 one round at a time).
  std::vector<double> equal(dips_.size(), equal_share());
  program(equal);
}

void Controller::stop() { timer_.stop(); }

double Controller::equal_share() const {
  const auto n = std::max<std::size_t>(1, alive_count());
  return 1.0 / static_cast<double>(n);
}

std::size_t Controller::alive_count() const {
  std::size_t n = 0;
  for (const auto& d : dips_)
    if (d.phase != DipPhase::kFailed) ++n;
  return n;
}

std::optional<std::size_t> Controller::index_of(net::IpAddr addr) const {
  for (std::size_t i = 0; i < dips_.size(); ++i)
    if (dips_[i].addr == addr) return i;
  return std::nullopt;
}

std::optional<double> Controller::weight_of(net::IpAddr addr) const {
  const auto i = index_of(addr);
  if (!i) return std::nullopt;
  return weights_[*i];
}

bool Controller::all_ready() const {
  bool any = false;
  for (const auto& d : dips_) {
    if (d.phase == DipPhase::kFailed) continue;
    if (d.phase != DipPhase::kReady) return false;
    any = true;
  }
  return any;
}

void Controller::tick(bool allow_ilp) {
  if (tick_prepare() && allow_ilp) apply_ilp(solve_ilp());
}

bool Controller::tick_prepare() {
  ++rounds_;
  // Dataplane maintenance rides the controller tick: complete drains the
  // packet path flagged, reclaim retired pool generations.
  lb_.poll();
  process_samples();
  maybe_refresh();

  const bool measuring =
      std::any_of(dips_.begin(), dips_.end(), [](const DipState& d) {
        return d.phase == DipPhase::kNeedL0 || d.phase == DipPhase::kExploring;
      });
  if (measuring) {
    run_measurement_round();
    return false;
  }
  apply_dynamics();
  return ilp_dirty_;
}

void Controller::process_samples() {
  const auto trust_after = last_program_at_ + cfg_.drain_allowance;
  for (std::size_t i = 0; i < dips_.size(); ++i) {
    auto& d = dips_[i];
    const auto sample = store_.latest(vip_, d.addr);
    if (!sample) continue;
    if (sample->at <= d.last_sample_at) continue;  // already consumed
    if (sample->at < trust_after) continue;        // pre-drain: stale view
    d.last_sample_at = sample->at;
    handle_sample(i, *sample);
  }
}

void Controller::handle_sample(std::size_t i, const store::LatencySample& s) {
  auto& d = dips_[i];

  // Failure detection (§4.5): a round with zero successful probes.
  if (s.all_failed()) {
    if (d.phase != DipPhase::kFailed) {
      ++failures_;
      util::log_info(kLog) << "DIP " << d.addr.str()
                           << " failed (no probe responses); removing";
      d.phase = DipPhase::kFailed;
      d.awaiting_measurement = false;
      ilp_dirty_ = true;
    }
    return;
  }

  if (d.phase == DipPhase::kFailed) {
    // Probes answer again: re-admit through a fresh exploration.
    util::log_info(kLog) << "DIP " << d.addr.str() << " recovered";
    d.phase = DipPhase::kNeedL0;
    d.explorer.restart();
    d.curve.clear();
    ilp_dirty_ = true;
    return;
  }

  d.last_latency_ms = s.avg_latency_ms;

  switch (d.phase) {
    case DipPhase::kNeedL0: {
      // Only a sample taken while the DIP held weight 0 measures l0. (A
      // single-DIP pool can never shed its traffic; accept the sample as
      // an l0 approximation — the probe load is negligible either way.)
      if ((weights_[i] <= 1e-9 || alive_count() == 1) && !s.saw_drops()) {
        d.explorer.set_l0(s.avg_latency_ms);
        d.explorer.begin(equal_share());
        d.phase = DipPhase::kExploring;
      }
      break;
    }
    case DipPhase::kExploring: {
      if (!d.awaiting_measurement) break;
      d.awaiting_measurement = false;
      const bool finished =
          d.explorer.observe(s.avg_latency_ms, s.saw_drops());
      if (finished) {
        d.curve.clear();
        for (const auto& pt : d.explorer.history())
          d.curve.add_point(pt.weight, pt.latency_ms, pt.dropped);
        // l0 anchors the low end of the curve.
        d.curve.add_point(0.0, d.explorer.l0_ms(), false);
        if (d.curve.fit(2)) {
          d.curve.set_wmax(d.explorer.wmax());
          d.phase = DipPhase::kReady;
          d.curve_built_at = sim_.now();
          ilp_dirty_ = true;
          util::log_info(kLog)
              << "DIP " << d.addr.str() << " ready: wmax="
              << d.explorer.wmax() << " after " << d.explorer.iterations()
              << " iterations";
        } else {
          // Degenerate exploration (e.g. all points dropped): try again.
          d.explorer.restart();
          d.explorer.begin(equal_share());
        }
      }
      break;
    }
    case DipPhase::kReady:
    case DipPhase::kFailed:
      break;
  }
}

void Controller::run_measurement_round() {
  std::vector<MeasurementRequest> requests;
  std::vector<const fit::WeightLatencyCurve*> curves(dips_.size(), nullptr);
  std::vector<bool> alive(dips_.size(), true);

  // Parking a DIP at weight 0 (for l0) pushes its share onto the others,
  // so only a bounded fraction of the pool parks per round; the rest keep
  // carrying traffic and wait for their turn (FIFO by request seq).
  const auto max_l0_parks = std::max<std::size_t>(
      1, (alive_count() + 3) / 4);  // ~25% of the pool
  std::size_t l0_parks = 0;

  for (std::size_t i = 0; i < dips_.size(); ++i) {
    auto& d = dips_[i];
    alive[i] = d.phase != DipPhase::kFailed;
    if (d.phase == DipPhase::kReady) curves[i] = &d.curve;

    if (d.phase == DipPhase::kNeedL0) {
      if (d.request_seq == 0) d.request_seq = ++seq_counter_;
      if (l0_parks < max_l0_parks && alive_count() > 1) {
        ++l0_parks;
        requests.push_back(MeasurementRequest{i, 0.0, MeasurePriority::kNormal,
                                              d.request_seq});
      }
      // Unparked NeedL0 DIPs issue no request: the residual split keeps
      // them serving at a plain share meanwhile.
    } else if (d.phase == DipPhase::kExploring && d.explorer.started()) {
      if (d.request_seq == 0) d.request_seq = ++seq_counter_;
      MeasurePriority prio = MeasurePriority::kNormal;
      if (d.explorer.has_l0() &&
          d.last_latency_ms >
              cfg_.overload_latency_factor * d.explorer.l0_ms())
        prio = MeasurePriority::kOverloaded;
      if (d.curve_built_at > util::SimTime::zero())
        prio = MeasurePriority::kRefresh;  // re-exploration of a known DIP
      requests.push_back(MeasurementRequest{i, d.explorer.next_weight(), prio,
                                            d.request_seq});
    }
  }

  const auto schedule = scheduler_.schedule(requests, curves, alive);
  for (std::size_t i = 0; i < dips_.size(); ++i) {
    auto& d = dips_[i];
    d.awaiting_measurement =
        schedule.measured[i] && d.phase == DipPhase::kExploring;
    d.scheduled_weight = schedule.weights[i];
    if (schedule.measured[i]) d.request_seq = 0;  // request satisfied
  }
  program(schedule.weights);
}

void Controller::apply_dynamics() {
  std::vector<const fit::WeightLatencyCurve*> curves(dips_.size(), nullptr);
  std::vector<DipObservation> observations;
  for (std::size_t i = 0; i < dips_.size(); ++i) {
    auto& d = dips_[i];
    if (d.phase != DipPhase::kReady) continue;
    curves[i] = &d.curve;
    if (weights_[i] <= 1e-9) continue;  // parked DIPs carry no signal
    if (d.last_sample_at + cfg_.round_interval * 2.0 < sim_.now())
      continue;  // stale
    observations.push_back(DipObservation{i, weights_[i], d.last_latency_ms});
  }

  const auto assessment = dynamics_.assess(curves, observations);
  const int need = std::max(1, dynamics_.config().consecutive_samples);

  if (assessment.traffic_change) {
    ++traffic_streak_;
    pending_traffic_delta_ = assessment.traffic_delta;
  } else {
    traffic_streak_ = 0;
  }

  std::vector<int> deviated(dips_.size(), 0);
  for (std::size_t k = 0; k < assessment.capacity_changed.size(); ++k) {
    const auto i = assessment.capacity_changed[k];
    deviated[i] = 1;
    dips_[i].pending_delta = assessment.capacity_delta[k];
  }

  if (traffic_streak_ >= need) {
    traffic_streak_ = 0;
    ++traffic_rescales_;
    util::log_info(kLog) << "traffic change detected; rescaling all curves by "
                         << pending_traffic_delta_;
    for (auto& d : dips_)
      if (d.phase == DipPhase::kReady) d.curve.rescale(pending_traffic_delta_);
    for (auto& d : dips_) d.deviation_streak = 0;
    ilp_dirty_ = true;
    return;
  }

  for (std::size_t i = 0; i < dips_.size(); ++i) {
    auto& d = dips_[i];
    if (d.phase != DipPhase::kReady) continue;
    d.deviation_streak = deviated[i] ? d.deviation_streak + 1 : 0;
    if (d.deviation_streak >= need) {
      d.deviation_streak = 0;
      ++capacity_rescales_;
      util::log_info(kLog) << "capacity change on DIP " << d.addr.str()
                           << "; delta " << d.pending_delta;
      d.curve.rescale(d.pending_delta);
      ilp_dirty_ = true;
    }
  }
}

void Controller::maybe_refresh() {
  if (cfg_.refresh_interval <= util::SimTime::zero()) return;

  // Capacity share currently under refresh: approximate each DIP's share
  // of capacity by its current weight.
  double refreshing = 0.0;
  for (std::size_t i = 0; i < dips_.size(); ++i)
    if (dips_[i].phase == DipPhase::kExploring &&
        dips_[i].curve_built_at > util::SimTime::zero())
      refreshing += weights_[i];

  for (std::size_t i = 0; i < dips_.size(); ++i) {
    auto& d = dips_[i];
    if (d.phase != DipPhase::kReady) continue;
    if (sim_.now() - d.curve_built_at < cfg_.refresh_interval) continue;
    // Budget: stay under the capacity fraction. Small pools get a relaxed
    // bound (one average-sized DIP at a time) so refreshes are not
    // starved, but a DIP holding a large share of the traffic never
    // refreshes while carrying it — re-exploring it would distort the
    // whole service (the paper's 5% cap exists for exactly this reason).
    const double budget = std::max(
        cfg_.refresh_capacity_fraction,
        1.5 / static_cast<double>(std::max<std::size_t>(1, alive_count())));
    if (weights_[i] > budget) continue;
    if (refreshing > 0.0 && refreshing + weights_[i] > budget) continue;
    refreshing += weights_[i];
    util::log_info(kLog) << "refreshing curve for DIP " << d.addr.str();
    d.explorer.restart();
    d.explorer.begin(std::max(weights_[i], equal_share() * 0.25));
    d.phase = DipPhase::kExploring;  // curve_built_at stays set: refresh class
  }
}

Controller::IlpSolveOutcome Controller::solve_ilp() const {
  IlpSolveOutcome out;
  std::vector<const fit::WeightLatencyCurve*> curves;
  for (std::size_t i = 0; i < dips_.size(); ++i) {
    if (dips_[i].phase != DipPhase::kReady) continue;
    out.index.push_back(i);
    curves.push_back(&dips_[i].curve);
  }
  if (curves.empty()) return out;
  out.attempted = true;
  out.result = ilp_.compute(curves, 1.0);
  return out;
}

void Controller::apply_ilp(const IlpSolveOutcome& out) {
  if (!out.attempted) return;  // no ready curves yet: stay dirty

  ++ilp_runs_;
  last_ilp_ms_ = out.result.elapsed;
  if (!out.result.feasible) {
    // Degenerate (e.g. sum of wmax < 1 after failures): proportional to
    // wmax keeps everyone maximally utilized without a better signal.
    util::log_warn(kLog) << "steady-state ILP infeasible; "
                            "falling back to wmax-proportional weights";
    std::vector<double> prop(dips_.size(), 0.0);
    for (const auto i : out.index)
      prop[i] = std::max(dips_[i].curve.wmax(), 1e-6);
    program(util::normalize_weights(prop));
    ilp_dirty_ = false;
    return;
  }

  std::vector<double> weights(dips_.size(), 0.0);
  for (std::size_t k = 0; k < out.index.size(); ++k)
    weights[out.index[k]] = out.result.weights[k];
  program(weights);
  ilp_dirty_ = false;
}

std::size_t Controller::add_dip(net::IpAddr addr) {
  DipState s;
  s.addr = addr;
  s.explorer = WeightExplorer(cfg_.explorer);
  dips_.push_back(std::move(s));
  weights_.push_back(0.0);
  // One transaction admits the newcomer (parked at 0 — it enters the
  // NeedL0 lifecycle) and restates the incumbents' weights: membership and
  // weights can no longer race, they are the same commit.
  program(weights_);
  ilp_dirty_ = true;
  util::log_info(kLog) << "scale-out: DIP " << addr.str() << " joined ("
                       << dips_.size() << " in pool)";
  return dips_.size() - 1;
}

bool Controller::remove_dip(std::size_t i) {
  if (i >= dips_.size()) return false;
  util::log_info(kLog) << "scale-in: DIP " << dips_[i].addr.str()
                       << " draining out (" << dips_.size() - 1 << " remain)";
  // The leaver rides the same transaction as the survivors' reweight, as a
  // kDraining entry: the dataplane parks it, keeps serving its pinned
  // flows, and completes the removal when the last one drains — the
  // manual weight-0 + wait + remove sequencing is gone (§4.7's connection
  // draining, now owned by the dataplane).
  const std::vector<lb::PoolEntry> leaver{
      lb::PoolEntry{dips_[i].addr, 0, lb::BackendState::kDraining}};
  dips_.erase(dips_.begin() + static_cast<std::ptrdiff_t>(i));
  weights_.erase(weights_.begin() + static_cast<std::ptrdiff_t>(i));
  program(weights_, leaver);
  ilp_dirty_ = true;
  return true;
}

void Controller::mark_failed(std::size_t i) {
  if (i >= dips_.size()) return;
  auto& d = dips_[i];
  if (d.phase == DipPhase::kFailed) return;
  ++failures_;
  util::log_info(kLog) << "DIP " << d.addr.str()
                       << " reported failed (ops feed); removing from rotation";
  d.phase = DipPhase::kFailed;
  d.awaiting_measurement = false;
  ilp_dirty_ = true;
}

void Controller::inject_ready_curve(std::size_t i, fit::WeightLatencyCurve curve) {
  auto& d = dips_[i];
  d.curve = std::move(curve);
  d.phase = DipPhase::kReady;
  d.curve_built_at = sim_.now();
  d.explorer.set_l0(d.curve.latency_at(0.0));
  ilp_dirty_ = true;
}

void Controller::program(const std::vector<double>& weights,
                         const std::vector<lb::PoolEntry>& extra) {
  weights_ = weights;
  // A failed DIP is not part of the desired pool: restating it as a
  // kActive entry would re-admit a corpse the dataplane already dropped
  // (clearing its failure tombstone) — and an *enabled* weight-0 backend
  // is still picked by the unweighted policies (RR/LC/hash). Its weight
  // is zeroed and its entry omitted; a recovered DIP re-enters through
  // the NeedL0 lifecycle, whose program deliberately re-lists it.
  for (std::size_t i = 0; i < dips_.size(); ++i)
    if (dips_[i].phase == DipPhase::kFailed) weights_[i] = 0.0;
  double total = 0.0;
  for (const double w : weights_) total += (w > 0.0 ? w : 0.0);
  // Largest-remainder normalization keeps the programmed units summing to
  // exactly kWeightScale (per-entry rounding can drift by a few units when
  // the ILP grid does not divide the scale). All-zero vectors program as
  // zeros — normalize's equal-split fallback must not resurrect a pool the
  // controller meant to park.
  std::vector<std::int64_t> units(weights_.size(), 0);
  if (total > 0.0) units = util::normalize_to_units(weights_);
  // One transaction describes the entire desired pool — every live DIP the
  // controller tracks, in stable order (minimal maglev disruption), plus
  // any lifecycle riders (a draining leaver). The dataplane commits it
  // atomically; a racing membership change produces a newer version that
  // supersedes this one whole.
  lb::PoolProgram p(lb_.issue_version());
  p.entries.reserve(dips_.size() + extra.size());
  for (std::size_t i = 0; i < dips_.size(); ++i) {
    if (dips_[i].phase == DipPhase::kFailed) continue;
    p.add(dips_[i].addr, units[i]);
  }
  for (const auto& e : extra) p.entries.push_back(e);
  lb_.apply_program(p);
  last_program_at_ = sim_.now();
}

}  // namespace klb::core
