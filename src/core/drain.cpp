#include "core/drain.hpp"

#include "util/logging.hpp"
#include "util/weight.hpp"

namespace klb::core {

void DrainEstimator::run(net::IpAddr dip, std::size_t dip_index, double l0_ms,
                         DoneFn done) {
  if (running_) {
    done(std::nullopt);
    return;
  }
  running_ = true;
  dip_ = dip;
  dip_index_ = dip_index;
  l0_ms_ = l0_ms;
  done_ = std::move(done);
  phase_started_ = sim_.now();
  last_seen_sample_ = sim_.now();

  set_target_weight(cfg_.high_weight);
  sim_.schedule_in(cfg_.poll_interval, [this] { poll_loading(); });
}

void DrainEstimator::set_target_weight(double w) {
  // Target DIP gets w; everyone else splits the rest equally. (The
  // estimator is an offline calibration tool; the paper runs it against
  // production pools the same way, accepting the brief skew.) The
  // transaction is keyed by address, so pool renumbering between polls
  // cannot redirect the extreme weight onto the wrong DIP — and it is
  // weights-only, so a membership change racing through the programming
  // delay is not reverted by the estimator's stale view of the pool.
  const auto addrs = lb_.backend_addrs();
  const auto n = addrs.size();
  const double rest =
      n > 1 ? (1.0 - w) / static_cast<double>(n - 1) : (1.0 - w);
  lb::PoolProgram p(lb_.issue_version());
  p.weights_only = true;
  for (const auto addr : addrs)
    p.add(addr, util::weight_to_units(addr == dip_ ? w : rest));
  lb_.apply_program(p);
}

std::optional<double> DrainEstimator::fresh_latency() const {
  const auto sample = store_.latest(vip_, dip_);
  if (!sample) return std::nullopt;
  if (sample->at <= last_seen_sample_) return std::nullopt;
  return sample->avg_latency_ms;
}

void DrainEstimator::poll_loading() {
  if (!running_) return;
  const auto latency = fresh_latency();
  if (latency) {
    const auto sample = store_.latest(vip_, dip_);
    last_seen_sample_ = sample->at;
    if (*latency >= cfg_.elevated_factor * l0_ms_) {
      // Elevated: cut the weight to 0 and time the recovery.
      t1_ = sim_.now();
      set_target_weight(0.0);
      sim_.schedule_in(cfg_.poll_interval, [this] { poll_draining(); });
      return;
    }
  }
  if (sim_.now() - phase_started_ > cfg_.max_load_time) {
    util::log_warn("klb-drain") << "could not elevate latency on "
                                << dip_.str() << "; aborting";
    finish(std::nullopt);
    return;
  }
  sim_.schedule_in(cfg_.poll_interval, [this] { poll_loading(); });
}

void DrainEstimator::poll_draining() {
  if (!running_) return;
  const auto latency = fresh_latency();
  if (latency) {
    const auto sample = store_.latest(vip_, dip_);
    last_seen_sample_ = sample->at;
    if (*latency <= cfg_.recovered_factor * l0_ms_) {
      finish(sim_.now() - t1_);
      return;
    }
  }
  if (sim_.now() - t1_ > cfg_.max_drain_time) {
    finish(std::nullopt);
    return;
  }
  sim_.schedule_in(cfg_.poll_interval, [this] { poll_draining(); });
}

void DrainEstimator::finish(std::optional<util::SimTime> result) {
  running_ = false;
  // Restore an equal split before reporting. normalize_to_units spreads
  // the kWeightScale % n remainder instead of leaking it (a flat
  // kWeightScale / n per entry under-programs the pool whenever n does
  // not divide the scale).
  const auto addrs = lb_.backend_addrs();
  if (!addrs.empty()) {
    const auto units = util::normalize_to_units(
        std::vector<double>(addrs.size(), 1.0));
    lb::PoolProgram p(lb_.issue_version());
    p.weights_only = true;  // restore weights, never touch membership
    for (std::size_t i = 0; i < addrs.size(); ++i) p.add(addrs[i], units[i]);
    lb_.apply_program(p);
  }
  if (done_) done_(result);
}

}  // namespace klb::core
