#include "core/drain.hpp"

#include "util/logging.hpp"
#include "util/weight.hpp"

namespace klb::core {

void DrainEstimator::run(net::IpAddr dip, std::size_t dip_index, double l0_ms,
                         DoneFn done) {
  if (running_) {
    done(std::nullopt);
    return;
  }
  running_ = true;
  dip_ = dip;
  dip_index_ = dip_index;
  l0_ms_ = l0_ms;
  done_ = std::move(done);
  phase_started_ = sim_.now();
  last_seen_sample_ = sim_.now();

  set_target_weight(cfg_.high_weight);
  sim_.schedule_in(cfg_.poll_interval, [this] { poll_loading(); });
}

void DrainEstimator::set_target_weight(double w) {
  // Target DIP gets w; everyone else splits the rest equally. (The
  // estimator is an offline calibration tool; the paper runs it against
  // production pools the same way, accepting the brief skew.)
  const auto n = lb_.backend_count();
  std::vector<std::int64_t> units(n, 0);
  const double rest =
      n > 1 ? (1.0 - w) / static_cast<double>(n - 1) : (1.0 - w);
  for (std::size_t i = 0; i < n; ++i)
    units[i] = util::weight_to_units(i == dip_index_ ? w : rest);
  lb_.program_weights(units);
}

std::optional<double> DrainEstimator::fresh_latency() const {
  const auto sample = store_.latest(vip_, dip_);
  if (!sample) return std::nullopt;
  if (sample->at <= last_seen_sample_) return std::nullopt;
  return sample->avg_latency_ms;
}

void DrainEstimator::poll_loading() {
  if (!running_) return;
  const auto latency = fresh_latency();
  if (latency) {
    const auto sample = store_.latest(vip_, dip_);
    last_seen_sample_ = sample->at;
    if (*latency >= cfg_.elevated_factor * l0_ms_) {
      // Elevated: cut the weight to 0 and time the recovery.
      t1_ = sim_.now();
      set_target_weight(0.0);
      sim_.schedule_in(cfg_.poll_interval, [this] { poll_draining(); });
      return;
    }
  }
  if (sim_.now() - phase_started_ > cfg_.max_load_time) {
    util::log_warn("klb-drain") << "could not elevate latency on "
                                << dip_.str() << "; aborting";
    finish(std::nullopt);
    return;
  }
  sim_.schedule_in(cfg_.poll_interval, [this] { poll_loading(); });
}

void DrainEstimator::poll_draining() {
  if (!running_) return;
  const auto latency = fresh_latency();
  if (latency) {
    const auto sample = store_.latest(vip_, dip_);
    last_seen_sample_ = sample->at;
    if (*latency <= cfg_.recovered_factor * l0_ms_) {
      finish(sim_.now() - t1_);
      return;
    }
  }
  if (sim_.now() - t1_ > cfg_.max_drain_time) {
    finish(std::nullopt);
    return;
  }
  sim_.schedule_in(cfg_.poll_interval, [this] { poll_draining(); });
}

void DrainEstimator::finish(std::optional<util::SimTime> result) {
  running_ = false;
  // Restore an equal split before reporting. normalize_to_units spreads
  // the kWeightScale % n remainder instead of leaking it (a flat
  // kWeightScale / n per entry under-programs the pool whenever n does
  // not divide the scale).
  const auto n = lb_.backend_count();
  if (n > 0)
    lb_.program_weights(util::normalize_to_units(std::vector<double>(n, 1.0)));
  if (done_) done_(result);
}

}  // namespace klb::core
