#include "core/dynamics.hpp"

#include <algorithm>
#include <cmath>

namespace klb::core {

double DynamicsDetector::delta_for(const fit::WeightLatencyCurve& curve,
                                   double weight,
                                   double observed_latency_ms) const {
  // w2: the weight at which the *old* curve would have produced the
  // observed latency. Higher-than-expected latency => w2 > w1 => delta < 1
  // (curve shifts left: capacity effectively shrank).
  const double w2 = curve.weight_for(observed_latency_ms);
  if (w2 <= 1e-9 || weight <= 1e-9)
    return observed_latency_ms > curve.latency_at(weight) ? cfg_.min_delta
                                                          : cfg_.max_delta;
  return std::clamp(weight / w2, cfg_.min_delta, cfg_.max_delta);
}

DynamicsAssessment DynamicsDetector::assess(
    const std::vector<const fit::WeightLatencyCurve*>& curves,
    const std::vector<DipObservation>& observations) const {
  DynamicsAssessment out;
  if (observations.empty()) return out;

  struct Deviation {
    std::size_t dip;
    double delta;
    int direction;       // vs the capacity threshold
    int soft_direction;  // vs the (lower) traffic threshold
  };
  std::vector<Deviation> deviations;

  for (const auto& obs : observations) {
    const auto* curve = curves[obs.dip];
    if (curve == nullptr || !curve->fitted()) continue;
    const double est = curve->latency_at(obs.weight);
    if (est <= 1e-9) continue;
    const double rel = (obs.latency_ms - est) / est;
    int dir = 0;
    if (rel > cfg_.capacity_deviation) dir = 1;
    else if (rel < -cfg_.capacity_deviation) dir = -1;
    int soft = 0;
    if (rel > cfg_.traffic_deviation) soft = 1;
    else if (rel < -cfg_.traffic_deviation) soft = -1;
    deviations.push_back(Deviation{
        obs.dip, delta_for(*curve, obs.weight, obs.latency_ms), dir, soft});
  }
  if (deviations.empty()) return out;

  // Cluster-wide shift? Count same-direction soft deviations (the lower
  // traffic bar): a traffic change moves every DIP a little.
  std::size_t up = 0;
  std::size_t down = 0;
  for (const auto& d : deviations) {
    if (d.soft_direction > 0) ++up;
    if (d.soft_direction < 0) ++down;
  }
  const auto total = deviations.size();
  const auto threshold = static_cast<std::size_t>(
      std::ceil(cfg_.traffic_fraction * static_cast<double>(total)));

  if (total >= 2 && (up >= threshold || down >= threshold)) {
    out.traffic_change = true;
    // Median delta over the deviating DIPs (robust against one outlier).
    std::vector<double> deltas;
    const int want_dir = up >= threshold ? 1 : -1;
    for (const auto& d : deviations)
      if (d.soft_direction == want_dir) deltas.push_back(d.delta);
    std::nth_element(deltas.begin(), deltas.begin() + deltas.size() / 2,
                     deltas.end());
    out.traffic_delta = deltas[deltas.size() / 2];
    return out;
  }

  for (const auto& d : deviations) {
    if (d.direction == 0) continue;
    out.capacity_changed.push_back(d.dip);
    out.capacity_delta.push_back(d.delta);
  }
  return out;
}

}  // namespace klb::core
