#include "core/ilp_weights.hpp"

#include <algorithm>
#include <cmath>

#include "util/weight.hpp"

namespace klb::core {

std::vector<double> uniform_candidates(double lo, double hi, int n) {
  std::vector<double> out;
  if (n <= 0) return out;
  lo = std::max(lo, 0.0);
  hi = std::min(std::max(hi, lo), 1.0);
  if (n == 1 || hi - lo < 1e-12) {
    out.push_back(lo);
    return out;
  }
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(n - 1));
  return out;
}

IlpWeights::StepResult IlpWeights::solve_step(
    const std::vector<const fit::WeightLatencyCurve*>& curves,
    const std::vector<std::vector<double>>& candidates,
    double total_weight) const {
  StepResult result;
  const std::size_t n = curves.size();

  const bool need_theta = cfg_.theta < 1e29;
  const bool need_minmax = cfg_.objective == IlpObjective::kMaxLatency;
  const auto backend = (need_theta || need_minmax)
                           ? IlpBackend::kBranchAndBound
                           : cfg_.backend;

  const auto total_units = util::weight_to_units(total_weight);
  // The reachable sums form a lattice with holes up to the coarsest
  // per-DIP grid spacing; the window must be at least that wide or coarse
  // candidate sets become spuriously infeasible.
  double max_spacing = 0.0;
  for (const auto& cand : candidates) {
    for (std::size_t i = 1; i < cand.size(); ++i)
      max_spacing = std::max(max_spacing, cand[i] - cand[i - 1]);
  }
  const auto slack_units = std::max<std::int64_t>(
      1, std::max(util::weight_to_units(cfg_.sum_slack),
                  util::weight_to_units(max_spacing) + 1));

  if (backend == IlpBackend::kMckpDp) {
    std::vector<ilp::MckpGroup> groups(n);
    for (std::size_t d = 0; d < n; ++d) {
      for (const double w : candidates[d]) {
        groups[d].items.push_back(ilp::MckpItem{
            util::weight_to_units(w), curves[d]->latency_at(w)});
      }
    }
    const auto dp = ilp::solve_mckp(groups, total_units, slack_units);
    result.feasible = dp.feasible;
    if (dp.feasible) {
      result.cost = dp.cost;
      result.weights.resize(n);
      for (std::size_t d = 0; d < n; ++d)
        result.weights[d] =
            candidates[d][static_cast<std::size_t>(dp.choice[d])];
    }
    return result;
  }

  // Branch & bound over the Fig. 7 model.
  ilp::Model model;
  model.set_binary_bounds_implied(true);
  std::vector<std::vector<int>> vars(n);
  std::vector<std::pair<int, double>> weight_row;

  for (std::size_t d = 0; d < n; ++d) {
    std::vector<std::pair<int, double>> one_weight_row;  // constraint (a)
    for (const double w : candidates[d]) {
      // Under min-max the per-variable objective is zero; the auxiliary
      // bound variable below carries the whole objective.
      const double obj = need_minmax ? 0.0 : curves[d]->latency_at(w);
      const int v = model.add_var(ilp::VarType::kBinary, obj);
      vars[d].push_back(v);
      one_weight_row.emplace_back(v, 1.0);
      weight_row.emplace_back(v, w);
    }
    model.add_constraint(std::move(one_weight_row), lp::Relation::kEq, 1.0);
  }

  if (need_minmax) {
    // z >= sum_w l_dw x_dw for every DIP; minimize z.
    double max_latency = 0.0;
    for (std::size_t d = 0; d < n; ++d)
      for (const double w : candidates[d])
        max_latency = std::max(max_latency, curves[d]->latency_at(w));
    const int z = model.add_var(ilp::VarType::kContinuous, 1.0,
                                std::max(1.0, max_latency));
    for (std::size_t d = 0; d < n; ++d) {
      std::vector<std::pair<int, double>> bound{{z, -1.0}};
      for (std::size_t i = 0; i < candidates[d].size(); ++i)
        bound.emplace_back(vars[d][i], curves[d]->latency_at(candidates[d][i]));
      model.add_constraint(std::move(bound), lp::Relation::kLe, 0.0);
    }
  }

  // Constraint (b): total weight in [total - slack, total].
  model.add_constraint(weight_row, lp::Relation::kLe, total_weight);
  model.add_constraint(weight_row, lp::Relation::kGe,
                       total_weight -
                           util::units_to_weight(slack_units));

  if (need_theta) {
    // Constraints (c)+(d): ymax/ymin straddle every DIP's chosen weight.
    const int ymax = model.add_var(ilp::VarType::kContinuous, 0.0, 1.0);
    const int ymin = model.add_var(ilp::VarType::kContinuous, 0.0, 1.0);
    for (std::size_t d = 0; d < n; ++d) {
      std::vector<std::pair<int, double>> up{{ymax, 1.0}};
      std::vector<std::pair<int, double>> down{{ymin, 1.0}};
      for (std::size_t i = 0; i < candidates[d].size(); ++i) {
        up.emplace_back(vars[d][i], -candidates[d][i]);
        down.emplace_back(vars[d][i], -candidates[d][i]);
      }
      model.add_constraint(std::move(up), lp::Relation::kGe, 0.0);
      model.add_constraint(std::move(down), lp::Relation::kLe, 0.0);
    }
    model.add_constraint({{ymax, 1.0}, {ymin, -1.0}}, lp::Relation::kLe,
                         cfg_.theta);
  }

  ilp::IlpOptions opt;
  opt.time_limit = cfg_.time_limit;
  const auto ilp_result = ilp::solve(model, opt);
  result.nodes = ilp_result.nodes_explored;
  result.timed_out = ilp_result.status == ilp::IlpStatus::kFeasibleTimeout ||
                     ilp_result.status == ilp::IlpStatus::kTimeout;

  if (!ilp_result.has_solution()) return result;
  result.feasible = true;
  result.cost = ilp_result.objective;
  result.weights.resize(n);
  for (std::size_t d = 0; d < n; ++d) {
    for (std::size_t i = 0; i < candidates[d].size(); ++i) {
      if (ilp_result.x[static_cast<std::size_t>(vars[d][i])] > 0.5) {
        result.weights[d] = candidates[d][i];
        break;
      }
    }
  }
  return result;
}

IlpWeightsResult IlpWeights::compute(
    const std::vector<const fit::WeightLatencyCurve*>& curves,
    double total_weight) const {
  IlpWeightsResult out;
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = curves.size();
  if (n == 0 || total_weight <= 0.0) return out;
  for (const auto* c : curves)
    if (c == nullptr || !c->fitted()) return out;

  // Step 1: candidates uniform in [0, wmax_d] (§4.4: *not* [0,1]).
  std::vector<std::vector<double>> candidates(n);
  for (std::size_t d = 0; d < n; ++d)
    candidates[d] =
        uniform_candidates(0.0, curves[d]->wmax(), cfg_.points_per_dip);

  auto step1 = solve_step(curves, candidates, total_weight);
  out.steps_run = 1;
  out.nodes_explored = step1.nodes;
  out.timed_out = step1.timed_out;
  if (!step1.feasible) {
    out.elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    return out;
  }

  const bool multi = cfg_.force_multi_step.value_or(
      static_cast<int>(n) >= cfg_.multi_step_min_dips);

  StepResult final_step = std::move(step1);
  if (multi) {
    // Step 2: zoom around step 1's choice.
    std::vector<std::vector<double>> zoomed(n);
    for (std::size_t d = 0; d < n; ++d) {
      const double wd = final_step.weights[d];
      const double delta = cfg_.zoom_fraction * curves[d]->wmax();
      zoomed[d] = uniform_candidates(std::max(0.0, wd - delta),
                                     std::min(1.0, wd + delta),
                                     cfg_.points_per_dip);
    }
    auto step2 = solve_step(curves, zoomed, total_weight);
    out.nodes_explored += step2.nodes;
    out.timed_out = out.timed_out || step2.timed_out;
    if (step2.feasible && step2.cost <= final_step.cost + 1e-12) {
      final_step = std::move(step2);
      out.steps_run = 2;
    }
  }

  out.feasible = true;
  out.estimated_total_latency_ms = final_step.cost;
  // Normalize onto the exact grid so downstream consumers see sum == 1
  // (scaled to the requested budget).
  auto units = util::normalize_to_units(final_step.weights);
  out.weights.resize(n);
  for (std::size_t d = 0; d < n; ++d)
    out.weights[d] = util::units_to_weight(units[d]) * total_weight;

  out.elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  return out;
}

}  // namespace klb::core
