// Algorithm 1: adaptive weight selection for latency measurement (§4.3).
//
// A TCP-congestion-control-style search over the weight axis, one instance
// per DIP. Inputs per iteration: the latency measured at the current
// weight and whether packet drops occurred. Behaviour:
//
//   run phase      no drop: wmax = max(wmax, wnow);
//                  wnext = wnow + wnow * alpha * (l0 / lw)
//                  (far from capacity -> lw ~ l0 -> near-doubling;
//                   near capacity    -> lw >> l0 -> small steps)
//   backtrack      drop (real, or pseudo-drop lw >= 5*l0):
//                  wnext = (wnow + wprev) / 2
//   termination    |wnow - wprev| <= D (5% of wnow) -> exploration done
//
// The explorer also owns the per-DIP measurement history that the curve
// fitter consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "fit/wl_curve.hpp"

namespace klb::core {

struct ExplorerConfig {
  double alpha = 1.0;           // pace of increase (paper: 1)
  double done_fraction = 0.05;  // D = 5% of wnow
  /// lw >= factor * l0 counts as a drop. The paper uses 5 because on its
  /// testbed ~100% CPU produced >= 5x the unloaded latency; our DIP model
  /// has a higher service-time floor inside l0 (saturation lands near
  /// 3-4x l0 under fixed-concurrency clients), so the calibrated default
  /// is lower. bench/abl_explorer sweeps this.
  double pseudo_drop_factor = 3.5;
  int max_iterations = 24;      // hard stop against pathological curves
  double initial_weight = 0.0;  // set by the controller (equal share)
};

class WeightExplorer {
 public:
  explicit WeightExplorer(ExplorerConfig cfg = {}) : cfg_(cfg) {}

  /// Provide the unloaded latency (measured at weight 0) before exploring.
  void set_l0(double l0_ms) { l0_ms_ = l0_ms; }
  bool has_l0() const { return l0_ms_ > 0.0; }
  double l0_ms() const { return l0_ms_; }

  /// First weight to measure (the controller passes the equal share).
  void begin(double initial_weight);
  bool started() const { return started_; }

  /// The weight the next measurement should use.
  double next_weight() const { return wnow_; }

  /// Record the measurement taken at next_weight(). Advances the search.
  /// Returns true when exploration just finished.
  bool observe(double latency_ms, bool packet_drop);

  bool done() const { return done_; }
  double wmax() const { return wmax_; }
  int iterations() const { return iteration_; }

  /// Full measurement history (weight actually measured, latency, drop).
  const std::vector<fit::CurvePoint>& history() const { return history_; }

  /// Per-iteration weights chosen by the algorithm (Fig. 9's series).
  const std::vector<double>& weight_trace() const { return trace_; }

  /// Reset for a refresh (§4.5): keeps l0, clears the search state.
  void restart();

 private:
  ExplorerConfig cfg_;
  double l0_ms_ = 0.0;
  double wnow_ = 0.0;
  double wprev_ = 0.0;
  double wmax_ = 0.0;
  bool started_ = false;
  bool done_ = false;
  int iteration_ = 0;
  std::vector<fit::CurvePoint> history_;
  std::vector<double> trace_;
};

}  // namespace klb::core
