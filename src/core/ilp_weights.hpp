// Fig. 7 ILP construction and the multi-step zoom (§3.3, §4.4).
//
// Given one fitted weight-latency curve per DIP, choose one weight per DIP
// from a discrete candidate set so that the weights sum to ~1, minimizing
// the summed estimated latency, optionally bounding the weight imbalance
// ymax - ymin <= theta. Two interchangeable backends:
//
//   kBranchAndBound  the faithful CBC-equivalent path (required when theta
//                    is finite, since the DP cannot see ymax/ymin)
//   kMckpDp          the specialized exact DP (theta = infinity only)
//
// The multi-step mode reproduces §4.4: step 1 solves over `points_per_dip`
// candidates uniform in [0, wmax_d]; step 2 re-solves over the same number
// of candidates in [w_d - delta, w_d + delta] around step 1's choice, with
// delta = zoom_fraction * wmax_d. The paper enables the second step at
// >= 100 DIPs.
#pragma once

#include <chrono>
#include <optional>
#include <vector>

#include "fit/wl_curve.hpp"
#include "ilp/mckp.hpp"
#include "ilp/model.hpp"

namespace klb::core {

enum class IlpBackend { kBranchAndBound, kMckpDp };

/// Fig. 7 minimizes the summed mean latency; footnote 2 notes the
/// objective "can be easily changed", e.g. to minimize the worst DIP's
/// latency. kMaxLatency adds an auxiliary bound variable and therefore
/// always uses the B&B backend.
enum class IlpObjective { kSumLatency, kMaxLatency };

struct IlpWeightsConfig {
  int points_per_dip = 10;
  IlpObjective objective = IlpObjective::kSumLatency;
  /// theta in Fig. 7 constraint (c); infinity = unconstrained (paper §6).
  double theta = 1e30;
  IlpBackend backend = IlpBackend::kBranchAndBound;
  /// Zoom radius for step 2, as a fraction of each DIP's wmax (paper: 10%).
  double zoom_fraction = 0.10;
  /// Run the second (zoom) step when #DIPs >= this (paper: 100).
  int multi_step_min_dips = 100;
  /// Force single-/two-step regardless of size (benches use this).
  std::optional<bool> force_multi_step;
  /// Total-weight window: sum(w) within [1 - slack, 1].
  double sum_slack = 0.01;
  std::optional<std::chrono::milliseconds> time_limit;
};

struct IlpWeightsResult {
  bool feasible = false;
  bool timed_out = false;
  /// Weight per DIP (same order as the input curves); sums to 1 exactly
  /// (grid-normalized after the solve).
  std::vector<double> weights;
  /// Estimated summed latency at the chosen (pre-normalization) weights.
  double estimated_total_latency_ms = 0.0;
  int steps_run = 0;
  std::int64_t nodes_explored = 0;
  std::chrono::milliseconds elapsed{0};
};

class IlpWeights {
 public:
  explicit IlpWeights(IlpWeightsConfig cfg = {}) : cfg_(cfg) {}

  /// Compute weights for the given curves. `total_weight` is the budget to
  /// distribute (1.0 normally; the §4.6 scheduler passes 1 - ws for the
  /// residual problem). Curves must all be fitted.
  IlpWeightsResult compute(
      const std::vector<const fit::WeightLatencyCurve*>& curves,
      double total_weight = 1.0) const;

  const IlpWeightsConfig& config() const { return cfg_; }

 private:
  struct StepResult {
    bool feasible = false;
    bool timed_out = false;
    std::vector<double> weights;  // chosen candidate per DIP
    double cost = 0.0;
    std::int64_t nodes = 0;
  };

  /// One ILP solve over explicit per-DIP candidate weight lists.
  StepResult solve_step(
      const std::vector<const fit::WeightLatencyCurve*>& curves,
      const std::vector<std::vector<double>>& candidates,
      double total_weight) const;

  IlpWeightsConfig cfg_;
};

/// Candidate grid helper: `n` values uniform in [lo, hi] (inclusive ends).
std::vector<double> uniform_candidates(double lo, double hi, int n);

}  // namespace klb::core
