#include "core/agent_baseline.hpp"

#include <algorithm>
#include <cmath>

#include "util/weight.hpp"

namespace klb::core {

std::vector<double> AgentCpuBalancer::step(
    const std::vector<double>& weights,
    const std::vector<double>& utils) const {
  const std::size_t n = std::min(weights.size(), utils.size());
  std::vector<double> next(weights.begin(), weights.begin() + static_cast<std::ptrdiff_t>(n));
  if (n == 0) return next;

  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += utils[i];
  mean /= static_cast<double>(n);
  if (mean <= 1e-9) return next;

  for (std::size_t i = 0; i < n; ++i) {
    const double util = std::max(utils[i], 1e-3);  // avoid div-by-zero blowup
    const double factor = mean / util;
    next[i] = weights[i] * (1.0 + cfg_.damping * (factor - 1.0));
    next[i] = std::max(next[i], 0.0);
  }
  return util::normalize_weights(next);
}

bool AgentCpuBalancer::converged(const std::vector<double>& utils) const {
  if (utils.empty()) return true;
  const auto [lo, hi] = std::minmax_element(utils.begin(), utils.end());
  return (*hi - *lo) <= cfg_.tolerance;
}

}  // namespace klb::core
