// Agent-based CPU-feedback baseline (§6.4).
//
// The comparison point KnapsackLB argues against: an agent on every DIP
// reports CPU utilization, and weights are adjusted iteratively until CPU
// evens out (the weight-update rule of Barbette et al., NSDI'20 §4.1 —
// reference [18] in the paper). One iteration:
//
//     w_d <- w_d * (cluster_mean_util / util_d)    (then renormalize)
//
// Convergence = max pairwise CPU spread below a tolerance. The bench
// counts iterations to convergence and contrasts it with KnapsackLB's
// single ILP shot; it also documents the privacy/agent dependency the
// paper's design goals exclude.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace klb::core {

struct AgentBaselineConfig {
  double tolerance = 0.05;     // max |util - mean| considered converged
  int max_iterations = 64;
  double damping = 1.0;        // 1.0 = full step (as in [18])
};

class AgentCpuBalancer {
 public:
  explicit AgentCpuBalancer(AgentBaselineConfig cfg = {}) : cfg_(cfg) {}

  /// One update step from measured per-DIP CPU utilizations (0..1) to new
  /// weights. `weights` must sum to ~1; the result does exactly.
  std::vector<double> step(const std::vector<double>& weights,
                           const std::vector<double>& utils) const;

  bool converged(const std::vector<double>& utils) const;

  const AgentBaselineConfig& config() const { return cfg_; }

 private:
  AgentBaselineConfig cfg_;
};

}  // namespace klb::core
