#include "core/overhead.hpp"

#include <algorithm>
#include <cmath>

namespace klb::core {

std::vector<VipClass> table8_workload() {
  return {
      {5, 2000}, {10, 1000}, {50, 200}, {100, 100}, {500, 20}, {1000, 10},
  };
}

OverheadReport compute_overheads(const std::vector<VipClass>& workload,
                                 const OverheadParams& p) {
  OverheadReport r;

  for (const auto& c : workload) {
    r.total_vips += c.vips;
    r.total_dips += static_cast<std::int64_t>(c.vips) * c.dips_per_vip;

    // One KLM per VNET minimum (VNET boundaries, §6.7); large VIPs need
    // ceil(dips / cap) instances.
    const int per_vip = std::max(
        1, static_cast<int>(std::ceil(static_cast<double>(c.dips_per_vip) /
                                      p.dips_per_klm_cap)));
    r.klm_instances += static_cast<std::int64_t>(c.vips) * per_vip;
  }

  r.klm_cores = r.klm_instances * p.klm_cores;
  const double dip_cores =
      static_cast<double>(r.total_dips) * static_cast<double>(p.dip_cores);
  r.klm_core_overhead = static_cast<double>(r.klm_cores) / dip_cores;

  const double dip_spend =
      static_cast<double>(r.total_dips) * p.dip_vm_monthly_usd;
  const double klm_spend =
      static_cast<double>(r.klm_instances) * p.klm_vm_monthly_usd;
  r.klm_cost_overhead = klm_spend / dip_spend;
  r.klm_cost_overhead_spot = klm_spend / p.spot_discount / dip_spend;

  // Controller: regression cores to keep up with one pass per round.
  const double regression_core_seconds =
      static_cast<double>(r.total_dips) * p.regression_ms_per_dip / 1e3;
  r.regression_cores = static_cast<std::int64_t>(
      std::ceil(regression_core_seconds / p.round_seconds));
  r.regression_core_overhead =
      static_cast<double>(r.regression_cores) / dip_cores;

  // Controller VMs so each VIP's ILP reruns every ilp_period seconds.
  r.controller_vms = static_cast<std::int64_t>(
      std::ceil(p.ilp_seconds_for_workload / p.ilp_period_seconds));
  r.controller_core_overhead =
      static_cast<double>(r.controller_vms * p.controller_cores) / dip_cores;

  r.redis_monthly_usd = p.redis_daily_usd * 30.0;
  r.redis_cost_overhead = r.redis_monthly_usd / dip_spend;
  return r;
}

}  // namespace klb::core
